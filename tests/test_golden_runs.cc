/**
 * @file
 * Golden-run regression harness.
 *
 * Runs one pinned configuration per memory-side cache architecture
 * (sectored DRAM$, Alloy, eDRAM — all under the DAP policy) and
 * compares the full gem5-style stats dump against a golden file
 * committed under tests/golden/. Any change to simulated behaviour —
 * an event reordered, a latency off by one cycle, a counter double
 * incremented — shows up as a diff against these files.
 *
 * Comparison is row-by-row: the row set and order must match exactly;
 * integer-valued rows must be equal; floating-point rows are compared
 * with a tiny relative tolerance so a compiler's FP contraction
 * choices do not fail the harness.
 *
 * Regenerating the goldens after an INTENDED behaviour change:
 *
 *     ./build/tests/dapsim_golden_tests --update-golden
 *
 * (or set DAPSIM_UPDATE_GOLDEN=1), then commit the rewritten files
 * with a note explaining why the behaviour moved.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/runner.hh"
#include "workload/compose.hh"

namespace dapsim
{
namespace
{

bool g_update = false;

std::string
goldenPath(const std::string &name)
{
    return std::string(DAPSIM_GOLDEN_DIR) + "/" + name + ".stats.txt";
}

/** The pinned scenario: one architecture, DAP policy, a small fixed
 *  hpcg-style workload (the test_stats_dump recipe). Everything here
 *  is part of the golden contract — do not change it without
 *  regenerating the files. @p remote enables the third bandwidth
 *  source (the tiered_remote golden). */
std::string
runScenario(MsArch arch, bool remote = false)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.arch = arch;
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.alloy.capacityBytes = 8 * kMiB;
    cfg.edram.capacityBytes = 4 * kMiB;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 3'000;
    cfg.warmupAccessesPerCore = 5'000;
    if (remote) {
        cfg.remote.enabled = true;
        cfg.remote.bwScaleFactor = 4.0;
        cfg.remote.addLatencyNs = 120.0;
        cfg.remote.maxOutstanding = 32;
    }

    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 512 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(w, i));
    System sys(cfg, std::move(gens));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

/** The workload-engine pinned scenario: a drifting Zipf spec on the
 *  sectored architecture under DAP. Freezes the whole engine pipeline
 *  — spec parsing, CDF tables, Feistel permutation, drift schedule and
 *  the per-core seed fold — in addition to the simulator proper. */
std::string
runZipfDriftScenario()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 3'000;
    cfg.warmupAccessesPerCore = 5'000;

    const workload::ComposedMix cm = workload::composeWorkload(
        "zipf:skew=0.99,fp=512K,drift=rotate,period=20000,mpki=30",
        cfg.numCores);
    cfg.obs.coreTenants = cm.coreTenants;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(cm.mix.apps[i], i));
    System sys(cfg, std::move(gens));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

struct Row
{
    std::string name;
    std::string value;
};

std::vector<Row>
parseRows(const std::string &dump)
{
    std::vector<Row> rows;
    std::istringstream is(dump);
    std::string line;
    while (std::getline(is, line)) {
        const auto space = line.find(' ');
        if (space == std::string::npos)
            ADD_FAILURE() << "malformed stats row: " << line;
        else
            rows.push_back(
                {line.substr(0, space), line.substr(space + 1)});
    }
    return rows;
}

/** Exact for integer-literal values; relative 1e-9 otherwise (FP
 *  contraction headroom, far below any behavioural change). */
void
expectValueMatch(const Row &want, const Row &got)
{
    if (want.value == got.value)
        return;
    const bool integral =
        want.value.find('.') == std::string::npos &&
        want.value.find('e') == std::string::npos &&
        want.value.find("inf") == std::string::npos &&
        want.value.find("nan") == std::string::npos;
    if (integral) {
        FAIL() << want.name << ": expected " << want.value << ", got "
               << got.value;
    }
    const double w = std::stod(want.value);
    const double g = std::stod(got.value);
    const double scale = std::max(std::abs(w), std::abs(g));
    EXPECT_LE(std::abs(w - g), 1e-9 * std::max(scale, 1.0))
        << want.name << ": expected " << want.value << ", got "
        << got.value;
}

void
checkGolden(const std::string &name, const std::string &dump)
{
    const std::string path = goldenPath(name);

    if (g_update) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << dump;
        std::fprintf(stderr, "updated %s\n", path.c_str());
        return;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " — run dapsim_golden_tests --update-golden";
    std::stringstream buf;
    buf << is.rdbuf();

    const std::vector<Row> want = parseRows(buf.str());
    const std::vector<Row> got = parseRows(dump);
    ASSERT_EQ(want.size(), got.size())
        << "row count changed; regenerate with --update-golden if "
           "intended";
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i].name, got[i].name) << "row " << i;
        expectValueMatch(want[i], got[i]);
    }
}

TEST(GoldenRuns, SectoredDap)
{
    checkGolden("sectored", runScenario(MsArch::Sectored));
}
TEST(GoldenRuns, AlloyDap)
{
    checkGolden("alloy", runScenario(MsArch::Alloy));
}
TEST(GoldenRuns, EdramDap)
{
    checkGolden("edram", runScenario(MsArch::Edram));
}
TEST(GoldenRuns, ZipfDriftDap)
{
    checkGolden("zipf_drift", runZipfDriftScenario());
}
TEST(GoldenRuns, TieredRemoteDap)
{
    checkGolden("tiered_remote",
                runScenario(MsArch::Sectored, /*remote=*/true));
}
TEST(GoldenRuns, RemoteDisabledIsBitIdentical)
{
    // The remote tier defaults to disabled, and a disabled tier must
    // be invisible: the run reproduces the pre-existing "sectored"
    // golden byte-for-byte (same row set, same values). This pins the
    // enable-gating of every remote stats row, checkpoint byte and
    // trace column.
    checkGolden("sectored",
                runScenario(MsArch::Sectored, /*remote=*/false));
}

} // namespace
} // namespace dapsim

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-golden")
            dapsim::g_update = true;
    if (const char *env = std::getenv("DAPSIM_UPDATE_GOLDEN"))
        if (env[0] != '\0' && env[0] != '0')
            dapsim::g_update = true;
    return RUN_ALL_TESTS();
}
