/**
 * @file
 * Tests for the experiment orchestration subsystem: determinism of
 * sweeps under concurrency, failure isolation, ordered delivery, and
 * the thread pool itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "exp/sweep_runner.hh"
#include "exp/thread_pool.hh"
#include "sim/presets.hh"

namespace dapsim
{
namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

Mix
tinyMix(const std::string &workload)
{
    WorkloadProfile w = workloadByName(workload);
    w.params.footprintBytes = 256 * kKiB;
    return rateMix(w, 4);
}

/** Queue the 2-policy x 3-workload grid used by the determinism tests. */
void
addTestGrid(exp::SweepRunner &runner)
{
    runner.addGrid(tinySystem(),
                   {tinyMix("bwaves"), tinyMix("mcf"),
                    tinyMix("omnetpp")},
                   {PolicyKind::Baseline, PolicyKind::Dap}, 2'000);
}

/** Run the test grid on @p threads workers. */
std::vector<exp::JobResult>
runTestGrid(std::size_t threads)
{
    exp::SweepRunner runner;
    addTestGrid(runner);
    return runner.run(threads);
}

/** Every metric of @p a and @p b is bit-identical. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.msHitRatio, b.msHitRatio);
    EXPECT_EQ(a.msReadMissRatio, b.msReadMissRatio);
    EXPECT_EQ(a.mmCasFraction, b.mmCasFraction);
    EXPECT_EQ(a.tagCacheMissRatio, b.tagCacheMissRatio);
    EXPECT_EQ(a.avgL3ReadMissLatency, b.avgL3ReadMissLatency);
    EXPECT_EQ(a.l3Mpki, b.l3Mpki);
    EXPECT_EQ(a.readGBps, b.readGBps);
    EXPECT_EQ(a.fwb, b.fwb);
    EXPECT_EQ(a.wb, b.wb);
    EXPECT_EQ(a.ifrm, b.ifrm);
    EXPECT_EQ(a.sfrm, b.sfrm);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    exp::ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    exp::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(SweepRunner, GridExpansionIsMixMajor)
{
    exp::SweepRunner runner;
    addTestGrid(runner);
    EXPECT_EQ(runner.jobCount(), 6u);
}

TEST(SweepRunner, ParallelRunIsBitIdenticalToSerial)
{
    const auto serial = runTestGrid(1);
    const auto parallel = runTestGrid(4);
    ASSERT_EQ(serial.size(), 6u);
    ASSERT_EQ(parallel.size(), 6u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        expectIdentical(serial[i].result, parallel[i].result);
    }
}

TEST(SweepRunner, RepeatedParallelRunsAgree)
{
    // Re-running the same grid in parallel twice must also agree
    // (no dependence on thread scheduling at all).
    const auto a = runTestGrid(4);
    const auto b = runTestGrid(4);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i].result, b[i].result);
}

TEST(SweepRunner, ThrowingJobFailsAloneAndSweepCompletes)
{
    exp::SweepRunner runner;
    runner.addGrid(tinySystem(), {tinyMix("bwaves")},
                   {PolicyKind::Baseline}, 2'000);

    exp::JobSpec bad;
    bad.label = "deliberate-failure";
    bad.custom = []() -> RunResult {
        throw std::runtime_error("injected fault");
    };
    const std::size_t bad_index = runner.add(std::move(bad));

    runner.addGrid(tinySystem(), {tinyMix("mcf")},
                   {PolicyKind::Baseline}, 2'000);

    const auto results = runner.run(4);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[bad_index].ok);
    EXPECT_EQ(results[bad_index].error, "injected fault");
    EXPECT_TRUE(results[2].ok);
    EXPECT_GT(results[2].result.throughput(), 0.0);
}

/** Sink recording delivery order and totals. */
class RecordingSink : public exp::ResultSink
{
  public:
    void begin(std::size_t total) override { total_ = total; }
    void consume(const exp::JobResult &r) override
    {
        order_.push_back(r.index);
    }
    void end() override { ended_ = true; }

    std::size_t total_ = 0;
    std::vector<std::size_t> order_;
    bool ended_ = false;
};

TEST(SweepRunner, SinksReceiveResultsInSubmissionOrder)
{
    exp::SweepRunner runner;
    // Custom jobs with deliberately uneven durations so completion
    // order scrambles under 4 threads.
    for (int i = 0; i < 8; ++i) {
        exp::JobSpec spec;
        spec.label = "job" + std::to_string(i);
        spec.custom = [i]() {
            RunResult r;
            // Busy work inversely proportional to index: later jobs
            // finish first.
            volatile double x = 0;
            for (int k = 0; k < (8 - i) * 100'000; ++k)
                x = x + k;
            r.ipc = {static_cast<double>(i)};
            return r;
        };
        runner.add(std::move(spec));
    }
    RecordingSink sink;
    runner.addSink(&sink);
    const auto results = runner.run(4);

    EXPECT_EQ(sink.total_, 8u);
    EXPECT_TRUE(sink.ended_);
    ASSERT_EQ(sink.order_.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(sink.order_[i], i);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(results[i].result.ipc[0], static_cast<double>(i));
}

TEST(Job, EchoesSpecIdentityFields)
{
    exp::JobSpec spec;
    spec.cfg = tinySystem();
    spec.mix = tinyMix("bwaves");
    spec.policy = PolicyKind::Dap;
    spec.instr = 1'000;
    spec.seedSalt = 7;
    spec.knobs["capacity_mb"] = "2";
    const exp::JobResult r = exp::runJob(spec, 3);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.index, 3u);
    EXPECT_EQ(r.archName, "sectored");
    EXPECT_EQ(r.policyName, "dap");
    EXPECT_EQ(r.mixName, "bwaves-rate4");
    EXPECT_EQ(r.numCores, 4u);
    EXPECT_EQ(r.instr, 1'000u);
    EXPECT_EQ(r.seedSalt, 7u);
    EXPECT_EQ(r.knobs.at("capacity_mb"), "2");
    EXPECT_EQ(r.result.policyName, "dap");
}

TEST(Job, InvalidSpecBecomesFailedJobNotProcessExit)
{
    // runMix() would fatal() (process exit) on these; the job layer
    // must convert them to reported failures instead.
    exp::JobSpec narrow;
    narrow.cfg = tinySystem(); // 4 cores
    narrow.mix = rateMix(workloadByName("bwaves"), 8);
    narrow.instr = 1'000;
    const exp::JobResult r1 = exp::runJob(narrow, 0);
    EXPECT_FALSE(r1.ok);
    EXPECT_NE(r1.error.find("8-wide"), std::string::npos) << r1.error;

    exp::JobSpec zero;
    zero.cfg = tinySystem();
    zero.mix = tinyMix("bwaves");
    zero.instr = 0;
    const exp::JobResult r2 = exp::runJob(zero, 1);
    EXPECT_FALSE(r2.ok);
    EXPECT_NE(r2.error.find("zero instruction"), std::string::npos)
        << r2.error;
}

TEST(Job, PolicyNamesRoundTrip)
{
    for (PolicyKind p :
         {PolicyKind::Baseline, PolicyKind::Dap, PolicyKind::Sbd,
          PolicyKind::SbdWt, PolicyKind::Batman, PolicyKind::Bear})
        EXPECT_EQ(exp::policyKindFromName(exp::policyKindName(p)), p);
}

} // namespace
} // namespace dapsim
