/**
 * @file
 * Unit tests for the sectored DRAM cache controller.
 */

#include <gtest/gtest.h>

#include "dram/presets.hh"
#include "memside/sectored_dram_cache.hh"
#include "policy_stub.hh"

namespace dapsim
{
namespace
{

/** Fixture: cache + main memory on a private event queue. */
class SectoredCacheTest : public ::testing::Test
{
  protected:
    SectoredCacheTest()
        : mm(eq, presets::ddr4_2400())
    {
        cfg.capacityBytes = 4 * kMiB; // small for tests
        cfg.tagCache.entries = 64;
    }

    SectoredDramCache &
    cache()
    {
        if (!ms)
            ms = std::make_unique<SectoredDramCache>(eq, mm, policy,
                                                     cfg);
        return *ms;
    }

    /** Run a read to completion and return whether done fired. */
    bool
    read(Addr a)
    {
        bool fired = false;
        cache().handleRead(a, [&] { fired = true; });
        eq.run();
        return fired;
    }

    EventQueue eq;
    DramSystem mm;
    StubPolicy policy;
    SectoredDramCacheConfig cfg;
    std::unique_ptr<SectoredDramCache> ms;
};

TEST_F(SectoredCacheTest, ColdReadMissesAndFills)
{
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(cache().readMisses.value(), 1u);
    EXPECT_EQ(cache().readHits.value(), 0u);
    EXPECT_GT(cache().fills.value(), 0u);
    EXPECT_GT(mm.casReads(), 0u);
}

TEST_F(SectoredCacheTest, SecondReadHits)
{
    read(0x1000);
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(cache().readHits.value(), 1u);
    EXPECT_EQ(cache().cleanReadHits.value(), 1u);
}

TEST_F(SectoredCacheTest, FootprintPrefetchMakesNeighboursHit)
{
    read(0x1000); // cold fetch brings a run of neighbours
    EXPECT_TRUE(read(0x1040));
    EXPECT_EQ(cache().readHits.value(), 1u);
}

TEST_F(SectoredCacheTest, WarmTouchPrimesTheDirectory)
{
    cache().warmTouch(0x2000, false);
    EXPECT_TRUE(cache().isBlockResident(0x2000));
    read(0x2000);
    EXPECT_EQ(cache().readHits.value(), 1u);
    EXPECT_EQ(cache().readMisses.value(), 0u);
}

TEST_F(SectoredCacheTest, WriteAllocatesAndMarksDirty)
{
    cache().handleWrite(0x3000);
    eq.run();
    EXPECT_EQ(cache().writeMisses.value(), 1u);
    read(0x3000);
    EXPECT_EQ(cache().readHits.value(), 1u);
    EXPECT_EQ(cache().cleanReadHits.value(), 0u); // dirty hit
}

TEST_F(SectoredCacheTest, WriteHitAfterSectorResident)
{
    read(0x4000);
    cache().handleWrite(0x4000);
    eq.run();
    EXPECT_EQ(cache().writeHits.value(), 1u);
}

TEST_F(SectoredCacheTest, FillBypassLeavesBlockNonResident)
{
    policy.bypassFill = true;
    read(0x5000);
    EXPECT_GT(cache().fillsBypassed.value(), 0u);
    EXPECT_EQ(cache().fills.value(), 0u);
    EXPECT_FALSE(cache().isBlockResident(0x5000));
    // The dropped fill means the block misses again (the delta-cost
    // the paper accepts).
    policy.bypassFill = false;
    read(0x5000);
    EXPECT_EQ(cache().readMisses.value(), 2u);
}

TEST_F(SectoredCacheTest, WriteBypassGoesToMemoryAndInvalidates)
{
    read(0x6000); // make the block resident & clean
    const auto mm_writes_before = mm.casWrites();
    policy.bypassWrite = true;
    cache().handleWrite(0x6000);
    eq.run();
    EXPECT_EQ(cache().writesBypassed.value(), 1u);
    EXPECT_GT(mm.casWrites(), mm_writes_before);
    // The stale cached copy must have been invalidated.
    EXPECT_FALSE(cache().isBlockResident(0x6000));
}

TEST_F(SectoredCacheTest, IfrmServesCleanHitFromMemory)
{
    read(0x7000);
    policy.forceReadMiss = true;
    const auto mm_reads_before = mm.casReads();
    EXPECT_TRUE(read(0x7000));
    EXPECT_EQ(cache().forcedReadMisses.value(), 1u);
    EXPECT_GT(mm.casReads(), mm_reads_before);
    // Still counted as a (clean) hit; the block stays resident.
    EXPECT_EQ(cache().readHits.value(), 1u);
    EXPECT_TRUE(cache().isBlockResident(0x7000));
}

TEST_F(SectoredCacheTest, IfrmNotAppliedToDirtyHits)
{
    cache().handleWrite(0x7100); // dirty block
    eq.run();
    policy.forceReadMiss = true;
    const auto mm_reads_before = mm.casReads();
    read(0x7100);
    EXPECT_EQ(cache().forcedReadMisses.value(), 0u);
    EXPECT_EQ(mm.casReads(), mm_reads_before);
}

/** Evict @p target_addr's tag-cache entry without touching its MS$
 *  set (warm sectors sharing the set would legitimately re-cache the
 *  metadata). */
void
thrashTagCacheAround(SectoredDramCache &ms,
                     const SectoredDramCacheConfig &cfg,
                     Addr target_addr)
{
    const std::uint64_t target =
        indexHash(target_addr / cfg.sectorBytes) % cfg.numSets();
    int warmed = 0;
    for (std::uint64_t sec = 0x40000000; warmed < 400; ++sec) {
        if (indexHash(sec) % cfg.numSets() == target)
            continue;
        ms.warmTouch(sec * cfg.sectorBytes, false);
        ++warmed;
    }
}

TEST_F(SectoredCacheTest, SfrmWastedOnDirtyHit)
{
    // Make the tag cache miss by thrashing it after priming a dirty
    // block.
    cache().handleWrite(0x8000);
    eq.run();
    thrashTagCacheAround(cache(), cfg, 0x8000);
    policy.speculate = true;
    read(0x8000);
    EXPECT_EQ(cache().speculativeReads.value(), 1u);
    EXPECT_EQ(cache().speculativeWasted.value(), 1u);
}

TEST_F(SectoredCacheTest, SfrmServesCleanDataEarly)
{
    read(0x9000);
    thrashTagCacheAround(cache(), cfg, 0x9000);
    policy.speculate = true;
    EXPECT_TRUE(read(0x9000));
    EXPECT_EQ(cache().speculativeReads.value(), 1u);
    EXPECT_EQ(cache().speculativeWasted.value(), 0u);
}

TEST_F(SectoredCacheTest, DisabledSetServedByMemory)
{
    read(0xA000);
    const std::uint64_t set =
        cache().config().numSets(); // compute via probe below
    (void)set;
    // Disable every set: all traffic must go to memory.
    for (std::uint64_t s = 0; s < cfg.numSets(); ++s)
        policy.disabledSets.insert(s);
    const auto array_cas = cache().arrayCasOps();
    EXPECT_TRUE(read(0xA000));
    cache().handleWrite(0xB000);
    eq.run();
    EXPECT_EQ(cache().arrayCasOps(), array_cas);
}

TEST_F(SectoredCacheTest, SteerServesCleanBlocksFromMemory)
{
    read(0xC000);
    policy.steer = true;
    const auto mm_reads = mm.casReads();
    EXPECT_TRUE(read(0xC000));
    EXPECT_EQ(cache().steeredToMemory.value(), 1u);
    EXPECT_GT(mm.casReads(), mm_reads);
}

TEST_F(SectoredCacheTest, SteerOverriddenForDirtyBlocks)
{
    cache().handleWrite(0xD000);
    eq.run();
    policy.steer = true;
    EXPECT_TRUE(read(0xD000));
    EXPECT_EQ(cache().steerOverridden.value(), 1u);
    EXPECT_EQ(cache().steeredToMemory.value(), 0u);
}

TEST_F(SectoredCacheTest, CleanSectorWritesDirtyBlocksBack)
{
    cache().handleWrite(0xE000);
    cache().handleWrite(0xE040);
    eq.run();
    cache().cleanSector(0xE000);
    eq.run();
    EXPECT_EQ(cache().dirtyWritebacks.value(), 2u);
    // Blocks stay resident but clean.
    policy.forceReadMiss = false;
    read(0xE000);
    EXPECT_EQ(cache().cleanReadHits.value(), 1u);
}

TEST_F(SectoredCacheTest, EvictionWritesBackDirtyBlocks)
{
    // Fill one set beyond associativity with dirty sectors.
    cache(); // construct
    std::vector<Addr> in_one_set;
    const std::uint64_t target_set = 3;
    for (Addr sec = 0; in_one_set.size() < cfg.ways + 1; ++sec) {
        const Addr a = sec * cfg.sectorBytes;
        // Recreate the controller's set mapping via residence probing:
        // warm-touch and check which sectors collide is overkill; use
        // the same hash the cache uses.
        if (indexHash(sec) % cfg.numSets() == target_set)
            in_one_set.push_back(a);
    }
    for (Addr a : in_one_set) {
        cache().handleWrite(a);
        eq.run();
    }
    EXPECT_GE(cache().sectorEvictions.value(), 1u);
    EXPECT_GE(cache().dirtyWritebacks.value(), 1u);
}

TEST_F(SectoredCacheTest, WindowCountersAccumulateDemand)
{
    cache().startWindows(64);
    bool fired = false;
    cache().handleRead(0xF000, [&] { fired = true; });
    cache().handleWrite(0xF040);
    // The window event self-reschedules forever; run a bounded slice.
    eq.run(cpuCyclesToTicks(100'000));
    EXPECT_TRUE(fired);
    EXPECT_GT(policy.windows, 0);
    cache().stopWindows();
}

TEST_F(SectoredCacheTest, MetadataTrafficWithoutTagCache)
{
    cfg.tagCache.enabled = false;
    read(0x1000);
    read(0x1000);
    // Without a tag cache every lookup costs a metadata CAS, so the
    // array sees more than just the data accesses.
    EXPECT_GT(cache().arrayCasOps(), 2u);
}

TEST_F(SectoredCacheTest, TagCacheFiltersMetadataReads)
{
    read(0x1000);
    const auto cas_after_first = cache().arrayCasOps();
    read(0x1000); // tag cache hit: only the data CAS is added
    EXPECT_EQ(cache().arrayCasOps(), cas_after_first + 1);
}

TEST_F(SectoredCacheTest, HitRatioCombinesReadsAndWrites)
{
    read(0x1000);        // miss
    read(0x1000);        // hit
    cache().handleWrite(0x1000); // hit
    eq.run();
    EXPECT_NEAR(cache().hitRatio(), 2.0 / 3.0, 1e-9);
}

} // namespace
} // namespace dapsim
