/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"

namespace dapsim
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int n = 0;
    eq.schedule(1, [&] { ++n; });
    eq.schedule(2, [&] { ++n; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(n, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int n = 0;
    eq.schedule(10, [&] { ++n; });
    eq.schedule(1000, [&] { ++n; });
    eq.run(100);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilStopsOnPredicate)
{
    EventQueue eq;
    int n = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] { ++n; });
    eq.runUntil([&] { return n >= 3; });
    EXPECT_EQ(n, 3);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace dapsim
