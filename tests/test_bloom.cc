/**
 * @file
 * Unit tests for the counting Bloom filter (SBD's Dirty List backend).
 */

#include <gtest/gtest.h>

#include "cache/bloom.hh"

namespace dapsim
{
namespace
{

TEST(CountingBloom, NoFalseNegatives)
{
    CountingBloom b(1024, 3);
    for (std::uint64_t k = 0; k < 100; ++k)
        b.insert(k * 7919);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_TRUE(b.mayContain(k * 7919)) << k;
}

TEST(CountingBloom, EmptyContainsNothing)
{
    CountingBloom b(1024, 3);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(b.mayContain(k));
}

TEST(CountingBloom, RemoveUndoesInsert)
{
    CountingBloom b(1024, 3);
    b.insert(42);
    EXPECT_TRUE(b.mayContain(42));
    b.remove(42);
    EXPECT_FALSE(b.mayContain(42));
}

TEST(CountingBloom, EstimateGrowsWithInsertions)
{
    CountingBloom b(1024, 3);
    EXPECT_EQ(b.estimate(5), 0);
    for (int i = 0; i < 4; ++i)
        b.insert(5);
    EXPECT_GE(b.estimate(5), 4);
}

TEST(CountingBloom, EstimateSaturates)
{
    CountingBloom b(1024, 3, 15);
    for (int i = 0; i < 100; ++i)
        b.insert(9);
    EXPECT_EQ(b.estimate(9), 15);
}

TEST(CountingBloom, ClearResets)
{
    CountingBloom b(256, 2);
    b.insert(1);
    b.insert(2);
    b.clear();
    EXPECT_FALSE(b.mayContain(1));
    EXPECT_FALSE(b.mayContain(2));
}

TEST(CountingBloom, LowFalsePositiveRateWhenSparse)
{
    CountingBloom b(4096, 3);
    for (std::uint64_t k = 0; k < 64; ++k)
        b.insert(k);
    int fp = 0;
    for (std::uint64_t k = 1000; k < 2000; ++k)
        if (b.mayContain(k))
            ++fp;
    EXPECT_LT(fp, 50); // well under 5%
}

TEST(CountingBloomDeathTest, BucketsMustBePowerOfTwo)
{
    EXPECT_DEATH(CountingBloom(1000, 3), "power of two");
}

/** Property sweep over sizes/hash counts. */
class BloomSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(BloomSweep, InsertRemoveRoundTrip)
{
    const auto [buckets, hashes] = GetParam();
    CountingBloom b(buckets, hashes);
    for (std::uint64_t k = 0; k < 32; ++k)
        b.insert(k * 1315423911ULL);
    for (std::uint64_t k = 0; k < 32; ++k)
        EXPECT_TRUE(b.mayContain(k * 1315423911ULL));
    for (std::uint64_t k = 0; k < 32; ++k)
        b.remove(k * 1315423911ULL);
    int residual = 0;
    for (std::uint64_t k = 0; k < 32; ++k)
        if (b.mayContain(k * 1315423911ULL))
            ++residual;
    // Counter collisions can leave a few residual positives at small
    // sizes, but most entries must clear.
    EXPECT_LE(residual, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BloomSweep,
    ::testing::Combine(::testing::Values<std::size_t>(256, 1024, 8192),
                       ::testing::Values(1u, 2u, 3u, 4u)));

} // namespace
} // namespace dapsim
