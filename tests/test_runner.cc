/**
 * @file
 * Tests for the experiment runner plumbing (mix width checks, result
 * harvesting, warm-up defaulting).
 */

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.sectored.capacityBytes = 4 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 5'000;
    return cfg;
}

Mix
tinyMix()
{
    WorkloadProfile w = workloadByName("bwaves");
    w.params.footprintBytes = 256 * kKiB;
    return rateMix(w, 8);
}

TEST(Runner, ResultCarriesMixAndPolicyNames)
{
    const RunResult r = runMix(tinySystem(), tinyMix(), 5'000);
    EXPECT_EQ(r.mixName, "bwaves-rate8");
    EXPECT_EQ(r.policyName, "baseline");
}

TEST(Runner, ReadBandwidthIsPositiveAndBounded)
{
    const RunResult r = runMix(tinySystem(), tinyMix(), 5'000);
    EXPECT_GT(r.readGBps, 0.0);
    // Cannot exceed the sum of all source bandwidths.
    EXPECT_LT(r.readGBps, 102.4 + 38.4);
}

TEST(Runner, CyclesReflectSlowestCore)
{
    const RunResult r = runMix(tinySystem(), tinyMix(), 5'000);
    for (double ipc : r.ipc) {
        // cycles >= instructions / ipc for every core.
        EXPECT_GE(static_cast<double>(r.cycles) * ipc, 5'000 * 0.99);
    }
}

TEST(Runner, HeterogeneousMixRuns)
{
    const auto het = heterogeneousMixes();
    ASSERT_FALSE(het.empty());
    Mix mix = het.front();
    for (auto &app : mix.apps)
        app.params.footprintBytes = 256 * kKiB;
    const RunResult r = runMix(tinySystem(), mix, 4'000);
    EXPECT_EQ(r.ipc.size(), 8u);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST(Runner, ExplicitWarmupOverridesAuto)
{
    SystemConfig cfg = tinySystem();
    cfg.warmupAccessesPerCore = 1; // effectively cold
    const RunResult cold = runMix(cfg, tinyMix(), 5'000);
    cfg.warmupAccessesPerCore = 50'000;
    const RunResult warm = runMix(cfg, tinyMix(), 5'000);
    EXPECT_GT(warm.msHitRatio, cold.msHitRatio);
}

TEST(RunnerDeathTest, MixWidthMustMatchCores)
{
    const Mix narrow = rateMix(workloadByName("bwaves"), 4);
    EXPECT_DEATH((void)runMix(tinySystem(), narrow, 1'000), "width");
}

} // namespace
} // namespace dapsim
