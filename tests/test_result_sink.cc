/**
 * @file
 * Tests for the sweep result sinks: JSON-lines schema round-trip,
 * escaping, and error records. A minimal recursive-descent JSON
 * parser validates that every emitted line is well-formed and
 * extracts the keys the downstream tooling relies on.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include <vector>

#include "common/json_writer.hh"
#include "exp/result_sink.hh"
#include "exp/sweep_runner.hh"
#include "sim/presets.hh"

namespace dapsim
{
namespace
{

// ---- minimal JSON validator ------------------------------------
// Parses one JSON value; on success returns the index one past its
// end. Collects object keys (dot-joined paths) into @p keys.

std::size_t parseValue(const std::string &s, std::size_t i,
                       const std::string &path,
                       std::map<std::string, std::string> &keys);

std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
        ++i;
    return i;
}

std::size_t
parseString(const std::string &s, std::size_t i, std::string *out)
{
    EXPECT_LT(i, s.size());
    EXPECT_EQ(s[i], '"');
    ++i;
    std::string v;
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\') {
            ++i;
            EXPECT_LT(i, s.size());
        }
        v += s[i++];
    }
    EXPECT_LT(i, s.size()) << "unterminated string";
    if (out)
        *out = v;
    return i + 1;
}

std::size_t
parseObject(const std::string &s, std::size_t i,
            const std::string &path,
            std::map<std::string, std::string> &keys)
{
    EXPECT_EQ(s[i], '{');
    i = skipWs(s, i + 1);
    if (i < s.size() && s[i] == '}')
        return i + 1;
    for (;;) {
        std::string key;
        i = parseString(s, skipWs(s, i), &key);
        i = skipWs(s, i);
        EXPECT_LT(i, s.size()) << "truncated object";
        if (i >= s.size())
            return i;
        EXPECT_EQ(s[i], ':') << "missing ':' after key " << key;
        const std::string kpath =
            path.empty() ? key : path + "." + key;
        const std::size_t vstart = skipWs(s, i + 1);
        i = parseValue(s, vstart, kpath, keys);
        keys[kpath] = s.substr(vstart, i - vstart);
        i = skipWs(s, i);
        EXPECT_LT(i, s.size()) << "truncated object";
        if (i >= s.size() || s[i] == '}')
            return i + 1;
        EXPECT_EQ(s[i], ',') << "expected ',' in object";
        i = skipWs(s, i + 1);
    }
}

std::size_t
parseValue(const std::string &s, std::size_t i,
           const std::string &path,
           std::map<std::string, std::string> &keys)
{
    i = skipWs(s, i);
    EXPECT_LT(i, s.size());
    const char c = s[i];
    if (c == '{')
        return parseObject(s, i, path, keys);
    if (c == '[') {
        i = skipWs(s, i + 1);
        if (i < s.size() && s[i] == ']')
            return i + 1;
        for (;;) {
            i = parseValue(s, i, path + "[]", keys);
            i = skipWs(s, i);
            EXPECT_LT(i, s.size());
            if (s[i] == ']')
                return i + 1;
            EXPECT_EQ(s[i], ',');
            i = skipWs(s, i + 1);
        }
    }
    if (c == '"')
        return parseString(s, i, nullptr);
    if (s.compare(i, 4, "true") == 0)
        return i + 4;
    if (s.compare(i, 5, "false") == 0)
        return i + 5;
    if (s.compare(i, 4, "null") == 0)
        return i + 4;
    // number
    std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E'))
        ++i;
    EXPECT_GT(i, start) << "expected a JSON value at index " << start;
    return i;
}

/** Parse one JSON-lines record; returns its key->raw-text map. */
std::map<std::string, std::string>
parseRecord(const std::string &line)
{
    std::map<std::string, std::string> keys;
    const std::size_t end = parseObject(line, 0, "", keys);
    EXPECT_EQ(skipWs(line, end), line.size())
        << "trailing garbage after JSON object";
    return keys;
}

exp::JobSpec
tinySpec(PolicyKind policy)
{
    exp::JobSpec spec;
    spec.cfg = presets::sectoredSystem8();
    spec.cfg.numCores = 4;
    spec.cfg.sectored.capacityBytes = 2 * kMiB;
    spec.cfg.warmupAccessesPerCore = 2'000;
    WorkloadProfile w = workloadByName("bwaves");
    w.params.footprintBytes = 256 * kKiB;
    spec.mix = rateMix(w, 4);
    spec.policy = policy;
    spec.instr = 2'000;
    spec.knobs["capacity_mb"] = "2";
    return spec;
}

exp::JobResult
runTinyJob(PolicyKind policy)
{
    return exp::runJob(tinySpec(policy), 0);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(json::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonLinesSink, RecordCarriesRequiredKeys)
{
    const exp::JobResult r = runTinyJob(PolicyKind::Dap);
    ASSERT_TRUE(r.ok) << r.error;
    const std::string line = exp::jobResultToJson(r);
    const auto keys = parseRecord(line);

    for (const char *k :
         {"schema", "job", "job_id", "ok", "arch", "policy",
          "workload", "cores", "instr", "seed_salt",
          "metrics.throughput",
          "metrics.ipc", "metrics.cycles", "metrics.ms_hit_ratio",
          "metrics.mm_cas_fraction", "metrics.l3_mpki",
          "metrics.read_gbps", "metrics.dap_decisions.fwb",
          "knobs.capacity_mb"})
        EXPECT_TRUE(keys.count(k)) << "missing key: " << k;

    EXPECT_EQ(keys.at("schema"), "\"dapsim.sweep.v1\"");
    EXPECT_EQ(keys.at("ok"), "true");
    EXPECT_EQ(keys.at("arch"), "\"sectored\"");
    EXPECT_EQ(keys.at("policy"), "\"dap\"");
    EXPECT_EQ(keys.at("workload"), "\"bwaves-rate4\"");
    EXPECT_EQ(keys.at("cores"), "4");
    EXPECT_EQ(keys.at("knobs.capacity_mb"), "\"2\"");
}

TEST(JsonLinesSink, MetricsRoundTripThroughJson)
{
    const exp::JobResult r = runTinyJob(PolicyKind::Baseline);
    ASSERT_TRUE(r.ok) << r.error;
    const auto keys = parseRecord(exp::jobResultToJson(r));
    // %.17g round-trips doubles exactly.
    EXPECT_EQ(std::stod(keys.at("metrics.throughput")),
              r.result.throughput());
    EXPECT_EQ(std::stod(keys.at("metrics.ms_hit_ratio")),
              r.result.msHitRatio);
    EXPECT_EQ(std::stoull(keys.at("metrics.cycles")),
              r.result.cycles);
}

TEST(JsonLinesSink, FailedJobBecomesErrorRecord)
{
    exp::JobSpec spec;
    spec.label = "boom";
    spec.custom = []() -> RunResult {
        throw std::runtime_error("bad \"config\"");
    };
    const exp::JobResult r = exp::runJob(spec, 5);
    EXPECT_FALSE(r.ok);
    const auto keys = parseRecord(exp::jobResultToJson(r));
    EXPECT_EQ(keys.at("ok"), "false");
    EXPECT_EQ(keys.at("job"), "5");
    EXPECT_EQ(keys.at("error"), "\"bad \\\"config\\\"\"");
    EXPECT_FALSE(keys.count("metrics.throughput"));
}

TEST(JsonLinesSink, JobIdIsTheStableContentHash)
{
    const exp::JobSpec spec = tinySpec(PolicyKind::Dap);
    const std::string id = exp::jobId(spec);
    ASSERT_EQ(id.size(), 16u);
    for (char c : id)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)))
            << "non-hex job id char: " << c;

    const auto keys =
        parseRecord(exp::jobResultToJson(exp::runJob(spec, 0)));
    EXPECT_EQ(keys.at("job_id"), "\"" + id + "\"");

    // Error records keep the id so a grid stays correlatable.
    exp::JobSpec boom;
    boom.label = "boom";
    boom.custom = []() -> RunResult {
        throw std::runtime_error("nope");
    };
    const auto ekeys =
        parseRecord(exp::jobResultToJson(exp::runJob(boom, 1)));
    EXPECT_EQ(ekeys.at("job_id"), "\"" + exp::jobId(boom) + "\"");
}

TEST(JsonLinesSink, WritesOneLinePerJob)
{
    std::ostringstream os;
    exp::JsonLinesSink sink(os);
    const exp::JobResult r = runTinyJob(PolicyKind::Baseline);
    sink.consume(r);
    sink.consume(r);
    sink.end();
    const std::string out = os.str();
    std::size_t lines = 0;
    std::istringstream is(out);
    for (std::string line; std::getline(is, line);) {
        ++lines;
        parseRecord(line);
    }
    EXPECT_EQ(lines, 2u);
}

// ---- sink failure paths ----------------------------------------

/** A streambuf on which every write fails — EBADF/disk-full stand-in. */
class FailingBuf : public std::streambuf
{
  protected:
    int_type
    overflow(int_type) override
    {
        return traits_type::eof();
    }
};

TEST(JsonLinesSink, WriteFailureThrowsInsteadOfDropping)
{
    FailingBuf buf;
    std::ostream os(&buf);
    exp::JsonLinesSink sink(os);
    const exp::JobResult r = runTinyJob(PolicyKind::Baseline);
    EXPECT_THROW(sink.consume(r), std::runtime_error);
}

/** Throws on one specific submission index, consumes the rest. */
class ThrowOnIndexSink : public exp::ResultSink
{
  public:
    explicit ThrowOnIndexSink(std::size_t index) : index_(index) {}

    void
    consume(const exp::JobResult &r) override
    {
        if (r.index == index_)
            throw std::runtime_error("disk full");
    }

  private:
    std::size_t index_;
};

/** Records the submission order of everything it is fed. */
class RecordingSink : public exp::ResultSink
{
  public:
    void
    consume(const exp::JobResult &r) override
    {
        indices.push_back(r.index);
    }

    std::vector<std::size_t> indices;
};

TEST(SweepRunner, SinkFailureFailsOnlyTheAffectedJob)
{
    exp::SweepRunner runner;
    for (int i = 0; i < 3; ++i) {
        exp::JobSpec spec;
        spec.label = "job" + std::to_string(i);
        spec.custom = []() { return RunResult{}; };
        runner.add(std::move(spec));
    }
    ThrowOnIndexSink bad(1);
    RecordingSink good;
    runner.addSink(&bad);
    runner.addSink(&good);

    const auto results = runner.run(1);
    ASSERT_EQ(results.size(), 3u);
    // The job whose row could not be persisted is failed, loudly.
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("result sink failed"),
              std::string::npos);
    EXPECT_NE(results[1].error.find("disk full"), std::string::npos);
    // Siblings complete, and downstream sinks still saw every row in
    // submission order — a sink failure is never a silent drop.
    EXPECT_TRUE(results[2].ok) << results[2].error;
    EXPECT_EQ(good.indices,
              (std::vector<std::size_t>{0, 1, 2}));
}

} // namespace
} // namespace dapsim
