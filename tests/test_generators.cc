/**
 * @file
 * Unit tests for the synthetic access generators, the 17 workload
 * profiles and the 44-mix roster.
 */

#include <gtest/gtest.h>

#include "trace/mixes.hh"
#include "trace/workloads.hh"

namespace dapsim
{
namespace
{

SyntheticParams
baseParams()
{
    SyntheticParams p;
    p.footprintBytes = 1 * kMiB;
    p.mpki = 25.0;
    p.writeFraction = 0.3;
    p.seed = 77;
    return p;
}

TEST(SyntheticGenerator, DeterministicForSameSeed)
{
    SyntheticGenerator a(baseParams()), b(baseParams());
    TraceRequest ra, rb;
    for (int i = 0; i < 1000; ++i) {
        a.next(ra);
        b.next(rb);
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.instrGap, rb.instrGap);
    }
}

TEST(SyntheticGenerator, StaysWithinFootprint)
{
    SyntheticParams p = baseParams();
    p.base = 0x123400000;
    SyntheticGenerator g(p);
    TraceRequest r;
    for (int i = 0; i < 10000; ++i) {
        g.next(r);
        EXPECT_GE(r.addr, p.base);
        EXPECT_LT(r.addr, p.base + p.footprintBytes);
    }
}

TEST(SyntheticGenerator, WriteFractionApproximatelyHonored)
{
    SyntheticGenerator g(baseParams());
    TraceRequest r;
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        writes += r.isWrite;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(SyntheticGenerator, GapMeanMatchesMpki)
{
    SyntheticGenerator g(baseParams()); // mpki 25 -> mean gap 40
    TraceRequest r;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        sum += static_cast<double>(r.instrGap);
    }
    EXPECT_NEAR(sum / n, 40.0, 3.0);
}

TEST(SyntheticGenerator, StreamingIsSequential)
{
    SyntheticParams p = baseParams();
    p.streamFraction = 1.0;
    p.writeFraction = 0.0;
    SyntheticGenerator g(p);
    TraceRequest r;
    g.next(r);
    Addr prev = r.addr;
    for (int i = 0; i < 100; ++i) {
        g.next(r);
        EXPECT_EQ(r.addr, prev + kBlockBytes);
        prev = r.addr;
    }
}

TEST(SyntheticGenerator, HotRegionGetsMostAccesses)
{
    SyntheticParams p = baseParams();
    p.streamFraction = 0.0;
    p.hotFraction = 0.1;
    p.hotProbability = 0.9;
    p.runLength = 1.0;
    SyntheticGenerator g(p);
    TraceRequest r;
    const Addr hot_end = p.footprintBytes / 10;
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        g.next(r);
        hot += r.addr < hot_end;
    }
    // 90% hot + ~10% of the uniform tail also lands there.
    EXPECT_GT(static_cast<double>(hot) / n, 0.85);
}

TEST(StreamKernel, CyclesThroughArray)
{
    StreamKernelGenerator g(4 * kBlockBytes, 10, 0x1000);
    TraceRequest r;
    std::vector<Addr> seen;
    for (int i = 0; i < 8; ++i) {
        g.next(r);
        seen.push_back(r.addr);
        EXPECT_FALSE(r.isWrite);
        EXPECT_EQ(r.instrGap, 10u);
    }
    EXPECT_EQ(seen[0], 0x1000u);
    EXPECT_EQ(seen[3], 0x1000u + 3 * 64);
    EXPECT_EQ(seen[4], 0x1000u); // wrapped
}

TEST(Workloads, RosterHasSeventeenNamedProfiles)
{
    EXPECT_EQ(allWorkloads().size(), 17u);
    EXPECT_EQ(bandwidthSensitiveWorkloads().size(), 12u);
    EXPECT_EQ(bandwidthInsensitiveWorkloads().size(), 5u);
}

TEST(Workloads, PaperNamesPresent)
{
    for (const char *name :
         {"mcf", "omnetpp", "libquantum", "soplex.ref", "hpcg",
          "parboil-lbm", "astar.BigLakes", "bzip2.combined", "gcc.expr",
          "gcc.s04", "gobmk.score2", "sjeng", "milc", "bwaves",
          "leslie3D", "cactusADM", "parboil-histo"})
        EXPECT_NO_FATAL_FAILURE((void)workloadByName(name)) << name;
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)workloadByName("quake3"), "unknown");
}

TEST(Workloads, GeneratorsGetPrivateAddressSlices)
{
    const WorkloadProfile &w = workloadByName("mcf");
    auto g0 = makeGenerator(w, 0);
    auto g3 = makeGenerator(w, 3);
    TraceRequest r0, r3;
    g0->next(r0);
    g3->next(r3);
    EXPECT_LT(r0.addr, 1ULL << 40);
    EXPECT_GE(r3.addr, 3ULL << 40);
    EXPECT_LT(r3.addr, 4ULL << 40);
}

TEST(Workloads, SeedSaltChangesTheStream)
{
    const WorkloadProfile &w = workloadByName("mcf");
    auto a = makeGenerator(w, 0, 1);
    auto b = makeGenerator(w, 0, 2);
    TraceRequest ra, rb;
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        a->next(ra);
        b->next(rb);
        same += ra.addr == rb.addr;
    }
    EXPECT_LT(same, 50);
}

TEST(Mixes, FortyFourTotal)
{
    const auto mixes = allMixes();
    EXPECT_EQ(mixes.size(), 44u);
    int sens = 0, insens = 0, het = 0;
    for (const auto &m : mixes) {
        EXPECT_EQ(m.apps.size(), 8u);
        switch (m.kind) {
          case Mix::Kind::Sensitive: ++sens; break;
          case Mix::Kind::Insensitive: ++insens; break;
          case Mix::Kind::Hetero: ++het; break;
        }
    }
    EXPECT_EQ(sens, 12);
    EXPECT_EQ(insens, 5);
    EXPECT_EQ(het, 27);
}

TEST(Mixes, RateMixReplicatesOneApp)
{
    const Mix m = rateMix(workloadByName("hpcg"), 16);
    EXPECT_EQ(m.apps.size(), 16u);
    for (const auto &a : m.apps)
        EXPECT_EQ(a.name, "hpcg");
}

TEST(Mixes, HeterogeneousMixesAreDeterministic)
{
    const auto a = heterogeneousMixes();
    const auto b = heterogeneousMixes();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(a[i].apps[c].name, b[i].apps[c].name);
}

TEST(Mixes, DissimilarMixesCombineBothClasses)
{
    int found = 0;
    for (const auto &m : heterogeneousMixes()) {
        bool has_sens = false, has_insens = false;
        for (const auto &a : m.apps) {
            has_sens |= a.bandwidthSensitive;
            has_insens |= !a.bandwidthSensitive;
        }
        if (has_sens && has_insens)
            ++found;
    }
    EXPECT_GE(found, 10);
}

} // namespace
} // namespace dapsim
