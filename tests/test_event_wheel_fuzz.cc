/**
 * @file
 * Differential fuzz harness for the timing-wheel event queue.
 *
 * Drives the production EventQueue and the frozen binary-heap
 * reference (tests/reference_event_queue.hh) with byte-identical
 * random schedules — same-tick bursts, in-window deltas, deltas that
 * straddle the wheel horizon, far-future refresh-like periods, and
 * limit-bounded run phases with re-injection at the current tick —
 * and requires the two dispatch logs to match exactly. Any divergence
 * in (tick, insertion-order) dispatch is a wheel bug by definition.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "reference_event_queue.hh"

namespace dapsim
{
namespace
{

/** One fuzz run against queue type Q: every rng draw depends only on
 *  the schedule so far, so EventQueue and RefEventQueue consume the
 *  identical decision stream. */
template <class Q>
struct Driver
{
    Q eq;
    Rng rng;
    std::vector<std::pair<Tick, std::uint64_t>> log;
    std::uint64_t nextId = 0;
    std::uint64_t budget;

    Driver(std::uint64_t seed, std::uint64_t event_budget)
        : rng(seed), budget(event_budget)
    {
        log.reserve(event_budget + 64);
    }

    void
    spawn(Tick when)
    {
        const std::uint64_t id = nextId++;
        eq.schedule(when, [this, id] { fire(id); });
    }

    void
    fire(std::uint64_t id)
    {
        log.emplace_back(eq.now(), id);
        const std::uint64_t kids = rng.below(3);
        for (std::uint64_t k = 0; k < kids && budget > 0; ++k) {
            --budget;
            const std::uint64_t r = rng.below(100);
            Tick delta;
            if (r < 15) {
                delta = 0; // same-tick burst
            } else if (r < 65) {
                // Well inside the wheel window (~1.05 us).
                delta = 1 + rng.below(500'000);
            } else if (r < 90) {
                // Straddles the window boundary back and forth.
                delta = 1 + rng.below(3'000'000);
            } else {
                // Refresh/sampler-like far future (overflow heap).
                delta = 7'812'500 + rng.below(30'000'000);
            }
            spawn(eq.now() + delta);
        }
    }

    /** Run in limit-bounded phases with top-up injection, then drain. */
    void
    go()
    {
        for (int i = 0; i < 40 && budget > 0; ++i) {
            --budget;
            spawn(rng.below(2'000'000));
        }
        for (int phase = 0; phase < 30; ++phase) {
            eq.run(eq.now() + rng.below(5'000'000));
            (void)eq.nextEventTick(); // peek must not perturb state
            for (int j = 0; j < 3 && budget > 0; ++j) {
                --budget;
                // Includes when == now(): the post-limit same-tick path.
                spawn(eq.now() + rng.below(2'000'000));
            }
        }
        eq.run();
    }
};

TEST(EventWheelFuzz, MatchesReferenceHeapAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Driver<EventQueue> wheel(seed, 20'000);
        Driver<RefEventQueue> heap(seed, 20'000);
        wheel.go();
        heap.go();
        ASSERT_EQ(wheel.log.size(), heap.log.size()) << "seed " << seed;
        for (std::size_t i = 0; i < wheel.log.size(); ++i) {
            ASSERT_EQ(wheel.log[i], heap.log[i])
                << "seed " << seed << " event " << i;
        }
        EXPECT_EQ(wheel.eq.pending(), 0u);
        EXPECT_EQ(wheel.eq.executed(), heap.eq.executed());
    }
}

TEST(EventWheelFuzz, WindowBoundaryAndWrapDeltas)
{
    // Deterministic deltas targeting the wheel's edges: quantum
    // boundaries, the exact horizon (4096 slots x 256 ps), one past
    // it, multiple wraps, and bitmap word boundaries.
    const std::vector<Tick> deltas = {
        1,         255,       256,        257,        63 * 256,
        64 * 256,  65 * 256,  4095 * 256, 4096 * 256, 4096 * 256 + 1,
        2 * 4096 * 256, 10 * 4096 * 256, 1'000'000'000'000ull,
    };

    auto runOn = [&](auto &eq) {
        std::vector<std::pair<Tick, int>> log;
        int id = 0;
        for (int round = 0; round < 3; ++round)
            for (Tick d : deltas) {
                const int i = id++;
                eq.schedule(eq.now() + d,
                            [&log, &eq, i] {
                                log.emplace_back(eq.now(), i);
                            });
            }
        eq.run();
        return log;
    };

    EventQueue wheel;
    RefEventQueue heap;
    EXPECT_EQ(runOn(wheel), runOn(heap));
}

TEST(EventWheelFuzz, SameTickSelfRescheduleStaysOrdered)
{
    // An event that schedules more work at its own tick must see that
    // work run in the same dispatch round, after already-queued peers.
    auto runOn = [](auto &eq) {
        std::vector<int> order;
        eq.schedule(100, [&] {
            order.push_back(0);
            eq.schedule(100, [&] { order.push_back(2); });
        });
        eq.schedule(100, [&] { order.push_back(1); });
        eq.schedule(200, [&] { order.push_back(3); });
        eq.run();
        return order;
    };
    EventQueue wheel;
    RefEventQueue heap;
    EXPECT_EQ(runOn(wheel), runOn(heap));
}

} // namespace
} // namespace dapsim
