/**
 * @file
 * Tests for the DAP decision tracer and the Chrome trace writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/chrome_trace.hh"
#include "obs/dap_trace.hh"
#include "obs/observability.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "obs_trace_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << path;
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 2'000;
    return cfg;
}

std::vector<AccessGeneratorPtr>
tinyGens(const SystemConfig &cfg)
{
    WorkloadProfile w = workloadByName("mcf");
    w.params.footprintBytes = 256 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(w, i));
    return gens;
}

TEST(DapTraceFile, OneRecordPerWindow)
{
    const std::string path = tmpPath("windows.jsonl");
    SystemConfig cfg = tinySystem();
    cfg.obs.dapTrace = path;
    System sys(cfg, tinyGens(cfg));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();

    ASSERT_NE(sys.dapPolicy(), nullptr);
    const std::uint64_t windows = sys.dapPolicy()->windowsTotal.value();
    EXPECT_GT(windows, 0u);
    EXPECT_EQ(sys.observability()->dapTrace()->windows(), windows);
    sys.observability()->finish();

    std::ifstream is(path);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_NE(line.find("\"schema\":\"dapsim.daptrace.v1\""),
              std::string::npos);
    std::uint64_t rows = 0;
    std::uint64_t expect_window = 1;
    while (std::getline(is, line)) {
        // Records are consecutive windows carrying inputs, targets,
        // credits and uses.
        const std::string want =
            "{\"window\":" + std::to_string(expect_window) + ",";
        EXPECT_EQ(line.rfind(want, 0), 0u) << line;
        for (const char *key :
             {"\"in\":", "\"targets\":", "\"credits\":", "\"used\":"})
            EXPECT_NE(line.find(key), std::string::npos) << line;
        ++expect_window;
        ++rows;
    }
    EXPECT_EQ(rows, windows);
    std::remove(path.c_str());
}

TEST(ChromeTraceFile, WellFormedWithExpectedTracks)
{
    const std::string path = tmpPath("chrome.json");
    SystemConfig cfg = tinySystem();
    cfg.obs.chromeTrace = path;
    System sys(cfg, tinyGens(cfg));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();
    sys.observability()->finish();

    const std::string doc = slurp(path);
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);
    // Bus spans from both DRAM systems and the event-queue counters.
    for (const char *key :
         {"\"thread_name\"", "msArray.ch", "mainMemory.ch",
          "cas-read", "row-hit", "eventQueue.pending"})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    // Braces and brackets balance (cheap well-formedness check; CI
    // runs a real JSON parser over the CLI-produced file).
    std::int64_t braces = 0;
    std::int64_t brackets = 0;
    for (char c : doc) {
        braces += c == '{';
        braces -= c == '}';
        brackets += c == '[';
        brackets -= c == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    std::remove(path.c_str());
}

TEST(ChromeTraceWriter, StreamsSpansAndCounters)
{
    std::ostringstream os;
    obs::ChromeTraceWriter w(os, 0);
    w.span("trackA", "phase1", "cat", 0.0, 12.5);
    w.span("trackA", "phase2", "cat", 12.5, 1.0);
    w.counter("queue", 3.0, 42.0);
    EXPECT_EQ(w.events(), 3u);
    w.finish();
    w.finish(); // idempotent

    const std::string doc = os.str();
    // One thread_name metadata record per track, not per span.
    std::size_t metas = 0;
    for (std::size_t at = doc.find("thread_name");
         at != std::string::npos;
         at = doc.find("thread_name", at + 1))
        ++metas;
    EXPECT_EQ(metas, 1u);
    EXPECT_NE(doc.find("\"name\":\"phase1\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":12.5"), std::string::npos);
    EXPECT_NE(doc.find("\"value\":42"), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);
}

TEST(ObsConfigRules, AnyEnabledReflectsSelections)
{
    obs::ObsConfig cfg;
    EXPECT_FALSE(cfg.anyEnabled());
    EXPECT_FALSE(cfg.samplingEnabled());
    cfg.chromeTrace = "x.json";
    EXPECT_TRUE(cfg.anyEnabled());
    cfg = obs::ObsConfig{};
    cfg.sampleEvery = 100;
    cfg.sampleOut = "x.jsonl";
    EXPECT_TRUE(cfg.samplingEnabled());
    EXPECT_TRUE(cfg.anyEnabled());
}

} // namespace
} // namespace dapsim
