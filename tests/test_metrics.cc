/**
 * @file
 * Unit tests for result aggregation and metrics.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace dapsim
{
namespace
{

TEST(Metrics, GeomeanOfEqualValues)
{
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Metrics, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Metrics, GeomeanEmptyIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(MetricsDeathTest, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH((void)geomean({1.0, 0.0}), "positive");
}

TEST(Metrics, Mean)
{
    EXPECT_NEAR(mean({1.0, 2.0, 6.0}), 3.0, 1e-12);
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Metrics, ThroughputSumsIpc)
{
    RunResult r;
    r.ipc = {0.5, 0.25, 0.25};
    EXPECT_NEAR(r.throughput(), 1.0, 1e-12);
}

TEST(Metrics, WeightedSpeedup)
{
    RunResult r;
    r.ipc = {1.0, 2.0};
    EXPECT_NEAR(r.weightedSpeedup({2.0, 2.0}), 1.5, 1e-12);
}

TEST(MetricsDeathTest, WeightedSpeedupSizeMismatch)
{
    RunResult r;
    r.ipc = {1.0};
    EXPECT_DEATH((void)r.weightedSpeedup({1.0, 1.0}), "mismatch");
}

TEST(Metrics, DecisionFractionsSumToOne)
{
    RunResult r;
    r.fwb = 10;
    r.wb = 20;
    r.ifrm = 30;
    r.sfrm = 40;
    EXPECT_NEAR(r.fwbFraction(), 0.1, 1e-12);
    EXPECT_NEAR(r.wbFraction(), 0.2, 1e-12);
    EXPECT_NEAR(r.ifrmFraction(), 0.3, 1e-12);
    EXPECT_NEAR(r.sfrmFraction(), 0.4, 1e-12);
    EXPECT_NEAR(r.fwbFraction() + r.wbFraction() + r.ifrmFraction() +
                    r.sfrmFraction(),
                1.0, 1e-12);
}

TEST(Metrics, DecisionFractionsZeroWhenNoDecisions)
{
    RunResult r;
    EXPECT_EQ(r.fwbFraction(), 0.0);
    EXPECT_EQ(r.sfrmFraction(), 0.0);
}

} // namespace
} // namespace dapsim
