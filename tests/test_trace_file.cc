/**
 * @file
 * Unit tests for the trace-file generator and its format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/trace_file.hh"

namespace dapsim
{
namespace
{

std::vector<TraceRequest>
sampleRecords()
{
    return {
        {0x1000, false, 10},
        {0x2040, true, 5},
        {0x3000, false, 1},
    };
}

TEST(TraceFile, ParseLineReadsRecords)
{
    TraceRequest r;
    ASSERT_TRUE(TraceFileGenerator::parseLine("12 r 0x1f40", r));
    EXPECT_EQ(r.instrGap, 12u);
    EXPECT_FALSE(r.isWrite);
    EXPECT_EQ(r.addr, 0x1f40u);

    ASSERT_TRUE(TraceFileGenerator::parseLine("3 w ff80", r));
    EXPECT_TRUE(r.isWrite);
    EXPECT_EQ(r.addr, 0xff80u);
}

TEST(TraceFile, ParseLineSkipsCommentsAndBlanks)
{
    TraceRequest r;
    EXPECT_FALSE(TraceFileGenerator::parseLine("# comment", r));
    EXPECT_FALSE(TraceFileGenerator::parseLine("", r));
    EXPECT_FALSE(TraceFileGenerator::parseLine("   ", r));
    EXPECT_FALSE(TraceFileGenerator::parseLine("  # indented", r));
}

TEST(TraceFile, ZeroGapBecomesOne)
{
    TraceRequest r;
    ASSERT_TRUE(TraceFileGenerator::parseLine("0 r 0x40", r));
    EXPECT_EQ(r.instrGap, 1u);
}

TEST(TraceFileDeathTest, MalformedRecordsAreFatal)
{
    TraceRequest r;
    EXPECT_DEATH((void)TraceFileGenerator::parseLine("nonsense", r),
                 "malformed");
    EXPECT_DEATH((void)TraceFileGenerator::parseLine("5 x 0x40", r),
                 "kind");
}

TEST(TraceFileDeathTest, ErrorsNameTheOffendingLine)
{
    TraceRequest r;
    EXPECT_DEATH(
        (void)TraceFileGenerator::parseLine("nonsense", r, 7),
        "malformed record: line 7:");
    EXPECT_DEATH(
        (void)TraceFileGenerator::parseLine("5 x 0x40", r, 12),
        "kind must be 'r' or 'w': line 12:");
}

TEST(TraceFileDeathTest, FileErrorsNameTheOffendingLine)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "dapsim_badline.trace")
            .string();
    {
        std::ofstream out(path);
        out << "# header comment\n"
            << "1 r 0x40\n"
            << "garbage\n";
    }
    EXPECT_DEATH(TraceFileGenerator{path}, "malformed record: line 3:");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, BadAddressesAreFatal)
{
    TraceRequest r;
    // 17 hex digits: past the 64-bit address space.
    EXPECT_DEATH(
        (void)TraceFileGenerator::parseLine(
            "5 r 0x1ffffffffffffffff", r, 4),
        "overflows the 64-bit address space: line 4:");
    EXPECT_DEATH((void)TraceFileGenerator::parseLine("5 r -40", r),
                 "negative");
    EXPECT_DEATH((void)TraceFileGenerator::parseLine("5 r zz", r),
                 "bad hex");
}

TEST(TraceFile, ReplaysInOrderAndLoops)
{
    TraceFileGenerator g(sampleRecords());
    TraceRequest r;
    for (int loop = 0; loop < 3; ++loop) {
        g.next(r);
        EXPECT_EQ(r.addr, 0x1000u);
        g.next(r);
        EXPECT_EQ(r.addr, 0x2040u);
        EXPECT_TRUE(r.isWrite);
        g.next(r);
        EXPECT_EQ(r.addr, 0x3000u);
    }
    EXPECT_EQ(g.loops(), 3u);
    EXPECT_EQ(g.records(), 3u);
}

TEST(TraceFile, BaseOffsetsEveryAddress)
{
    TraceFileGenerator g(sampleRecords(), 0x100000000ULL);
    TraceRequest r;
    g.next(r);
    EXPECT_EQ(r.addr, 0x100001000ULL);
}

TEST(TraceFile, RoundTripsThroughDisk)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "dapsim_test.trace")
            .string();
    writeTraceFile(path, sampleRecords());
    TraceFileGenerator g(path);
    EXPECT_EQ(g.records(), 3u);
    TraceRequest r;
    g.next(r);
    EXPECT_EQ(r.addr, 0x1000u);
    EXPECT_EQ(r.instrGap, 10u);
    g.next(r);
    EXPECT_TRUE(r.isWrite);
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileGenerator("/nonexistent/foo.trace"),
                 "cannot open");
}

TEST(TraceFileDeathTest, EmptyTraceIsFatal)
{
    EXPECT_DEATH(TraceFileGenerator(std::vector<TraceRequest>{}),
                 "no records");
}

} // namespace
} // namespace dapsim
