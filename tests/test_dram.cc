/**
 * @file
 * Unit and behaviour tests for the DRAM timing substrate.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"

namespace dapsim
{
namespace
{

TEST(DramConfig, PresetPeakBandwidths)
{
    EXPECT_NEAR(presets::ddr4_2400().peakGBps(), 38.4, 1e-9);
    EXPECT_NEAR(presets::ddr4_3200().peakGBps(), 51.2, 1e-9);
    EXPECT_NEAR(presets::lpddr4_2400().peakGBps(), 38.4, 1e-9);
    EXPECT_NEAR(presets::hbm_102().peakGBps(), 102.4, 1e-9);
    EXPECT_NEAR(presets::hbm_128().peakGBps(), 128.0, 1e-9);
    EXPECT_NEAR(presets::hbm_205().peakGBps(), 204.8, 1e-9);
    EXPECT_NEAR(presets::edram_dir_51().peakGBps(), 51.2, 1e-9);
}

TEST(DramConfig, EveryPresetMovesOneBlockPerBurst)
{
    for (const auto &cfg :
         {presets::ddr4_2400(), presets::ddr4_3200(),
          presets::lpddr4_2400(), presets::hbm_102(), presets::hbm_128(),
          presets::hbm_205(), presets::edram_dir_51()}) {
        EXPECT_EQ(cfg.burstBytes(), kBlockBytes) << cfg.name;
        EXPECT_NO_FATAL_FAILURE(cfg.validate());
    }
}

TEST(DramConfig, AccessesPerCpuCycle)
{
    // 38.4 GB/s over 64B blocks at 4 GHz = 0.15 accesses per cycle.
    EXPECT_NEAR(presets::ddr4_2400().peakAccessesPerCpuCycle(), 0.15,
                1e-3);
    EXPECT_NEAR(presets::hbm_102().peakAccessesPerCpuCycle(), 0.4,
                1e-3);
}

TEST(DramConfig, BurstTicks)
{
    // DDR4 BL8 = 4 command clocks at 833 ps.
    EXPECT_EQ(presets::ddr4_2400().burstTicks(), 4 * 833u);
    // HBM BL4 on a DDR bus = 2 clocks at 1250 ps.
    EXPECT_EQ(presets::hbm_102().burstTicks(), 2 * 1250u);
}

TEST(DramConfigDeathTest, ValidationCatchesNonsense)
{
    DramConfig c = presets::ddr4_2400();
    c.channelWidthBits = 32; // burst now moves 32B, not one block
    EXPECT_DEATH(c.validate(), "64B");
    DramConfig z = presets::ddr4_2400();
    z.channels = 0;
    EXPECT_DEATH(z.validate(), "geometry");
    DramConfig w = presets::ddr4_2400();
    w.writeQueueLow = w.writeQueueHigh;
    EXPECT_DEATH(w.validate(), "watermarks");
}

TEST(Bank, RowHitIsFasterThanMissIsFasterThanConflict)
{
    const DramConfig cfg = presets::ddr4_2400();
    const Tick period = cfg.periodPs();

    Bank b;
    // Page-empty access: tRCD + tCAS.
    const auto first = b.reserve(cfg, 0, 7);
    EXPECT_TRUE(first.rowEmpty);
    EXPECT_EQ(first.dataReadyAt, (cfg.tRCD + cfg.tCAS) * period);

    // Row hit: tCAS from the bank-ready point.
    const Tick t1 = first.dataReadyAt;
    const auto hit = b.reserve(cfg, t1, 7);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_EQ(hit.dataReadyAt, t1 + cfg.tCAS * period);

    // Conflict: precharge (after tRAS) + activate + read.
    const Tick t2 = hit.dataReadyAt;
    const auto conf = b.reserve(cfg, t2, 9);
    EXPECT_FALSE(conf.rowHit);
    EXPECT_FALSE(conf.rowEmpty);
    EXPECT_GT(conf.dataReadyAt - t2,
              (cfg.tRP + cfg.tRCD + cfg.tCAS) * period - 1);
}

TEST(Bank, PeekDoesNotMutate)
{
    const DramConfig cfg = presets::hbm_102();
    Bank b;
    (void)b.reserve(cfg, 0, 3);
    const Tick ready = b.readyAt();
    const auto p = b.peek(cfg, ready, 5);
    EXPECT_FALSE(p.rowHit);
    EXPECT_EQ(b.openRow(), 3u);
    EXPECT_EQ(b.readyAt(), ready);
}

TEST(Bank, PrechargeClosesRow)
{
    const DramConfig cfg = presets::hbm_102();
    Bank b;
    (void)b.reserve(cfg, 0, 3);
    b.precharge();
    EXPECT_EQ(b.openRow(), Bank::kNoRow);
}

/** Fixture with a DRAM system on its own event queue. */
class DramSystemTest : public ::testing::Test
{
  protected:
    EventQueue eq;
};

TEST_F(DramSystemTest, SingleReadLatency)
{
    DramSystem mem(eq, presets::ddr4_2400());
    Tick done_at = 0;
    mem.access(0, false, [&] { done_at = eq.now(); });
    eq.run();
    const DramConfig cfg = presets::ddr4_2400();
    const Tick period = cfg.periodPs();
    const Tick expected = (cfg.tRCD + cfg.tCAS) * period +
                          cfg.burstTicks() +
                          cfg.ioDelayCycles * period;
    EXPECT_EQ(done_at, expected);
    EXPECT_EQ(mem.casReads(), 1u);
    EXPECT_EQ(mem.casOps(), 1u);
}

TEST_F(DramSystemTest, WritesArePostedAndCounted)
{
    DramSystem mem(eq, presets::ddr4_2400());
    for (int i = 0; i < 10; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, true);
    eq.run();
    EXPECT_EQ(mem.casWrites(), 10u);
    EXPECT_EQ(mem.dataBytes(), 10u * kBlockBytes);
}

TEST_F(DramSystemTest, SequentialStreamGetsRowHits)
{
    DramSystem mem(eq, presets::hbm_102());
    for (Addr a = 0; a < 512 * kBlockBytes; a += kBlockBytes)
        mem.access(a, false);
    eq.run();
    EXPECT_EQ(mem.casReads(), 512u);
    EXPECT_GT(mem.rowHits(), mem.rowMisses());
}

TEST_F(DramSystemTest, StreamingApproachesPeakBandwidth)
{
    DramSystem mem(eq, presets::hbm_102());
    const int n = 4096;
    int done = 0;
    for (Addr a = 0; a < n * static_cast<Addr>(kBlockBytes);
         a += kBlockBytes)
        mem.access(a, false, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, n);
    const double seconds =
        static_cast<double>(eq.now()) / kPsPerSecond;
    const double gbps = n * 64.0 / seconds / 1e9;
    // A pure read stream should deliver well over 70% of 102.4 GB/s.
    EXPECT_GT(gbps, 0.70 * 102.4);
    EXPECT_LE(gbps, 102.4 + 1e-6);
}

TEST_F(DramSystemTest, RandomTrafficDeliversLessThanStreaming)
{
    DramSystem seq(eq, presets::hbm_102());
    // interleave: run sequential first
    const int n = 2048;
    for (int i = 0; i < n; ++i)
        seq.access(static_cast<Addr>(i) * kBlockBytes, false);
    eq.run();
    const Tick seq_time = eq.now();

    EventQueue eq2;
    DramSystem rnd(eq2, presets::hbm_102());
    std::uint64_t x = 12345;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        rnd.access((x >> 20) % (1ULL << 30), false);
    }
    eq2.run();
    EXPECT_GT(eq2.now(), seq_time);
}

TEST_F(DramSystemTest, DemandReadsOvertakeLowPriorityFetches)
{
    DramSystem mem(eq, presets::ddr4_2400());
    // Flood with low-priority fetches, then issue one demand read.
    Tick demand_done = 0;
    std::vector<Tick> low_done;
    for (int i = 0; i < 64; ++i)
        mem.access(static_cast<Addr>(i * 97) * kBlockBytes, false,
                   [&] { low_done.push_back(eq.now()); }, 0, true);
    mem.access(1 * kMiB, false, [&] { demand_done = eq.now(); });
    eq.run();
    ASSERT_EQ(low_done.size(), 64u);
    // The demand read must not finish behind the whole flood.
    EXPECT_LT(demand_done, low_done.back());
}

TEST_F(DramSystemTest, DeterministicAcrossRuns)
{
    auto run = [] {
        EventQueue q;
        DramSystem mem(q, presets::ddr4_2400());
        std::uint64_t x = 777;
        for (int i = 0; i < 500; ++i) {
            x = x * 6364136223846793005ULL + 1;
            mem.access((x >> 16) % (1ULL << 28), (x & 1) != 0);
        }
        q.run();
        return std::make_tuple(q.now(), mem.rowHits(),
                               mem.meanReadLatency());
    };
    EXPECT_EQ(run(), run());
}

TEST_F(DramSystemTest, ChannelLoadIsBalancedForAlignedStructures)
{
    // Regression for the channel-aliasing bug: row-aligned structures
    // (metadata blocks every 256 blocks) must spread over channels.
    DramSystem mem(eq, presets::hbm_102());
    for (int i = 0; i < 1024; ++i)
        mem.access(static_cast<Addr>(i) * 16 * kKiB, false);
    eq.run();
    std::uint64_t min_cas = ~0ull, max_cas = 0;
    for (std::uint32_t c = 0; c < mem.numChannels(); ++c) {
        const auto n = mem.channel(c).casReads.value();
        min_cas = std::min(min_cas, n);
        max_cas = std::max(max_cas, n);
    }
    EXPECT_GT(min_cas, 0u);
    EXPECT_LT(max_cas, 1024u / 2);
}

TEST_F(DramSystemTest, TurnaroundsAreCounted)
{
    DramSystem mem(eq, presets::ddr4_2400());
    for (int i = 0; i < 16; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, (i % 2) != 0);
    eq.run();
    std::uint64_t turns = 0;
    for (std::uint32_t c = 0; c < mem.numChannels(); ++c)
        turns += mem.channel(c).turnarounds.value();
    EXPECT_GT(turns, 0u);
}

} // namespace
} // namespace dapsim
