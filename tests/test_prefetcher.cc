/**
 * @file
 * Unit tests for the multi-stream stride prefetcher.
 */

#include <gtest/gtest.h>

#include "cpu/stride_prefetcher.hh"

namespace dapsim
{
namespace
{

PrefetcherConfig
config()
{
    PrefetcherConfig c;
    c.streams = 4;
    c.degree = 2;
    c.distance = 1;
    c.minConfidence = 2;
    return c;
}

TEST(StridePrefetcher, DetectsUnitStride)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    pf.observe(0x1000, out);          // allocate stream
    pf.observe(0x1040, out);          // stride 1, confidence 1
    EXPECT_TRUE(out.empty());
    pf.observe(0x1080, out);          // confidence 2: fire
    ASSERT_EQ(out.size(), 2u);
    // block 0x1080/64 = 66; distance 1, degree 2 -> blocks 68, 69.
    EXPECT_EQ(out[0], 68u * 64);
    EXPECT_EQ(out[1], 69u * 64);
}

TEST(StridePrefetcher, DetectsLargerStrides)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    pf.observe(0x0, out);
    pf.observe(0x100, out); // stride 4 blocks
    pf.observe(0x200, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (8u + 4u * 2) * 64);  // block 8 + stride*(1+1)
}

TEST(StridePrefetcher, RandomAccessesDontTrigger)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    std::uint64_t x = 1;
    for (int i = 0; i < 100; ++i) {
        x = x * 6364136223846793005ULL + 1;
        pf.observe((x >> 16) % (1ULL << 20) * 64, out);
    }
    EXPECT_LT(out.size(), 10u);
}

TEST(StridePrefetcher, RepeatedSameBlockIsIgnored)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(0x4000, out);
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, DisabledEmitsNothing)
{
    PrefetcherConfig c = config();
    c.enabled = false;
    StridePrefetcher pf(c);
    std::vector<Addr> out;
    for (Addr a = 0; a < 100 * 64; a += 64)
        pf.observe(a, out);
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, TracksMultipleStreams)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    // Two interleaved unit-stride streams in different pages.
    for (int i = 0; i < 6; ++i) {
        pf.observe(0x10000 + static_cast<Addr>(i) * 64, out);
        pf.observe(0x80000 + static_cast<Addr>(i) * 64, out);
    }
    EXPECT_GE(out.size(), 8u);
    EXPECT_EQ(pf.issued.value(), out.size());
}

TEST(StridePrefetcher, StreamTableReplacesLru)
{
    PrefetcherConfig c = config();
    c.streams = 2;
    StridePrefetcher pf(c);
    std::vector<Addr> out;
    // Train stream A to full confidence.
    for (int i = 0; i < 4; ++i)
        pf.observe(0x10000 + static_cast<Addr>(i) * 64, out);
    const std::size_t a_out = out.size();
    EXPECT_GT(a_out, 0u);
    // Touch pages B and C: stream A's slot is recycled.
    pf.observe(0x20000, out);
    pf.observe(0x30000, out);
    out.clear();
    // A restart of stream A must retrain from scratch.
    pf.observe(0x10000 + 4 * 64, out);
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, NegativeStrides)
{
    StridePrefetcher pf(config());
    std::vector<Addr> out;
    pf.observe(100 * 64, out);
    pf.observe(99 * 64, out);
    pf.observe(98 * 64, out);
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[0], 96u * 64); // 98 - (1+1)
}

} // namespace
} // namespace dapsim
