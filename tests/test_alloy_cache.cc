/**
 * @file
 * Unit tests for the Alloy cache controller.
 */

#include <gtest/gtest.h>

#include "dram/presets.hh"
#include "memside/alloy_cache.hh"
#include "policy_stub.hh"

namespace dapsim
{
namespace
{

class AlloyCacheTest : public ::testing::Test
{
  protected:
    AlloyCacheTest() : mm(eq, presets::ddr4_2400())
    {
        cfg.capacityBytes = 1 * kMiB; // small for tests
        cfg.dbc.entries = 64;
    }

    AlloyCache &
    cache()
    {
        if (!ms)
            ms = std::make_unique<AlloyCache>(eq, mm, policy, cfg);
        return *ms;
    }

    bool
    read(Addr a)
    {
        bool fired = false;
        cache().handleRead(a, [&] { fired = true; });
        eq.run();
        return fired;
    }

    EventQueue eq;
    DramSystem mm;
    StubPolicy policy;
    AlloyCacheConfig cfg;
    std::unique_ptr<AlloyCache> ms;
};

TEST(AlloyConfig, TadDeratesEffectiveBandwidthByTwoThirds)
{
    EventQueue eq;
    DramSystem mm(eq, presets::ddr4_2400());
    StubPolicy policy;
    AlloyCacheConfig cfg;
    AlloyCache alloy(eq, mm, policy, cfg);
    // HBM BL4 = 2 clocks data; TAD = 3 clocks: 2/3 of 0.4 acc/cycle.
    EXPECT_NEAR(alloy.effectivePeakAccPerCycle(), 0.4 * 2.0 / 3.0,
                1e-6);
}

TEST_F(AlloyCacheTest, ColdMissFetchesFromMemoryAndFills)
{
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(cache().readMisses.value(), 1u);
    EXPECT_EQ(cache().fills.value(), 1u);
    EXPECT_GT(mm.casReads(), 0u);
}

TEST_F(AlloyCacheTest, HitServedByTadRead)
{
    read(0x1000);
    const auto mm_reads = mm.casReads();
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(cache().readHits.value(), 1u);
    // Predictor may still launch an early read the first few times,
    // but once trained a hit needs no memory read.
    read(0x1000);
    read(0x1000);
    const auto mm_reads2 = mm.casReads();
    read(0x1000);
    EXPECT_EQ(mm.casReads(), mm_reads2);
    (void)mm_reads;
}

TEST_F(AlloyCacheTest, DirectMappedConflictEvicts)
{
    read(0x1000);
    // Same set, different tag: capacity/64 blocks apart.
    const Addr conflicting = 0x1000 + cfg.capacityBytes;
    // Find an address that actually collides under the hashed index —
    // scan for one.
    Addr victim_addr = 0;
    for (Addr cand = conflicting; cand < conflicting + (64u << 20);
         cand += kBlockBytes) {
        if (indexHash(blockNumber(cand)) % cfg.numSets() ==
                indexHash(blockNumber(0x1000)) % cfg.numSets() &&
            cand != 0x1000) {
            victim_addr = cand;
            break;
        }
    }
    ASSERT_NE(victim_addr, 0u);
    read(victim_addr);
    // The original block was evicted (direct-mapped).
    read(0x1000);
    EXPECT_EQ(cache().readMisses.value(), 3u);
}

TEST_F(AlloyCacheTest, DirtyVictimWrittenBackOnFill)
{
    cache().handleWrite(0x2000);
    eq.run();
    Addr conflict = 0;
    for (Addr cand = 0x2000 + kBlockBytes; ; cand += kBlockBytes) {
        if (indexHash(blockNumber(cand)) % cfg.numSets() ==
            indexHash(blockNumber(0x2000)) % cfg.numSets()) {
            conflict = cand;
            break;
        }
    }
    const auto wb_before = cache().dirtyWritebacks.value();
    read(conflict);
    EXPECT_EQ(cache().dirtyWritebacks.value(), wb_before + 1);
}

TEST_F(AlloyCacheTest, PresenceBitSkipsTadFetchForPresentWrites)
{
    read(0x3000);
    const auto cas = cache().arrayCasOps();
    cache().handleWrite(0x3000);
    eq.run();
    // Present + presence bit: only the TAD write, no TAD read.
    EXPECT_EQ(cache().arrayCasOps(), cas + 1);
}

TEST_F(AlloyCacheTest, NoPresenceBitCostsTadFetchOnAbsentWrites)
{
    cfg.presenceBit = false;
    const auto cas0 = cache().arrayCasOps();
    cache().handleWrite(0x4000);
    eq.run();
    // Absent write without presence bit: discovery TAD read + victim
    // TAD read + TAD write.
    EXPECT_GE(cache().arrayCasOps(), cas0 + 3);
}

TEST_F(AlloyCacheTest, WriteThroughKeepsLineClean)
{
    read(0x5000);
    policy.writeThrough = true;
    const auto mm_writes = mm.casWrites();
    cache().handleWrite(0x5000);
    eq.run();
    EXPECT_GT(mm.casWrites(), mm_writes);
    // The line stays clean: a later read is a clean hit.
    read(0x5000);
    EXPECT_GT(cache().cleanReadHits.value(), 0u);
}

TEST_F(AlloyCacheTest, IfrmViaDbcServesFromMemoryWithoutTad)
{
    read(0x6000); // resident, clean; DBC learns clean on the hit
    read(0x6000);
    policy.forceReadMiss = true;
    const auto array_cas = cache().arrayCasOps();
    const auto mm_reads = mm.casReads();
    EXPECT_TRUE(read(0x6000));
    EXPECT_EQ(cache().forcedReadMisses.value(), 1u);
    EXPECT_EQ(cache().arrayCasOps(), array_cas); // no TAD read!
    EXPECT_GT(mm.casReads(), mm_reads);
}

TEST_F(AlloyCacheTest, IfrmOnAbsentLineBypassesFill)
{
    // Prime the DBC group as clean via a neighbouring set.
    read(0x7000);
    read(0x7000);
    policy.forceReadMiss = true;
    // A different absent address in the same DBC group: groups are
    // 64 consecutive block addresses (one 4 KB stretch).
    const auto fills = cache().fills.value();
    const Addr probe = 0x7000 + kBlockBytes;
    read(probe);
    // Whether IFRM applied depends on the DBC knowing that set; if it
    // did, no fill happened.
    if (cache().forcedReadMisses.value() > 0) {
        EXPECT_EQ(cache().fills.value(), fills);
    }
}

TEST_F(AlloyCacheTest, BearBypassPreventsFill)
{
    class BypassAll : public PartitionPolicy
    {
      public:
        bool shouldBypassFillForReuse(Addr) override { return true; }
        const char *name() const override { return "bypass-all"; }
    } bypass;
    AlloyCache alloy(eq, mm, bypass, cfg);
    bool fired = false;
    alloy.handleRead(0x1000, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(alloy.fills.value(), 0u);
    EXPECT_EQ(alloy.fillsBypassed.value(), 1u);
    // Still absent: misses again.
    alloy.handleRead(0x1000, [&] {});
    eq.run();
    EXPECT_EQ(alloy.readMisses.value(), 2u);
}

TEST_F(AlloyCacheTest, PredictorTrainsTowardActualOutcome)
{
    // Cold misses within one 4 KB region train its predictor counter
    // toward "miss"; later reads in that region launch early memory
    // reads.
    for (int i = 0; i < 40; ++i)
        read(0x100000 + static_cast<Addr>(i) * kBlockBytes);
    EXPECT_GT(cache().earlyMissReads.value(), 0u);
}

TEST_F(AlloyCacheTest, WarmTouchInstallsLines)
{
    cache().warmTouch(0x8000, false);
    read(0x8000);
    EXPECT_EQ(cache().readHits.value(), 1u);
    EXPECT_EQ(cache().readMisses.value(), 0u);
}

} // namespace
} // namespace dapsim
