/**
 * @file
 * System-level determinism of workload-engine runs: identical metrics
 * for any --jobs value, and bit-identical results when the shared
 * warm-up is forked from a checkpoint (the warm-up advances every
 * generator deep into its drift schedule, so the fork exercises the
 * mid-phase save/restore path end to end).
 */

#include <gtest/gtest.h>

#include "exp/sweep_runner.hh"
#include "sim/presets.hh"
#include "workload/compose.hh"

namespace dapsim
{
namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    // Deep enough to cross several drift phase boundaries below.
    cfg.warmupAccessesPerCore = 5'000;
    return cfg;
}

/** Two engine workloads: a drifting zipf and a two-tenant mix. */
std::vector<Mix>
engineMixes()
{
    return {
        workload::composeWorkload(
            "zipf:skew=0.99,fp=1M,drift=rotate,period=2000,mpki=30", 4)
            .mix,
        workload::composeWorkload(
            "mix:t0=zipf,t0.skew=1.1,t0.fp=1M,t0.drift=jump,"
            "t0.period=1500,t0.cores=2,t1=wburst,t1.fp=512K", 4)
            .mix,
    };
}

std::vector<exp::JobResult>
runGrid(std::size_t threads, bool fork)
{
    exp::SweepRunner runner;
    runner.addGrid(tinySystem(), engineMixes(),
                   {PolicyKind::Baseline, PolicyKind::Dap}, 2'000);
    if (fork)
        runner.setWarmupFork(true, "");
    auto results = runner.run(threads);
    EXPECT_EQ(results.size(), 4u);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.error;
    return results;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.msHitRatio, b.msHitRatio);
    EXPECT_EQ(a.mmCasFraction, b.mmCasFraction);
    EXPECT_EQ(a.avgL3ReadMissLatency, b.avgL3ReadMissLatency);
    EXPECT_EQ(a.fwb, b.fwb);
    EXPECT_EQ(a.wb, b.wb);
    EXPECT_EQ(a.ifrm, b.ifrm);
    EXPECT_EQ(a.sfrm, b.sfrm);
}

TEST(WorkloadSweep, MetricsIdenticalAcrossJobCounts)
{
    const auto serial = runGrid(1, false);
    const auto parallel = runGrid(4, false);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i].result, parallel[i].result);
}

TEST(WorkloadSweep, WarmupForkBitIdentical)
{
    const auto direct = runGrid(1, false);
    const auto forked = runGrid(4, true);
    ASSERT_EQ(direct.size(), forked.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        expectIdentical(direct[i].result, forked[i].result);
}

} // namespace
} // namespace dapsim
