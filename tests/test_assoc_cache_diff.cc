/**
 * @file
 * Differential fuzz suite for the SoA AssocCache rewrite.
 *
 * Replays pinned-RNG access streams through the production
 * structure-of-arrays directory and the frozen array-of-structures
 * reference (tests/reference_assoc_cache.hh), asserting identical
 * hits, victims, occupancy, flush order and v1 checkpoint bytes at
 * every step, across LRU/NRU and a grid of geometries. Also pins the
 * v2 bulk-span encode/decode (raw and per-element value paths) as a
 * lossless round trip of the full directory state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/assoc_cache.hh"
#include "ckpt/serializer.hh"
#include "common/rng.hh"
#include "reference_assoc_cache.hh"

namespace dapsim
{
namespace
{

/** v1-encode both directories and compare the byte streams. */
template <typename Soa, typename Ref>
void
expectSameCkptBytes(const Soa &soa, const Ref &ref)
{
    ckpt::Serializer a(1);
    ckpt::Serializer b(1);
    soa.save(a, [](ckpt::Serializer &s, const int &v) {
        s.u64(static_cast<std::uint64_t>(v));
    });
    ref.save(b, [](ckpt::Serializer &s, const int &v) {
        s.u64(static_cast<std::uint64_t>(v));
    });
    ASSERT_EQ(a.buffer(), b.buffer());
}

struct Geometry
{
    std::uint64_t sets;
    std::uint32_t ways;
};

class AssocCacheDiff
    : public ::testing::TestWithParam<std::tuple<Geometry, ReplPolicy>>
{
};

TEST_P(AssocCacheDiff, StreamsAreBitIdentical)
{
    const auto [geo, policy] = GetParam();
    AssocCache<int> soa(geo.sets, geo.ways, policy);
    RefAssocCache<int> ref(geo.sets, geo.ways, policy);

    // Seed differs per geometry/policy so the streams diverge.
    Rng rng(0xd1ffe4 + geo.sets * 131 + geo.ways * 7 +
            (policy == ReplPolicy::NRU ? 1 : 0));
    // Tag universe ~2x the capacity: plenty of hits AND evictions.
    const std::uint64_t tagSpace = 2 * geo.ways + 3;

    for (int step = 0; step < 6000; ++step) {
        const std::uint64_t set = rng.below(geo.sets);
        const std::uint64_t tag = rng.below(tagSpace);
        switch (rng.below(100)) {
          case 0 ... 39: { // lookup (+ touch on hit, like real callers)
            int *a = soa.find(set, tag);
            int *b = ref.find(set, tag);
            ASSERT_EQ(a == nullptr, b == nullptr) << "step " << step;
            if (a != nullptr) {
                ASSERT_EQ(*a, *b) << "step " << step;
                soa.touch(set, tag);
                ref.touch(set, tag);
            }
            break;
          }
          case 40 ... 79: { // insert if absent
            if (soa.find(set, tag) != nullptr)
                break;
            const int v = static_cast<int>(rng.below(1 << 20));
            const auto va = soa.insert(set, tag, v);
            const auto vb = ref.insert(set, tag, v);
            ASSERT_EQ(va.valid, vb.valid) << "step " << step;
            if (va.valid) {
                ASSERT_EQ(va.tag, vb.tag) << "step " << step;
                ASSERT_EQ(va.value, vb.value) << "step " << step;
            }
            break;
          }
          case 80 ... 89: { // erase
            ASSERT_EQ(soa.erase(set, tag), ref.erase(set, tag))
                << "step " << step;
            break;
          }
          case 90 ... 94: { // occupancy probe
            ASSERT_EQ(soa.occupancy(set), ref.occupancy(set))
                << "step " << step;
            break;
          }
          default: { // flushSet: identical visit order and content
            std::vector<std::pair<std::uint64_t, int>> a, b;
            soa.flushSet(set, [&](std::uint64_t t, int &v) {
                a.emplace_back(t, v);
            });
            ref.flushSet(set, [&](std::uint64_t t, int &v) {
                b.emplace_back(t, v);
            });
            ASSERT_EQ(a, b) << "step " << step;
            break;
          }
        }
        if (step % 500 == 499)
            expectSameCkptBytes(soa, ref);
    }

    // Final state: forEach visit parity and checkpoint bytes.
    std::vector<std::tuple<std::uint64_t, std::uint64_t, int>> a, b;
    soa.forEach([&](std::uint64_t s, std::uint64_t t, int &v) {
        a.emplace_back(s, t, v);
    });
    ref.forEach([&](std::uint64_t s, std::uint64_t t, int &v) {
        b.emplace_back(s, t, v);
    });
    EXPECT_EQ(a, b);
    expectSameCkptBytes(soa, ref);
}

/** Cross-restore: SoA state restored from reference v1 bytes (and
 *  vice versa) continues bit-identically. */
TEST_P(AssocCacheDiff, V1CrossRestoreContinuesIdentically)
{
    const auto [geo, policy] = GetParam();
    AssocCache<int> soa(geo.sets, geo.ways, policy);
    RefAssocCache<int> ref(geo.sets, geo.ways, policy);

    Rng rng(0xc0ffee + geo.sets + geo.ways);
    const std::uint64_t tagSpace = 2 * geo.ways + 3;
    auto drive = [&](auto &c, Rng r, int n) {
        for (int i = 0; i < n; ++i) {
            const std::uint64_t set = r.below(geo.sets);
            const std::uint64_t tag = r.below(tagSpace);
            if (c.find(set, tag) != nullptr)
                c.touch(set, tag);
            else
                c.insert(set, tag, static_cast<int>(tag));
        }
    };
    drive(ref, rng, 1500);

    // Restore the SoA directory from the reference's bytes mid-stream.
    ckpt::Serializer s(1);
    ref.save(s, [](ckpt::Serializer &sr, const int &v) {
        sr.u64(static_cast<std::uint64_t>(v));
    });
    ckpt::Deserializer d(s.buffer(), 1);
    soa.restore(d, [](ckpt::Deserializer &dr, int &v) {
        v = static_cast<int>(dr.u64());
    });
    ASSERT_TRUE(d.atEnd());
    expectSameCkptBytes(soa, ref);

    // Both sides then replay the same continuation stream.
    Rng cont(0xfeed);
    drive(soa, cont, 1500);
    drive(ref, cont, 1500);
    expectSameCkptBytes(soa, ref);
}

/** v2 bulk-span round trip preserves the complete directory state
 *  (raw value path: int has unique object representations). */
TEST_P(AssocCacheDiff, V2RoundTripIsLossless)
{
    const auto [geo, policy] = GetParam();
    AssocCache<int> c(geo.sets, geo.ways, policy);

    Rng rng(0x2222 + geo.sets * 3 + geo.ways);
    const std::uint64_t tagSpace = 2 * geo.ways + 3;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t set = rng.below(geo.sets);
        const std::uint64_t tag = rng.below(tagSpace);
        if (c.find(set, tag) != nullptr)
            c.touch(set, tag);
        else if (rng.chance(0.1))
            c.erase(set, tag);
        else
            c.insert(set, tag, static_cast<int>(rng.below(1000)));
    }

    ckpt::Serializer v2(2);
    auto saveInt = [](ckpt::Serializer &s, const int &v) {
        s.u64(static_cast<std::uint64_t>(v));
    };
    auto loadInt = [](ckpt::Deserializer &d, int &v) {
        v = static_cast<int>(d.u64());
    };
    c.save(v2, saveInt);

    AssocCache<int> back(geo.sets, geo.ways, policy);
    ckpt::Deserializer d(v2.buffer(), 2);
    back.restore(d, loadInt);
    ASSERT_TRUE(d.atEnd());

    // Losslessness via the v1 byte stream: every tag, valid/NRU bit,
    // lastUse and value (stale ways included) must survive.
    ckpt::Serializer a(1), b(1);
    c.save(a, saveInt);
    back.save(b, saveInt);
    EXPECT_EQ(a.buffer(), b.buffer());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AssocCacheDiff,
    ::testing::Combine(
        ::testing::Values(Geometry{1, 1}, Geometry{4, 2},
                          Geometry{8, 4}, Geometry{16, 16},
                          Geometry{64, 3}, Geometry{2, 64}),
        ::testing::Values(ReplPolicy::LRU, ReplPolicy::NRU)));

/** Value type with interior padding: v2 must take the per-element
 *  stream fallback (encoding tag 0) and still round-trip. */
struct Padded
{
    std::uint8_t a = 0;
    std::uint64_t b = 0;
    bool operator==(const Padded &) const = default;
};
static_assert(!std::has_unique_object_representations_v<Padded>);

TEST(AssocCacheDiffV2, PaddedValuesUseStreamFallback)
{
    AssocCache<Padded> c(8, 4, ReplPolicy::NRU);
    Rng rng(77);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t set = rng.below(8);
        const std::uint64_t tag = rng.below(11);
        if (c.find(set, tag) == nullptr)
            c.insert(set, tag,
                     Padded{static_cast<std::uint8_t>(tag), tag * 3});
        else
            c.touch(set, tag);
    }
    auto savePadded = [](ckpt::Serializer &s, const Padded &v) {
        s.u8(v.a);
        s.u64(v.b);
    };
    auto loadPadded = [](ckpt::Deserializer &d, Padded &v) {
        v.a = d.u8();
        v.b = d.u64();
    };
    ckpt::Serializer v2(2);
    c.save(v2, savePadded);

    AssocCache<Padded> back(8, 4, ReplPolicy::NRU);
    ckpt::Deserializer d(v2.buffer(), 2);
    back.restore(d, loadPadded);
    ASSERT_TRUE(d.atEnd());

    ckpt::Serializer a(1), b(1);
    c.save(a, savePadded);
    back.save(b, savePadded);
    EXPECT_EQ(a.buffer(), b.buffer());
}

/** The explicit LRU tie-break contract: equal lastUse picks the
 *  lowest-numbered way. Constructs the tie via restore. */
TEST(AssocCacheDiffV2, LruTieBreakIsLowestWay)
{
    AssocCache<int> c(1, 4, ReplPolicy::LRU);
    for (std::uint64_t t = 0; t < 4; ++t)
        c.insert(0, t, static_cast<int>(t));

    // Force all four lastUse clocks equal through a v1 image.
    ckpt::Serializer s(1);
    c.save(s, [](ckpt::Serializer &sr, const int &v) {
        sr.u64(static_cast<std::uint64_t>(v));
    });
    std::vector<std::uint8_t> img = s.buffer();
    // Layout: sets u64, ways u32, policy u32, useClock u64, then per
    // line: tag u64, valid u8, nru u8, lastUse u64, value u64.
    std::size_t off = 8 + 4 + 4 + 8;
    for (int w = 0; w < 4; ++w) {
        const std::size_t lastUseAt = off + 8 + 1 + 1;
        for (int i = 0; i < 8; ++i)
            img[lastUseAt + i] = (i == 0) ? 7 : 0; // lastUse = 7
        off += 8 + 1 + 1 + 8 + 8;
    }
    ckpt::Deserializer d(img, 1);
    c.restore(d, [](ckpt::Deserializer &dr, int &v) {
        v = static_cast<int>(dr.u64());
    });

    const auto victim = c.insert(0, 99, 0);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.tag, 0u); // way 0 held tag 0
}

} // namespace
} // namespace dapsim
