/**
 * @file
 * End-to-end properties of DAP's learning loop: convergence toward the
 * Equation 4 partition under saturation, thread-aware IFRM, and the
 * no-partitioning guarantee when demand is low.
 */

#include <gtest/gtest.h>

#include "dap/bandwidth_model.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

/** A hungry streaming mix that saturates the scaled MS$. */
Mix
hungryMix()
{
    WorkloadProfile w = workloadByName("parboil-lbm");
    w.params.footprintBytes = 1 * kMiB;
    w.params.mpki = 40.0;
    return rateMix(w, 8);
}

SystemConfig
smallSystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 20'000;
    return cfg;
}

TEST(DapConvergence, MmCasFractionMovesTowardEquationFourOptimum)
{
    SystemConfig base = smallSystem();
    SystemConfig dap = base;
    dap.policy = PolicyKind::Dap;
    const std::uint64_t instr = 40'000;

    const RunResult rb = runMix(base, hungryMix(), instr);
    const RunResult rd = runMix(dap, hungryMix(), instr);

    const double optimum =
        bwmodel::optimalMemoryFraction(102.4, 38.4); // 0.273
    // DAP must land strictly closer to the optimum than the baseline.
    EXPECT_LT(std::abs(rd.mmCasFraction - optimum),
              std::abs(rb.mmCasFraction - optimum));
}

TEST(DapConvergence, QuietWorkloadIsLeftAlone)
{
    // A low-MPKI mix never saturates the MS$: DAP must make almost no
    // partitioning decisions (the paper's bandwidth-insensitive rows).
    WorkloadProfile w = workloadByName("cactusADM");
    w.params.footprintBytes = 512 * kKiB;
    w.params.mpki = 2.0;
    SystemConfig dap = smallSystem();
    dap.policy = PolicyKind::Dap;
    const RunResult rd = runMix(dap, rateMix(w, 8), 20'000);
    // SFRM is latency-neutral and exempt from the quiet gate; the
    // bypassing techniques must stay silent.
    const double decisions =
        static_cast<double>(rd.fwb + rd.wb + rd.ifrm);
    EXPECT_LT(decisions, 50.0);
}

TEST(DapConvergence, ThreadAwareIfrmSparesMaskedCores)
{
    SystemConfig cfg = smallSystem();
    cfg.policy = PolicyKind::Dap;
    cfg.dap.enableFwb = false;
    cfg.dap.enableWb = false;
    cfg.dap.enableSfrm = false;
    // Only cores 4..7 may take forced read misses.
    cfg.dap.ifrmCoreMask = 0xF0;
    cfg.core.instructions = 30'000;

    std::vector<AccessGeneratorPtr> gens;
    const Mix mix = hungryMix();
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i));
    System sys(cfg, std::move(gens));
    sys.warmup(20'000);
    sys.run();

    // Forced misses happened, and the spared cores kept their hits:
    // their IPC is at least that of the sacrificed cores on average.
    DapPolicy *dap = sys.dapPolicy();
    ASSERT_NE(dap, nullptr);
    if (dap->ifrmApplied.value() > 0) {
        double spared = 0, sacrificed = 0;
        for (std::uint32_t i = 0; i < 4; ++i)
            spared += sys.core(i).finished()
                          ? sys.core(i).finishIpc()
                          : sys.core(i).ipcAt(sys.eventQueue().now());
        for (std::uint32_t i = 4; i < 8; ++i)
            sacrificed +=
                sys.core(i).finished()
                    ? sys.core(i).finishIpc()
                    : sys.core(i).ipcAt(sys.eventQueue().now());
        EXPECT_GE(spared, sacrificed * 0.9);
    }
}

TEST(DapConvergence, MaskAllZeroDisablesIfrmEntirely)
{
    SystemConfig cfg = smallSystem();
    cfg.policy = PolicyKind::Dap;
    cfg.dap.ifrmCoreMask = 0;
    const RunResult rd = runMix(cfg, hungryMix(), 20'000);
    EXPECT_EQ(rd.ifrm, 0u);
}

TEST(DapConvergence, WindowSweepAllDeliverGains)
{
    // Any reasonable window size must not lose on a hungry mix
    // (Table I's robustness claim).
    SystemConfig base = smallSystem();
    const RunResult rb = runMix(base, hungryMix(), 20'000);
    for (Cycle w : {32u, 64u, 128u}) {
        SystemConfig dap = base;
        dap.policy = PolicyKind::Dap;
        dap.windowCycles = w;
        const RunResult rd = runMix(dap, hungryMix(), 20'000);
        // Off-default windows may trail slightly on this small-scale
        // mix (Table I shows W=32/128 within ~2% of W=64).
        EXPECT_GE(rd.throughput(), rb.throughput() * 0.94)
            << "W=" << w;
    }
}

} // namespace
} // namespace dapsim
