/**
 * @file
 * Unit tests for the hardware-friendly rational K (FixedRatio).
 */

#include <gtest/gtest.h>

#include "common/fixed_ratio.hh"

namespace dapsim
{
namespace
{

TEST(FixedRatio, PaperExampleEightThirdsIsElevenFourths)
{
    // Section IV-A: K = 102.4/38.4 = 8/3 is approximated as 11/4.
    const FixedRatio k = FixedRatio::quantize(102.4 / 38.4, 2);
    EXPECT_EQ(k.numerator(), 11u);
    EXPECT_EQ(k.denominator(), 4u);
    EXPECT_NEAR(k.value(), 2.75, 1e-12);
}

TEST(FixedRatio, ExactQuartersAreExact)
{
    const FixedRatio k = FixedRatio::quantize(1.75, 2);
    EXPECT_EQ(k.numerator(), 7u);
    EXPECT_EQ(k.denominator(), 4u);
}

TEST(FixedRatio, IntegerRatio)
{
    const FixedRatio k = FixedRatio::quantize(2.0, 2);
    EXPECT_EQ(k.numerator(), 8u);
    EXPECT_NEAR(k.value(), 2.0, 1e-12);
}

TEST(FixedRatio, SmallRatioNeverQuantizesToZero)
{
    const FixedRatio k = FixedRatio::quantize(0.01, 2);
    EXPECT_GE(k.numerator(), 1u);
}

TEST(FixedRatio, MulMatchesRoundedProduct)
{
    const FixedRatio k = FixedRatio::quantize(2.75, 2); // 11/4
    EXPECT_EQ(k.mul(4), 11);
    EXPECT_EQ(k.mul(8), 22);
    EXPECT_EQ(k.mul(100), 275);
    // 2.75 * 3 = 8.25 -> rounds to 8
    EXPECT_EQ(k.mul(3), 8);
    // 2.75 * 2 = 5.5 -> rounds (half up) to 6
    EXPECT_EQ(k.mul(2), 6);
}

TEST(FixedRatio, MulPlusOne)
{
    const FixedRatio k = FixedRatio::quantize(2.75, 2);
    // (K+1) * 4 = 15
    EXPECT_EQ(k.mulPlusOne(4), 15);
    EXPECT_EQ(k.mulPlusOne(8), 30);
}

TEST(FixedRatio, MulTwoKPlusOne)
{
    const FixedRatio k = FixedRatio::quantize(2.75, 2);
    // (2K+1) * 4 = 26
    EXPECT_EQ(k.mulTwoKPlusOne(4), 26);
}

TEST(FixedRatio, DivByKPlusOneRoundTripsWithinOne)
{
    // mulPlusOne rounds to nearest while the divide floors, so the
    // round trip may lose at most one unit (the hardware behaves the
    // same way).
    const FixedRatio k = FixedRatio::quantize(2.75, 2);
    for (std::int64_t n = 0; n < 100; ++n) {
        const std::int64_t back = k.divByKPlusOne(k.mulPlusOne(n));
        EXPECT_LE(std::abs(back - n), 1) << "n=" << n;
    }
}

TEST(FixedRatio, DivByTwoKPlusOneRoundTripsWithinOne)
{
    const FixedRatio k = FixedRatio::quantize(1.5, 2);
    for (std::int64_t n = 0; n < 100; ++n) {
        const std::int64_t back =
            k.divByTwoKPlusOne(k.mulTwoKPlusOne(n));
        EXPECT_LE(std::abs(back - n), 1) << "n=" << n;
    }
}

TEST(FixedRatioDeathTest, NonPositiveRatioIsFatal)
{
    EXPECT_DEATH((void)FixedRatio::quantize(0.0, 2), "positive");
    EXPECT_DEATH((void)FixedRatio::quantize(-1.0, 2), "positive");
}

/** Property sweep: quantization error is bounded by half an ulp. */
class FixedRatioQuantize
    : public ::testing::TestWithParam<std::tuple<double, unsigned>>
{
};

TEST_P(FixedRatioQuantize, ErrorWithinHalfStep)
{
    const auto [value, shift] = GetParam();
    const FixedRatio k = FixedRatio::quantize(value, shift);
    const double step = 1.0 / static_cast<double>(1ULL << shift);
    if (value < step / 2) {
        // Values that would quantize to zero are clamped to one ulp so
        // K stays usable in the divide-free counters.
        EXPECT_EQ(k.numerator(), 1u);
    } else {
        EXPECT_LE(std::abs(k.value() - value), step / 2 + 1e-12)
            << "value=" << value << " shift=" << shift;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedRatioQuantize,
    ::testing::Combine(::testing::Values(0.37, 1.0, 8.0 / 3.0, 2.0,
                                         3.999, 5.21, 10.66),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 8u)));

} // namespace
} // namespace dapsim
