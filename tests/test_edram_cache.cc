/**
 * @file
 * Unit tests for the sectored eDRAM cache with split R/W channels.
 */

#include <gtest/gtest.h>

#include "memside/edram_cache.hh"
#include "policy_stub.hh"

namespace dapsim
{
namespace
{

class EdramCacheTest : public ::testing::Test
{
  protected:
    EdramCacheTest() : mm(eq, presets::ddr4_2400())
    {
        cfg.capacityBytes = 1 * kMiB;
    }

    EdramCache &
    cache()
    {
        if (!ms)
            ms = std::make_unique<EdramCache>(eq, mm, policy, cfg);
        return *ms;
    }

    bool
    read(Addr a)
    {
        bool fired = false;
        cache().handleRead(a, [&] { fired = true; });
        eq.run();
        return fired;
    }

    EventQueue eq;
    DramSystem mm;
    StubPolicy policy;
    EdramCacheConfig cfg;
    std::unique_ptr<EdramCache> ms;
};

TEST_F(EdramCacheTest, SplitChannels)
{
    // A miss + fill consumes write-channel bandwidth only; the later
    // hit consumes read-channel bandwidth only.
    read(0x1000);
    EXPECT_EQ(cache().readArray().casOps(), 0u);
    EXPECT_GT(cache().writeArray().casWrites(), 0u);
    read(0x1000);
    EXPECT_EQ(cache().readArray().casReads(), 1u);
}

TEST_F(EdramCacheTest, OneKiloByteSectors)
{
    EXPECT_EQ(cfg.blocksPerSector(), 16u);
    read(0x2000);
    // The cold footprint run cannot exceed the sector.
    EXPECT_LE(cache().fills.value(), 16u);
}

TEST_F(EdramCacheTest, HitLatencyIncludesOnDieTagLookup)
{
    read(0x3000);
    Tick start = eq.now();
    Tick done_at = 0;
    cache().handleRead(0x3000, [&] { done_at = eq.now(); });
    eq.run();
    EXPECT_GE(done_at - start, cpuCyclesToTicks(cfg.tagLookupCycles));
}

TEST_F(EdramCacheTest, NoMetadataTrafficNoSfrm)
{
    policy.speculate = true; // would be SFRM on the DRAM cache
    read(0x4000);
    read(0x4000);
    EXPECT_EQ(cache().speculativeReads.value(), 0u);
    EXPECT_EQ(policy.sfrmAsked, 0);
}

TEST_F(EdramCacheTest, WritesGoToWriteChannels)
{
    cache().handleWrite(0x5000);
    eq.run();
    EXPECT_GT(cache().writeArray().casWrites(), 0u);
    EXPECT_EQ(cache().readArray().casOps(), 0u);
}

TEST_F(EdramCacheTest, EvictionReadsUseReadChannels)
{
    cache(); // construct
    // Build dirty sectors that collide in one set until eviction.
    const std::uint64_t target = 5;
    std::vector<Addr> colliding;
    for (std::uint64_t sec = 0;
         colliding.size() < cfg.ways + 1; ++sec) {
        if (indexHash(sec) % cfg.numSets() == target)
            colliding.push_back(sec * cfg.sectorBytes);
    }
    for (Addr a : colliding) {
        cache().handleWrite(a);
        eq.run();
    }
    EXPECT_GE(cache().sectorEvictions.value(), 1u);
    EXPECT_GT(cache().readArray().casReads(), 0u); // eviction read-out
    EXPECT_GT(cache().dirtyWritebacks.value(), 0u);
}

TEST_F(EdramCacheTest, IfrmOnCleanHits)
{
    read(0x6000);
    policy.forceReadMiss = true;
    const auto mm_reads = mm.casReads();
    const auto rd_cas = cache().readArray().casOps();
    EXPECT_TRUE(read(0x6000));
    EXPECT_EQ(cache().forcedReadMisses.value(), 1u);
    EXPECT_GT(mm.casReads(), mm_reads);
    EXPECT_EQ(cache().readArray().casOps(), rd_cas);
}

TEST_F(EdramCacheTest, FillBypassHonored)
{
    policy.bypassFill = true;
    read(0x7000);
    EXPECT_EQ(cache().fills.value(), 0u);
    EXPECT_GT(cache().fillsBypassed.value(), 0u);
    EXPECT_EQ(cache().writeArray().casWrites(), 0u);
}

TEST_F(EdramCacheTest, WriteBypassInvalidates)
{
    read(0x8000);
    policy.bypassWrite = true;
    const auto mm_writes = mm.casWrites();
    cache().handleWrite(0x8000);
    eq.run();
    EXPECT_GT(mm.casWrites(), mm_writes);
    EXPECT_EQ(cache().writesBypassed.value(), 1u);
    // Invalidated: the next read misses.
    policy.bypassWrite = false;
    read(0x8000);
    EXPECT_EQ(cache().readMisses.value(), 2u);
}

TEST_F(EdramCacheTest, WarmTouchPrimes)
{
    cache().warmTouch(0x9000, false);
    read(0x9000);
    EXPECT_EQ(cache().readHits.value(), 1u);
}

TEST_F(EdramCacheTest, PeakBandwidthAccessors)
{
    EXPECT_NEAR(cache().readPeakAccPerCycle(), 0.2, 1e-6);
    EXPECT_NEAR(cache().writePeakAccPerCycle(), 0.2, 1e-6);
}

} // namespace
} // namespace dapsim
