/**
 * @file
 * Unit tests for the small-buffer callback (common/inline_callback.hh):
 * captures on both sides of the inline/pooled boundary, move-only
 * payloads, lifetime accounting, and the pre-bound member form used by
 * recurring simulator events.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/inline_callback.hh"

namespace dapsim
{
namespace
{

/** Payload of a given size whose constructions/destructions are
 *  counted, so leaks and double-destroys show up as imbalance. */
template <std::size_t Bytes>
struct Tracked
{
    static int live;
    std::array<unsigned char, Bytes> pad{};
    int *hits;

    explicit Tracked(int *h) : hits(h) { ++live; }
    Tracked(const Tracked &o) : pad(o.pad), hits(o.hits) { ++live; }
    Tracked(Tracked &&o) noexcept : pad(o.pad), hits(o.hits) { ++live; }
    ~Tracked() { --live; }

    void operator()() { ++*hits; }
};

template <std::size_t Bytes>
int Tracked<Bytes>::live = 0;

template <std::size_t Bytes>
void
exerciseSize()
{
    int hits = 0;
    {
        InlineCallback cb{Tracked<Bytes>(&hits)};
        ASSERT_TRUE(static_cast<bool>(cb));
        cb();
        cb();

        // Move transfers the payload without duplicating it.
        InlineCallback moved(std::move(cb));
        EXPECT_FALSE(static_cast<bool>(cb));
        moved();

        InlineCallback assigned;
        assigned = std::move(moved);
        assigned();
    }
    EXPECT_EQ(hits, 4) << Bytes << "-byte capture";
    EXPECT_EQ(Tracked<Bytes>::live, 0) << Bytes << "-byte capture";
}

TEST(InlineCallback, CapturesAcrossTheInlineBoundary)
{
    // kInlineCallbackBytes = 64: below, at, just above (pooled), and
    // deep into the pooled range.
    exerciseSize<16>();
    exerciseSize<56>();
    exerciseSize<64>();
    exerciseSize<72>();
    exerciseSize<200>();
}

TEST(InlineCallback, EmptyStates)
{
    InlineCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    cb = InlineCallback(nullptr);
    EXPECT_FALSE(static_cast<bool>(cb));

    int hits = 0;
    cb = InlineCallback([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(hits, 1);
    cb = nullptr;
    EXPECT_FALSE(static_cast<bool>(cb));
    cb.reset();
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, MoveOnlyCapture)
{
    // std::function rejects this; chained completion closures need it.
    auto value = std::make_unique<int>(41);
    int seen = 0;
    InlineCallback cb([v = std::move(value), &seen] { seen = *v + 1; });
    InlineCallback moved(std::move(cb));
    moved();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, NestedCallbackChains)
{
    // A callback capturing another callback (the Done-chain shape:
    // RobCore -> L3 -> MS$ -> channel). The outer capture exceeds the
    // inline buffer and exercises the pooled path.
    int fired = 0;
    InlineCallback inner([&fired] { fired += 1; });
    std::uint64_t salt = 7;
    InlineCallback outer(
        [&fired, salt, in = std::move(inner)] {
            fired += static_cast<int>(salt);
            in();
        });
    outer();
    EXPECT_EQ(fired, 8);
}

struct RecurringCounter
{
    int ticks = 0;
    void tick() { ++ticks; }
};

TEST(InlineCallback, PreBoundMemberReuse)
{
    // The recurring-event form: re-created every period, captures one
    // pointer, always inline. Simulate many reschedule rounds.
    RecurringCounter rc;
    for (int i = 0; i < 1000; ++i) {
        InlineCallback cb =
            InlineCallback::of<&RecurringCounter::tick>(&rc);
        cb();
    }
    EXPECT_EQ(rc.ticks, 1000);
}

TEST(InlineCallback, PooledSlotsRecycle)
{
    // Pooled captures must be allocation-free in steady state: destroy
    // then re-create repeatedly; lifetime accounting stays balanced.
    int hits = 0;
    for (int i = 0; i < 1000; ++i) {
        InlineCallback cb{Tracked<200>(&hits)};
        cb();
    }
    EXPECT_EQ(hits, 1000);
    EXPECT_EQ(Tracked<200>::live, 0);
}

} // namespace
} // namespace dapsim
