/**
 * @file
 * Unit tests for the footprint prefetcher.
 */

#include <gtest/gtest.h>

#include "memside/footprint_prefetcher.hh"

namespace dapsim
{
namespace
{

FootprintConfig
smallConfig()
{
    FootprintConfig c;
    c.tableEntries = 64;
    c.coldRunLength = 4;
    return c;
}

TEST(Footprint, ColdPredictionIsAShortRun)
{
    FootprintPrefetcher fp(smallConfig(), 64);
    const std::uint64_t mask = fp.predict(100, 10);
    EXPECT_EQ(mask, 0xFULL << 10); // blocks 10..13
}

TEST(Footprint, ColdRunClipsAtSectorEnd)
{
    FootprintPrefetcher fp(smallConfig(), 64);
    const std::uint64_t mask = fp.predict(100, 62);
    EXPECT_EQ(mask, (1ULL << 62) | (1ULL << 63));
}

TEST(Footprint, DemandBlockAlwaysIncluded)
{
    FootprintPrefetcher fp(smallConfig(), 64);
    fp.recordEviction(7, 0x3); // history says blocks 0,1
    const std::uint64_t mask = fp.predict(7, 40);
    EXPECT_TRUE(mask & (1ULL << 40));
    EXPECT_TRUE(mask & 0x3);
}

TEST(Footprint, LearnsRecordedFootprint)
{
    FootprintPrefetcher fp(smallConfig(), 64);
    const std::uint64_t used = 0xFF00FF00FF00FF00ULL;
    fp.recordEviction(9, used);
    const std::uint64_t mask = fp.predict(9, 8);
    EXPECT_EQ(mask, used | (1ULL << 8));
    EXPECT_EQ(fp.historyHits.value(), 1u);
}

TEST(Footprint, EmptyHistoryFallsBackToCold)
{
    FootprintPrefetcher fp(smallConfig(), 64);
    fp.recordEviction(9, 0); // sector evicted untouched
    const std::uint64_t mask = fp.predict(9, 0);
    EXPECT_EQ(mask, 0xFULL); // cold run again, not an empty fetch
}

TEST(Footprint, DisabledFetchesOnlyDemand)
{
    FootprintConfig c = smallConfig();
    c.enabled = false;
    FootprintPrefetcher fp(c, 64);
    EXPECT_EQ(fp.predict(3, 17), 1ULL << 17);
}

TEST(Footprint, TableCollisionsReplaceHistory)
{
    FootprintConfig c;
    c.tableEntries = 1; // every sector collides
    FootprintPrefetcher fp(c, 64);
    fp.recordEviction(1, 0xF0);
    fp.recordEviction(2, 0x0F);
    // Sector 1's history was overwritten by sector 2.
    const std::uint64_t mask = fp.predict(1, 0);
    EXPECT_NE(mask & 0xFF, 0xF0u | 1u);
}

TEST(FootprintDeathTest, SectorSizeBounds)
{
    FootprintConfig c = smallConfig();
    EXPECT_DEATH(FootprintPrefetcher(c, 0), "1..64");
    EXPECT_DEATH(FootprintPrefetcher(c, 65), "1..64");
}

TEST(Footprint, SmallSectors)
{
    FootprintPrefetcher fp(smallConfig(), 16); // 1 KB eDRAM sectors
    const std::uint64_t mask = fp.predict(5, 14);
    EXPECT_EQ(mask, (1ULL << 14) | (1ULL << 15));
}

} // namespace
} // namespace dapsim
