/**
 * @file
 * Unit tests for DRAM refresh modelling (tREFI/tRFC).
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"

namespace dapsim
{
namespace
{

DramConfig
withRefresh()
{
    DramConfig cfg = presets::ddr4_2400();
    cfg.tREFI = 9360; // 7.8 us at 1.2 GHz
    cfg.tRFC = 420;   // ~350 ns
    return cfg;
}

TEST(Refresh, DisabledByDefaultInPresets)
{
    for (const auto &cfg :
         {presets::ddr4_2400(), presets::hbm_102(),
          presets::edram_dir_51()})
        EXPECT_EQ(cfg.tREFI, 0u) << cfg.name;
}

TEST(Refresh, BankRefreshClosesRowAndOccupies)
{
    const DramConfig cfg = withRefresh();
    Bank b;
    (void)b.reserve(cfg, 0, 5);
    const Tick before = b.readyAt();
    b.refresh(cfg, before);
    EXPECT_EQ(b.openRow(), Bank::kNoRow);
    EXPECT_EQ(b.readyAt(), before + cfg.tRFC * cfg.periodPs());
}

TEST(Refresh, PeriodicRefreshesFire)
{
    EventQueue eq;
    DramSystem mem(eq, withRefresh());
    // Run 100 us of idle time: ~12 refreshes per channel.
    eq.run(100'000'000);
    std::uint64_t refreshes = 0;
    for (std::uint32_t c = 0; c < mem.numChannels(); ++c)
        refreshes += mem.channel(c).refreshes.value();
    EXPECT_GE(refreshes, 20u);
    EXPECT_LE(refreshes, 30u);
}

TEST(Refresh, ReducesDeliveredBandwidth)
{
    auto stream = [](const DramConfig &cfg) {
        EventQueue eq;
        DramSystem mem(eq, cfg);
        int done = 0;
        const int n = 8192;
        for (Addr a = 0; a < n * static_cast<Addr>(kBlockBytes);
             a += kBlockBytes)
            mem.access(a, false, [&] { ++done; });
        eq.runUntil([&] { return done == n; });
        return eq.now();
    };
    const Tick without = stream(presets::ddr4_2400());
    DramConfig heavy = withRefresh();
    heavy.tREFI = 2000; // exaggerated refresh pressure
    heavy.tRFC = 800;
    const Tick with = stream(heavy);
    EXPECT_GT(with, without);
}

TEST(Refresh, StaggeredAcrossChannels)
{
    // First refresh of each channel lands at a different tick: with
    // one refresh per channel in a short window, the counters all
    // reach exactly 1 without having fired simultaneously at t=0.
    EventQueue eq;
    DramSystem mem(eq, withRefresh());
    eq.run(9360u * 833u); // just under one tREFI
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < mem.numChannels(); ++c) {
        EXPECT_LE(mem.channel(c).refreshes.value(), 1u);
        total += mem.channel(c).refreshes.value();
    }
    EXPECT_EQ(total, mem.numChannels());
}

} // namespace
} // namespace dapsim
