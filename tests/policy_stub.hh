/**
 * @file
 * Scripted PartitionPolicy stub for driving MS$ decision points in
 * unit tests.
 */

#ifndef DAPSIM_TESTS_POLICY_STUB_HH
#define DAPSIM_TESTS_POLICY_STUB_HH

#include <set>

#include "policies/partition_policy.hh"

namespace dapsim
{

/** Policy whose answers are fixed flags settable per test. */
class StubPolicy final : public PartitionPolicy
{
  public:
    bool bypassFill = false;
    bool bypassWrite = false;
    bool forceReadMiss = false;
    bool speculate = false;
    bool writeThrough = false;
    bool steer = false;
    std::set<std::uint64_t> disabledSets;

    int fillAsked = 0;
    int writeAsked = 0;
    int ifrmAsked = 0;
    int sfrmAsked = 0;
    int windows = 0;
    WindowCounters lastWindow;

    void
    beginWindow(const WindowCounters &w) override
    {
        ++windows;
        lastWindow = w;
    }

    bool
    shouldBypassFill(Addr) override
    {
        ++fillAsked;
        return bypassFill;
    }

    bool
    shouldBypassWrite(Addr) override
    {
        ++writeAsked;
        return bypassWrite;
    }

    bool
    shouldForceReadMiss(Addr) override
    {
        ++ifrmAsked;
        return forceReadMiss;
    }

    bool
    shouldSpeculateToMemory(Addr) override
    {
        ++sfrmAsked;
        return speculate;
    }

    bool shouldWriteThrough(Addr) override { return writeThrough; }

    bool
    isSetDisabled(std::uint64_t set) override
    {
        return disabledSets.count(set) > 0;
    }

    bool steerToMemory(Addr, const SteerInfo &) override { return steer; }

    const char *name() const override { return "stub"; }
};

} // namespace dapsim

#endif // DAPSIM_TESTS_POLICY_STUB_HH
