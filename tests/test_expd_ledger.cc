/**
 * @file
 * Tests for the `dapsim.expq.v1` ledger layer: record CRC sealing,
 * torn-tail vs mid-ledger corruption handling, GridOptions JSON
 * round-trip, and the stability/sensitivity of content-hash job ids.
 */

#include <gtest/gtest.h>

#include "expd/ledger.hh"
#include "expd/store.hh"

namespace dapsim
{
namespace
{

expd::GridOptions
tinyGrid()
{
    expd::GridOptions opt;
    opt.archs = {"sectored"};
    opt.policies = {"baseline", "dap"};
    opt.workloads = {"mcf"};
    opt.capacitiesMb = {2};
    opt.cores = 4;
    opt.instr = 2'000;
    opt.warmup = 2'000;
    return opt;
}

TEST(ExpqLedger, SealedRecordRoundTrips)
{
    const std::string rec = expd::startRecord(7, "w1");
    ASSERT_EQ(rec.back(), '\n');
    const json::Value v =
        expd::parseRecord(rec.substr(0, rec.size() - 1));
    EXPECT_EQ(v.at("type").asString(), "start");
    EXPECT_EQ(v.at("index").asU64(), 7u);
    EXPECT_EQ(v.at("worker").asString(), "w1");
}

TEST(ExpqLedger, TamperedRecordFailsCrc)
{
    std::string rec = expd::startRecord(7, "w1");
    rec.pop_back(); // newline
    // Flip a payload byte: the index digit.
    const std::size_t at = rec.find("\"index\":7");
    ASSERT_NE(at, std::string::npos);
    std::string tampered = rec;
    tampered[at + 8] = '8';
    EXPECT_THROW(expd::parseRecord(tampered), expd::StoreError);
    // The embedded-row marker text inside a string value must not
    // confuse the seal locator.
    const std::string tricky = expd::doneRecord(
        0, "w", "{\"schema\":\"x\",\"crc\":\"deadbeef\"}");
    const json::Value v =
        expd::parseRecord(tricky.substr(0, tricky.size() - 1));
    EXPECT_EQ(v.at("row").asString(),
              "{\"schema\":\"x\",\"crc\":\"deadbeef\"}");
}

TEST(ExpqLedger, TornTailIsDroppedNotFatal)
{
    const std::string good = expd::startRecord(0, "w");
    const std::string torn =
        expd::doneRecord(1, "w", "{\"schema\":\"r\"}");
    // Simulate a SIGKILL mid-write: only half the final record made
    // it to disk.
    const std::string text = good + torn.substr(0, torn.size() / 2);
    const expd::LedgerContents out =
        expd::readLedgerText(text, "test");
    EXPECT_TRUE(out.droppedTornTail);
    ASSERT_EQ(out.records.size(), 1u);
    EXPECT_EQ(out.records[0].at("type").asString(), "start");
}

TEST(ExpqLedger, MidLedgerCorruptionThrows)
{
    std::string first = expd::startRecord(0, "w");
    const std::string second = expd::startRecord(1, "w");
    // Corrupt a byte of the FIRST record while a valid record
    // follows: that is real corruption, not a crash artifact.
    first[first.find("w\"")] = 'x';
    EXPECT_THROW(expd::readLedgerText(first + second, "test"),
                 expd::StoreError);
}

TEST(ExpqLedger, EmptyAndMissingLedgersAreEmpty)
{
    EXPECT_TRUE(expd::readLedgerText("", "test").records.empty());
    const expd::LedgerContents missing =
        expd::readLedgerFile("/nonexistent/dir/none.jsonl");
    EXPECT_TRUE(missing.records.empty());
    EXPECT_FALSE(missing.droppedTornTail);
}

TEST(ExpqLedger, GridOptionsRoundTripThroughJson)
{
    expd::GridOptions opt = tinyGrid();
    opt.archs = {"sectored", "alloy"};
    opt.workloads = {"mcf", "zipf:skew=0.99,fp=1M"};
    opt.capacitiesMb = {0, 64};
    opt.seed = 42;
    opt.remote = true;
    opt.remoteScale = 8.0;
    opt.remoteLatencyNs = 240.0;
    opt.remoteOutstanding = 16;

    const std::string text = expd::encodeGridOptions(opt);
    const expd::GridOptions back =
        expd::decodeGridOptions(json::parse(text));
    // A canonical encoding round-trips to identical text.
    EXPECT_EQ(expd::encodeGridOptions(back), text);
    EXPECT_EQ(back.archs, opt.archs);
    EXPECT_EQ(back.workloads, opt.workloads);
    EXPECT_EQ(back.capacitiesMb, opt.capacitiesMb);
    EXPECT_EQ(back.seed, 42u);
    EXPECT_EQ(back.remote, true);
    EXPECT_EQ(back.remoteOutstanding, 16u);
}

TEST(ExpqLedger, GridExpansionIsDeterministic)
{
    const auto a = expd::expandGrid(tinyGrid());
    const auto b = expd::expandGrid(tinyGrid());
    ASSERT_EQ(a.size(), 2u); // 1 arch x 1 cap x 1 workload x 2 policies
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].group, b[i].group);
    }
    // Both policies share one warmup group but have distinct ids.
    EXPECT_EQ(a[0].group, a[1].group);
    EXPECT_FALSE(a[0].group.empty());
    EXPECT_NE(a[0].id, a[1].id);
}

TEST(ExpqLedger, JobIdIsSensitiveToResultDeterminingFields)
{
    const std::string base = expd::expandGrid(tinyGrid())[0].id;

    expd::GridOptions seeded = tinyGrid();
    seeded.seed = 1;
    EXPECT_NE(expd::expandGrid(seeded)[0].id, base);

    expd::GridOptions shorter = tinyGrid();
    shorter.instr = 1'000;
    EXPECT_NE(expd::expandGrid(shorter)[0].id, base);

    expd::GridOptions bigger = tinyGrid();
    bigger.capacitiesMb = {4};
    EXPECT_NE(expd::expandGrid(bigger)[0].id, base);

    expd::GridOptions warmer = tinyGrid();
    warmer.warmup = 4'000;
    EXPECT_NE(expd::expandGrid(warmer)[0].id, base);
}

TEST(ExpqLedger, JobIdIgnoresObservabilityDecoration)
{
    auto jobs = expd::expandGrid(tinyGrid());
    exp::JobSpec decorated = jobs[0].spec;
    decorated.cfg.obs.sampleEvery = 1'000;
    decorated.cfg.obs.sampleOut = "/tmp/somewhere.jsonl";
    decorated.cfg.obs.dapTrace = "/tmp/trace.jsonl";
    EXPECT_EQ(exp::jobId(decorated), jobs[0].id);
}

TEST(ExpqLedger, WorkloadListSplitsSpecContinuations)
{
    const auto parts = expd::splitWorkloadList(
        "mcf,zipf:skew=0.99,fp=64M,flood");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "mcf");
    EXPECT_EQ(parts[1], "zipf:skew=0.99,fp=64M");
    EXPECT_EQ(parts[2], "flood");
}

} // namespace
} // namespace dapsim
