/**
 * @file
 * Determinism and schema tests for the time-series stat sampler.
 *
 * The sampler inherits the simulator's determinism contract: the same
 * spec must produce byte-identical sample files on every run and on
 * every thread of a parallel sweep (each job writes its own file, so
 * concurrency can only change scheduling, never content).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep_runner.hh"
#include "obs/observability.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "obs_sampler_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << path;
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 2'000;
    return cfg;
}

std::vector<AccessGeneratorPtr>
tinyGens(const SystemConfig &cfg)
{
    WorkloadProfile w = workloadByName("mcf");
    w.params.footprintBytes = 256 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(w, i));
    return gens;
}

/** Run the pinned tiny scenario sampling into @p path. */
void
runSampled(const std::string &path, obs::SampleFormat format)
{
    SystemConfig cfg = tinySystem();
    cfg.obs.sampleEvery = 1'000;
    cfg.obs.sampleOut = path;
    cfg.obs.sampleFormat = format;
    System sys(cfg, tinyGens(cfg));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();
    // Flush before the System (and its streams) go out of scope.
    sys.observability()->finish();
}

TEST(ObsSampler, RepeatedRunsAreByteIdentical)
{
    const std::string a = tmpPath("det_a.jsonl");
    const std::string b = tmpPath("det_b.jsonl");
    runSampled(a, obs::SampleFormat::Jsonl);
    runSampled(b, obs::SampleFormat::Jsonl);
    const std::string ca = slurp(a);
    EXPECT_FALSE(ca.empty());
    EXPECT_EQ(ca, slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

/** Count the elements of the first JSON array named @p key in
 *  @p line. Values are plain numbers/strings with no nesting, so
 *  top-level commas delimit them. */
std::size_t
arraySize(const std::string &line, const std::string &key)
{
    const std::string marker = "\"" + key + "\":[";
    const auto begin = line.find(marker);
    EXPECT_NE(begin, std::string::npos) << line;
    const auto start = begin + marker.size();
    const auto end = line.find(']', start);
    EXPECT_NE(end, std::string::npos) << line;
    if (end == start)
        return 0;
    std::size_t commas = 0;
    for (std::size_t i = start; i < end; ++i)
        commas += line[i] == ',';
    return commas + 1;
}

TEST(ObsSampler, JsonlSchemaIsSelfConsistent)
{
    const std::string path = tmpPath("schema.jsonl");
    runSampled(path, obs::SampleFormat::Jsonl);

    std::ifstream is(path);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_NE(header.find("\"schema\":\"dapsim.timeseries.v1\""),
              std::string::npos);
    EXPECT_NE(header.find("\"sample_every_cycles\":1000"),
              std::string::npos);
    const std::size_t columns = arraySize(header, "columns");
    EXPECT_GT(columns, 20u); // l3 + ms + dap + derived probes

    std::string line;
    std::size_t rows = 0;
    std::uint64_t prev_tick = 0;
    while (std::getline(is, line)) {
        EXPECT_EQ(arraySize(line, "values"), columns) << line;
        const auto tick_at = line.find("\"tick\":");
        ASSERT_NE(tick_at, std::string::npos);
        const std::uint64_t tick =
            std::stoull(line.substr(tick_at + 7));
        EXPECT_GT(tick, prev_tick); // strictly increasing samples
        prev_tick = tick;
        ++rows;
    }
    EXPECT_GT(rows, 0u);
    std::remove(path.c_str());
}

TEST(ObsSampler, CsvRowsMatchHeader)
{
    const std::string path = tmpPath("format.csv");
    runSampled(path, obs::SampleFormat::Csv);

    std::ifstream is(path);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header.rfind("tick,", 0), 0u);
    std::size_t fields = 1;
    for (char c : header)
        fields += c == ',';

    std::string line;
    std::size_t rows = 0;
    while (std::getline(is, line)) {
        std::size_t got = 1;
        for (char c : line)
            got += c == ',';
        EXPECT_EQ(got, fields) << line;
        ++rows;
    }
    EXPECT_GT(rows, 0u);
    std::remove(path.c_str());
}

TEST(ObsSampler, ParallelSweepJobsWriteIdenticalFiles)
{
    // Four jobs, two of which are the SAME spec sampling into
    // different files: under --jobs 4 the duplicates must still come
    // out byte-identical, and distinct specs must not interleave.
    exp::SweepRunner runner;
    std::vector<std::string> paths;
    for (int i = 0; i < 4; ++i) {
        const std::string path =
            tmpPath("sweep_" + std::to_string(i) + ".jsonl");
        paths.push_back(path);
        exp::JobSpec spec;
        spec.cfg = tinySystem();
        spec.cfg.obs.sampleEvery = 1'000;
        spec.cfg.obs.sampleOut = path;
        // Jobs 0 and 1 are duplicates; 2 and 3 vary the policy.
        spec.policy = i < 2 ? PolicyKind::Dap : PolicyKind::Baseline;
        spec.instr = 2'000;
        spec.seedSalt = i < 2 ? 0 : static_cast<std::uint64_t>(i);
        WorkloadProfile w = workloadByName("mcf");
        w.params.footprintBytes = 256 * kKiB;
        spec.mix = rateMix(w, spec.cfg.numCores);
        runner.add(std::move(spec));
    }
    const auto results = runner.run(4);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.error;

    const std::string first = slurp(paths[0]);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, slurp(paths[1])); // duplicate spec, same bytes
    EXPECT_NE(first, slurp(paths[2])); // different policy differs
    for (const auto &p : paths)
        std::remove(p.c_str());
}

} // namespace
} // namespace dapsim
