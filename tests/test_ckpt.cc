/**
 * @file
 * Tests for the checkpoint subsystem: serializer framing, the
 * dapsim.ckpt.v1 container, bit-identical save/restore across every
 * MS$ architecture and partitioning policy, mismatch rejection, and
 * the sweep runner's warmup-fork mode.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "ckpt/checkpoint.hh"
#include "exp/sweep_runner.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

constexpr std::uint64_t kInstr = 2'000;

SystemConfig
sectoredTiny()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
alloyTiny()
{
    SystemConfig cfg = presets::alloySystem8();
    cfg.numCores = 4;
    cfg.alloy.capacityBytes = 2 * kMiB;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
edramTiny()
{
    SystemConfig cfg = presets::edramSystem8(1);
    cfg.numCores = 4;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
noneTiny()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.arch = MsArch::None;
    cfg.numCores = 4;
    cfg.warmupAccessesPerCore = 1;
    return cfg;
}

SystemConfig
tieredTiny()
{
    SystemConfig cfg = sectoredTiny();
    cfg.remote.enabled = true;
    cfg.remote.bwScaleFactor = 4.0;
    cfg.remote.addLatencyNs = 120.0;
    cfg.remote.maxOutstanding = 32;
    return cfg;
}

Mix
tinyMix(const std::string &workload)
{
    WorkloadProfile w = workloadByName(workload);
    w.params.footprintBytes = 256 * kKiB;
    return rateMix(w, 4);
}

/** Every metric of @p a and @p b is bit-identical. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.msHitRatio, b.msHitRatio);
    EXPECT_EQ(a.msReadMissRatio, b.msReadMissRatio);
    EXPECT_EQ(a.mmCasFraction, b.mmCasFraction);
    EXPECT_EQ(a.tagCacheMissRatio, b.tagCacheMissRatio);
    EXPECT_EQ(a.avgL3ReadMissLatency, b.avgL3ReadMissLatency);
    EXPECT_EQ(a.l3Mpki, b.l3Mpki);
    EXPECT_EQ(a.readGBps, b.readGBps);
    EXPECT_EQ(a.fwb, b.fwb);
    EXPECT_EQ(a.wb, b.wb);
    EXPECT_EQ(a.ifrm, b.ifrm);
    EXPECT_EQ(a.sfrm, b.sfrm);
}

/** Restoring a warm-up checkpoint reproduces the uninterrupted run. */
void
expectRestoreMatchesRun(SystemConfig cfg)
{
    const Mix mix = tinyMix("mcf");
    const RunResult direct = runMix(cfg, mix, kInstr, 7);
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 7);
    const RunResult restored =
        ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 7, ck);
    expectIdentical(direct, restored);
}

TEST(Serializer, PrimitivesRoundTrip)
{
    ckpt::Serializer s;
    s.u8(0xab);
    s.u32(0xdeadbeefu);
    s.u64(0x0123456789abcdefULL);
    s.i64(-42);
    s.f64(3.141592653589793);
    s.boolean(true);
    s.str("hello");
    const std::uint8_t raw[3] = {1, 2, 3};
    s.bytes(raw, sizeof(raw));

    ckpt::Deserializer d(s.buffer());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_EQ(d.f64(), 3.141592653589793);
    EXPECT_TRUE(d.boolean());
    EXPECT_EQ(d.str(), "hello");
    const auto bytes = d.bytes();
    ASSERT_EQ(bytes.size(), 3u);
    EXPECT_EQ(bytes[2], 3u);
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, SectionsFrameAndVerify)
{
    ckpt::Serializer s;
    s.beginSection("outer");
    s.u64(1);
    s.beginSection("inner");
    s.u32(2);
    s.endSection();
    s.endSection();

    ckpt::Deserializer d(s.buffer());
    d.enterSection("outer");
    EXPECT_EQ(d.u64(), 1u);
    d.enterSection("inner");
    EXPECT_EQ(d.u32(), 2u);
    d.leaveSection();
    d.leaveSection();
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, WrongSectionNameThrows)
{
    ckpt::Serializer s;
    s.beginSection("cores");
    s.u64(1);
    s.endSection();
    ckpt::Deserializer d(s.buffer());
    EXPECT_THROW(d.enterSection("l3"), ckpt::CkptError);
}

TEST(Serializer, UnderconsumedSectionThrows)
{
    ckpt::Serializer s;
    s.beginSection("cores");
    s.u64(1);
    s.u64(2);
    s.endSection();
    ckpt::Deserializer d(s.buffer());
    d.enterSection("cores");
    (void)d.u64();
    EXPECT_THROW(d.leaveSection(), ckpt::CkptError);
}

TEST(Serializer, SkipSectionReturnsNameAndAdvances)
{
    ckpt::Serializer s;
    s.beginSection("policy");
    s.u64(99);
    s.endSection();
    s.u32(5);
    ckpt::Deserializer d(s.buffer());
    EXPECT_EQ(d.skipSection(), "policy");
    EXPECT_EQ(d.u32(), 5u);
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, TruncatedInputThrows)
{
    ckpt::Serializer s;
    s.u64(1);
    std::vector<std::uint8_t> buf = s.buffer();
    buf.pop_back();
    ckpt::Deserializer d(buf);
    EXPECT_THROW((void)d.u64(), ckpt::CkptError);
}

TEST(Ckpt, EncodeDecodeRoundTripsHeaderAndPayload)
{
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   3);
    EXPECT_EQ(ck.header.version, ckpt::kVersion);
    EXPECT_EQ(ck.header.tick, 0u);
    EXPECT_EQ(ck.header.numCores, 4u);
    EXPECT_EQ(ck.header.seedSalt, 3u);
    EXPECT_EQ(ck.header.archId, ckpt::archIdOf(MsArch::None));

    const ckpt::Checkpoint rt = ckpt::decode(ckpt::encode(ck));
    EXPECT_EQ(rt.header.stateHash, ck.header.stateHash);
    EXPECT_EQ(rt.header.fullHash, ck.header.fullHash);
    EXPECT_EQ(rt.header.warmupPerCore, ck.header.warmupPerCore);
    EXPECT_EQ(rt.header.pendingEvents, ck.header.pendingEvents);
    EXPECT_EQ(rt.payload, ck.payload);
}

TEST(Ckpt, DecodeRejectsCorruption)
{
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   0);
    const std::vector<std::uint8_t> bytes = ckpt::encode(ck);

    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(ckpt::decode(bad_magic), ckpt::CkptError);

    std::vector<std::uint8_t> bad_version = bytes;
    bad_version[8] = 0x63; // the version u32 follows the 8-byte magic
    EXPECT_THROW(ckpt::decode(bad_version), ckpt::CkptError);

    std::vector<std::uint8_t> truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW(ckpt::decode(truncated), ckpt::CkptError);

    std::vector<std::uint8_t> corrupt = bytes;
    corrupt.back() ^= 0x01; // flip a payload bit: CRC must catch it
    EXPECT_THROW(ckpt::decode(corrupt), ckpt::CkptError);
}

TEST(Ckpt, FileRoundTripAndMissingFile)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "dapsim_test.ckpt")
            .string();
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   0);
    ckpt::writeFile(path, ck);
    const ckpt::Checkpoint rt = ckpt::readFile(path);
    EXPECT_EQ(rt.header.fullHash, ck.header.fullHash);
    EXPECT_EQ(rt.payload, ck.payload);
    std::remove(path.c_str());
    EXPECT_THROW(ckpt::readFile(path), ckpt::CkptError);
}

TEST(Ckpt, AtomicWriteIsNeverTornUnderConcurrentWriters)
{
    // Regression test for the shared-warmup-cache reuse race: two
    // sweeps publishing the same checkpoint path concurrently while a
    // third loads it. writeFileAtomic (temp file + rename) guarantees
    // a reader only ever sees one writer's COMPLETE bytes.
    const std::string path = (std::filesystem::temp_directory_path() /
                              "dapsim_test_atomic.ckpt")
                                 .string();
    std::remove(path.c_str());

    const ckpt::Checkpoint a =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   0);
    const ckpt::Checkpoint b =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   1);
    ASSERT_NE(a.header.fullHash, b.header.fullHash);

    constexpr int kRounds = 200;
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    ckpt::writeFileAtomic(path, a);

    std::thread writer_a([&] {
        for (int i = 0; i < kRounds; ++i)
            ckpt::writeFileAtomic(path, a);
    });
    std::thread writer_b([&] {
        for (int i = 0; i < kRounds; ++i)
            ckpt::writeFileAtomic(path, b);
    });
    std::thread reader([&] {
        while (!stop.load()) {
            // Every read must decode (CRC-clean) as exactly one of
            // the two published checkpoints, never a mixture.
            try {
                const ckpt::Checkpoint got = ckpt::readFile(path);
                if (got.header.fullHash == a.header.fullHash) {
                    if (got.payload != a.payload)
                        ++torn;
                } else if (got.header.fullHash == b.header.fullHash) {
                    if (got.payload != b.payload)
                        ++torn;
                } else {
                    ++torn;
                }
            } catch (const ckpt::CkptError &) {
                ++torn;
            }
        }
    });
    writer_a.join();
    writer_b.join();
    stop = true;
    reader.join();
    EXPECT_EQ(torn.load(), 0);
    std::remove(path.c_str());
}

TEST(Ckpt, SectoredRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(sectoredTiny());
}

TEST(Ckpt, AlloyRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(alloyTiny());
}

TEST(Ckpt, EdramRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(edramTiny());
}

TEST(Ckpt, NoMsCacheRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(noneTiny());
}

TEST(Ckpt, TieredRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(tieredTiny());
}

TEST(Ckpt, TieredDapRestoreIsBitIdentical)
{
    SystemConfig cfg = tieredTiny();
    cfg.policy = PolicyKind::Dap;
    expectRestoreMatchesRun(cfg);
}

TEST(Ckpt, RemoteMemoryMidRunRoundTripMatchesUninterrupted)
{
    RemoteConfig rc;
    rc.enabled = true;
    rc.bwScaleFactor = 4.0;
    rc.addLatencyNs = 120.0;
    rc.maxOutstanding = 2;

    // Six posted writes against a two-deep credit window: two on the
    // link, four queued behind them.
    EventQueue eq1;
    RemoteMemory rm1(eq1, rc, 38.4);
    for (int i = 0; i < 6; ++i)
        rm1.access(static_cast<Addr>(i) * kBlockBytes, true);
    ASSERT_EQ(rm1.outstanding(), 6u);

    // Snapshot with the queue backed up, then let the original drain.
    ckpt::Serializer s;
    rm1.save(s);
    eq1.runUntil([&] { return rm1.writes.value() == 6; });

    // Restore into a fresh queue and drain the replica.
    EventQueue eq2;
    RemoteMemory rm2(eq2, rc, 38.4);
    ckpt::Deserializer d(s.buffer());
    rm2.restore(d);
    EXPECT_TRUE(d.atEnd());
    EXPECT_EQ(rm2.outstanding(), 6u);
    eq2.runUntil([&] { return rm2.writes.value() == 6; });

    // The replayed drain is indistinguishable from the uninterrupted
    // one: same finish time, same link statistics.
    EXPECT_EQ(eq1.now(), eq2.now());
    EXPECT_EQ(rm1.dataBytes(), rm2.dataBytes());
    EXPECT_EQ(rm1.queuePeakDepth(), rm2.queuePeakDepth());
    EXPECT_EQ(rm1.busUtilization(eq1.now()),
              rm2.busUtilization(eq2.now()));
}

TEST(Ckpt, RemoteSaveRefusesOutstandingReads)
{
    RemoteConfig rc;
    rc.enabled = true;
    EventQueue eq;
    RemoteMemory rm(eq, rc, 38.4);
    bool fired = false;
    rm.access(0, false, [&fired] { fired = true; });
    ckpt::Serializer s;
    EXPECT_THROW(rm.save(s), ckpt::CkptError);
    eq.runUntil([&] { return fired; });
    ckpt::Serializer ok;
    EXPECT_NO_THROW(rm.save(ok)); // drained: quiescent again
}

/** Capture a two-tier checkpoint and restore it into the same config
 *  with the remote tier switched on; returns the error message. */
std::string
restoreTwoTierIntoTiered()
{
    const Mix mix = tinyMix("mcf");
    auto build = [&](const SystemConfig &cfg) {
        std::vector<AccessGeneratorPtr> gens;
        for (std::uint32_t i = 0; i < cfg.numCores; ++i)
            gens.push_back(makeGenerator(mix.apps[i], i, 0));
        return std::make_unique<System>(cfg, std::move(gens));
    };
    auto flat = build(sectoredTiny());
    ckpt::Serializer s;
    flat->save(s);

    auto tiered = build(tieredTiny());
    ckpt::Deserializer d(s.buffer());
    try {
        tiered->restore(d);
    } catch (const ckpt::CkptError &e) {
        return e.what();
    }
    return "";
}

TEST(Ckpt, TwoTierCheckpointRefusedInTieredConfig)
{
    // A v1 checkpoint taken without the remote tier has no "remote"
    // section: restoring it into a 3-tier config must fail with a
    // message naming the missing tier, not a generic framing error.
    const std::string msg = restoreTwoTierIntoTiered();
    EXPECT_NE(msg.find("remote"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot seed"), std::string::npos) << msg;
}

TEST(CkptDeathTest, TwoTierCheckpointIntoTieredConfigIsFatal)
{
    // The CLI surfaces the CkptError via fatal(); the death message
    // must name the remote tier so users know which knob to flip.
    EXPECT_DEATH(fatal(restoreTwoTierIntoTiered()), "remote");
}

TEST(Ckpt, ForkSeedsEveryPolicyBitIdentically)
{
    SystemConfig cfg = sectoredTiny();
    cfg.policy = PolicyKind::Baseline;
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    for (PolicyKind p :
         {PolicyKind::Dap, PolicyKind::Sbd, PolicyKind::SbdWt,
          PolicyKind::Batman, PolicyKind::Bear}) {
        SystemConfig variant = cfg;
        variant.policy = p;
        const RunResult direct = runMix(variant, mix, kInstr, 0);
        const RunResult forked = ckpt::runMixFromCheckpoint(
            variant, mix, kInstr, 0, ck, /*fork=*/true);
        expectIdentical(direct, forked);
    }
}

TEST(Ckpt, MismatchedConfigurationRefusesRestore)
{
    const SystemConfig cfg = sectoredTiny();
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    SystemConfig bigger = cfg;
    bigger.sectored.capacityBytes = 4 * kMiB;
    EXPECT_THROW(
        ckpt::runMixFromCheckpoint(bigger, mix, kInstr, 0, ck),
        ckpt::CkptError);

    // Different seed salt changes the streams: also refused.
    EXPECT_THROW(ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 1, ck),
                 ckpt::CkptError);

    // Different workload: refused.
    EXPECT_THROW(ckpt::runMixFromCheckpoint(cfg, tinyMix("bwaves"),
                                            kInstr, 0, ck),
                 ckpt::CkptError);
}

TEST(Ckpt, MismatchedPolicyRequiresFork)
{
    SystemConfig cfg = sectoredTiny();
    cfg.policy = PolicyKind::Baseline;
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    SystemConfig variant = cfg;
    variant.policy = PolicyKind::Dap;
    EXPECT_THROW(
        ckpt::runMixFromCheckpoint(variant, mix, kInstr, 0, ck),
        ckpt::CkptError);
    EXPECT_NO_THROW(ckpt::runMixFromCheckpoint(variant, mix, kInstr, 0,
                                               ck, /*fork=*/true));
}

TEST(Ckpt, CaptureRequiresQuiescentPoint)
{
    SystemConfig cfg = noneTiny();
    cfg.core.instructions = kInstr;
    const Mix mix = tinyMix("mcf");
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i, 0));
    System sys(cfg, std::move(gens));
    sys.warmup(1);
    sys.run();
    ckpt::Serializer s;
    EXPECT_THROW(sys.save(s), ckpt::CkptError);
}

/** Queue a one-workload, five-policy grid on @p runner. */
void
addPolicyGrid(exp::SweepRunner &runner)
{
    runner.addGrid(sectoredTiny(), {tinyMix("mcf")},
                   {PolicyKind::Baseline, PolicyKind::Dap,
                    PolicyKind::Sbd, PolicyKind::Batman,
                    PolicyKind::Bear},
                   kInstr);
}

TEST(SweepWarmupFork, ForkedSweepIsBitIdenticalToUnforked)
{
    exp::SweepRunner plain;
    addPolicyGrid(plain);
    const auto base = plain.run(1);

    exp::SweepRunner forked;
    addPolicyGrid(forked);
    forked.setWarmupFork(true);
    const auto fork = forked.run(4);

    // One shared warm-up for the whole 5-policy group.
    EXPECT_EQ(forked.warmupsExecuted(), 1u);
    ASSERT_EQ(base.size(), fork.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_TRUE(base[i].ok) << base[i].error;
        ASSERT_TRUE(fork[i].ok) << fork[i].error;
        expectIdentical(base[i].result, fork[i].result);
    }
}

TEST(SweepWarmupFork, OneWarmupPerDistinctGroup)
{
    exp::SweepRunner runner;
    runner.addGrid(sectoredTiny(),
                   {tinyMix("mcf"), tinyMix("bwaves")},
                   {PolicyKind::Baseline, PolicyKind::Dap}, kInstr);
    runner.setWarmupFork(true);
    const auto results = runner.run(4);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(runner.warmupsExecuted(), 2u);
}

TEST(SweepWarmupFork, CkptDirIsReusedAcrossSweeps)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "dapsim_ckpt_dir")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    exp::SweepRunner first;
    addPolicyGrid(first);
    first.setWarmupFork(true, dir);
    const auto a = first.run(2);
    EXPECT_EQ(first.warmupsExecuted(), 1u);

    exp::SweepRunner second;
    addPolicyGrid(second);
    second.setWarmupFork(true, dir);
    const auto b = second.run(2);
    EXPECT_EQ(second.warmupsExecuted(), 0u); // loaded from disk

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        expectIdentical(a[i].result, b[i].result);
    }
    std::filesystem::remove_all(dir);
}

/** Mid-stream v1 <-> v2 round trip: the same warm state captured in
 *  both payload encodings restores to bit-identical runs, and a v1
 *  checkpoint (legacy files) still restores under the v2-default
 *  code. */
TEST(CkptV2, V1AndV2CapturesRestoreBitIdentically)
{
    const SystemConfig cfg = sectoredTiny();
    const Mix mix = tinyMix("mcf");
    const RunResult direct = runMix(cfg, mix, kInstr, 7);

    const ckpt::Checkpoint v1 = ckpt::makeWarmupCheckpoint(
        cfg, mix, kInstr, 7, ckpt::kVersionV1);
    const ckpt::Checkpoint v2 = ckpt::makeWarmupCheckpoint(
        cfg, mix, kInstr, 7, ckpt::kVersionV2);
    EXPECT_EQ(v1.header.version, 1u);
    EXPECT_EQ(v2.header.version, 2u);
    EXPECT_EQ(v1.header.stateHash, v2.header.stateHash);
    EXPECT_EQ(v1.header.fullHash, v2.header.fullHash);

    expectIdentical(direct,
                    ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 7, v1));
    expectIdentical(direct,
                    ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 7, v2));
}

/** v2 forks skip the policy section exactly like v1 forks. */
TEST(CkptV2, V2ForkSeedsOtherPolicies)
{
    SystemConfig cfg = sectoredTiny();
    cfg.policy = PolicyKind::Baseline;
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck = ckpt::makeWarmupCheckpoint(
        cfg, mix, kInstr, 7, ckpt::kVersionV2);

    SystemConfig dap = cfg;
    dap.policy = PolicyKind::Dap;
    const RunResult direct = runMix(dap, mix, kInstr, 7);
    expectIdentical(direct,
                    ckpt::runMixFromCheckpoint(dap, mix, kInstr, 7, ck,
                                               /*fork=*/true));
}

/** readFileMapped serves the same checkpoint as readFile, and the
 *  restored run matches; the mapping outlives the restore via the
 *  view's backing reference. */
TEST(CkptV2, MappedReadMatchesHeapRead)
{
    const SystemConfig cfg = sectoredTiny();
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 7);
    const std::string path =
        (std::filesystem::temp_directory_path() / "dapsim_v2_map.ckpt")
            .string();
    ckpt::writeFileAtomic(path, ck);

    const ckpt::Checkpoint heap = ckpt::readFile(path);
    ckpt::CheckpointView mapped = ckpt::readFileMapped(path);
    ASSERT_TRUE(static_cast<bool>(mapped));
    EXPECT_EQ(mapped.header.version, heap.header.version);
    EXPECT_EQ(mapped.header.stateHash, heap.header.stateHash);
    ASSERT_EQ(mapped.payloadSize, heap.payload.size());
    EXPECT_EQ(std::memcmp(mapped.payload, heap.payload.data(),
                          heap.payload.size()),
              0);

    const RunResult direct = runMix(cfg, mix, kInstr, 7);
    expectIdentical(direct, ckpt::runMixFromCheckpoint(cfg, mix, kInstr,
                                                       7, mapped));
    std::filesystem::remove(path);
}

/** Corrupt payload bytes are rejected by the mapped reader too. */
TEST(CkptV2, MappedReadRejectsCorruption)
{
    const SystemConfig cfg = sectoredTiny();
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 7);
    const std::string path =
        (std::filesystem::temp_directory_path() / "dapsim_v2_bad.ckpt")
            .string();
    std::vector<std::uint8_t> bytes = ckpt::encode(ck);
    bytes[bytes.size() - 1] ^= 0xff;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_THROW((void)ckpt::readFileMapped(path), ckpt::CkptError);
    std::filesystem::remove(path);
}

} // namespace
} // namespace dapsim
