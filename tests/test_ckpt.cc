/**
 * @file
 * Tests for the checkpoint subsystem: serializer framing, the
 * dapsim.ckpt.v1 container, bit-identical save/restore across every
 * MS$ architecture and partitioning policy, mismatch rejection, and
 * the sweep runner's warmup-fork mode.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ckpt/checkpoint.hh"
#include "exp/sweep_runner.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

constexpr std::uint64_t kInstr = 2'000;

SystemConfig
sectoredTiny()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
alloyTiny()
{
    SystemConfig cfg = presets::alloySystem8();
    cfg.numCores = 4;
    cfg.alloy.capacityBytes = 2 * kMiB;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
edramTiny()
{
    SystemConfig cfg = presets::edramSystem8(1);
    cfg.numCores = 4;
    cfg.warmupAccessesPerCore = 2'000;
    return cfg;
}

SystemConfig
noneTiny()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.arch = MsArch::None;
    cfg.numCores = 4;
    cfg.warmupAccessesPerCore = 1;
    return cfg;
}

Mix
tinyMix(const std::string &workload)
{
    WorkloadProfile w = workloadByName(workload);
    w.params.footprintBytes = 256 * kKiB;
    return rateMix(w, 4);
}

/** Every metric of @p a and @p b is bit-identical. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.msHitRatio, b.msHitRatio);
    EXPECT_EQ(a.msReadMissRatio, b.msReadMissRatio);
    EXPECT_EQ(a.mmCasFraction, b.mmCasFraction);
    EXPECT_EQ(a.tagCacheMissRatio, b.tagCacheMissRatio);
    EXPECT_EQ(a.avgL3ReadMissLatency, b.avgL3ReadMissLatency);
    EXPECT_EQ(a.l3Mpki, b.l3Mpki);
    EXPECT_EQ(a.readGBps, b.readGBps);
    EXPECT_EQ(a.fwb, b.fwb);
    EXPECT_EQ(a.wb, b.wb);
    EXPECT_EQ(a.ifrm, b.ifrm);
    EXPECT_EQ(a.sfrm, b.sfrm);
}

/** Restoring a warm-up checkpoint reproduces the uninterrupted run. */
void
expectRestoreMatchesRun(SystemConfig cfg)
{
    const Mix mix = tinyMix("mcf");
    const RunResult direct = runMix(cfg, mix, kInstr, 7);
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 7);
    const RunResult restored =
        ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 7, ck);
    expectIdentical(direct, restored);
}

TEST(Serializer, PrimitivesRoundTrip)
{
    ckpt::Serializer s;
    s.u8(0xab);
    s.u32(0xdeadbeefu);
    s.u64(0x0123456789abcdefULL);
    s.i64(-42);
    s.f64(3.141592653589793);
    s.boolean(true);
    s.str("hello");
    const std::uint8_t raw[3] = {1, 2, 3};
    s.bytes(raw, sizeof(raw));

    ckpt::Deserializer d(s.buffer());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.i64(), -42);
    EXPECT_EQ(d.f64(), 3.141592653589793);
    EXPECT_TRUE(d.boolean());
    EXPECT_EQ(d.str(), "hello");
    const auto bytes = d.bytes();
    ASSERT_EQ(bytes.size(), 3u);
    EXPECT_EQ(bytes[2], 3u);
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, SectionsFrameAndVerify)
{
    ckpt::Serializer s;
    s.beginSection("outer");
    s.u64(1);
    s.beginSection("inner");
    s.u32(2);
    s.endSection();
    s.endSection();

    ckpt::Deserializer d(s.buffer());
    d.enterSection("outer");
    EXPECT_EQ(d.u64(), 1u);
    d.enterSection("inner");
    EXPECT_EQ(d.u32(), 2u);
    d.leaveSection();
    d.leaveSection();
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, WrongSectionNameThrows)
{
    ckpt::Serializer s;
    s.beginSection("cores");
    s.u64(1);
    s.endSection();
    ckpt::Deserializer d(s.buffer());
    EXPECT_THROW(d.enterSection("l3"), ckpt::CkptError);
}

TEST(Serializer, UnderconsumedSectionThrows)
{
    ckpt::Serializer s;
    s.beginSection("cores");
    s.u64(1);
    s.u64(2);
    s.endSection();
    ckpt::Deserializer d(s.buffer());
    d.enterSection("cores");
    (void)d.u64();
    EXPECT_THROW(d.leaveSection(), ckpt::CkptError);
}

TEST(Serializer, SkipSectionReturnsNameAndAdvances)
{
    ckpt::Serializer s;
    s.beginSection("policy");
    s.u64(99);
    s.endSection();
    s.u32(5);
    ckpt::Deserializer d(s.buffer());
    EXPECT_EQ(d.skipSection(), "policy");
    EXPECT_EQ(d.u32(), 5u);
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, TruncatedInputThrows)
{
    ckpt::Serializer s;
    s.u64(1);
    std::vector<std::uint8_t> buf = s.buffer();
    buf.pop_back();
    ckpt::Deserializer d(buf);
    EXPECT_THROW((void)d.u64(), ckpt::CkptError);
}

TEST(Ckpt, EncodeDecodeRoundTripsHeaderAndPayload)
{
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   3);
    EXPECT_EQ(ck.header.version, ckpt::kVersion);
    EXPECT_EQ(ck.header.tick, 0u);
    EXPECT_EQ(ck.header.numCores, 4u);
    EXPECT_EQ(ck.header.seedSalt, 3u);
    EXPECT_EQ(ck.header.archId, ckpt::archIdOf(MsArch::None));

    const ckpt::Checkpoint rt = ckpt::decode(ckpt::encode(ck));
    EXPECT_EQ(rt.header.stateHash, ck.header.stateHash);
    EXPECT_EQ(rt.header.fullHash, ck.header.fullHash);
    EXPECT_EQ(rt.header.warmupPerCore, ck.header.warmupPerCore);
    EXPECT_EQ(rt.header.pendingEvents, ck.header.pendingEvents);
    EXPECT_EQ(rt.payload, ck.payload);
}

TEST(Ckpt, DecodeRejectsCorruption)
{
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   0);
    const std::vector<std::uint8_t> bytes = ckpt::encode(ck);

    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(ckpt::decode(bad_magic), ckpt::CkptError);

    std::vector<std::uint8_t> bad_version = bytes;
    bad_version[8] = 0x63; // the version u32 follows the 8-byte magic
    EXPECT_THROW(ckpt::decode(bad_version), ckpt::CkptError);

    std::vector<std::uint8_t> truncated = bytes;
    truncated.pop_back();
    EXPECT_THROW(ckpt::decode(truncated), ckpt::CkptError);

    std::vector<std::uint8_t> corrupt = bytes;
    corrupt.back() ^= 0x01; // flip a payload bit: CRC must catch it
    EXPECT_THROW(ckpt::decode(corrupt), ckpt::CkptError);
}

TEST(Ckpt, FileRoundTripAndMissingFile)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "dapsim_test.ckpt")
            .string();
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(noneTiny(), tinyMix("mcf"), kInstr,
                                   0);
    ckpt::writeFile(path, ck);
    const ckpt::Checkpoint rt = ckpt::readFile(path);
    EXPECT_EQ(rt.header.fullHash, ck.header.fullHash);
    EXPECT_EQ(rt.payload, ck.payload);
    std::remove(path.c_str());
    EXPECT_THROW(ckpt::readFile(path), ckpt::CkptError);
}

TEST(Ckpt, SectoredRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(sectoredTiny());
}

TEST(Ckpt, AlloyRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(alloyTiny());
}

TEST(Ckpt, EdramRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(edramTiny());
}

TEST(Ckpt, NoMsCacheRestoreIsBitIdentical)
{
    expectRestoreMatchesRun(noneTiny());
}

TEST(Ckpt, ForkSeedsEveryPolicyBitIdentically)
{
    SystemConfig cfg = sectoredTiny();
    cfg.policy = PolicyKind::Baseline;
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    for (PolicyKind p :
         {PolicyKind::Dap, PolicyKind::Sbd, PolicyKind::SbdWt,
          PolicyKind::Batman, PolicyKind::Bear}) {
        SystemConfig variant = cfg;
        variant.policy = p;
        const RunResult direct = runMix(variant, mix, kInstr, 0);
        const RunResult forked = ckpt::runMixFromCheckpoint(
            variant, mix, kInstr, 0, ck, /*fork=*/true);
        expectIdentical(direct, forked);
    }
}

TEST(Ckpt, MismatchedConfigurationRefusesRestore)
{
    const SystemConfig cfg = sectoredTiny();
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    SystemConfig bigger = cfg;
    bigger.sectored.capacityBytes = 4 * kMiB;
    EXPECT_THROW(
        ckpt::runMixFromCheckpoint(bigger, mix, kInstr, 0, ck),
        ckpt::CkptError);

    // Different seed salt changes the streams: also refused.
    EXPECT_THROW(ckpt::runMixFromCheckpoint(cfg, mix, kInstr, 1, ck),
                 ckpt::CkptError);

    // Different workload: refused.
    EXPECT_THROW(ckpt::runMixFromCheckpoint(cfg, tinyMix("bwaves"),
                                            kInstr, 0, ck),
                 ckpt::CkptError);
}

TEST(Ckpt, MismatchedPolicyRequiresFork)
{
    SystemConfig cfg = sectoredTiny();
    cfg.policy = PolicyKind::Baseline;
    const Mix mix = tinyMix("mcf");
    const ckpt::Checkpoint ck =
        ckpt::makeWarmupCheckpoint(cfg, mix, kInstr, 0);

    SystemConfig variant = cfg;
    variant.policy = PolicyKind::Dap;
    EXPECT_THROW(
        ckpt::runMixFromCheckpoint(variant, mix, kInstr, 0, ck),
        ckpt::CkptError);
    EXPECT_NO_THROW(ckpt::runMixFromCheckpoint(variant, mix, kInstr, 0,
                                               ck, /*fork=*/true));
}

TEST(Ckpt, CaptureRequiresQuiescentPoint)
{
    SystemConfig cfg = noneTiny();
    cfg.core.instructions = kInstr;
    const Mix mix = tinyMix("mcf");
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i, 0));
    System sys(cfg, std::move(gens));
    sys.warmup(1);
    sys.run();
    ckpt::Serializer s;
    EXPECT_THROW(sys.save(s), ckpt::CkptError);
}

/** Queue a one-workload, five-policy grid on @p runner. */
void
addPolicyGrid(exp::SweepRunner &runner)
{
    runner.addGrid(sectoredTiny(), {tinyMix("mcf")},
                   {PolicyKind::Baseline, PolicyKind::Dap,
                    PolicyKind::Sbd, PolicyKind::Batman,
                    PolicyKind::Bear},
                   kInstr);
}

TEST(SweepWarmupFork, ForkedSweepIsBitIdenticalToUnforked)
{
    exp::SweepRunner plain;
    addPolicyGrid(plain);
    const auto base = plain.run(1);

    exp::SweepRunner forked;
    addPolicyGrid(forked);
    forked.setWarmupFork(true);
    const auto fork = forked.run(4);

    // One shared warm-up for the whole 5-policy group.
    EXPECT_EQ(forked.warmupsExecuted(), 1u);
    ASSERT_EQ(base.size(), fork.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_TRUE(base[i].ok) << base[i].error;
        ASSERT_TRUE(fork[i].ok) << fork[i].error;
        expectIdentical(base[i].result, fork[i].result);
    }
}

TEST(SweepWarmupFork, OneWarmupPerDistinctGroup)
{
    exp::SweepRunner runner;
    runner.addGrid(sectoredTiny(),
                   {tinyMix("mcf"), tinyMix("bwaves")},
                   {PolicyKind::Baseline, PolicyKind::Dap}, kInstr);
    runner.setWarmupFork(true);
    const auto results = runner.run(4);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(runner.warmupsExecuted(), 2u);
}

TEST(SweepWarmupFork, CkptDirIsReusedAcrossSweeps)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / "dapsim_ckpt_dir")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    exp::SweepRunner first;
    addPolicyGrid(first);
    first.setWarmupFork(true, dir);
    const auto a = first.run(2);
    EXPECT_EQ(first.warmupsExecuted(), 1u);

    exp::SweepRunner second;
    addPolicyGrid(second);
    second.setWarmupFork(true, dir);
    const auto b = second.run(2);
    EXPECT_EQ(second.warmupsExecuted(), 0u); // loaded from disk

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        expectIdentical(a[i].result, b[i].result);
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace dapsim
