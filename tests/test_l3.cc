/**
 * @file
 * Unit tests for the shared L3 cache.
 */

#include <gtest/gtest.h>

#include "memside/sectored_dram_cache.hh"
#include "policy_stub.hh"
#include "sim/l3_cache.hh"

namespace dapsim
{
namespace
{

class L3Test : public ::testing::Test
{
  protected:
    L3Test()
        : mm(eq, presets::ddr4_2400()),
          ms(eq, mm, policy, msConfig()), l3(eq, l3Config(), ms)
    {
    }

    static SectoredDramCacheConfig
    msConfig()
    {
        SectoredDramCacheConfig c;
        c.capacityBytes = 4 * kMiB;
        return c;
    }

    static L3Config
    l3Config()
    {
        L3Config c;
        c.capacityBytes = 64 * kKiB;
        return c;
    }

    bool
    read(Addr a)
    {
        bool fired = false;
        l3.access(a, false, [&] { fired = true; });
        eq.run();
        return fired;
    }

    EventQueue eq;
    DramSystem mm;
    StubPolicy policy;
    SectoredDramCache ms;
    L3Cache l3;
};

TEST_F(L3Test, MissGoesDownHitStaysLocal)
{
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(l3.misses.value(), 1u);
    EXPECT_EQ(ms.readMisses.value(), 1u);
    EXPECT_TRUE(read(0x1000));
    EXPECT_EQ(l3.hits.value(), 1u);
    EXPECT_EQ(ms.readMisses.value() + ms.readHits.value(), 1u);
}

TEST_F(L3Test, HitLatencyIsTwentyCycles)
{
    read(0x2000);
    Tick t0 = eq.now();
    Tick done = 0;
    l3.access(0x2000, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done - t0, cpuCyclesToTicks(20));
}

TEST_F(L3Test, WritebackAllocatesDirty)
{
    l3.access(0x3000, true, nullptr);
    eq.run();
    EXPECT_EQ(l3.misses.value(), 1u);
    // No traffic reaches the MS$ until the dirty line is evicted.
    EXPECT_EQ(ms.writeHits.value() + ms.writeMisses.value(), 0u);
}

TEST_F(L3Test, DirtyEvictionsBecomeMsWrites)
{
    // Fill the L3 with dirty lines far beyond its capacity.
    const std::uint64_t lines = l3Config().capacityBytes / kBlockBytes;
    for (std::uint64_t i = 0; i < lines * 3; ++i)
        l3.access(static_cast<Addr>(i) * kBlockBytes, true, nullptr);
    eq.run();
    EXPECT_GT(l3.writebacksToMs.value(), 0u);
    EXPECT_GT(ms.writeHits.value() + ms.writeMisses.value(), 0u);
}

TEST_F(L3Test, ReadMissLatencyIsSampled)
{
    read(0x4000);
    EXPECT_EQ(l3.readMissLatency.count(), 1u);
    EXPECT_GT(l3.meanReadMissLatency(),
              static_cast<double>(cpuCyclesToTicks(20)));
}

TEST_F(L3Test, WarmTouchFillsWithoutTiming)
{
    l3.warmTouch(0x5000, false);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(l3.hits.value() + l3.misses.value(), 0u);
    read(0x5000);
    EXPECT_EQ(l3.hits.value(), 1u);
}

TEST_F(L3Test, WarmDirtyEvictionsPropagateFunctionally)
{
    const std::uint64_t lines = l3Config().capacityBytes / kBlockBytes;
    for (std::uint64_t i = 0; i < lines * 3; ++i)
        l3.warmTouch(static_cast<Addr>(i) * kBlockBytes, true);
    // MS$ got warm write touches for the evicted dirty lines.
    read(0x0); // likely evicted from L3 but resident in MS$
    EXPECT_GE(ms.readHits.value() + ms.readMisses.value(), 1u);
}

TEST_F(L3Test, MissRatioTracksCounts)
{
    read(0x6000); // miss
    read(0x6000); // hit
    EXPECT_NEAR(l3.missRatio(), 0.5, 1e-12);
}

} // namespace
} // namespace dapsim
