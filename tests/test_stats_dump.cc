/**
 * @file
 * Tests for the gem5-style statistics dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

std::string
runAndDump(MsArch arch, PolicyKind policy)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.arch = arch;
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.alloy.capacityBytes = 8 * kMiB;
    cfg.edram.capacityBytes = 4 * kMiB;
    cfg.policy = policy;
    cfg.core.instructions = 3'000;
    cfg.warmupAccessesPerCore = 5'000;

    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 512 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(w, i));
    System sys(cfg, std::move(gens));
    sys.warmup(cfg.warmupAccessesPerCore);
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

TEST(StatsDump, ContainsCoreAndHierarchyRows)
{
    const std::string s = runAndDump(MsArch::Sectored,
                                     PolicyKind::Baseline);
    for (const char *key :
         {"sim.cycles", "core0.ipc", "core7.reads", "l3.misses",
          "ms.hitRatio", "ms.tagCache.missRatio", "msArray.casReads",
          "mainMemory.casReads", "mainMemory.busUtilization"})
        EXPECT_NE(s.find(key), std::string::npos) << key;
}

TEST(StatsDump, DapRowsOnlyUnderDap)
{
    EXPECT_EQ(runAndDump(MsArch::Sectored, PolicyKind::Baseline)
                  .find("dap.fwbApplied"),
              std::string::npos);
    EXPECT_NE(runAndDump(MsArch::Sectored, PolicyKind::Dap)
                  .find("dap.fwbApplied"),
              std::string::npos);
}

TEST(StatsDump, EdramDumpsBothChannelSets)
{
    const std::string s =
        runAndDump(MsArch::Edram, PolicyKind::Baseline);
    EXPECT_NE(s.find("msReadArray.casReads"), std::string::npos);
    EXPECT_NE(s.find("msWriteArray.casWrites"), std::string::npos);
}

TEST(StatsDump, EveryRowIsNameValue)
{
    std::istringstream is(
        runAndDump(MsArch::Alloy, PolicyKind::Bear));
    std::string line;
    int rows = 0;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        const auto space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        // The value parses as a number.
        EXPECT_NO_THROW((void)std::stod(line.substr(space + 1)))
            << line;
        ++rows;
    }
    EXPECT_GT(rows, 40);
}

} // namespace
} // namespace dapsim
