/**
 * @file
 * Integration tests: full systems (cores -> L3 -> MS$ -> MM) under
 * every architecture and policy, plus the end-to-end properties the
 * paper's evaluation relies on.
 */

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

constexpr std::uint64_t kSmallInstr = 10'000;

SystemConfig
smallSectored()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 20'000;
    return cfg;
}

Mix
smallMix()
{
    // Aggregate footprint (8 x 1 MB) matches the scaled-down 8 MB MS$.
    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 512 * kKiB;
    return rateMix(w, 8);
}

TEST(SystemIntegration, BaselineRunCompletes)
{
    const RunResult r = runMix(smallSectored(), smallMix(), kSmallInstr);
    EXPECT_EQ(r.ipc.size(), 8u);
    for (double ipc : r.ipc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 4.0);
    }
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.msHitRatio, 0.6);
    EXPECT_EQ(r.policyName, "baseline");
}

TEST(SystemIntegration, EveryArchAndPolicyCombinationRuns)
{
    const Mix mix = smallMix();
    for (MsArch arch :
         {MsArch::Sectored, MsArch::Alloy, MsArch::Edram, MsArch::None}) {
        for (PolicyKind pol :
             {PolicyKind::Baseline, PolicyKind::Dap, PolicyKind::Sbd,
              PolicyKind::SbdWt, PolicyKind::Batman, PolicyKind::Bear}) {
            if (arch == MsArch::None && pol != PolicyKind::Baseline)
                continue;
            SystemConfig cfg = smallSectored();
            cfg.arch = arch;
            cfg.alloy.capacityBytes = 8 * kMiB;
            cfg.edram.capacityBytes = 4 * kMiB;
            cfg.policy = pol;
            if (arch == MsArch::None)
                cfg.warmupAccessesPerCore = 1;
            const RunResult r = runMix(cfg, mix, 3'000);
            EXPECT_GT(r.throughput(), 0.0)
                << "arch=" << static_cast<int>(arch)
                << " policy=" << static_cast<int>(pol);
        }
    }
}

TEST(SystemIntegration, DeterministicEndToEnd)
{
    const RunResult a = runMix(smallSectored(), smallMix(), kSmallInstr);
    const RunResult b = runMix(smallSectored(), smallMix(), kSmallInstr);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.msHitRatio, b.msHitRatio);
}

TEST(SystemIntegration, SeedSaltChangesTiming)
{
    const RunResult a =
        runMix(smallSectored(), smallMix(), kSmallInstr, 1);
    const RunResult b =
        runMix(smallSectored(), smallMix(), kSmallInstr, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(SystemIntegration, DapDoesNotHurtAndShiftsTrafficToMemory)
{
    SystemConfig base = smallSectored();
    SystemConfig dap = base;
    dap.policy = PolicyKind::Dap;
    // A bandwidth-hungry streaming mix.
    WorkloadProfile w = workloadByName("parboil-lbm");
    w.params.footprintBytes = 1 * kMiB;
    const Mix mix = rateMix(w, 8);
    const RunResult rb = runMix(base, mix, 30'000);
    const RunResult rd = runMix(dap, mix, 30'000);
    EXPECT_GE(rd.throughput(), rb.throughput() * 0.97);
    EXPECT_GT(rd.mmCasFraction, rb.mmCasFraction);
    EXPECT_GT(rd.fwb + rd.wb + rd.ifrm + rd.sfrm, 0u);
}

TEST(SystemIntegration, DapLowersHitRatioWhilePartitioning)
{
    SystemConfig base = smallSectored();
    SystemConfig dap = base;
    dap.policy = PolicyKind::Dap;
    WorkloadProfile w = workloadByName("gcc.s04");
    w.params.footprintBytes = 1 * kMiB;
    const Mix mix = rateMix(w, 8);
    const RunResult rb = runMix(base, mix, 30'000);
    const RunResult rd = runMix(dap, mix, 30'000);
    // The paper's headline trade: hit rate may drop, performance not.
    EXPECT_LE(rd.msHitRatio, rb.msHitRatio + 0.01);
}

TEST(SystemIntegration, AloneIpcExceedsRateModeIpc)
{
    const SystemConfig cfg = smallSectored();
    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 1 * kMiB;
    const double alone = aloneIpc(cfg, w, kSmallInstr);
    const RunResult shared =
        runMix(cfg, rateMix(w, 8), kSmallInstr);
    EXPECT_GT(alone, 0.0);
    // Sharing the memory system cannot make a copy faster.
    EXPECT_LE(shared.ipc[0], alone * 1.1);
}

TEST(SystemIntegration, AloneIpcTableMemoizesPerApp)
{
    const SystemConfig cfg = smallSectored();
    const Mix mix = smallMix();
    const auto table = aloneIpcTable(cfg, mix, 5'000);
    ASSERT_EQ(table.size(), 8u);
    for (std::size_t i = 1; i < table.size(); ++i)
        EXPECT_EQ(table[i], table[0]); // same app: same alone IPC
}

TEST(SystemIntegration, SixteenCoreSystemRuns)
{
    SystemConfig cfg = presets::sectoredSystem16();
    cfg.sectored.capacityBytes = 16 * kMiB;
    cfg.warmupAccessesPerCore = 10'000;
    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 1 * kMiB;
    const RunResult r = runMix(cfg, rateMix(w, 16), 3'000);
    EXPECT_EQ(r.ipc.size(), 16u);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST(SystemIntegration, NoMsCacheStillWorks)
{
    SystemConfig cfg = smallSectored();
    cfg.arch = MsArch::None;
    cfg.warmupAccessesPerCore = 1;
    const RunResult r = runMix(cfg, smallMix(), 3'000);
    EXPECT_GT(r.throughput(), 0.0);
    EXPECT_EQ(r.mmCasFraction, 1.0); // everything served by memory
}

TEST(SystemIntegration, HarvestReportsTagCacheMissRatio)
{
    const RunResult r = runMix(smallSectored(), smallMix(), kSmallInstr);
    EXPECT_GE(r.tagCacheMissRatio, 0.0);
    EXPECT_LE(r.tagCacheMissRatio, 1.0);
}

TEST(SystemIntegration, MaxTicksBoundsRunaways)
{
    SystemConfig cfg = smallSectored();
    cfg.core.instructions = ~0ull >> 1; // can never finish
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(workloadByName("hpcg"), i));
    System sys(cfg, std::move(gens));
    sys.run(1'000'000); // 1 us cap
    EXPECT_LE(sys.eventQueue().now(), 1'100'000u);
    EXPECT_FALSE(sys.allCoresFinished());
}

TEST(SystemIntegrationDeathTest, GeneratorCountMustMatchCores)
{
    SystemConfig cfg = smallSectored();
    std::vector<AccessGeneratorPtr> gens; // empty
    EXPECT_DEATH(System(cfg, std::move(gens)), "generator");
}

} // namespace
} // namespace dapsim
