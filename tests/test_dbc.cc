/**
 * @file
 * Unit tests for the Alloy cache's dirty-bit cache (DBC).
 */

#include <gtest/gtest.h>

#include "cache/dirty_bit_cache.hh"

namespace dapsim
{
namespace
{

DirtyBitCacheConfig
smallConfig()
{
    DirtyBitCacheConfig c;
    c.entries = 16;
    c.ways = 4;
    c.setsPerEntry = 64;
    return c;
}

TEST(DirtyBitCache, MissAllocatesConservatively)
{
    DirtyBitCache dbc(smallConfig());
    const auto p = dbc.probe(5);
    EXPECT_FALSE(p.hit); // unknown: caller must assume dirty
    EXPECT_EQ(dbc.misses.value(), 1u);
}

TEST(DirtyBitCache, UnknownBitsReportNotHitEvenWhenGroupResident)
{
    DirtyBitCache dbc(smallConfig());
    dbc.probe(5);          // allocate the group
    dbc.update(5, false);  // set 5 now known clean
    const auto known = dbc.probe(5);
    EXPECT_TRUE(known.hit);
    EXPECT_FALSE(known.dirty);
    // Set 6 is in the same group but was never observed.
    const auto unknown = dbc.probe(6);
    EXPECT_FALSE(unknown.hit);
}

TEST(DirtyBitCache, TracksDirtyTransitions)
{
    DirtyBitCache dbc(smallConfig());
    dbc.probe(10);
    dbc.update(10, true);
    EXPECT_TRUE(dbc.probe(10).dirty);
    dbc.update(10, false);
    EXPECT_FALSE(dbc.probe(10).dirty);
}

TEST(DirtyBitCache, GroupsOf64ConsecutiveSets)
{
    DirtyBitCache dbc(smallConfig());
    dbc.probe(0); // allocates group 0 (sets 0..63)
    dbc.update(0, false);
    dbc.update(63, true);
    EXPECT_TRUE(dbc.probe(0).hit);
    EXPECT_TRUE(dbc.probe(63).hit);
    EXPECT_FALSE(dbc.probe(0).dirty);
    EXPECT_TRUE(dbc.probe(63).dirty);
    // Set 64 belongs to the next group: a fresh miss.
    EXPECT_FALSE(dbc.probe(64).hit);
}

TEST(DirtyBitCache, UpdateOnAbsentGroupIsIgnored)
{
    DirtyBitCache dbc(smallConfig());
    dbc.update(999 * 64, false); // never probed: no allocation
    EXPECT_FALSE(dbc.probe(999 * 64).hit);
}

TEST(DirtyBitCache, HitRateImprovesWithLocality)
{
    DirtyBitCache dbc(smallConfig());
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t s = 0; s < 64; ++s) {
            dbc.probe(s);
            dbc.update(s, false);
        }
    // After the first cold round everything hits.
    EXPECT_GT(dbc.hits.value(), dbc.misses.value() * 5);
}

} // namespace
} // namespace dapsim
