/**
 * @file
 * Property tests for the DAP solvers and credit counters.
 *
 * Pinned-RNG fuzz (the same LCG recipe as test_dap_solver.cc, so every
 * run checks the same inputs) asserting the paper's structural
 * guarantees rather than point values:
 *
 *  - SFRM never exceeds the 0.8 headroom share of the spare
 *    main-memory bandwidth left after the other techniques (Fig 3).
 *  - Every technique target is component-wise non-decreasing in the
 *    per-window target cap: growing the credit budget can only grant
 *    more bypasses, never fewer.
 *  - The signed partition-ratio error against Eq 4,
 *    e(C) = A'_MS$ - K·A'_MM after applying the targets granted under
 *    cap C, is monotonically non-increasing as C grows — more credits
 *    always move the split toward the bandwidth-proportional optimum.
 *  - DapPolicy's saturating credit counters stay within [0, creditMax]
 *    under arbitrary window demand and decision interleavings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "dap/dap_controller.hh"
#include "dap/dap_solver.hh"

namespace dapsim::dap
{
namespace
{

/** Deterministic LCG so failures reproduce byte-for-byte. */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : x_(seed * 2654435761u + 99) {}

    std::int64_t
    operator()(std::int64_t lo, std::int64_t hi)
    {
        x_ = x_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return lo + static_cast<std::int64_t>(
                        (x_ >> 16) %
                        static_cast<std::uint64_t>(hi - lo + 1));
    }

  private:
    std::uint64_t x_;
};

FixedRatio
paperK()
{
    return FixedRatio::quantize(102.4 / 38.4, 2); // 11/4
}

SectoredInput
randomInput(Lcg &rnd)
{
    SectoredInput in;
    in.aMs = rnd(0, 120);
    in.aMm = rnd(0, 40);
    in.readMisses = rnd(0, 70);
    in.writes = rnd(0, 70);
    in.cleanHits = rnd(0, 70);
    in.bMsW = rnd(1, 40);
    in.bMmW = rnd(1, 25);
    return in;
}

class SolverPropertyExt : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverPropertyExt, SfrmRespectsSpareHeadroom)
{
    Lcg rnd(static_cast<std::uint64_t>(GetParam()));
    const FixedRatio k = paperK();
    for (int i = 0; i < 500; ++i) {
        const SectoredInput in = randomInput(rnd);
        const Targets t = solveSectored(in, k);
        // Fig 3: SFRM only consumes 80% of whatever main-memory
        // bandwidth the other techniques left unused this window.
        const std::int64_t spare =
            in.bMmW - (in.aMm + t.nWb + t.nIfrm);
        if (spare <= 0) {
            EXPECT_EQ(t.nSfrm, 0) << "iteration " << i;
        } else {
            EXPECT_LE(t.nSfrm,
                      static_cast<std::int64_t>(
                          0.8 * static_cast<double>(spare)))
                << "iteration " << i;
        }
        EXPECT_LE(t.nSfrm, 63);
    }
}

TEST_P(SolverPropertyExt, TargetsMonotoneInCap)
{
    Lcg rnd(static_cast<std::uint64_t>(GetParam()) + 1000);
    const FixedRatio k = paperK();
    for (int i = 0; i < 200; ++i) {
        const SectoredInput in = randomInput(rnd);
        Targets prev = solveSectored(in, k, 0.8, 0);
        for (std::int64_t cap = 1; cap <= 63; ++cap) {
            const Targets t = solveSectored(in, k, 0.8, cap);
            EXPECT_GE(t.nFwb, prev.nFwb) << "cap " << cap;
            EXPECT_GE(t.nWb, prev.nWb) << "cap " << cap;
            EXPECT_GE(t.nIfrm, prev.nIfrm) << "cap " << cap;
            // (nSfrm is deliberately NOT monotone: a bigger cap lets
            // WB/IFRM consume the spare bandwidth SFRM would use.)
            prev = t;
        }
    }
}

TEST_P(SolverPropertyExt, RatioErrorNonIncreasingInCap)
{
    Lcg rnd(static_cast<std::uint64_t>(GetParam()) + 2000);
    const FixedRatio k = paperK();
    for (int i = 0; i < 200; ++i) {
        const SectoredInput in = randomInput(rnd);
        // Signed distance from Eq 4's bandwidth-proportional split
        // after applying the granted bypasses: FWB removes an MS$
        // access; WB and IFRM each move one access from the MS$ to
        // main memory.
        auto err = [&](const Targets &t) {
            const std::int64_t adj_ms =
                in.aMs - t.nFwb - t.nWb - t.nIfrm;
            const std::int64_t adj_mm = in.aMm + t.nWb + t.nIfrm;
            return adj_ms - k.mul(adj_mm);
        };
        const Targets t0 = solveSectored(in, k, 0.8, 0);
        if (!t0.active)
            continue; // no grants at any cap: error is flat
        std::int64_t prev = err(t0);
        for (std::int64_t cap = 1; cap <= 63; ++cap) {
            const std::int64_t e = err(solveSectored(in, k, 0.8, cap));
            EXPECT_LE(e, prev) << "cap " << cap << " iteration " << i;
            prev = e;
        }
    }
}

TEST_P(SolverPropertyExt, PolicyCreditsStayWithinHardwareRange)
{
    Lcg rnd(static_cast<std::uint64_t>(GetParam()) + 3000);
    DapConfig cfg;
    cfg.msPeakAccPerCycle = 0.4;
    cfg.mmPeakAccPerCycle = 0.15;
    DapPolicy policy(cfg);

    auto checkRange = [&policy, &cfg](const char *when) {
        for (std::int64_t c :
             {policy.fwbCredits(), policy.wbCredits(),
              policy.ifrmCredits(), policy.sfrmCredits(),
              policy.wtCredits()}) {
            EXPECT_GE(c, 0) << when;
            EXPECT_LE(c, cfg.creditMax) << when;
        }
    };

    for (int w = 0; w < 400; ++w) {
        WindowCounters prev;
        prev.aMs = static_cast<std::uint64_t>(rnd(0, 200));
        prev.aMm = static_cast<std::uint64_t>(rnd(0, 60));
        prev.readMisses = static_cast<std::uint64_t>(rnd(0, 80));
        prev.writes = static_cast<std::uint64_t>(rnd(0, 80));
        prev.cleanHits = static_cast<std::uint64_t>(rnd(0, 80));
        policy.beginWindow(prev);
        checkRange("after beginWindow");

        // Random decision traffic drains the counters mid-window.
        for (int d = rnd(0, 40); d > 0; --d) {
            const Addr addr = static_cast<Addr>(rnd(0, 7)) << 40;
            switch (rnd(0, 3)) {
              case 0:
                policy.shouldBypassFill(addr);
                break;
              case 1:
                policy.shouldBypassWrite(addr);
                break;
              case 2:
                policy.shouldForceReadMiss(addr);
                break;
              default:
                policy.shouldSpeculateToMemory(addr);
                break;
            }
        }
        checkRange("after decisions");
    }
}

TEST_P(SolverPropertyExt, RemoteSplitStaysWithinBothBudgets)
{
    // DAP-n's Eq 4 remote split: never negative, never more than the
    // lower-tier demand or the remote window budget, and monotone in
    // the demand it divides.
    Lcg rnd(static_cast<std::uint64_t>(GetParam()) + 4000);
    for (int i = 0; i < 500; ++i) {
        const std::int64_t a = rnd(0, 500);
        const std::int64_t b_mm = rnd(0, 60);
        const std::int64_t b_rem = rnd(0, 60);
        const std::int64_t n = solveRemoteSplit(a, b_mm, b_rem);
        EXPECT_GE(n, 0) << "iteration " << i;
        EXPECT_LE(n, a) << "iteration " << i;
        EXPECT_LE(n, std::max<std::int64_t>(b_rem, 0))
            << "iteration " << i;
        // More lower-tier demand never shrinks the remote share.
        EXPECT_GE(solveRemoteSplit(a + 1, b_mm, b_rem), n)
            << "iteration " << i;
    }
}

TEST(SolverRemoteSplit, DegenerateInputsAreSafe)
{
    // No demand or no remote bandwidth: nothing to route.
    EXPECT_EQ(solveRemoteSplit(0, 10, 10), 0);
    EXPECT_EQ(solveRemoteSplit(-5, 10, 10), 0);
    EXPECT_EQ(solveRemoteSplit(100, 10, 0), 0);
    EXPECT_EQ(solveRemoteSplit(100, 10, -3), 0);
    // Dead DDR tier: everything (up to the budget) goes remote.
    EXPECT_EQ(solveRemoteSplit(100, 0, 40), 40);
    EXPECT_EQ(solveRemoteSplit(20, 0, 40), 20);
    // Duplicate bandwidths split the demand evenly (Eq 4)...
    EXPECT_EQ(solveRemoteSplit(40, 30, 30), 20);
    // ...but never past the remote window budget.
    EXPECT_EQ(solveRemoteSplit(100, 30, 30), 30);
}

TEST(SolverRemoteSplit, RatioKUnchangedWithoutRemote)
{
    // DAP-n's generalized K degenerates to the paper's two-source K
    // when the remote bandwidth is zero.
    DapConfig two;
    two.msPeakAccPerCycle = 0.4;
    two.mmPeakAccPerCycle = 0.15;
    DapConfig three = two;
    three.remotePeakAccPerCycle = 0.0;
    EXPECT_EQ(two.ratioK().numerator(), three.ratioK().numerator());
    EXPECT_EQ(two.ratioK().denominator(),
              three.ratioK().denominator());
    // And a positive remote bandwidth lowers K: the lower level is
    // faster, so the MS$'s proportional share shrinks.
    three.remotePeakAccPerCycle = 0.15;
    EXPECT_LT(three.ratioK().value(), two.ratioK().value());
}

TEST(SolverRemoteSplit, PolicyRemoteCreditsStayWithinHardwareRange)
{
    Lcg rnd(7777);
    DapConfig cfg;
    cfg.msPeakAccPerCycle = 0.4;
    cfg.mmPeakAccPerCycle = 0.15;
    cfg.remotePeakAccPerCycle = 0.05;
    DapPolicy policy(cfg);
    for (int w = 0; w < 400; ++w) {
        WindowCounters prev;
        prev.aMs = static_cast<std::uint64_t>(rnd(0, 200));
        prev.aMm = static_cast<std::uint64_t>(rnd(0, 60));
        prev.aRemote = static_cast<std::uint64_t>(
            rnd(0, static_cast<std::int64_t>(prev.aMm)));
        prev.readMisses = static_cast<std::uint64_t>(rnd(0, 80));
        prev.writes = static_cast<std::uint64_t>(rnd(0, 80));
        prev.cleanHits = static_cast<std::uint64_t>(rnd(0, 80));
        policy.beginWindow(prev);
        EXPECT_GE(policy.remoteCredits(), 0);
        EXPECT_LE(policy.remoteCredits(), cfg.creditMax);
        for (int d = rnd(0, 40); d > 0; --d)
            policy.shouldRouteToRemote(static_cast<Addr>(rnd(0, 7))
                                       << 40);
        EXPECT_GE(policy.remoteCredits(), 0);
        EXPECT_LE(policy.remoteCredits(), cfg.creditMax);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyExt,
                         ::testing::Range(1, 6));

} // namespace
} // namespace dapsim::dap
