/**
 * @file
 * Unit tests for the trace-driven ROB/MLP core model.
 */

#include <gtest/gtest.h>

#include <queue>

#include "cpu/rob_core.hh"

namespace dapsim
{
namespace
{

/** Helper building a core over a scripted request list + fixed-latency
 *  memory. */
class CoreHarness
{
  public:
    CoreHarness(EventQueue &eq, const CoreConfig &cfg, Tick read_latency)
        : eq_(eq), latency_(read_latency)
    {
        core = std::make_unique<RobCore>(
            eq, cfg, 0,
            [this](TraceRequest &out) {
                if (script.empty())
                    return false;
                out = script.front();
                script.pop();
                return true;
            },
            [this](Addr, bool is_write, EventQueue::Callback done) {
                if (is_write)
                    return;
                ++reads;
                eq_.scheduleAfter(latency_, std::move(done));
            });
    }

    void
    addReads(int n, std::uint64_t gap)
    {
        for (int i = 0; i < n; ++i)
            script.push(TraceRequest{0x1000, false, gap});
    }

    std::queue<TraceRequest> script;
    std::unique_ptr<RobCore> core;
    int reads = 0;

  private:
    EventQueue &eq_;
    Tick latency_;
};

TEST(RobCore, ComputeOnlyRetiresAtFullWidth)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 10000;
    CoreHarness h(eq, cfg, 100);
    // One giant compute gap covers the whole instruction budget.
    h.script.push(TraceRequest{0, false, 20000});
    h.core->start();
    eq.run();
    ASSERT_TRUE(h.core->finished());
    EXPECT_NEAR(h.core->finishIpc(), 4.0, 0.05);
}

TEST(RobCore, SingleDependentMissChainBoundsIpc)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 10000;
    cfg.robEntries = 8; // tiny ROB: misses cannot overlap (gap 100 > 8)
    const Tick lat = 10000; // 40 CPU cycles
    CoreHarness h(eq, cfg, lat);
    h.addReads(200, 100);
    h.core->start();
    eq.run(1'000'000'000);
    // Each 100-instruction chunk costs ~max(25 cyc retire, 40 cyc
    // stall+latency): IPC well below width.
    const double ipc = h.core->ipcAt(eq.now());
    EXPECT_LT(ipc, 2.5);
    EXPECT_GT(ipc, 0.5);
}

TEST(RobCore, MlpOverlapsIndependentMisses)
{
    // With a big ROB, misses 10 instructions apart overlap: total time
    // is far less than N * latency.
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 1000;
    cfg.robEntries = 224;
    cfg.maxOutstanding = 40;
    const Tick lat = 50000; // 200 cycles
    CoreHarness h(eq, cfg, lat);
    h.addReads(100, 10);
    h.core->start();
    eq.run(10'000'000'000);
    ASSERT_TRUE(h.core->finished());
    const double cycles =
        static_cast<double>(h.core->finishTick()) / kCpuPeriodPs;
    // Serial execution would take >= 100 * 200 = 20000 cycles.
    EXPECT_LT(cycles, 10000);
}

TEST(RobCore, MshrBoundLimitsOutstanding)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 500;
    cfg.maxOutstanding = 2;
    int outstanding = 0, max_outstanding = 0, issued = 0;
    RobCore core(
        eq, cfg, 0,
        [&](TraceRequest &out) {
            out = TraceRequest{0, false, 1};
            return issued++ < 500;
        },
        [&](Addr, bool, EventQueue::Callback done) {
            ++outstanding;
            max_outstanding = std::max(max_outstanding, outstanding);
            eq.scheduleAfter(1000, [&outstanding, done = std::move(done)] {
                --outstanding;
                done();
            });
        });
    core.start();
    eq.run();
    EXPECT_LE(max_outstanding, 2);
}

TEST(RobCore, WritesDontBlockRetirement)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 10000;
    int writes = 0;
    RobCore core(
        eq, cfg, 0,
        [&](TraceRequest &out) {
            out = TraceRequest{0, true, 50};
            return true;
        },
        [&](Addr, bool is_write, EventQueue::Callback) {
            if (is_write)
                ++writes;
        });
    core.start();
    eq.run(1'000'000'000);
    ASSERT_TRUE(core.finished());
    EXPECT_NEAR(core.finishIpc(), 4.0, 0.1);
    EXPECT_GT(writes, 100);
}

TEST(RobCore, RateModeKeepsRunningAfterFinish)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 100;
    CoreHarness h(eq, cfg, 1000);
    h.addReads(1000, 10);
    h.core->start();
    eq.run(100'000'000);
    ASSERT_TRUE(h.core->finished());
    // Reads continue well past the finish point.
    EXPECT_GT(h.reads, 20);
}

TEST(RobCore, ReadLatencyIsSampled)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.instructions = 1000;
    CoreHarness h(eq, cfg, 12345);
    h.addReads(50, 20);
    h.core->start();
    eq.run(1'000'000'000);
    EXPECT_GT(h.core->readLatency.count(), 0u);
    EXPECT_NEAR(h.core->readLatency.mean(), 12345.0, 1.0);
}

TEST(RobCore, IpcAtZeroIsZero)
{
    EventQueue eq;
    CoreConfig cfg;
    CoreHarness h(eq, cfg, 100);
    EXPECT_EQ(h.core->ipcAt(0), 0.0);
}

TEST(RobCoreDeathTest, ZeroResourcesAreFatal)
{
    EventQueue eq;
    CoreConfig cfg;
    cfg.retireWidth = 0;
    EXPECT_DEATH(RobCore(eq, cfg, 0,
                         [](TraceRequest &) { return false; },
                         [](Addr, bool, EventQueue::Callback) {}),
                 "zero");
}

} // namespace
} // namespace dapsim
