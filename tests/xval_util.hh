/**
 * @file
 * Shared cross-validation helpers: measure the delivered bandwidth of
 * a fixed access split across n heterogeneous bandwidth sources with
 * the timing simulator, for comparison against the Section III
 * analytical model (Eqs 1-4).
 */

#ifndef DAPSIM_TESTS_XVAL_UTIL_HH
#define DAPSIM_TESTS_XVAL_UTIL_HH

#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"
#include "memside/remote_memory.hh"

namespace dapsim::xval
{

/** One bandwidth source: issues a 64B read and signals completion. */
using IssueFn = std::function<void(Addr, EventQueue::Callback)>;

inline IssueFn
dramIssuer(DramSystem &mem)
{
    return [&mem](Addr a, EventQueue::Callback done) {
        mem.access(a, false, std::move(done));
    };
}

inline IssueFn
remoteIssuer(RemoteMemory &remote)
{
    return [&remote](Addr a, EventQueue::Callback done) {
        remote.access(a, false, std::move(done));
    };
}

/**
 * Issue @p n 64B reads at tick 0, split across @p sources by the
 * cumulative @p fractions (one Rng::real() draw per access, so the
 * two-source case reproduces Rng::chance(f) draw-for-draw), run the
 * queue dry and return the delivered GB/s.
 */
inline double
measureSplitGBps(EventQueue &eq, const std::vector<IssueFn> &sources,
                 const std::vector<double> &fractions, int n,
                 std::uint64_t seed)
{
    int done = 0;
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const Addr a = static_cast<Addr>(i) * kBlockBytes;
        const double u = rng.real();
        double cum = 0.0;
        std::size_t pick = sources.size() - 1;
        for (std::size_t s = 0; s < sources.size(); ++s) {
            cum += fractions[s];
            if (u < cum) {
                pick = s;
                break;
            }
        }
        sources[pick](a, [&done] { ++done; });
    }
    eq.runUntil([&done, n] { return done == n; });
    const double seconds = static_cast<double>(eq.now()) / kPsPerSecond;
    return n * 64.0 / seconds / 1e9;
}

} // namespace dapsim::xval

#endif // DAPSIM_TESTS_XVAL_UTIL_HH
