/**
 * @file
 * Unit tests for DAP's per-window partitioning solvers (Section IV).
 *
 * The concrete expected values pin the integer arithmetic of the
 * hardware-friendly closed forms with K = 8/3 quantized to 11/4
 * (the paper's own example) and the Fig 3 cascade
 * FWB -> WB -> IFRM -> SFRM.
 */

#include <gtest/gtest.h>

#include "dap/dap_solver.hh"

namespace dapsim::dap
{
namespace
{

FixedRatio
paperK()
{
    return FixedRatio::quantize(102.4 / 38.4, 2); // 11/4
}

SectoredInput
baseInput()
{
    SectoredInput in;
    in.bMsW = 19; // floor(0.75 * 0.4 acc/cyc * 64 cycles)
    in.bMmW = 7;  // floor(0.75 * 0.15 * 64)
    return in;
}

TEST(SolveSectored, NoPartitioningWithinBandwidth)
{
    SectoredInput in = baseInput();
    in.aMs = 19; // == bMsW: no shortage
    in.aMm = 3;
    in.readMisses = 5;
    const Targets t = solveSectored(in, paperK());
    EXPECT_FALSE(t.active);
    EXPECT_EQ(t.nFwb, 0);
    EXPECT_EQ(t.nWb, 0);
    EXPECT_EQ(t.nIfrm, 0);
    // SFRM still uses the spare memory bandwidth (Fig 3 computes it in
    // its own box): 0.8 * (7 - 3) = 3.
    EXPECT_EQ(t.nSfrm, 3);
}

TEST(SolveSectored, MainMemoryBottleneckExitsPartitioning)
{
    SectoredInput in = baseInput();
    in.aMs = 25;
    in.aMm = 10; // K*10 = 28 > 25: memory is the bottleneck
    in.readMisses = 20;
    const Targets t = solveSectored(in, paperK());
    EXPECT_FALSE(t.active);
    EXPECT_EQ(t.nFwb, 0);
    EXPECT_EQ(t.nSfrm, 0); // A_MM >= B_MM·W: no spare for SFRM either
}

TEST(SolveSectored, FillBypassAloneWhenSufficient)
{
    SectoredInput in = baseInput();
    in.aMs = 30;
    in.aMm = 2;
    in.readMisses = 20;
    in.writes = 5;
    in.cleanHits = 5;
    // N_FWB = 30 - K*2 = 30 - 6 = 24, capped by the needed
    // partitioning 30 - 19 = 11, which fits within R_m: sufficient.
    const Targets t = solveSectored(in, paperK());
    EXPECT_TRUE(t.active);
    EXPECT_EQ(t.nFwb, 11);
    EXPECT_EQ(t.nWb, 0);
    EXPECT_EQ(t.nIfrm, 0);
    // SFRM: 0.8 * (7 - 2) = 4.
    EXPECT_EQ(t.nSfrm, 4);
}

TEST(SolveSectored, CascadesToWriteBypass)
{
    SectoredInput in = baseInput();
    in.aMs = 40;
    in.aMm = 2;
    in.readMisses = 5; // fill bypass insufficient
    in.writes = 20;
    in.cleanHits = 10;
    const Targets t = solveSectored(in, paperK());
    EXPECT_TRUE(t.active);
    EXPECT_EQ(t.nFwb, 5); // capped at R_m
    // (1+K) N_WB = 40 - 6 - 5 = 29 -> N_WB = floor(29*4/15) = 7.
    EXPECT_EQ(t.nWb, 7);
    EXPECT_EQ(t.nIfrm, 0);
    // Spare MM = 7 - (2 + 7) < 0.
    EXPECT_EQ(t.nSfrm, 0);
}

TEST(SolveSectored, CascadesToIfrm)
{
    SectoredInput in = baseInput();
    in.aMs = 60;
    in.aMm = 2;
    in.readMisses = 5;
    in.writes = 4; // write bypass insufficient too
    in.cleanHits = 30;
    const Targets t = solveSectored(in, paperK());
    EXPECT_TRUE(t.active);
    EXPECT_EQ(t.nFwb, 5);
    EXPECT_EQ(t.nWb, 4); // capped at W_m
    // (1+K) N_IFRM = 60 - K*(2+4) - 5 - 4 = 60 - 17 - 9 = 34
    //  -> N_IFRM = floor(34*4/15) = 9.
    EXPECT_EQ(t.nIfrm, 9);
    EXPECT_EQ(t.nSfrm, 0); // 7 - (2+4+9) < 0
}

TEST(SolveSectored, IfrmCappedByCleanHits)
{
    SectoredInput in = baseInput();
    in.aMs = 60;
    in.aMm = 2;
    in.readMisses = 5;
    in.writes = 4;
    in.cleanHits = 3;
    const Targets t = solveSectored(in, paperK());
    EXPECT_EQ(t.nIfrm, 3);
}

TEST(SolveSectored, SfrmUsesEightyPercentOfSpare)
{
    SectoredInput in = baseInput();
    in.bMmW = 20;
    in.aMs = 25;
    in.aMm = 0;
    in.readMisses = 10;
    const Targets t = solveSectored(in, paperK());
    EXPECT_TRUE(t.active);
    // Spare = 20 - 0 = 20 -> SFRM = 16.
    EXPECT_EQ(t.nSfrm, 16);
}

TEST(SolveSectored, TargetCapBoundsEveryTechnique)
{
    SectoredInput in = baseInput();
    in.bMsW = 10;
    in.bMmW = 1000;
    in.aMs = 2000;
    in.aMm = 1;
    in.readMisses = 500;
    in.writes = 500;
    in.cleanHits = 500;
    const Targets t = solveSectored(in, paperK(), 0.8, 63);
    EXPECT_LE(t.nFwb, 63);
    EXPECT_LE(t.nWb, 63);
    EXPECT_LE(t.nIfrm, 63);
    EXPECT_LE(t.nSfrm, 63);
}

TEST(SolveAlloy, IfrmOnly)
{
    AlloyInput in;
    in.bMsW = 12; // already derated by the 2/3 TAD factor
    in.bMmW = 7;
    in.aMs = 30;
    in.aMm = 2;
    in.cleanHits = 10;
    const Targets t = solveAlloy(in, paperK());
    EXPECT_TRUE(t.active);
    // (1+K) N_IFRM = 30 - 6 = 24 -> floor(24*4/15) = 6.
    EXPECT_EQ(t.nIfrm, 6);
    EXPECT_EQ(t.nFwb, 0); // Alloy has no explicit FWB/WB
    EXPECT_EQ(t.nWb, 0);
    EXPECT_EQ(t.nSfrm, 0);
    // Spare = 7 - (2+6) < 0: no write-through budget.
    EXPECT_EQ(t.nWriteThrough, 0);
}

TEST(SolveAlloy, WriteThroughOnlyWhilePartitioning)
{
    AlloyInput in;
    in.bMsW = 12;
    in.bMmW = 7;
    in.aMs = 10; // within bandwidth: no IFRM, so no write-through
    in.aMm = 2;
    const Targets quiet = solveAlloy(in, paperK());
    EXPECT_FALSE(quiet.active);
    EXPECT_EQ(quiet.nWriteThrough, 0);

    in.aMs = 16; // shortage: IFRM plus residual-funded write-through
    in.aMm = 1;
    in.cleanHits = 2;
    const Targets busy = solveAlloy(in, paperK());
    EXPECT_TRUE(busy.active);
    // IFRM = min(floor((16 - 3)*4/15) = 3, cleanHits 2) = 2;
    // WT = 0.8 * (7 - 1 - 2) = 3.
    EXPECT_EQ(busy.nIfrm, 2);
    EXPECT_EQ(busy.nWriteThrough, 3);
}

TEST(SolveAlloy, IfrmCappedByKnownCleanHits)
{
    AlloyInput in;
    in.bMsW = 12;
    in.bMmW = 7;
    in.aMs = 30;
    in.aMm = 2;
    in.cleanHits = 2;
    const Targets t = solveAlloy(in, paperK());
    EXPECT_EQ(t.nIfrm, 2);
}

FixedRatio
edramK()
{
    return FixedRatio::quantize(51.2 / 38.4, 2); // 4/3 -> 5/4
}

EdramInput
edramBase()
{
    EdramInput in;
    in.bMsReadW = 9;
    in.bMsWriteW = 9;
    in.bMmW = 7;
    return in;
}

TEST(SolveEdram, NoShortageNoPartitioning)
{
    EdramInput in = edramBase();
    in.aMsRead = 9;
    in.aMsWrite = 9;
    const Targets t = solveEdram(in, edramK());
    EXPECT_FALSE(t.active);
}

TEST(SolveEdram, CaseIReadShortageUsesIfrm)
{
    EdramInput in = edramBase();
    in.aMsRead = 15;
    in.aMsWrite = 5;
    in.aMm = 4;
    in.cleanHits = 8;
    const Targets t = solveEdram(in, edramK());
    EXPECT_TRUE(t.active);
    // (1+K) N_IFRM = 15 - K*4 = 15 - 5 = 10 -> floor(10*4/9) = 4.
    EXPECT_EQ(t.nIfrm, 4);
    EXPECT_EQ(t.nFwb, 0);
    EXPECT_EQ(t.nWb, 0);
}

TEST(SolveEdram, CaseIIWriteShortageUsesFwbThenWb)
{
    EdramInput in = edramBase();
    in.aMsRead = 5;
    in.aMsWrite = 20;
    in.aMm = 4;
    in.readMisses = 6;
    in.writes = 10;
    const Targets t = solveEdram(in, edramK());
    EXPECT_TRUE(t.active);
    // N_FWB = 20 - 5 = 15, capped by needed 11, then by R_m = 6.
    EXPECT_EQ(t.nFwb, 6);
    // (1+K) N_WB = 20 - 6 - 5 = 9 -> floor(9*4/9) = 4.
    EXPECT_EQ(t.nWb, 4);
    EXPECT_EQ(t.nIfrm, 0);
}

TEST(SolveEdram, CaseIIIBothShortSolvesSimultaneously)
{
    EdramInput in = edramBase();
    in.aMsRead = 15;
    in.aMsWrite = 20;
    in.aMm = 2;
    in.readMisses = 6;
    in.writes = 10;
    in.cleanHits = 12;
    const Targets t = solveEdram(in, edramK());
    EXPECT_TRUE(t.active);
    EXPECT_EQ(t.nFwb, 6);
    // (2K+1) N_WB = (K+1)(20-6) - K*15 - K*2 = 32 - 19 - 3 = 10
    //  -> floor(10*4/14) = 2.
    EXPECT_EQ(t.nWb, 2);
    // (2K+1) N_IFRM = (K+1)*15 - K*14 - K*2 = 34 - 18 - 3 = 13
    //  -> floor(13*4/14) = 3.
    EXPECT_EQ(t.nIfrm, 3);
}

TEST(SolveEdram, NoSfrmEver)
{
    // eDRAM metadata is on die: SFRM never applies (Section IV-C).
    EdramInput in = edramBase();
    in.aMsRead = 100;
    in.aMsWrite = 100;
    in.readMisses = 50;
    in.writes = 50;
    in.cleanHits = 50;
    EXPECT_EQ(solveEdram(in, edramK()).nSfrm, 0);
}

/**
 * Property sweep: for random inputs every target is non-negative,
 * respects its cap, and partitioning only activates under demand
 * pressure.
 */
class SolverProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverProperties, SectoredInvariants)
{
    std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
    auto rnd = [&x](std::int64_t lo, std::int64_t hi) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return lo + static_cast<std::int64_t>((x >> 16) %
                                              static_cast<std::uint64_t>(
                                                  hi - lo + 1));
    };
    const FixedRatio k = paperK();
    for (int i = 0; i < 500; ++i) {
        SectoredInput in;
        in.aMs = rnd(0, 100);
        in.aMm = rnd(0, 40);
        in.readMisses = rnd(0, 60);
        in.writes = rnd(0, 60);
        in.cleanHits = rnd(0, 60);
        in.bMsW = rnd(1, 40);
        in.bMmW = rnd(1, 20);
        const Targets t = solveSectored(in, k);
        EXPECT_GE(t.nFwb, 0);
        EXPECT_GE(t.nWb, 0);
        EXPECT_GE(t.nIfrm, 0);
        EXPECT_GE(t.nSfrm, 0);
        EXPECT_LE(t.nFwb, std::min<std::int64_t>(in.readMisses, 63));
        EXPECT_LE(t.nWb, std::min<std::int64_t>(in.writes, 63));
        EXPECT_LE(t.nIfrm, std::min<std::int64_t>(in.cleanHits, 63));
        EXPECT_LE(t.nSfrm, 63);
        if (in.aMs <= in.bMsW) {
            EXPECT_FALSE(t.active);
            EXPECT_EQ(t.nFwb + t.nWb + t.nIfrm, 0);
            // SFRM alone may still use spare memory bandwidth.
            if (in.aMm >= in.bMmW) {
                EXPECT_EQ(t.nSfrm, 0);
            }
        }
    }
}

TEST_P(SolverProperties, EdramInvariants)
{
    std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 40503u + 7;
    auto rnd = [&x](std::int64_t lo, std::int64_t hi) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return lo + static_cast<std::int64_t>((x >> 16) %
                                              static_cast<std::uint64_t>(
                                                  hi - lo + 1));
    };
    const FixedRatio k = edramK();
    for (int i = 0; i < 500; ++i) {
        EdramInput in;
        in.aMsRead = rnd(0, 80);
        in.aMsWrite = rnd(0, 80);
        in.aMm = rnd(0, 40);
        in.readMisses = rnd(0, 50);
        in.writes = rnd(0, 50);
        in.cleanHits = rnd(0, 50);
        in.bMsReadW = rnd(1, 30);
        in.bMsWriteW = rnd(1, 30);
        in.bMmW = rnd(1, 20);
        const Targets t = solveEdram(in, k);
        EXPECT_GE(t.nFwb, 0);
        EXPECT_GE(t.nWb, 0);
        EXPECT_GE(t.nIfrm, 0);
        EXPECT_EQ(t.nSfrm, 0);
        EXPECT_LE(t.nFwb, std::min<std::int64_t>(in.readMisses, 63));
        EXPECT_LE(t.nWb, std::min<std::int64_t>(in.writes, 63));
        EXPECT_LE(t.nIfrm, std::min<std::int64_t>(in.cleanHits, 63));
        if (in.aMsRead <= in.bMsReadW && in.aMsWrite <= in.bMsWriteW) {
            EXPECT_FALSE(t.active);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperties,
                         ::testing::Range(1, 6));

} // namespace
} // namespace dapsim::dap
