/**
 * @file
 * DAP-n cross-validation: the three-source partition derived from the
 * hardware arithmetic (FixedRatio K over the combined lower level plus
 * the Eq 4 remote split) against a brute-force exhaustive search of
 * the (f_ms, f_mm, f_remote) simplex on the timing simulator.
 *
 * Mirrors test_cross_validation.cc's two-source methodology: drive the
 * raw bandwidth sources with a fixed split at tick 0 and measure the
 * delivered GB/s. DAP-n's point must land within 5% of the empirical
 * optimum over a 0.05-step simplex grid.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "dap/dap_controller.hh"
#include "dap/dap_solver.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"
#include "xval_util.hh"

namespace dapsim
{
namespace
{

struct TieredSetup
{
    std::string label;
    DramConfig ms;
    DramConfig mm;
    RemoteConfig remote;
};

std::vector<TieredSetup>
setups()
{
    // Three small 3-tier configs. maxOutstanding is sized so the
    // credit window never throttles the serial link (occupancy =
    // (transfer + latency) / transfer must stay below it), keeping
    // the raw sources faithful to the analytic model's peak rates.
    TieredSetup a;
    a.label = "hbm102+ddr2400+ddr/4@120ns";
    a.ms = presets::hbm_102();
    a.mm = presets::ddr4_2400();
    a.remote.enabled = true;
    a.remote.bwScaleFactor = 4.0;
    a.remote.addLatencyNs = 120.0;
    a.remote.maxOutstanding = 32;

    TieredSetup b;
    b.label = "hbm102+ddr3200+ddr/2@60ns";
    b.ms = presets::hbm_102();
    b.mm = presets::ddr4_3200();
    b.remote.enabled = true;
    b.remote.bwScaleFactor = 2.0;
    b.remote.addLatencyNs = 60.0;
    b.remote.maxOutstanding = 64;

    // Duplicate lower-tier bandwidths: B_remote == B_MM.
    TieredSetup c;
    c.label = "hbm205+ddr3200+ddr/1@100ns";
    c.ms = presets::hbm_205();
    c.mm = presets::ddr4_3200();
    c.remote.enabled = true;
    c.remote.bwScaleFactor = 1.0;
    c.remote.addLatencyNs = 100.0;
    c.remote.maxOutstanding = 128;

    return {a, b, c};
}

/** Delivered GB/s for one split on freshly built sources. */
double
measure(const TieredSetup &ts, const std::vector<double> &fractions,
        int n, std::uint64_t seed)
{
    EventQueue eq;
    DramSystem ms(eq, ts.ms);
    DramSystem mm(eq, ts.mm);
    RemoteMemory remote(eq, ts.remote, ts.mm.peakGBps());
    return xval::measureSplitGBps(eq,
                                  {xval::dramIssuer(ms),
                                   xval::dramIssuer(mm),
                                   xval::remoteIssuer(remote)},
                                  fractions, n, seed);
}

/** The (f_ms, f_mm, f_remote) split DAP-n's hardware arithmetic
 *  produces for a fully loaded window. */
std::vector<double>
dapnFractions(const TieredSetup &ts)
{
    DapConfig cfg;
    cfg.windowCycles = 65536;
    cfg.efficiency = 1.0;
    cfg.msPeakAccPerCycle = ts.ms.peakAccessesPerCpuCycle();
    cfg.mmPeakAccPerCycle = ts.mm.peakAccessesPerCpuCycle();
    EventQueue probe_eq;
    RemoteMemory probe(probe_eq, ts.remote, ts.mm.peakGBps());
    cfg.remotePeakAccPerCycle = probe.peakAccessesPerCpuCycle();

    const FixedRatio k = cfg.ratioK();
    const std::int64_t demand = cfg.msAccessesPerWindow() +
                                cfg.mmAccessesPerWindow() +
                                cfg.remoteAccessesPerWindow();
    const std::int64_t n_lower = k.divByKPlusOne(demand);
    const std::int64_t n_remote = dap::solveRemoteSplit(
        n_lower, cfg.mmAccessesPerWindow(),
        cfg.remoteAccessesPerWindow());
    const double a = static_cast<double>(demand);
    return {static_cast<double>(demand - n_lower) / a,
            static_cast<double>(n_lower - n_remote) / a,
            static_cast<double>(n_remote) / a};
}

TEST(TieredCrossValidation, DapnWithinFivePercentOfExhaustiveSearch)
{
    constexpr int kAccesses = 2400;
    constexpr std::uint64_t kSeed = 11;
    for (const TieredSetup &ts : setups()) {
        // Brute-force exhaustive search of the simplex, 0.05 steps.
        double best = 0.0;
        std::vector<double> best_f;
        for (int i = 0; i <= 20; ++i) {
            for (int j = 0; j <= 20 - i; ++j) {
                const std::vector<double> f = {i / 20.0, j / 20.0,
                                               (20 - i - j) / 20.0};
                const double got = measure(ts, f, kAccesses, kSeed);
                if (got > best) {
                    best = got;
                    best_f = f;
                }
            }
        }
        ASSERT_GT(best, 0.0) << ts.label;

        const std::vector<double> dap_f = dapnFractions(ts);
        EXPECT_NEAR(dap_f[0] + dap_f[1] + dap_f[2], 1.0, 1e-12)
            << ts.label;
        const double dap_bw = measure(ts, dap_f, kAccesses, kSeed);
        EXPECT_GE(dap_bw, 0.95 * best)
            << ts.label << ": dap (" << dap_f[0] << ", " << dap_f[1]
            << ", " << dap_f[2] << ") -> " << dap_bw
            << " GB/s vs grid best (" << best_f[0] << ", " << best_f[1]
            << ", " << best_f[2] << ") -> " << best << " GB/s";
    }
}

TEST(TieredCrossValidation, AllRemoteSplitDeliversLess)
{
    // Routing everything to the remote pool is far worse than DAP-n's
    // partition — the three-source version of the paper's motivating
    // inequality.
    const TieredSetup ts = setups()[0];
    const double dap_bw =
        measure(ts, dapnFractions(ts), 2400, 11);
    const double remote_only = measure(ts, {0.0, 0.0, 1.0}, 2400, 11);
    EXPECT_GT(dap_bw, 3.0 * remote_only);
}

} // namespace
} // namespace dapsim
