/**
 * @file
 * Tests for the workload engine (src/workload/): the Zipf sampler's
 * statistical fidelity, the Feistel block permutation, spec parsing
 * and validation, seed determinism of every kernel, checkpoint
 * round-trips cut mid-phase-drift, and the MixComposer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "ckpt/serializer.hh"
#include "trace/workloads.hh"
#include "workload/compose.hh"
#include "workload/spec.hh"
#include "workload/zipf.hh"

namespace dapsim
{
namespace
{

using workload::BlockPermutation;
using workload::ZipfSampler;

// ---- ZipfSampler ---------------------------------------------------

TEST(ZipfSampler, ProbabilitiesSumToOne)
{
    const ZipfSampler z(512, 0.99);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < z.ranks(); ++r)
        sum += z.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Monotone non-increasing popularity.
    for (std::uint64_t r = 1; r < z.ranks(); ++r)
        EXPECT_LE(z.probability(r), z.probability(r - 1) + 1e-15);
}

/** Chi-square goodness-of-fit of the sampler against the analytic
 *  distribution. With 511 degrees of freedom the statistic has mean
 *  511 and sd ~32; 700 is ~6 sigma, so a correct sampler passes with
 *  overwhelming margin while an off-by-one or biased search fails. */
TEST(ZipfSampler, ChiSquareMatchesAnalytic)
{
    const std::uint64_t n = 512;
    const ZipfSampler z(n, 1.0);
    Rng rng(42);
    const std::uint64_t samples = 300'000;
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < samples; ++i)
        ++counts[z.sample(rng)];

    double chi2 = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        const double expect =
            z.probability(r) * static_cast<double>(samples);
        const double diff = static_cast<double>(counts[r]) - expect;
        chi2 += diff * diff / expect;
    }
    EXPECT_LT(chi2, 700.0) << "sampler deviates from Zipf(1.0)";
    EXPECT_GT(chi2, 300.0) << "suspiciously perfect fit";
}

TEST(ZipfSampler, HigherSkewConcentratesMass)
{
    const ZipfSampler mild(1024, 0.7), hot(1024, 1.3);
    EXPECT_GT(hot.probability(0), mild.probability(0));
    // Top-8 mass under skew 1.3 dominates.
    double top = 0.0;
    for (std::uint64_t r = 0; r < 8; ++r)
        top += hot.probability(r);
    EXPECT_GT(top, 0.5);
}

TEST(ZipfSampler, CapsTableAboveMaxRanks)
{
    const ZipfSampler z(ZipfSampler::kMaxRanks * 4, 0.99);
    EXPECT_EQ(z.ranks(), ZipfSampler::kMaxRanks);
}

// ---- BlockPermutation ----------------------------------------------

TEST(BlockPermutation, IsBijectionOnAwkwardSizes)
{
    for (const std::uint64_t n : {1ULL, 2ULL, 5ULL, 1000ULL, 4096ULL}) {
        const BlockPermutation p(n, 0xfeedULL + n);
        std::set<std::uint64_t> seen;
        for (std::uint64_t x = 0; x < n; ++x) {
            const std::uint64_t y = p.apply(x);
            EXPECT_LT(y, n);
            seen.insert(y);
        }
        EXPECT_EQ(seen.size(), n) << "not a bijection for n=" << n;
    }
}

TEST(BlockPermutation, SeedChangesThePermutation)
{
    const BlockPermutation a(1000, 1), b(1000, 2);
    std::uint64_t same = 0;
    for (std::uint64_t x = 0; x < 1000; ++x)
        same += a.apply(x) == b.apply(x);
    EXPECT_LT(same, 50u); // ~1 expected for random permutations
}

// ---- Spec parsing and validation -----------------------------------

TEST(WorkloadSpec, LooksLikeSpec)
{
    EXPECT_TRUE(workload::looksLikeSpec("zipf"));
    EXPECT_TRUE(workload::looksLikeSpec("zipf:skew=1.2"));
    EXPECT_TRUE(workload::looksLikeSpec("mix:t0=zipf"));
    EXPECT_FALSE(workload::looksLikeSpec("mcf"));
    EXPECT_FALSE(workload::looksLikeSpec("nope"));
}

TEST(WorkloadSpecDeath, RejectsBadSpecs)
{
    EXPECT_DEATH(workload::validateSpec("zipf:skew=-1"), "must be > 0");
    EXPECT_DEATH(workload::validateSpec("zipf:write=1.5"),
                 "within \\[0, 1\\]");
    EXPECT_DEATH(workload::validateSpec("zipf:mpki=0"),
                 "within \\(0, 1000\\]");
    EXPECT_DEATH(workload::validateSpec("zipf:bogus=1"),
                 "unknown parameter");
    EXPECT_DEATH(workload::validateSpec("zipf:drift=sideways"),
                 "none, rotate, jump, migrate");
    EXPECT_DEATH(workload::validateSpec("zipf:fp=1"), "at least 64");
    EXPECT_DEATH(workload::validateSpec("wat:x=1"),
                 "unknown workload-spec kind");
    EXPECT_DEATH(workload::validateSpec("zipf:skew"), "key=value");
}

TEST(WorkloadSpecDeath, SyntheticParamsRejectOutOfRangeDials)
{
    SyntheticParams p;
    p.hotProbability = 1.5;
    EXPECT_DEATH(SyntheticGenerator{p}, "hotProbability");
    p = SyntheticParams{};
    p.writeFraction = -0.1;
    EXPECT_DEATH(SyntheticGenerator{p}, "writeFraction");
    p = SyntheticParams{};
    p.mpki = 0.0;
    EXPECT_DEATH(SyntheticGenerator{p}, "mpki");
    p = SyntheticParams{};
    p.runLength = 0.5;
    EXPECT_DEATH(SyntheticGenerator{p}, "runLength");
}

/** Satellite: the unknown-workload error must enumerate the choices. */
TEST(WorkloadSpecDeath, UnknownWorkloadErrorListsChoices)
{
    EXPECT_DEATH(workloadByName("nope"), "mcf");
    EXPECT_DEATH(workloadByName("nope"), "zipf");
    EXPECT_DEATH(workloadByName("nope"), "trace_gen --list");
}

// ---- Generator determinism and checkpointing -----------------------

const char *const kAllKernels[] = {
    "zipf:skew=0.99,fp=1M,drift=rotate,period=5000",
    "zipf:skew=1.2,fp=1M,drift=migrate,period=3000",
    "hotspot:hot=0.1,p=0.85,fp=1M,drift=jump,period=4000",
    "flood:fp=1M",
    "chase:fp=1M",
    "wburst:fp=1M,burst=32,duty=0.6",
    "sparse:fp=1M,stride=8",
};

TEST(WorkloadEngine, StreamsAreSeedDeterministic)
{
    for (const char *spec : kAllKernels) {
        auto a = workload::makeSpecGenerator(spec, 2, 5);
        auto b = workload::makeSpecGenerator(spec, 2, 5);
        TraceRequest ra, rb;
        for (int i = 0; i < 20'000; ++i) {
            ASSERT_TRUE(a->next(ra));
            ASSERT_TRUE(b->next(rb));
            ASSERT_EQ(ra.addr, rb.addr) << spec << " @" << i;
            ASSERT_EQ(ra.isWrite, rb.isWrite) << spec << " @" << i;
            ASSERT_EQ(ra.instrGap, rb.instrGap) << spec << " @" << i;
        }
    }
}

TEST(WorkloadEngine, DifferentCoresGetPrivateSlices)
{
    auto g0 = workload::makeSpecGenerator("zipf:fp=1M", 0);
    auto g3 = workload::makeSpecGenerator("zipf:fp=1M", 3);
    TraceRequest r;
    for (int i = 0; i < 1'000; ++i) {
        ASSERT_TRUE(g0->next(r));
        EXPECT_LT(r.addr, 1ULL << 40);
        ASSERT_TRUE(g3->next(r));
        EXPECT_GE(r.addr, 3ULL << 40);
        EXPECT_LT(r.addr, 4ULL << 40);
    }
}

/** Save mid-drift, restore into a fresh instance, and require the
 *  continuation to be byte-identical to the uninterrupted stream. */
TEST(WorkloadEngine, CheckpointRoundTripMidDrift)
{
    for (const char *spec : kAllKernels) {
        auto ref = workload::makeSpecGenerator(spec, 1, 9);
        TraceRequest r;
        // Advance past at least one drift phase boundary.
        for (int i = 0; i < 7'000; ++i)
            ASSERT_TRUE(ref->next(r));

        ckpt::Serializer s;
        ref->save(s);

        auto resumed = workload::makeSpecGenerator(spec, 1, 9);
        ckpt::Deserializer d(s.buffer());
        resumed->restore(d);
        ASSERT_TRUE(d.atEnd()) << spec;

        TraceRequest a, b;
        for (int i = 0; i < 10'000; ++i) {
            ASSERT_TRUE(ref->next(a));
            ASSERT_TRUE(resumed->next(b));
            ASSERT_EQ(a.addr, b.addr) << spec << " @" << i;
            ASSERT_EQ(a.isWrite, b.isWrite) << spec << " @" << i;
            ASSERT_EQ(a.instrGap, b.instrGap) << spec << " @" << i;
        }
    }
}

TEST(WorkloadEngine, DriftActuallyMovesTheHotSet)
{
    // With jump drift, the busiest block region must change between
    // phases; without drift it must not.
    auto hist = [](const char *spec, int from, int to) {
        auto g = workload::makeSpecGenerator(spec, 0, 0);
        TraceRequest r;
        std::vector<std::uint64_t> h(16, 0);
        for (int i = 0; i < to; ++i) {
            EXPECT_TRUE(g->next(r));
            if (i >= from)
                ++h[(r.addr / kBlockBytes) * 16 / 16384];
        }
        return static_cast<std::size_t>(
            std::max_element(h.begin(), h.end()) - h.begin());
    };
    // seed=2: the phase-0 and phase-1 jump offsets land in different
    // 1/16 buckets (with the default seed they happen to collide).
    const char *drifting =
        "hotspot:hot=0.03,p=0.95,fp=1M,drift=jump,period=8000,run=1,"
        "seed=2";
    const char *stationary = "hotspot:hot=0.03,p=0.95,fp=1M,run=1";
    EXPECT_NE(hist(drifting, 0, 4000), hist(drifting, 12'000, 16'000));
    EXPECT_EQ(hist(stationary, 0, 4000),
              hist(stationary, 12'000, 16'000));
}

// ---- MixComposer ---------------------------------------------------

TEST(MixComposer, ClassicNameComposesRateMix)
{
    const auto cm = workload::composeWorkload("mcf", 4);
    ASSERT_EQ(cm.mix.apps.size(), 4u);
    EXPECT_EQ(cm.mix.apps[0].name, "mcf");
    EXPECT_TRUE(cm.mix.apps[0].spec.empty());
    ASSERT_EQ(cm.coreTenants.size(), 4u);
    EXPECT_EQ(cm.coreTenants[0], "mcf");
}

TEST(MixComposer, PlainSpecCoversAllCores)
{
    const auto cm = workload::composeWorkload("zipf:skew=1.1,fp=1M", 8);
    ASSERT_EQ(cm.mix.apps.size(), 8u);
    for (const auto &app : cm.mix.apps)
        EXPECT_EQ(app.spec, "zipf:skew=1.1,fp=1M");
    EXPECT_EQ(cm.mix.name, "zipf:skew=1.1,fp=1M");
}

TEST(MixComposer, TenantsSplitCoresAndCarrySpecs)
{
    const auto cm = workload::composeWorkload(
        "mix:t0=zipf,t0.skew=0.9,t0.cores=3,t0.name=web,t1=flood", 8);
    ASSERT_EQ(cm.mix.apps.size(), 8u);
    // t0: three cores of the zipf spec.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(cm.mix.apps[i].spec, "zipf:skew=0.9");
        EXPECT_EQ(cm.coreTenants[i], "web");
    }
    // t1: the remaining five cores.
    for (int i = 3; i < 8; ++i) {
        EXPECT_EQ(cm.mix.apps[i].spec, "flood");
        EXPECT_EQ(cm.coreTenants[i], "t1");
    }
}

TEST(MixComposer, ClassicTenantAcceptsOverrides)
{
    const auto cm = workload::composeWorkload(
        "mix:t0=mcf,t0.mpki=50,t0.write=0.1,t1=omnetpp", 4);
    ASSERT_EQ(cm.mix.apps.size(), 4u);
    EXPECT_TRUE(cm.mix.apps[0].spec.empty());
    EXPECT_DOUBLE_EQ(cm.mix.apps[0].params.mpki, 50.0);
    EXPECT_DOUBLE_EQ(cm.mix.apps[0].params.writeFraction, 0.1);
    EXPECT_EQ(cm.mix.apps[2].name, "omnetpp");
}

TEST(MixComposerDeath, RejectsBadCompositions)
{
    EXPECT_DEATH(workload::composeWorkload(
                     "mix:t0=zipf,t0.cores=9,t1=flood", 8),
                 "cores");
    EXPECT_DEATH(workload::composeWorkload(
                     "mix:t0=zipf,t0.cores=3,t1=flood,t1.cores=3", 8),
                 "sum to 6");
    EXPECT_DEATH(workload::composeWorkload("mix:t0.skew=1", 8),
                 "before tenant");
    EXPECT_DEATH(workload::composeWorkload("mix:", 8), "no tenants");
    EXPECT_DEATH(workload::composeWorkload("mix:t0=nope", 8),
                 "unknown workload");
    EXPECT_DEATH(workload::composeWorkload(
                     "mix:t0=mcf,t0.skew=2,t1=flood", 8),
                 "mpki and write");
}

/** The trace-layer makeGenerator dispatches spec-carrying profiles to
 *  the engine; the generators must agree exactly. */
TEST(MixComposer, MakeGeneratorDispatchesSpecProfiles)
{
    const auto cm = workload::composeWorkload("chase:fp=1M", 2);
    auto viaProfile = makeGenerator(cm.mix.apps[1], 1, 3);
    auto direct = workload::makeSpecGenerator("chase:fp=1M", 1, 3);
    TraceRequest a, b;
    for (int i = 0; i < 5'000; ++i) {
        ASSERT_TRUE(viaProfile->next(a));
        ASSERT_TRUE(direct->next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.instrGap, b.instrGap);
    }
}

} // namespace
} // namespace dapsim
