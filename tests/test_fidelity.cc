/**
 * @file
 * The multi-fidelity validation suite.
 *
 * Four layers of guarantees:
 *
 *  1. Differential bit-identity — `--fidelity exact` (and a config
 *     that never mentions fidelity at all) reproduces the historical
 *     System::run() path byte-for-byte on every pinned golden
 *     scenario, including the tiered-remote and zipf-drift ones.
 *  2. Statistical error bounds — sampled-mode IPC and per-source
 *     bandwidth fall inside the run's own reported confidence
 *     interval against a golden exact run, on scenarios covering a
 *     plain mix, a drifting workload and a 3-tier system; two
 *     sampled runs with the same seed are identical; analytic mode
 *     lands within its documented (much looser) relative bound.
 *  3. Analytic-engine properties — predicted IPC monotone
 *     non-increasing in offered load, delivered bandwidth never
 *     above efficiency x sum(B_i), exact degeneration to the paper's
 *     2-source Eq 4 optimum with the remote source off, and
 *     byte-identical save/restore mid-fast-forward.
 *  4. Identity hygiene — job content hashes ignore fidelity knobs in
 *     exact mode (flag-absent compatibility) but separate reduced-
 *     fidelity runs, and a `dapsim.expq.v1` store refuses to resume
 *     a manifest whose fidelity drifted from what it recorded.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/fsio.hh"
#include "common/rng.hh"
#include "dap/analytic_engine.hh"
#include "dap/bandwidth_model.hh"
#include "exp/job.hh"
#include "exp/result_sink.hh"
#include "expd/grid.hh"
#include "expd/store.hh"
#include "sim/fidelity.hh"
#include "sim/fidelity_runner.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "workload/compose.hh"

namespace dapsim
{
namespace
{

// ---------------------------------------------------------------------
// 1. Differential bit-identity of exact mode
// ---------------------------------------------------------------------

/** The pinned golden recipe (see tests/test_golden_runs.cc). */
SystemConfig
goldenConfig(MsArch arch, bool remote = false)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.arch = arch;
    cfg.sectored.capacityBytes = 8 * kMiB;
    cfg.alloy.capacityBytes = 8 * kMiB;
    cfg.edram.capacityBytes = 4 * kMiB;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 3'000;
    cfg.warmupAccessesPerCore = 5'000;
    if (remote) {
        cfg.remote.enabled = true;
        cfg.remote.bwScaleFactor = 4.0;
        cfg.remote.addLatencyNs = 120.0;
        cfg.remote.maxOutstanding = 32;
    }
    return cfg;
}

std::vector<AccessGeneratorPtr>
goldenGenerators(std::uint32_t cores)
{
    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 512 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cores; ++i)
        gens.push_back(makeGenerator(w, i));
    return gens;
}

std::string
statsOf(System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

/** Run the scenario through the historical path (sys.run(), no
 *  fidelity anywhere) and through runFidelityOn() with an explicit
 *  exact config; both stats dumps must be byte-identical. */
void
expectExactBitIdentity(const SystemConfig &cfg,
                       std::vector<AccessGeneratorPtr> head_gens,
                       std::vector<AccessGeneratorPtr> exact_gens)
{
    System head(cfg, std::move(head_gens));
    head.warmup(cfg.warmupAccessesPerCore);
    head.run();
    const std::string want = statsOf(head);

    SystemConfig exact_cfg = cfg;
    exact_cfg.fidelity.mode = FidelityMode::Exact;
    // Knob values must be inert in exact mode.
    exact_cfg.fidelity.detailInstr = 1;
    exact_cfg.fidelity.periodInstr = 77;
    System exact(exact_cfg, std::move(exact_gens));
    exact.warmup(cfg.warmupAccessesPerCore);
    const RunResult r =
        runFidelityOn(exact, "golden", cfg.core.instructions);
    EXPECT_FALSE(r.fidelity.valid);
    EXPECT_EQ(want, statsOf(exact));
}

TEST(FidelityExact, BitIdenticalOnGoldenScenarios)
{
    for (const MsArch arch :
         {MsArch::Sectored, MsArch::Alloy, MsArch::Edram}) {
        const SystemConfig cfg = goldenConfig(arch);
        expectExactBitIdentity(cfg, goldenGenerators(cfg.numCores),
                               goldenGenerators(cfg.numCores));
    }
}

TEST(FidelityExact, BitIdenticalOnTieredRemote)
{
    const SystemConfig cfg =
        goldenConfig(MsArch::Sectored, /*remote=*/true);
    expectExactBitIdentity(cfg, goldenGenerators(cfg.numCores),
                           goldenGenerators(cfg.numCores));
}

TEST(FidelityExact, BitIdenticalOnZipfDrift)
{
    SystemConfig cfg = goldenConfig(MsArch::Sectored);
    const workload::ComposedMix cm = workload::composeWorkload(
        "zipf:skew=0.99,fp=512K,drift=rotate,period=20000,mpki=30",
        cfg.numCores);
    cfg.obs.coreTenants = cm.coreTenants;
    auto gens = [&cm, &cfg] {
        std::vector<AccessGeneratorPtr> g;
        for (std::uint32_t i = 0; i < cfg.numCores; ++i)
            g.push_back(makeGenerator(cm.mix.apps[i], i));
        return g;
    };
    expectExactBitIdentity(cfg, gens(), gens());
}

// ---------------------------------------------------------------------
// 2. Statistical error bounds for sampled and analytic modes
// ---------------------------------------------------------------------

/** One error-bound scenario: a config plus the mix it runs. */
struct Scenario
{
    std::string name;
    SystemConfig cfg;
    Mix mix;
};

Scenario
plainScenario()
{
    Scenario s;
    s.name = "plain_hpcg";
    s.cfg = presets::sectoredSystem8();
    s.cfg.sectored.capacityBytes = 8 * kMiB;
    s.cfg.policy = PolicyKind::Dap;
    s.cfg.warmupAccessesPerCore = 5'000;
    WorkloadProfile w = workloadByName("hpcg");
    w.params.footprintBytes = 512 * kKiB;
    s.mix = rateMix(w, s.cfg.numCores);
    return s;
}

Scenario
driftScenario()
{
    Scenario s;
    s.name = "zipf_drift";
    s.cfg = presets::sectoredSystem8();
    s.cfg.sectored.capacityBytes = 8 * kMiB;
    s.cfg.policy = PolicyKind::Dap;
    s.cfg.warmupAccessesPerCore = 5'000;
    const workload::ComposedMix cm = workload::composeWorkload(
        "zipf:skew=0.99,fp=512K,drift=rotate,period=20000,mpki=30",
        s.cfg.numCores);
    s.cfg.obs.coreTenants = cm.coreTenants;
    s.mix = cm.mix;
    return s;
}

Scenario
tieredScenario()
{
    Scenario s = plainScenario();
    s.name = "tiered_remote";
    s.cfg.remote.enabled = true;
    s.cfg.remote.bwScaleFactor = 4.0;
    s.cfg.remote.addLatencyNs = 120.0;
    s.cfg.remote.maxOutstanding = 32;
    return s;
}

std::vector<Scenario>
errorBoundScenarios()
{
    return {plainScenario(), driftScenario(), tieredScenario()};
}

constexpr std::uint64_t kErrInstr = 30'000;

/** Golden per-source bandwidth of an exact run (GB/s), measured the
 *  same way the sampled windows measure theirs. */
struct GoldenBandwidth
{
    double ms, mm, remote;
};

GoldenBandwidth
goldenBandwidth(const Scenario &s, RunResult &result_out)
{
    SystemConfig cfg = s.cfg;
    cfg.core.instructions = kErrInstr;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(s.mix.apps[i], i));
    System sys(cfg, std::move(gens));
    sys.warmup(cfg.warmupAccessesPerCore);
    result_out = runFidelityOn(sys, s.mix.name, kErrInstr);
    const System::SourceSnapshot snap = sys.sourceSnapshot();
    const double seconds = static_cast<double>(result_out.cycles) *
                           kCpuPeriodPs / kPsPerSecond;
    auto gbps = [seconds](std::uint64_t reads, std::uint64_t writes) {
        return static_cast<double>(reads + writes) * kBlockBytes /
               seconds / 1e9;
    };
    return GoldenBandwidth{gbps(snap.msReads, snap.msWrites),
                           gbps(snap.mmReads, snap.mmWrites),
                           gbps(snap.remReads, snap.remWrites)};
}

RunResult
runScenarioAt(const Scenario &s, const FidelityConfig &fid)
{
    SystemConfig cfg = s.cfg;
    cfg.fidelity = fid;
    return runMix(cfg, s.mix, kErrInstr);
}

FidelityConfig
sampledConfig()
{
    FidelityConfig fid;
    fid.mode = FidelityMode::Sampled;
    fid.detailInstr = 3'000;
    fid.periodInstr = 6'000;
    return fid;
}

void
expectWithinCi(double mean, double ci_half, double golden,
               const std::string &what)
{
    EXPECT_LE(std::fabs(mean - golden), ci_half + 1e-12)
        << what << ": mean " << mean << " +/- " << ci_half
        << " does not cover exact " << golden;
}

TEST(FidelitySampled, WithinReportedCiOfExact)
{
    for (const Scenario &s : errorBoundScenarios()) {
        SCOPED_TRACE(s.name);
        RunResult exact;
        const GoldenBandwidth golden = goldenBandwidth(s, exact);

        const RunResult sampled = runScenarioAt(s, sampledConfig());
        ASSERT_TRUE(sampled.fidelity.valid);
        const FidelityReport &f = sampled.fidelity;
        EXPECT_EQ(f.mode, "sampled");
        EXPECT_GE(f.windows, 3u);
        EXPECT_GT(f.fastForwardInstr, 0u);
        EXPECT_LT(f.detailFraction, 1.0);

        expectWithinCi(f.ipcMean, f.ipcCiHalf, exact.throughput(),
                       "ipc");
        expectWithinCi(f.msGBpsMean, f.msGBpsCiHalf, golden.ms,
                       "ms_gbps");
        expectWithinCi(f.mmGBpsMean, f.mmGBpsCiHalf, golden.mm,
                       "mm_gbps");
        if (s.cfg.remote.enabled)
            expectWithinCi(f.remoteGBpsMean, f.remoteGBpsCiHalf,
                           golden.remote, "remote_gbps");
        else
            EXPECT_EQ(f.remoteGBpsMean, 0.0);
    }
}

TEST(FidelitySampled, FixedSeedRunsAreReproducible)
{
    const Scenario s = driftScenario();
    const RunResult a = runScenarioAt(s, sampledConfig());
    const RunResult b = runScenarioAt(s, sampledConfig());
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fidelity.windows, b.fidelity.windows);
    EXPECT_EQ(a.fidelity.ipcMean, b.fidelity.ipcMean);
    EXPECT_EQ(a.fidelity.ipcCiHalf, b.fidelity.ipcCiHalf);
    EXPECT_EQ(a.fidelity.msGBpsMean, b.fidelity.msGBpsMean);
    EXPECT_EQ(a.fidelity.mmGBpsMean, b.fidelity.mmGBpsMean);
}

TEST(FidelityAnalytic, WithinDocumentedBound)
{
    for (const Scenario &s : errorBoundScenarios()) {
        SCOPED_TRACE(s.name);
        RunResult exact;
        goldenBandwidth(s, exact);

        FidelityConfig fid;
        fid.mode = FidelityMode::Analytic;
        const RunResult analytic = runScenarioAt(s, fid);
        ASSERT_TRUE(analytic.fidelity.valid);
        EXPECT_EQ(analytic.fidelity.mode, "analytic");
        // Analytic mode's contract is the configured relative bound —
        // far looser than sampled's CI, but still a bound.
        const double err = std::fabs(analytic.throughput() -
                                     exact.throughput()) /
                           exact.throughput();
        EXPECT_LE(err, fid.analyticRelBound)
            << "analytic IPC " << analytic.throughput()
            << " vs exact " << exact.throughput();
    }
}

// ---------------------------------------------------------------------
// 3. Analytic-engine properties
// ---------------------------------------------------------------------

constexpr double kBms = 2.0, kBmm = 0.5, kBrem = 0.125;
constexpr double kEff = 0.75;

fastfwd::WindowSample
scaledWindow(std::uint64_t k)
{
    fastfwd::WindowSample w;
    w.instr = 40'000;
    w.cycles = 10'000;
    w.msReads = k * 1'500;
    w.msWrites = k * 500;
    w.mmReads = k * 700;
    w.mmWrites = k * 300;
    w.remReads = k * 200;
    w.remWrites = k * 100;
    return w;
}

TEST(AnalyticEngine, IpcMonotoneNonIncreasingInOfferedLoad)
{
    double prev = 1e30;
    for (std::uint64_t k = 1; k <= 12; ++k) {
        fastfwd::AnalyticEngine eng(kBms, kBmm, kBrem, kEff, 1.0);
        eng.observe(scaledWindow(k));
        const double ipc = eng.predictIpc();
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, prev + 1e-12) << "load scale " << k;
        prev = ipc;
    }
}

TEST(AnalyticEngine, DeliveredNeverExceedsSumOfPeaks)
{
    const fastfwd::AnalyticEngine eng(kBms, kBmm, kBrem, kEff, 0.5);
    const double cap = kEff * (kBms + kBmm + kBrem);
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const double ms = rng.below(1'000) / 100.0;
        const double mm = rng.below(1'000) / 100.0;
        const double rem = rng.below(1'000) / 100.0;
        EXPECT_LE(eng.deliveredAccPerCycle(ms, mm, rem),
                  cap + 1e-12)
            << ms << "/" << mm << "/" << rem;
    }
    // Zero load returns the sum cap itself, not infinity.
    EXPECT_DOUBLE_EQ(eng.deliveredAccPerCycle(0.0, 0.0, 0.0), cap);
}

TEST(AnalyticEngine, DegeneratesToTwoSourceEq4WithRemoteOff)
{
    // No remote source: the engine's model must reproduce the paper's
    // Eq 4 optimum exactly — at the optimal split the delivered
    // bandwidth is the full (derated) sum of both peaks.
    const fastfwd::AnalyticEngine eng(kBms, kBmm, 0.0, kEff, 0.5);
    const std::vector<double> bands{kEff * kBms, kEff * kBmm};
    const std::vector<double> frac = bwmodel::optimalFractions(bands);
    ASSERT_EQ(frac.size(), 2u);
    // Cross-check the n-source split against the closed-form 2-source
    // memory fraction.
    EXPECT_NEAR(frac[1],
                bwmodel::optimalMemoryFraction(bands[0], bands[1]),
                1e-12);

    const double scale = 3.0; // fractions, not magnitudes, matter
    const double delivered = eng.deliveredAccPerCycle(
        scale * frac[0], scale * frac[1], 0.0);
    EXPECT_NEAR(delivered, kEff * (kBms + kBmm), 1e-12);
    EXPECT_NEAR(delivered,
                bwmodel::deliveredBandwidth(bands, frac), 1e-12);

    // Off-optimal splits strictly lose bandwidth (Eq 4 is the max).
    EXPECT_LT(eng.deliveredAccPerCycle(0.9, 0.1, 0.0), delivered);
    EXPECT_LT(eng.deliveredAccPerCycle(0.1, 0.9, 0.0), delivered);
}

TEST(AnalyticEngine, SaveRestoreMidFastForwardIsByteIdentical)
{
    fastfwd::AnalyticEngine a(kBms, kBmm, kBrem, kEff, 0.5);
    a.observe(scaledWindow(2));
    a.observe(scaledWindow(3));
    // Odd chunk sizes leave non-trivial fractional remainders behind.
    a.fastForward(7'777);

    ckpt::Serializer mid;
    a.save(mid);
    fastfwd::AnalyticEngine b(kBms, kBmm, kBrem, kEff, 0.5);
    ckpt::Deserializer d(mid.buffer());
    b.restore(d);

    for (const std::uint64_t chunk : {1'234u, 999u, 50'001u, 1u}) {
        const fastfwd::FastForwardChunk ca = a.fastForward(chunk);
        const fastfwd::FastForwardChunk cb = b.fastForward(chunk);
        EXPECT_EQ(ca.cycles, cb.cycles);
        EXPECT_EQ(ca.msReads, cb.msReads);
        EXPECT_EQ(ca.msWrites, cb.msWrites);
        EXPECT_EQ(ca.mmReads, cb.mmReads);
        EXPECT_EQ(ca.mmWrites, cb.mmWrites);
        EXPECT_EQ(ca.remReads, cb.remReads);
        EXPECT_EQ(ca.remWrites, cb.remWrites);
    }
    ckpt::Serializer sa, sb;
    a.save(sa);
    b.save(sb);
    EXPECT_EQ(sa.buffer(), sb.buffer());
}

// ---------------------------------------------------------------------
// 4. Identity hygiene: content hashes and the experiment store
// ---------------------------------------------------------------------

exp::JobSpec
hashSpec()
{
    exp::JobSpec spec;
    spec.cfg = presets::sectoredSystem8();
    spec.mix = rateMix(workloadByName("mcf"), spec.cfg.numCores);
    spec.policy = PolicyKind::Dap;
    spec.instr = 2'000;
    return spec;
}

TEST(FidelityJobHash, ExactIdsIgnoreFidelityKnobs)
{
    // Flag-absent compatibility: an exact-mode spec hashes the same
    // no matter what the (inert) sampling knobs say, so ids match
    // those of builds that predate the fidelity layer.
    const std::string base = exp::jobId(hashSpec());
    exp::JobSpec tweaked = hashSpec();
    tweaked.cfg.fidelity.detailInstr = 999;
    tweaked.cfg.fidelity.periodInstr = 123'456;
    EXPECT_EQ(exp::jobId(tweaked), base);
}

TEST(FidelityJobHash, ReducedFidelityIdsAreDistinct)
{
    const std::string base = exp::jobId(hashSpec());

    exp::JobSpec sampled = hashSpec();
    sampled.cfg.fidelity.mode = FidelityMode::Sampled;
    const std::string sampled_id = exp::jobId(sampled);
    EXPECT_NE(sampled_id, base);

    exp::JobSpec analytic = hashSpec();
    analytic.cfg.fidelity.mode = FidelityMode::Analytic;
    const std::string analytic_id = exp::jobId(analytic);
    EXPECT_NE(analytic_id, base);
    EXPECT_NE(analytic_id, sampled_id);

    // Sampling knobs are load-bearing once the mode is reduced.
    exp::JobSpec coarser = sampled;
    coarser.cfg.fidelity.periodInstr *= 2;
    EXPECT_NE(exp::jobId(coarser), sampled_id);

    // Determinism: same spec, same id.
    EXPECT_EQ(exp::jobId(sampled), sampled_id);
}

expd::GridOptions
storeGrid(const std::string &fidelity)
{
    expd::GridOptions opt;
    opt.archs = {"sectored"};
    opt.policies = {"dap"};
    opt.workloads = {"mcf"};
    opt.capacitiesMb = {2};
    opt.cores = 4;
    opt.instr = 2'000;
    opt.warmup = 2'000;
    opt.fidelity = fidelity;
    return opt;
}

TEST(FidelityExpq, StoreRefusesDriftedFidelityResume)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "dapsim_fidelity_drift")
            .string();
    std::filesystem::remove_all(dir);

    // Forge the torn-upgrade failure mode: the manifest's options
    // claim exact, but its job records were expanded at sampled
    // fidelity. Every record is individually valid; the store as a
    // whole no longer describes what re-expansion produces, and
    // open() must refuse rather than resume the wrong jobs.
    const expd::GridOptions exact = storeGrid("exact");
    const auto sampled_jobs = expd::expandGrid(storeGrid("sampled"));
    std::string text =
        expd::gridRecord(exact, sampled_jobs.size());
    for (std::size_t i = 0; i < sampled_jobs.size(); ++i)
        text += expd::jobRecord(sampled_jobs[i], i);
    std::filesystem::create_directories(dir);
    fsio::atomicWriteFile(dir + "/grid.jsonl", text);
    EXPECT_THROW(expd::Store::open(dir), expd::StoreError);
    std::filesystem::remove_all(dir);

    // Sanity: an honest sampled store round-trips.
    expd::Store::create(dir, storeGrid("sampled"));
    const expd::Store reopened = expd::Store::open(dir);
    EXPECT_EQ(reopened.jobs().size(), 1u);
    EXPECT_EQ(reopened.jobs()[0].spec.cfg.fidelity.mode,
              FidelityMode::Sampled);
    std::filesystem::remove_all(dir);
}

TEST(FidelityReportRow, EmittedForReducedFidelityOnly)
{
    exp::JobResult r;
    r.index = 3;
    r.jobId = "0123456789abcdef";
    r.ok = true;
    EXPECT_EQ(exp::fidelityReportToJson(r), "");

    r.result.fidelity.valid = true;
    r.result.fidelity.mode = "sampled";
    r.result.fidelity.windows = 5;
    r.result.fidelity.ipcMean = 2.5;
    r.result.fidelity.ipcCiHalf = 0.1;
    const std::string row = exp::fidelityReportToJson(r);
    EXPECT_NE(row.find("\"schema\":\"dapsim.fidelity.v1\""),
              std::string::npos);
    EXPECT_NE(row.find("\"mode\":\"sampled\""), std::string::npos);
    EXPECT_NE(row.find("\"job_id\":\"0123456789abcdef\""),
              std::string::npos);

    // Failed jobs never carry a fidelity row, valid report or not.
    r.ok = false;
    EXPECT_EQ(exp::fidelityReportToJson(r), "");
}

} // namespace
} // namespace dapsim
