/**
 * @file
 * Overhead guard for the observability subsystem.
 *
 * The contract: with every obs output disabled, the subsystem is
 * invisible — no Observability object exists, every hook pointer is
 * null, and simulated behaviour (hence the stat dump) is bit-identical
 * to a build without src/obs/. With tracing enabled the simulation
 * still must not change: observer callbacks only read state, so the
 * only permitted dump difference is the sampler's own events in the
 * `sim.events` row. A generous wall-clock bound guards against the
 * disabled branches growing into real work.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/observability.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim
{
namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 4;
    cfg.sectored.capacityBytes = 2 * kMiB;
    cfg.sectored.tagCache.entries = 128;
    cfg.warmupAccessesPerCore = 2'000;
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 2'000;
    return cfg;
}

std::vector<AccessGeneratorPtr>
tinyGens(const SystemConfig &cfg)
{
    WorkloadProfile w = workloadByName("mcf");
    w.params.footprintBytes = 256 * kKiB;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(w, i));
    return gens;
}

struct DumpAndTime
{
    std::string dump;
    double millis = 0.0;
};

DumpAndTime
runOnce(const obs::ObsConfig &obs)
{
    SystemConfig cfg = tinySystem();
    cfg.obs = obs;
    System sys(cfg, tinyGens(cfg));
    sys.warmup(cfg.warmupAccessesPerCore);
    const auto t0 = std::chrono::steady_clock::now();
    sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    DumpAndTime out;
    std::ostringstream os;
    sys.dumpStats(os);
    out.dump = os.str();
    out.millis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return out;
}

TEST(ObsOverhead, DisabledRunsHaveNoObservabilityObject)
{
    SystemConfig cfg = tinySystem();
    System sys(cfg, tinyGens(cfg));
    EXPECT_EQ(sys.observability(), nullptr);
}

TEST(ObsOverhead, DisabledDumpsAreBitIdentical)
{
    const std::string a = runOnce(obs::ObsConfig{}).dump;
    const std::string b = runOnce(obs::ObsConfig{}).dump;
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ObsOverhead, TracingNeverPerturbsTheSimulation)
{
    // DAP tracing and the Chrome dispatch/bus hooks schedule no events
    // and mutate nothing, so the dump must match a plain run exactly.
    const std::string plain = runOnce(obs::ObsConfig{}).dump;
    obs::ObsConfig traced;
    traced.dapTrace = ::testing::TempDir() + "obs_overhead_dap.jsonl";
    traced.chromeTrace =
        ::testing::TempDir() + "obs_overhead_chrome.json";
    EXPECT_EQ(plain, runOnce(traced).dump);
    std::remove(traced.dapTrace.c_str());
    std::remove(traced.chromeTrace.c_str());
}

TEST(ObsOverhead, SamplingOnlyAddsItsOwnEvents)
{
    const std::string plain = runOnce(obs::ObsConfig{}).dump;
    obs::ObsConfig sampled;
    sampled.sampleEvery = 1'000;
    sampled.sampleOut =
        ::testing::TempDir() + "obs_overhead_samples.jsonl";
    const std::string with = runOnce(sampled).dump;
    std::remove(sampled.sampleOut.c_str());

    std::istringstream pis(plain);
    std::istringstream wis(with);
    std::string pl, wl;
    while (std::getline(pis, pl)) {
        ASSERT_TRUE(std::getline(wis, wl));
        if (pl.rfind("sim.events ", 0) == 0) {
            // The sampler's periodic reads are the only extra events.
            EXPECT_EQ(wl.rfind("sim.events ", 0), 0u);
            EXPECT_GT(std::stoull(wl.substr(11)),
                      std::stoull(pl.substr(11)));
        } else if (pl.rfind("sim.eventsPeakPending ", 0) == 0) {
            // The sampler keeps one recurring event of its own in
            // flight, so the high-water mark may rise by exactly it.
            EXPECT_EQ(wl.rfind("sim.eventsPeakPending ", 0), 0u);
            const auto pv = std::stoull(pl.substr(22));
            const auto wv = std::stoull(wl.substr(22));
            EXPECT_GE(wv, pv);
            EXPECT_LE(wv, pv + 1);
        } else {
            EXPECT_EQ(pl, wl);
        }
    }
    EXPECT_FALSE(std::getline(wis, wl));
}

TEST(ObsOverhead, DisabledWallClockWithinGenerousBound)
{
    // Warm both paths once (allocator, page cache), then compare.
    (void)runOnce(obs::ObsConfig{});
    const double off = runOnce(obs::ObsConfig{}).millis;
    obs::ObsConfig all;
    all.sampleEvery = 1'000;
    all.sampleOut = ::testing::TempDir() + "obs_overhead_wall.jsonl";
    all.dapTrace = ::testing::TempDir() + "obs_overhead_wall_dap.jsonl";
    all.chromeTrace =
        ::testing::TempDir() + "obs_overhead_wall_chrome.json";
    const double on = runOnce(all).millis;
    std::remove(all.sampleOut.c_str());
    std::remove(all.dapTrace.c_str());
    std::remove(all.chromeTrace.c_str());

    // Full tracing writes one record per DRAM CAS, so it IS allowed to
    // cost real time; the guard is that it stays within an order of
    // magnitude (plus scheduler-noise slack) of the silent run. A
    // regression that makes the disabled branches do work would
    // instead show up in `off` rising toward `on` in profiling — and
    // in the bit-identical dump assertions above failing.
    EXPECT_LE(on, off * 10.0 + 2000.0)
        << "tracing overhead exploded: off=" << off << "ms on=" << on
        << "ms";
}

} // namespace
} // namespace dapsim
