/**
 * @file
 * Tests for the persistent experiment service (`dapsim.expq.v1`):
 * durable store create/open, sharded workers, lease reaping,
 * fleet-wide warmup dedup across processes, retry-failed, and the
 * crash-resume contract — a worker SIGKILLed mid-grid must leave a
 * store whose resumed, merged output is bit-identical to an
 * uninterrupted serial run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fsio.hh"
#include "common/json_writer.hh"
#include "exp/result_sink.hh"
#include "expd/store.hh"
#include "expd/worker.hh"

namespace dapsim
{
namespace
{

/** Fresh store directory under the system temp dir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** Small real grid: 4 cores, 2 MiB MS$, short warm-up. */
expd::GridOptions
tinyGrid(std::vector<std::string> workloads = {"mcf"})
{
    expd::GridOptions opt;
    opt.archs = {"sectored"};
    opt.policies = {"baseline", "dap"};
    opt.workloads = std::move(workloads);
    opt.capacitiesMb = {2};
    opt.cores = 4;
    opt.instr = 2'000;
    opt.warmup = 2'000;
    return opt;
}

/** The rows a serial, unforked sweep of the store's grid produces —
 *  the byte-exact reference for merge output. */
std::vector<std::string>
serialReferenceRows(const expd::Store &store)
{
    std::vector<std::string> rows;
    for (std::size_t i = 0; i < store.jobs().size(); ++i)
        rows.push_back(
            exp::jobResultToJson(exp::runJob(store.jobs()[i].spec, i)));
    return rows;
}

expd::WorkerOptions
workerOpts(const std::string &dir, const std::string &id,
           std::size_t shard_index = 0, std::size_t shard_count = 1)
{
    expd::WorkerOptions opt;
    opt.storeDir = dir;
    opt.workerId = id;
    opt.shardIndex = shard_index;
    opt.shardCount = shard_count;
    return opt;
}

TEST(ExpqStore, CreateOpenRoundTripsTheGrid)
{
    const std::string dir = freshDir("dapsim_expq_roundtrip");
    const expd::Store created =
        expd::Store::create(dir, tinyGrid({"mcf", "bwaves"}));
    EXPECT_EQ(created.jobs().size(), 4u);

    const expd::Store opened = expd::Store::open(dir);
    ASSERT_EQ(opened.jobs().size(), created.jobs().size());
    for (std::size_t i = 0; i < created.jobs().size(); ++i)
        EXPECT_EQ(opened.jobs()[i].id, created.jobs()[i].id);
    // A second create on the same directory must refuse.
    EXPECT_THROW(expd::Store::create(dir, tinyGrid()),
                 expd::StoreError);
    std::filesystem::remove_all(dir);
}

TEST(ExpqStore, OpenRejectsDriftedManifest)
{
    const std::string dir = freshDir("dapsim_expq_drift");
    const expd::GridOptions opt = tinyGrid();
    expd::Store::create(dir, opt);

    // Rewrite the manifest with the job ids swapped: every record is
    // individually valid (CRC-sealed), but the store no longer
    // describes what this build expands to.
    const auto jobs = expd::expandGrid(opt);
    std::string text = expd::gridRecord(opt, jobs.size());
    text += expd::jobRecord(jobs[1], 0);
    text += expd::jobRecord(jobs[0], 1);
    fsio::atomicWriteFile(dir + "/grid.jsonl", text);

    EXPECT_THROW(expd::Store::open(dir), expd::StoreError);
    std::filesystem::remove_all(dir);
}

TEST(ExpqStore, MergeRefusesAnIncompleteStore)
{
    const std::string dir = freshDir("dapsim_expq_incomplete");
    const expd::Store store = expd::Store::create(dir, tinyGrid());
    EXPECT_THROW(store.mergedRows(store.replay()), expd::StoreError);
    std::filesystem::remove_all(dir);
}

TEST(ExpqWorker, MergedRowsAreBitIdenticalToSerialSweep)
{
    const std::string dir = freshDir("dapsim_expq_serial");
    const expd::Store store =
        expd::Store::create(dir, tinyGrid({"mcf", "bwaves"}));
    const std::vector<std::string> reference =
        serialReferenceRows(store);

    const expd::WorkerStats stats =
        expd::runWorker(workerOpts(dir, "w0"));
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.failed, 0u);
    // 2 workloads -> 2 warmup groups, each simulated once.
    EXPECT_EQ(stats.warmupsExecuted, 2u);

    const std::vector<std::string> merged =
        store.mergedRows(store.replay());
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(merged[i], reference[i]) << "row " << i;
    std::filesystem::remove_all(dir);
}

TEST(ExpqWorker, ShardsPartitionTheGrid)
{
    const std::string dir = freshDir("dapsim_expq_shards");
    const expd::Store store =
        expd::Store::create(dir, tinyGrid({"mcf", "bwaves"}));

    const expd::WorkerStats a =
        expd::runWorker(workerOpts(dir, "wa", 0, 2));
    const expd::WorkerStats b =
        expd::runWorker(workerOpts(dir, "wb", 1, 2));
    EXPECT_EQ(a.executed, 2u);
    EXPECT_EQ(b.executed, 2u);

    const expd::Replay replay = store.replay();
    EXPECT_EQ(replay.countState(expd::JobState::State::Done), 4u);
    EXPECT_EQ(replay.doneByWorker.at("wa"), 2u);
    EXPECT_EQ(replay.doneByWorker.at("wb"), 2u);
    // Shard workers share the on-disk warmup cache: the second worker
    // reuses the first's checkpoints instead of re-simulating.
    EXPECT_EQ(b.warmupsExecuted, 0u);
    EXPECT_EQ(b.warmupsReused, 2u);
    std::filesystem::remove_all(dir);
}

TEST(ExpqWorker, MaxJobsStopsEarlyAndResumeFinishes)
{
    const std::string dir = freshDir("dapsim_expq_maxjobs");
    const expd::Store store = expd::Store::create(dir, tinyGrid());

    expd::WorkerOptions first = workerOpts(dir, "w0");
    first.maxJobs = 1;
    EXPECT_EQ(expd::runWorker(first).executed, 1u);
    EXPECT_EQ(store.replay().countState(expd::JobState::State::Done),
              1u);

    EXPECT_EQ(expd::runWorker(workerOpts(dir, "w1")).executed, 1u);
    EXPECT_EQ(store.replay().countState(expd::JobState::State::Done),
              2u);
    std::filesystem::remove_all(dir);
}

TEST(ExpqWorker, FailedJobsAreRecordedAndRetryable)
{
    const std::string dir = freshDir("dapsim_expq_failed");
    // "nosuch" expands to deterministic error jobs.
    const expd::Store store =
        expd::Store::create(dir, tinyGrid({"nosuch"}));

    const expd::WorkerStats stats =
        expd::runWorker(workerOpts(dir, "w0"));
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.failed, 2u);

    expd::Replay replay = store.replay();
    EXPECT_EQ(replay.countState(expd::JobState::State::Failed), 2u);
    EXPECT_NE(replay.jobs[0].error.find("unknown workload"),
              std::string::npos);
    // The failure text is captured per job for `status`.
    std::ifstream stderr_file(store.stderrPath(0));
    std::string captured;
    std::getline(stderr_file, captured);
    EXPECT_NE(captured.find("unknown workload"), std::string::npos);

    // Failed rows still merge (rectangular grid), identical to what
    // a serial sweep emits for them.
    const std::vector<std::string> reference =
        serialReferenceRows(store);
    EXPECT_EQ(store.mergedRows(replay), reference);

    // retry-failed semantics: one retry record per failure returns
    // the job to pending.
    {
        fsio::AppendFile events(store.eventsPath("retry"));
        events.append(expd::retryRecord(0));
        events.append(expd::retryRecord(1));
    }
    replay = store.replay();
    EXPECT_EQ(replay.countState(expd::JobState::State::Failed), 0u);
    EXPECT_EQ(replay.countState(expd::JobState::State::Pending), 2u);
    std::filesystem::remove_all(dir);
}

TEST(ExpqWorker, StaleLeaseOfDeadProcessIsReaped)
{
    const std::string dir = freshDir("dapsim_expq_lease");
    const expd::Store store = expd::Store::create(dir, tinyGrid());

    // A guaranteed-dead same-host pid: fork a child that exits
    // immediately and reap it.
    const pid_t dead = fork();
    ASSERT_GE(dead, 0);
    if (dead == 0)
        _exit(0);
    int status = 0;
    ASSERT_EQ(waitpid(dead, &status, 0), dead);

    char host[256] = {0};
    ASSERT_EQ(gethostname(host, sizeof(host) - 1), 0);
    json::JsonWriter w;
    w.beginObject();
    w.key("pid").value(static_cast<std::uint64_t>(dead));
    w.key("host").value(std::string(host));
    w.endObject();
    ASSERT_TRUE(fsio::createExclusive(store.leasePath(0), w.str()));

    // Dead owner: reaped and re-acquired immediately, even with a
    // huge TTL.
    EXPECT_TRUE(store.tryLease(0, 1e9));
    // We are alive: a second claim on the same job must lose.
    EXPECT_FALSE(store.tryLease(0, 1e9));
    store.releaseLease(0);
    EXPECT_TRUE(store.tryLease(0, 1e9));
    std::filesystem::remove_all(dir);
}

TEST(ExpqService, KilledWorkerResumesToBitIdenticalMerge)
{
    const std::string dir = freshDir("dapsim_expq_kill");
    const expd::Store store = expd::Store::create(
        dir, tinyGrid({"mcf", "bwaves", "omnetpp"}));
    const std::vector<std::string> reference =
        serialReferenceRows(store);

    // Child: a worker chewing through the whole grid.
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        try {
            expd::runWorker(workerOpts(dir, "victim"));
        } catch (...) {
        }
        _exit(0);
    }

    // SIGKILL it as soon as the first durable result lands; no
    // cooperation from the worker whatsoever.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::minutes(5);
    for (;;) {
        if (store.replay().countState(expd::JobState::State::Done) >=
            1)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "worker made no progress";
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Resume in this process: dead-owner leases are reaped, done jobs
    // are skipped, pending jobs run.
    const expd::Replay mid = store.replay();
    const std::size_t done_before_resume =
        mid.countState(expd::JobState::State::Done);
    const expd::WorkerStats resumed =
        expd::runWorker(workerOpts(dir, "resume"));
    EXPECT_EQ(resumed.skipped + resumed.executed, 6u);
    EXPECT_EQ(resumed.executed, 6u - done_before_resume);

    // The resumed merge is byte-identical to the uninterrupted
    // serial reference.
    const std::vector<std::string> merged =
        store.mergedRows(store.replay());
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(merged[i], reference[i]) << "row " << i;
    std::filesystem::remove_all(dir);
}

TEST(ExpqService, WarmupsExecuteExactlyOncePerGroupFleetWide)
{
    const std::string dir = freshDir("dapsim_expq_warmup_fleet");
    // One workload, two policies: both shards race for ONE warmup
    // group, from two separate processes started back-to-back.
    const expd::Store store = expd::Store::create(dir, tinyGrid());

    pid_t pids[2];
    for (int s = 0; s < 2; ++s) {
        pids[s] = fork();
        ASSERT_GE(pids[s], 0);
        if (pids[s] == 0) {
            try {
                expd::runWorker(workerOpts(
                    dir, "w" + std::to_string(s),
                    static_cast<std::size_t>(s), 2));
                _exit(0);
            } catch (...) {
                _exit(1);
            }
        }
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    const expd::Replay replay = store.replay();
    EXPECT_EQ(replay.countState(expd::JobState::State::Done), 2u);
    // The fleet-wide dedup invariant, asserted from the durable stat
    // counters: each warmup group was simulated exactly once across
    // both worker processes.
    ASSERT_EQ(replay.warmupsExecuted.size(), 1u);
    for (const auto &[group, count] : replay.warmupsExecuted)
        EXPECT_EQ(count, 1u) << "group " << group;

    // And the racing processes still produced the serial rows.
    EXPECT_EQ(store.mergedRows(replay), serialReferenceRows(store));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace dapsim
