/**
 * @file
 * Unit tests for the generic set-associative directory and SectorMeta.
 */

#include <gtest/gtest.h>

#include "cache/assoc_cache.hh"
#include "cache/sector.hh"

namespace dapsim
{
namespace
{

TEST(AssocCache, MissThenHit)
{
    AssocCache<int> c(4, 2);
    EXPECT_EQ(c.find(0, 10), nullptr);
    c.insert(0, 10, 42);
    ASSERT_NE(c.find(0, 10), nullptr);
    EXPECT_EQ(*c.find(0, 10), 42);
}

TEST(AssocCache, SetsAreIndependent)
{
    AssocCache<int> c(4, 2);
    c.insert(0, 10, 1);
    EXPECT_EQ(c.find(1, 10), nullptr);
}

TEST(AssocCache, LruEvictsLeastRecentlyUsed)
{
    AssocCache<int> c(1, 2, ReplPolicy::LRU);
    c.insert(0, 1, 11);
    c.insert(0, 2, 22);
    c.touch(0, 1); // 2 is now LRU
    const auto v = c.insert(0, 3, 33);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.tag, 2u);
    EXPECT_EQ(v.value, 22);
    EXPECT_NE(c.find(0, 1), nullptr);
}

TEST(AssocCache, NruProtectsReferencedLines)
{
    AssocCache<int> c(1, 4, ReplPolicy::NRU);
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.insert(0, t, static_cast<int>(t));
    c.touch(0, 1);
    c.touch(0, 2);
    // 3 and 4 are not-recently-used; a new insert must evict one.
    const auto v = c.insert(0, 5, 55);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.tag == 3 || v.tag == 4);
    EXPECT_NE(c.find(0, 1), nullptr);
    EXPECT_NE(c.find(0, 2), nullptr);
}

TEST(AssocCache, NruAllReferencedStillFindsVictim)
{
    AssocCache<int> c(1, 2, ReplPolicy::NRU);
    c.insert(0, 1, 1);
    c.insert(0, 2, 2);
    c.touch(0, 1);
    c.touch(0, 2); // touch clears the others when all are referenced
    const auto v = c.insert(0, 3, 3);
    EXPECT_TRUE(v.valid);
}

TEST(AssocCache, InvalidWaysFillBeforeEviction)
{
    AssocCache<int> c(1, 4);
    for (std::uint64_t t = 1; t <= 4; ++t) {
        const auto v = c.insert(0, t, 0);
        EXPECT_FALSE(v.valid) << t;
    }
    EXPECT_TRUE(c.insert(0, 5, 0).valid);
}

TEST(AssocCache, EraseRemoves)
{
    AssocCache<int> c(2, 2);
    c.insert(1, 9, 99);
    EXPECT_TRUE(c.erase(1, 9));
    EXPECT_EQ(c.find(1, 9), nullptr);
    EXPECT_FALSE(c.erase(1, 9));
}

TEST(AssocCache, FlushSetVisitsAndInvalidates)
{
    AssocCache<int> c(2, 4);
    c.insert(0, 1, 10);
    c.insert(0, 2, 20);
    c.insert(1, 3, 30);
    int sum = 0;
    c.flushSet(0, [&](std::uint64_t, int &v) { sum += v; });
    EXPECT_EQ(sum, 30);
    EXPECT_EQ(c.occupancy(0), 0u);
    EXPECT_EQ(c.occupancy(1), 1u);
}

TEST(AssocCache, ForEachCountsValidLines)
{
    AssocCache<int> c(4, 4);
    c.insert(0, 1, 0);
    c.insert(2, 5, 0);
    c.insert(3, 9, 0);
    int n = 0;
    c.forEach([&](std::uint64_t, std::uint64_t, int &) { ++n; });
    EXPECT_EQ(n, 3);
}

TEST(AssocCacheDeathTest, DuplicateInsertPanics)
{
    AssocCache<int> c(1, 2);
    c.insert(0, 1, 1);
    EXPECT_DEATH(c.insert(0, 1, 2), "duplicate");
}

TEST(AssocCacheDeathTest, OutOfRangeSetPanics)
{
    AssocCache<int> c(4, 2);
    EXPECT_DEATH((void)c.find(4, 0), "range");
}

TEST(SectorMeta, ValidAndDirtyBitmaps)
{
    SectorMeta m;
    EXPECT_FALSE(m.isValid(5));
    m.setValid(5);
    EXPECT_TRUE(m.isValid(5));
    EXPECT_FALSE(m.isDirty(5));
    m.setDirty(5);
    EXPECT_TRUE(m.isDirty(5));
    EXPECT_TRUE(m.isValid(5));
    EXPECT_EQ(m.validCount(), 1u);
    EXPECT_EQ(m.dirtyCount(), 1u);
}

TEST(SectorMeta, SetDirtyImpliesValid)
{
    SectorMeta m;
    m.setDirty(63);
    EXPECT_TRUE(m.isValid(63));
}

TEST(SectorMeta, ClearBlockResetsBoth)
{
    SectorMeta m;
    m.setDirty(3);
    m.clearBlock(3);
    EXPECT_FALSE(m.isValid(3));
    EXPECT_FALSE(m.isDirty(3));
}

TEST(SectorMeta, TouchedMaskIsSeparate)
{
    SectorMeta m;
    m.touch(7);
    EXPECT_EQ(m.touchedMask, 1ULL << 7);
    EXPECT_FALSE(m.isValid(7));
}

TEST(SectorMeta, AnyDirty)
{
    SectorMeta m;
    EXPECT_FALSE(m.anyDirty());
    m.setDirty(0);
    EXPECT_TRUE(m.anyDirty());
}

/** Property sweep: occupancy never exceeds associativity. */
class AssocCacheStress
    : public ::testing::TestWithParam<std::tuple<int, ReplPolicy>>
{
};

TEST_P(AssocCacheStress, OccupancyBounded)
{
    const auto [ways, policy] = GetParam();
    AssocCache<int> c(8, static_cast<std::uint32_t>(ways), policy);
    std::uint64_t x = 99;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ULL + 1;
        const std::uint64_t set = x % 8;
        const std::uint64_t tag = (x >> 8) % 64;
        if (c.find(set, tag) != nullptr)
            c.touch(set, tag);
        else
            c.insert(set, tag, 0);
        EXPECT_LE(c.occupancy(set), static_cast<std::uint32_t>(ways));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AssocCacheStress,
    ::testing::Combine(::testing::Values(1, 2, 4, 16),
                       ::testing::Values(ReplPolicy::LRU,
                                         ReplPolicy::NRU)));

} // namespace
} // namespace dapsim
