/**
 * @file
 * Tests pinning the Section V system presets and their scaling
 * invariants (coverage ratios preserved at the 64x reduced scale).
 */

#include <gtest/gtest.h>

#include "sim/presets.hh"
#include "trace/workloads.hh"

namespace dapsim
{
namespace
{

TEST(Presets, SectoredSystemMatchesSectionFive)
{
    const SystemConfig cfg = presets::sectoredSystem8();
    EXPECT_EQ(cfg.numCores, 8u);
    EXPECT_EQ(cfg.arch, MsArch::Sectored);
    EXPECT_EQ(cfg.sectored.sectorBytes, 4 * kKiB);
    EXPECT_EQ(cfg.sectored.ways, 4u);
    EXPECT_NEAR(cfg.sectored.array.peakGBps(), 102.4, 1e-9);
    EXPECT_NEAR(cfg.mainMemory.peakGBps(), 38.4, 1e-9);
    EXPECT_EQ(cfg.windowCycles, 64u);
    EXPECT_EQ(cfg.core.retireWidth, 4u);
    EXPECT_EQ(cfg.core.robEntries, 224u);
}

TEST(Presets, TagCacheCoverageRatioPreserved)
{
    // Paper: 32K entries over 1M sectors (~3.1%); scaled: 512 over
    // 16K sectors — the same coverage ratio.
    const SystemConfig cfg = presets::sectoredSystem8();
    const double coverage =
        static_cast<double>(cfg.sectored.tagCache.entries) /
        static_cast<double>(cfg.sectored.numSectors());
    EXPECT_NEAR(coverage, 32768.0 / (1 << 20), 1e-3);
}

TEST(Presets, DbcCoverageRatioPreserved)
{
    // Paper: 32K entries x 64 sets over 64M Alloy sets; scaled: 512 x
    // 64 over 1M sets.
    const SystemConfig cfg = presets::alloySystem8();
    const double coverage =
        static_cast<double>(cfg.alloy.dbc.entries *
                            cfg.alloy.dbc.setsPerEntry) /
        static_cast<double>(cfg.alloy.numSets());
    EXPECT_NEAR(coverage, 32768.0 * 64 / (64.0 * (1 << 20)), 1e-3);
}

TEST(Presets, EdramCapacityPoints)
{
    EXPECT_EQ(presets::edramSystem8(4).edram.capacityBytes, 4 * kMiB);
    EXPECT_EQ(presets::edramSystem8(8).edram.capacityBytes, 8 * kMiB);
    const SystemConfig cfg = presets::edramSystem8(4);
    EXPECT_EQ(cfg.edram.sectorBytes, 1 * kKiB);
    EXPECT_EQ(cfg.edram.ways, 16u);
    EXPECT_NEAR(cfg.edram.readChannels.peakGBps(), 51.2, 1e-9);
    EXPECT_NEAR(cfg.edram.writeChannels.peakGBps(), 51.2, 1e-9);
}

TEST(Presets, SixteenCoreScalesEverything)
{
    const SystemConfig cfg = presets::sectoredSystem16();
    EXPECT_EQ(cfg.numCores, 16u);
    EXPECT_EQ(cfg.l3.capacityBytes, 2 * kMiB);
    EXPECT_EQ(cfg.sectored.capacityBytes, 128 * kMiB);
    EXPECT_NEAR(cfg.sectored.array.peakGBps(), 204.8, 1e-9);
    EXPECT_NEAR(cfg.mainMemory.peakGBps(), 51.2, 1e-9);
}

TEST(Presets, MsPeakAccPerCycleByArch)
{
    SystemConfig cfg = presets::sectoredSystem8();
    EXPECT_NEAR(msPeakAccPerCycle(cfg), 0.4, 1e-6);
    cfg = presets::alloySystem8();
    EXPECT_NEAR(msPeakAccPerCycle(cfg), 0.4 * 2.0 / 3.0, 1e-6);
    cfg = presets::edramSystem8(4);
    EXPECT_NEAR(msPeakAccPerCycle(cfg), 0.2, 1e-6);
    cfg.arch = MsArch::None;
    EXPECT_EQ(msPeakAccPerCycle(cfg), 0.0);
}

TEST(Presets, MsCapacityBytesByArch)
{
    SystemConfig cfg = presets::sectoredSystem8();
    EXPECT_EQ(cfg.msCapacityBytes(), 64 * kMiB);
    cfg = presets::edramSystem8(8);
    EXPECT_EQ(cfg.msCapacityBytes(), 8 * kMiB);
    cfg.arch = MsArch::None;
    EXPECT_EQ(cfg.msCapacityBytes(), 0u);
}

TEST(Presets, NoTagCacheVariantOnlyDisablesTheTagCache)
{
    const SystemConfig a = presets::sectoredSystem8();
    const SystemConfig b = presets::sectoredSystemNoTagCache8();
    EXPECT_TRUE(a.sectored.tagCache.enabled);
    EXPECT_FALSE(b.sectored.tagCache.enabled);
    EXPECT_EQ(a.sectored.capacityBytes, b.sectored.capacityBytes);
}

TEST(Presets, DerivedDapConfigUsesArchBandwidths)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.policy = PolicyKind::Dap;
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(workloadByName("hpcg"), i));
    System sys(cfg, std::move(gens));
    DapPolicy *dap = sys.dapPolicy();
    ASSERT_NE(dap, nullptr);
    EXPECT_NEAR(dap->config().msPeakAccPerCycle, 0.4, 1e-6);
    EXPECT_NEAR(dap->config().mmPeakAccPerCycle, 0.15, 1e-3);
    // K = 102.4/38.4 quantized to 11/4, the paper's worked example.
    EXPECT_EQ(dap->config().ratioK().numerator(), 11u);
}

} // namespace
} // namespace dapsim
