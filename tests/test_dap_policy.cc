/**
 * @file
 * Unit tests for the DapPolicy credit-counter machinery.
 */

#include <gtest/gtest.h>

#include "dap/dap_controller.hh"

namespace dapsim
{
namespace
{

DapConfig
baseConfig()
{
    DapConfig cfg;
    cfg.arch = DapConfig::Arch::Sectored;
    cfg.windowCycles = 64;
    cfg.efficiency = 0.75;
    cfg.msPeakAccPerCycle = 0.4;  // HBM 102.4 GB/s
    cfg.mmPeakAccPerCycle = 0.15; // DDR4-2400
    return cfg;
}

TEST(DapConfig, DerivedWindowBudgets)
{
    const DapConfig cfg = baseConfig();
    EXPECT_EQ(cfg.msAccessesPerWindow(), 19); // floor(0.75*0.4*64)
    EXPECT_EQ(cfg.mmAccessesPerWindow(), 7);  // floor(0.75*0.15*64)
}

TEST(DapConfig, RatioKIsThePaperEleventhFourths)
{
    const FixedRatio k = baseConfig().ratioK();
    EXPECT_EQ(k.numerator(), 11u);
    EXPECT_EQ(k.denominator(), 4u);
}

TEST(DapConfigDeathTest, UnsetBandwidthIsFatal)
{
    DapConfig cfg;
    EXPECT_DEATH((void)cfg.ratioK(), "bandwidths");
}

WindowCounters
heavyWindow()
{
    WindowCounters w;
    w.aMs = 40;
    w.aMm = 2;
    w.readMisses = 5;
    w.writes = 20;
    w.cleanHits = 10;
    return w;
}

TEST(DapPolicy, CreditsLoadFromWindowTargets)
{
    DapPolicy dap(baseConfig());
    dap.beginWindow(heavyWindow());
    EXPECT_TRUE(dap.currentTargets().active);
    EXPECT_EQ(dap.fwbCredits(), 5);
    EXPECT_EQ(dap.wbCredits(), 7);
    EXPECT_EQ(dap.windowsPartitioned.value(), 1u);
    EXPECT_EQ(dap.windowsTotal.value(), 1u);
}

TEST(DapPolicy, ConsumingDecrementsAndStopsAtZero)
{
    DapPolicy dap(baseConfig());
    dap.beginWindow(heavyWindow());
    const std::int64_t n = dap.fwbCredits();
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_TRUE(dap.shouldBypassFill(0));
    EXPECT_FALSE(dap.shouldBypassFill(0));
    EXPECT_EQ(dap.fwbApplied.value(), static_cast<std::uint64_t>(n));
}

TEST(DapPolicy, CreditsAccumulateAcrossWindowsSaturating)
{
    DapConfig cfg = baseConfig();
    cfg.creditMax = 12;
    DapPolicy dap(cfg);
    for (int i = 0; i < 10; ++i)
        dap.beginWindow(heavyWindow());
    EXPECT_EQ(dap.fwbCredits(), 12); // saturated, not 50
    EXPECT_EQ(dap.wbCredits(), 12);
}

TEST(DapPolicy, QuietWindowLoadsNoBypasses)
{
    DapPolicy dap(baseConfig());
    WindowCounters quiet;
    quiet.aMs = 3;
    quiet.aMm = 1;
    dap.beginWindow(quiet);
    EXPECT_FALSE(dap.currentTargets().active);
    EXPECT_FALSE(dap.shouldBypassFill(0));
    EXPECT_FALSE(dap.shouldBypassWrite(0));
    EXPECT_FALSE(dap.shouldForceReadMiss(0));
    // SFRM may still exploit the idle memory (latency-neutral).
    EXPECT_GT(dap.sfrmCredits(), 0);
}

TEST(DapPolicy, TechniqueDisablesAreRespected)
{
    DapConfig cfg = baseConfig();
    cfg.enableFwb = false;
    cfg.enableWb = false;
    DapPolicy dap(cfg);
    dap.beginWindow(heavyWindow());
    EXPECT_FALSE(dap.shouldBypassFill(0));
    EXPECT_FALSE(dap.shouldBypassWrite(0));
    EXPECT_EQ(dap.fwbCredits(), 0);
    EXPECT_EQ(dap.wbCredits(), 0);
}

TEST(DapPolicy, AlloyArchLoadsWriteThroughCredits)
{
    DapConfig cfg = baseConfig();
    cfg.arch = DapConfig::Arch::Alloy;
    cfg.msPeakAccPerCycle = 0.4 * 2.0 / 3.0; // TAD derating
    DapPolicy dap(cfg);
    WindowCounters w;
    w.aMs = 20; // above the 12-access window budget: partitioning on
    w.aMm = 0;
    w.cleanHits = 4; // caps IFRM at 4, leaving residual MM bandwidth
    dap.beginWindow(w);
    EXPECT_TRUE(dap.currentTargets().active);
    EXPECT_EQ(dap.currentTargets().nIfrm, 4);
    int wt = 0;
    while (dap.shouldWriteThrough(0))
        ++wt;
    // 0.8 * (7 - 0 - 4) = 2 residual write-through credits.
    EXPECT_EQ(wt, 2);
}

TEST(DapPolicy, EdramArchUsesSplitChannels)
{
    DapConfig cfg = baseConfig();
    cfg.arch = DapConfig::Arch::Edram;
    cfg.msPeakAccPerCycle = 0.2;      // read channels 51.2 GB/s
    cfg.msWritePeakAccPerCycle = 0.2; // write channels 51.2 GB/s
    DapPolicy dap(cfg);
    WindowCounters w;
    w.aMsRead = 15;
    w.aMsWrite = 5;
    w.aMm = 4;
    w.cleanHits = 8;
    dap.beginWindow(w);
    EXPECT_TRUE(dap.currentTargets().active);
    EXPECT_GT(dap.ifrmCredits(), 0);
    EXPECT_EQ(dap.sfrmCredits(), 0);
}

TEST(DapPolicy, NameIsDap)
{
    DapPolicy dap(baseConfig());
    EXPECT_STREQ(dap.name(), "dap");
}

} // namespace
} // namespace dapsim
