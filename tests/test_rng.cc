/**
 * @file
 * Unit tests for the deterministic xorshift RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dapsim
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceZeroAndOne)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GapMeanApproximatesTarget)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.gap(40.0, 1'000'000));
    EXPECT_NEAR(sum / n, 40.0, 2.0);
}

TEST(Rng, GapRespectsCap)
{
    Rng r(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(r.gap(1000.0, 50), 50u);
}

TEST(Rng, GapOfMeanOneIsOne)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.gap(1.0, 100), 1u);
}

/** Uniformity sweep over several bucket counts. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformity, BelowIsRoughlyUniform)
{
    const std::uint64_t buckets = GetParam();
    Rng r(buckets * 131);
    std::vector<int> count(buckets, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++count[r.below(buckets)];
    const double expect = static_cast<double>(n) / buckets;
    for (std::uint64_t b = 0; b < buckets; ++b)
        EXPECT_NEAR(count[b], expect, expect * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngUniformity,
                         ::testing::Values(2, 5, 16, 64));

} // namespace
} // namespace dapsim
