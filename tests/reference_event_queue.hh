/**
 * @file
 * Reference event queue: the original binary-heap scheduler.
 *
 * This is the pre-timing-wheel `EventQueue` implementation, frozen
 * verbatim as the behavioural oracle for the kernel rewrite. The
 * differential fuzz test (test_event_wheel_fuzz.cc) replays randomized
 * schedule sequences through this heap and the production wheel and
 * asserts bit-identical dispatch order; bench/kernel_events.cpp uses
 * it as the "before" side of the kernel microbenchmarks.
 *
 * Do not optimise or otherwise modify this type: its value is that it
 * implements the dispatch-order contract (ascending tick, insertion
 * seq on ties) in the most obviously correct way.
 */

#ifndef DAPSIM_TESTS_REFERENCE_EVENT_QUEUE_HH
#define DAPSIM_TESTS_REFERENCE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dapsim
{

/** Deterministic priority-queue event scheduler (reference). */
class RefEventQueue
{
  public:
    using Callback = std::function<void()>;

    RefEventQueue() = default;
    RefEventQueue(const RefEventQueue &) = delete;
    RefEventQueue &operator=(const RefEventQueue &) = delete;

    Tick now() const { return now_; }
    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executed() const { return executed_; }

    /** Peek-only earliest pending tick (~Tick(0) when empty); added
     *  for API parity with the production queue, no state change. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? ~Tick(0) : heap_.top().when;
    }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            panic("RefEventQueue: scheduling in the past");
        heap_.push(Entry{when, seq_++, std::move(cb)});
    }

    void
    scheduleAfter(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        auto &top = const_cast<Entry &>(heap_.top());
        now_ = top.when;
        Callback cb = std::move(top.cb);
        heap_.pop();
        ++executed_;
        cb();
        return true;
    }

    void
    run(Tick limit = ~Tick(0))
    {
        while (!heap_.empty() && heap_.top().when <= limit) {
            if (!step())
                break;
        }
    }

    void
    runUntil(const std::function<bool()> &done, Tick limit = ~Tick(0))
    {
        while (!done() && !heap_.empty() && heap_.top().when <= limit) {
            if (!step())
                break;
        }
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_TESTS_REFERENCE_EVENT_QUEUE_HH
