/**
 * @file
 * Unit tests for the Section III analytical bandwidth model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dap/bandwidth_model.hh"

namespace dapsim::bwmodel
{
namespace
{

TEST(BandwidthModel, PaperTwoModuleExample)
{
    // Section III: M1 = 102.4 GB/s, M2 = 51.2 GB/s.
    const std::vector<double> b{102.4, 51.2};
    // All accesses to M1: delivered = 102.4.
    EXPECT_NEAR(deliveredBandwidth(b, {1.0, 0.0}), 102.4, 1e-9);
    // Half and half: bottlenecked by M2 at 102.4.
    EXPECT_NEAR(deliveredBandwidth(b, {0.5, 0.5}), 102.4, 1e-9);
    // Optimal 2/3 vs 1/3: the sum, 153.6.
    EXPECT_NEAR(deliveredBandwidth(b, {2.0 / 3, 1.0 / 3}), 153.6, 1e-6);
}

TEST(BandwidthModel, OptimalFractionsAreBandwidthProportional)
{
    const std::vector<double> b{102.4, 51.2};
    const auto f = optimalFractions(b);
    EXPECT_NEAR(f[0], 2.0 / 3, 1e-12);
    EXPECT_NEAR(f[1], 1.0 / 3, 1e-12);
}

TEST(BandwidthModel, OptimalFractionsDeliverTheSum)
{
    // Equation 3 for several source sets.
    const std::vector<std::vector<double>> cases{
        {10.0, 20.0},
        {1.0, 2.0, 3.0},
        {38.4, 102.4},
        {51.2, 51.2, 38.4}, // the eDRAM three-source system
    };
    for (const auto &b : cases) {
        const auto f = optimalFractions(b);
        EXPECT_NEAR(deliveredBandwidth(b, f), maxDeliveredBandwidth(b),
                    1e-6);
    }
}

TEST(BandwidthModel, AnyOtherPartitionIsWorse)
{
    const std::vector<double> b{102.4, 38.4};
    const double best = maxDeliveredBandwidth(b);
    for (double f1 = 0.0; f1 <= 1.0; f1 += 0.05) {
        const double d = deliveredBandwidth(b, {f1, 1.0 - f1});
        EXPECT_LE(d, best + 1e-9) << "f1=" << f1;
    }
}

TEST(BandwidthModel, InflationDividesTheBound)
{
    const std::vector<double> b{102.4, 38.4};
    EXPECT_NEAR(maxDeliveredWithInflation(b, 1.0), 140.8, 1e-9);
    EXPECT_NEAR(maxDeliveredWithInflation(b, 2.0), 70.4, 1e-9);
}

TEST(BandwidthModel, OptimalMemoryFractionPaperValue)
{
    // Section VI-A.2: B_MM/(B_MM + B_MS$) = 0.27 for 38.4 vs 102.4.
    EXPECT_NEAR(optimalMemoryFraction(102.4, 38.4), 0.2727, 1e-3);
}

TEST(Figure1Model, DramCacheRampsThenPlateaus)
{
    // Fills share the DRAM cache bus: delivered = min(Bc, Bm/(1-h)).
    const double bc = 102.4, bm = 38.4;
    EXPECT_NEAR(dramCacheReadKernelBW(0.0, bc, bm), 38.4, 1e-9);
    EXPECT_NEAR(dramCacheReadKernelBW(0.25, bc, bm), 51.2, 1e-9);
    EXPECT_NEAR(dramCacheReadKernelBW(0.5, bc, bm), 76.8, 1e-9);
    // Past the crossover (h* = 1 - Bm/Bc = 0.625) the cache bus caps it.
    EXPECT_NEAR(dramCacheReadKernelBW(0.7, bc, bm), 102.4, 1e-9);
    EXPECT_NEAR(dramCacheReadKernelBW(0.9, bc, bm), 102.4, 1e-9);
    EXPECT_NEAR(dramCacheReadKernelBW(1.0, bc, bm), 102.4, 1e-9);
}

TEST(Figure1Model, EdramPeaksMidRangeAndFallsAtFullHitRate)
{
    // Split channels: fills don't consume read bandwidth, so the
    // delivered bandwidth peaks where both sources saturate and then
    // *drops* toward the read-channel bandwidth (the paper's key
    // eDRAM observation).
    const double bcr = 51.2, bm = 38.4;
    const double peak_h = bcr / (bcr + bm); // ~0.571
    const double at_peak = edramReadKernelBW(peak_h, bcr, bm);
    EXPECT_NEAR(at_peak, bcr + bm, 1e-6);
    EXPECT_LT(edramReadKernelBW(1.0, bcr, bm), at_peak);
    EXPECT_NEAR(edramReadKernelBW(1.0, bcr, bm), 51.2, 1e-9);
    // Rising before the peak, falling after it.
    EXPECT_LT(edramReadKernelBW(0.3, bcr, bm), at_peak);
    EXPECT_GT(edramReadKernelBW(0.7, bcr, bm),
              edramReadKernelBW(1.0, bcr, bm));
}

TEST(BandwidthModelDeathTest, RejectsBadInput)
{
    EXPECT_DEATH((void)deliveredBandwidth({1.0}, {0.5, 0.5}),
                 "mismatch");
    EXPECT_DEATH((void)deliveredBandwidth({0.0}, {1.0}),
                 "non-positive");
    EXPECT_DEATH((void)deliveredBandwidth({1.0}, {-0.5}), "negative");
    EXPECT_DEATH((void)maxDeliveredWithInflation({1.0}, 0.5), ">= 1");
    EXPECT_DEATH((void)optimalFractions({}), "positive");
    EXPECT_DEATH((void)optimalFractions({0.0, 0.0}), "positive");
}

/** Deterministic LCG so fuzz failures reproduce byte-for-byte. */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : x_(seed * 2654435761u + 99) {}

    std::int64_t
    operator()(std::int64_t lo, std::int64_t hi)
    {
        x_ = x_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return lo + static_cast<std::int64_t>(
                        (x_ >> 16) %
                        static_cast<std::uint64_t>(hi - lo + 1));
    }

  private:
    std::uint64_t x_;
};

class NSourceFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(NSourceFuzz, OptimumDeliversTheSumForRandomSourceVectors)
{
    // Eqs 3-4 for random 3-5-source systems: the bandwidth-
    // proportional fractions sum to one, deliver exactly the sum of
    // the source bandwidths, and no perturbation delivers more.
    Lcg rnd(static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = static_cast<std::size_t>(rnd(3, 5));
        std::vector<double> b;
        for (std::size_t i = 0; i < n; ++i)
            b.push_back(static_cast<double>(rnd(1, 10'000)) / 10.0);
        const double sum = maxDeliveredBandwidth(b);

        const auto f = optimalFractions(b);
        ASSERT_EQ(f.size(), n);
        double fsum = 0.0;
        for (double fi : f) {
            EXPECT_GE(fi, 0.0);
            fsum += fi;
        }
        EXPECT_NEAR(fsum, 1.0, 1e-12) << "trial " << trial;
        EXPECT_NEAR(deliveredBandwidth(b, f), sum, 1e-9 * sum)
            << "trial " << trial;

        // Shift mass between two random sources: never better.
        const std::size_t from = static_cast<std::size_t>(
            rnd(0, static_cast<std::int64_t>(n) - 1));
        const std::size_t to = static_cast<std::size_t>(
            rnd(0, static_cast<std::int64_t>(n) - 1));
        if (from == to)
            continue;
        std::vector<double> g = f;
        const double delta =
            std::min(g[from],
                     static_cast<double>(rnd(1, 100)) / 1000.0);
        g[from] -= delta;
        g[to] += delta;
        EXPECT_LE(deliveredBandwidth(b, g), sum * (1.0 + 1e-12))
            << "trial " << trial;
    }
}

TEST_P(NSourceFuzz, DuplicateSourcesSplitEvenly)
{
    Lcg rnd(static_cast<std::uint64_t>(GetParam()) + 500);
    for (int trial = 0; trial < 100; ++trial) {
        const double bw = static_cast<double>(rnd(1, 10'000)) / 10.0;
        const std::size_t n = static_cast<std::size_t>(rnd(3, 5));
        const std::vector<double> b(n, bw);
        const auto f = optimalFractions(b);
        for (double fi : f)
            EXPECT_NEAR(fi, 1.0 / static_cast<double>(n), 1e-12);
        EXPECT_NEAR(deliveredBandwidth(b, f),
                    bw * static_cast<double>(n),
                    1e-9 * bw * static_cast<double>(n));
    }
}

TEST(BandwidthModel, ZeroBandwidthSourceGetsZeroFraction)
{
    // A dead source is legal input to optimalFractions (the remote
    // tier before enablement): it just receives no traffic, with no
    // division by zero anywhere.
    const auto f = optimalFractions({102.4, 38.4, 0.0});
    EXPECT_NEAR(f[0], 102.4 / 140.8, 1e-12);
    EXPECT_NEAR(f[1], 38.4 / 140.8, 1e-12);
    EXPECT_EQ(f[2], 0.0);
    // The live sources still deliver the live sum at that split.
    EXPECT_NEAR(deliveredBandwidth({102.4, 38.4}, {f[0], f[1]}), 140.8,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NSourceFuzz, ::testing::Range(1, 6));

/** Property: delivered bandwidth is monotone in each source bandwidth. */
class BandwidthMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(BandwidthMonotone, MoreBandwidthNeverHurts)
{
    const double f1 = GetParam();
    const std::vector<double> f{f1, 1.0 - f1};
    const double base = deliveredBandwidth({50.0, 40.0}, f);
    EXPECT_GE(deliveredBandwidth({60.0, 40.0}, f) + 1e-12, base);
    EXPECT_GE(deliveredBandwidth({50.0, 48.0}, f) + 1e-12, base);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BandwidthMonotone,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

} // namespace
} // namespace dapsim::bwmodel
