/**
 * @file
 * Unit tests for the SRAM tag cache (MS$ metadata filter).
 */

#include <gtest/gtest.h>

#include "cache/tag_cache.hh"

namespace dapsim
{
namespace
{

TagCacheConfig
smallConfig()
{
    TagCacheConfig c;
    c.entries = 16;
    c.ways = 4;
    return c;
}

TEST(TagCache, FirstAccessMissesThenHits)
{
    TagCache tc(smallConfig());
    EXPECT_FALSE(tc.access(3).hit);
    EXPECT_TRUE(tc.access(3).hit);
    EXPECT_EQ(tc.hits.value(), 1u);
    EXPECT_EQ(tc.misses.value(), 1u);
}

TEST(TagCache, ContainsDoesNotAllocate)
{
    TagCache tc(smallConfig());
    EXPECT_FALSE(tc.contains(7));
    EXPECT_FALSE(tc.contains(7));
    EXPECT_FALSE(tc.access(7).hit); // still a miss: probe didn't allocate
}

TEST(TagCache, DirtyEvictionRequiresWriteback)
{
    TagCacheConfig c;
    c.entries = 4; // 1 set x 4 ways
    c.ways = 4;
    TagCache tc(c);
    tc.access(0);
    tc.markDirty(0);
    // Fill the set and overflow it.
    tc.access(1);
    tc.access(2);
    tc.access(3);
    bool saw_writeback = false;
    for (std::uint64_t s = 4; s < 8; ++s)
        saw_writeback |= tc.access(s).writebackNeeded;
    EXPECT_TRUE(saw_writeback);
    EXPECT_GE(tc.writebacks.value(), 1u);
}

TEST(TagCache, CleanEvictionNeedsNoWriteback)
{
    TagCacheConfig c;
    c.entries = 4;
    c.ways = 4;
    TagCache tc(c);
    for (std::uint64_t s = 0; s < 12; ++s)
        EXPECT_FALSE(tc.access(s).writebackNeeded) << s;
    EXPECT_EQ(tc.writebacks.value(), 0u);
}

TEST(TagCache, MarkDirtyOnAbsentEntryIsIgnored)
{
    TagCache tc(smallConfig());
    tc.markDirty(99); // not resident: no crash, no effect
    EXPECT_FALSE(tc.contains(99));
}

TEST(TagCache, DisabledAlwaysMisses)
{
    TagCacheConfig c = smallConfig();
    c.enabled = false;
    TagCache tc(c);
    EXPECT_FALSE(tc.access(1).hit);
    EXPECT_FALSE(tc.access(1).hit);
    EXPECT_EQ(tc.missRatio(), 1.0);
}

TEST(TagCache, MissRatioTracksCounts)
{
    TagCache tc(smallConfig());
    tc.access(1); // miss
    tc.access(1); // hit
    tc.access(1); // hit
    tc.access(2); // miss
    EXPECT_NEAR(tc.missRatio(), 0.5, 1e-12);
}

TEST(TagCache, CapacityThrashingRaisesMissRatio)
{
    TagCache tc(smallConfig()); // 16 entries
    // Cycle through 64 distinct sets twice: everything misses.
    for (int round = 0; round < 2; ++round)
        for (std::uint64_t s = 0; s < 64; ++s)
            tc.access(s * 16); // same tag-cache set, distinct tags
    EXPECT_GT(tc.missRatio(), 0.9);
}

} // namespace
} // namespace dapsim
