/**
 * @file
 * Unit tests for the comparison policies: SBD / SBD-WT, BATMAN, BEAR.
 */

#include <gtest/gtest.h>

#include "policies/batman.hh"
#include "policies/bear.hh"
#include "policies/sbd.hh"

namespace dapsim
{
namespace
{

// ---------------------------------------------------------- SBD ----

SbdConfig
sbdConfig()
{
    SbdConfig c;
    c.dirtyListCapacity = 4;
    c.writeThreshold = 3;
    return c;
}

TEST(Sbd, HotWrittenPagesEnterDirtyList)
{
    SbdPolicy sbd(sbdConfig());
    const Addr page = 0x10000;
    EXPECT_FALSE(sbd.inDirtyList(page));
    for (int i = 0; i < 3; ++i)
        sbd.noteWrite(page + static_cast<Addr>(i) * 64);
    EXPECT_TRUE(sbd.inDirtyList(page));
}

TEST(Sbd, NonDirtyPagesAreWriteThrough)
{
    SbdPolicy sbd(sbdConfig());
    EXPECT_TRUE(sbd.shouldWriteThrough(0x555000));
    for (int i = 0; i < 5; ++i)
        sbd.noteWrite(0x555000);
    EXPECT_FALSE(sbd.shouldWriteThrough(0x555000));
}

TEST(Sbd, DirtyListPagesNeverSteerToMemory)
{
    SbdPolicy sbd(sbdConfig());
    for (int i = 0; i < 5; ++i)
        sbd.noteWrite(0x2000);
    SteerInfo fast_mem;
    fast_mem.predictedHit = true;
    fast_mem.expectedCacheLatency = 1000.0;
    fast_mem.expectedMemLatency = 10.0;
    EXPECT_FALSE(sbd.steerToMemory(0x2000, fast_mem));
}

TEST(Sbd, PredictedMissesSteerToMemory)
{
    SbdPolicy sbd(sbdConfig());
    SteerInfo info;
    info.predictedHit = false;
    info.expectedCacheLatency = 10.0;
    info.expectedMemLatency = 1000.0;
    EXPECT_TRUE(sbd.steerToMemory(0x9000, info));
}

TEST(Sbd, LatencyComparisonSteersPredictedHits)
{
    SbdPolicy sbd(sbdConfig());
    SteerInfo info;
    info.predictedHit = true;
    info.expectedCacheLatency = 500.0;
    info.expectedMemLatency = 100.0;
    EXPECT_TRUE(sbd.steerToMemory(0x9000, info));
    info.expectedMemLatency = 900.0;
    EXPECT_FALSE(sbd.steerToMemory(0x9000, info));
}

TEST(Sbd, DirtyListOverflowForcesCleaning)
{
    SbdPolicy sbd(sbdConfig()); // capacity 4
    for (Addr p = 0; p < 5; ++p)
        for (int i = 0; i < 5; ++i)
            sbd.noteWrite(p * 4096);
    const auto cleans = sbd.collectCleaningRequests();
    ASSERT_EQ(cleans.size(), 1u);
    EXPECT_EQ(cleans[0], 0u); // the LRU page (page 0) fell out
    EXPECT_EQ(sbd.pagesCleaned.value(), 1u);
    // The queue is drained by collection.
    EXPECT_TRUE(sbd.collectCleaningRequests().empty());
}

TEST(Sbd, WriteThroughVariantNeverCleans)
{
    SbdConfig c = sbdConfig();
    c.writeThroughOnly = true;
    SbdPolicy sbd(c);
    for (Addr p = 0; p < 10; ++p)
        for (int i = 0; i < 5; ++i)
            sbd.noteWrite(p * 4096);
    EXPECT_TRUE(sbd.collectCleaningRequests().empty());
    EXPECT_EQ(sbd.pagesCleaned.value(), 0u);
    EXPECT_STREQ(sbd.name(), "sbd-wt");
}

TEST(Sbd, RewritingKeepsPageResident)
{
    SbdPolicy sbd(sbdConfig());
    for (int i = 0; i < 5; ++i)
        sbd.noteWrite(0); // page 0 hot
    for (Addr p = 1; p < 4; ++p)
        for (int i = 0; i < 5; ++i)
            sbd.noteWrite(p * 4096);
    for (int i = 0; i < 5; ++i)
        sbd.noteWrite(0); // re-touch page 0 to MRU
    for (int i = 0; i < 5; ++i)
        sbd.noteWrite(4 * 4096); // evicts page 1, not page 0
    EXPECT_TRUE(sbd.inDirtyList(0));
    EXPECT_FALSE(sbd.inDirtyList(1 * 4096));
}

// -------------------------------------------------------- BATMAN ----

BatmanConfig
batmanConfig()
{
    BatmanConfig c;
    c.numSets = 1024;
    c.targetHitRate = 0.73;
    c.hysteresis = 0.02;
    c.epochWindows = 4;
    c.stepFraction = 1.0 / 64.0;
    return c;
}

WindowCounters
windowWithHitRate(double rate)
{
    WindowCounters w;
    w.lookups = 1000;
    w.hits = static_cast<std::uint64_t>(1000 * rate);
    return w;
}

TEST(Batman, DisablesSetsWhenHitRateTooHigh)
{
    BatmanPolicy bat(batmanConfig());
    EXPECT_EQ(bat.disabledSets(), 0u);
    for (int i = 0; i < 4; ++i)
        bat.beginWindow(windowWithHitRate(0.95));
    EXPECT_EQ(bat.disabledSets(), 16u); // one step = 1024/64
    const auto flush = bat.collectSetsToFlush();
    EXPECT_EQ(flush.size(), 16u);
    EXPECT_EQ(bat.adjustmentsUp.value(), 1u);
}

TEST(Batman, ReenablesWhenHitRateTooLow)
{
    BatmanPolicy bat(batmanConfig());
    for (int i = 0; i < 4; ++i)
        bat.beginWindow(windowWithHitRate(0.95));
    for (int i = 0; i < 4; ++i)
        bat.beginWindow(windowWithHitRate(0.40));
    EXPECT_EQ(bat.disabledSets(), 0u);
    EXPECT_EQ(bat.adjustmentsDown.value(), 1u);
}

TEST(Batman, InBandHitRateHolds)
{
    BatmanPolicy bat(batmanConfig());
    for (int i = 0; i < 16; ++i)
        bat.beginWindow(windowWithHitRate(0.73));
    EXPECT_EQ(bat.disabledSets(), 0u);
}

TEST(Batman, DisabledFractionIsCapped)
{
    BatmanConfig c = batmanConfig();
    c.maxDisabledFraction = 0.25;
    BatmanPolicy bat(c);
    for (int i = 0; i < 4000; ++i)
        bat.beginWindow(windowWithHitRate(0.99));
    EXPECT_LE(bat.disabledSets(), 256u);
}

TEST(Batman, DisabledSetsMatchPredicate)
{
    BatmanPolicy bat(batmanConfig());
    for (int i = 0; i < 4; ++i)
        bat.beginWindow(windowWithHitRate(0.95));
    std::uint64_t n = 0;
    for (std::uint64_t s = 0; s < 1024; ++s)
        if (bat.isSetDisabled(s))
            ++n;
    EXPECT_EQ(n, bat.disabledSets());
}

TEST(Batman, EmptyEpochIsIgnored)
{
    BatmanPolicy bat(batmanConfig());
    WindowCounters idle;
    for (int i = 0; i < 16; ++i)
        bat.beginWindow(idle);
    EXPECT_EQ(bat.disabledSets(), 0u);
}

// ---------------------------------------------------------- BEAR ----

TEST(Bear, NoReuseRegionsGetBypassed)
{
    BearConfig c;
    c.bypassProbability = 1.0;
    BearPolicy bear(c);
    const Addr region = 0x7000;
    // Train the region as never reused.
    for (int i = 0; i < 8; ++i)
        bear.noteReadOutcome(region, false);
    EXPECT_TRUE(bear.shouldBypassFillForReuse(region));
    EXPECT_GE(bear.bypasses.value(), 1u);
}

TEST(Bear, ReusedRegionsKeepFilling)
{
    BearConfig c;
    c.bypassProbability = 1.0;
    BearPolicy bear(c);
    const Addr region = 0x8000;
    for (int i = 0; i < 8; ++i)
        bear.noteReadOutcome(region, true);
    EXPECT_FALSE(bear.shouldBypassFillForReuse(region));
}

TEST(Bear, StartsNeutral)
{
    BearConfig c;
    c.bypassProbability = 1.0;
    BearPolicy bear(c);
    // Initial confidence (2) means "fill" until misses accumulate.
    EXPECT_FALSE(bear.shouldBypassFillForReuse(0x1234000));
}

TEST(Bear, BypassIsProbabilistic)
{
    BearConfig c;
    c.bypassProbability = 0.5;
    BearPolicy bear(c);
    for (int i = 0; i < 8; ++i)
        bear.noteReadOutcome(0, false);
    int bypassed = 0;
    for (int i = 0; i < 2000; ++i)
        if (bear.shouldBypassFillForReuse(0))
            ++bypassed;
    EXPECT_NEAR(bypassed, 1000, 120);
}

TEST(PartitionPolicy, BaselineDefaultsAreAllNoOps)
{
    BaselinePolicy base;
    EXPECT_FALSE(base.shouldBypassFill(0));
    EXPECT_FALSE(base.shouldBypassWrite(0));
    EXPECT_FALSE(base.shouldForceReadMiss(0));
    EXPECT_FALSE(base.shouldSpeculateToMemory(0));
    EXPECT_FALSE(base.shouldWriteThrough(0));
    EXPECT_FALSE(base.isSetDisabled(0));
    EXPECT_FALSE(base.steerToMemory(0, SteerInfo{}));
    EXPECT_TRUE(base.collectCleaningRequests().empty());
    EXPECT_TRUE(base.collectSetsToFlush().empty());
    EXPECT_STREQ(base.name(), "baseline");
}

} // namespace
} // namespace dapsim
