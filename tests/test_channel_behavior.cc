/**
 * @file
 * Behaviour tests for the DRAM channel scheduler: write batching,
 * opportunistic drains, turnaround charging, and bus gap-filling.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"

namespace dapsim
{
namespace
{

TEST(ChannelBehavior, OpportunisticWritesDrainWhenReadsIdle)
{
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    for (int i = 0; i < 8; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, true);
    eq.run();
    // Below the high watermark but no reads: everything drains.
    EXPECT_EQ(mem.casWrites(), 8u);
    EXPECT_EQ(mem.totalWriteQueue(), 0u);
}

TEST(ChannelBehavior, ReadsPreemptWritesBelowWatermark)
{
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    // A handful of writes, then a read right behind them.
    std::vector<Tick> order;
    for (int i = 0; i < 4; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, true,
                   [&order, &eq] { order.push_back(eq.now()); });
    Tick read_done = 0;
    mem.access(1 * kMiB, false, [&] { read_done = eq.now(); });
    eq.run();
    ASSERT_EQ(order.size(), 4u);
    // The read finishes before the last write completes (writes are
    // not a blocking batch when under the watermark).
    EXPECT_LT(read_done, order.back() + 1);
}

TEST(ChannelBehavior, HighWatermarkForcesDrain)
{
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    cfg.writeQueueHigh = 8;
    cfg.writeQueueLow = 2;
    DramSystem mem(eq, cfg);
    int writes_done = 0;
    for (int i = 0; i < 12; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, true,
                   [&] { ++writes_done; });
    // A stream of reads that would otherwise starve the writes.
    for (int i = 0; i < 64; ++i)
        mem.access(1 * kMiB + static_cast<Addr>(i) * kBlockBytes,
                   false);
    eq.run();
    EXPECT_EQ(writes_done, 12);
}

TEST(ChannelBehavior, TurnaroundChargedOnDirectionFlip)
{
    // Issue strictly serialized read/write pairs so write batching
    // cannot coalesce them: every access must flip the bus direction.
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    int i = 0;
    std::function<void()> step = [&] {
        if (i >= 16)
            return;
        const bool write = (i % 2) != 0;
        ++i;
        mem.access(static_cast<Addr>(i) * kBlockBytes, write, step);
    };
    step();
    eq.run();
    EXPECT_GE(mem.channel(0).turnarounds.value(), 8u);
}

TEST(ChannelBehavior, NoTurnaroundsOnUniformDirection)
{
    EventQueue eq;
    DramConfig cfg = presets::edram_dir_51();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    for (int i = 0; i < 32; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, false);
    eq.run();
    // turnaroundCycles = 0 for eDRAM; and a read-only stream flips at
    // most once from the initial state.
    EXPECT_LE(mem.channel(0).turnarounds.value(), 1u);
}

TEST(ChannelBehavior, BankParallelismBeatsSingleBankConflicts)
{
    // N row-conflicting accesses to ONE bank vs N spread over banks:
    // the spread case must finish much earlier (bank prep overlap).
    auto run = [](bool spread) {
        EventQueue eq;
        DramConfig cfg = presets::hbm_102();
        cfg.channels = 1;
        DramSystem mem(eq, cfg);
        const std::uint64_t cols = cfg.blocksPerRow();
        const std::uint64_t banks = cfg.banksPerRank;
        int done = 0;
        for (std::uint64_t i = 0; i < 32; ++i) {
            // Same bank, different row (conflict) vs different banks.
            const std::uint64_t bank = spread ? i % banks : 0;
            const std::uint64_t row = i;
            const std::uint64_t blk = (row * banks + bank) * cols;
            mem.access(blk * kBlockBytes, false, [&] { ++done; });
        }
        eq.runUntil([&] { return done == 32; });
        return eq.now();
    };
    EXPECT_LT(run(true) * 2, run(false));
}

TEST(ChannelBehavior, DemandReadsJumpAheadOfLowPriority)
{
    // A backlog of low-priority (prefetch-fill) reads must not delay a
    // later demand read: demands always scan ahead of queued lows.
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    cfg.schedulerScanDepth = 1; // pure FIFO visit order per class
    DramSystem mem(eq, cfg);

    // Everything in one row of one bank (consecutive blocks), so bus
    // placement cannot reorder across banks: completion order is
    // exactly issue order, which isolates the queue-visit order.
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, false,
                   [&order, i] { order.push_back(100 + i); }, 0,
                   /*low_priority=*/true);
    mem.access(16 * kBlockBytes, false, [&order] { order.push_back(0); });
    eq.run();

    ASSERT_EQ(order.size(), 17u);
    // The demand completes first even though it arrived last...
    EXPECT_EQ(order.front(), 0);
    // ...and the low-priority FIFO order is preserved behind it.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], 100 + i);
}

TEST(ChannelBehavior, LowPriorityStillDrainsWhenNoDemands)
{
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    int done = 0;
    for (int i = 0; i < 8; ++i)
        mem.access(static_cast<Addr>(i) * kBlockBytes, false,
                   [&done] { ++done; }, 0, /*low_priority=*/true);
    eq.run();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(mem.totalReadQueue(), 0u);
}

TEST(ChannelBehavior, QueueLengthVisibleWhileBacklogged)
{
    EventQueue eq;
    DramConfig cfg = presets::ddr4_2400();
    cfg.channels = 1;
    DramSystem mem(eq, cfg);
    for (int i = 0; i < 64; ++i)
        mem.access(static_cast<Addr>(i * 977) * kBlockBytes, false);
    EXPECT_EQ(mem.totalReadQueue(), 64u);
    eq.run();
    EXPECT_EQ(mem.totalReadQueue(), 0u);
}

} // namespace
} // namespace dapsim
