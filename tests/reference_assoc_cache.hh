/**
 * @file
 * Reference set-associative directory: the original AoS implementation.
 *
 * This is the pre-SoA `AssocCache` implementation, frozen verbatim as
 * the behavioural oracle for the data-layout rewrite. The differential
 * fuzz test (test_assoc_cache_diff.cc) replays randomized access
 * streams through this array-of-structures directory and the
 * production SoA one and asserts identical hits, victims, occupancy
 * and v1 checkpoint bytes; bench/kernel_events.cpp uses it as the
 * "before" side of the per-access microbenchmarks.
 *
 * Do not optimise or otherwise modify this type: its value is that it
 * implements the replacement contract (invalid-way-first, NRU
 * clear-on-saturation, LRU with lowest-way-wins ties) in the most
 * obviously correct way.
 */

#ifndef DAPSIM_TESTS_REFERENCE_ASSOC_CACHE_HH
#define DAPSIM_TESTS_REFERENCE_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/assoc_cache.hh" // ReplPolicy
#include "ckpt/serializer.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace dapsim
{

/**
 * Array-of-structures set-associative tag directory (reference).
 *
 * @tparam Value per-line metadata (dirty bits, sector bitmaps, ...).
 */
template <typename Value>
class RefAssocCache
{
  public:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool nruRef = false;
        std::uint64_t lastUse = 0;
        Value value{};
    };

    RefAssocCache(std::uint64_t sets, std::uint32_t ways,
                  ReplPolicy policy = ReplPolicy::LRU)
        : sets_(sets), ways_(ways), policy_(policy),
          lines_(sets * ways)
    {
        if (sets == 0 || ways == 0)
            fatal("RefAssocCache: zero geometry");
    }

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** Find a line; returns nullptr on miss. Does not update recency. */
    Value *
    find(std::uint64_t set, std::uint64_t tag)
    {
        Line *l = findLine(set, tag);
        return l ? &l->value : nullptr;
    }

    const Value *
    find(std::uint64_t set, std::uint64_t tag) const
    {
        auto *self = const_cast<RefAssocCache *>(this);
        return self->find(set, tag);
    }

    /** Mark a resident line as recently used. */
    void
    touch(std::uint64_t set, std::uint64_t tag)
    {
        Line *l = findLine(set, tag);
        if (l == nullptr)
            return;
        l->nruRef = true;
        l->lastUse = ++useClock_;
        // NRU: when every line in the set is referenced, clear the
        // others so a victim always exists.
        if (policy_ == ReplPolicy::NRU && allReferenced(set)) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                Line &o = at(set, w);
                if (&o != l)
                    o.nruRef = false;
            }
        }
    }

    /** Evicted-line report from insert(). */
    struct Victim
    {
        bool valid = false;
        std::uint64_t tag = 0;
        Value value{};
    };

    /**
     * Insert a line (must not already be resident); returns the victim.
     * The new line is marked most-recently-used.
     */
    Victim
    insert(std::uint64_t set, std::uint64_t tag, Value v)
    {
        if (findLine(set, tag) != nullptr)
            panic("RefAssocCache: duplicate insert");
        Line &slot = victimLine(set);
        Victim out;
        if (slot.valid) {
            out.valid = true;
            out.tag = slot.tag;
            out.value = std::move(slot.value);
        }
        slot.tag = tag;
        slot.valid = true;
        slot.value = std::move(v);
        slot.nruRef = false; // inserted lines start not-recently-used (NRU)
        slot.lastUse = ++useClock_;
        if (policy_ == ReplPolicy::LRU)
            slot.nruRef = true;
        return out;
    }

    /** Remove a line if present. @return true if it was resident. */
    bool
    erase(std::uint64_t set, std::uint64_t tag)
    {
        Line *l = findLine(set, tag);
        if (l == nullptr)
            return false;
        l->valid = false;
        l->nruRef = false;
        return true;
    }

    /** Invalidate an entire set, invoking @p fn on each valid line. */
    void
    flushSet(std::uint64_t set,
             const std::function<void(std::uint64_t, Value &)> &fn)
    {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Line &l = at(set, w);
            if (l.valid) {
                fn(l.tag, l.value);
                l.valid = false;
                l.nruRef = false;
            }
        }
    }

    /** Visit every valid line (tests, flushes). */
    void
    forEach(const std::function<void(std::uint64_t, std::uint64_t,
                                     Value &)> &fn)
    {
        for (std::uint64_t s = 0; s < sets_; ++s)
            for (std::uint32_t w = 0; w < ways_; ++w) {
                Line &l = at(s, w);
                if (l.valid)
                    fn(s, l.tag, l.value);
            }
    }

    /** Number of valid lines in a set. */
    std::uint32_t
    occupancy(std::uint64_t set) const
    {
        std::uint32_t n = 0;
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (at(set, w).valid)
                ++n;
        return n;
    }

    /** v1 checkpoint encode — identical layout to the production
     *  directory's v1 save (see assoc_cache.hh). */
    template <typename SaveValue>
    void
    save(ckpt::Serializer &s, SaveValue &&save_value) const
    {
        s.u64(sets_);
        s.u32(ways_);
        s.u32(static_cast<std::uint32_t>(policy_));
        s.u64(useClock_);
        for (const Line &l : lines_) {
            s.u64(l.tag);
            s.boolean(l.valid);
            s.boolean(l.nruRef);
            s.u64(l.lastUse);
            save_value(s, l.value);
        }
    }

    template <typename RestoreValue>
    void
    restore(ckpt::Deserializer &d, RestoreValue &&restore_value)
    {
        if (d.u64() != sets_ || d.u32() != ways_ ||
            d.u32() != static_cast<std::uint32_t>(policy_))
            throw ckpt::CkptError(
                "ckpt: cache directory geometry mismatch");
        useClock_ = d.u64();
        for (Line &l : lines_) {
            l.tag = d.u64();
            l.valid = d.boolean();
            l.nruRef = d.boolean();
            l.lastUse = d.u64();
            restore_value(d, l.value);
        }
    }

  private:
    Line &
    at(std::uint64_t set, std::uint32_t way)
    {
        return lines_[set * ways_ + way];
    }

    const Line &
    at(std::uint64_t set, std::uint32_t way) const
    {
        return lines_[set * ways_ + way];
    }

    Line *
    findLine(std::uint64_t set, std::uint64_t tag)
    {
        if (set >= sets_)
            panic("RefAssocCache: set out of range");
        for (std::uint32_t w = 0; w < ways_; ++w) {
            Line &l = at(set, w);
            if (l.valid && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    bool
    allReferenced(std::uint64_t set) const
    {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Line &l = at(set, w);
            if (l.valid && !l.nruRef)
                return false;
        }
        return true;
    }

    Line &
    victimLine(std::uint64_t set)
    {
        // Invalid line first.
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (!at(set, w).valid)
                return at(set, w);
        if (policy_ == ReplPolicy::NRU) {
            for (std::uint32_t w = 0; w < ways_; ++w)
                if (!at(set, w).nruRef)
                    return at(set, w);
            // All referenced: clear and take way 0.
            for (std::uint32_t w = 0; w < ways_; ++w)
                at(set, w).nruRef = false;
            return at(set, 0);
        }
        // LRU; strict < keeps the lowest way on lastUse ties.
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (at(set, w).lastUse < oldest) {
                oldest = at(set, w).lastUse;
                victim = w;
            }
        }
        return at(set, victim);
    }

    std::uint64_t sets_;
    std::uint32_t ways_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_TESTS_REFERENCE_ASSOC_CACHE_HH
