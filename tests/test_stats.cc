/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace dapsim
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SetOverwrites)
{
    Counter c;
    c.set(123);
    EXPECT_EQ(c.value(), 123u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_NEAR(a.mean(), 5.0, 1e-12);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_NEAR(a.sum(), 15.0, 1e-12);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 10);
    h.sample(0.5);  // bucket 0
    h.sample(5.5);  // bucket 5
    h.sample(9.99); // bucket 9
    h.sample(25.0); // overflow -> last bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
    EXPECT_EQ(h.buckets()[9], 2u);
    EXPECT_NEAR(h.mean(), (0.5 + 5.5 + 9.99 + 25.0) / 4, 1e-9);
}

TEST(StatGroup, DumpsNamedRows)
{
    Counter c;
    c.inc(7);
    Average a;
    a.sample(2.0);
    StatGroup g("mem");
    g.addCounter("reads", &c);
    g.addAverage("latency", &a);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "mem.reads 7\nmem.latency 2\n");
}

TEST(StatGroup, LookupByName)
{
    Counter c;
    c.inc(3);
    Average a;
    a.sample(1.5);
    StatGroup g("x");
    g.addCounter("c", &c);
    g.addAverage("a", &a);
    EXPECT_EQ(g.counterValue("c"), 3u);
    EXPECT_NEAR(g.averageValue("a"), 1.5, 1e-12);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_EQ(g.averageValue("missing"), 0.0);
}

} // namespace
} // namespace dapsim
