/**
 * @file
 * Cross-validation tests: the timing simulator against the Section III
 * analytical model, and trace-file replay against the synthetic
 * generators it was exported from.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "dap/bandwidth_model.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "trace/trace_file.hh"
#include "xval_util.hh"

namespace dapsim
{
namespace
{

TEST(CrossValidation, DramStreamThroughputNearPeakForEveryPreset)
{
    // The timing model's streaming throughput must approach each
    // preset's advertised peak (the number DAP's window budgets use).
    for (const auto &cfg :
         {presets::ddr4_2400(), presets::ddr4_3200(),
          presets::hbm_102(), presets::hbm_205(),
          presets::edram_dir_51()}) {
        EventQueue eq;
        DramSystem mem(eq, cfg);
        const int n = 4096;
        int done = 0;
        for (Addr a = 0; a < n * static_cast<Addr>(kBlockBytes);
             a += kBlockBytes)
            mem.access(a, false, [&] { ++done; });
        eq.runUntil([&] { return done == n; });
        const double seconds =
            static_cast<double>(eq.now()) / kPsPerSecond;
        const double gbps = n * 64.0 / seconds / 1e9;
        EXPECT_GT(gbps, 0.65 * cfg.peakGBps()) << cfg.name;
        EXPECT_LE(gbps, cfg.peakGBps() * 1.001) << cfg.name;
    }
}

TEST(CrossValidation, TwoSourceDeliveredBandwidthMatchesEquationTwo)
{
    // Drive two DRAM systems with a fixed access split and check the
    // combined delivered bandwidth against Eq 2 within the efficiency
    // envelope.
    EventQueue eq;
    DramSystem fast(eq, presets::hbm_102());
    DramSystem slow(eq, presets::ddr4_2400());
    const int n = 6000;
    const double f_fast = 0.727; // the optimal split
    const double gbps = xval::measureSplitGBps(
        eq, {xval::dramIssuer(fast), xval::dramIssuer(slow)},
        {f_fast, 1.0 - f_fast}, n, 5);
    const double ideal = bwmodel::deliveredBandwidth(
        {102.4, 38.4}, {f_fast, 1.0 - f_fast});
    // Above 60% of the analytic optimum and never above it.
    EXPECT_GT(gbps, 0.6 * ideal);
    EXPECT_LT(gbps, ideal * 1.001);
}

TEST(CrossValidation, UnbalancedSplitDeliversLess)
{
    auto measure = [](double f_fast) {
        EventQueue eq;
        DramSystem fast(eq, presets::hbm_102());
        DramSystem slow(eq, presets::ddr4_2400());
        return xval::measureSplitGBps(
            eq, {xval::dramIssuer(fast), xval::dramIssuer(slow)},
            {f_fast, 1.0 - f_fast}, 4000, 7);
    };
    // Sending everything to the slow source is far worse than the
    // optimal split — the motivating inequality of the whole paper.
    EXPECT_GT(measure(0.727), 1.5 * measure(0.0));
}

TEST(CrossValidation, TraceReplayMatchesGeneratorTiming)
{
    // Exporting a synthetic stream to a trace file and replaying it
    // must produce the exact same simulation (addresses, gaps and
    // types are preserved byte-for-byte).
    WorkloadProfile w = workloadByName("gobmk.score2");
    w.params.footprintBytes = 512 * kKiB;

    SystemConfig cfg = presets::sectoredSystem8();
    cfg.numCores = 2;
    cfg.sectored.capacityBytes = 4 * kMiB;
    cfg.core.instructions = 5'000;
    cfg.warmupAccessesPerCore = 2'000;

    // Export one core's stream.
    auto gen = makeGenerator(w, 0);
    std::vector<TraceRequest> recs;
    TraceRequest r;
    for (int i = 0; i < 40'000; ++i) {
        gen->next(r);
        recs.push_back(r);
    }
    const std::string path =
        (std::filesystem::temp_directory_path() / "xval.trace")
            .string();
    writeTraceFile(path, recs);

    auto runWith = [&](bool from_file) {
        std::vector<AccessGeneratorPtr> gens;
        for (std::uint32_t i = 0; i < cfg.numCores; ++i) {
            if (from_file)
                gens.push_back(std::make_unique<TraceFileGenerator>(
                    path, static_cast<Addr>(i) << 40));
            else {
                auto g = makeGenerator(w, 0);
                // Rebase manually to mirror the trace-file offsets.
                std::vector<TraceRequest> rs;
                TraceRequest t;
                for (int k = 0; k < 40'000; ++k) {
                    g->next(t);
                    rs.push_back(t);
                }
                gens.push_back(std::make_unique<TraceFileGenerator>(
                    rs, static_cast<Addr>(i) << 40));
            }
        }
        System sys(cfg, std::move(gens));
        sys.warmup(cfg.warmupAccessesPerCore);
        sys.run();
        return sys.eventQueue().now();
    };

    EXPECT_EQ(runWith(true), runWith(false));
    std::filesystem::remove(path);
}

} // namespace
} // namespace dapsim
