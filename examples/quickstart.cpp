/**
 * @file
 * Quickstart: build the paper's default eight-core system, run one
 * bandwidth-sensitive rate-8 mix under the baseline and under DAP, and
 * print the headline numbers.
 *
 * Usage: quickstart [workload-name] [instructions-per-core]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/presets.hh"
#include "sim/runner.hh"

using namespace dapsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t instr =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                 : presets::kBenchInstructions;

    const WorkloadProfile &w = workloadByName(name);
    const Mix mix = rateMix(w, 8);

    SystemConfig base = presets::sectoredSystem8();
    base.policy = PolicyKind::Baseline;
    SystemConfig dap = base;
    dap.policy = PolicyKind::Dap;

    std::printf("dapsim quickstart: %s rate-8, %llu instr/core\n",
                name.c_str(), static_cast<unsigned long long>(instr));

    const RunResult rb = runMix(base, mix, instr);
    const RunResult rd = runMix(dap, mix, instr);

    std::printf("\n%-28s %12s %12s\n", "metric", "baseline", "dap");
    std::printf("%-28s %12.3f %12.3f\n", "throughput (sum IPC)",
                rb.throughput(), rd.throughput());
    std::printf("%-28s %12.3f %12.3f\n", "MS$ hit ratio",
                rb.msHitRatio, rd.msHitRatio);
    std::printf("%-28s %12.3f %12.3f\n", "MM CAS fraction",
                rb.mmCasFraction, rd.mmCasFraction);
    std::printf("%-28s %12.1f %12.1f\n", "L3 read-miss latency (ns)",
                rb.avgL3ReadMissLatency / 1000.0,
                rd.avgL3ReadMissLatency / 1000.0);
    std::printf("%-28s %12.2f %12.2f\n", "L3 MPKI", rb.l3Mpki,
                rd.l3Mpki);
    std::printf("%-28s %12.3f %12.3f\n", "tag cache miss ratio",
                rb.tagCacheMissRatio, rd.tagCacheMissRatio);
    std::printf("\nDAP speedup: %.3fx\n",
                rd.throughput() / rb.throughput());
    std::printf("DAP decisions: FWB %llu, WB %llu, IFRM %llu, SFRM %llu\n",
                static_cast<unsigned long long>(rd.fwb),
                static_cast<unsigned long long>(rd.wb),
                static_cast<unsigned long long>(rd.ifrm),
                static_cast<unsigned long long>(rd.sfrm));
    return 0;
}
