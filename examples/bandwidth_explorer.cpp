/**
 * @file
 * Example: explore the Section III analytical bandwidth model.
 *
 * Prints delivered-bandwidth curves for arbitrary source sets and the
 * Figure 1 read-kernel curves, showing where the optimal partition
 * lies and what each hit rate delivers. Pure analytical — no
 * simulation — so it runs instantly.
 */

#include <cstdio>
#include <vector>

#include "dap/bandwidth_model.hh"

using namespace dapsim;

int
main()
{
    std::printf("two-source system: cache 102.4 GB/s, memory 38.4 GB/s\n");
    std::printf("%-12s %14s\n", "f(cache)", "delivered GB/s");
    for (double f = 0.0; f <= 1.0001; f += 0.1)
        std::printf("%-12.1f %14.1f\n", f,
                    bwmodel::deliveredBandwidth({102.4, 38.4},
                                                {f, 1.0 - f}));
    const auto opt = bwmodel::optimalFractions({102.4, 38.4});
    std::printf("\noptimal split: %.3f / %.3f -> %.1f GB/s (the sum)\n",
                opt[0], opt[1],
                bwmodel::maxDeliveredBandwidth({102.4, 38.4}));
    std::printf("optimal MM access fraction: %.3f\n\n",
                bwmodel::optimalMemoryFraction(102.4, 38.4));

    std::printf("Figure 1 read-kernel curves (GB/s):\n");
    std::printf("%-10s %12s %12s\n", "hit-rate", "DRAM-cache", "eDRAM");
    for (double h = 0.0; h <= 1.0001; h += 0.1)
        std::printf("%-10.1f %12.1f %12.1f\n", h,
                    bwmodel::dramCacheReadKernelBW(h, 102.4, 38.4),
                    bwmodel::edramReadKernelBW(h, 51.2, 38.4));

    std::printf("\nthree-source eDRAM system (51.2R + 51.2W + 38.4):\n");
    std::printf("max delivered: %.1f GB/s at fractions ",
                bwmodel::maxDeliveredBandwidth({51.2, 51.2, 38.4}));
    for (double f : bwmodel::optimalFractions({51.2, 51.2, 38.4}))
        std::printf("%.3f ", f);
    std::printf("\n");
    return 0;
}
