/**
 * @file
 * Example: compare all partitioning policies on one mix.
 *
 * Runs a chosen workload (rate-8) under Baseline, DAP, SBD, SBD-WT
 * and BATMAN on the sectored DRAM cache and prints a side-by-side
 * table of throughput, hit ratio and main-memory CAS fraction.
 *
 * Usage: policy_comparison [workload-name] [instructions-per-core]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/runner.hh"

using namespace dapsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gcc.s04";
    const std::uint64_t instr =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 120'000;

    const Mix mix = rateMix(workloadByName(name), 8);
    const SystemConfig cfg = presets::sectoredSystem8();

    const std::vector<std::pair<const char *, PolicyKind>> policies{
        {"baseline", PolicyKind::Baseline}, {"dap", PolicyKind::Dap},
        {"sbd", PolicyKind::Sbd},           {"sbd-wt", PolicyKind::SbdWt},
        {"batman", PolicyKind::Batman},
    };

    std::printf("policy comparison: %s rate-8, %llu instr/core\n\n",
                name.c_str(), static_cast<unsigned long long>(instr));
    std::printf("%-10s %10s %10s %10s %10s\n", "policy", "tput",
                "speedup", "hit-ratio", "mm-cas");

    double base_tput = 0.0;
    for (const auto &[label, kind] : policies) {
        SystemConfig c = cfg;
        c.policy = kind;
        const RunResult r = runMix(c, mix, instr);
        if (kind == PolicyKind::Baseline)
            base_tput = r.throughput();
        std::printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", label,
                    r.throughput(), r.throughput() / base_tput,
                    r.msHitRatio, r.mmCasFraction);
        std::fflush(stdout);
    }
    return 0;
}
