/**
 * @file
 * Example: define a custom synthetic workload via the public API and
 * evaluate the three memory-side cache architectures under it.
 *
 * Demonstrates the SyntheticParams knobs (footprint, hot region,
 * streaming fraction, spatial run length, write mix, MPKI) and how to
 * assemble a System directly rather than through the mix runner.
 */

#include <cstdio>

#include "sim/presets.hh"
#include "sim/runner.hh"

using namespace dapsim;

namespace
{

/** A pointer-chasing database-like workload: large footprint, small
 *  hot index, low spatial locality, write-heavy. */
WorkloadProfile
makeCustomWorkload()
{
    WorkloadProfile w;
    w.name = "custom-db";
    w.bandwidthSensitive = true;
    w.params.footprintBytes = 12 * kMiB;
    w.params.hotFraction = 0.2;      // the "index"
    w.params.hotProbability = 0.8;
    w.params.streamFraction = 0.1;   // occasional scans
    w.params.runLength = 2.0;        // poor sector utilization
    w.params.writeFraction = 0.35;
    w.params.mpki = 30.0;
    return w;
}

} // namespace

int
main()
{
    const WorkloadProfile w = makeCustomWorkload();
    const Mix mix = rateMix(w, 8);
    const std::uint64_t instr = 100'000;

    std::printf("custom workload '%s': %llu MB footprint, "
                "%.0f%% writes, %.0f MPKI\n\n",
                w.name.c_str(),
                static_cast<unsigned long long>(
                    w.params.footprintBytes / kMiB),
                w.params.writeFraction * 100, w.params.mpki);

    std::printf("%-28s %10s %10s %10s\n", "architecture", "base-tput",
                "dap-tput", "speedup");
    const std::vector<std::pair<const char *, SystemConfig>> systems{
        {"sectored DRAM cache (64MB)", presets::sectoredSystem8()},
        {"Alloy cache (64MB)", presets::alloySystem8()},
        {"sectored eDRAM (4MB)", presets::edramSystem8(4)},
    };
    for (const auto &[label, cfg] : systems) {
        SystemConfig base = cfg;
        base.policy = PolicyKind::Baseline;
        SystemConfig dap = cfg;
        dap.policy = PolicyKind::Dap;
        const RunResult rb = runMix(base, mix, instr);
        const RunResult rd = runMix(dap, mix, instr);
        std::printf("%-28s %10.3f %10.3f %10.3f\n", label,
                    rb.throughput(), rd.throughput(),
                    rd.throughput() / rb.throughput());
        std::fflush(stdout);
    }
    return 0;
}
