# Empty dependencies file for dapsim_tests.
# This may be replaced when dependencies are built.
