
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloy_cache.cc" "tests/CMakeFiles/dapsim_tests.dir/test_alloy_cache.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_alloy_cache.cc.o.d"
  "/root/repo/tests/test_assoc_cache.cc" "tests/CMakeFiles/dapsim_tests.dir/test_assoc_cache.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_assoc_cache.cc.o.d"
  "/root/repo/tests/test_bandwidth_model.cc" "tests/CMakeFiles/dapsim_tests.dir/test_bandwidth_model.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_bandwidth_model.cc.o.d"
  "/root/repo/tests/test_bloom.cc" "tests/CMakeFiles/dapsim_tests.dir/test_bloom.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_bloom.cc.o.d"
  "/root/repo/tests/test_channel_behavior.cc" "tests/CMakeFiles/dapsim_tests.dir/test_channel_behavior.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_channel_behavior.cc.o.d"
  "/root/repo/tests/test_cross_validation.cc" "tests/CMakeFiles/dapsim_tests.dir/test_cross_validation.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_cross_validation.cc.o.d"
  "/root/repo/tests/test_dap_convergence.cc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_convergence.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_convergence.cc.o.d"
  "/root/repo/tests/test_dap_policy.cc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_policy.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_policy.cc.o.d"
  "/root/repo/tests/test_dap_solver.cc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_solver.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_dap_solver.cc.o.d"
  "/root/repo/tests/test_dbc.cc" "tests/CMakeFiles/dapsim_tests.dir/test_dbc.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_dbc.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/dapsim_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_edram_cache.cc" "tests/CMakeFiles/dapsim_tests.dir/test_edram_cache.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_edram_cache.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/dapsim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fixed_ratio.cc" "tests/CMakeFiles/dapsim_tests.dir/test_fixed_ratio.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_fixed_ratio.cc.o.d"
  "/root/repo/tests/test_footprint.cc" "tests/CMakeFiles/dapsim_tests.dir/test_footprint.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_footprint.cc.o.d"
  "/root/repo/tests/test_generators.cc" "tests/CMakeFiles/dapsim_tests.dir/test_generators.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_generators.cc.o.d"
  "/root/repo/tests/test_l3.cc" "tests/CMakeFiles/dapsim_tests.dir/test_l3.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_l3.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/dapsim_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/dapsim_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_prefetcher.cc" "tests/CMakeFiles/dapsim_tests.dir/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_prefetcher.cc.o.d"
  "/root/repo/tests/test_presets.cc" "tests/CMakeFiles/dapsim_tests.dir/test_presets.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_presets.cc.o.d"
  "/root/repo/tests/test_refresh.cc" "tests/CMakeFiles/dapsim_tests.dir/test_refresh.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_refresh.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/dapsim_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_rob_core.cc" "tests/CMakeFiles/dapsim_tests.dir/test_rob_core.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_rob_core.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/dapsim_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_sectored_cache.cc" "tests/CMakeFiles/dapsim_tests.dir/test_sectored_cache.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_sectored_cache.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/dapsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stats_dump.cc" "tests/CMakeFiles/dapsim_tests.dir/test_stats_dump.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_stats_dump.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/dapsim_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tag_cache.cc" "tests/CMakeFiles/dapsim_tests.dir/test_tag_cache.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_tag_cache.cc.o.d"
  "/root/repo/tests/test_trace_file.cc" "tests/CMakeFiles/dapsim_tests.dir/test_trace_file.cc.o" "gcc" "tests/CMakeFiles/dapsim_tests.dir/test_trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_memside.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
