# Empty compiler generated dependencies file for dapsim_cpu.
# This may be replaced when dependencies are built.
