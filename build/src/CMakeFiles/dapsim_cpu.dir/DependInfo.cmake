
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/rob_core.cc" "src/CMakeFiles/dapsim_cpu.dir/cpu/rob_core.cc.o" "gcc" "src/CMakeFiles/dapsim_cpu.dir/cpu/rob_core.cc.o.d"
  "/root/repo/src/cpu/stride_prefetcher.cc" "src/CMakeFiles/dapsim_cpu.dir/cpu/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/dapsim_cpu.dir/cpu/stride_prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
