file(REMOVE_RECURSE
  "CMakeFiles/dapsim_cpu.dir/cpu/rob_core.cc.o"
  "CMakeFiles/dapsim_cpu.dir/cpu/rob_core.cc.o.d"
  "CMakeFiles/dapsim_cpu.dir/cpu/stride_prefetcher.cc.o"
  "CMakeFiles/dapsim_cpu.dir/cpu/stride_prefetcher.cc.o.d"
  "libdapsim_cpu.a"
  "libdapsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
