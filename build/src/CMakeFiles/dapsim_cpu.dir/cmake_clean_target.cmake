file(REMOVE_RECURSE
  "libdapsim_cpu.a"
)
