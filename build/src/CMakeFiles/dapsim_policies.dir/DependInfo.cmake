
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/batman.cc" "src/CMakeFiles/dapsim_policies.dir/policies/batman.cc.o" "gcc" "src/CMakeFiles/dapsim_policies.dir/policies/batman.cc.o.d"
  "/root/repo/src/policies/bear.cc" "src/CMakeFiles/dapsim_policies.dir/policies/bear.cc.o" "gcc" "src/CMakeFiles/dapsim_policies.dir/policies/bear.cc.o.d"
  "/root/repo/src/policies/sbd.cc" "src/CMakeFiles/dapsim_policies.dir/policies/sbd.cc.o" "gcc" "src/CMakeFiles/dapsim_policies.dir/policies/sbd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
