file(REMOVE_RECURSE
  "libdapsim_policies.a"
)
