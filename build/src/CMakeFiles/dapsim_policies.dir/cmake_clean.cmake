file(REMOVE_RECURSE
  "CMakeFiles/dapsim_policies.dir/policies/batman.cc.o"
  "CMakeFiles/dapsim_policies.dir/policies/batman.cc.o.d"
  "CMakeFiles/dapsim_policies.dir/policies/bear.cc.o"
  "CMakeFiles/dapsim_policies.dir/policies/bear.cc.o.d"
  "CMakeFiles/dapsim_policies.dir/policies/sbd.cc.o"
  "CMakeFiles/dapsim_policies.dir/policies/sbd.cc.o.d"
  "libdapsim_policies.a"
  "libdapsim_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
