# Empty dependencies file for dapsim_policies.
# This may be replaced when dependencies are built.
