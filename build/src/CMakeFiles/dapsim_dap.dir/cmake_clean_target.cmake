file(REMOVE_RECURSE
  "libdapsim_dap.a"
)
