# Empty dependencies file for dapsim_dap.
# This may be replaced when dependencies are built.
