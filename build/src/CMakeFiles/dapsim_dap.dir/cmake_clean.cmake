file(REMOVE_RECURSE
  "CMakeFiles/dapsim_dap.dir/dap/bandwidth_model.cc.o"
  "CMakeFiles/dapsim_dap.dir/dap/bandwidth_model.cc.o.d"
  "CMakeFiles/dapsim_dap.dir/dap/dap_controller.cc.o"
  "CMakeFiles/dapsim_dap.dir/dap/dap_controller.cc.o.d"
  "CMakeFiles/dapsim_dap.dir/dap/dap_solver.cc.o"
  "CMakeFiles/dapsim_dap.dir/dap/dap_solver.cc.o.d"
  "libdapsim_dap.a"
  "libdapsim_dap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_dap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
