file(REMOVE_RECURSE
  "libdapsim_cache.a"
)
