# Empty compiler generated dependencies file for dapsim_cache.
# This may be replaced when dependencies are built.
