file(REMOVE_RECURSE
  "CMakeFiles/dapsim_cache.dir/cache/dirty_bit_cache.cc.o"
  "CMakeFiles/dapsim_cache.dir/cache/dirty_bit_cache.cc.o.d"
  "CMakeFiles/dapsim_cache.dir/cache/tag_cache.cc.o"
  "CMakeFiles/dapsim_cache.dir/cache/tag_cache.cc.o.d"
  "libdapsim_cache.a"
  "libdapsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
