
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/l3_cache.cc" "src/CMakeFiles/dapsim_sim.dir/sim/l3_cache.cc.o" "gcc" "src/CMakeFiles/dapsim_sim.dir/sim/l3_cache.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/dapsim_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/dapsim_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/presets.cc" "src/CMakeFiles/dapsim_sim.dir/sim/presets.cc.o" "gcc" "src/CMakeFiles/dapsim_sim.dir/sim/presets.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/dapsim_sim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/dapsim_sim.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/dapsim_sim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/dapsim_sim.dir/sim/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_memside.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
