file(REMOVE_RECURSE
  "libdapsim_sim.a"
)
