file(REMOVE_RECURSE
  "CMakeFiles/dapsim_sim.dir/sim/l3_cache.cc.o"
  "CMakeFiles/dapsim_sim.dir/sim/l3_cache.cc.o.d"
  "CMakeFiles/dapsim_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/dapsim_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/dapsim_sim.dir/sim/presets.cc.o"
  "CMakeFiles/dapsim_sim.dir/sim/presets.cc.o.d"
  "CMakeFiles/dapsim_sim.dir/sim/runner.cc.o"
  "CMakeFiles/dapsim_sim.dir/sim/runner.cc.o.d"
  "CMakeFiles/dapsim_sim.dir/sim/system.cc.o"
  "CMakeFiles/dapsim_sim.dir/sim/system.cc.o.d"
  "libdapsim_sim.a"
  "libdapsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
