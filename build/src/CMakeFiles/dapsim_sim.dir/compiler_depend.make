# Empty compiler generated dependencies file for dapsim_sim.
# This may be replaced when dependencies are built.
