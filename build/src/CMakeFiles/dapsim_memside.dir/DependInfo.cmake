
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memside/alloy_cache.cc" "src/CMakeFiles/dapsim_memside.dir/memside/alloy_cache.cc.o" "gcc" "src/CMakeFiles/dapsim_memside.dir/memside/alloy_cache.cc.o.d"
  "/root/repo/src/memside/edram_cache.cc" "src/CMakeFiles/dapsim_memside.dir/memside/edram_cache.cc.o" "gcc" "src/CMakeFiles/dapsim_memside.dir/memside/edram_cache.cc.o.d"
  "/root/repo/src/memside/footprint_prefetcher.cc" "src/CMakeFiles/dapsim_memside.dir/memside/footprint_prefetcher.cc.o" "gcc" "src/CMakeFiles/dapsim_memside.dir/memside/footprint_prefetcher.cc.o.d"
  "/root/repo/src/memside/ms_cache.cc" "src/CMakeFiles/dapsim_memside.dir/memside/ms_cache.cc.o" "gcc" "src/CMakeFiles/dapsim_memside.dir/memside/ms_cache.cc.o.d"
  "/root/repo/src/memside/sectored_dram_cache.cc" "src/CMakeFiles/dapsim_memside.dir/memside/sectored_dram_cache.cc.o" "gcc" "src/CMakeFiles/dapsim_memside.dir/memside/sectored_dram_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
