file(REMOVE_RECURSE
  "CMakeFiles/dapsim_memside.dir/memside/alloy_cache.cc.o"
  "CMakeFiles/dapsim_memside.dir/memside/alloy_cache.cc.o.d"
  "CMakeFiles/dapsim_memside.dir/memside/edram_cache.cc.o"
  "CMakeFiles/dapsim_memside.dir/memside/edram_cache.cc.o.d"
  "CMakeFiles/dapsim_memside.dir/memside/footprint_prefetcher.cc.o"
  "CMakeFiles/dapsim_memside.dir/memside/footprint_prefetcher.cc.o.d"
  "CMakeFiles/dapsim_memside.dir/memside/ms_cache.cc.o"
  "CMakeFiles/dapsim_memside.dir/memside/ms_cache.cc.o.d"
  "CMakeFiles/dapsim_memside.dir/memside/sectored_dram_cache.cc.o"
  "CMakeFiles/dapsim_memside.dir/memside/sectored_dram_cache.cc.o.d"
  "libdapsim_memside.a"
  "libdapsim_memside.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_memside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
