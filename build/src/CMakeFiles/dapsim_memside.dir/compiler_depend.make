# Empty compiler generated dependencies file for dapsim_memside.
# This may be replaced when dependencies are built.
