file(REMOVE_RECURSE
  "libdapsim_memside.a"
)
