file(REMOVE_RECURSE
  "libdapsim_trace.a"
)
