file(REMOVE_RECURSE
  "CMakeFiles/dapsim_trace.dir/trace/generators.cc.o"
  "CMakeFiles/dapsim_trace.dir/trace/generators.cc.o.d"
  "CMakeFiles/dapsim_trace.dir/trace/mixes.cc.o"
  "CMakeFiles/dapsim_trace.dir/trace/mixes.cc.o.d"
  "CMakeFiles/dapsim_trace.dir/trace/trace_file.cc.o"
  "CMakeFiles/dapsim_trace.dir/trace/trace_file.cc.o.d"
  "CMakeFiles/dapsim_trace.dir/trace/workloads.cc.o"
  "CMakeFiles/dapsim_trace.dir/trace/workloads.cc.o.d"
  "libdapsim_trace.a"
  "libdapsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
