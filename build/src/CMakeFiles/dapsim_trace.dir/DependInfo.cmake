
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generators.cc" "src/CMakeFiles/dapsim_trace.dir/trace/generators.cc.o" "gcc" "src/CMakeFiles/dapsim_trace.dir/trace/generators.cc.o.d"
  "/root/repo/src/trace/mixes.cc" "src/CMakeFiles/dapsim_trace.dir/trace/mixes.cc.o" "gcc" "src/CMakeFiles/dapsim_trace.dir/trace/mixes.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/dapsim_trace.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/dapsim_trace.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/dapsim_trace.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/dapsim_trace.dir/trace/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
