# Empty compiler generated dependencies file for dapsim_trace.
# This may be replaced when dependencies are built.
