
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/dapsim_dram.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/dapsim_dram.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/dapsim_dram.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/dapsim_dram.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/dram_config.cc" "src/CMakeFiles/dapsim_dram.dir/dram/dram_config.cc.o" "gcc" "src/CMakeFiles/dapsim_dram.dir/dram/dram_config.cc.o.d"
  "/root/repo/src/dram/dram_system.cc" "src/CMakeFiles/dapsim_dram.dir/dram/dram_system.cc.o" "gcc" "src/CMakeFiles/dapsim_dram.dir/dram/dram_system.cc.o.d"
  "/root/repo/src/dram/presets.cc" "src/CMakeFiles/dapsim_dram.dir/dram/presets.cc.o" "gcc" "src/CMakeFiles/dapsim_dram.dir/dram/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
