# Empty dependencies file for dapsim_dram.
# This may be replaced when dependencies are built.
