file(REMOVE_RECURSE
  "CMakeFiles/dapsim_dram.dir/dram/bank.cc.o"
  "CMakeFiles/dapsim_dram.dir/dram/bank.cc.o.d"
  "CMakeFiles/dapsim_dram.dir/dram/channel.cc.o"
  "CMakeFiles/dapsim_dram.dir/dram/channel.cc.o.d"
  "CMakeFiles/dapsim_dram.dir/dram/dram_config.cc.o"
  "CMakeFiles/dapsim_dram.dir/dram/dram_config.cc.o.d"
  "CMakeFiles/dapsim_dram.dir/dram/dram_system.cc.o"
  "CMakeFiles/dapsim_dram.dir/dram/dram_system.cc.o.d"
  "CMakeFiles/dapsim_dram.dir/dram/presets.cc.o"
  "CMakeFiles/dapsim_dram.dir/dram/presets.cc.o.d"
  "libdapsim_dram.a"
  "libdapsim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
