file(REMOVE_RECURSE
  "libdapsim_dram.a"
)
