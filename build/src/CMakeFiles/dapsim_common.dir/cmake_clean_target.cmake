file(REMOVE_RECURSE
  "libdapsim_common.a"
)
