file(REMOVE_RECURSE
  "CMakeFiles/dapsim_common.dir/common/event_queue.cc.o"
  "CMakeFiles/dapsim_common.dir/common/event_queue.cc.o.d"
  "CMakeFiles/dapsim_common.dir/common/fixed_ratio.cc.o"
  "CMakeFiles/dapsim_common.dir/common/fixed_ratio.cc.o.d"
  "CMakeFiles/dapsim_common.dir/common/stats.cc.o"
  "CMakeFiles/dapsim_common.dir/common/stats.cc.o.d"
  "libdapsim_common.a"
  "libdapsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
