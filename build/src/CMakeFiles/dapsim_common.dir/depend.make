# Empty dependencies file for dapsim_common.
# This may be replaced when dependencies are built.
