file(REMOVE_RECURSE
  "../bench/fig04_bw_sensitivity"
  "../bench/fig04_bw_sensitivity.pdb"
  "CMakeFiles/fig04_bw_sensitivity.dir/fig04_bw_sensitivity.cpp.o"
  "CMakeFiles/fig04_bw_sensitivity.dir/fig04_bw_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bw_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
