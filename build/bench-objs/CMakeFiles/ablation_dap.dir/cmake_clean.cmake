file(REMOVE_RECURSE
  "../bench/ablation_dap"
  "../bench/ablation_dap.pdb"
  "CMakeFiles/ablation_dap.dir/ablation_dap.cpp.o"
  "CMakeFiles/ablation_dap.dir/ablation_dap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
