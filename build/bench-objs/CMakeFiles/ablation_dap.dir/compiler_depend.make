# Empty compiler generated dependencies file for ablation_dap.
# This may be replaced when dependencies are built.
