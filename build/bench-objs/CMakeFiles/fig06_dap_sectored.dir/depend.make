# Empty dependencies file for fig06_dap_sectored.
# This may be replaced when dependencies are built.
