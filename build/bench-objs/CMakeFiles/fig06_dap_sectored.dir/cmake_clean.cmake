file(REMOVE_RECURSE
  "../bench/fig06_dap_sectored"
  "../bench/fig06_dap_sectored.pdb"
  "CMakeFiles/fig06_dap_sectored.dir/fig06_dap_sectored.cpp.o"
  "CMakeFiles/fig06_dap_sectored.dir/fig06_dap_sectored.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dap_sectored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
