file(REMOVE_RECURSE
  "../bench/fig05_tag_cache"
  "../bench/fig05_tag_cache.pdb"
  "CMakeFiles/fig05_tag_cache.dir/fig05_tag_cache.cpp.o"
  "CMakeFiles/fig05_tag_cache.dir/fig05_tag_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tag_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
