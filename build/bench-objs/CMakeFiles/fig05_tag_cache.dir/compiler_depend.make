# Empty compiler generated dependencies file for fig05_tag_cache.
# This may be replaced when dependencies are built.
