# Empty dependencies file for fig09_mm_technology.
# This may be replaced when dependencies are built.
