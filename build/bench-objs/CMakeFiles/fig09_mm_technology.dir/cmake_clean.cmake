file(REMOVE_RECURSE
  "../bench/fig09_mm_technology"
  "../bench/fig09_mm_technology.pdb"
  "CMakeFiles/fig09_mm_technology.dir/fig09_mm_technology.cpp.o"
  "CMakeFiles/fig09_mm_technology.dir/fig09_mm_technology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mm_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
