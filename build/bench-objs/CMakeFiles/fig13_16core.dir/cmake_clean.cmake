file(REMOVE_RECURSE
  "../bench/fig13_16core"
  "../bench/fig13_16core.pdb"
  "CMakeFiles/fig13_16core.dir/fig13_16core.cpp.o"
  "CMakeFiles/fig13_16core.dir/fig13_16core.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_16core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
