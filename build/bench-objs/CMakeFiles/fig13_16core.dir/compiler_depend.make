# Empty compiler generated dependencies file for fig13_16core.
# This may be replaced when dependencies are built.
