file(REMOVE_RECURSE
  "../bench/fig15_edram"
  "../bench/fig15_edram.pdb"
  "CMakeFiles/fig15_edram.dir/fig15_edram.cpp.o"
  "CMakeFiles/fig15_edram.dir/fig15_edram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_edram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
