# Empty dependencies file for fig15_edram.
# This may be replaced when dependencies are built.
