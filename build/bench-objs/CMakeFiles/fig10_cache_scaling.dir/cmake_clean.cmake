file(REMOVE_RECURSE
  "../bench/fig10_cache_scaling"
  "../bench/fig10_cache_scaling.pdb"
  "CMakeFiles/fig10_cache_scaling.dir/fig10_cache_scaling.cpp.o"
  "CMakeFiles/fig10_cache_scaling.dir/fig10_cache_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
