# Empty dependencies file for fig10_cache_scaling.
# This may be replaced when dependencies are built.
