file(REMOVE_RECURSE
  "../bench/fig01_bw_vs_hitrate"
  "../bench/fig01_bw_vs_hitrate.pdb"
  "CMakeFiles/fig01_bw_vs_hitrate.dir/fig01_bw_vs_hitrate.cpp.o"
  "CMakeFiles/fig01_bw_vs_hitrate.dir/fig01_bw_vs_hitrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bw_vs_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
