# Empty dependencies file for fig01_bw_vs_hitrate.
# This may be replaced when dependencies are built.
