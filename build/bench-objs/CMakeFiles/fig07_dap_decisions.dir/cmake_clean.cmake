file(REMOVE_RECURSE
  "../bench/fig07_dap_decisions"
  "../bench/fig07_dap_decisions.pdb"
  "CMakeFiles/fig07_dap_decisions.dir/fig07_dap_decisions.cpp.o"
  "CMakeFiles/fig07_dap_decisions.dir/fig07_dap_decisions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dap_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
