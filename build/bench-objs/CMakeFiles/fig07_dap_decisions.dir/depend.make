# Empty dependencies file for fig07_dap_decisions.
# This may be replaced when dependencies are built.
