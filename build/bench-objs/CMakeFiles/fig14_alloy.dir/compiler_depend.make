# Empty compiler generated dependencies file for fig14_alloy.
# This may be replaced when dependencies are built.
