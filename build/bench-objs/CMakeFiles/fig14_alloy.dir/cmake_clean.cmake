file(REMOVE_RECURSE
  "../bench/fig14_alloy"
  "../bench/fig14_alloy.pdb"
  "CMakeFiles/fig14_alloy.dir/fig14_alloy.cpp.o"
  "CMakeFiles/fig14_alloy.dir/fig14_alloy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_alloy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
