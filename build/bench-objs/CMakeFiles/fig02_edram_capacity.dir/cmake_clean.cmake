file(REMOVE_RECURSE
  "../bench/fig02_edram_capacity"
  "../bench/fig02_edram_capacity.pdb"
  "CMakeFiles/fig02_edram_capacity.dir/fig02_edram_capacity.cpp.o"
  "CMakeFiles/fig02_edram_capacity.dir/fig02_edram_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_edram_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
