# Empty compiler generated dependencies file for fig02_edram_capacity.
# This may be replaced when dependencies are built.
