file(REMOVE_RECURSE
  "../bench/table1_sensitivity"
  "../bench/table1_sensitivity.pdb"
  "CMakeFiles/table1_sensitivity.dir/table1_sensitivity.cpp.o"
  "CMakeFiles/table1_sensitivity.dir/table1_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
