# Empty dependencies file for table1_sensitivity.
# This may be replaced when dependencies are built.
