file(REMOVE_RECURSE
  "../bench/fig08_cas_fraction"
  "../bench/fig08_cas_fraction.pdb"
  "CMakeFiles/fig08_cas_fraction.dir/fig08_cas_fraction.cpp.o"
  "CMakeFiles/fig08_cas_fraction.dir/fig08_cas_fraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cas_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
