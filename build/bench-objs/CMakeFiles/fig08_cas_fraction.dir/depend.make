# Empty dependencies file for fig08_cas_fraction.
# This may be replaced when dependencies are built.
