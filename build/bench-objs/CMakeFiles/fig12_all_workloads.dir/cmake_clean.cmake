file(REMOVE_RECURSE
  "../bench/fig12_all_workloads"
  "../bench/fig12_all_workloads.pdb"
  "CMakeFiles/fig12_all_workloads.dir/fig12_all_workloads.cpp.o"
  "CMakeFiles/fig12_all_workloads.dir/fig12_all_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_all_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
