# Empty dependencies file for fig12_all_workloads.
# This may be replaced when dependencies are built.
