file(REMOVE_RECURSE
  "../bench/fig11_related"
  "../bench/fig11_related.pdb"
  "CMakeFiles/fig11_related.dir/fig11_related.cpp.o"
  "CMakeFiles/fig11_related.dir/fig11_related.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
