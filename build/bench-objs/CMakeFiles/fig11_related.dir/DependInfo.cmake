
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_related.cpp" "bench-objs/CMakeFiles/fig11_related.dir/fig11_related.cpp.o" "gcc" "bench-objs/CMakeFiles/fig11_related.dir/fig11_related.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dapsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_memside.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dapsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
