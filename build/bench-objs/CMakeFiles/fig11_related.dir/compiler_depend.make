# Empty compiler generated dependencies file for fig11_related.
# This may be replaced when dependencies are built.
