# Empty dependencies file for dapsim_cli.
# This may be replaced when dependencies are built.
