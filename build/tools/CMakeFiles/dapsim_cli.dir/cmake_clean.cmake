file(REMOVE_RECURSE
  "CMakeFiles/dapsim_cli.dir/dapsim_cli.cc.o"
  "CMakeFiles/dapsim_cli.dir/dapsim_cli.cc.o.d"
  "dapsim"
  "dapsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
