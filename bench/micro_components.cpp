/**
 * @file
 * Component microbenchmarks (google-benchmark): the cost of the hot
 * simulator paths — event queue churn, DRAM channel scheduling, DAP
 * solver math, generators, and directory lookups. These guard the
 * simulator's own performance (a single bench run sweeps hundreds of
 * simulations).
 */

#include <benchmark/benchmark.h>

#include "cache/assoc_cache.hh"
#include "common/event_queue.hh"
#include "dap/dap_solver.hh"
#include "dram/dram_system.hh"
#include "dram/presets.hh"
#include "trace/generators.hh"

namespace dapsim
{
namespace
{

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int n = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 997),
                        [&n] { ++n; });
        eq.run();
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_EventQueueChurn);

void
BM_DramRandomAccesses(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        DramSystem mem(eq, presets::hbm_102());
        std::uint64_t x = 9;
        for (int i = 0; i < 2000; ++i) {
            x = x * 6364136223846793005ULL + 1;
            mem.access((x >> 16) % (1ULL << 28), (x & 1) != 0);
        }
        eq.run();
        benchmark::DoNotOptimize(mem.casOps());
    }
}
BENCHMARK(BM_DramRandomAccesses);

void
BM_DapSolverSectored(benchmark::State &state)
{
    const FixedRatio k = FixedRatio::quantize(8.0 / 3.0, 2);
    dap::SectoredInput in;
    in.aMs = 40;
    in.aMm = 2;
    in.readMisses = 5;
    in.writes = 20;
    in.cleanHits = 10;
    in.bMsW = 19;
    in.bMmW = 7;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dap::solveSectored(in, k));
    }
}
BENCHMARK(BM_DapSolverSectored);

void
BM_SyntheticGenerator(benchmark::State &state)
{
    SyntheticParams p;
    p.footprintBytes = 8 * kMiB;
    SyntheticGenerator g(p);
    TraceRequest r;
    for (auto _ : state) {
        g.next(r);
        benchmark::DoNotOptimize(r.addr);
    }
}
BENCHMARK(BM_SyntheticGenerator);

void
BM_AssocCacheLookup(benchmark::State &state)
{
    AssocCache<int> c(4096, 4, ReplPolicy::NRU);
    for (std::uint64_t t = 0; t < 8192; ++t)
        if (c.find(t % 4096, t) == nullptr)
            c.insert(t % 4096, t, 1);
    std::uint64_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(t % 4096, t));
        ++t;
    }
}
BENCHMARK(BM_AssocCacheLookup);

} // namespace
} // namespace dapsim

BENCHMARK_MAIN();
