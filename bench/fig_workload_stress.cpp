/**
 * @file
 * Workload-engine stress sweep: DAP vs SBD/BATMAN/BEAR outside the
 * SPEC-style comfort zone.
 *
 * Part 1 sweeps Zipf skew x phase drift (single-tenant rate-8): skew
 * moves the hit-ratio operating point the partitioning policies see,
 * drift invalidates their learned state every period. Part 2 scales
 * tenant count with adversarial co-runners (streaming flood,
 * pointer-chase, write-burst, sparse strides) composed by the mix
 * engine. Both report weighted speedup over the optimized baseline;
 * the reproduction target is the *shape*: DAP's margin should survive
 * skew and drift and widen under bandwidth-hostile co-runners, where
 * hit-rate-maximizing policies overload the scarce source.
 *
 * Every policy of a scenario forks from one shared functional warm-up
 * (see exp/sweep_runner.hh), so the grid costs one warm-up per row.
 */

#include "bench_util.hh"
#include "workload/compose.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

constexpr PolicyKind kPolicies[] = {PolicyKind::Baseline,
                                    PolicyKind::Dap, PolicyKind::Sbd,
                                    PolicyKind::Batman,
                                    PolicyKind::Bear};
constexpr std::size_t kNumPolicies =
    sizeof(kPolicies) / sizeof(kPolicies[0]);

/** One named scenario: a spec composed onto the 8-core system. */
struct Scenario
{
    const char *label;
    const char *spec;
};

const Scenario kSkewDriftGrid[] = {
    {"skew0.7", "zipf:skew=0.7,fp=16M"},
    {"skew0.99", "zipf:skew=0.99,fp=16M"},
    {"skew1.3", "zipf:skew=1.3,fp=16M"},
    {"skew0.7+rotate", "zipf:skew=0.7,fp=16M,drift=rotate,period=50000"},
    {"skew0.99+rotate",
     "zipf:skew=0.99,fp=16M,drift=rotate,period=50000"},
    {"skew1.3+rotate", "zipf:skew=1.3,fp=16M,drift=rotate,period=50000"},
    {"skew0.7+jump", "zipf:skew=0.7,fp=16M,drift=jump,period=50000"},
    {"skew0.99+jump", "zipf:skew=0.99,fp=16M,drift=jump,period=50000"},
    {"skew1.3+jump", "zipf:skew=1.3,fp=16M,drift=jump,period=50000"},
};

const Scenario kTenantGrid[] = {
    {"tenants1", "zipf:skew=0.99,fp=16M"},
    {"tenants2", "mix:t0=zipf,t0.skew=0.99,t0.fp=16M,t0.cores=4,"
                 "t1=flood,t1.fp=8M,t1.mpki=40"},
    {"tenants4", "mix:t0=zipf,t0.skew=0.99,t0.fp=16M,t0.cores=2,"
                 "t1=flood,t1.fp=8M,t1.mpki=40,t1.cores=2,"
                 "t2=chase,t2.fp=8M,t2.cores=2,"
                 "t3=wburst,t3.fp=8M,t3.cores=2"},
    {"tenants8", "mix:t0=zipf,t0.skew=0.99,t0.fp=16M,"
                 "t1=zipf,t1.skew=1.2,t1.fp=8M,t1.drift=jump,"
                 "t1.period=50000,"
                 "t2=hotspot,t2.hot=0.05,t2.fp=8M,"
                 "t3=flood,t3.fp=8M,t3.mpki=40,"
                 "t4=chase,t4.fp=8M,"
                 "t5=wburst,t5.fp=8M,"
                 "t6=sparse,t6.fp=8M,"
                 "t7=wburst,t7.fp=4M,t7.burst=32,t7.duty=0.6"},
};

/** Queue every policy of every scenario; returns first job indices. */
template <std::size_t N>
std::vector<std::size_t>
queueGrid(exp::SweepRunner &runner, const SystemConfig &cfg,
          const Scenario (&grid)[N], std::uint64_t instr)
{
    std::vector<std::size_t> first;
    for (const auto &s : grid) {
        const Mix mix = workload::composeWorkload(s.spec, 8).mix;
        first.push_back(
            queuePolicy(runner, cfg, kPolicies[0], mix, instr));
        for (std::size_t p = 1; p < kNumPolicies; ++p)
            queuePolicy(runner, cfg, kPolicies[p], mix, instr);
    }
    return first;
}

/** Print one speedup-over-baseline table for a queued grid. */
template <std::size_t N>
void
printGrid(const std::vector<exp::JobResult> &results,
          const Scenario (&grid)[N],
          const std::vector<std::size_t> &first, const char *header)
{
    SpeedupTable table(header);
    for (std::size_t i = 0; i < N; ++i) {
        const RunResult &base = require(results[first[i]]);
        std::vector<double> row;
        for (std::size_t p = 1; p < kNumPolicies; ++p)
            row.push_back(
                speedup(require(results[first[i] + p]), base));
        table.row(grid[i].label, row);
    }
    table.finish("GMEAN");
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Workload-engine stress sweep",
           "DAP vs SBD/BATMAN/BEAR under Zipf skew, phase drift and "
           "adversarial multi-tenant mixes (sectored DRAM cache, "
           "8 cores)");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    exp::SweepRunner runner;
    benchWarmupFork(runner, benchStoreDir(argc, argv));
    const auto skew_first = queueGrid(runner, cfg, kSkewDriftGrid, instr);
    const auto tenant_first = queueGrid(runner, cfg, kTenantGrid, instr);
    const auto results = runner.run(benchJobs(argc, argv));

    std::printf("\n-- Zipf skew x phase drift (speedup over "
                "baseline) --\n");
    printGrid(results, kSkewDriftGrid, skew_first,
              "       dap        sbd     batman       bear");
    std::printf("\n-- tenant count with adversarial co-runners --\n");
    printGrid(results, kTenantGrid, tenant_first,
              "       dap        sbd     batman       bear");
    return 0;
}
