/**
 * @file
 * Figure 9: DAP's sensitivity to main-memory latency and bandwidth.
 *
 * Four main-memory models under the default MS$: DDR4-2400 (default),
 * DDR4-2400 without the board/IO delay, LPDDR4-2400 (same bandwidth,
 * much higher latency), and DDR4-3200 (higher bandwidth). Paper
 * shape: DAP's benefit shrinks as memory latency grows (LPDDR4) and
 * grows with memory bandwidth (DDR4-3200, which shifts the optimal
 * partition toward memory).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 9", "DAP speedup vs main-memory technology");
    const std::uint64_t instr = benchInstructions();

    const std::vector<std::pair<const char *, DramConfig>> memories{
        {"ddr4-2400", dapsim::presets::ddr4_2400()},
        {"ddr4-2400-noio", dapsim::presets::ddr4_2400_no_io()},
        {"lpddr4-2400", dapsim::presets::lpddr4_2400()},
        {"ddr4-3200", dapsim::presets::ddr4_3200()},
    };

    SpeedupTable table(
        "   ddr4-2400  no-io      lpddr4     ddr4-3200");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        std::vector<double> row;
        for (const auto &[name, mem] : memories) {
            SystemConfig cfg = presets::sectoredSystem8();
            cfg.mainMemory = mem;
            const RunResult rb =
                runPolicy(cfg, PolicyKind::Baseline, mix, instr);
            const RunResult rd =
                runPolicy(cfg, PolicyKind::Dap, mix, instr);
            row.push_back(speedup(rd, rb));
        }
        table.row(w.name, row);
    }
    table.finish("GMEAN");
    return 0;
}
