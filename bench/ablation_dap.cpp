/**
 * @file
 * Ablation study (extension beyond the paper's figures): DAP's
 * techniques enabled incrementally — FWB only, +WB, +IFRM, +SFRM —
 * plus a credit-cap ablation, on the twelve bandwidth-sensitive
 * rate-8 mixes. This quantifies how much of DAP's gain each technique
 * carries and that the 8-bit saturating credits are not a limiter.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

SystemConfig
withTechniques(bool fwb, bool wb, bool ifrm, bool sfrm)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.dap.enableFwb = fwb;
    cfg.dap.enableWb = wb;
    cfg.dap.enableIfrm = ifrm;
    cfg.dap.enableSfrm = sfrm;
    return cfg;
}

} // namespace

int
main()
{
    banner("Ablation", "DAP techniques enabled incrementally");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig base = presets::sectoredSystem8();

    const std::vector<std::pair<const char *, SystemConfig>> steps{
        {"FWB", withTechniques(true, false, false, false)},
        {"+WB", withTechniques(true, true, false, false)},
        {"+IFRM", withTechniques(true, true, true, false)},
        {"+SFRM(all)", withTechniques(true, true, true, true)},
    };

    SpeedupTable table("     FWB        +WB      +IFRM  +SFRM(all)");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult rb =
            runPolicy(base, PolicyKind::Baseline, mix, instr);
        std::vector<double> row;
        for (const auto &[name, cfg] : steps)
            row.push_back(
                speedup(runPolicy(cfg, PolicyKind::Dap, mix, instr),
                        rb));
        table.row(w.name, row);
    }
    table.finish("GMEAN");

    std::printf("\n--- credit-counter width ablation (gcc.s04) ---\n");
    const Mix mix = rateMix(workloadByName("gcc.s04"), 8);
    const RunResult rb =
        runPolicy(base, PolicyKind::Baseline, mix, instr);
    for (std::int64_t max : {15, 63, 255, 1 << 20}) {
        SystemConfig cfg = presets::sectoredSystem8();
        cfg.dap.creditMax = max;
        const RunResult rd = runPolicy(cfg, PolicyKind::Dap, mix, instr);
        std::printf("creditMax=%-8lld speedup %.3f\n",
                    static_cast<long long>(max), speedup(rd, rb));
        std::fflush(stdout);
    }
    return 0;
}
