/**
 * @file
 * Figure 6: DAP on the sectored DRAM cache (the headline result).
 *
 * Top panel: weighted speedup of DAP over the optimized baseline for
 * the twelve bandwidth-sensitive rate-8 mixes (paper: 15.2% average,
 * up to 2x for omnetpp). Bottom panel: normalized average L3 read-miss
 * latency (paper: 18% average saving) — the speedups track the
 * latency savings.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 6",
           "DAP vs optimized baseline (sectored DRAM cache, rate-8)");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    SpeedupTable table("   speedup  norm-l3-read-miss-lat");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult base =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        const RunResult dap =
            runPolicy(cfg, PolicyKind::Dap, mix, instr);
        table.row(w.name,
                  {speedup(dap, base),
                   dap.avgL3ReadMissLatency /
                       std::max(1.0, base.avgL3ReadMissLatency)});
    }
    table.finish("GMEAN");
    return 0;
}
