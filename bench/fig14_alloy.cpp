/**
 * @file
 * Figure 14: DAP on the Alloy cache.
 *
 * Top panel: BEAR and Alloy+DAP speedups over the baseline Alloy
 * cache (paper: 22% and 29%). Bottom panel: main-memory CAS fraction
 * for baseline / BEAR / DAP — the Alloy optimum is 36% because the
 * TAD bloat derates the cache's useful bandwidth to 2/3, and DAP gets
 * close while BEAR stays near the baseline.
 */

#include "bench_util.hh"
#include "dap/bandwidth_model.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 14", "Alloy cache: BEAR vs Alloy+DAP");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::alloySystem8();

    std::printf("optimal MM CAS fraction (TAD-derated): %.2f\n\n",
                bwmodel::optimalMemoryFraction(102.4 * 2.0 / 3.0,
                                               38.4));
    SpeedupTable table(
        "    BEAR        DAP       casB    casBEAR     casDAP");
    for (auto w : bandwidthSensitiveWorkloads()) {
        // The direct-mapped Alloy cache has no footprint prefetcher to
        // compensate for conflict misses, so matching the paper's
        // footprint:capacity regime (~0.5 for its SPEC snippets on
        // 4 GB) requires halving the scaled footprints; otherwise the
        // array never saturates and DAP correctly stands down.
        w.params.footprintBytes /= 2;
        const Mix mix = rateMix(w, 8);
        const RunResult base =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        const RunResult bear =
            runPolicy(cfg, PolicyKind::Bear, mix, instr);
        const RunResult dap =
            runPolicy(cfg, PolicyKind::Dap, mix, instr);
        table.row(w.name,
                  {speedup(bear, base), speedup(dap, base),
                   base.mmCasFraction, bear.mmCasFraction,
                   dap.mmCasFraction});
    }
    table.finish("GMEAN");
    return 0;
}
