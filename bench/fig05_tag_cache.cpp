/**
 * @file
 * Figure 5: the optimized baseline's SRAM tag cache.
 *
 * Top panel: weighted speedup of adding the tag cache to the sectored
 * DRAM cache baseline (twelve bandwidth-sensitive rate-8 mixes).
 * Bottom panel: tag-cache miss ratio. Paper shape: most workloads
 * benefit (16% average); astar.BigLakes and omnetpp show high tag
 * cache miss rates from poor sector utilization.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 5", "Effect of the 32K-entry (scaled) SRAM tag cache");
    const std::uint64_t instr = benchInstructions();

    const SystemConfig with_tc = presets::sectoredSystem8();
    const SystemConfig without_tc = presets::sectoredSystemNoTagCache8();

    SpeedupTable table("   speedup  tc-missratio");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult off =
            runPolicy(without_tc, PolicyKind::Baseline, mix, instr);
        const RunResult on =
            runPolicy(with_tc, PolicyKind::Baseline, mix, instr);
        table.row(w.name, {speedup(on, off), on.tagCacheMissRatio});
    }
    table.finish("GMEAN");
    return 0;
}
