/**
 * @file
 * Figure 2: impact of doubling the eDRAM cache (256 MB -> 512 MB,
 * scaled 4 MB -> 8 MB) on the twelve bandwidth-sensitive rate-8 mixes.
 *
 * Top panel: weighted speedup of the larger cache normalized to the
 * smaller. Bottom panel: drop in miss rate. Paper shape: most
 * applications gain with the miss-rate drop, but some (gcc.s04,
 * omnetpp) gain little or lose despite it — hit rate alone does not
 * determine performance.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 2",
           "512 MB (scaled 8 MB) vs 256 MB (scaled 4 MB) eDRAM cache");
    const std::uint64_t instr = benchInstructions();
    std::printf("%-18s %10s %10s\n", "workload", "speedup",
                "missdrop%");
    std::vector<double> speedups, drops;
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult small =
            runPolicy(presets::edramSystem8(4), PolicyKind::Baseline,
                      mix, instr);
        const RunResult big =
            runPolicy(presets::edramSystem8(8), PolicyKind::Baseline,
                      mix, instr);
        const double s = speedup(big, small);
        // Miss-rate deltas can be slightly negative; report them as-is
        // (geomean is only meaningful for the speedup column).
        const double d =
            (small.msReadMissRatio - big.msReadMissRatio) * 100;
        std::printf("%-18s %10.3f %10.3f\n", w.name.c_str(), s, d);
        std::fflush(stdout);
        speedups.push_back(s);
        drops.push_back(d);
    }
    std::printf("%-18s %10.3f %10.3f\n", "MEAN", geomean(speedups),
                mean(drops));
    return 0;
}
