/**
 * @file
 * Figure 12: DAP over the full 44-mix roster.
 *
 * 12 bandwidth-sensitive homogeneous mixes, 5 bandwidth-insensitive
 * homogeneous mixes, and 27 heterogeneous mixes, each sorted by
 * speedup within its class (weighted speedup via per-app alone-run
 * IPCs for the heterogeneous mixes). Paper shape: insensitive mixes
 * never lose (DAP seldom partitions for them); heterogeneous mixes
 * gain broadly; 13% overall geomean.
 *
 * All 105 simulations (17 alone runs + 44 mixes x 2 policies) go
 * through the SweepRunner; pass `--jobs N` (or set DAPSIM_BENCH_JOBS)
 * to run them on N threads. Rows are numerically identical for any
 * job count.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main(int argc, char **argv)
{
    banner("Figure 12", "DAP speedup over all 44 multi-programmed mixes");
    const std::uint64_t instr = benchInstructions();
    const std::size_t jobs = benchJobs(argc, argv);
    const SystemConfig cfg = presets::sectoredSystem8();

    exp::SweepRunner runner;
    runner.setProgress(true);

    // Alone-run IPCs, shared across mixes (hetero weighted speedup).
    const auto &workloads = allWorkloads();
    for (const auto &w : workloads)
        queueAloneIpc(runner, cfg, w, instr);

    const std::vector<Mix> mixes = allMixes();
    for (const auto &mix : mixes) {
        queuePolicy(runner, cfg, PolicyKind::Baseline, mix, instr);
        queuePolicy(runner, cfg, PolicyKind::Dap, mix, instr);
    }

    const auto results = runner.run(jobs);

    std::map<std::string, double> alone;
    for (std::size_t i = 0; i < workloads.size(); ++i)
        alone[workloads[i].name] = require(results[i]).ipc[0];

    struct Entry
    {
        std::string name;
        double speedup;
    };
    std::map<Mix::Kind, std::vector<Entry>> byKind;
    std::vector<double> all;

    std::size_t cursor = workloads.size();
    for (const auto &mix : mixes) {
        const RunResult &rb = require(results[cursor++]);
        const RunResult &rd = require(results[cursor++]);
        std::vector<double> alone_ipc;
        for (const auto &a : mix.apps)
            alone_ipc.push_back(alone[a.name]);
        const double s = rd.weightedSpeedup(alone_ipc) /
                         rb.weightedSpeedup(alone_ipc);
        byKind[mix.kind].push_back({mix.name, s});
        all.push_back(s);
    }

    const std::map<Mix::Kind, const char *> kindName{
        {Mix::Kind::Sensitive, "bandwidth-sensitive (12)"},
        {Mix::Kind::Insensitive, "bandwidth-insensitive (5)"},
        {Mix::Kind::Hetero, "heterogeneous (27)"},
    };
    for (auto &[kind, entries] : byKind) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.speedup < b.speedup;
                  });
        std::printf("--- %s, sorted by speedup ---\n",
                    kindName.at(kind));
        std::vector<double> v;
        for (const auto &e : entries) {
            std::printf("%-22s %8.3f\n", e.name.c_str(), e.speedup);
            v.push_back(e.speedup);
        }
        std::printf("%-22s %8.3f\n\n", "GMEAN", geomean(v));
    }
    std::printf("overall GMEAN (44 mixes): %.3f  (paper: 1.13)\n",
                geomean(all));
    return 0;
}
