/**
 * @file
 * Figure 12: DAP over the full 44-mix roster.
 *
 * 12 bandwidth-sensitive homogeneous mixes, 5 bandwidth-insensitive
 * homogeneous mixes, and 27 heterogeneous mixes, each sorted by
 * speedup within its class (weighted speedup via per-app alone-run
 * IPCs for the heterogeneous mixes). Paper shape: insensitive mixes
 * never lose (DAP seldom partitions for them); heterogeneous mixes
 * gain broadly; 13% overall geomean.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 12", "DAP speedup over all 44 multi-programmed mixes");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    // Alone-run IPCs, shared across mixes (hetero weighted speedup).
    std::map<std::string, double> alone;
    for (const auto &w : allWorkloads())
        alone[w.name] = aloneIpc(cfg, w, instr);

    struct Entry
    {
        std::string name;
        double speedup;
    };
    std::map<Mix::Kind, std::vector<Entry>> byKind;
    std::vector<double> all;

    for (const auto &mix : allMixes()) {
        const RunResult rb =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        const RunResult rd = runPolicy(cfg, PolicyKind::Dap, mix, instr);
        std::vector<double> alone_ipc;
        for (const auto &a : mix.apps)
            alone_ipc.push_back(alone[a.name]);
        const double s = rd.weightedSpeedup(alone_ipc) /
                         rb.weightedSpeedup(alone_ipc);
        byKind[mix.kind].push_back({mix.name, s});
        all.push_back(s);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    const std::map<Mix::Kind, const char *> kindName{
        {Mix::Kind::Sensitive, "bandwidth-sensitive (12)"},
        {Mix::Kind::Insensitive, "bandwidth-insensitive (5)"},
        {Mix::Kind::Hetero, "heterogeneous (27)"},
    };
    for (auto &[kind, entries] : byKind) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.speedup < b.speedup;
                  });
        std::printf("--- %s, sorted by speedup ---\n",
                    kindName.at(kind));
        std::vector<double> v;
        for (const auto &e : entries) {
            std::printf("%-22s %8.3f\n", e.name.c_str(), e.speedup);
            v.push_back(e.speedup);
        }
        std::printf("%-22s %8.3f\n\n", "GMEAN", geomean(v));
    }
    std::printf("overall GMEAN (44 mixes): %.3f  (paper: 1.13)\n",
                geomean(all));
    return 0;
}
