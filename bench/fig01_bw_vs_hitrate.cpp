/**
 * @file
 * Figure 1: delivered bandwidth against memory-side cache hit ratio.
 *
 * A read-only kernel streams through arrays at target hit rates
 * {0, 25, 50, 70, 90, 100}% for (a) an HBM DRAM cache with a single
 * bidirectional 102.4 GB/s bus and (b) an eDRAM cache with separate
 * 51.2 GB/s read/write channel sets, both over 38.4 GB/s DDR4.
 *
 * Paper shape: the DRAM cache's curve rises and saturates near the
 * cache bandwidth around 70%; the eDRAM curve peaks mid-range (sum of
 * sources) and *falls* toward the read-channel bandwidth at 100%.
 * Both the simulated values and the Section III analytical model are
 * printed.
 */

#include "bench_util.hh"
#include "dap/bandwidth_model.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

/** Generator hitting a small resident region with probability h and
 *  streaming through a huge cold region otherwise. */
class HitRateKernel final : public AccessGenerator
{
  public:
    HitRateKernel(double hit_rate, Addr base)
        : hitRate_(hit_rate), rng_(base + 17), base_(base)
    {
    }

    bool
    next(TraceRequest &out) override
    {
        if (rng_.chance(hitRate_)) {
            out.addr = base_ + (hotPtr_++ % kHotBlocks) * kBlockBytes;
        } else {
            // One block per sector, never revisited: a guaranteed
            // miss with no spatial reuse to distort the target rate.
            out.addr = base_ + (1ULL << 36) + (coldPtr_++) * 4096;
        }
        out.isWrite = false;
        out.instrGap = 4; // bandwidth kernel: demand-saturating
        return true;
    }

  private:
    static constexpr std::uint64_t kHotBlocks = 8192; // 512 KB / core
    double hitRate_;
    Rng rng_;
    Addr base_;
    std::uint64_t hotPtr_ = 0;
    std::uint64_t coldPtr_ = 0;
};

double
measure(MsArch arch, double hit_rate)
{
    SystemConfig cfg = arch == MsArch::Sectored
                           ? presets::sectoredSystem8()
                           : presets::edramSystem8(64);
    cfg.arch = arch;
    cfg.l3.capacityBytes = 256 * kKiB; // keep the L3 out of the way
    cfg.core.instructions = 60'000;
    // The kernel measures intrinsic source bandwidths: no prefetch
    // machinery, demand-block-only fills (the paper's Figure 1 also
    // assumes no maintenance overheads).
    cfg.prefetch.enabled = false;
    cfg.sectored.footprint.coldRunLength = 1;
    cfg.edram.footprint.coldRunLength = 1;

    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(std::make_unique<HitRateKernel>(
            hit_rate, static_cast<Addr>(i) << 40));
    System sys(cfg, std::move(gens));
    sys.warmup(40'000);
    sys.run();
    return harvest(sys, "kernel").readGBps;
}

} // namespace

int
main()
{
    banner("Figure 1",
           "Delivered read bandwidth vs MS$ hit ratio (read kernel)");
    std::printf("%-10s %12s %12s %12s %12s\n", "hit-rate",
                "DRAM$ sim", "DRAM$ model", "eDRAM sim", "eDRAM model");
    for (double h : {0.0, 0.25, 0.5, 0.7, 0.9, 1.0}) {
        const double dram_sim = measure(MsArch::Sectored, h);
        const double edram_sim = measure(MsArch::Edram, h);
        const double dram_model =
            bwmodel::dramCacheReadKernelBW(h, 0.75 * 102.4,
                                           0.75 * 38.4);
        const double edram_model =
            bwmodel::edramReadKernelBW(h, 0.75 * 51.2, 0.75 * 38.4);
        std::printf("%-10.0f %12.1f %12.1f %12.1f %12.1f\n", h * 100,
                    dram_sim, dram_model, edram_sim, edram_model);
        std::fflush(stdout);
    }
    std::printf("\nShape check: DRAM$ saturates near the cache bandwidth"
                " by ~70%%;\neDRAM peaks mid-range and falls toward its"
                " read-channel bandwidth at 100%%.\n");
    return 0;
}
