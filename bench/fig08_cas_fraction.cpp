/**
 * @file
 * Figure 8: how close DAP comes to the optimal access partition.
 *
 * Top panel: fraction of all CAS operations served by main memory for
 * baseline vs DAP (the optimum is B_MM/(B_MM + B_MS$) = 0.27 for
 * 38.4 vs 102.4 GB/s). Bottom panel: MS$ hit ratio for baseline,
 * FWB+WB only, and full DAP — the hit rate drops as DAP trades hits
 * for bandwidth balance.
 */

#include "bench_util.hh"
#include "dap/bandwidth_model.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 8",
           "Main-memory CAS fraction and MS$ hit ratio under DAP");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    SystemConfig fwbwb = cfg;
    fwbwb.dap.enableIfrm = false;
    fwbwb.dap.enableSfrm = false;

    std::printf("optimal MM CAS fraction: %.2f\n\n",
                bwmodel::optimalMemoryFraction(102.4, 38.4));
    SpeedupTable table(
        "  casB      casDAP     hitB   hitFWB+WB   hitDAP");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult base =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        const RunResult part =
            runPolicy(fwbwb, PolicyKind::Dap, mix, instr);
        const RunResult dap =
            runPolicy(cfg, PolicyKind::Dap, mix, instr);
        table.row(w.name,
                  {base.mmCasFraction, dap.mmCasFraction,
                   base.msHitRatio, part.msHitRatio, dap.msHitRatio});
    }
    table.finish("MEAN");
    return 0;
}
