/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it runs the required simulations and prints the same rows/series
 * the paper reports. Absolute values are not expected to match the
 * authors' testbed; the *shape* (who wins, by roughly what factor,
 * where crossovers fall) is the reproduction target (see DESIGN.md
 * and EXPERIMENTS.md).
 */

#ifndef DAPSIM_BENCH_BENCH_UTIL_HH
#define DAPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim::bench
{

/** Instructions per core for bench runs (reduced-scale methodology). */
inline std::uint64_t
benchInstructions()
{
    if (const char *env = std::getenv("DAPSIM_BENCH_INSTR"))
        return std::strtoull(env, nullptr, 10);
    return 120'000;
}

/** Print a banner naming the experiment. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n");
}

/** Run one mix under @p cfg with the given policy. */
inline RunResult
runPolicy(SystemConfig cfg, PolicyKind policy, const Mix &mix,
          std::uint64_t instr, std::uint64_t salt = 0)
{
    cfg.policy = policy;
    return runMix(cfg, mix, instr, salt);
}

/** Throughput-normalized speedup (rate-mode weighted speedup). */
inline double
speedup(const RunResult &test, const RunResult &base)
{
    return test.throughput() / base.throughput();
}

/** Collector printing per-workload rows plus a geometric mean. */
class SpeedupTable
{
  public:
    explicit SpeedupTable(std::string header) : header_(std::move(header))
    {
        std::printf("%-18s %s\n", "workload", header_.c_str());
    }

    void
    row(const std::string &name, const std::vector<double> &values)
    {
        if (columns_.empty())
            columns_.resize(values.size());
        std::printf("%-18s", name.c_str());
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::printf(" %10.3f", values[i]);
            columns_[i].push_back(values[i]);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    void
    finish(const char *label = "GMEAN")
    {
        std::printf("%-18s", label);
        for (auto &col : columns_) {
            // Delta columns (hit-rate changes) can be non-positive:
            // fall back to the arithmetic mean for those.
            bool all_positive = true;
            for (double v : col)
                all_positive &= v > 0.0;
            std::printf(" %10.3f",
                        all_positive ? geomean(col) : mean(col));
        }
        std::printf("\n");
    }

    std::vector<double> column(std::size_t i) const { return columns_[i]; }

  private:
    std::string header_;
    std::vector<std::vector<double>> columns_;
};

} // namespace dapsim::bench

#endif // DAPSIM_BENCH_BENCH_UTIL_HH
