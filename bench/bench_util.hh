/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it runs the required simulations and prints the same rows/series
 * the paper reports. Absolute values are not expected to match the
 * authors' testbed; the *shape* (who wins, by roughly what factor,
 * where crossovers fall) is the reproduction target (see DESIGN.md
 * and EXPERIMENTS.md).
 */

#ifndef DAPSIM_BENCH_BENCH_UTIL_HH
#define DAPSIM_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/log.hh"
#include "exp/sweep_runner.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace dapsim::bench
{

/** Parse a strictly-positive decimal integer; 0 on any malformation. */
inline std::uint64_t
parsePositive(const char *s)
{
    if (!s || *s == '\0')
        return 0;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0')
        return 0;
    return v;
}

/** Instructions per core for bench runs (reduced-scale methodology). */
inline std::uint64_t
benchInstructions()
{
    constexpr std::uint64_t kDefault = 120'000;
    if (const char *env = std::getenv("DAPSIM_BENCH_INSTR")) {
        const std::uint64_t v = parsePositive(env);
        if (v == 0) {
            warn("invalid DAPSIM_BENCH_INSTR '" + std::string(env) +
                 "'; using default " + std::to_string(kDefault));
            return kDefault;
        }
        return v;
    }
    return kDefault;
}

/**
 * Worker threads for the bench's sweep: `--jobs N` on the command
 * line, else the DAPSIM_BENCH_JOBS environment variable, else 1.
 * Results are bit-identical for any value (see exp/sweep_runner.hh);
 * only wall-clock time changes.
 */
inline std::size_t
benchJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--jobs") {
            const std::uint64_t v = parsePositive(argv[i + 1]);
            if (v == 0)
                fatal("--jobs expects a positive integer");
            return v;
        }
    }
    if (const char *env = std::getenv("DAPSIM_BENCH_JOBS")) {
        const std::uint64_t v = parsePositive(env);
        if (v == 0) {
            warn("invalid DAPSIM_BENCH_JOBS '" + std::string(env) +
                 "'; running serially");
            return 1;
        }
        return v;
    }
    return 1;
}

/**
 * Store passthrough for benches whose sweeps share warm-ups: with
 * `--store DIR` (or DAPSIM_BENCH_STORE) the bench's warmup-fork
 * checkpoints live in `DIR/ckpt` — the same fleet-wide
 * content-addressed cache a `dapsim.expq.v1` store and its expd
 * workers use — so figure reruns and experiment-service sweeps reuse
 * each other's warm-ups instead of resimulating them. Returns "" when
 * no store is configured (in-memory warm-up sharing only).
 */
inline std::string
benchStoreDir(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--store")
            return argv[i + 1];
    }
    if (const char *env = std::getenv("DAPSIM_BENCH_STORE"))
        return env;
    return "";
}

/** Enable warmup-fork on @p runner, routed through the store's
 *  checkpoint cache when a store directory is configured. */
inline void
benchWarmupFork(exp::SweepRunner &runner, const std::string &store_dir)
{
    if (store_dir.empty()) {
        runner.setWarmupFork(true, "");
        return;
    }
    const std::string ckpt_dir = store_dir + "/ckpt";
    std::error_code ec;
    std::filesystem::create_directories(ckpt_dir, ec);
    if (ec)
        fatal("cannot create " + ckpt_dir + ": " + ec.message());
    runner.setWarmupFork(true, ckpt_dir);
}

/** Fetch an ok job result or die with the job's captured error. */
inline const RunResult &
require(const exp::JobResult &r)
{
    if (!r.ok)
        fatal("job '" + r.label + "' failed: " + r.error);
    return r.result;
}

/** Print a banner naming the experiment. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n");
}

/** Run one mix under @p cfg with the given policy. */
inline RunResult
runPolicy(SystemConfig cfg, PolicyKind policy, const Mix &mix,
          std::uint64_t instr, std::uint64_t salt = 0)
{
    cfg.policy = policy;
    return runMix(cfg, mix, instr, salt);
}

/** Queue runPolicy() as a sweep job; returns its submission index. */
inline std::size_t
queuePolicy(exp::SweepRunner &runner, const SystemConfig &cfg,
            PolicyKind policy, const Mix &mix, std::uint64_t instr,
            std::uint64_t salt = 0)
{
    exp::JobSpec spec;
    spec.cfg = cfg;
    spec.mix = mix;
    spec.policy = policy;
    spec.instr = instr;
    spec.seedSalt = salt;
    return runner.add(std::move(spec));
}

/** Queue an alone-IPC run (custom job; result.ipc = {alone_ipc}). */
inline std::size_t
queueAloneIpc(exp::SweepRunner &runner, const SystemConfig &cfg,
              const WorkloadProfile &profile, std::uint64_t instr,
              std::uint64_t salt = 0)
{
    exp::JobSpec spec;
    spec.cfg = cfg;
    spec.instr = instr;
    spec.seedSalt = salt;
    spec.label = profile.name + "/alone";
    spec.custom = [cfg, profile, instr, salt] {
        RunResult r;
        r.mixName = profile.name;
        r.ipc = {aloneIpc(cfg, profile, instr, salt)};
        return r;
    };
    return runner.add(std::move(spec));
}

/** Throughput-normalized speedup (rate-mode weighted speedup). */
inline double
speedup(const RunResult &test, const RunResult &base)
{
    return test.throughput() / base.throughput();
}

/** Collector printing per-workload rows plus a geometric mean. */
class SpeedupTable
{
  public:
    explicit SpeedupTable(std::string header) : header_(std::move(header))
    {
        std::printf("%-18s %s\n", "workload", header_.c_str());
    }

    void
    row(const std::string &name, const std::vector<double> &values)
    {
        if (columns_.empty())
            columns_.resize(values.size());
        std::printf("%-18s", name.c_str());
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::printf(" %10.3f", values[i]);
            columns_[i].push_back(values[i]);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    void
    finish(const char *label = "GMEAN")
    {
        std::printf("%-18s", label);
        for (auto &col : columns_) {
            // Delta columns (hit-rate changes) can be non-positive:
            // fall back to the arithmetic mean for those.
            bool all_positive = true;
            for (double v : col)
                all_positive &= v > 0.0;
            std::printf(" %10.3f",
                        all_positive ? geomean(col) : mean(col));
        }
        std::printf("\n");
    }

    std::vector<double> column(std::size_t i) const { return columns_[i]; }

  private:
    std::string header_;
    std::vector<std::vector<double>> columns_;
};

} // namespace dapsim::bench

#endif // DAPSIM_BENCH_BENCH_UTIL_HH
