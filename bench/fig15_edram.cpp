/**
 * @file
 * Figure 15: DAP on the sectored eDRAM cache (three bandwidth
 * sources).
 *
 * Against the 256 MB (scaled 4 MB) baseline: DAP at 256 MB, the plain
 * 512 MB (scaled 8 MB) baseline, and DAP at 512 MB, plus the change
 * in hit ratio. Paper shape: DAP@256 gains ~7% while *lowering* the
 * hit rate ~9.5 points; the 512 MB baseline raises the hit rate but
 * gains only ~2%; DAP@512 delivers ~11%.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 15", "eDRAM cache: DAP vs capacity doubling");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig small = presets::edramSystem8(4);
    const SystemConfig big = presets::edramSystem8(8);

    SpeedupTable table(
        "  dap256     base512     dap512   dHit256  dHit512d");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult base256 =
            runPolicy(small, PolicyKind::Baseline, mix, instr);
        const RunResult dap256 =
            runPolicy(small, PolicyKind::Dap, mix, instr);
        const RunResult base512 =
            runPolicy(big, PolicyKind::Baseline, mix, instr);
        const RunResult dap512 =
            runPolicy(big, PolicyKind::Dap, mix, instr);
        table.row(w.name,
                  {speedup(dap256, base256), speedup(base512, base256),
                   speedup(dap512, base256),
                   dap256.msHitRatio - base256.msHitRatio,
                   dap512.msHitRatio - base256.msHitRatio});
    }
    table.finish("GMEAN");
    return 0;
}
