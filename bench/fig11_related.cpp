/**
 * @file
 * Figure 11: DAP vs the prior access-partitioning proposals.
 *
 * SBD (self-balancing dispatch, with forced page cleaning), SBD-WT
 * (write-through only), BATMAN (set disabling toward a target hit
 * rate) and DAP, normalized to the optimized baseline on the sectored
 * DRAM cache. Paper shape: SBD loses (forced cleaning congestion),
 * SBD-WT gains a little, BATMAN is near baseline, DAP wins clearly.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 11", "SBD / SBD-WT / BATMAN / DAP vs baseline");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    SpeedupTable table("      SBD     SBD-WT     BATMAN        DAP");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult base =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        std::vector<double> row;
        for (PolicyKind pol : {PolicyKind::Sbd, PolicyKind::SbdWt,
                               PolicyKind::Batman, PolicyKind::Dap})
            row.push_back(speedup(
                runPolicy(cfg, pol, mix, instr), base));
        table.row(w.name, row);
    }
    table.finish("GMEAN");
    return 0;
}
