/**
 * @file
 * Figure 13: DAP on a sixteen-core system.
 *
 * 16 cores, 16 MB (scaled 2 MB) L3, 8 GB (scaled 128 MB) MS$ at
 * 204.8 GB/s, dual-channel DDR4-3200 (51.2 GB/s), twelve
 * bandwidth-sensitive rate-16 mixes. Paper shape: gains comparable to
 * the eight-core system (14.6% average).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 13", "DAP on the sixteen-core configuration");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem16();

    SpeedupTable table("   speedup");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 16);
        const RunResult rb =
            runPolicy(cfg, PolicyKind::Baseline, mix, instr);
        const RunResult rd = runPolicy(cfg, PolicyKind::Dap, mix, instr);
        table.row(w.name, {speedup(rd, rb)});
    }
    table.finish("GMEAN");
    return 0;
}
