/**
 * @file
 * Figure 7: contribution of FWB / WB / IFRM / SFRM to all DAP
 * decisions per workload (sectored DRAM cache, rate-8).
 *
 * Paper shape: FWB and WB dominate across the board (23% and 40% of
 * decisions on average); IFRM and SFRM contribute for several
 * workloads, with omnetpp dominated by SFRM due to its high tag-cache
 * miss rate.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 7", "DAP decision mix: FWB / WB / IFRM / SFRM");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    SpeedupTable table("       FWB         WB       IFRM       SFRM");
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const RunResult dap =
            runPolicy(cfg, PolicyKind::Dap, rateMix(w, 8), instr);
        table.row(w.name,
                  {dap.fwbFraction(), dap.wbFraction(),
                   dap.ifrmFraction(), dap.sfrmFraction()});
    }
    table.finish("MEAN");
    return 0;
}
