/**
 * @file
 * Figure 10: DAP vs memory-side cache capacity and bandwidth.
 *
 * Top panel: capacities 2/4/8 GB (scaled 32/64/128 MB) at 102.4 GB/s.
 * Bottom panel: bandwidths 102.4/128/204.8 GB/s at 4 GB (scaled 64 MB).
 * Paper shape: DAP's benefit grows with capacity (bigger caches absorb
 * more accesses and drift further from the optimal partition) and
 * shrinks with cache bandwidth (the optimum moves toward the cache).
 *
 * Both panels run through the SweepRunner; pass `--jobs N` to
 * parallelize (rows are identical for any job count).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

/** Queue baseline+DAP per (workload, config) and print speedup rows. */
void
sweepPanel(const std::vector<SystemConfig> &configs,
           const char *header, std::uint64_t instr, std::size_t jobs)
{
    exp::SweepRunner runner;
    runner.setProgress(true);
    const auto workloads = bandwidthSensitiveWorkloads();
    for (const auto &w : workloads) {
        const Mix mix = rateMix(w, 8);
        for (const SystemConfig &cfg : configs) {
            queuePolicy(runner, cfg, PolicyKind::Baseline, mix, instr);
            queuePolicy(runner, cfg, PolicyKind::Dap, mix, instr);
        }
    }
    const auto results = runner.run(jobs);

    SpeedupTable table(header);
    std::size_t cursor = 0;
    for (const auto &w : workloads) {
        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult &rb = require(results[cursor++]);
            const RunResult &rd = require(results[cursor++]);
            row.push_back(speedup(rd, rb));
        }
        table.row(w.name, row);
    }
    table.finish("GMEAN");
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Figure 10", "DAP speedup vs MS$ capacity and bandwidth");
    const std::uint64_t instr = benchInstructions();
    const std::size_t jobs = benchJobs(argc, argv);

    std::printf("--- capacity sweep (bandwidth 102.4 GB/s) ---\n");
    {
        std::vector<SystemConfig> configs;
        for (std::uint64_t mb : {32u, 64u, 128u}) {
            SystemConfig cfg = presets::sectoredSystem8();
            cfg.sectored.capacityBytes = mb * kMiB;
            configs.push_back(cfg);
        }
        sweepPanel(configs, "      32MB       64MB      128MB", instr,
                   jobs);
    }

    std::printf("\n--- bandwidth sweep (capacity 64 MB scaled) ---\n");
    {
        std::vector<SystemConfig> configs;
        for (int point = 0; point < 3; ++point) {
            SystemConfig cfg = presets::sectoredSystem8();
            cfg.sectored.array =
                point == 0   ? dapsim::presets::hbm_102()
                : point == 1 ? dapsim::presets::hbm_128()
                             : dapsim::presets::hbm_205();
            configs.push_back(cfg);
        }
        sweepPanel(configs, "     102.4      128.0      204.8", instr,
                   jobs);
    }
    return 0;
}
