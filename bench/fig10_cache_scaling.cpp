/**
 * @file
 * Figure 10: DAP vs memory-side cache capacity and bandwidth.
 *
 * Top panel: capacities 2/4/8 GB (scaled 32/64/128 MB) at 102.4 GB/s.
 * Bottom panel: bandwidths 102.4/128/204.8 GB/s at 4 GB (scaled 64 MB).
 * Paper shape: DAP's benefit grows with capacity (bigger caches absorb
 * more accesses and drift further from the optimal partition) and
 * shrinks with cache bandwidth (the optimum moves toward the cache).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 10", "DAP speedup vs MS$ capacity and bandwidth");
    const std::uint64_t instr = benchInstructions();

    std::printf("--- capacity sweep (bandwidth 102.4 GB/s) ---\n");
    {
        SpeedupTable table("      32MB       64MB      128MB");
        for (const auto &w : bandwidthSensitiveWorkloads()) {
            const Mix mix = rateMix(w, 8);
            std::vector<double> row;
            for (std::uint64_t mb : {32u, 64u, 128u}) {
                SystemConfig cfg = presets::sectoredSystem8();
                cfg.sectored.capacityBytes = mb * kMiB;
                const RunResult rb =
                    runPolicy(cfg, PolicyKind::Baseline, mix, instr);
                const RunResult rd =
                    runPolicy(cfg, PolicyKind::Dap, mix, instr);
                row.push_back(speedup(rd, rb));
            }
            table.row(w.name, row);
        }
        table.finish("GMEAN");
    }

    std::printf("\n--- bandwidth sweep (capacity 64 MB scaled) ---\n");
    {
        SpeedupTable table("     102.4      128.0      204.8");
        for (const auto &w : bandwidthSensitiveWorkloads()) {
            const Mix mix = rateMix(w, 8);
            std::vector<double> row;
            for (int point = 0; point < 3; ++point) {
                SystemConfig cfg = presets::sectoredSystem8();
                cfg.sectored.array =
                    point == 0   ? dapsim::presets::hbm_102()
                    : point == 1 ? dapsim::presets::hbm_128()
                                 : dapsim::presets::hbm_205();
                const RunResult rb =
                    runPolicy(cfg, PolicyKind::Baseline, mix, instr);
                const RunResult rd =
                    runPolicy(cfg, PolicyKind::Dap, mix, instr);
                row.push_back(speedup(rd, rb));
            }
            table.row(w.name, row);
        }
        table.finish("GMEAN");
    }
    return 0;
}
