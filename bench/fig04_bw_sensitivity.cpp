/**
 * @file
 * Figure 4: bandwidth sensitivity of all 17 workload snippets.
 *
 * Top panel: weighted speedup when the DRAM cache bandwidth doubles
 * from 102.4 to 204.8 GB/s (rate-8). Bottom panel: L3 MPKI. Paper
 * shape: the twelve bandwidth-sensitive snippets gain substantially;
 * the five insensitive ones barely move; sensitive workloads have the
 * higher average MPKI (20.4 vs 11.6 in the paper).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main()
{
    banner("Figure 4",
           "Speedup from doubling MS$ bandwidth (102.4 -> 204.8 GB/s) "
           "+ L3 MPKI");
    const std::uint64_t instr = benchInstructions();

    SystemConfig base = presets::sectoredSystem8();
    SystemConfig fast = base;
    fast.sectored.array = dapsim::presets::hbm_205();

    std::vector<double> sens_mpki, insens_mpki;
    SpeedupTable table("   speedup     L3MPKI");
    for (const auto &w : allWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult r1 =
            runPolicy(base, PolicyKind::Baseline, mix, instr);
        const RunResult r2 =
            runPolicy(fast, PolicyKind::Baseline, mix, instr);
        table.row(w.name + (w.bandwidthSensitive ? "" : " (i)"),
                  {speedup(r2, r1), r1.l3Mpki});
        (w.bandwidthSensitive ? sens_mpki : insens_mpki)
            .push_back(r1.l3Mpki);
    }
    table.finish("GMEAN");
    std::printf("\nmean L3 MPKI: bandwidth-sensitive %.1f, "
                "insensitive %.1f (paper: 20.4 vs 11.6)\n",
                mean(sens_mpki), mean(insens_mpki));
    return 0;
}
