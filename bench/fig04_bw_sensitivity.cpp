/**
 * @file
 * Figure 4: bandwidth sensitivity of all 17 workload snippets.
 *
 * Top panel: weighted speedup when the DRAM cache bandwidth doubles
 * from 102.4 to 204.8 GB/s (rate-8). Bottom panel: L3 MPKI. Paper
 * shape: the twelve bandwidth-sensitive snippets gain substantially;
 * the five insensitive ones barely move; sensitive workloads have the
 * higher average MPKI (20.4 vs 11.6 in the paper).
 *
 * The 34 simulations run through the SweepRunner; pass `--jobs N` to
 * parallelize (rows are identical for any job count).
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main(int argc, char **argv)
{
    banner("Figure 4",
           "Speedup from doubling MS$ bandwidth (102.4 -> 204.8 GB/s) "
           "+ L3 MPKI");
    const std::uint64_t instr = benchInstructions();
    const std::size_t jobs = benchJobs(argc, argv);

    SystemConfig base = presets::sectoredSystem8();
    SystemConfig fast = base;
    fast.sectored.array = dapsim::presets::hbm_205();

    exp::SweepRunner runner;
    runner.setProgress(true);
    for (const auto &w : allWorkloads()) {
        const Mix mix = rateMix(w, 8);
        queuePolicy(runner, base, PolicyKind::Baseline, mix, instr);
        queuePolicy(runner, fast, PolicyKind::Baseline, mix, instr);
    }
    const auto results = runner.run(jobs);

    std::vector<double> sens_mpki, insens_mpki;
    SpeedupTable table("   speedup     L3MPKI");
    std::size_t cursor = 0;
    for (const auto &w : allWorkloads()) {
        const RunResult &r1 = require(results[cursor++]);
        const RunResult &r2 = require(results[cursor++]);
        table.row(w.name + (w.bandwidthSensitive ? "" : " (i)"),
                  {speedup(r2, r1), r1.l3Mpki});
        (w.bandwidthSensitive ? sens_mpki : insens_mpki)
            .push_back(r1.l3Mpki);
    }
    table.finish("GMEAN");
    std::printf("\nmean L3 MPKI: bandwidth-sensitive %.1f, "
                "insensitive %.1f (paper: 20.4 vs 11.6)\n",
                mean(sens_mpki), mean(insens_mpki));
    return 0;
}
