/**
 * @file
 * Event-kernel benchmark: scheduler microbenchmarks + a pinned
 * end-to-end scenario, emitted as BENCH_kernel.json.
 *
 * The microbenchmarks drive the production `EventQueue` and the frozen
 * reference heap (`tests/reference_event_queue.hh`) through identical
 * event populations — self-rescheduling storms, same-tick bursts,
 * mixed near/far horizons, and large-capture callbacks — and report
 * dispatched events per second for each. Two directory rows do the
 * same for the SoA `AssocCache` against the frozen AoS oracle
 * (`tests/reference_assoc_cache.hh`): a hit-dominated probe storm and
 * a miss-dominated fill/evict churn, in operations per second. The
 * end-to-end section runs a pinned fig12-style heterogeneous 8-core
 * mix under the DAP policy and reports simulator wall-clock and
 * events per second.
 *
 * The JSON this binary writes is committed at the repo root so the
 * kernel's perf trajectory is tracked PR over PR; CI re-runs it in a
 * Release build and fails if the wheel-vs-reference speedup regresses
 * more than 10% against the committed numbers (ratios, not absolute
 * rates, so the check is hardware-independent).
 *
 * Usage: kernel_events [--out FILE] [--skip-e2e]
 * Env:   DAPSIM_BENCH_E2E_BEFORE_MS / DAPSIM_BENCH_E2E_BEFORE_EPS —
 *        optional pre-change end-to-end numbers to embed alongside the
 *        current measurement (used when regenerating the committed
 *        file across a kernel change).
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cache/assoc_cache.hh"
#include "common/event_queue.hh"
#include "common/json_writer.hh"
#include "common/rng.hh"
#include "reference_assoc_cache.hh"
#include "reference_event_queue.hh"
#include "sim/presets.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

using namespace dapsim;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Self-rescheduling storm: @p chains concurrent event chains, each
 * rescheduling itself a pseudo-random near-future delta ahead, the
 * steady-state shape of channel kicks and CAS completions.
 */
template <class Q>
std::uint64_t
stormSelfResched(Q &eq, std::uint64_t total, std::uint32_t chains)
{
    std::uint64_t executed = 0;
    struct Chain
    {
        Q *eq;
        Rng rng;
        std::uint64_t *executed;
        std::uint64_t budget;

        void
        fire()
        {
            ++*executed;
            if (budget-- == 0)
                return;
            eq->scheduleAfter(1 + rng.below(20'000),
                              [this] { fire(); });
        }
    };
    std::vector<Chain> state;
    state.reserve(chains);
    const std::uint64_t per = total / chains;
    for (std::uint32_t c = 0; c < chains; ++c) {
        state.push_back(Chain{&eq, Rng(c + 1), &executed, per});
        Chain *ch = &state.back();
        eq.schedule(1 + ch->rng.below(20'000), [ch] { ch->fire(); });
    }
    eq.run();
    return executed;
}

/**
 * Same-tick bursts: @p chains chains stepping in lockstep on a
 * 250 ps CPU clock edge, so every populated tick carries a burst of
 * simultaneous events (the clock-edge clustering the wheel exploits).
 */
template <class Q>
std::uint64_t
sameTickBurst(Q &eq, std::uint64_t total, std::uint32_t chains)
{
    std::uint64_t executed = 0;
    struct Chain
    {
        Q *eq;
        std::uint64_t *executed;
        std::uint64_t budget;

        void
        fire()
        {
            ++*executed;
            if (budget-- == 0)
                return;
            eq->scheduleAfter(250, [this] { fire(); });
        }
    };
    std::vector<Chain> state;
    state.reserve(chains);
    const std::uint64_t per = total / chains;
    for (std::uint32_t c = 0; c < chains; ++c) {
        state.push_back(Chain{&eq, &executed, per});
        Chain *ch = &state.back();
        eq.schedule(250, [ch] { ch->fire(); });
    }
    eq.run();
    return executed;
}

/**
 * Mixed horizons: mostly near-future chains plus refresh-period and
 * sampler-period chains that overflow any bounded wheel window.
 */
template <class Q>
std::uint64_t
mixedHorizon(Q &eq, std::uint64_t total, std::uint32_t chains)
{
    std::uint64_t executed = 0;
    struct Chain
    {
        Q *eq;
        Rng rng;
        std::uint64_t *executed;
        std::uint64_t budget;
        Tick farPeriod; ///< 0 selects random near-future deltas

        void
        fire()
        {
            ++*executed;
            if (budget-- == 0)
                return;
            const Tick dt =
                farPeriod ? farPeriod : 1 + rng.below(40'000);
            eq->scheduleAfter(dt, [this] { fire(); });
        }
    };
    std::vector<Chain> state;
    state.reserve(chains + 9);
    const std::uint64_t per = total / chains;
    for (std::uint32_t c = 0; c < chains; ++c)
        state.push_back(Chain{&eq, Rng(c + 1), &executed, per, 0});
    // Refresh-like chains (tREFI at DDR4-2400) and one sampler-like.
    for (int c = 0; c < 8; ++c)
        state.push_back(Chain{&eq, Rng(0), &executed, per,
                              7'812'500});
    state.push_back(Chain{&eq, Rng(0), &executed, per, 2'500'000});
    for (auto &ch : state) {
        Chain *p = &ch;
        eq.schedule(1 + p->rng.below(40'000), [p] { p->fire(); });
    }
    eq.run(static_cast<Tick>(per) * 45'000);
    return executed;
}

/**
 * Large captures: callbacks carrying 40 bytes of state — more than
 * std::function's inline buffer, so the reference heap allocates per
 * event while an SBO callback type does not.
 */
template <class Q>
std::uint64_t
largeCapture(Q &eq, std::uint64_t total, std::uint32_t chains)
{
    std::uint64_t executed = 0;
    struct Chain
    {
        Q *eq;
        Rng rng;
        std::uint64_t *executed;
        std::uint64_t budget;

        void
        fire(std::uint64_t a, std::uint64_t b, std::uint64_t c,
             std::uint64_t d)
        {
            *executed += 1 + ((a + b + c + d) & 0); // keep payload live
            if (budget-- == 0)
                return;
            Chain *self = this;
            eq->scheduleAfter(1 + rng.below(20'000),
                              [self, a, b, c, d] {
                                  self->fire(a, b, c, d);
                              });
        }
    };
    std::vector<Chain> state;
    state.reserve(chains);
    const std::uint64_t per = total / chains;
    for (std::uint32_t c = 0; c < chains; ++c) {
        state.push_back(Chain{&eq, Rng(c + 1), &executed, per});
        Chain *ch = &state.back();
        eq.schedule(1 + ch->rng.below(20'000),
                    [ch] { ch->fire(1, 2, 3, 4); });
    }
    eq.run();
    return executed;
}

/** Per-line metadata shaped like the sectored MS$ sector entry
 *  (three packed words: presence/dirty bitmaps plus a counter). */
struct DirMeta
{
    std::uint64_t present = 0;
    std::uint64_t dirty = 0;
    std::uint64_t touched = 0;
};

/**
 * Hit-dominated tag-directory probe storm: the steady-state shape of
 * the MS$/tag-cache lookup path. Pre-fills the whole directory, then
 * random find+touch over resident tags.
 */
template <class C>
std::uint64_t
dirProbeHits(C &dir, std::uint64_t ops, std::uint64_t sets,
             std::uint32_t ways)
{
    for (std::uint64_t s = 0; s < sets; ++s)
        for (std::uint32_t w = 0; w < ways; ++w)
            (void)dir.insert(s, 1000 + w, DirMeta{w, s, 0});
    Rng rng(7);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t set = rng.below(sets);
        const std::uint64_t tag = 1000 + rng.below(ways);
        if (DirMeta *m = dir.find(set, tag)) {
            ++m->touched;
            dir.touch(set, tag);
            ++hits;
        }
    }
    return hits == ops ? ops : 0; // all probes must hit
}

/**
 * Miss-dominated directory churn: a working set 4x the capacity, so
 * most probes miss and insert over an evicted victim — the fill path
 * a bandwidth-bound MS$ spends its time on.
 */
template <class C>
std::uint64_t
dirChurn(C &dir, std::uint64_t ops, std::uint64_t sets,
         std::uint32_t ways)
{
    Rng rng(11);
    const std::uint64_t tagSpace = 4ULL * ways;
    std::uint64_t victims = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t set = rng.below(sets);
        const std::uint64_t tag = rng.below(tagSpace);
        if (DirMeta *m = dir.find(set, tag)) {
            ++m->touched;
            dir.touch(set, tag);
        } else {
            victims +=
                dir.insert(set, tag, DirMeta{tag, set, 0}).valid;
        }
    }
    return victims == 0 ? 0 : ops; // churn must actually evict
}

struct Rate
{
    std::uint64_t events;
    double eventsPerSec;
};

/** Best-of-@p reps run of @p scenario on a fresh queue of type Q. */
template <class Q, class Fn>
Rate
measure(Fn scenario, int reps)
{
    Rate best{0, 0.0};
    for (int r = 0; r < reps; ++r) {
        Q eq;
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t n = scenario(eq);
        const double dt = secondsSince(t0);
        const double eps = static_cast<double>(n) / dt;
        if (eps > best.eventsPerSec)
            best = Rate{n, eps};
    }
    return best;
}

/** Best-of-@p reps run of a self-contained @p run (builds its own
 *  subject, returns the operation count). */
template <class Fn>
Rate
measureOps(Fn run, int reps)
{
    Rate best{0, 0.0};
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t n = run();
        const double dt = secondsSince(t0);
        const double ops = static_cast<double>(n) / dt;
        if (ops > best.eventsPerSec)
            best = Rate{n, ops};
    }
    return best;
}

struct ScenarioResult
{
    std::string name;
    Rate ref;
    Rate wheel;
};

/** The pinned fig12-style end-to-end scenario: 8-core heterogeneous
 *  mix, sectored MS$, DAP policy. Everything here is part of the
 *  tracked-benchmark contract — change it only with a note in
 *  BENCH_kernel.json history. */
struct E2eResult
{
    std::uint64_t events;
    double wallMs;
    double eventsPerSec;
    double warmupMs;
};

E2eResult
runE2e()
{
    const char *apps[8] = {"mcf",   "libquantum", "omnetpp",
                           "milc",  "hpcg",       "bwaves",
                           "gcc.expr", "parboil-lbm"};
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = 150'000;

    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(workloadByName(apps[i]), i));
    System sys(cfg, std::move(gens));

    const auto w0 = std::chrono::steady_clock::now();
    sys.warmup(20'000);
    const double warmupMs = secondsSince(w0) * 1e3;

    const std::uint64_t ev0 = sys.eventQueue().executed();
    const auto t0 = std::chrono::steady_clock::now();
    sys.run();
    const double dt = secondsSince(t0);
    const std::uint64_t events = sys.eventQueue().executed() - ev0;
    return E2eResult{events, dt * 1e3,
                     static_cast<double>(events) / dt, warmupMs};
}

/** Dispatched events per microbenchmark scenario (per rep). */
constexpr std::uint64_t kEvents = 3'000'000;

double
envDouble(const char *name)
{
    const char *v = std::getenv(name);
    return v ? std::atof(v) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_kernel.json";
    bool skipE2e = false;
    bool e2eOnly = false;
    int e2eReps = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--skip-e2e") == 0)
            skipE2e = true;
        else if (std::strcmp(argv[i], "--e2e-only") == 0)
            e2eOnly = true;
        else if (std::strcmp(argv[i], "--e2e-reps") == 0 &&
                 i + 1 < argc)
            // Repeat the end-to-end scenario (best-of) — for stable
            // wall-clock numbers and long profiling runs.
            e2eReps = std::atoi(argv[++i]);
        else {
            std::cerr << "usage: kernel_events [--out FILE]"
                         " [--skip-e2e] [--e2e-only]"
                         " [--e2e-reps N]\n";
            return 2;
        }
    }

    constexpr int kReps = 3;
    std::vector<ScenarioResult> results;

    const auto bench = [&](const std::string &name, auto scenario) {
        ScenarioResult r;
        r.name = name;
        r.ref = measure<RefEventQueue>(scenario, kReps);
        r.wheel = measure<EventQueue>(scenario, kReps);
        std::cout << name << ": ref "
                  << static_cast<std::uint64_t>(r.ref.eventsPerSec)
                  << " ev/s, kernel "
                  << static_cast<std::uint64_t>(r.wheel.eventsPerSec)
                  << " ev/s ("
                  << r.wheel.eventsPerSec / r.ref.eventsPerSec
                  << "x)\n";
        results.push_back(std::move(r));
    };

    if (!e2eOnly) {
    bench("storm_selfresched_512", [](auto &eq) {
        return stormSelfResched(eq, kEvents, 512);
    });
    bench("storm_selfresched_4096", [](auto &eq) {
        return stormSelfResched(eq, kEvents, 4096);
    });
    bench("same_tick_burst_512", [](auto &eq) {
        return sameTickBurst(eq, kEvents, 512);
    });
    bench("mixed_horizon_1024", [](auto &eq) {
        return mixedHorizon(eq, kEvents, 1024);
    });
    bench("large_capture_512", [](auto &eq) {
        return largeCapture(eq, kEvents, 512);
    });

    const auto benchDir = [&](const std::string &name,
                              std::uint64_t sets, std::uint32_t ways,
                              ReplPolicy policy, auto scenario) {
        ScenarioResult r;
        r.name = name;
        r.ref = measureOps(
            [&] {
                RefAssocCache<DirMeta> dir(sets, ways, policy);
                return scenario(dir, kEvents, sets, ways);
            },
            kReps);
        r.wheel = measureOps(
            [&] {
                AssocCache<DirMeta> dir(sets, ways, policy);
                return scenario(dir, kEvents, sets, ways);
            },
            kReps);
        std::cout << name << ": ref "
                  << static_cast<std::uint64_t>(r.ref.eventsPerSec)
                  << " op/s, kernel "
                  << static_cast<std::uint64_t>(r.wheel.eventsPerSec)
                  << " op/s ("
                  << r.wheel.eventsPerSec / r.ref.eventsPerSec
                  << "x)\n";
        results.push_back(std::move(r));
    };

    // Directory shapes mirror production users: the 16-way NRU
    // tag-cache/MS$ directory and an 8-way LRU fill/evict path.
    benchDir("dir_probe_hits_2048x16", 2048, 16, ReplPolicy::NRU,
             [](auto &dir, std::uint64_t ops, std::uint64_t sets,
                std::uint32_t ways) {
                 return dirProbeHits(dir, ops, sets, ways);
             });
    benchDir("dir_churn_4096x8", 4096, 8, ReplPolicy::LRU,
             [](auto &dir, std::uint64_t ops, std::uint64_t sets,
                std::uint32_t ways) {
                 return dirChurn(dir, ops, sets, ways);
             });
    }

    E2eResult e2e{0, 0.0, 0.0, 0.0};
    if (!skipE2e) {
        e2e = runE2e();
        for (int r = 1; r < e2eReps; ++r) {
            const E2eResult again = runE2e();
            if (again.wallMs < e2e.wallMs)
                e2e = again;
        }
        std::cout << "e2e_fig12_mix: " << e2e.events << " events in "
                  << e2e.wallMs << " ms ("
                  << static_cast<std::uint64_t>(e2e.eventsPerSec)
                  << " ev/s)\n";
    }

    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value("dapsim.benchkernel.v1");
    w.key("kernel").beginArray();
    for (const auto &r : results) {
        w.beginObject();
        w.key("name").value(r.name);
        w.key("events").value(r.ref.events);
        w.key("ref_events_per_sec").value(r.ref.eventsPerSec);
        w.key("kernel_events_per_sec").value(r.wheel.eventsPerSec);
        w.key("speedup").value(r.wheel.eventsPerSec /
                               r.ref.eventsPerSec);
        w.endObject();
    }
    w.endArray();
    if (!skipE2e) {
        w.key("e2e").beginObject();
        w.key("scenario").value("fig12_hetero_mix8_dap_150k");
        w.key("events").value(e2e.events);
        w.key("wall_ms").value(e2e.wallMs);
        w.key("events_per_sec").value(e2e.eventsPerSec);
        w.key("warmup_ms").value(e2e.warmupMs);
        const double beforeMs =
            envDouble("DAPSIM_BENCH_E2E_BEFORE_MS");
        const double beforeEps =
            envDouble("DAPSIM_BENCH_E2E_BEFORE_EPS");
        if (beforeMs > 0.0) {
            w.key("before_wall_ms").value(beforeMs);
            w.key("before_events_per_sec").value(beforeEps);
            w.key("wall_clock_speedup").value(beforeMs / e2e.wallMs);
        }
        w.endObject();
    }
    w.endObject();

    std::ofstream os(out);
    os << w.str() << '\n';
    if (!os) {
        std::cerr << "kernel_events: cannot write " << out << '\n';
        return 1;
    }
    std::cout << "wrote " << out << '\n';
    return 0;
}
