/**
 * @file
 * Tiered-memory sweep: DAP-n vs the two-source policies when a third
 * bandwidth source (a CXL/RDMA-style remote pool) backs the DDR tier.
 *
 * Part 1 sweeps the remote pool's bandwidth (DDR/S for S in
 * {2,4,8,16}) at a fixed 120 ns latency adder; part 2 sweeps the
 * latency adder ({60,120,240,480} ns) at the default DDR/4 bandwidth.
 * Each x-value runs a classic SPEC-style profile and a workload-engine
 * Zipf spec under baseline/dap/sbd/batman/bear and reports weighted
 * speedup over the optimized baseline. The reproduction target is the
 * shape: DAP-n's margin should grow with remote bandwidth (more
 * spare capacity for Eq 4 to claim) and shrink gracefully as the
 * latency adder climbs, while the hit-rate-maximizing policies leave
 * the third source idle.
 *
 * Every policy of a scenario forks from one shared functional warm-up
 * (see exp/sweep_runner.hh), so the grid costs one warm-up per row.
 */

#include "bench_util.hh"
#include "workload/compose.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

constexpr PolicyKind kPolicies[] = {PolicyKind::Baseline,
                                    PolicyKind::Dap, PolicyKind::Sbd,
                                    PolicyKind::Batman,
                                    PolicyKind::Bear};
constexpr std::size_t kNumPolicies =
    sizeof(kPolicies) / sizeof(kPolicies[0]);

/** One tiered scenario: a remote configuration on the 8-core system. */
struct Scenario
{
    const char *label;
    double bwScale;
    double latencyNs;
};

const Scenario kBandwidthGrid[] = {
    {"ddr/2", 2.0, 120.0},
    {"ddr/4", 4.0, 120.0},
    {"ddr/8", 8.0, 120.0},
    {"ddr/16", 16.0, 120.0},
};

const Scenario kLatencyGrid[] = {
    {"60ns", 4.0, 60.0},
    {"120ns", 4.0, 120.0},
    {"240ns", 4.0, 240.0},
    {"480ns", 4.0, 480.0},
};

/** The two workloads every scenario runs: one classic profile and one
 *  workload-engine spec. */
struct Stream
{
    const char *label;
    const char *spec;
};

const Stream kStreams[] = {
    {"hpcg", "hpcg"},
    {"zipf0.99", "zipf:skew=0.99,fp=16M"},
};
constexpr std::size_t kNumStreams =
    sizeof(kStreams) / sizeof(kStreams[0]);

/** Queue every policy of every (scenario, stream); returns the first
 *  job index of each row in row-major (scenario, stream) order. */
template <std::size_t N>
std::vector<std::size_t>
queueGrid(exp::SweepRunner &runner, const SystemConfig &base,
          const Scenario (&grid)[N], std::uint64_t instr)
{
    std::vector<std::size_t> first;
    for (const auto &s : grid) {
        SystemConfig cfg = base;
        cfg.remote.enabled = true;
        cfg.remote.bwScaleFactor = s.bwScale;
        cfg.remote.addLatencyNs = s.latencyNs;
        for (const auto &st : kStreams) {
            const Mix mix = workload::composeWorkload(st.spec, 8).mix;
            first.push_back(
                queuePolicy(runner, cfg, kPolicies[0], mix, instr));
            for (std::size_t p = 1; p < kNumPolicies; ++p)
                queuePolicy(runner, cfg, kPolicies[p], mix, instr);
        }
    }
    return first;
}

/** Print one speedup-over-baseline table for a queued grid. */
template <std::size_t N>
void
printGrid(const std::vector<exp::JobResult> &results,
          const Scenario (&grid)[N],
          const std::vector<std::size_t> &first, const char *header)
{
    SpeedupTable table(header);
    for (std::size_t i = 0; i < N; ++i) {
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            const std::size_t row = i * kNumStreams + s;
            const RunResult &base = require(results[first[row]]);
            std::vector<double> vals;
            for (std::size_t p = 1; p < kNumPolicies; ++p)
                vals.push_back(
                    speedup(require(results[first[row] + p]), base));
            table.row(std::string(grid[i].label) + "/" +
                          kStreams[s].label,
                      vals);
        }
    }
    table.finish("GMEAN");
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Tiered-memory sweep (remote third source)",
           "DAP-n vs SBD/BATMAN/BEAR with a remote bandwidth tier: "
           "remote-bandwidth and remote-latency sweeps (sectored DRAM "
           "cache, 8 cores)");
    const std::uint64_t instr = benchInstructions();
    const SystemConfig cfg = presets::sectoredSystem8();

    exp::SweepRunner runner;
    benchWarmupFork(runner, benchStoreDir(argc, argv));
    const auto bw_first = queueGrid(runner, cfg, kBandwidthGrid, instr);
    const auto lat_first = queueGrid(runner, cfg, kLatencyGrid, instr);
    const auto results = runner.run(benchJobs(argc, argv));

    std::printf("\n-- remote bandwidth sweep, 120 ns adder (speedup "
                "over baseline) --\n");
    printGrid(results, kBandwidthGrid, bw_first,
              "       dap        sbd     batman       bear");
    std::printf("\n-- remote latency sweep, DDR/4 bandwidth --\n");
    printGrid(results, kLatencyGrid, lat_first,
              "       dap        sbd     batman       bear");
    return 0;
}
