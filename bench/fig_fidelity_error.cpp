/**
 * @file
 * Accuracy-vs-speedup curve for the fidelity ladder.
 *
 * Runs the pinned fig12-style end-to-end scenario (8-core
 * heterogeneous mix, sectored MS$, DAP, 150k instructions per core —
 * the same contract kernel_events tracks) at every fidelity level:
 * exact once as the golden baseline, sampled at a range of sampling
 * periods, and analytic. Each row reports simulator wall-clock,
 * speedup over exact, aggregate IPC, its relative error against
 * exact, and whether exact falls inside the run's own reported
 * confidence interval — the curve EXPERIMENTS.md discusses.
 *
 * `--ci-guard` runs only exact and default-knob sampled (best of two
 * timings each) and fails unless sampled is >= 3x faster with <= 2%
 * aggregate-IPC error: the Release CI regression gate for the
 * fast-forward path.
 */

#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_util.hh"
#include "sim/fidelity.hh"
#include "sim/fidelity_runner.hh"
#include "sim/system.hh"
#include "trace/mixes.hh"
#include "trace/workloads.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

/** The pinned scenario (see bench/kernel_events.cpp runE2e). */
constexpr std::uint64_t kInstr = 150'000;
constexpr std::uint64_t kWarmup = 20'000;
constexpr double kGuardMinSpeedup = 3.0;
constexpr double kGuardMaxIpcError = 0.02;

Mix
pinnedMix()
{
    const char *apps[8] = {"mcf",      "libquantum", "omnetpp",
                           "milc",     "hpcg",       "bwaves",
                           "gcc.expr", "parboil-lbm"};
    Mix m;
    m.name = "fig12_hetero_mix8";
    for (const char *app : apps)
        m.apps.push_back(workloadByName(app));
    return m;
}

struct Timed
{
    RunResult result;
    double wallMs;
};

/** Warm and run the pinned scenario at @p fid; only the post-warmup
 *  simulation is timed (warm-up is identical across fidelities). */
Timed
runAt(const FidelityConfig &fid)
{
    SystemConfig cfg = presets::sectoredSystem8();
    cfg.policy = PolicyKind::Dap;
    cfg.core.instructions = kInstr;
    cfg.fidelity = fid;

    const Mix mix = pinnedMix();
    std::vector<AccessGeneratorPtr> gens;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i));
    System sys(cfg, std::move(gens));
    sys.warmup(kWarmup);

    const auto t0 = std::chrono::steady_clock::now();
    Timed t;
    t.result = runFidelityOn(sys, mix.name, kInstr);
    t.wallMs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count() *
               1e3;
    return t;
}

/** Best-of-@p reps timing (the result is identical across reps). */
Timed
runBest(const FidelityConfig &fid, int reps)
{
    Timed best = runAt(fid);
    for (int r = 1; r < reps; ++r) {
        const Timed t = runAt(fid);
        if (t.wallMs < best.wallMs)
            best.wallMs = t.wallMs;
    }
    return best;
}

int
ciGuard()
{
    const Timed exact = runBest(FidelityConfig{}, 2);
    FidelityConfig sampled;
    sampled.mode = FidelityMode::Sampled;
    const Timed fast = runBest(sampled, 2);

    const double speedup = exact.wallMs / fast.wallMs;
    const double err = std::fabs(fast.result.throughput() -
                                 exact.result.throughput()) /
                       exact.result.throughput();
    std::printf("ci-guard: exact %.1f ms, sampled %.1f ms -> %.2fx "
                "(need >= %.1fx); IPC err %.2f%% (need <= %.0f%%)\n",
                exact.wallMs, fast.wallMs, speedup, kGuardMinSpeedup,
                err * 1e2, kGuardMaxIpcError * 1e2);
    const bool ok =
        speedup >= kGuardMinSpeedup && err <= kGuardMaxIpcError;
    std::printf("ci-guard: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ci-guard") == 0)
            return ciGuard();
        std::fprintf(stderr,
                     "usage: fig_fidelity_error [--ci-guard]\n");
        return 2;
    }

    banner("Fidelity ladder",
           "accuracy vs speedup on the pinned fig12 scenario "
           "(8-core hetero mix, DAP, 150k instr/core)");

    const Timed exact = runAt(FidelityConfig{});
    const double goldenIpc = exact.result.throughput();
    std::printf("%-18s %9s %8s %8s %7s %7s %s\n", "mode", "wall_ms",
                "speedup", "ipc", "err%", "ci%", "exact_in_ci");
    std::printf("%-18s %9.1f %8.2f %8.3f %7.2f %7s %s\n", "exact",
                exact.wallMs, 1.0, goldenIpc, 0.0, "-", "-");

    auto row = [&](const std::string &name,
                   const FidelityConfig &fid) {
        const Timed t = runAt(fid);
        const double ipc = t.result.throughput();
        const double err = std::fabs(ipc - goldenIpc) / goldenIpc;
        const FidelityReport &f = t.result.fidelity;
        const bool inCi =
            std::fabs(f.ipcMean - goldenIpc) <= f.ipcCiHalf;
        std::printf("%-18s %9.1f %8.2f %8.3f %7.2f %7.2f %s\n",
                    name.c_str(), t.wallMs, exact.wallMs / t.wallMs,
                    ipc, err * 1e2,
                    f.ipcMean > 0.0 ? f.ipcCiHalf / f.ipcMean * 1e2
                                    : 0.0,
                    inCi ? "yes" : "no");
    };

    // Sampling-period sweep: the detail fraction falls (and speedup
    // rises) left to right; the CI widens with it.
    for (std::uint64_t period : {5'000, 10'000, 20'000, 50'000}) {
        FidelityConfig fid;
        fid.mode = FidelityMode::Sampled;
        fid.periodInstr = period;
        row("sampled/p" + std::to_string(period / 1'000) + "k", fid);
    }

    FidelityConfig analytic;
    analytic.mode = FidelityMode::Analytic;
    row("analytic", analytic);
    return 0;
}
