/**
 * @file
 * Table I: DAP's sensitivity to the window size W and the assumed
 * bandwidth efficiency E (geomean over the twelve bandwidth-sensitive
 * rate-8 mixes).
 *
 * Paper shape: W = 64 / E = 0.75 is the sweet spot; E = 1.0 is the
 * worst efficiency point because assuming full bandwidth makes DAP
 * partition too little.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

namespace
{

double
geomeanSpeedup(const SystemConfig &dap_cfg, std::uint64_t instr)
{
    const SystemConfig base = presets::sectoredSystem8();
    std::vector<double> v;
    for (const auto &w : bandwidthSensitiveWorkloads()) {
        const Mix mix = rateMix(w, 8);
        const RunResult rb =
            runPolicy(base, PolicyKind::Baseline, mix, instr);
        const RunResult rd = runPolicy(dap_cfg, PolicyKind::Dap, mix,
                                       instr);
        v.push_back(speedup(rd, rb));
    }
    return geomean(v);
}

} // namespace

int
main()
{
    banner("Table I",
           "DAP speedup sensitivity to window size W and efficiency E");
    const std::uint64_t instr = benchInstructions();

    std::printf("%-24s %10s\n", "configuration", "speedup");
    for (Cycle w : {32u, 64u, 128u}) {
        SystemConfig cfg = presets::sectoredSystem8();
        cfg.windowCycles = w;
        std::printf("W=%-4llu E=0.75           %10.3f\n",
                    static_cast<unsigned long long>(w),
                    geomeanSpeedup(cfg, instr));
        std::fflush(stdout);
    }
    for (double e : {0.50, 0.75, 1.00}) {
        SystemConfig cfg = presets::sectoredSystem8();
        cfg.dap.efficiency = e;
        std::printf("W=64   E=%-4.2f           %10.3f\n", e,
                    geomeanSpeedup(cfg, instr));
        std::fflush(stdout);
    }
    return 0;
}
