/**
 * @file
 * Table I: DAP's sensitivity to the window size W and the assumed
 * bandwidth efficiency E (geomean over the twelve bandwidth-sensitive
 * rate-8 mixes).
 *
 * Paper shape: W = 64 / E = 0.75 is the sweet spot; E = 1.0 is the
 * worst efficiency point because assuming full bandwidth makes DAP
 * partition too little.
 *
 * The sweep shares one set of baseline runs across all six DAP config
 * points (the serial version recomputed them per point) and runs all
 * 84 simulations through the SweepRunner; pass `--jobs N` to
 * parallelize.
 */

#include "bench_util.hh"

using namespace dapsim;
using namespace dapsim::bench;

int
main(int argc, char **argv)
{
    banner("Table I",
           "DAP speedup sensitivity to window size W and efficiency E");
    const std::uint64_t instr = benchInstructions();
    const std::size_t jobs = benchJobs(argc, argv);

    // The six (W, E) points of the table, W=64/E=0.75 appearing twice
    // to keep the printed rows identical to the serial version.
    struct Point
    {
        Cycle window;
        double efficiency;
    };
    std::vector<Point> points;
    for (Cycle w : {32u, 64u, 128u})
        points.push_back({w, 0.75});
    for (double e : {0.50, 0.75, 1.00})
        points.push_back({64, e});

    const SystemConfig base = presets::sectoredSystem8();
    const auto workloads = bandwidthSensitiveWorkloads();

    exp::SweepRunner runner;
    runner.setProgress(true);
    // One baseline run per mix, shared by every (W, E) point.
    for (const auto &w : workloads)
        queuePolicy(runner, base, PolicyKind::Baseline, rateMix(w, 8),
                    instr);
    for (const auto &p : points) {
        SystemConfig cfg = presets::sectoredSystem8();
        cfg.windowCycles = p.window;
        cfg.dap.efficiency = p.efficiency;
        for (const auto &w : workloads)
            queuePolicy(runner, cfg, PolicyKind::Dap, rateMix(w, 8),
                        instr);
    }
    const auto results = runner.run(jobs);

    std::printf("%-24s %10s\n", "configuration", "speedup");
    std::size_t cursor = workloads.size();
    for (std::size_t p = 0; p < points.size(); ++p) {
        std::vector<double> v;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const RunResult &rb = require(results[i]);
            const RunResult &rd = require(results[cursor++]);
            v.push_back(speedup(rd, rb));
        }
        if (p < 3)
            std::printf("W=%-4llu E=0.75           %10.3f\n",
                        static_cast<unsigned long long>(
                            points[p].window),
                        geomean(v));
        else
            std::printf("W=64   E=%-4.2f           %10.3f\n",
                        points[p].efficiency, geomean(v));
        std::fflush(stdout);
    }
    return 0;
}
