#include "memside/footprint_prefetcher.hh"

#include <type_traits>

#include "common/log.hh"

namespace dapsim
{

FootprintPrefetcher::FootprintPrefetcher(const FootprintConfig &cfg,
                                         std::uint32_t blocks_per_sector)
    : cfg_(cfg), blocksPerSector_(blocks_per_sector),
      idxDiv_(FastDiv::of(cfg.tableEntries)),
      table_(cfg.tableEntries)
{
    if (blocks_per_sector == 0 || blocks_per_sector > 64)
        fatal("FootprintPrefetcher: sector must hold 1..64 blocks");
}

std::size_t
FootprintPrefetcher::indexOf(std::uint64_t sector_number) const
{
    return static_cast<std::size_t>(idxDiv_.mod(
        (sector_number * 0x9e3779b97f4a7c15ULL) >> 32));
}

std::uint64_t
FootprintPrefetcher::predict(std::uint64_t sector_number,
                             std::uint32_t demand_blk)
{
    const std::uint64_t demand_bit = 1ULL << demand_blk;
    if (!cfg_.enabled)
        return demand_bit;
    predictions.inc();

    const Entry &e = table_[indexOf(sector_number)];
    if (e.tag == sector_number && e.mask != 0) {
        historyHits.inc();
        return e.mask | demand_bit;
    }

    // Cold prediction: a short sequential run from the demand block.
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < cfg_.coldRunLength; ++i) {
        const std::uint32_t blk = demand_blk + i;
        if (blk >= blocksPerSector_)
            break;
        mask |= 1ULL << blk;
    }
    return mask | demand_bit;
}

void
FootprintPrefetcher::recordEviction(std::uint64_t sector_number,
                                    std::uint64_t used_mask)
{
    if (!cfg_.enabled)
        return;
    Entry &e = table_[indexOf(sector_number)];
    e.tag = sector_number;
    e.mask = used_mask;
}

void
FootprintPrefetcher::save(ckpt::Serializer &s) const
{
    s.u64(table_.size());
    s.u32(blocksPerSector_);
    if (s.format() >= 2) {
        // Entry is two packed u64s; the whole table goes out as one
        // little-endian span (and restores with a single memcpy).
        static_assert(sizeof(Entry) == 2 * sizeof(std::uint64_t));
        static_assert(std::has_unique_object_representations_v<Entry>);
        s.u64Span(reinterpret_cast<const std::uint64_t *>(
                      table_.data()),
                  table_.size() * 2);
    } else {
        for (const Entry &e : table_) {
            s.u64(e.tag);
            s.u64(e.mask);
        }
    }
    s.u64(predictions.value());
    s.u64(historyHits.value());
}

void
FootprintPrefetcher::restore(ckpt::Deserializer &d)
{
    if (d.u64() != table_.size() || d.u32() != blocksPerSector_)
        throw ckpt::CkptError("ckpt: footprint table shape mismatch");
    if (d.format() >= 2) {
        d.u64Span(reinterpret_cast<std::uint64_t *>(table_.data()),
                  table_.size() * 2);
    } else {
        for (Entry &e : table_) {
            e.tag = d.u64();
            e.mask = d.u64();
        }
    }
    predictions.set(d.u64());
    historyHits.set(d.u64());
}

} // namespace dapsim
