#include "memside/alloy_cache.hh"

namespace dapsim
{

/** Coordinates the TAD fetch with a predicted-miss early memory read. */
struct AlloyReadState
{
    bool earlyRead = false; ///< memory read launched in parallel
    bool memDone = false;
    bool needMem = false;   ///< resolved to a miss (or IFRM)
    bool completed = false;
    MemSideCache::Done done;

    void
    complete()
    {
        if (!completed && done) {
            completed = true;
            done();
        }
    }
};

AlloyCache::AlloyCache(EventQueue &eq, DramSystem &main_memory,
                       PartitionPolicy &policy,
                       const AlloyCacheConfig &cfg)
    : MemSideCache(eq, main_memory, policy), cfg_(cfg),
      array_(eq, cfg.array), dir_(cfg.numSets(), 1, ReplPolicy::LRU),
      dbc_(cfg.dbc), predictor_(cfg.predictorEntries, 3)
{
}

double
AlloyCache::effectivePeakAccPerCycle() const
{
    const double data_clocks =
        cfg_.array.ddr ? (cfg_.array.burstLength + 1) / 2
                       : cfg_.array.burstLength;
    const double tad_clocks = data_clocks + cfg_.tadExtraClocks;
    return cfg_.array.peakAccessesPerCpuCycle() * data_clocks /
           tad_clocks;
}

bool
AlloyCache::predictHit(Addr a) const
{
    // Region-hash (4 KB) indexed 2-bit counters; >= 2 predicts hit.
    const std::uint64_t region = a >> 12;
    const std::size_t i = static_cast<std::size_t>(
        (region * 0x9e3779b97f4a7c15ULL) >> 32) % predictor_.size();
    return predictor_[i] >= 2;
}

void
AlloyCache::trainPredictor(Addr a, bool hit)
{
    const std::uint64_t region = a >> 12;
    const std::size_t i = static_cast<std::size_t>(
        (region * 0x9e3779b97f4a7c15ULL) >> 32) % predictor_.size();
    if (hit) {
        if (predictor_[i] < 3)
            ++predictor_[i];
    } else if (predictor_[i] > 0) {
        --predictor_[i];
    }
}

void
AlloyCache::handleRead(Addr addr, Done done)
{
    window_.lookups++;
    const std::uint64_t set = setOf(addr);

    if (policy_.isSetDisabled(set)) {
        readMisses.inc();
        window_.aMm++;
        memAccess(addr, false, std::move(done));
        return;
    }

    SteerInfo steer;
    steer.expectedCacheLatency = static_cast<double>(
        array_.totalReadQueue() + 1) * static_cast<double>(
        cfg_.array.burstTicks()) + array_.meanReadLatency();
    steer.expectedMemLatency = static_cast<double>(
        mm_.totalReadQueue() + 1) * static_cast<double>(
        mm_.config().burstTicks()) + mm_.meanReadLatency();
    steer.predictedHit = predictHit(addr);
    if (policy_.steerToMemory(addr, steer)) {
        const Line *l = dir_.find(set, tagOf(addr));
        if (l == nullptr || !l->dirty) {
            memAccess(addr, false, std::move(done));
            return;
        }
    }

    // IFRM: the DBC tells us (after a 5-cycle SRAM probe, charged as
    // pure latency) whether the addressed line is known clean. The DBC
    // is keyed by block address so that spatially adjacent lines share
    // entries (hashed set indices would scatter the paper's
    // 64-consecutive-sets grouping).
    const DirtyBitCache::Probe probe = dbc_.probe(blockNumber(addr));
    if (probe.hit && !probe.dirty && policy_.shouldForceReadMiss(addr)) {
        forcedReadMisses.inc();
        window_.aMs++; // the TAD read this access would have demanded
        const Line *l = dir_.find(set, tagOf(addr));
        if (l != nullptr) {
            readHits.inc();
            window_.hits++;
            cleanReadHits.inc();
            window_.cleanHits++;
        } else {
            // The line was absent: the fill is bypassed implicitly.
            readMisses.inc();
            window_.aMm++;
            fillsBypassed.inc();
        }
        trainPredictor(addr, l != nullptr);
        memAccess(addr, false, std::move(done));
        return;
    }

    auto st = std::make_shared<AlloyReadState>();
    st->done = std::move(done);

    // Predicted miss: start miss handling early.
    if (!predictHit(addr)) {
        st->earlyRead = true;
        earlyMissReads.inc();
        memAccess(addr, false, [st] {
            st->memDone = true;
            if (st->needMem)
                st->complete();
        });
    }

    window_.aMs++; // TAD read
    array_.access(tadAddr(set), false,
                  [this, addr, st] { resolveRead(addr, st); },
                  cfg_.tadExtraClocks);
}

void
AlloyCache::resolveRead(Addr addr, std::shared_ptr<AlloyReadState> st)
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *l = dir_.find(set, tag);
    const bool hit = l != nullptr;
    policy_.noteReadOutcome(addr, hit);
    trainPredictor(addr, hit);
    if (hit == !st->earlyRead)
        predictorHits.inc();
    else
        predictorMisses.inc();

    if (hit) {
        readHits.inc();
        window_.hits++;
        if (!l->dirty) {
            cleanReadHits.inc();
            window_.cleanHits++;
        }
        dbc_.update(blockNumber(addr), l->dirty);
        if (st->earlyRead)
            wastedEarlyReads.inc(); // speculative memory read dropped
        st->complete(); // data arrived with the TAD
        return;
    }

    // Miss.
    readMisses.inc();
    window_.aMm++;
    if (st->earlyRead) {
        st->needMem = true;
        if (st->memDone)
            st->complete();
    } else {
        memAccess(addr, false, [st] { st->complete(); });
    }
    fill(addr);
}

void
AlloyCache::fill(Addr addr)
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);

    if (policy_.shouldBypassFillForReuse(addr)) {
        fillsBypassed.inc();
        return;
    }

    // The victim's data came back with the lookup TAD, so a dirty
    // victim needs only the memory write.
    auto victim = dir_.insert(set, tag, Line{});
    if (victim.valid && victim.value.dirty) {
        window_.aMm++;
        dirtyWritebacks.inc();
        const Addr vaddr = victim.tag << kBlockShift;
        memAccess(vaddr, true);
    }

    fills.inc();
    window_.aMs++; // fill TAD write
    dbc_.update(blockNumber(addr), false);
    array_.access(tadAddr(set), true, nullptr, cfg_.tadExtraClocks);
}

bool
AlloyCache::warmTouch(Addr addr, bool is_write)
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *l = dir_.find(set, tag);
    const bool hit = l != nullptr;
    if (l == nullptr) {
        dir_.insert(set, tag, Line{}); // direct-mapped: replaces victim
        l = dir_.find(set, tag);
    }
    if (is_write)
        l->dirty = true;
    dbc_.update(blockNumber(addr), l->dirty);
    trainPredictor(addr, true);
    return hit;
}

void
AlloyCache::handleWrite(Addr addr)
{
    window_.lookups++;
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);

    if (policy_.isSetDisabled(set)) {
        writeMisses.inc();
        memAccess(addr, true);
        return;
    }

    policy_.noteWrite(addr);
    window_.writes++;

    Line *l = dir_.find(set, tag);
    const bool present = l != nullptr;

    if (!present && !cfg_.presenceBit) {
        // Without the BEAR presence bit the TAD must be fetched to
        // discover the absence.
        window_.aMs++;
        array_.access(tadAddr(set), false, nullptr, cfg_.tadExtraClocks);
    }

    if (present) {
        writeHits.inc();
        window_.hits++;
        window_.aMs++;
        const bool write_through = policy_.shouldWriteThrough(addr);
        l->dirty = !write_through;
        dbc_.update(blockNumber(addr), l->dirty);
        array_.access(tadAddr(set), true, nullptr, cfg_.tadExtraClocks);
        if (write_through)
            memAccess(addr, true);
        return;
    }

    // Write miss: allocate over the victim. The victim's dirty state
    // must be discovered via a TAD fetch before it can be replaced.
    writeMisses.inc();
    window_.aMs++;
    array_.access(tadAddr(set), false, nullptr, cfg_.tadExtraClocks);
    auto victim = dir_.insert(set, tag, Line{});
    if (victim.valid && victim.value.dirty) {
        window_.aMm++;
        dirtyWritebacks.inc();
        const Addr vaddr = victim.tag << kBlockShift;
        memAccess(vaddr, true);
    }
    Line *nl = dir_.find(set, tag);
    const bool write_through = policy_.shouldWriteThrough(addr);
    nl->dirty = !write_through;
    dbc_.update(blockNumber(addr), nl->dirty);
    window_.aMs++;
    array_.access(tadAddr(set), true, nullptr, cfg_.tadExtraClocks);
    if (write_through)
        memAccess(addr, true);
}

void
AlloyCache::save(ckpt::Serializer &s) const
{
    saveBase(s);
    array_.save(s);
    dir_.save(s, [](ckpt::Serializer &sr, const Line &l) {
        sr.boolean(l.dirty);
    });
    dbc_.save(s);
    s.bytes(predictor_.data(), predictor_.size());
    s.u64(predictorHits.value());
    s.u64(predictorMisses.value());
    s.u64(earlyMissReads.value());
    s.u64(wastedEarlyReads.value());
}

void
AlloyCache::restore(ckpt::Deserializer &d)
{
    restoreBase(d);
    array_.restore(d);
    dir_.restore(d, [](ckpt::Deserializer &dr, Line &l) {
        l.dirty = dr.boolean();
    });
    dbc_.restore(d);
    const std::vector<std::uint8_t> pred = d.bytes();
    if (pred.size() != predictor_.size())
        throw ckpt::CkptError("ckpt: Alloy predictor size mismatch");
    predictor_ = pred;
    predictorHits.set(d.u64());
    predictorMisses.set(d.u64());
    earlyMissReads.set(d.u64());
    wastedEarlyReads.set(d.u64());
}

} // namespace dapsim
