/**
 * @file
 * Sectored die-stacked DRAM cache (paper Sections II, IV-A, VI-A).
 *
 * A 4-way set-associative cache with 4 KB sectors, NRU replacement,
 * metadata resident in the DRAM array (filtered by an SRAM tag cache),
 * footprint-prefetcher fills, and a single bidirectional set of HBM
 * channels serving reads, writes, fills, evictions and metadata.
 *
 * All of DAP's four techniques apply here: FWB on fills, WB on incoming
 * dirty L3 evictions, IFRM on known-clean read hits, SFRM on reads that
 * miss the tag cache. The controller also provides the hooks used by
 * the SBD and BATMAN comparison policies.
 */

#ifndef DAPSIM_MEMSIDE_SECTORED_DRAM_CACHE_HH
#define DAPSIM_MEMSIDE_SECTORED_DRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "cache/assoc_cache.hh"
#include "cache/sector.hh"
#include "common/inline_callback.hh"
#include "cache/tag_cache.hh"
#include "dram/presets.hh"
#include "memside/footprint_prefetcher.hh"
#include "memside/ms_cache.hh"

namespace dapsim
{

/** Configuration of the sectored DRAM cache. */
struct SectoredDramCacheConfig
{
    /** Scaled default: 64 MB stands in for the paper's 4 GB. */
    std::uint64_t capacityBytes = 64 * kMiB;
    std::uint32_t ways = 4;
    std::uint64_t sectorBytes = 4 * kKiB;

    DramConfig array = presets::hbm_102();
    TagCacheConfig tagCache{};
    FootprintConfig footprint{};

    std::uint64_t numSectors() const { return capacityBytes / sectorBytes; }
    std::uint64_t numSets() const { return numSectors() / ways; }
    std::uint32_t
    blocksPerSector() const
    {
        return static_cast<std::uint32_t>(sectorBytes / kBlockBytes);
    }
};

/** The sectored DRAM cache controller. */
class SectoredDramCache final : public MemSideCache
{
  public:
    SectoredDramCache(EventQueue &eq, DramSystem &main_memory,
                      PartitionPolicy &policy,
                      const SectoredDramCacheConfig &cfg);

    void handleRead(Addr addr, Done done) override;
    void handleWrite(Addr addr) override;
    std::uint64_t arrayCasOps() const override { return array_.casOps(); }

    DramSystem &array() { return array_; }
    TagCache &tagCache() { return tagCache_; }
    const SectoredDramCacheConfig &config() const { return cfg_; }

    /** Peak array bandwidth in accesses per CPU cycle (for DapConfig). */
    double
    arrayPeakAccPerCycle() const
    {
        return cfg_.array.peakAccessesPerCpuCycle();
    }

    /** Write back all dirty blocks of a sector and mark them clean
     *  (SBD forced cleaning). No-op if the sector is absent. */
    void cleanSector(Addr addr_in_sector);

    /** Flush and invalidate every sector of a set (BATMAN disable). */
    void flushSet(std::uint64_t set);

    void cleanRegion(Addr a) override { cleanSector(a); }
    void flushSetImpl(std::uint64_t set) override { flushSet(set); }
    bool warmTouch(Addr addr, bool is_write) override;

    void
    creditFastForward(std::uint64_t reads, std::uint64_t writes) override
    {
        array_.creditFastForward(reads, writes);
    }

    /** Test/diagnostic probe: is this block valid in the cache? */
    bool isBlockResident(Addr addr) const;

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    Counter steeredToMemory; ///< SBD latency-based steers
    Counter steerOverridden; ///< steers cancelled because block dirty

  private:
    /** Shared state coordinating an SFRM memory read with the tag
     *  fetch (one per read in flight, see SfrmRef). */
    struct SfrmState
    {
        bool active = false;      ///< SFRM read was launched
        bool memDone = false;     ///< MM response arrived
        bool missOrClean = false; ///< tag resolved to miss/clean hit
        bool dirtyHit = false;    ///< tag resolved to dirty hit
        bool completed = false;
        /** Intrusive count; non-atomic — each System is single-
         *  threaded, states never cross threads. Starts at 1 for the
         *  SfrmRef make() returns. */
        std::uint32_t refs = 1;
        Done done; ///< CPU completion (fired exactly once)

        void
        complete()
        {
            if (!completed && done) {
                completed = true;
                done();
            }
        }
    };

    /**
     * Refcounted handle to a pooled SfrmState. Replaces a per-read
     * make_shared on the hot path: storage recycles through the
     * thread-local CallbackSlotPool (which outlives every System on
     * the thread, so handles parked in undispatched event-queue or
     * channel callbacks destruct safely at teardown) and the count
     * needs no atomic operations.
     */
    class SfrmRef
    {
      public:
        SfrmRef() = default;
        SfrmRef(std::nullptr_t) {}

        /** Allocate a fresh state (refcount 1) from the slot pool. */
        static SfrmRef
        make()
        {
            static_assert(sizeof(SfrmState) <=
                          detail::CallbackSlotPool::kSlotBytes);
            return SfrmRef(::new (detail::CallbackSlotPool::alloc())
                               SfrmState());
        }

        SfrmRef(const SfrmRef &o) noexcept : s_(o.s_)
        {
            if (s_ != nullptr)
                ++s_->refs;
        }

        SfrmRef(SfrmRef &&o) noexcept : s_(o.s_) { o.s_ = nullptr; }

        SfrmRef &
        operator=(SfrmRef o) noexcept
        {
            std::swap(s_, o.s_);
            return *this;
        }

        ~SfrmRef() { release(); }

        SfrmState *operator->() const { return s_; }
        explicit operator bool() const { return s_ != nullptr; }

      private:
        explicit SfrmRef(SfrmState *s) : s_(s) {}

        void
        release() noexcept
        {
            if (s_ != nullptr && --s_->refs == 0) {
                s_->~SfrmState();
                detail::CallbackSlotPool::release(s_);
            }
        }

        SfrmState *s_ = nullptr;
    };

    // Address helpers. Sector size and way count are powers of two in
    // every production geometry; the FastDivs make the per-access
    // sector/block split shifts rather than hardware divides.
    std::uint64_t sectorNumber(Addr a) const { return secDiv_.div(a); }
    /** Hashed set index (spreads base-aligned per-core slices). */
    std::uint64_t setOf(std::uint64_t sec) const
    {
        return dir_.mapSet(indexHash(sec));
    }
    /** The full sector number serves as the tag. */
    std::uint64_t tagOf(std::uint64_t sec) const { return sec; }
    std::uint32_t
    blkOf(Addr a) const
    {
        return static_cast<std::uint32_t>(secDiv_.mod(a) / kBlockBytes);
    }
    std::uint64_t
    sectorNumberFrom(std::uint64_t, std::uint64_t tag) const
    {
        return tag;
    }

    /** DRAM-array address of a cached data block (sector-frame map). */
    Addr dataAddr(std::uint64_t sec, std::uint32_t blk) const;

    /** DRAM-array address of a set's metadata block. */
    Addr metaAddr(std::uint64_t set) const;

    /** Resolve a read once the tag state is known; completion flows
     *  through the SfrmState (which exists for every read). */
    void resolveRead(Addr addr, const SfrmRef &sfrm);

    /** Allocate a sector, evicting a victim and fetching the predicted
     *  footprint. @return whether the demand block will be filled. */
    bool allocateSector(Addr addr, std::uint64_t sec, std::uint32_t blk);

    /** Decide and record the fill of one block (FWB at launch).
     *  @return true when the block will be filled. */
    bool launchFill(std::uint64_t sec, std::uint32_t blk);

    /** Record a metadata mutation (tag-cache dirty or direct write). */
    void markMetaDirty(std::uint64_t set);

    /** Charge a metadata write-back CAS. */
    void issueMetaWrite(std::uint64_t set);

    /** Run tag lookup; calls @p next once metadata is available. */
    void lookupTags(Addr addr, bool is_read, EventQueue::Callback next,
                    const SfrmRef &sfrm);

    /** Write back dirty blocks of a victim sector. */
    void writebackVictim(std::uint64_t set, std::uint64_t victim_tag,
                         const SectorMeta &meta);

    SectoredDramCacheConfig cfg_;
    /** Per-access address split by cfg_.sectorBytes (see sectorNumber). */
    FastDiv secDiv_;
    /** Frame selection by cfg_.ways (see dataAddr). */
    FastDiv wayDiv_;
    DramSystem array_;
    AssocCache<SectorMeta> dir_;
    TagCache tagCache_;
    FootprintPrefetcher footprint_;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_SECTORED_DRAM_CACHE_HH
