#include "memside/ms_cache.hh"

#include <utility>

namespace dapsim
{

MemSideCache::MemSideCache(EventQueue &eq, DramSystem &main_memory,
                           PartitionPolicy &policy)
    : eq_(eq), mm_(main_memory), policy_(policy)
{
}

MemSideCache::~MemSideCache() = default;

void
MemSideCache::startWindows(Cycle window_cycles)
{
    if (windowsRunning_)
        return;
    windowsRunning_ = true;
    windowCycles_ = window_cycles;
    eq_.scheduleAfter(
        cpuCyclesToTicks(windowCycles_),
        EventQueue::Callback::of<&MemSideCache::windowTick>(this));
}

void
MemSideCache::stopWindows()
{
    windowsRunning_ = false;
}

void
MemSideCache::windowTick()
{
    if (!windowsRunning_)
        return;
    policy_.beginWindow(window_);
    window_ = WindowCounters{};
    for (Addr page : policy_.collectCleaningRequests())
        cleanRegion(page);
    for (std::uint64_t set : policy_.collectSetsToFlush())
        flushSetImpl(set);
    eq_.scheduleAfter(
        cpuCyclesToTicks(windowCycles_),
        EventQueue::Callback::of<&MemSideCache::windowTick>(this));
}

void
MemSideCache::memAccess(Addr addr, bool is_write, Done done,
                        bool low_priority)
{
    if (remote_ && policy_.shouldRouteToRemote(addr)) {
        window_.aRemote++;
        remote_->access(addr, is_write, std::move(done));
        return;
    }
    mm_.access(addr, is_write, std::move(done), 0, low_priority);
}

void
MemSideCache::saveBase(ckpt::Serializer &s) const
{
    if (windowsRunning_)
        throw ckpt::CkptError(
            "ckpt: MS$ window machinery running; checkpoints must be "
            "taken before the timed run");
    s.u64(window_.aMs);
    s.u64(window_.aMsRead);
    s.u64(window_.aMsWrite);
    s.u64(window_.aMm);
    s.u64(window_.readMisses);
    s.u64(window_.writes);
    s.u64(window_.cleanHits);
    s.u64(window_.lookups);
    s.u64(window_.hits);
    s.u64(readHits.value());
    s.u64(readMisses.value());
    s.u64(writeHits.value());
    s.u64(writeMisses.value());
    s.u64(cleanReadHits.value());
    s.u64(fills.value());
    s.u64(fillsBypassed.value());
    s.u64(writesBypassed.value());
    s.u64(forcedReadMisses.value());
    s.u64(speculativeReads.value());
    s.u64(speculativeWasted.value());
    s.u64(sectorEvictions.value());
    s.u64(dirtyWritebacks.value());
    // Appended only when a remote tier exists so 2-tier checkpoints
    // keep their exact historical byte layout.
    if (remote_ != nullptr)
        s.u64(window_.aRemote);
}

void
MemSideCache::restoreBase(ckpt::Deserializer &d)
{
    if (windowsRunning_)
        throw ckpt::CkptError(
            "ckpt: cannot restore into an MS$ with windows running");
    window_.aMs = d.u64();
    window_.aMsRead = d.u64();
    window_.aMsWrite = d.u64();
    window_.aMm = d.u64();
    window_.readMisses = d.u64();
    window_.writes = d.u64();
    window_.cleanHits = d.u64();
    window_.lookups = d.u64();
    window_.hits = d.u64();
    readHits.set(d.u64());
    readMisses.set(d.u64());
    writeHits.set(d.u64());
    writeMisses.set(d.u64());
    cleanReadHits.set(d.u64());
    fills.set(d.u64());
    fillsBypassed.set(d.u64());
    writesBypassed.set(d.u64());
    forcedReadMisses.set(d.u64());
    speculativeReads.set(d.u64());
    speculativeWasted.set(d.u64());
    sectorEvictions.set(d.u64());
    dirtyWritebacks.set(d.u64());
    if (remote_ != nullptr)
        window_.aRemote = d.u64();
}

} // namespace dapsim
