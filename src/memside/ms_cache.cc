#include "memside/ms_cache.hh"

namespace dapsim
{

MemSideCache::MemSideCache(EventQueue &eq, DramSystem &main_memory,
                           PartitionPolicy &policy)
    : eq_(eq), mm_(main_memory), policy_(policy)
{
}

MemSideCache::~MemSideCache() = default;

void
MemSideCache::startWindows(Cycle window_cycles)
{
    if (windowsRunning_)
        return;
    windowsRunning_ = true;
    windowCycles_ = window_cycles;
    eq_.scheduleAfter(cpuCyclesToTicks(windowCycles_),
                      [this] { windowTick(); });
}

void
MemSideCache::stopWindows()
{
    windowsRunning_ = false;
}

void
MemSideCache::windowTick()
{
    if (!windowsRunning_)
        return;
    policy_.beginWindow(window_);
    window_ = WindowCounters{};
    for (Addr page : policy_.collectCleaningRequests())
        cleanRegion(page);
    for (std::uint64_t set : policy_.collectSetsToFlush())
        flushSetImpl(set);
    eq_.scheduleAfter(cpuCyclesToTicks(windowCycles_),
                      [this] { windowTick(); });
}

} // namespace dapsim
