/**
 * @file
 * Base class for memory-side cache (MS$) controllers.
 *
 * Owns the pieces every architecture shares: the main-memory handle,
 * the partitioning policy, the per-window demand counters that feed
 * DAP's learning loop, and the common hit/miss statistics the paper
 * reports (read+write hit ratio, CAS fractions, fill/bypass counts).
 */

#ifndef DAPSIM_MEMSIDE_MS_CACHE_HH
#define DAPSIM_MEMSIDE_MS_CACHE_HH

#include <cstdint>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"
#include "memside/remote_memory.hh"
#include "policies/partition_policy.hh"

namespace dapsim
{

/** Abstract memory-side cache controller. */
class MemSideCache
{
  public:
    /** Completion callback for reads (writes are posted). Move-only,
     *  allocation-free for small captures (common/inline_callback.hh). */
    using Done = EventQueue::Callback;

    MemSideCache(EventQueue &eq, DramSystem &main_memory,
                 PartitionPolicy &policy);
    virtual ~MemSideCache();

    MemSideCache(const MemSideCache &) = delete;
    MemSideCache &operator=(const MemSideCache &) = delete;

    /** A read (L3 read miss) arriving from the SRAM hierarchy. */
    virtual void handleRead(Addr addr, Done done) = 0;

    /** A write (L3 dirty eviction) arriving from the SRAM hierarchy. */
    virtual void handleWrite(Addr addr) = 0;

    /** Number of 64B CAS operations the cache array has performed. */
    virtual std::uint64_t arrayCasOps() const = 0;

    /** Write back dirty blocks of a region and mark them clean (SBD
     *  forced cleaning). Default: no-op. */
    virtual void cleanRegion(Addr) {}

    /** Flush and invalidate a set (BATMAN disabling). Default: no-op. */
    virtual void flushSetImpl(std::uint64_t) {}

    /**
     * Functional warm-up touch: update directories (and tag cache /
     * footprint history) with zero timing and zero statistics, so a
     * short timed measurement starts from a steady-state cache.
     * Returns whether the touch hit (block present before the touch);
     * architectures without a directory report misses.
     */
    virtual bool warmTouch(Addr, bool /*is_write*/) { return false; }

    /**
     * Fast-forward bypass accounting: fold modeled array CAS counts
     * from an analytically priced interval into arrayCasOps() so
     * delivered-bandwidth statistics cover fast-forwarded traffic.
     * Timing and directory state are untouched. Default: no-op
     * (MS$-less systems have no array). Never called in exact
     * fidelity.
     */
    virtual void creditFastForward(std::uint64_t /*reads*/,
                                   std::uint64_t /*writes*/)
    {
    }

    /**
     * Functional policy warm-up at a sampled window entry: feed one
     * modeled steady-state window to the policy so credit state
     * re-converges before the next detailed segment, and clear the
     * partially accumulated demand counters. Never called in exact
     * fidelity.
     */
    void
    warmPolicyWindow(const WindowCounters &modeled)
    {
        policy_.beginWindow(modeled);
        window_ = WindowCounters{};
    }

    /**
     * Start the recurring W-cycle window that feeds demand counters to
     * the policy. Idempotent; stopWindows() halts it (so the event
     * queue can drain at the end of a run).
     */
    void startWindows(Cycle window_cycles);
    void stopWindows();

    /**
     * Checkpoint controller state (see src/ckpt/). Derived classes
     * extend this with their directories/arrays; the base serializes
     * the shared window counters and statistics. save() requires the
     * window machinery to be stopped (the pre-run quiescent state).
     */
    virtual void save(ckpt::Serializer &s) const { saveBase(s); }
    virtual void restore(ckpt::Deserializer &d) { restoreBase(d); }

    DramSystem &mainMemory() { return mm_; }
    PartitionPolicy &policy() { return policy_; }

    /** Attach the optional remote tier; lower-tier accesses are then
     *  split between DDR and the remote pool by the policy. */
    void setRemote(RemoteMemory *remote) { remote_ = remote; }
    RemoteMemory *remote() { return remote_; }

    /** Read+write hit ratio (the paper's combined hit rate). */
    double
    hitRatio() const
    {
        const std::uint64_t h = readHits.value() + writeHits.value();
        const std::uint64_t t = h + readMisses.value() +
                                writeMisses.value();
        return t ? static_cast<double>(h) / static_cast<double>(t) : 0.0;
    }

    double
    readMissRatio() const
    {
        const std::uint64_t t = readHits.value() + readMisses.value();
        return t ? static_cast<double>(readMisses.value()) /
                       static_cast<double>(t)
                 : 0.0;
    }

    /** Fraction of all CAS ops (MM + array) served by main memory. */
    double
    mainMemoryCasFraction() const
    {
        const std::uint64_t mm = mm_.casOps();
        const std::uint64_t total = mm + arrayCasOps();
        return total ? static_cast<double>(mm) /
                           static_cast<double>(total)
                     : 0.0;
    }

    // Common statistics (architecture code updates these).
    Counter readHits;
    Counter readMisses;
    Counter writeHits;
    Counter writeMisses;
    Counter cleanReadHits;
    Counter fills;
    Counter fillsBypassed;
    Counter writesBypassed;
    Counter forcedReadMisses;   ///< IFRM applications
    Counter speculativeReads;   ///< SFRM issues
    Counter speculativeWasted;  ///< SFRM responses dropped (dirty hits)
    Counter sectorEvictions;
    Counter dirtyWritebacks;    ///< dirty blocks written to main memory

  protected:
    /** Shared part of save()/restore() for derived classes. */
    void saveBase(ckpt::Serializer &s) const;
    void restoreBase(ckpt::Deserializer &d);

    /**
     * Issue one lower-tier (main-memory-bound) access. With a remote
     * tier attached the policy picks DDR vs remote per access; without
     * one this is exactly mm_.access(). All architecture code funnels
     * its main-memory traffic through here.
     */
    void memAccess(Addr addr, bool is_write, Done done = nullptr,
                   bool low_priority = false);

    /** Demand counters being accumulated for the current window. */
    WindowCounters window_;

    EventQueue &eq_;
    DramSystem &mm_;
    PartitionPolicy &policy_;
    RemoteMemory *remote_ = nullptr;

  private:
    void windowTick();

    bool windowsRunning_ = false;
    Cycle windowCycles_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_MS_CACHE_HH
