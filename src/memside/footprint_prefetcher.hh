/**
 * @file
 * Footprint prefetcher for sectored memory-side caches.
 *
 * On a sector allocation, only the blocks predicted to be used are
 * fetched from main memory (Jevdjic et al., the paper's reference
 * [26]). The predictor remembers the used-block bitmap observed during
 * a sector's previous residency in a direct-mapped history table.
 */

#ifndef DAPSIM_MEMSIDE_FOOTPRINT_PREFETCHER_HH
#define DAPSIM_MEMSIDE_FOOTPRINT_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dapsim
{

struct FootprintConfig
{
    std::size_t tableEntries = 65536; ///< direct-mapped history table
    /** Blocks fetched around the demand block when no history exists. */
    std::uint32_t coldRunLength = 8;
    bool enabled = true;
};

/** Per-sector footprint history predictor. */
class FootprintPrefetcher
{
  public:
    explicit FootprintPrefetcher(const FootprintConfig &cfg,
                                 std::uint32_t blocks_per_sector);

    /**
     * Predict the block mask to fetch for a sector being allocated on a
     * demand access to block @p demand_blk. Always includes the demand
     * block.
     */
    std::uint64_t predict(std::uint64_t sector_number,
                          std::uint32_t demand_blk);

    /** Record the used-block mask when a sector is evicted. */
    void recordEviction(std::uint64_t sector_number,
                        std::uint64_t used_mask);

    /** Checkpoint history table + statistics (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    Counter predictions;
    Counter historyHits;

  private:
    struct Entry
    {
        std::uint64_t tag = ~std::uint64_t(0);
        std::uint64_t mask = 0;
    };

    std::size_t indexOf(std::uint64_t sector_number) const;

    FootprintConfig cfg_;
    std::uint32_t blocksPerSector_;
    /** Table index reduction (a mask for power-of-two table sizes). */
    FastDiv idxDiv_;
    std::vector<Entry> table_;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_FOOTPRINT_PREFETCHER_HH
