/**
 * @file
 * Alloy cache: direct-mapped DRAM cache with fused tag-and-data (TAD)
 * units (Qureshi & Loh; paper Sections II, IV-B, VI-B).
 *
 * Every lookup moves a 72B TAD over the HBM bus (burst-6 over three
 * channel clocks instead of burst-4 over two), so the useful data
 * bandwidth is 2/3 of peak. A hit/miss predictor launches the memory
 * read early on predicted misses. For DAP, IFRM is enabled by the SRAM
 * dirty-bit cache (DBC), fills are implicitly bypassed when an IFRM
 * line is absent, and residual main-memory bandwidth funds
 * opportunistic write-through. The BEAR presence bit lets dirty L3
 * evictions skip the TAD fetch.
 */

#ifndef DAPSIM_MEMSIDE_ALLOY_CACHE_HH
#define DAPSIM_MEMSIDE_ALLOY_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/assoc_cache.hh"
#include "cache/dirty_bit_cache.hh"
#include "dram/presets.hh"
#include "memside/ms_cache.hh"

namespace dapsim
{

/** Configuration of the Alloy cache. */
struct AlloyCacheConfig
{
    /** Scaled default: 64 MB stands in for the paper's 4 GB. */
    std::uint64_t capacityBytes = 64 * kMiB;

    DramConfig array = presets::hbm_102();
    DirtyBitCacheConfig dbc{};

    /** Extra channel clocks to move a TAD instead of a 64B block. */
    std::uint32_t tadExtraClocks = 1;

    /** BEAR presence bit in the L3: dirty evictions of blocks known to
     *  be cached skip the TAD fetch. */
    bool presenceBit = true;

    /** Hit/miss predictor table size (region-hash, 2-bit counters). */
    std::size_t predictorEntries = 4096;

    std::uint64_t numSets() const { return capacityBytes / kBlockBytes; }
};

/** The Alloy cache controller. */
class AlloyCache final : public MemSideCache
{
  public:
    AlloyCache(EventQueue &eq, DramSystem &main_memory,
               PartitionPolicy &policy, const AlloyCacheConfig &cfg);

    void handleRead(Addr addr, Done done) override;
    void handleWrite(Addr addr) override;
    std::uint64_t arrayCasOps() const override { return array_.casOps(); }

    DramSystem &array() { return array_; }
    DirtyBitCache &dbc() { return dbc_; }
    const AlloyCacheConfig &config() const { return cfg_; }

    /** Effective peak data bandwidth in accesses per CPU cycle: peak
     *  derated by the TAD bloat (2/3 at the default burst). */
    double effectivePeakAccPerCycle() const;

    bool warmTouch(Addr addr, bool is_write) override;

    void
    creditFastForward(std::uint64_t reads, std::uint64_t writes) override
    {
        array_.creditFastForward(reads, writes);
    }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    Counter predictorHits;    ///< correct hit/miss predictions
    Counter predictorMisses;  ///< mispredictions
    Counter earlyMissReads;   ///< memory reads launched on predicted miss
    Counter wastedEarlyReads; ///< predicted-miss reads that hit after all

  private:
    struct Line
    {
        bool dirty = false;
    };

    std::uint64_t setOf(Addr a) const
    {
        return indexHash(blockNumber(a)) % cfg_.numSets();
    }
    std::uint64_t tagOf(Addr a) const { return blockNumber(a); }

    /** Array address of a set's TAD. */
    Addr tadAddr(std::uint64_t set) const
    {
        return set * kBlockBytes;
    }

    bool predictHit(Addr a) const;
    void trainPredictor(Addr a, bool hit);

    /** Resolve a read after the TAD arrives. */
    void resolveRead(Addr addr, std::shared_ptr<struct AlloyReadState> st);

    /** Fill @p addr over the victim of its set (TAD write). */
    void fill(Addr addr);

    AlloyCacheConfig cfg_;
    DramSystem array_;
    AssocCache<Line> dir_;
    DirtyBitCache dbc_;
    std::vector<std::uint8_t> predictor_;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_ALLOY_CACHE_HH
