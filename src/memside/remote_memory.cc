#include "memside/remote_memory.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.hh"

namespace dapsim
{

RemoteMemory::RemoteMemory(EventQueue &eq, const RemoteConfig &cfg,
                           double local_peak_gbps)
    : eq_(eq), cfg_(cfg)
{
    if (cfg.bwScaleFactor <= 0.0)
        fatal("remote: bwScaleFactor must be positive");
    if (cfg.addLatencyNs < 0.0)
        fatal("remote: addLatencyNs must be non-negative");
    if (cfg.maxOutstanding == 0)
        fatal("remote: maxOutstanding must be positive");
    if (local_peak_gbps <= 0.0)
        fatal("remote: local main-memory bandwidth must be positive");

    peakGBps_ = local_peak_gbps / cfg.bwScaleFactor;
    // One 64B block at peak GB/s occupies the link for
    // bytes / (GB/s) ns = bytes * 1000 / peak ps.
    transferTicks_ = static_cast<Tick>(
        std::llround(kBlockBytes * 1000.0 / peakGBps_));
    if (transferTicks_ == 0)
        transferTicks_ = 1;
    latencyTicks_ = static_cast<Tick>(std::llround(cfg.addLatencyNs * 1000.0));
}

double
RemoteMemory::peakAccessesPerCpuCycle() const
{
    return peakGBps_ * 1e9 / kBlockBytes * kCpuPeriodPs / kPsPerSecond;
}

void
RemoteMemory::notePeak()
{
    const std::uint64_t depth = inFlight_.size() + pending_.size();
    if (depth > queuePeak_)
        queuePeak_ = depth;
}

void
RemoteMemory::access(Addr addr, bool is_write, Done done)
{
    Transfer t;
    t.addr = addr;
    t.isWrite = is_write;
    t.issuedAt = eq_.now();
    t.done = std::move(done);
    if (inFlight_.size() >= cfg_.maxOutstanding) {
        pending_.push_back(std::move(t));
        notePeak();
        return;
    }
    issue(std::move(t));
}

void
RemoteMemory::issue(Transfer t)
{
    const Tick start = std::max(eq_.now(), busyUntil_);
    const Tick end = start + transferTicks_;
    busyUntil_ = end;
    busyTicks_ += transferTicks_;
    t.completeAt = end + latencyTicks_;
    if (trace_)
        trace_->onBusSpan(traceName_, 0, start, end, t.isWrite,
                          /*rowHit=*/false);
    eq_.schedule(t.completeAt,
                 EventQueue::Callback::of<&RemoteMemory::onComplete>(this));
    inFlight_.push_back(std::move(t));
    notePeak();
}

void
RemoteMemory::onComplete()
{
    Transfer t = std::move(inFlight_.front());
    inFlight_.pop_front();
    if (t.isWrite) {
        writes.inc();
    } else {
        reads.inc();
        readLatencySum_ += eq_.now() - t.issuedAt;
    }
    if (t.done)
        t.done();
    while (!pending_.empty() && inFlight_.size() < cfg_.maxOutstanding) {
        Transfer next = std::move(pending_.front());
        pending_.pop_front();
        issue(std::move(next));
    }
}

void
RemoteMemory::save(ckpt::Serializer &s) const
{
    const Tick now = eq_.now();
    auto putQueue = [&](const std::deque<Transfer> &q, bool in_flight) {
        s.u64(q.size());
        for (const Transfer &t : q) {
            if (!t.isWrite || t.done)
                throw ckpt::CkptError(
                    "ckpt: remote tier has outstanding reads; quiesce "
                    "demand traffic before checkpointing");
            s.u64(t.addr);
            if (in_flight)
                s.u64(t.completeAt - now);
        }
    };
    s.u64(busyUntil_ > now ? busyUntil_ - now : 0);
    putQueue(inFlight_, true);
    putQueue(pending_, false);
    s.u64(reads.value());
    s.u64(writes.value());
    s.u64(busyTicks_);
    s.u64(readLatencySum_);
    s.u64(queuePeak_);
}

void
RemoteMemory::restore(ckpt::Deserializer &d)
{
    if (!inFlight_.empty() || !pending_.empty())
        throw ckpt::CkptError("ckpt: cannot restore into a busy remote tier");
    const Tick now = eq_.now();
    busyUntil_ = now + d.u64();
    const std::uint64_t n_in_flight = d.u64();
    for (std::uint64_t i = 0; i < n_in_flight; ++i) {
        Transfer t;
        t.addr = d.u64();
        t.isWrite = true;
        t.issuedAt = now;
        t.completeAt = now + d.u64();
        eq_.schedule(t.completeAt,
                     EventQueue::Callback::of<&RemoteMemory::onComplete>(this));
        inFlight_.push_back(std::move(t));
    }
    const std::uint64_t n_pending = d.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
        Transfer t;
        t.addr = d.u64();
        t.isWrite = true;
        t.issuedAt = now;
        pending_.push_back(std::move(t));
    }
    reads.set(d.u64());
    writes.set(d.u64());
    busyTicks_ = d.u64();
    readLatencySum_ = d.u64();
    queuePeak_ = d.u64();
}

} // namespace dapsim
