/**
 * @file
 * Remote-memory tier: a third bandwidth source behind a serialized
 * link (CXL/RDMA-attached disaggregated memory).
 *
 * The model follows the disaggregated-memory configs used by
 * far-memory simulators: the remote pool's bandwidth is the local
 * main memory's divided by a scale factor, and every transfer pays a
 * fixed latency adder on top of its slot on the link. The link itself
 * is a single serialized resource — one 64B transfer occupies it for
 * blockBytes/peakGBps — with a credit window bounding transfers in
 * flight; excess requests wait in a FIFO. This is deliberately
 * simpler than the bank-level DRAM model: remote pools are
 * bandwidth/latency-shaped by their interconnect, not by row-buffer
 * locality the requester could exploit.
 */

#ifndef DAPSIM_MEMSIDE_REMOTE_MEMORY_HH
#define DAPSIM_MEMSIDE_REMOTE_MEMORY_HH

#include <cstdint>
#include <deque>
#include <string>

#include "ckpt/serializer.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/channel.hh"

namespace dapsim
{

/** Remote tier configuration (all knobs of the disaggregated model). */
struct RemoteConfig
{
    /** Whether the system has a remote tier at all. */
    bool enabled = false;

    /** Remote link peak bandwidth = local main-memory peak / this. */
    double bwScaleFactor = 4.0;

    /** Latency adder paid by every transfer, in nanoseconds. */
    double addLatencyNs = 120.0;

    /** Credit window: transfers in flight on the link before new
     *  requests queue behind them. */
    std::uint32_t maxOutstanding = 32;
};

/** One remote-memory pool (a single additional bandwidth source). */
class RemoteMemory
{
  public:
    using Done = EventQueue::Callback;

    /**
     * @param eq              event queue supplying time
     * @param cfg             the remote-tier knobs (must be enabled)
     * @param local_peak_gbps the local main memory's peak GB/s, which
     *                        cfg.bwScaleFactor divides
     */
    RemoteMemory(EventQueue &eq, const RemoteConfig &cfg,
                 double local_peak_gbps);

    /** Issue one 64B access. Writes are posted (null @p done). */
    void access(Addr addr, bool is_write, Done done = nullptr);

    const RemoteConfig &config() const { return cfg_; }

    /** Peak link bandwidth in GB/s. */
    double peakGBps() const { return peakGBps_; }

    /** Peak link bandwidth in 64B accesses per CPU cycle (DAP's
     *  B_remote). */
    double peakAccessesPerCpuCycle() const;

    /** Data moved over the link, in bytes. */
    std::uint64_t
    dataBytes() const
    {
        return (reads.value() + writes.value()) * kBlockBytes;
    }

    /** Mean read latency (request to data) in ticks. */
    double
    meanReadLatency() const
    {
        return reads.value() ? static_cast<double>(readLatencySum_) /
                                   static_cast<double>(reads.value())
                             : 0.0;
    }

    /** Link utilization in [0,1] over @p elapsed ticks. */
    double
    busUtilization(Tick elapsed) const
    {
        return elapsed ? static_cast<double>(busyTicks_) /
                             static_cast<double>(elapsed)
                       : 0.0;
    }

    /** High-water mark of queued + in-flight transfers. */
    std::uint64_t queuePeakDepth() const { return queuePeak_; }

    /** Transfers currently queued or in flight. */
    std::size_t
    outstanding() const
    {
        return inFlight_.size() + pending_.size();
    }

    /**
     * Fast-forward bypass accounting: add modeled transfer counts from
     * an analytically priced interval so reads/writes (and thus
     * dataBytes() and bandwidth stats) cover fast-forwarded traffic.
     * The link and its latency tracking never see these transfers
     * (meanReadLatency() stays the detailed-segment mean). Never
     * called in exact fidelity.
     */
    void
    creditFastForward(std::uint64_t r, std::uint64_t w)
    {
        reads.inc(r);
        writes.inc(w);
    }

    /** Attach a bus observability hook; @p source names this tier in
     *  emitted spans. Null detaches. */
    void
    setBusTrace(BusTraceHook *hook, const std::string &source)
    {
        trace_ = hook;
        traceName_ = source;
    }

    /**
     * Checkpoint the link state (see src/ckpt/). Queued posted writes
     * serialize with link times relative to now, so a restore into a
     * fresh event queue replays the remaining drain exactly; reads
     * carry completion callbacks we cannot serialize, so save() throws
     * CkptError while any read is outstanding.
     */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    // Statistics (sampler-registrable).
    Counter reads;
    Counter writes;

  private:
    struct Transfer
    {
        Addr addr = 0;
        bool isWrite = false;
        Tick issuedAt = 0;   ///< arrival time (read latency base)
        Tick completeAt = 0; ///< link slot end + latency adder
        Done done;
    };

    void issue(Transfer t);
    void onComplete();
    void notePeak();

    EventQueue &eq_;
    RemoteConfig cfg_;
    double peakGBps_ = 0.0;
    Tick transferTicks_ = 0; ///< link occupancy of one 64B transfer
    Tick latencyTicks_ = 0;  ///< the fixed adder
    Tick busyUntil_ = 0;     ///< link reservation frontier

    /** Completions are in issue order: the link serializes transfers
     *  and the latency adder is constant, so FIFOs suffice. */
    std::deque<Transfer> inFlight_;
    std::deque<Transfer> pending_;

    BusTraceHook *trace_ = nullptr;
    std::string traceName_;

    std::uint64_t busyTicks_ = 0;
    std::uint64_t readLatencySum_ = 0;
    std::uint64_t queuePeak_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_REMOTE_MEMORY_HH
