#include "memside/sectored_dram_cache.hh"

namespace dapsim
{

SectoredDramCache::SectoredDramCache(EventQueue &eq,
                                     DramSystem &main_memory,
                                     PartitionPolicy &policy,
                                     const SectoredDramCacheConfig &cfg)
    : MemSideCache(eq, main_memory, policy), cfg_(cfg),
      secDiv_(FastDiv::of(cfg.sectorBytes)),
      wayDiv_(FastDiv::of(cfg.ways)),
      array_(eq, cfg.array),
      dir_(cfg.numSets(), cfg.ways, ReplPolicy::NRU),
      tagCache_(cfg.tagCache),
      footprint_(cfg.footprint, cfg.blocksPerSector())
{
}

Addr
SectoredDramCache::dataAddr(std::uint64_t sec, std::uint32_t blk) const
{
    // A sector occupies the frame (set, sec mod ways): blocks of a
    // sector share a DRAM row neighbourhood and the set's metadata is
    // co-located with its frames (as real sectored DRAM caches do).
    const std::uint64_t frame =
        setOf(sec) * cfg_.ways + wayDiv_.mod(sec);
    return frame * cfg_.sectorBytes +
           static_cast<Addr>(blk) * kBlockBytes;
}

Addr
SectoredDramCache::metaAddr(std::uint64_t set) const
{
    // Metadata lives alongside the set's first frame, sharing its row.
    return set * cfg_.ways * cfg_.sectorBytes;
}

void
SectoredDramCache::markMetaDirty(std::uint64_t set)
{
    if (cfg_.tagCache.enabled) {
        tagCache_.markDirty(set);
    } else {
        issueMetaWrite(set);
    }
}

void
SectoredDramCache::issueMetaWrite(std::uint64_t set)
{
    window_.aMs++;
    array_.access(metaAddr(set), true);
}

void
SectoredDramCache::lookupTags(Addr addr, bool is_read,
                              EventQueue::Callback next,
                              const SfrmRef &sfrm)
{
    const std::uint64_t set = setOf(sectorNumber(addr));
    const TagCache::LookupResult tc = tagCache_.access(set);
    if (tc.writebackNeeded)
        issueMetaWrite(set);

    if (tc.hit) {
        eq_.scheduleAfter(cpuCyclesToTicks(cfg_.tagCache.lookupCycles),
                          std::move(next));
        return;
    }

    // Metadata must be fetched from the DRAM array.
    window_.aMs++;
    if (is_read && sfrm && policy_.shouldSpeculateToMemory(addr)) {
        // SFRM: launch the memory read in parallel with the tag fetch.
        sfrm->active = true;
        speculativeReads.inc();
        memAccess(addr, false, [sfrm] {
            sfrm->memDone = true;
            if (sfrm->missOrClean)
                sfrm->complete();
            // A dirty hit drops this response (bandwidth wasted).
        });
    }
    array_.access(metaAddr(set), false, std::move(next));
}

void
SectoredDramCache::handleRead(Addr addr, Done done)
{
    window_.lookups++;
    const std::uint64_t set = setOf(sectorNumber(addr));

    if (policy_.isSetDisabled(set)) {
        // BATMAN: disabled sets are served straight from memory.
        readMisses.inc();
        window_.aMm++;
        memAccess(addr, false, std::move(done));
        return;
    }

    SteerInfo steer;
    steer.expectedCacheLatency = static_cast<double>(
        array_.totalReadQueue() + 1) * static_cast<double>(
        cfg_.array.burstTicks()) + array_.meanReadLatency();
    steer.expectedMemLatency = static_cast<double>(
        mm_.totalReadQueue() + 1) * static_cast<double>(
        mm_.config().burstTicks()) + mm_.meanReadLatency();
    if (policy_.steerToMemory(addr, steer)) {
        // SBD: serve from memory unless the block is dirty here.
        const std::uint64_t sec = sectorNumber(addr);
        const SectorMeta *m = dir_.find(set, tagOf(sec));
        if (m == nullptr || !m->isDirty(blkOf(addr))) {
            steeredToMemory.inc();
            memAccess(addr, false, std::move(done));
            return;
        }
        steerOverridden.inc();
    }

    SfrmRef sfrm = SfrmRef::make();
    sfrm->done = std::move(done);
    lookupTags(addr, true,
               [this, addr, sfrm] { resolveRead(addr, sfrm); },
               sfrm);
}

void
SectoredDramCache::resolveRead(Addr addr, const SfrmRef &sfrm)
{
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    SectorMeta *m = dir_.find(set, tag);
    policy_.noteReadOutcome(addr, m != nullptr && m->isValid(blk));
    if (m != nullptr && m->isValid(blk)) {
        // Read hit.
        readHits.inc();
        window_.hits++;
        window_.aMs++; // data-read demand on the cache
        dir_.touch(set, tag);
        m->touch(blk);
        const bool clean = !m->isDirty(blk);
        if (clean) {
            cleanReadHits.inc();
            window_.cleanHits++;
        }

        if (sfrm->active) {
            if (clean) {
                // SFRM already fetched the data from memory; use it.
                sfrm->missOrClean = true;
                if (sfrm->memDone)
                    sfrm->complete();
                return;
            }
            // Dirty hit: the memory response must be dropped and the
            // data read from the cache (wasted memory bandwidth).
            sfrm->dirtyHit = true;
            speculativeWasted.inc();
            array_.access(dataAddr(sec, blk), false,
                          [sfrm] { sfrm->complete(); });
            return;
        }

        if (clean && policy_.shouldForceReadMiss(addr)) {
            // IFRM: serve the clean hit from main memory.
            forcedReadMisses.inc();
            memAccess(addr, false, [sfrm] { sfrm->complete(); });
            return;
        }
        array_.access(dataAddr(sec, blk), false,
                      [sfrm] { sfrm->complete(); });
        return;
    }

    // Read miss (sector absent, or block invalid within the sector).
    readMisses.inc();
    window_.aMm++;

    bool fill;
    if (m != nullptr) {
        // Block miss within a resident sector.
        dir_.touch(set, tag);
        m->touch(blk);
        fill = launchFill(sec, blk);
    } else {
        fill = allocateSector(addr, sec, blk);
    }

    if (sfrm->active) {
        // The SFRM read doubles as the demand fetch.
        if (fill)
            array_.access(dataAddr(sec, blk), true);
        sfrm->missOrClean = true;
        if (sfrm->memDone)
            sfrm->complete();
    } else {
        memAccess(addr, false, [this, sec, blk, fill, sfrm] {
            if (fill)
                array_.access(dataAddr(sec, blk), true);
            sfrm->complete();
        });
    }
}

bool
SectoredDramCache::launchFill(std::uint64_t sec, std::uint32_t blk)
{
    // One prospective fill: the FWB decision is made at launch so the
    // directory is updated immediately (no duplicate in-flight misses);
    // the array write bandwidth is charged when the data arrives.
    window_.readMisses++; // fill candidate (R_m)
    window_.aMs++;        // prospective fill-write demand
    const std::uint64_t set = setOf(sec);
    SectorMeta *m = dir_.find(set, tagOf(sec));
    if (m == nullptr)
        return false;
    const Addr addr = sec * cfg_.sectorBytes +
                      static_cast<Addr>(blk) * kBlockBytes;
    if (policy_.shouldBypassFill(addr)) {
        fillsBypassed.inc();
        return false;
    }
    fills.inc();
    m->setValid(blk);
    markMetaDirty(set);
    return true;
}

void
SectoredDramCache::writebackVictim(std::uint64_t set,
                                   std::uint64_t victim_tag,
                                   const SectorMeta &meta)
{
    sectorEvictions.inc();
    const std::uint64_t vsec = sectorNumberFrom(set, victim_tag);
    footprint_.recordEviction(vsec, meta.touchedMask);
    for (std::uint32_t b = 0; b < cfg_.blocksPerSector(); ++b) {
        if (!meta.isDirty(b))
            continue;
        // Dirty block: read it out of the array, then write to memory.
        window_.aMs++; // eviction read demand
        window_.aMm++; // write-back demand
        const Addr waddr = vsec * cfg_.sectorBytes +
                           static_cast<Addr>(b) * kBlockBytes;
        array_.access(dataAddr(vsec, b), false, [this, waddr] {
            dirtyWritebacks.inc();
            memAccess(waddr, true);
        });
    }
}

bool
SectoredDramCache::allocateSector(Addr addr, std::uint64_t sec,
                                  std::uint32_t blk)
{
    (void)addr;
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);

    const std::uint64_t mask = footprint_.predict(sec, blk);

    auto victim = dir_.insert(set, tag, SectorMeta{});
    if (victim.valid)
        writebackVictim(set, victim.tag, victim.value);
    markMetaDirty(set);
    dir_.find(set, tag)->touch(blk);

    // Fetch the predicted footprint; the demand block's memory read is
    // issued by the caller (which also charges its fill write).
    bool demand_fill = false;
    for (std::uint32_t b = 0; b < cfg_.blocksPerSector(); ++b) {
        if ((mask & (1ULL << b)) == 0)
            continue;
        const bool fill = launchFill(sec, b);
        if (b == blk) {
            demand_fill = fill;
            continue;
        }
        if (!fill)
            continue; // bypassed prefetch: skip the memory fetch too
        window_.aMm++;
        const Addr baddr = sec * cfg_.sectorBytes +
                           static_cast<Addr>(b) * kBlockBytes;
        memAccess(baddr, false, [this, sec, b] {
            array_.access(dataAddr(sec, b), true);
        }, /*low_priority=*/true);
    }
    return demand_fill;
}

void
SectoredDramCache::handleWrite(Addr addr)
{
    window_.lookups++;
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    if (policy_.isSetDisabled(set)) {
        writeMisses.inc();
        memAccess(addr, true);
        return;
    }

    policy_.noteWrite(addr);
    window_.aMs++;   // write demand on the cache
    window_.writes++;

    // Writes are posted: tag lookup bandwidth is charged, but the
    // directory is updated immediately (metadata pipelining).
    lookupTags(addr, false, [] {}, nullptr);

    SectorMeta *m = dir_.find(set, tag);
    if (m != nullptr) {
        writeHits.inc();
        window_.hits++;
        dir_.touch(set, tag);
        m->touch(blk);
        if (policy_.shouldBypassWrite(addr)) {
            writesBypassed.inc();
            memAccess(addr, true);
            // The stale cached copy must be invalidated.
            if (m->isValid(blk)) {
                m->clearBlock(blk);
                markMetaDirty(set);
            }
            return;
        }
        m->setDirty(blk);
        markMetaDirty(set);
        array_.access(dataAddr(sec, blk), true);
        if (policy_.shouldWriteThrough(addr)) {
            // SBD write-through mode: memory stays current, line clean.
            memAccess(addr, true);
            m->clearBlock(blk);
            m->setValid(blk);
            markMetaDirty(set);
        }
        return;
    }

    // Sector miss: write-allocate (no data fetch; full-block writes).
    writeMisses.inc();
    if (policy_.shouldBypassWrite(addr)) {
        writesBypassed.inc();
        memAccess(addr, true);
        return;
    }
    auto victim = dir_.insert(set, tag, SectorMeta{});
    if (victim.valid)
        writebackVictim(set, victim.tag, victim.value);
    markMetaDirty(set);
    SectorMeta *nm = dir_.find(set, tag);
    nm->touch(blk);
    if (policy_.shouldWriteThrough(addr)) {
        memAccess(addr, true);
        nm->setValid(blk);
    } else {
        nm->setDirty(blk);
    }
    array_.access(dataAddr(sec, blk), true);
}

bool
SectoredDramCache::warmTouch(Addr addr, bool is_write)
{
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    tagCache_.access(set); // warm the tag cache (stats reset later)

    SectorMeta *m = dir_.find(set, tag);
    const bool hit = m != nullptr && (is_write || m->isValid(blk));
    if (m == nullptr) {
        const std::uint64_t mask = footprint_.predict(sec, blk);
        auto victim = dir_.insert(set, tag, SectorMeta{});
        if (victim.valid)
            footprint_.recordEviction(
                sectorNumberFrom(set, victim.tag),
                victim.value.touchedMask);
        m = dir_.find(set, tag);
        m->validMask = mask;
    }
    dir_.touch(set, tag);
    m->touch(blk);
    if (is_write)
        m->setDirty(blk);
    else
        m->setValid(blk);
    return hit;
}

bool
SectoredDramCache::isBlockResident(Addr addr) const
{
    const std::uint64_t sec = sectorNumber(addr);
    const SectorMeta *m = dir_.find(setOf(sec), tagOf(sec));
    return m != nullptr && m->isValid(blkOf(addr));
}

void
SectoredDramCache::cleanSector(Addr addr_in_sector)
{
    const std::uint64_t sec = sectorNumber(addr_in_sector);
    const std::uint64_t set = setOf(sec);
    SectorMeta *m = dir_.find(set, tagOf(sec));
    if (m == nullptr || !m->anyDirty())
        return;
    for (std::uint32_t b = 0; b < cfg_.blocksPerSector(); ++b) {
        if (!m->isDirty(b))
            continue;
        window_.aMs++;
        window_.aMm++;
        const Addr waddr = sec * cfg_.sectorBytes +
                           static_cast<Addr>(b) * kBlockBytes;
        array_.access(dataAddr(sec, b), false, [this, waddr] {
            dirtyWritebacks.inc();
            memAccess(waddr, true);
        });
    }
    m->dirtyMask = 0;
    markMetaDirty(set);
}

void
SectoredDramCache::flushSet(std::uint64_t set)
{
    dir_.flushSet(set, [this, set](std::uint64_t tag, SectorMeta &meta) {
        writebackVictim(set, tag, meta);
    });
    markMetaDirty(set);
}

void
SectoredDramCache::save(ckpt::Serializer &s) const
{
    saveBase(s);
    array_.save(s);
    dir_.save(s, [](ckpt::Serializer &sr, const SectorMeta &m) {
        sr.u64(m.validMask);
        sr.u64(m.dirtyMask);
        sr.u64(m.touchedMask);
    });
    tagCache_.save(s);
    footprint_.save(s);
    s.u64(steeredToMemory.value());
    s.u64(steerOverridden.value());
}

void
SectoredDramCache::restore(ckpt::Deserializer &d)
{
    restoreBase(d);
    array_.restore(d);
    dir_.restore(d, [](ckpt::Deserializer &dr, SectorMeta &m) {
        m.validMask = dr.u64();
        m.dirtyMask = dr.u64();
        m.touchedMask = dr.u64();
    });
    tagCache_.restore(d);
    footprint_.restore(d);
    steeredToMemory.set(d.u64());
    steerOverridden.set(d.u64());
}

} // namespace dapsim
