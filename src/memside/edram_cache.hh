/**
 * @file
 * Sectored eDRAM cache with split read/write channel sets (paper
 * Sections II, IV-C, VI-C; Crystalwell/Skylake-style).
 *
 * 16-way, 1 KB sectors, metadata in on-die SRAM (8-cycle lookup, no
 * metadata CAS traffic, hence no SFRM). Fills and incoming writes use
 * the write channels; hits and eviction read-outs use the read
 * channels; the system therefore has three bandwidth sources beyond
 * the SRAM hierarchy and DAP uses the three-source solver.
 */

#ifndef DAPSIM_MEMSIDE_EDRAM_CACHE_HH
#define DAPSIM_MEMSIDE_EDRAM_CACHE_HH

#include <cstdint>

#include "cache/assoc_cache.hh"
#include "cache/sector.hh"
#include "dram/presets.hh"
#include "memside/footprint_prefetcher.hh"
#include "memside/ms_cache.hh"

namespace dapsim
{

/** Configuration of the sectored eDRAM cache. */
struct EdramCacheConfig
{
    /** Scaled default: 4 MB stands in for the paper's 256 MB. */
    std::uint64_t capacityBytes = 4 * kMiB;
    std::uint32_t ways = 16;
    std::uint64_t sectorBytes = 1 * kKiB;

    DramConfig readChannels = presets::edram_dir_51();
    DramConfig writeChannels = presets::edram_dir_51();

    /** On-die SRAM metadata lookup, CPU cycles at 4 GHz. */
    Cycle tagLookupCycles = 8;

    FootprintConfig footprint{};

    std::uint64_t numSectors() const { return capacityBytes / sectorBytes; }
    std::uint64_t numSets() const { return numSectors() / ways; }
    std::uint32_t
    blocksPerSector() const
    {
        return static_cast<std::uint32_t>(sectorBytes / kBlockBytes);
    }
};

/** The sectored eDRAM cache controller. */
class EdramCache final : public MemSideCache
{
  public:
    EdramCache(EventQueue &eq, DramSystem &main_memory,
               PartitionPolicy &policy, const EdramCacheConfig &cfg);

    void handleRead(Addr addr, Done done) override;
    void handleWrite(Addr addr) override;

    std::uint64_t
    arrayCasOps() const override
    {
        return readArray_.casOps() + writeArray_.casOps();
    }

    DramSystem &readArray() { return readArray_; }
    DramSystem &writeArray() { return writeArray_; }
    const EdramCacheConfig &config() const { return cfg_; }

    double
    readPeakAccPerCycle() const
    {
        return cfg_.readChannels.peakAccessesPerCpuCycle();
    }

    double
    writePeakAccPerCycle() const
    {
        return cfg_.writeChannels.peakAccessesPerCpuCycle();
    }

    bool warmTouch(Addr addr, bool is_write) override;

    void
    creditFastForward(std::uint64_t reads, std::uint64_t writes) override
    {
        readArray_.creditFastForward(reads, 0);
        writeArray_.creditFastForward(0, writes);
    }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

  private:
    std::uint64_t sectorNumber(Addr a) const { return secDiv_.div(a); }
    std::uint64_t setOf(std::uint64_t sec) const
    {
        return dir_.mapSet(indexHash(sec));
    }
    std::uint64_t tagOf(std::uint64_t sec) const { return sec; }
    std::uint32_t
    blkOf(Addr a) const
    {
        return static_cast<std::uint32_t>(secDiv_.mod(a) / kBlockBytes);
    }
    std::uint64_t
    sectorNumberFrom(std::uint64_t, std::uint64_t tag) const
    {
        return tag;
    }

    Addr dataAddr(std::uint64_t sec, std::uint32_t blk) const;

    /** Resolve a read after the on-die tag lookup. */
    void resolveRead(Addr addr, Done done);

    bool launchFill(std::uint64_t sec, std::uint32_t blk);
    bool allocateSector(Addr addr, std::uint64_t sec, std::uint32_t blk);
    void writebackVictim(std::uint64_t set, std::uint64_t victim_tag,
                         const SectorMeta &meta);

    EdramCacheConfig cfg_;
    /** Per-access address split by cfg_.sectorBytes / cfg_.ways —
     *  shifts for the power-of-two production geometries. */
    FastDiv secDiv_;
    FastDiv wayDiv_;
    DramSystem readArray_;
    DramSystem writeArray_;
    AssocCache<SectorMeta> dir_;
    FootprintPrefetcher footprint_;
};

} // namespace dapsim

#endif // DAPSIM_MEMSIDE_EDRAM_CACHE_HH
