#include "memside/edram_cache.hh"

namespace dapsim
{

EdramCache::EdramCache(EventQueue &eq, DramSystem &main_memory,
                       PartitionPolicy &policy,
                       const EdramCacheConfig &cfg)
    : MemSideCache(eq, main_memory, policy), cfg_(cfg),
      secDiv_(FastDiv::of(cfg.sectorBytes)),
      wayDiv_(FastDiv::of(cfg.ways)),
      readArray_(eq, cfg.readChannels), writeArray_(eq, cfg.writeChannels),
      dir_(cfg.numSets(), cfg.ways, ReplPolicy::NRU),
      footprint_(cfg.footprint, cfg.blocksPerSector())
{
}

Addr
EdramCache::dataAddr(std::uint64_t sec, std::uint32_t blk) const
{
    const std::uint64_t frame =
        setOf(sec) * cfg_.ways + wayDiv_.mod(sec);
    return frame * cfg_.sectorBytes +
           static_cast<Addr>(blk) * kBlockBytes;
}

void
EdramCache::handleRead(Addr addr, Done done)
{
    window_.lookups++;
    const std::uint64_t set = setOf(sectorNumber(addr));

    if (policy_.isSetDisabled(set)) {
        readMisses.inc();
        window_.aMm++;
        memAccess(addr, false, std::move(done));
        return;
    }

    // On-die SRAM tag lookup: pure latency, no array bandwidth.
    eq_.scheduleAfter(cpuCyclesToTicks(cfg_.tagLookupCycles),
                      [this, addr, done = std::move(done)]() mutable {
                          resolveRead(addr, std::move(done));
                      });
}

void
EdramCache::resolveRead(Addr addr, Done done)
{
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    SectorMeta *m = dir_.find(set, tag);
    policy_.noteReadOutcome(addr, m != nullptr && m->isValid(blk));
    if (m != nullptr && m->isValid(blk)) {
        readHits.inc();
        window_.hits++;
        window_.aMs++;
        window_.aMsRead++;
        dir_.touch(set, tag);
        m->touch(blk);
        const bool clean = !m->isDirty(blk);
        if (clean) {
            cleanReadHits.inc();
            window_.cleanHits++;
            if (policy_.shouldForceReadMiss(addr)) {
                forcedReadMisses.inc();
                memAccess(addr, false, std::move(done));
                return;
            }
        }
        readArray_.access(dataAddr(sec, blk), false, std::move(done));
        return;
    }

    readMisses.inc();
    window_.aMm++;

    bool fill;
    if (m != nullptr) {
        dir_.touch(set, tag);
        m->touch(blk);
        fill = launchFill(sec, blk);
    } else {
        fill = allocateSector(addr, sec, blk);
    }
    memAccess(addr, false,
               [this, sec, blk, fill, done = std::move(done)] {
                   if (fill)
                       writeArray_.access(dataAddr(sec, blk), true);
                   if (done)
                       done();
               });
}

bool
EdramCache::launchFill(std::uint64_t sec, std::uint32_t blk)
{
    window_.readMisses++;
    window_.aMs++;
    window_.aMsWrite++;
    const std::uint64_t set = setOf(sec);
    SectorMeta *m = dir_.find(set, tagOf(sec));
    if (m == nullptr)
        return false;
    const Addr addr = sec * cfg_.sectorBytes +
                      static_cast<Addr>(blk) * kBlockBytes;
    if (policy_.shouldBypassFill(addr)) {
        fillsBypassed.inc();
        return false;
    }
    fills.inc();
    m->setValid(blk);
    return true;
}

void
EdramCache::writebackVictim(std::uint64_t set, std::uint64_t victim_tag,
                            const SectorMeta &meta)
{
    sectorEvictions.inc();
    const std::uint64_t vsec = sectorNumberFrom(set, victim_tag);
    footprint_.recordEviction(vsec, meta.touchedMask);
    for (std::uint32_t b = 0; b < cfg_.blocksPerSector(); ++b) {
        if (!meta.isDirty(b))
            continue;
        window_.aMs++;
        window_.aMsRead++; // eviction read-out uses the read channels
        window_.aMm++;
        const Addr waddr = vsec * cfg_.sectorBytes +
                           static_cast<Addr>(b) * kBlockBytes;
        readArray_.access(dataAddr(vsec, b), false, [this, waddr] {
            dirtyWritebacks.inc();
            memAccess(waddr, true);
        });
    }
}

bool
EdramCache::allocateSector(Addr addr, std::uint64_t sec,
                           std::uint32_t blk)
{
    (void)addr;
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);

    const std::uint64_t mask = footprint_.predict(sec, blk);

    auto victim = dir_.insert(set, tag, SectorMeta{});
    if (victim.valid)
        writebackVictim(set, victim.tag, victim.value);
    dir_.find(set, tag)->touch(blk);

    bool demand_fill = false;
    for (std::uint32_t b = 0; b < cfg_.blocksPerSector(); ++b) {
        if ((mask & (1ULL << b)) == 0)
            continue;
        const bool fill = launchFill(sec, b);
        if (b == blk) {
            demand_fill = fill;
            continue;
        }
        if (!fill)
            continue;
        window_.aMm++;
        const Addr baddr = sec * cfg_.sectorBytes +
                           static_cast<Addr>(b) * kBlockBytes;
        memAccess(baddr, false, [this, sec, b] {
            writeArray_.access(dataAddr(sec, b), true);
        }, /*low_priority=*/true);
    }
    return demand_fill;
}

bool
EdramCache::warmTouch(Addr addr, bool is_write)
{
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    SectorMeta *m = dir_.find(set, tag);
    const bool hit = m != nullptr && (is_write || m->isValid(blk));
    if (m == nullptr) {
        const std::uint64_t mask = footprint_.predict(sec, blk);
        auto victim = dir_.insert(set, tag, SectorMeta{});
        if (victim.valid)
            footprint_.recordEviction(
                sectorNumberFrom(set, victim.tag),
                victim.value.touchedMask);
        m = dir_.find(set, tag);
        m->validMask = mask;
    }
    dir_.touch(set, tag);
    m->touch(blk);
    if (is_write)
        m->setDirty(blk);
    else
        m->setValid(blk);
    return hit;
}

void
EdramCache::handleWrite(Addr addr)
{
    window_.lookups++;
    const std::uint64_t sec = sectorNumber(addr);
    const std::uint64_t set = setOf(sec);
    const std::uint64_t tag = tagOf(sec);
    const std::uint32_t blk = blkOf(addr);

    if (policy_.isSetDisabled(set)) {
        writeMisses.inc();
        memAccess(addr, true);
        return;
    }

    policy_.noteWrite(addr);
    window_.aMs++;
    window_.aMsWrite++;
    window_.writes++;

    SectorMeta *m = dir_.find(set, tag);
    if (m != nullptr) {
        writeHits.inc();
        window_.hits++;
        dir_.touch(set, tag);
        m->touch(blk);
        if (policy_.shouldBypassWrite(addr)) {
            writesBypassed.inc();
            memAccess(addr, true);
            if (m->isValid(blk))
                m->clearBlock(blk);
            return;
        }
        m->setDirty(blk);
        writeArray_.access(dataAddr(sec, blk), true);
        return;
    }

    writeMisses.inc();
    if (policy_.shouldBypassWrite(addr)) {
        writesBypassed.inc();
        memAccess(addr, true);
        return;
    }
    auto victim = dir_.insert(set, tag, SectorMeta{});
    if (victim.valid)
        writebackVictim(set, victim.tag, victim.value);
    SectorMeta *nm = dir_.find(set, tag);
    nm->touch(blk);
    nm->setDirty(blk);
    writeArray_.access(dataAddr(sec, blk), true);
}

void
EdramCache::save(ckpt::Serializer &s) const
{
    saveBase(s);
    readArray_.save(s);
    writeArray_.save(s);
    dir_.save(s, [](ckpt::Serializer &sr, const SectorMeta &m) {
        sr.u64(m.validMask);
        sr.u64(m.dirtyMask);
        sr.u64(m.touchedMask);
    });
    footprint_.save(s);
}

void
EdramCache::restore(ckpt::Deserializer &d)
{
    restoreBase(d);
    readArray_.restore(d);
    writeArray_.restore(d);
    dir_.restore(d, [](ckpt::Deserializer &dr, SectorMeta &m) {
        m.validMask = dr.u64();
        m.dirtyMask = dr.u64();
        m.touchedMask = dr.u64();
    });
    footprint_.restore(d);
}

} // namespace dapsim
