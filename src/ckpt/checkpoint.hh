/**
 * @file
 * The `dapsim.ckpt.v1`/`.v2` checkpoint formats and their high-level
 * API.
 *
 * A checkpoint captures a System at its quiescent point — tick 0,
 * after functional warm-up, before run() — so a restored run continues
 * bit-identically to an uninterrupted one. The container is a
 * journaled header (magic, version, config hashes, tick) followed by a
 * CRC32-guarded payload of named component sections (System::save).
 *
 * The two versions share the container and section framing and differ
 * only in the payload encoding: v1 is the per-primitive byte stream,
 * v2 (the default for new saves) stores large component arrays as
 * bulk little-endian spans so a restore is a handful of memcpys out
 * of the payload — which CheckpointView/readFileMapped can leave
 * memory-mapped on disk instead of copying onto the heap. Both
 * versions restore; see DESIGN.md §14.
 *
 * Two hashes guard restores:
 *  - stateHash covers everything the warm state depends on: the
 *    policy-invariant configuration (cores, caches, DRAM, prefetch),
 *    the access-stream description, the seed salt and the warm-up
 *    length. Warm-up never consults the partitioning policy, so a
 *    checkpoint with a matching stateHash seeds ANY policy variant —
 *    the basis of the sweep runner's warmup-fork mode.
 *  - fullHash additionally covers the policy kind and its
 *    configuration; an exact (non-fork) restore requires it to match.
 *
 * All failures throw ckpt::CkptError, never fatal(), so a bad restore
 * inside a sweep fails one job instead of the process.
 */

#ifndef DAPSIM_CKPT_CHECKPOINT_HH
#define DAPSIM_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/serializer.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"

namespace dapsim::ckpt
{

/** File magic: the first eight bytes of every checkpoint. */
inline constexpr char kMagic[8] = {'D', 'A', 'P', 'S', 'I', 'M', 'C', 'K'};

/** Per-primitive payload encoding (the "v1" in dapsim.ckpt.v1). */
inline constexpr std::uint32_t kVersionV1 = 1;

/** Bulk-span payload encoding (dapsim.ckpt.v2, mmap/memcpy restore). */
inline constexpr std::uint32_t kVersionV2 = 2;

/** Version newly captured checkpoints default to. */
inline constexpr std::uint32_t kVersion = kVersionV2;

/** Journaled checkpoint header (see DESIGN.md for the byte layout). */
struct CheckpointHeader
{
    std::uint32_t version = kVersion;
    /** Policy-invariant configuration + stream hash (fork grouping). */
    std::uint64_t stateHash = 0;
    /** stateHash + policy kind/configuration (exact restore). */
    std::uint64_t fullHash = 0;
    /** Simulated tick of the snapshot; always 0 in v1. */
    std::uint64_t tick = 0;
    std::uint64_t seedSalt = 0;
    /** Warm-up accesses per core actually executed before the snapshot. */
    std::uint64_t warmupPerCore = 0;
    /** Per-core instruction target of the capturing run (informational;
     *  the restoring run supplies its own). */
    std::uint64_t instr = 0;
    std::uint32_t numCores = 0;
    /** MsArch of the capturing system, as a stable integer id. */
    std::uint32_t archId = 0;
    /** Construction-time events pending at the snapshot (refresh). */
    std::uint64_t pendingEvents = 0;
};

/** A decoded checkpoint: header + the System::save payload. */
struct Checkpoint
{
    CheckpointHeader header;
    std::vector<std::uint8_t> payload;
};

/**
 * A non-owning-by-default window onto a validated checkpoint whose
 * payload bytes may live anywhere: a heap Checkpoint, or a read-only
 * file mapping (readFileMapped). Restores deserialize straight out of
 * @p payload — with a v2 payload the bulk arrays are memcpy'd from
 * the mapping into the component SoA arrays with no intermediate
 * decode or heap copy. @p backing keeps the bytes alive; a view with
 * a null payload means "no checkpoint".
 */
struct CheckpointView
{
    CheckpointHeader header{};
    const std::uint8_t *payload = nullptr;
    std::size_t payloadSize = 0;
    /** Owner of the payload bytes (mmap region or heap checkpoint). */
    std::shared_ptr<const void> backing;

    explicit operator bool() const { return payload != nullptr; }
};

/** View over a heap checkpoint; shares ownership so the view stays
 *  valid after the caller drops its reference. */
CheckpointView viewOf(std::shared_ptr<const Checkpoint> ckpt);

/** Non-owning view; @p ckpt must outlive the view. */
CheckpointView viewOf(const Checkpoint &ckpt);

/** Canonical description of a mix's access streams (hash input). */
std::string describeMix(const Mix &mix);

/** Stable integer id of an MsArch (the header's archId field). */
std::uint32_t archIdOf(MsArch arch);

/** The warm-up count runMix would execute for @p cfg (same formula). */
std::uint64_t resolveWarmCount(const SystemConfig &cfg);

/**
 * Hash of everything the warm state depends on. Compute from the
 * PRE-construction configuration (System's constructor derives DAP
 * fields and mutates policy configs in its own copy).
 */
std::uint64_t stateHash(const SystemConfig &cfg,
                        const std::string &stream_desc,
                        std::uint64_t seed_salt,
                        std::uint64_t warm_per_core);

/** stateHash extended with the policy kind and configuration. */
std::uint64_t fullHash(std::uint64_t state_hash, const SystemConfig &cfg);

/**
 * Snapshot @p sys (which must be at its quiescent point). The caller
 * provides the header's config hashes and bookkeeping fields; tick and
 * pendingEvents are filled in here. @p version selects the payload
 * encoding (kVersionV1 or kVersionV2).
 */
Checkpoint capture(System &sys, CheckpointHeader header,
                   std::uint32_t version = kVersion);

/** Serialize a checkpoint to the on-disk byte layout. */
std::vector<std::uint8_t> encode(const Checkpoint &ckpt);

/** Parse + validate (magic, version, CRC); throws CkptError. */
Checkpoint decode(const std::uint8_t *data, std::size_t size);
Checkpoint decode(const std::vector<std::uint8_t> &bytes);

/** Write/read the encoded form; throws CkptError on I/O failure. */
void writeFile(const std::string &path, const Checkpoint &ckpt);
Checkpoint readFile(const std::string &path);

/**
 * readFile without the heap copy: the file is memory-mapped read-only
 * and validated in place (magic, version, CRC), and the returned
 * view's payload points into the mapping, which lives as long as any
 * copy of the view does. Falls back to an ordinary heap read when the
 * platform/filesystem refuses the mapping.
 */
CheckpointView readFileMapped(const std::string &path);

/**
 * writeFile via temp-file + fsync + atomic rename: a reader never
 * observes a partially written checkpoint, and concurrent writers of
 * the same path race benignly (identical content under the
 * content-addressed `warmup-<statehash>.ckpt` naming). Shared warmup
 * caches must use this form — see exp/warmup_cache.hh.
 */
void writeFileAtomic(const std::string &path, const Checkpoint &ckpt);

/**
 * Build a System for (cfg, mix, seed_salt), run the functional warm-up
 * and capture the post-warmup checkpoint. @p instr is recorded in the
 * header (and used for the build) but does not affect the warm state.
 */
Checkpoint makeWarmupCheckpoint(SystemConfig cfg, const Mix &mix,
                                std::uint64_t instr,
                                std::uint64_t seed_salt,
                                std::uint32_t version = kVersion);

/**
 * runMix, but starting from @p ckpt instead of executing the warm-up.
 * Verifies stateHash (and, unless @p fork, fullHash) against the
 * checkpoint before restoring; throws CkptError on mismatch. With
 * @p fork the checkpoint's policy section is skipped, so a warm-up
 * taken under one policy seeds any policy variant.
 */
RunResult runMixFromCheckpoint(SystemConfig cfg, const Mix &mix,
                               std::uint64_t instr_per_core,
                               std::uint64_t seed_salt,
                               const CheckpointView &ckpt,
                               bool fork = false);

RunResult runMixFromCheckpoint(SystemConfig cfg, const Mix &mix,
                               std::uint64_t instr_per_core,
                               std::uint64_t seed_salt,
                               const Checkpoint &ckpt, bool fork = false);

} // namespace dapsim::ckpt

#endif // DAPSIM_CKPT_CHECKPOINT_HH
