#include "ckpt/checkpoint.hh"

#include <fstream>
#include <iterator>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fsio.hh"
#include "sim/fidelity_runner.hh"

namespace dapsim::ckpt
{

namespace
{

/**
 * Rough lower bound on the System::save payload size, used to
 * pre-reserve the Serializer buffer so a multi-MB snapshot doesn't
 * realloc its way up from empty. Dominant terms: the MS$ sector/line
 * directory and the L3 directory (v1 per-line overhead is 18 bytes +
 * the value encoding; the estimate uses v1, the larger of the two
 * encodings).
 */
std::size_t
payloadSizeHint(const SystemConfig &cfg)
{
    std::size_t hint = 1 << 20; // cores, DRAM, policy, slack
    const std::size_t l3Lines = cfg.l3.capacityBytes / kBlockBytes;
    hint += l3Lines * 20;
    switch (cfg.arch) {
      case MsArch::Sectored:
        hint += cfg.sectored.capacityBytes / cfg.sectored.sectorBytes *
                (18 + 24);
        hint += cfg.sectored.tagCache.entries * 20;
        hint += cfg.sectored.footprint.tableEntries * 16;
        break;
      case MsArch::Alloy:
        hint += cfg.alloy.capacityBytes / kBlockBytes * 20;
        hint += cfg.alloy.predictorEntries;
        break;
      case MsArch::Edram:
        hint += cfg.edram.capacityBytes / cfg.edram.sectorBytes *
                (18 + 24);
        hint += cfg.edram.footprint.tableEntries * 16;
        break;
      case MsArch::None:
        break;
    }
    return hint;
}

/** Canonicalize a DramConfig's timing/geometry (name excluded). */
void
putDram(Serializer &s, const DramConfig &c)
{
    s.u32(c.channels);
    s.u32(c.ranksPerChannel);
    s.u32(c.banksPerRank);
    s.u64(c.rowBufferBytes);
    s.u64(c.freqMHz);
    s.boolean(c.ddr);
    s.u32(c.channelWidthBits);
    s.u32(c.burstLength);
    s.u32(c.tCAS);
    s.u32(c.tRCD);
    s.u32(c.tRP);
    s.u32(c.tRAS);
    s.u32(c.ioDelayCycles);
    s.u32(c.tREFI);
    s.u32(c.tRFC);
    s.u32(c.turnaroundCycles);
    s.u32(c.writeQueueHigh);
    s.u32(c.writeQueueLow);
    s.u32(c.schedulerScanDepth);
}

void
putFootprint(Serializer &s, const FootprintConfig &c)
{
    s.u64(c.tableEntries);
    s.u32(c.coldRunLength);
    s.boolean(c.enabled);
}

std::uint32_t
policyId(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Baseline:
        return 0;
      case PolicyKind::Dap:
        return 1;
      case PolicyKind::Sbd:
        return 2;
      case PolicyKind::SbdWt:
        return 3;
      case PolicyKind::Batman:
        return 4;
      case PolicyKind::Bear:
        return 5;
    }
    return 0;
}

} // namespace

std::uint32_t
archIdOf(MsArch arch)
{
    switch (arch) {
      case MsArch::Sectored:
        return 0;
      case MsArch::Alloy:
        return 1;
      case MsArch::Edram:
        return 2;
      case MsArch::None:
        return 3;
    }
    return 3;
}

std::string
describeMix(const Mix &mix)
{
    // Canonical binary description of the per-core streams: the
    // parameters makeGenerator consumes, doubles as bit patterns so
    // formatting cannot lose precision.
    Serializer s;
    s.str(mix.name);
    s.u64(mix.apps.size());
    for (const WorkloadProfile &w : mix.apps) {
        s.str(w.name);
        // Workload-engine profiles are fully described by their spec
        // string (empty for classic profiles); the SyntheticParams
        // block below is then inert but kept for a stable layout.
        s.str(w.spec);
        const SyntheticParams &p = w.params;
        s.u64(p.footprintBytes);
        s.f64(p.hotFraction);
        s.f64(p.hotProbability);
        s.f64(p.streamFraction);
        s.f64(p.runLength);
        s.f64(p.writeFraction);
        s.f64(p.mpki);
        s.u64(p.base);
        s.u64(p.seed);
    }
    const auto &b = s.buffer();
    return std::string(reinterpret_cast<const char *>(b.data()),
                       b.size());
}

std::uint64_t
resolveWarmCount(const SystemConfig &cfg)
{
    std::uint64_t warm = cfg.warmupAccessesPerCore;
    if (warm == 0)
        warm = 2 * (cfg.msCapacityBytes() / kBlockBytes) / cfg.numCores;
    return warm;
}

std::uint64_t
stateHash(const SystemConfig &cfg, const std::string &stream_desc,
          std::uint64_t seed_salt, std::uint64_t warm_per_core)
{
    Serializer s;
    s.str("dapsim.ckpt.state.v1");
    s.u32(cfg.numCores);
    s.u64(cfg.windowCycles);
    s.u64(warm_per_core);
    s.u64(seed_salt);
    s.u32(archIdOf(cfg.arch));

    // Core (instruction target excluded: it is a run parameter, not
    // part of the warm state).
    s.u32(cfg.core.retireWidth);
    s.u32(cfg.core.robEntries);
    s.u32(cfg.core.maxOutstanding);

    s.u64(cfg.l3.capacityBytes);
    s.u32(cfg.l3.ways);
    s.u64(cfg.l3.latencyCycles);

    // Active architecture only: the inactive configs influence nothing.
    switch (cfg.arch) {
      case MsArch::Sectored:
        s.u64(cfg.sectored.capacityBytes);
        s.u32(cfg.sectored.ways);
        s.u64(cfg.sectored.sectorBytes);
        putDram(s, cfg.sectored.array);
        s.u64(cfg.sectored.tagCache.entries);
        s.u32(cfg.sectored.tagCache.ways);
        s.u32(cfg.sectored.tagCache.lookupCycles);
        s.boolean(cfg.sectored.tagCache.enabled);
        putFootprint(s, cfg.sectored.footprint);
        break;
      case MsArch::Alloy:
        s.u64(cfg.alloy.capacityBytes);
        putDram(s, cfg.alloy.array);
        s.u64(cfg.alloy.dbc.entries);
        s.u32(cfg.alloy.dbc.ways);
        s.u32(cfg.alloy.dbc.setsPerEntry);
        s.u32(cfg.alloy.dbc.lookupCycles);
        s.u32(cfg.alloy.tadExtraClocks);
        s.boolean(cfg.alloy.presenceBit);
        s.u64(cfg.alloy.predictorEntries);
        break;
      case MsArch::Edram:
        s.u64(cfg.edram.capacityBytes);
        s.u32(cfg.edram.ways);
        s.u64(cfg.edram.sectorBytes);
        putDram(s, cfg.edram.readChannels);
        putDram(s, cfg.edram.writeChannels);
        s.u64(cfg.edram.tagLookupCycles);
        putFootprint(s, cfg.edram.footprint);
        break;
      case MsArch::None:
        break;
    }

    putDram(s, cfg.mainMemory);

    // Appended only when enabled so 2-tier hashes stay stable across
    // the remote-tier introduction (and a tiered restore into a 2-tier
    // config — or vice versa — is refused by the hash check).
    if (cfg.remote.enabled) {
        s.boolean(true);
        s.f64(cfg.remote.bwScaleFactor);
        s.f64(cfg.remote.addLatencyNs);
        s.u32(cfg.remote.maxOutstanding);
    }

    s.boolean(cfg.prefetch.enabled);
    s.u32(cfg.prefetch.streams);
    s.u32(cfg.prefetch.degree);
    s.u32(cfg.prefetch.distance);
    s.u32(cfg.prefetch.minConfidence);

    s.str(stream_desc);
    return fnv1a(s.buffer());
}

std::uint64_t
fullHash(std::uint64_t state_hash, const SystemConfig &cfg)
{
    Serializer s;
    s.str("dapsim.ckpt.full.v1");
    s.u64(state_hash);
    s.u32(policyId(cfg.policy));

    s.boolean(cfg.dapExplicit);
    s.u32(archIdOf(cfg.arch));
    s.u64(cfg.dap.windowCycles);
    s.f64(cfg.dap.efficiency);
    s.f64(cfg.dap.msPeakAccPerCycle);
    s.f64(cfg.dap.msWritePeakAccPerCycle);
    s.f64(cfg.dap.mmPeakAccPerCycle);
    s.f64(cfg.dap.sfrmFactor);
    s.u32(cfg.dap.kShift);
    s.i64(cfg.dap.creditMax);
    s.i64(cfg.dap.targetCap);
    s.boolean(cfg.dap.enableFwb);
    s.boolean(cfg.dap.enableWb);
    s.boolean(cfg.dap.enableIfrm);
    s.boolean(cfg.dap.enableSfrm);
    s.u64(cfg.dap.ifrmCoreMask);

    s.u64(cfg.sbd.pageBytes);
    s.u64(cfg.sbd.dirtyListCapacity);
    s.u64(cfg.sbd.bloomBuckets);
    s.u32(cfg.sbd.bloomHashes);
    s.u8(cfg.sbd.writeThreshold);
    s.u64(cfg.sbd.decayWindows);
    s.boolean(cfg.sbd.writeThroughOnly);

    s.boolean(cfg.batmanExplicit);
    s.u64(cfg.batman.numSets);
    s.f64(cfg.batman.targetHitRate);
    s.f64(cfg.batman.hysteresis);
    s.u64(cfg.batman.epochWindows);
    s.f64(cfg.batman.stepFraction);
    s.f64(cfg.batman.maxDisabledFraction);

    s.u64(cfg.bear.reuseTableEntries);
    s.u32(cfg.bear.regionShift);
    s.f64(cfg.bear.bypassProbability);
    s.u64(cfg.bear.rngSeed);

    return fnv1a(s.buffer());
}

Checkpoint
capture(System &sys, CheckpointHeader header, std::uint32_t version)
{
    if (version != kVersionV1 && version != kVersionV2)
        throw CkptError("ckpt: cannot capture version " +
                        std::to_string(version));
    Serializer s(version);
    s.reserve(payloadSizeHint(sys.config()));
    sys.save(s);
    header.version = version;
    header.tick = sys.eventQueue().now();
    header.pendingEvents = sys.eventQueue().pending();
    Checkpoint ckpt;
    ckpt.header = header;
    ckpt.payload = s.buffer();
    return ckpt;
}

std::vector<std::uint8_t>
encode(const Checkpoint &ckpt)
{
    Serializer s;
    for (char c : kMagic)
        s.u8(static_cast<std::uint8_t>(c));
    s.u32(ckpt.header.version);
    s.u64(ckpt.header.stateHash);
    s.u64(ckpt.header.fullHash);
    s.u64(ckpt.header.tick);
    s.u64(ckpt.header.seedSalt);
    s.u64(ckpt.header.warmupPerCore);
    s.u64(ckpt.header.instr);
    s.u32(ckpt.header.numCores);
    s.u32(ckpt.header.archId);
    s.u64(ckpt.header.pendingEvents);
    s.u64(ckpt.payload.size());
    s.u32(crc32(ckpt.payload.data(), ckpt.payload.size()));
    std::vector<std::uint8_t> out = s.buffer();
    out.insert(out.end(), ckpt.payload.begin(), ckpt.payload.end());
    return out;
}

namespace
{

/** Parse + validate everything up to the payload bytes; on return
 *  the deserializer sits on the first payload byte and @p d.remaining()
 *  is the CRC-verified payload length. */
CheckpointHeader
decodeHeader(Deserializer &d, const std::uint8_t *data,
             std::size_t size)
{
    for (char c : kMagic)
        if (d.u8() != static_cast<std::uint8_t>(c))
            throw CkptError("ckpt: not a dapsim checkpoint (bad magic)");
    CheckpointHeader h;
    h.version = d.u32();
    if (h.version != kVersionV1 && h.version != kVersionV2)
        throw CkptError("ckpt: unsupported checkpoint version " +
                        std::to_string(h.version));
    h.stateHash = d.u64();
    h.fullHash = d.u64();
    h.tick = d.u64();
    if (h.tick != 0)
        throw CkptError("ckpt: checkpoints must be at tick 0");
    h.seedSalt = d.u64();
    h.warmupPerCore = d.u64();
    h.instr = d.u64();
    h.numCores = d.u32();
    h.archId = d.u32();
    h.pendingEvents = d.u64();
    const std::uint64_t len = d.u64();
    const std::uint32_t crc = d.u32();
    if (len != d.remaining())
        throw CkptError("ckpt: truncated checkpoint payload");
    if (crc32(data + (size - static_cast<std::size_t>(len)),
              static_cast<std::size_t>(len)) != crc)
        throw CkptError("ckpt: payload CRC mismatch (corrupt file)");
    return h;
}

} // namespace

Checkpoint
decode(const std::uint8_t *data, std::size_t size)
{
    Deserializer d(data, size);
    Checkpoint ckpt;
    ckpt.header = decodeHeader(d, data, size);
    ckpt.payload.assign(data + (size - d.remaining()), data + size);
    return ckpt;
}

Checkpoint
decode(const std::vector<std::uint8_t> &bytes)
{
    return decode(bytes.data(), bytes.size());
}

CheckpointView
viewOf(std::shared_ptr<const Checkpoint> ckpt)
{
    CheckpointView v;
    if (!ckpt)
        return v;
    v.header = ckpt->header;
    v.payload = ckpt->payload.data();
    v.payloadSize = ckpt->payload.size();
    v.backing = std::move(ckpt);
    return v;
}

CheckpointView
viewOf(const Checkpoint &ckpt)
{
    CheckpointView v;
    v.header = ckpt.header;
    v.payload = ckpt.payload.data();
    v.payloadSize = ckpt.payload.size();
    return v;
}

void
writeFile(const std::string &path, const Checkpoint &ckpt)
{
    const std::vector<std::uint8_t> bytes = encode(ckpt);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw CkptError("ckpt: cannot write " + path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw CkptError("ckpt: write failed: " + path);
}

void
writeFileAtomic(const std::string &path, const Checkpoint &ckpt)
{
    const std::vector<std::uint8_t> bytes = encode(ckpt);
    try {
        fsio::atomicWriteFile(path, bytes.data(), bytes.size());
    } catch (const std::exception &e) {
        throw CkptError(std::string("ckpt: ") + e.what());
    }
}

Checkpoint
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CkptError("ckpt: cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decode(bytes);
}

CheckpointView
readFileMapped(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw CkptError("ckpt: cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        throw CkptError("ckpt: cannot stat " + path);
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (map == MAP_FAILED) {
        // Filesystem without mmap support: plain heap read.
        return viewOf(std::make_shared<const Checkpoint>(
            readFile(path)));
    }
    std::shared_ptr<const void> backing(
        map, [size](const void *p) {
            ::munmap(const_cast<void *>(p), size);
        });
    const auto *data = static_cast<const std::uint8_t *>(map);
    Deserializer d(data, size);
    CheckpointView v;
    v.header = decodeHeader(d, data, size);
    v.payload = data + (size - d.remaining());
    v.payloadSize = d.remaining();
    v.backing = std::move(backing);
    return v;
}

Checkpoint
makeWarmupCheckpoint(SystemConfig cfg, const Mix &mix,
                     std::uint64_t instr, std::uint64_t seed_salt,
                     std::uint32_t version)
{
    if (mix.apps.size() != cfg.numCores)
        throw CkptError("ckpt: mix width != core count");

    CheckpointHeader header;
    header.seedSalt = seed_salt;
    header.warmupPerCore = resolveWarmCount(cfg);
    header.instr = instr;
    header.numCores = cfg.numCores;
    header.archId = archIdOf(cfg.arch);
    header.stateHash = stateHash(cfg, describeMix(mix), seed_salt,
                                 header.warmupPerCore);
    header.fullHash = fullHash(header.stateHash, cfg);

    cfg.core.instructions = instr;
    std::vector<AccessGeneratorPtr> gens;
    gens.reserve(cfg.numCores);
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i, seed_salt));

    System sys(cfg, std::move(gens));
    sys.warmup(header.warmupPerCore);
    return capture(sys, header, version);
}

RunResult
runMixFromCheckpoint(SystemConfig cfg, const Mix &mix,
                     std::uint64_t instr_per_core,
                     std::uint64_t seed_salt,
                     const CheckpointView &ckpt, bool fork)
{
    if (mix.apps.size() != cfg.numCores)
        throw CkptError("ckpt: mix width != core count");
    if (!ckpt)
        throw CkptError("ckpt: empty checkpoint view");

    const std::uint64_t want_state =
        stateHash(cfg, describeMix(mix), seed_salt,
                  resolveWarmCount(cfg));
    if (want_state != ckpt.header.stateHash)
        throw CkptError(
            "ckpt: configuration/stream mismatch (the checkpoint was "
            "taken under a different system configuration, workload, "
            "seed or warm-up length)");
    if (!fork &&
        fullHash(want_state, cfg) != ckpt.header.fullHash)
        throw CkptError(
            "ckpt: policy mismatch (the checkpoint was taken under a "
            "different partitioning policy; use a warmup-fork restore "
            "to seed a different policy)");

    cfg.core.instructions = instr_per_core;
    std::vector<AccessGeneratorPtr> gens;
    gens.reserve(cfg.numCores);
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i, seed_salt));

    System sys(cfg, std::move(gens));
    Deserializer d(ckpt.payload, ckpt.payloadSize,
                   ckpt.header.version);
    sys.restore(d, fork);
    if (!d.atEnd())
        throw CkptError("ckpt: trailing bytes after the last section");
    return runFidelityOn(sys, mix.name, instr_per_core);
}

RunResult
runMixFromCheckpoint(SystemConfig cfg, const Mix &mix,
                     std::uint64_t instr_per_core,
                     std::uint64_t seed_salt, const Checkpoint &ckpt,
                     bool fork)
{
    return runMixFromCheckpoint(std::move(cfg), mix, instr_per_core,
                                seed_salt, viewOf(ckpt), fork);
}

} // namespace dapsim::ckpt
