/**
 * @file
 * Binary serialization primitives for the dapsim checkpoint formats
 * (`dapsim.ckpt.v1` per-primitive streams and the `dapsim.ckpt.v2`
 * bulk-span encoding; see DESIGN.md §14).
 *
 * A Serializer appends fixed-width little-endian primitives into a
 * byte buffer; a Deserializer reads them back with bounds checking.
 * Component state is framed in named, length-prefixed sections so a
 * reader can verify it consumed exactly what the writer produced, and
 * so mismatched component ordering fails loudly instead of smearing
 * one component's bytes into the next.
 *
 * Error handling: everything throws CkptError (never fatal()), so a
 * failed restore inside a sweep surfaces as one failed JobResult
 * instead of killing the whole process.
 *
 * This header is deliberately self-contained (standard library only)
 * so that low-layer component headers can include it without dragging
 * in higher layers.
 */

#ifndef DAPSIM_CKPT_SERIALIZER_HH
#define DAPSIM_CKPT_SERIALIZER_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dapsim::ckpt
{

/** True when raw in-memory words already match the little-endian
 *  on-disk encoding, enabling the bulk span fast paths. */
inline constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

/** Any checkpoint save/restore failure (format, CRC, config mismatch,
 *  non-quiescent component). */
class CkptError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Appends primitives to a growable byte buffer.
 *
 * The @p format constructor argument selects the payload encoding
 * components should emit: 1 is the per-primitive `dapsim.ckpt.v1`
 * byte stream, 2 additionally allows the bulk span forms below
 * (`dapsim.ckpt.v2`), which bulk-copy whole arrays so a restore can
 * memcpy them back without a per-element decode loop. Components
 * branch on format() inside their save() methods; both formats share
 * the same section framing.
 */
class Serializer
{
  public:
    explicit Serializer(std::uint32_t format = 1) : format_(format) {}

    /** Payload encoding this serializer was opened for (1 or 2). */
    std::uint32_t format() const { return format_; }

    /** Size hint: pre-grow the buffer to kill realloc churn on large
     *  snapshots (MS$ sector directories are tens of MBs). */
    void
    reserve(std::size_t bytes)
    {
        buf_.reserve(buf_.size() + bytes);
    }

    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        appendLe(v);
    }

    void
    u64(std::uint64_t v)
    {
        appendLe(v);
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    bytes(const std::uint8_t *data, std::size_t n)
    {
        u64(n);
        buf_.insert(buf_.end(), data, data + n);
    }

    /**
     * Bulk little-endian u64 array (no length prefix; the reader knows
     * the count from its own geometry). On little-endian hosts this is
     * one memcpy of the whole array. v2-format payloads only.
     */
    void
    u64Span(const std::uint64_t *p, std::size_t n)
    {
        if constexpr (kHostIsLittleEndian) {
            raw(p, n * sizeof(std::uint64_t));
        } else {
            for (std::size_t i = 0; i < n; ++i)
                u64(p[i]);
        }
    }

    /** Raw object bytes, no length prefix. The writer and reader must
     *  agree on the exact size; v2-format payloads only. */
    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /**
     * Open a named section. The name and a length placeholder are
     * written immediately; endSection() patches the length once the
     * section's content size is known. Sections nest.
     */
    void
    beginSection(const std::string &name)
    {
        str(name);
        lengthAt_.push_back(buf_.size());
        u64(0); // placeholder
    }

    void
    endSection()
    {
        if (lengthAt_.empty())
            throw CkptError("ckpt: endSection without beginSection");
        const std::size_t at = lengthAt_.back();
        lengthAt_.pop_back();
        const std::uint64_t len = buf_.size() - (at + 8);
        for (int i = 0; i < 8; ++i)
            buf_[at + i] = static_cast<std::uint8_t>(len >> (8 * i));
    }

    const std::vector<std::uint8_t> &
    buffer() const
    {
        if (!lengthAt_.empty())
            throw CkptError("ckpt: unterminated section");
        return buf_;
    }

    std::size_t size() const { return buf_.size(); }

  private:
    /** Append one fixed-width little-endian primitive. Byte-identical
     *  to the per-byte shift loop, but a single memcpy on LE hosts. */
    template <typename T>
    void
    appendLe(T v)
    {
        const std::size_t at = buf_.size();
        buf_.resize(at + sizeof(T));
        if constexpr (kHostIsLittleEndian) {
            std::memcpy(buf_.data() + at, &v, sizeof(T));
        } else {
            for (std::size_t i = 0; i < sizeof(T); ++i)
                buf_[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
    }

    std::uint32_t format_;
    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> lengthAt_;
};

/** Bounds-checked reader over a byte span. The @p format argument
 *  mirrors Serializer's: components branch on format() to pick the
 *  per-primitive (1) or bulk-span (2) decode path. */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size,
                 std::uint32_t format = 1)
        : data_(data), size_(size), format_(format)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &buf,
                          std::uint32_t format = 1)
        : Deserializer(buf.data(), buf.size(), format)
    {
    }

    /** Payload encoding of the underlying bytes (1 or 2). */
    std::uint32_t format() const { return format_; }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool
    boolean()
    {
        return u8() != 0;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::vector<std::uint8_t>
    bytes()
    {
        const std::uint64_t n = u64();
        need(n);
        std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
        pos_ += static_cast<std::size_t>(n);
        return out;
    }

    /** Bulk little-endian u64 array written by Serializer::u64Span.
     *  One memcpy of the whole array on little-endian hosts. */
    void
    u64Span(std::uint64_t *p, std::size_t n)
    {
        if constexpr (kHostIsLittleEndian) {
            raw(p, n * sizeof(std::uint64_t));
        } else {
            for (std::size_t i = 0; i < n; ++i)
                p[i] = u64();
        }
    }

    /** Raw object bytes written by Serializer::raw — a single bounds-
     *  checked memcpy out of the (possibly mmap'd) payload. */
    void
    raw(void *p, std::size_t n)
    {
        need(n);
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
    }

    /**
     * Enter a section, verifying its name. The name comparison happens
     * in place against the underlying bytes — no per-section string
     * allocation on the restore hot path.
     */
    void
    enterSection(const std::string &expect)
    {
        const std::uint64_t n = u64();
        need(n);
        const bool match =
            n == expect.size() &&
            std::memcmp(data_ + pos_, expect.data(), expect.size()) == 0;
        if (!match) {
            const std::string name(
                reinterpret_cast<const char *>(data_ + pos_),
                static_cast<std::size_t>(n));
            throw CkptError("ckpt: expected section '" + expect +
                            "', found '" + name + "'");
        }
        pos_ += static_cast<std::size_t>(n);
        const std::uint64_t len = u64();
        need(len);
        sectionEnd_.push_back(pos_ + static_cast<std::size_t>(len));
    }

    /** Leave a section, verifying the content was fully consumed. */
    void
    leaveSection()
    {
        if (sectionEnd_.empty())
            throw CkptError("ckpt: leaveSection without enterSection");
        const std::size_t end = sectionEnd_.back();
        sectionEnd_.pop_back();
        if (pos_ != end)
            throw CkptError(
                "ckpt: section size mismatch (component state layout "
                "differs from the checkpoint)");
    }

    /** Skip over the next section regardless of its name. */
    std::string
    skipSection()
    {
        const std::string name = str();
        const std::uint64_t len = u64();
        need(len);
        pos_ += static_cast<std::size_t>(len);
        return name;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** Unconsumed bytes of the innermost open section — lets a reader
     *  probe for optional trailing fields a newer writer appends. */
    std::size_t
    sectionRemaining() const
    {
        if (sectionEnd_.empty())
            throw CkptError(
                "ckpt: sectionRemaining outside any section");
        return sectionEnd_.back() - pos_;
    }

  private:
    void
    need(std::uint64_t n) const
    {
        if (n > size_ - pos_)
            throw CkptError("ckpt: truncated input");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::uint32_t format_;
    std::size_t pos_ = 0;
    std::vector<std::size_t> sectionEnd_;
};

/**
 * Interface for components whose state participates in checkpoints.
 *
 * Polymorphic simulator components (access generators, partitioning
 * policies, memory-side caches) implement this interface virtually;
 * concrete leaf components (caches, prefetchers, DRAM channels, the
 * ROB core) provide the same-signature member functions without the
 * vtable. The contract is identical for both: save() serializes all
 * mutable state, restore() overwrites the state of a freshly
 * constructed, identically configured instance, and restore(save())
 * is bit-identical state.
 */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;
    virtual void save(Serializer &s) const = 0;
    virtual void restore(Deserializer &d) = 0;
};

/** FNV-1a 64-bit hash over a byte span (config/identity hashing). */
inline std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n,
      std::uint64_t h = 1469598103934665603ULL)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

inline std::uint64_t
fnv1a(const std::vector<std::uint8_t> &v,
      std::uint64_t h = 1469598103934665603ULL)
{
    return fnv1a(v.data(), v.size(), h);
}

/** CRC32 (IEEE 802.3 polynomial, reflected) over a byte span. */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t n)
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace dapsim::ckpt

#endif // DAPSIM_CKPT_SERIALIZER_HH
