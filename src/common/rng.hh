/**
 * @file
 * Deterministic xorshift128+ random number generator.
 *
 * Every stochastic component in dapsim (workload generators, samplers,
 * predictor tables) draws from its own seeded Rng instance so that whole
 * simulations are reproducible regardless of event interleaving.
 */

#ifndef DAPSIM_COMMON_RNG_HH
#define DAPSIM_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace dapsim
{

/** xorshift128+ PRNG; fast, decent quality, fully deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding so nearby seeds give unrelated streams.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /**
     * Geometric gap with mean @p mean (>= 1), capped at @p cap.
     * Used for instruction gaps between memory accesses.
     *
     * The denominator log(1 - 1/mean) depends only on @p mean, which
     * is constant per generator (or per drift phase), so the last
     * value is memoized — callers alternating between a handful of
     * means still pay one std::log per draw instead of two. The
     * memo holds the identical double the inline expression produced,
     * so draws are bit-for-bit unchanged.
     */
    std::uint64_t
    gap(double mean, std::uint64_t cap)
    {
        if (mean <= 1.0)
            return 1;
        if (mean != gapMean_) {
            gapMean_ = mean;
            gapLogDenom_ = std::log(1.0 - 1.0 / mean);
        }
        double u = real();
        if (u > 0.999999)
            u = 0.999999;
        const double res = 1.0 + std::log(1.0 - u) / gapLogDenom_;
        const auto r = static_cast<std::uint64_t>(res < 1.0 ? 1.0 : res);
        return r > cap ? cap : r;
    }

    /** Raw engine state, for checkpointing (see src/ckpt/). */
    struct State
    {
        std::uint64_t s0;
        std::uint64_t s1;
    };

    State state() const { return {s0_, s1_}; }

    /** Overwrite the engine state (checkpoint restore). */
    void
    setState(const State &st)
    {
        s0_ = st.s0;
        s1_ = st.s1;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
    /** gap() memo; derived from the mean argument, so deliberately
     *  not part of State — a cold memo after restore recomputes the
     *  identical value. */
    double gapMean_ = 0.0;
    double gapLogDenom_ = 0.0;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_RNG_HH
