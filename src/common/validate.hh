/**
 * @file
 * Shared range-check helpers for user-facing configuration dials.
 *
 * Both the classic SyntheticParams profiles and the workload-engine
 * spec parser (src/workload/spec.cc) funnel their numeric dials through
 * these checks so an out-of-range value produces the same clear
 * fatal() everywhere instead of silently generating nonsense traffic.
 * All checks are written as !(v in range) so NaN is rejected too.
 */

#ifndef DAPSIM_COMMON_VALIDATE_HH
#define DAPSIM_COMMON_VALIDATE_HH

#include <string>

#include "common/log.hh"

namespace dapsim
{

/** Probability / fraction dial: must lie within [0, 1]. */
inline double
checkUnitInterval(const std::string &what, double v)
{
    if (!(v >= 0.0 && v <= 1.0))
        fatal(what + " must be within [0, 1], got " + std::to_string(v));
    return v;
}

/** Strictly positive dial (skew exponents, rates). */
inline double
checkPositive(const std::string &what, double v)
{
    if (!(v > 0.0))
        fatal(what + " must be > 0, got " + std::to_string(v));
    return v;
}

/** Dial with an inclusive lower bound (e.g. runLength >= 1). */
inline double
checkAtLeast(const std::string &what, double v, double lo)
{
    if (!(v >= lo))
        fatal(what + " must be >= " + std::to_string(lo) + ", got " +
              std::to_string(v));
    return v;
}

/**
 * MPKI dial: must be in (0, 1000]. One memory access per instruction
 * is the physical ceiling (gap >= 1), so anything above 1000 silently
 * degenerates — reject it instead.
 */
inline double
checkMpki(const std::string &what, double v)
{
    if (!(v > 0.0 && v <= 1000.0))
        fatal(what + " must be within (0, 1000], got " +
              std::to_string(v));
    return v;
}

/** Integer dial with an inclusive lower bound. */
inline std::uint64_t
checkCountAtLeast(const std::string &what, std::uint64_t v,
                  std::uint64_t lo)
{
    if (v < lo)
        fatal(what + " must be >= " + std::to_string(lo) + ", got " +
              std::to_string(v));
    return v;
}

} // namespace dapsim

#endif // DAPSIM_COMMON_VALIDATE_HH
