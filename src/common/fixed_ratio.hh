/**
 * @file
 * Hardware-friendly rational approximation of the bandwidth ratio K.
 *
 * DAP needs K = B_MS$ / B_MM in its window equations. The paper stores K
 * as a small rational whose denominator is a power of two so that
 * multiplication is a shift-add (Section IV-A: K = 8/3 is approximated
 * as 11/4). FixedRatio reproduces exactly that quantization.
 */

#ifndef DAPSIM_COMMON_FIXED_RATIO_HH
#define DAPSIM_COMMON_FIXED_RATIO_HH

#include <cstdint>

namespace dapsim
{

/** Rational p / 2^s with small p, built from an arbitrary real ratio. */
class FixedRatio
{
  public:
    FixedRatio() = default;

    /**
     * Quantize @p value to the nearest p/2^shift.
     * @param value the real ratio to approximate (must be positive)
     * @param shift log2 of the denominator (paper uses 2, i.e. quarters)
     */
    static FixedRatio quantize(double value, unsigned shift = 2);

    /** Exact rational (for testing / display). */
    std::uint64_t numerator() const { return num_; }
    std::uint64_t denominator() const { return 1ULL << shift_; }

    /** K * x with round-to-nearest, as the hardware multiplier would. */
    std::int64_t
    mul(std::int64_t x) const
    {
        const std::int64_t half = 1LL << (shift_ > 0 ? shift_ - 1 : 0);
        return (x * static_cast<std::int64_t>(num_) +
                (shift_ > 0 ? half : 0)) >> shift_;
    }

    /** (K + 1) * x, used by the write-bypass / IFRM closed forms. */
    std::int64_t
    mulPlusOne(std::int64_t x) const
    {
        const std::int64_t n = static_cast<std::int64_t>(num_) +
                               (1LL << shift_);
        const std::int64_t half = 1LL << (shift_ > 0 ? shift_ - 1 : 0);
        return (x * n + (shift_ > 0 ? half : 0)) >> shift_;
    }

    /** (2K + 1) * x, used by the eDRAM three-source closed forms. */
    std::int64_t
    mulTwoKPlusOne(std::int64_t x) const
    {
        const std::int64_t n = 2 * static_cast<std::int64_t>(num_) +
                               (1LL << shift_);
        const std::int64_t half = 1LL << (shift_ > 0 ? shift_ - 1 : 0);
        return (x * n + (shift_ > 0 ? half : 0)) >> shift_;
    }

    /** Divide @p x by (K + 1): solves (K+1)N = x for N, rounding down. */
    std::int64_t
    divByKPlusOne(std::int64_t x) const
    {
        const std::int64_t n = static_cast<std::int64_t>(num_) +
                               (1LL << shift_);
        return (x << shift_) / n;
    }

    /** Divide @p x by (2K + 1). */
    std::int64_t
    divByTwoKPlusOne(std::int64_t x) const
    {
        const std::int64_t n = 2 * static_cast<std::int64_t>(num_) +
                               (1LL << shift_);
        return (x << shift_) / n;
    }

    /** The approximated real value. */
    double
    value() const
    {
        return static_cast<double>(num_) / static_cast<double>(1ULL << shift_);
    }

  private:
    std::uint64_t num_ = 1;
    unsigned shift_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_FIXED_RATIO_HH
