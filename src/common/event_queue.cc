#include "common/event_queue.hh"

#include "common/log.hh"

namespace dapsim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("EventQueue: scheduling in the past");
    heap_.push(Entry{when, seq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because pop() immediately discards the entry.
    auto &top = const_cast<Entry &>(heap_.top());
    now_ = top.when;
    Callback cb = std::move(top.cb);
    heap_.pop();
    ++executed_;
    cb();
    if (hook_)
        hook_->onDispatch(now_, heap_.size());
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
}

void
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!done() && !heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
}

} // namespace dapsim
