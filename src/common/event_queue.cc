#include "common/event_queue.hh"

#include <algorithm>
#include <bit>

namespace dapsim
{

EventQueue::EventQueue() : buckets_(kSlots), bucketSorted_(kSlots, 1) {}

void
EventQueue::pushBucket(std::uint64_t quantum, Entry &&e)
{
    // Refill path only: unlike direct schedules, refilled entries can
    // carry any (when, seq), so the order check needs both fields.
    const std::size_t slot = static_cast<std::size_t>(quantum) & kSlotMask;
    Bucket &b = buckets_[slot];
    if (b.keys.empty()) {
        bucketSorted_[slot] = 1;
    } else {
        const Key &last = b.keys.back();
        if (e.when < last.when ||
            (e.when == last.when && e.seq < last.seq))
            bucketSorted_[slot] = 0;
    }
    b.keys.push_back(Key{e.when, e.seq});
    b.cbs.push_back(std::move(e.cb));
    occupied_[slot >> 6] |= std::uint64_t(1) << (slot & 63);
}

std::uint64_t
EventQueue::findFirstOccupied() const
{
    const std::size_t start = static_cast<std::size_t>(base_) & kSlotMask;
    std::size_t word = start >> 6;
    std::uint64_t bits =
        occupied_[word] & (~std::uint64_t(0) << (start & 63));
    // One pass over every word, plus a revisit of the first word for
    // the bits below `start` (they are one full wrap away in time).
    for (std::size_t i = 0; i <= kBitmapWords; ++i) {
        if (bits != 0) {
            const std::size_t slot =
                (word << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            const std::size_t dist = (slot - start) & kSlotMask;
            return base_ + dist;
        }
        word = (word + 1) & (kBitmapWords - 1);
        bits = occupied_[word];
    }
    return kNoSlot;
}

void
EventQueue::refillFromOverflow()
{
    const std::uint64_t end = base_ + kSlots;
    while (!overflow_.empty() &&
           (overflow_.front().when >> kQuantumBits) < end) {
        std::pop_heap(overflow_.begin(), overflow_.end(), heapLater);
        Entry e = std::move(overflow_.back());
        overflow_.pop_back();
        const std::uint64_t q = e.when >> kQuantumBits;
        if (q <= base_)
            insertRun(e.when, e.seq, std::move(e.cb));
        else
            pushBucket(q, std::move(e));
    }
}

void
EventQueue::promote(std::uint64_t quantum)
{
    const std::size_t slot = static_cast<std::size_t>(quantum) & kSlotMask;
    clearRun(); // only consumed husks remain; drop them
    Bucket &b = buckets_[slot];
    std::swap(runKeys_, b.keys); // capacities circulate, no moves
    std::swap(runCbs_, b.cbs);
    occupied_[slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
    base_ = quantum;

    runOrder_.resize(runKeys_.size());
    for (std::uint32_t i = 0; i < runOrder_.size(); ++i)
        runOrder_[i] = i;
    // Bucket append order mixes direct schedules with overflow refills,
    // so (when, seq) order must be restored explicitly — unless the
    // pushes happened to arrive in order (tracked per bucket; the
    // common clock-edge case). Keys are dense 16-byte pairs, so the
    // sort never touches the callbacks.
    if (!bucketSorted_[slot]) {
        std::sort(runOrder_.begin(), runOrder_.end(),
                  [this](std::uint32_t x, std::uint32_t y) {
                      const Key &a = runKeys_[x], &b_ = runKeys_[y];
                      if (a.when != b_.when)
                          return a.when < b_.when;
                      return a.seq < b_.seq;
                  });
        bucketSorted_[slot] = 1;
    }

    // The window end moved with base_; pull newly-near events in.
    refillFromOverflow();
}

bool
EventQueue::ensureRun()
{
    if (runHead_ < runOrder_.size())
        return true;
    const std::uint64_t q = findFirstOccupied();
    if (q != kNoSlot) {
        promote(q);
        return true;
    }
    if (overflow_.empty())
        return false;
    // Wheel empty: jump the window to the overflow minimum. The refill
    // lands that quantum's events directly in the (empty) run.
    clearRun();
    base_ = overflow_.front().when >> kQuantumBits;
    refillFromOverflow();
    return true;
}

Tick
EventQueue::nextEventTickSlow()
{
    if (!ensureRun())
        return kNoEvent;
    return runKeys_[runOrder_[runHead_]].when;
}

bool
EventQueue::step()
{
    if (nextEventTick() == kNoEvent)
        return false;
    dispatchOne();
    return true;
}

void
EventQueue::reserve(std::size_t expected_pending)
{
    overflow_.reserve(expected_pending);
    runKeys_.reserve(std::min<std::size_t>(expected_pending, 4096));
    runCbs_.reserve(std::min<std::size_t>(expected_pending, 4096));
    runOrder_.reserve(std::min<std::size_t>(expected_pending, 4096));
}

} // namespace dapsim
