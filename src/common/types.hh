/**
 * @file
 * Fundamental types and unit helpers shared by every dapsim subsystem.
 *
 * Simulated time is counted in integer picosecond ticks. The CPU clock
 * domain runs at 4 GHz (250 ps per cycle) throughout the paper's
 * evaluation; DRAM domains derive integer periods from their frequency
 * with at most 0.04% rounding error.
 */

#ifndef DAPSIM_COMMON_TYPES_HH
#define DAPSIM_COMMON_TYPES_HH

#include <cstdint>

namespace dapsim
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Count of clock cycles in some clock domain. */
using Cycle = std::uint64_t;

/** Transfer unit between the SRAM hierarchy and the bandwidth sources. */
constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint32_t kBlockShift = 6;

/** CPU clock: 4 GHz as in the paper's Skylake-class cores. */
constexpr Tick kCpuPeriodPs = 250;

constexpr Tick kPsPerSecond = 1'000'000'000'000ULL;

/** Convert a frequency in MHz to an integer period in picoseconds. */
constexpr Tick
periodPsFromMHz(std::uint64_t mhz)
{
    return (1'000'000ULL + mhz / 2) / mhz;
}

/** Convert CPU cycles to ticks. */
constexpr Tick
cpuCyclesToTicks(Cycle c)
{
    return c * kCpuPeriodPs;
}

/** Block-align an address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Block number of an address. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockShift;
}

/**
 * Multiplicative index hash used by the cache directories so that
 * base-aligned per-core address slices spread over all sets.
 */
constexpr std::uint64_t
indexHash(std::uint64_t x)
{
    x *= 0x9e3779b97f4a7c15ULL;
    return x >> 21;
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a non-zero value. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    std::uint32_t l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/**
 * Division/modulo by a run-time-constant divisor, reduced to shifts
 * and masks when the divisor is a power of two (which every production
 * geometry is: channel counts, banks, blocks per row, sector sizes).
 * Hot address-decode paths run one of these per access; a hardware
 * 64-bit divide costs ~20-40 cycles that a shift does not.
 */
struct FastDiv
{
    std::uint64_t d = 1;     ///< divisor
    std::uint64_t mask = 0;  ///< d - 1 when d is a power of two
    std::uint32_t shift = 0; ///< log2(d) when d is a power of two
    bool pow2 = false;

    static constexpr FastDiv
    of(std::uint64_t divisor)
    {
        FastDiv f;
        f.d = divisor;
        f.pow2 = isPowerOfTwo(divisor);
        if (f.pow2) {
            f.mask = divisor - 1;
            f.shift = floorLog2(divisor);
        }
        return f;
    }

    constexpr std::uint64_t
    div(std::uint64_t x) const
    {
        return pow2 ? x >> shift : x / d;
    }

    constexpr std::uint64_t
    mod(std::uint64_t x) const
    {
        return pow2 ? (x & mask) : x % d;
    }
};

} // namespace dapsim

#endif // DAPSIM_COMMON_TYPES_HH
