/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named counters/histograms into a StatGroup; the
 * runner dumps them as `group.name value` rows. The package is
 * intentionally simple: scalar counters, averages, and fixed-bucket
 * histograms cover everything the paper's evaluation reports.
 */

#ifndef DAPSIM_COMMON_STATS_HH
#define DAPSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dapsim
{

/** Monotonic scalar counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of submitted samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    /** Overwrite the accumulator (checkpoint restore). */
    void
    restoreState(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Histogram with uniform buckets over [0, max); overflow in last bucket. */
class Histogram
{
  public:
    Histogram(double max = 1.0, std::size_t buckets = 16)
        : max_(max), buckets_(buckets, 0)
    {
    }

    void
    sample(double v)
    {
        std::size_t i =
            v >= max_ ? buckets_.size() - 1
                      : static_cast<std::size_t>(v / max_ * buckets_.size());
        if (i >= buckets_.size())
            i = buckets_.size() - 1;
        ++buckets_[i];
        ++count_;
        sum_ += v;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    double max_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Named collection of stats owned by a component.
 *
 * The group stores pointers to stats that live inside the component, so
 * a StatGroup must not outlive its component.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &n, const Counter *c);
    void addAverage(const std::string &n, const Average *a);

    /** Dump `group.name value` rows. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** Look up a registered counter value by name (0 if absent). */
    std::uint64_t counterValue(const std::string &n) const;

    /** Look up a registered average mean by name (0 if absent). */
    double averageValue(const std::string &n) const;

    /**
     * Columnar access for the time-series sampler (see src/obs/):
     * qualified `group.name` column labels and the matching values, in
     * a stable (alphabetical, counters before averages) order.
     */
    void appendColumnNames(std::vector<std::string> &out) const;
    void appendValues(std::vector<double> &out) const;

  private:
    std::string name_;
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Average *> averages_;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_STATS_HH
