/**
 * @file
 * Minimal logging / error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal simulator invariant was violated (a dapsim bug).
 * fatal()  — the user supplied an impossible configuration.
 * warn()   — something is modelled approximately; simulation continues.
 */

#ifndef DAPSIM_COMMON_LOG_HH
#define DAPSIM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dapsim
{

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Panic unless @p cond holds. Used for simulator invariants. */
inline void
panicIfNot(bool cond, const char *what)
{
    if (!cond)
        panic(what);
}

} // namespace dapsim

#endif // DAPSIM_COMMON_LOG_HH
