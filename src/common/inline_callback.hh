/**
 * @file
 * Allocation-free callable for the simulation hot path.
 *
 * `InlineCallback` stores a move-only `void()` callable in a small
 * inline buffer (kInlineCallbackBytes, sized for the largest hot-path
 * capture: an L3 miss continuation of { this, addr, tick, Done }).
 * Unlike `std::function` it never heap-allocates for captures that
 * fit, and it accepts move-only captures (e.g. another InlineCallback
 * or a std::unique_ptr), which lets completion closures chain through
 * the memory hierarchy without copies.
 *
 * Oversized captures (up to CallbackSlotPool::kSlotBytes) fall back to
 * a pooled heap slot: fixed-size chunks recycled through a per-thread
 * free list, so even the fallback is allocation-free in steady state.
 * Captures beyond the slot size are rejected at compile time — shrink
 * the capture (move shared state behind one pointer) instead.
 */

#ifndef DAPSIM_COMMON_INLINE_CALLBACK_HH
#define DAPSIM_COMMON_INLINE_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dapsim
{

namespace detail
{

/**
 * Recycling allocator for oversized callback captures. Slots are one
 * fixed size so the free list is a plain LIFO stack; each simulation
 * thread (sweep worker) has its own list, matching the one-thread-per-
 * System execution model. Slots return to the list on callback
 * destruction and are only released to the OS at thread exit.
 */
class CallbackSlotPool
{
  public:
    /** Hard capture-size ceiling for InlineCallback. */
    static constexpr std::size_t kSlotBytes = 256;

    static void *
    alloc()
    {
        FreeList &fl = freeList();
        if (!fl.slots.empty()) {
            void *p = fl.slots.back();
            fl.slots.pop_back();
            return p;
        }
        return ::operator new(kSlotBytes,
                              std::align_val_t(alignof(std::max_align_t)));
    }

    static void
    release(void *p) noexcept
    {
        freeList().slots.push_back(p);
    }

  private:
    struct FreeList
    {
        std::vector<void *> slots;

        ~FreeList()
        {
            for (void *p : slots)
                ::operator delete(
                    p, std::align_val_t(alignof(std::max_align_t)));
        }
    };

    static FreeList &
    freeList()
    {
        thread_local FreeList fl;
        return fl;
    }
};

} // namespace detail

/** Inline buffer size; covers every hot-path capture (see DESIGN.md
 *  §9). Larger captures use the pooled fallback transparently. */
constexpr std::size_t kInlineCallbackBytes = 64;

/** Move-only `void()` callable with small-buffer optimisation. */
template <std::size_t N>
class BasicInlineCallback
{
    static_assert(N >= sizeof(void *), "buffer must hold a slot pointer");

  public:
    BasicInlineCallback() = default;
    BasicInlineCallback(std::nullptr_t) {}

    template <class F, class D = std::decay_t<F>,
              class = std::enable_if_t<
                  !std::is_same_v<D, BasicInlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    BasicInlineCallback(F &&f)
    {
        construct<D>(std::forward<F>(f));
    }

    BasicInlineCallback(BasicInlineCallback &&other) noexcept
    {
        moveFrom(other);
    }

    BasicInlineCallback &
    operator=(BasicInlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            ops_ = nullptr;
            moveFrom(other);
        }
        return *this;
    }

    BasicInlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    BasicInlineCallback(const BasicInlineCallback &) = delete;
    BasicInlineCallback &operator=(const BasicInlineCallback &) = delete;

    ~BasicInlineCallback() { destroy(); }

    /** Invoke the stored callable (must be non-empty). Const-callable
     *  like std::function: the target is logically owned state, and
     *  captured-by-value callbacks live in non-mutable lambdas all
     *  over the hierarchy. */
    void
    operator()() const
    {
        ops_->invoke(const_cast<unsigned char *>(buf_));
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    reset() noexcept
    {
        destroy();
        ops_ = nullptr;
    }

    /**
     * Pre-bound member-function callback: `Callback::of<&T::tick>(obj)`
     * stores only the object pointer — the recurring-event form, as
     * cheap to re-schedule as copying one pointer.
     */
    template <auto Method, class T>
    static BasicInlineCallback
    of(T *obj)
    {
        return BasicInlineCallback([obj] { (obj->*Method)(); });
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *buf) noexcept;
        /** Relocation is a plain buffer copy (trivially-copyable
         *  inline capture, or pooled: the buffer holds a raw slot
         *  pointer). Lets moveFrom() skip the indirect call — event
         *  entries move through wheel buckets on the hot path. */
        bool trivialRelocate;
        /** The destructor is a no-op; destroy() may be skipped. */
        bool trivialDestroy;
        /** Bytes the capture actually occupies: most hot callbacks
         *  are one or two pointers, so relocation copies 16 bytes
         *  instead of the whole N-byte buffer. */
        std::uint32_t size;
    };

    template <class F>
    static constexpr bool kFitsInline =
        sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    // ---- inline storage ------------------------------------------
    template <class F>
    static F *
    inlinePtr(void *buf)
    {
        return std::launder(reinterpret_cast<F *>(buf));
    }

    template <class F>
    static void
    invokeInline(void *buf)
    {
        (*inlinePtr<F>(buf))();
    }

    template <class F>
    static void
    relocateInline(void *src, void *dst) noexcept
    {
        if constexpr (std::is_trivially_copyable_v<F>) {
            std::memcpy(dst, src, sizeof(F));
        } else {
            F *from = inlinePtr<F>(src);
            ::new (dst) F(std::move(*from));
            from->~F();
        }
    }

    template <class F>
    static void
    destroyInline(void *buf) noexcept
    {
        inlinePtr<F>(buf)->~F();
    }

    template <class F>
    static constexpr Ops kInlineOps{&invokeInline<F>,
                                    &relocateInline<F>,
                                    &destroyInline<F>,
                                    std::is_trivially_copyable_v<F>,
                                    std::is_trivially_destructible_v<F>,
                                    sizeof(F)};

    // ---- pooled storage ------------------------------------------
    static void *
    slotOf(void *buf) noexcept
    {
        void *slot;
        std::memcpy(&slot, buf, sizeof(slot));
        return slot;
    }

    template <class F>
    static void
    invokePooled(void *buf)
    {
        (*static_cast<F *>(slotOf(buf)))();
    }

    template <class F>
    static void
    relocatePooled(void *src, void *dst) noexcept
    {
        std::memcpy(dst, src, sizeof(void *));
    }

    template <class F>
    static void
    destroyPooled(void *buf) noexcept
    {
        F *f = static_cast<F *>(slotOf(buf));
        f->~F();
        detail::CallbackSlotPool::release(f);
    }

    template <class F>
    static constexpr Ops kPooledOps{&invokePooled<F>,
                                    &relocatePooled<F>,
                                    &destroyPooled<F>,
                                    /*trivialRelocate=*/true,
                                    /*trivialDestroy=*/false,
                                    sizeof(void *)};

    template <class D, class F>
    void
    construct(F &&f)
    {
        static_assert(sizeof(D) <= detail::CallbackSlotPool::kSlotBytes,
                      "callback capture exceeds the pooled-slot limit; "
                      "move shared state behind one pointer");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned callback captures are unsupported");
        if constexpr (kFitsInline<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &kInlineOps<D>;
        } else {
            void *slot = detail::CallbackSlotPool::alloc();
            try {
                ::new (slot) D(std::forward<F>(f));
            } catch (...) {
                detail::CallbackSlotPool::release(slot);
                throw;
            }
            std::memcpy(buf_, &slot, sizeof(slot));
            ops_ = &kPooledOps<D>;
        }
    }

    void
    moveFrom(BasicInlineCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            if (ops_->trivialRelocate) {
                // Fixed-size copies (tail garbage is fine): two words
                // cover the common one/two-pointer captures, the full
                // buffer everything else.
                constexpr std::size_t kTwoWords =
                    2 * sizeof(std::uint64_t);
                if constexpr (N >= kTwoWords) {
                    if (ops_->size <= kTwoWords)
                        std::memcpy(buf_, other.buf_, kTwoWords);
                    else
                        std::memcpy(buf_, other.buf_, N);
                } else {
                    std::memcpy(buf_, other.buf_, N);
                }
            } else {
                ops_->relocate(other.buf_, buf_);
            }
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_ != nullptr && !ops_->trivialDestroy)
            ops_->destroy(buf_);
    }

    alignas(std::max_align_t) unsigned char buf_[N];
    const Ops *ops_ = nullptr;
};

/** The simulator-wide callback type (see EventQueue::Callback). */
using InlineCallback = BasicInlineCallback<kInlineCallbackBytes>;

} // namespace dapsim

#endif // DAPSIM_COMMON_INLINE_CALLBACK_HH
