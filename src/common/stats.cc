#include "common/stats.hh"

namespace dapsim
{

void
StatGroup::addCounter(const std::string &n, const Counter *c)
{
    counters_[n] = c;
}

void
StatGroup::addAverage(const std::string &n, const Average *a)
{
    averages_[n] = a;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters_)
        os << name_ << '.' << n << ' ' << c->value() << '\n';
    for (const auto &[n, a] : averages_)
        os << name_ << '.' << n << ' ' << a->mean() << '\n';
}

std::uint64_t
StatGroup::counterValue(const std::string &n) const
{
    auto it = counters_.find(n);
    return it == counters_.end() ? 0 : it->second->value();
}

double
StatGroup::averageValue(const std::string &n) const
{
    auto it = averages_.find(n);
    return it == averages_.end() ? 0.0 : it->second->mean();
}

void
StatGroup::appendColumnNames(std::vector<std::string> &out) const
{
    for (const auto &[n, c] : counters_)
        out.push_back(name_ + '.' + n);
    for (const auto &[n, a] : averages_)
        out.push_back(name_ + '.' + n);
}

void
StatGroup::appendValues(std::vector<double> &out) const
{
    for (const auto &kv : counters_)
        out.push_back(static_cast<double>(kv.second->value()));
    for (const auto &kv : averages_)
        out.push_back(kv.second->mean());
}

} // namespace dapsim
