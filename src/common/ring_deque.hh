/**
 * @file
 * Power-of-two ring buffer with deque semantics for hot request queues.
 *
 * `std::deque` cannot reserve capacity and allocates its map/chunks on
 * first use; DRAM channel queues churn requests millions of times per
 * run, so they use this ring instead: contiguous storage, O(1)
 * push_back/pop_front, indexed access, and a positional erase that
 * shifts whichever side is shorter. Capacity grows by doubling and is
 * never returned until destruction, so a queue sized once (see
 * Channel's constructor) never allocates again.
 *
 * Supports move-only element types (ChannelRequest holds an
 * InlineCallback); the container itself is move-only.
 */

#ifndef DAPSIM_COMMON_RING_DEQUE_HH
#define DAPSIM_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <new>
#include <utility>

namespace dapsim
{

/** Reservable move-only ring buffer with deque-style access. */
template <class T>
class RingDeque
{
  public:
    RingDeque() = default;
    RingDeque(const RingDeque &) = delete;
    RingDeque &operator=(const RingDeque &) = delete;

    RingDeque(RingDeque &&other) noexcept
        : data_(other.data_), cap_(other.cap_), head_(other.head_),
          size_(other.size_)
    {
        other.data_ = nullptr;
        other.cap_ = other.head_ = other.size_ = 0;
    }

    ~RingDeque()
    {
        clear();
        ::operator delete(data_, std::align_val_t(alignof(T)));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    T &operator[](std::size_t i) { return *ptr(i); }
    const T &operator[](std::size_t i) const { return *ptr(i); }
    T &front() { return *ptr(0); }
    T &back() { return *ptr(size_ - 1); }

    /** The two contiguous element runs (second may be empty): scan
     *  loops walk raw pointers instead of masked indexed access. */
    std::pair<const T *, std::size_t>
    seg0() const
    {
        const std::size_t n = cap_ - head_;
        return {data_ + head_, size_ < n ? size_ : n};
    }

    std::pair<const T *, std::size_t>
    seg1() const
    {
        const std::size_t n = cap_ - head_;
        return {data_, size_ < n ? 0 : size_ - n};
    }

    /** Ensure capacity for at least @p n elements (rounded up to a
     *  power of two); never shrinks. */
    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void
    push_back(T v)
    {
        if (size_ == cap_)
            grow(cap_ ? cap_ * 2 : 8);
        ::new (static_cast<void *>(slot(size_))) T(std::move(v));
        ++size_;
    }

    void
    pop_front()
    {
        ptr(0)->~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    /** Remove the element at @p i, shifting the shorter side. */
    void
    erase(std::size_t i)
    {
        if (i < size_ - i) {
            for (std::size_t j = i; j > 0; --j)
                *ptr(j) = std::move(*ptr(j - 1));
            pop_front();
        } else {
            for (std::size_t j = i; j + 1 < size_; ++j)
                *ptr(j) = std::move(*ptr(j + 1));
            ptr(size_ - 1)->~T();
            --size_;
        }
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            ptr(i)->~T();
        head_ = 0;
        size_ = 0;
    }

  private:
    T *
    ptr(std::size_t i) const
    {
        return slot(i);
    }

    T *
    slot(std::size_t i) const
    {
        return data_ + ((head_ + i) & (cap_ - 1));
    }

    void
    grow(std::size_t want)
    {
        std::size_t cap = 8;
        while (cap < want)
            cap *= 2;
        T *fresh = static_cast<T *>(::operator new(
            cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(*ptr(i)));
            ptr(i)->~T();
        }
        ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = fresh;
        cap_ = cap;
        head_ = 0;
    }

    T *data_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_RING_DEQUE_HH
