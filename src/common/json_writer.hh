/**
 * @file
 * Minimal JSON emission helper for result sinks.
 *
 * Writes one flat-ish JSON object at a time (nested objects/arrays are
 * supported one level deep, which covers the sweep schema). No
 * external dependencies; numbers are emitted with enough precision to
 * round-trip doubles (%.17g).
 */

#ifndef DAPSIM_COMMON_JSON_WRITER_HH
#define DAPSIM_COMMON_JSON_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace dapsim::json
{

/** Escape @p s for inclusion in a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Incremental writer for one JSON value tree. */
class JsonWriter
{
  public:
    const std::string &str() const { return buf_; }

    JsonWriter &
    beginObject()
    {
        sep();
        buf_ += '{';
        first_ = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        buf_ += '}';
        first_ = false;
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        sep();
        buf_ += '[';
        first_ = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        buf_ += ']';
        first_ = false;
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        sep();
        buf_ += '"';
        buf_ += jsonEscape(k);
        buf_ += "\":";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        sep();
        buf_ += '"';
        buf_ += jsonEscape(v);
        buf_ += '"';
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        sep();
        buf_ += buf;
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        sep();
        buf_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(std::uint32_t v)
    {
        return value(static_cast<std::uint64_t>(v));
    }

    JsonWriter &
    value(bool v)
    {
        sep();
        buf_ += v ? "true" : "false";
        return *this;
    }

  private:
    /** Insert a comma between successive values at the same level. */
    void
    sep()
    {
        if (pendingValue_) {
            pendingValue_ = false; // key already emitted its ':'
            return;
        }
        if (!first_ && !buf_.empty())
            buf_ += ',';
        first_ = false;
    }

    std::string buf_;
    bool first_ = true;
    bool pendingValue_ = false;
};

} // namespace dapsim::json

#endif // DAPSIM_COMMON_JSON_WRITER_HH
