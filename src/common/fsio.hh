/**
 * @file
 * Durable filesystem primitives for the experiment service.
 *
 * Thin wrappers over POSIX I/O providing the three guarantees the
 * `dapsim.expq.v1` store is built on:
 *
 *  - atomicWriteFile(): write-to-temp + fsync + rename(2), so readers
 *    never observe a half-written file no matter when the writer dies.
 *  - AppendFile: O_APPEND writes with an explicit fsync per record,
 *    so a crash can tear at most the final record of a ledger.
 *  - createExclusive(): O_CREAT|O_EXCL lock-file creation, the atomic
 *    take-it-or-lose primitive behind job leases and warmup locks.
 *
 * Everything throws std::runtime_error on failure (never fatal()), so
 * an I/O error inside a worker fails one operation, not the process.
 */

#ifndef DAPSIM_COMMON_FSIO_HH
#define DAPSIM_COMMON_FSIO_HH

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

namespace dapsim::fsio
{

inline std::runtime_error
errnoError(const std::string &what, const std::string &path)
{
    return std::runtime_error(what + " " + path + ": " +
                              std::strerror(errno));
}

/** write(2) the whole span, retrying short writes and EINTR. */
inline void
writeAll(int fd, const void *data, std::size_t n, const std::string &path)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw errnoError("fsio: write failed:", path);
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

/**
 * Atomically replace @p path with @p data: write a uniquely named
 * temp file next to it, fsync it, rename(2) it into place. The temp
 * name must be unique per CALL, not just per process — two threads of
 * one process publishing the same path concurrently would otherwise
 * truncate each other's temp file and rename half-written bytes into
 * place. Concurrent writers therefore race benignly (last rename
 * wins; every observable file is complete), and a crash leaves at
 * worst an orphaned temp file.
 */
inline void
atomicWriteFile(const std::string &path, const void *data, std::size_t n)
{
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw errnoError("fsio: cannot create", tmp);
    try {
        writeAll(fd, data, n, tmp);
        if (::fsync(fd) != 0)
            throw errnoError("fsio: fsync failed:", tmp);
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        throw errnoError("fsio: rename failed:", path);
    }
}

inline void
atomicWriteFile(const std::string &path, const std::string &data)
{
    atomicWriteFile(path, data.data(), data.size());
}

/**
 * Create @p path with O_CREAT|O_EXCL and write @p content — the
 * atomic "exactly one winner" primitive. Returns false when the file
 * already exists; throws on any other failure.
 */
inline bool
createExclusive(const std::string &path, const std::string &content)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        throw errnoError("fsio: cannot create", path);
    }
    try {
        writeAll(fd, content.data(), content.size(), path);
        if (::fsync(fd) != 0)
            throw errnoError("fsio: fsync failed:", path);
    } catch (...) {
        ::close(fd);
        ::unlink(path.c_str());
        throw;
    }
    ::close(fd);
    return true;
}

/** Bump @p path's mtime to now (lease/lock heartbeat). */
inline bool
touchFile(const std::string &path)
{
    return ::utimes(path.c_str(), nullptr) == 0;
}

/** Seconds since @p path's mtime; negative when the file is gone. */
inline double
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    struct timeval now;
    ::gettimeofday(&now, nullptr);
    return static_cast<double>(now.tv_sec - st.st_mtime);
}

inline bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/**
 * Append-only ledger file: every append() is one write(2) into an
 * O_APPEND descriptor followed by fsync, so records from concurrent
 * writers never interleave mid-record and a SIGKILL tears at most the
 * final record (which the reader detects and drops).
 */
class AppendFile
{
  public:
    explicit AppendFile(std::string path) : path_(std::move(path))
    {
        fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
        if (fd_ < 0)
            throw errnoError("fsio: cannot open for append", path_);
    }

    ~AppendFile()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    AppendFile(const AppendFile &) = delete;
    AppendFile &operator=(const AppendFile &) = delete;

    void
    append(const std::string &record)
    {
        writeAll(fd_, record.data(), record.size(), path_);
        if (::fsync(fd_) != 0)
            throw errnoError("fsio: fsync failed:", path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace dapsim::fsio

#endif // DAPSIM_COMMON_FSIO_HH
