/**
 * @file
 * Minimal recursive-descent JSON parser for the experiment service.
 *
 * The write side of every dapsim artifact uses json_writer.hh; this is
 * the matching read side, needed by the `dapsim.expq.v1` ledger whose
 * replay must parse its own records back. Scope is deliberately small:
 * one self-contained value per parse() call, objects as ordered maps,
 * numbers kept as raw text (so 64-bit integers round-trip exactly) with
 * typed accessors on top. No external dependencies.
 *
 * Errors throw JsonError; the ledger reader converts a throwing tail
 * record into a dropped torn record.
 */

#ifndef DAPSIM_COMMON_JSON_READER_HH
#define DAPSIM_COMMON_JSON_READER_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dapsim::json
{

class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed JSON value. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;
    std::string text; ///< string contents, or a number's raw text
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Object member or null; throws when not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw JsonError("json: member lookup on a non-object");
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }

    /** Required object member; throws when missing. */
    const Value &
    at(const std::string &key) const
    {
        const Value *v = find(key);
        if (v == nullptr)
            throw JsonError("json: missing key '" + key + "'");
        return *v;
    }

    const std::string &
    asString() const
    {
        if (kind != Kind::String)
            throw JsonError("json: expected a string");
        return text;
    }

    bool
    asBool() const
    {
        if (kind != Kind::Bool)
            throw JsonError("json: expected a boolean");
        return b;
    }

    std::uint64_t
    asU64() const
    {
        if (kind != Kind::Number)
            throw JsonError("json: expected a number");
        errno = 0;
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(text.c_str(), &end, 10);
        if (errno != 0 || end == text.c_str() || *end != '\0')
            throw JsonError("json: '" + text +
                            "' is not an unsigned integer");
        return v;
    }

    double
    asDouble() const
    {
        if (kind != Kind::Number)
            throw JsonError("json: expected a number");
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (errno != 0 || end == text.c_str() || *end != '\0')
            throw JsonError("json: '" + text + "' is not a number");
        return v;
    }
};

namespace detail
{

class Parser
{
  public:
    Parser(const char *s, std::size_t n) : s_(s), n_(n) {}

    Value
    parse()
    {
        const Value v = value();
        ws();
        if (pos_ != n_)
            throw JsonError("json: trailing bytes after value");
        return v;
    }

  private:
    void
    ws()
    {
        while (pos_ < n_ && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                             s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= n_)
            throw JsonError("json: truncated input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw JsonError(std::string("json: expected '") + c +
                            "', found '" + s_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t i = 0;
        while (lit[i] != '\0') {
            if (pos_ + i >= n_ || s_[pos_ + i] != lit[i])
                return false;
            ++i;
        }
        pos_ += i;
        return true;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= n_)
                throw JsonError("json: unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= n_)
                throw JsonError("json: unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > n_)
                    throw JsonError("json: truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        throw JsonError("json: bad \\u escape");
                }
                // The writer only emits \u00xx for control bytes;
                // decode the BMP range as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                throw JsonError("json: unknown escape");
            }
        }
    }

    Value
    value()
    {
        ws();
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.kind = Value::Kind::Object;
            ws();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                ws();
                std::string key = string();
                ws();
                expect(':');
                v.obj.emplace(std::move(key), value());
                ws();
                if (peek() == '}') {
                    ++pos_;
                    return v;
                }
                expect(',');
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Value::Kind::Array;
            ws();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.arr.push_back(value());
                ws();
                if (peek() == ']') {
                    ++pos_;
                    return v;
                }
                expect(',');
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.text = string();
            return v;
        }
        if (consumeLiteral("true")) {
            v.kind = Value::Kind::Bool;
            v.b = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.kind = Value::Kind::Bool;
            v.b = false;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        // Number: accept the JSON grammar loosely and validate in the
        // typed accessors.
        const std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < n_ &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            throw JsonError("json: unexpected character");
        v.kind = Value::Kind::Number;
        v.text.assign(s_ + start, pos_ - start);
        return v;
    }

    const char *s_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse one self-contained JSON value; throws JsonError. */
inline Value
parse(const std::string &text)
{
    return detail::Parser(text.data(), text.size()).parse();
}

} // namespace dapsim::json

#endif // DAPSIM_COMMON_JSON_READER_HH
