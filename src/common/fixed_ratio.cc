#include "common/fixed_ratio.hh"

#include <cmath>

#include "common/log.hh"

namespace dapsim
{

FixedRatio
FixedRatio::quantize(double value, unsigned shift)
{
    if (value <= 0.0)
        fatal("FixedRatio: ratio must be positive");
    if (shift > 16)
        fatal("FixedRatio: denominator shift too large for hardware");
    FixedRatio r;
    r.shift_ = shift;
    const double scaled = value * static_cast<double>(1ULL << shift);
    auto num = static_cast<std::uint64_t>(std::llround(scaled));
    r.num_ = num == 0 ? 1 : num;
    return r;
}

} // namespace dapsim
