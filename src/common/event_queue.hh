/**
 * @file
 * Global event queue driving all timed simulation in dapsim.
 *
 * A single EventQueue instance owns simulated time. Components schedule
 * closures at absolute ticks; ties are broken by insertion order so that
 * simulations are fully deterministic.
 *
 * Internally the queue is a hierarchical timing wheel (see DESIGN.md
 * §9): a near-future wheel of power-of-two buckets indexed by tick
 * quantum, a far-future overflow min-heap that refills the wheel as its
 * window advances, and a "current run" — the earliest occupied bucket,
 * swapped out wholesale and drained through a small index array sorted
 * by (tick, insertion seq). The common case — events clustered on clock
 * edges within ~1 µs of now — costs O(1) per schedule and amortized
 * O(log bucket-occupancy) comparisons per dispatch, with no per-event
 * heap allocation (callbacks are stored inline, see
 * common/inline_callback.hh) and no per-dispatch bucket scans. Dispatch
 * order is exactly (tick, insertion seq), bit-identical to a
 * binary-heap scheduler; tests/test_event_wheel_fuzz.cc enforces this
 * differentially.
 */

#ifndef DAPSIM_COMMON_EVENT_QUEUE_HH
#define DAPSIM_COMMON_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/inline_callback.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace dapsim
{

/** Deterministic O(1) timing-wheel event scheduler. */
class EventQueue
{
  public:
    /** Inline small-buffer callback; no heap allocation for captures
     *  up to kInlineCallbackBytes (pooled slots beyond that). */
    using Callback = InlineCallback;

    /** Sentinel returned by nextEventTick() when no event is pending.
     *  Scheduling at this tick is rejected. */
    static constexpr Tick kNoEvent = ~Tick(0);

    /**
     * Observability hook invoked after every dispatched event (see
     * src/obs/). The hook must only observe — it runs between events,
     * so mutating simulator state from it would break determinism
     * guarantees documented elsewhere. Null (the default) costs one
     * predictable branch per event.
     */
    struct DispatchHook
    {
        virtual ~DispatchHook() = default;

        /** @param now tick of the event just executed
         *  @param pending events still queued after it ran */
        virtual void onDispatch(Tick now, std::size_t pending) = 0;
    };

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events still pending. */
    std::size_t pending() const { return pending_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** High-water mark of pending events (sizing observability). */
    std::size_t peakPending() const { return peakPending_; }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_) [[unlikely]]
            panic("EventQueue: scheduling in the past");
        if (when == kNoEvent) [[unlikely]]
            panic("EventQueue: event time overflow");
        if (++pending_ > peakPending_)
            peakPending_ = pending_;

        const std::uint64_t q = when >> kQuantumBits;
        if (q > base_) [[likely]] {
            if (q < base_ + kSlots) [[likely]] {
                const std::size_t slot =
                    static_cast<std::size_t>(q) & kSlotMask;
                Bucket &b = buckets_[slot];
                if (b.keys.empty())
                    bucketSorted_[slot] = 1;
                else if (when < b.keys.back().when)
                    // Direct pushes carry monotonic seq, so only a
                    // time step backwards breaks the append order.
                    bucketSorted_[slot] = 0;
                b.keys.push_back(Key{when, seq_++});
                b.cbs.push_back(std::move(cb));
                occupied_[slot >> 6] |= std::uint64_t(1) << (slot & 63);
            } else {
                overflow_.emplace_back(when, seq_++, std::move(cb));
                std::push_heap(overflow_.begin(), overflow_.end(),
                               heapLater);
            }
        } else {
            // At or before the run's quantum (same-tick events
            // included): joins the current run at its (when, seq)
            // position.
            insertRun(when, seq_++, std::move(cb));
        }
    }

    /** Schedule @p cb @p delta ticks from now. */
    void scheduleAfter(Tick delta, Callback cb) {
        schedule(now_ + delta, std::move(cb));
    }

    /**
     * Tick of the earliest pending event, or kNoEvent if none. May
     * promote the next bucket into the current run (cheap, order-
     * preserving); simulated time and dispatch order are unaffected.
     */
    Tick
    nextEventTick()
    {
        if (runHead_ < runOrder_.size())
            return runKeys_[runOrder_[runHead_]].when;
        return nextEventTickSlow();
    }

    /** Execute the single earliest event. @return false if queue empty. */
    bool step();

    /** Run until the queue drains or @p limit ticks is reached. */
    void
    run(Tick limit = kNoEvent)
    {
        runUntil([] { return false; }, limit);
    }

    /**
     * Run until @p done returns true, the queue drains, or @p limit.
     * The predicate is a template parameter so hot callers (System's
     * main loop) pay a direct call, not std::function indirection.
     */
    template <class Pred>
    void
    runUntil(Pred &&done, Tick limit = kNoEvent)
    {
        while (!done()) {
            const Tick t = nextEventTick();
            if (t == kNoEvent || t > limit)
                break;
            dispatchOne();
        }
    }

    /** Attach (or clear, with nullptr) the dispatch observability hook. */
    void setDispatchHook(DispatchHook *hook) { hook_ = hook; }

    /**
     * Pre-size internal storage for an expected steady-state pending
     * population (e.g. channels x queue depth) so the run loop never
     * reallocates. Purely an optimisation; growth past the hint works.
     */
    void reserve(std::size_t expected_pending);

  private:
    /** log2 of the bucket quantum: 256 ps, one CPU cycle (250 ps) of
     *  headroom, so same-edge events share a bucket. */
    static constexpr unsigned kQuantumBits = 8;
    /** log2 of the wheel slot count: 4096 slots x 256 ps ≈ 1.05 µs of
     *  near-future horizon (~4.2k CPU cycles). DRAM CAS completions,
     *  scheduler kicks, ROB wakeups and DAP windows land here; only
     *  refresh/sampler-period events overflow to the heap. */
    static constexpr unsigned kSlotBits = 12;
    static constexpr std::size_t kSlots = std::size_t(1) << kSlotBits;
    static constexpr std::size_t kSlotMask = kSlots - 1;
    static constexpr std::size_t kBitmapWords = kSlots / 64;
    static constexpr std::uint64_t kNoSlot = ~std::uint64_t(0);

    /** (when, seq) dispatch key, kept separate from the callback so
     *  sorting and binary searches stream over dense 16-byte keys
     *  instead of striding across 88-byte entries. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
    };

    /** A wheel slot: parallel key/callback arrays in append order. */
    struct Bucket
    {
        std::vector<Key> keys;
        std::vector<Callback> cbs;
    };

    /** Far-future overflow entry (heap moves whole entries; cold). */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Execute the next event; caller has verified one is pending. */
    void
    dispatchOne()
    {
        if (runHead_ == runOrder_.size())
            ensureRun();
        const std::uint32_t idx = runOrder_[runHead_];
        ++runHead_;
        now_ = runKeys_[idx].when;
        // Move out before invoking: the callback may schedule into the
        // current run and reallocate runCbs_ under its own captures.
        Callback cb = std::move(runCbs_[idx]);
        --pending_;
        ++executed_;
#if defined(__GNUC__) || defined(__clang__)
        // Overlap the next callback's cache-line fetch with this
        // callback's execution; dispatch order is already known.
        if (runHead_ < runOrder_.size())
            __builtin_prefetch(&runCbs_[runOrder_[runHead_]]);
#endif
        cb();
        if (hook_ != nullptr) [[unlikely]]
            hook_->onDispatch(now_, pending_);
    }

    /** Out-of-line tail of nextEventTick(): the current run is
     *  drained, so promote the next bucket (or jump to the overflow
     *  min) before peeking. */
    Tick nextEventTickSlow();

    /** Make the current run non-empty, promoting the next occupied
     *  bucket or jumping to the overflow minimum. @return false if no
     *  event is pending anywhere. */
    bool ensureRun();

    /** Swap bucket @p quantum in as the new current run and sort its
     *  dispatch order; advances the window (base_) to @p quantum. */
    void promote(std::uint64_t quantum);

    /** Sorted insertion into the current run (binary search over the
     *  undispatched suffix of runOrder_). */
    void
    insertRun(Tick when, std::uint64_t seq, Callback &&cb)
    {
        const auto idx = static_cast<std::uint32_t>(runKeys_.size());
        runKeys_.push_back(Key{when, seq});
        runCbs_.push_back(std::move(cb));
        const auto pos = std::upper_bound(
            runOrder_.begin() + static_cast<std::ptrdiff_t>(runHead_),
            runOrder_.end(), Key{when, seq},
            [this](const Key &v, std::uint32_t i) {
                const Key &a = runKeys_[i];
                if (v.when != a.when)
                    return v.when < a.when;
                return v.seq < a.seq;
            });
        runOrder_.insert(pos, idx);
    }

    /** First occupied slot in window order after base_, as an absolute
     *  quantum index; kNoSlot if the wheel is empty. */
    std::uint64_t findFirstOccupied() const;

    /** Move overflow-heap entries that now fall inside the wheel
     *  window [base_, base_ + kSlots) into their buckets (entries at
     *  or before base_ go straight into the current run). */
    void refillFromOverflow();

    void pushBucket(std::uint64_t quantum, Entry &&e);

    /** Clear the run's consumed storage, keeping capacity. */
    void
    clearRun()
    {
        runKeys_.clear();
        runCbs_.clear();
        runOrder_.clear();
        runHead_ = 0;
    }

    static bool
    heapLater(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** Near-future wheel: bucket per quantum, bitmap for O(1) skip of
     *  empty slots. Bucket capacity circulates with the run vectors
     *  via swap, so the steady state allocates nothing. Invariant:
     *  bucket entries have quantum in (base_, base_ + kSlots) — the
     *  slot of base_ itself is always empty (its events live in the
     *  run). */
    std::vector<Bucket> buckets_;
    /** Bucket i's append order is already (when, seq) order — true
     *  whenever events arrive time-sorted (clock-edge clustering), and
     *  lets promote() skip the sort. Maintained by the push paths. */
    std::vector<unsigned char> bucketSorted_;
    std::array<std::uint64_t, kBitmapWords> occupied_{};
    /** Absolute quantum index of the current run (monotonic). */
    std::uint64_t base_ = 0;

    /** Far-future overflow: std::push_heap/pop_heap min-heap. All
     *  entries have quantum >= base_ + kSlots. */
    std::vector<Entry> overflow_;

    /** Current run: every pending event with quantum <= base_, as
     *  parallel key/callback arrays. Elements stay in place; dispatch
     *  order is runOrder_[runHead_..], indices sorted by (when, seq).
     *  Positions before runHead_ are consumed. */
    std::vector<Key> runKeys_;
    std::vector<Callback> runCbs_;
    std::vector<std::uint32_t> runOrder_;
    std::size_t runHead_ = 0;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    std::size_t peakPending_ = 0;
    DispatchHook *hook_ = nullptr;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_EVENT_QUEUE_HH
