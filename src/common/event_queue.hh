/**
 * @file
 * Global event queue driving all timed simulation in dapsim.
 *
 * A single EventQueue instance owns simulated time. Components schedule
 * closures at absolute ticks; ties are broken by insertion order so that
 * simulations are fully deterministic.
 */

#ifndef DAPSIM_COMMON_EVENT_QUEUE_HH
#define DAPSIM_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace dapsim
{

/** Deterministic priority-queue event scheduler. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Observability hook invoked after every dispatched event (see
     * src/obs/). The hook must only observe — it runs between events,
     * so mutating simulator state from it would break determinism
     * guarantees documented elsewhere. Null (the default) costs one
     * predictable branch per event.
     */
    struct DispatchHook
    {
        virtual ~DispatchHook() = default;

        /** @param now tick of the event just executed
         *  @param pending events still queued after it ran */
        virtual void onDispatch(Tick now, std::size_t pending) = 0;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void scheduleAfter(Tick delta, Callback cb) {
        schedule(now_ + delta, std::move(cb));
    }

    /** Execute the single earliest event. @return false if queue empty. */
    bool step();

    /** Run until the queue drains or @p limit ticks is reached. */
    void run(Tick limit = ~Tick(0));

    /** Run until @p done returns true, the queue drains, or @p limit. */
    void runUntil(const std::function<bool()> &done, Tick limit = ~Tick(0));

    /** Attach (or clear, with nullptr) the dispatch observability hook. */
    void setDispatchHook(DispatchHook *hook) { hook_ = hook; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    DispatchHook *hook_ = nullptr;
};

} // namespace dapsim

#endif // DAPSIM_COMMON_EVENT_QUEUE_HH
