/**
 * @file
 * Job layer of the experiment orchestration subsystem.
 *
 * A JobSpec pins down one simulation completely: SystemConfig x Mix x
 * PolicyKind x instruction budget x seed salt. Running a job is a pure
 * function of its spec — each execution builds a private EventQueue /
 * System / generator set, and nothing in src/sim, src/common/rng.hh,
 * or src/common/stats.cc is shared mutable state (the only global in
 * the simulator, trace/workloads.cc's profile table, is a const
 * function-local static with thread-safe initialization). Running the
 * same spec on any thread of any sweep therefore yields bit-identical
 * RunResult metrics.
 */

#ifndef DAPSIM_EXP_JOB_HH
#define DAPSIM_EXP_JOB_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ckpt/checkpoint.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "trace/mixes.hh"

namespace dapsim::exp
{

/** Stable lowercase name for a PolicyKind (matches policy->name()). */
const char *policyKindName(PolicyKind policy);

/** Stable lowercase name for an MsArch. */
const char *archName(MsArch arch);

/** Parse a policy name back to its kind; fatal() on unknown names. */
PolicyKind policyKindFromName(const std::string &name);

/** One fully-specified simulation in a sweep. */
struct JobSpec
{
    SystemConfig cfg;
    Mix mix;
    PolicyKind policy = PolicyKind::Baseline;
    std::uint64_t instr = 0;
    std::uint64_t seedSalt = 0;

    /** Extra config knobs recorded verbatim by result sinks
     *  (e.g. {"capacity_mb", "64"} in a capacity sweep). */
    std::map<std::string, std::string> knobs;

    /**
     * Optional override: when set, run() invokes this instead of the
     * standard runMix() path. Used for auxiliary simulations (alone-IPC
     * runs) and for fault-injection in tests. Must be a pure function
     * of captured state — no shared mutable captures.
     */
    std::function<RunResult()> custom;

    /** Human-readable label: "<mix>/<policy>" unless overridden. */
    std::string label;

    std::string displayLabel() const;
};

/** 16-hex-digit lowercase rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t h);

/**
 * Stable content hash of a JobSpec — the "job id".
 *
 * Canonical serialization of everything that determines the job's
 * result: the policy-invariant configuration + access-stream
 * description + seed + warm-up length (ckpt::stateHash), the policy
 * kind and its configuration (ckpt::fullHash), the instruction budget,
 * and the knobs map. Independent of grid order, submission index,
 * display label, and observability settings, so rows of re-runs
 * correlate across reordered grids. Custom jobs (which carry an opaque
 * closure) hash their label instead and are excluded from the
 * experiment service.
 */
std::uint64_t jobContentHash(const JobSpec &spec);

/** jobContentHash as the canonical 16-hex-digit job-id string. */
std::string jobId(const JobSpec &spec);

/** True when the spec can share a warmup-fork checkpoint (standard,
 *  well-formed job — the condition SweepRunner::buildForkGroups and
 *  the expd warmup dedup both use). */
bool warmupForkable(const JobSpec &spec);

/** The warmup-fork group key (ckpt::stateHash of the spec); only
 *  meaningful when warmupForkable(). */
std::uint64_t warmupStateHash(const JobSpec &spec);

/** warmupStateHash as a hex string, or "" when not forkable. */
std::string groupKey(const JobSpec &spec);

/** Outcome of one job: a RunResult or a captured error. */
struct JobResult
{
    std::size_t index = 0; ///< submission order within the sweep
    bool ok = false;
    std::string error;     ///< exception text when !ok
    RunResult result;      ///< valid only when ok

    // Spec echo so sinks can serialize without the JobSpec.
    std::string jobId; ///< stable content hash (see exp::jobId)
    std::string label;
    std::string archName;
    std::string policyName;
    std::string mixName;
    std::uint32_t numCores = 0;
    std::uint64_t instr = 0;
    std::uint64_t seedSalt = 0;
    std::map<std::string, std::string> knobs;
};

/**
 * Execute @p spec on the calling thread. Exceptions thrown by the
 * simulation are captured into the JobResult; they never propagate.
 * (@note fatal()/panic() terminate the process by design — impossible
 * configurations should be rejected before sweep submission.)
 *
 * With @p fork the job skips its own functional warm-up and instead
 * restores the shared post-warmup checkpoint (policy section skipped),
 * which must match the spec's stateHash — the sweep runner's
 * warmup-fork mode. Ignored for custom jobs.
 */
JobResult runJob(const JobSpec &spec, std::size_t index,
                 const ckpt::CheckpointView *fork = nullptr);

} // namespace dapsim::exp

#endif // DAPSIM_EXP_JOB_HH
