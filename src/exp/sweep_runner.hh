/**
 * @file
 * SweepRunner: expand parameter grids into jobs, run them on a thread
 * pool, and deliver results in submission order.
 *
 * Determinism contract: every job builds its own EventQueue, System,
 * and generator Rngs from the spec alone (audited: the simulator keeps
 * no global mutable state — see exp/job.hh), so the metrics of a sweep
 * are bit-identical whether it runs on 1 thread or N. Only the
 * wall-clock time and the stderr progress interleaving change.
 *
 * Failure isolation: a job that throws is delivered as a failed
 * JobResult carrying the exception text; the rest of the sweep
 * completes normally.
 */

#ifndef DAPSIM_EXP_SWEEP_RUNNER_HH
#define DAPSIM_EXP_SWEEP_RUNNER_HH

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/job.hh"
#include "exp/result_sink.hh"
#include "exp/warmup_cache.hh"

namespace dapsim::exp
{

/** Runs a batch of JobSpecs and reports ordered results. */
class SweepRunner
{
  public:
    /** Add one job; returns its submission index. */
    std::size_t add(JobSpec spec);

    /** Cross-product convenience: every policy for every mix under
     *  @p cfg. Jobs are added mix-major (all policies of mix 0, then
     *  mix 1, ...). Returns the index of the first added job. */
    std::size_t addGrid(const SystemConfig &cfg,
                        const std::vector<Mix> &mixes,
                        const std::vector<PolicyKind> &policies,
                        std::uint64_t instr,
                        std::uint64_t seed_salt = 0);

    /** Attach a sink; consume() is called in submission order. */
    void addSink(ResultSink *sink) { sinks_.push_back(sink); }

    /** Report per-job progress lines to stderr (default off). */
    void setProgress(bool on) { progress_ = on; }

    /**
     * Warmup-fork mode: group jobs by their checkpoint stateHash
     * (configuration x stream x seed x warm-up length — in practice
     * (arch, workload, warmup) tuples), execute the shared functional
     * warm-up ONCE per group, snapshot it, and fork every other job of
     * the group from the in-memory checkpoint with its own policy and
     * fresh statistics. Results are bit-identical to a non-forked
     * sweep because the warm state never depends on the policy.
     *
     * With a non-empty @p ckpt_dir the per-group checkpoints are also
     * kept on disk as `warmup-<statehash>.ckpt` and reused by later
     * sweeps; unreadable or mismatched files are regenerated. The
     * directory is a fleet-wide WarmupCache: checkpoints are published
     * with atomic renames and creation is guarded by a lock file, so
     * any number of concurrent sweeps (or expd workers) sharing the
     * directory simulate each warmup exactly once. Custom jobs and
     * jobs that would fail validation run unforked.
     */
    void
    setWarmupFork(bool on, std::string ckpt_dir = "")
    {
        warmupFork_ = on;
        ckptDir_ = std::move(ckpt_dir);
    }

    /** Shared warm-ups actually executed (not loaded from disk) by the
     *  last run() — for tests and telemetry. */
    std::uint64_t warmupsExecuted() const { return warmupsExecuted_; }

    /**
     * Write a Chrome trace_event file of wall-clock job execution
     * after run(): one track per worker thread, one span per job
     * (category "job" or "failed"), plus shared warm-up spans. Spans
     * are collected during the run and written single-threaded at the
     * end, so the trace never perturbs job scheduling.
     */
    void setPhaseTrace(std::string path) { phaseTracePath_ = std::move(path); }

    std::size_t jobCount() const { return specs_.size(); }

    /**
     * Run every job on @p threads workers (1 = serial on the calling
     * thread) and return results indexed by submission order. Sinks
     * receive each result as soon as its submission-order predecessors
     * have been delivered, regardless of completion order.
     */
    std::vector<JobResult> run(std::size_t threads = 1);

  private:
    /** One warmup-fork group: jobs sharing a post-warmup state. */
    struct ForkGroup
    {
        std::uint64_t stateHash = 0;
        std::once_flag once;
        /** Shared snapshot; null when preparation failed (the group's
         *  jobs then fall back to running their own warm-up). */
        ckpt::CheckpointView ckpt;
    };

    /** Deliver any contiguous completed prefix to the sinks. A sink
     *  that throws (e.g. the JSON-lines sink on a full disk) marks the
     *  affected job failed instead of aborting the sweep. */
    void drainReady();

    /** Map each job to its fork group (null = run unforked). */
    void buildForkGroups();

    /** Run job @p i, forking from its group's checkpoint if any. */
    JobResult execute(std::size_t i);

    /** One wall-clock span for the phase trace. */
    struct PhaseSpan
    {
        std::string name;
        std::string cat;
        double startUs = 0;
        double endUs = 0;
        std::size_t worker = 0;
    };

    /** Ordinal of the calling worker thread (assigned on first use). */
    std::size_t workerOrdinal();

    /** Record one span (thread-safe; no-op without a phase trace). */
    void recordSpan(const std::string &name, const std::string &cat,
                    double start_us, double end_us);

    /** Microseconds since run() started. */
    double nowUs() const;

    void writePhaseTrace();

    std::vector<JobSpec> specs_;
    std::vector<ResultSink *> sinks_;
    bool progress_ = false;

    bool warmupFork_ = false;
    std::string ckptDir_;
    std::atomic<std::uint64_t> warmupsExecuted_{0};
    std::unique_ptr<WarmupCache> warmupCache_;
    std::map<std::uint64_t, ForkGroup> groups_;
    std::vector<ForkGroup *> jobGroup_;

    // run() state
    std::mutex mutex_;
    std::vector<JobResult> results_;
    std::vector<bool> done_;
    std::size_t nextToDeliver_ = 0;
    std::size_t completed_ = 0;

    // Phase-trace state
    std::string phaseTracePath_;
    std::chrono::steady_clock::time_point epoch_;
    std::mutex phaseMutex_;
    std::vector<PhaseSpan> phaseSpans_;
    std::map<std::thread::id, std::size_t> workerIds_;
};

} // namespace dapsim::exp

#endif // DAPSIM_EXP_SWEEP_RUNNER_HH
