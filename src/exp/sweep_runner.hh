/**
 * @file
 * SweepRunner: expand parameter grids into jobs, run them on a thread
 * pool, and deliver results in submission order.
 *
 * Determinism contract: every job builds its own EventQueue, System,
 * and generator Rngs from the spec alone (audited: the simulator keeps
 * no global mutable state — see exp/job.hh), so the metrics of a sweep
 * are bit-identical whether it runs on 1 thread or N. Only the
 * wall-clock time and the stderr progress interleaving change.
 *
 * Failure isolation: a job that throws is delivered as a failed
 * JobResult carrying the exception text; the rest of the sweep
 * completes normally.
 */

#ifndef DAPSIM_EXP_SWEEP_RUNNER_HH
#define DAPSIM_EXP_SWEEP_RUNNER_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "exp/job.hh"
#include "exp/result_sink.hh"

namespace dapsim::exp
{

/** Runs a batch of JobSpecs and reports ordered results. */
class SweepRunner
{
  public:
    /** Add one job; returns its submission index. */
    std::size_t add(JobSpec spec);

    /** Cross-product convenience: every policy for every mix under
     *  @p cfg. Jobs are added mix-major (all policies of mix 0, then
     *  mix 1, ...). Returns the index of the first added job. */
    std::size_t addGrid(const SystemConfig &cfg,
                        const std::vector<Mix> &mixes,
                        const std::vector<PolicyKind> &policies,
                        std::uint64_t instr,
                        std::uint64_t seed_salt = 0);

    /** Attach a sink; consume() is called in submission order. */
    void addSink(ResultSink *sink) { sinks_.push_back(sink); }

    /** Report per-job progress lines to stderr (default off). */
    void setProgress(bool on) { progress_ = on; }

    std::size_t jobCount() const { return specs_.size(); }

    /**
     * Run every job on @p threads workers (1 = serial on the calling
     * thread) and return results indexed by submission order. Sinks
     * receive each result as soon as its submission-order predecessors
     * have been delivered, regardless of completion order.
     */
    std::vector<JobResult> run(std::size_t threads = 1);

  private:
    /** Deliver any contiguous completed prefix to the sinks. */
    void drainReady();

    std::vector<JobSpec> specs_;
    std::vector<ResultSink *> sinks_;
    bool progress_ = false;

    // run() state
    std::mutex mutex_;
    std::vector<JobResult> results_;
    std::vector<bool> done_;
    std::size_t nextToDeliver_ = 0;
    std::size_t completed_ = 0;
};

} // namespace dapsim::exp

#endif // DAPSIM_EXP_SWEEP_RUNNER_HH
