#include "exp/result_sink.hh"

#include <stdexcept>

#include "common/json_writer.hh"

namespace dapsim::exp
{

void
ConsoleTableSink::begin(std::size_t total)
{
    std::fprintf(out_, "%-30s %-10s %-10s %10s %10s %8s\n",
                 "job", "arch", "policy", "thruput", "ms_hit",
                 "status");
    std::fprintf(out_, "(%zu jobs)\n", total);
}

void
ConsoleTableSink::consume(const JobResult &r)
{
    if (r.ok) {
        std::fprintf(out_, "%-30s %-10s %-10s %10.3f %10.3f %8s\n",
                     r.label.c_str(), r.archName.c_str(),
                     r.policyName.c_str(), r.result.throughput(),
                     r.result.msHitRatio, "ok");
    } else {
        ++failures_;
        std::fprintf(out_, "%-30s %-10s %-10s %10s %10s %8s  %s\n",
                     r.label.c_str(), r.archName.c_str(),
                     r.policyName.c_str(), "-", "-", "FAILED",
                     r.error.c_str());
    }
    std::fflush(out_);
}

void
ConsoleTableSink::end()
{
    if (failures_)
        std::fprintf(out_, "%zu job(s) failed\n", failures_);
}

std::string
jobResultToJson(const JobResult &r)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value("dapsim.sweep.v1");
    w.key("job").value(static_cast<std::uint64_t>(r.index));
    w.key("job_id").value(r.jobId);
    w.key("ok").value(r.ok);
    w.key("label").value(r.label);
    w.key("arch").value(r.archName);
    w.key("policy").value(r.policyName);
    w.key("workload").value(r.mixName);
    w.key("cores").value(r.numCores);
    w.key("instr").value(r.instr);
    w.key("seed_salt").value(r.seedSalt);

    w.key("knobs").beginObject();
    for (const auto &[k, v] : r.knobs)
        w.key(k).value(v);
    w.endObject();

    if (!r.ok) {
        w.key("error").value(r.error);
        w.endObject();
        return w.str();
    }

    const RunResult &m = r.result;
    w.key("metrics").beginObject();
    w.key("throughput").value(m.throughput());
    w.key("ipc").beginArray();
    for (double ipc : m.ipc)
        w.value(ipc);
    w.endArray();
    w.key("cycles").value(m.cycles);
    w.key("ms_hit_ratio").value(m.msHitRatio);
    w.key("ms_read_miss_ratio").value(m.msReadMissRatio);
    w.key("mm_cas_fraction").value(m.mmCasFraction);
    w.key("tag_cache_miss_ratio").value(m.tagCacheMissRatio);
    w.key("avg_l3_read_miss_latency_ticks").value(m.avgL3ReadMissLatency);
    w.key("l3_mpki").value(m.l3Mpki);
    w.key("read_gbps").value(m.readGBps);
    w.key("dap_decisions").beginObject();
    w.key("fwb").value(m.fwb);
    w.key("wb").value(m.wb);
    w.key("ifrm").value(m.ifrm);
    w.key("sfrm").value(m.sfrm);
    w.endObject();
    w.endObject();

    w.endObject();
    return w.str();
}

std::string
fidelityReportToJson(const JobResult &r)
{
    if (!r.ok || !r.result.fidelity.valid)
        return "";
    const FidelityReport &f = r.result.fidelity;
    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value("dapsim.fidelity.v1");
    w.key("job").value(static_cast<std::uint64_t>(r.index));
    w.key("job_id").value(r.jobId);
    w.key("mode").value(f.mode);
    w.key("windows").value(f.windows);
    w.key("detailed_instr").value(f.detailedInstr);
    w.key("fast_forward_instr").value(f.fastForwardInstr);
    w.key("detail_fraction").value(f.detailFraction);
    w.key("ipc_mean").value(f.ipcMean);
    w.key("ipc_ci_half").value(f.ipcCiHalf);
    w.key("ms_gbps_mean").value(f.msGBpsMean);
    w.key("ms_gbps_ci_half").value(f.msGBpsCiHalf);
    w.key("mm_gbps_mean").value(f.mmGBpsMean);
    w.key("mm_gbps_ci_half").value(f.mmGBpsCiHalf);
    w.key("remote_gbps_mean").value(f.remoteGBpsMean);
    w.key("remote_gbps_ci_half").value(f.remoteGBpsCiHalf);
    w.endObject();
    return w.str();
}

void
JsonLinesSink::consume(const JobResult &r)
{
    os_ << jobResultToJson(r) << '\n';
    const std::string fidelity = fidelityReportToJson(r);
    if (!fidelity.empty())
        os_ << fidelity << '\n';
    // Flush per row so a disk-full/EBADF failure surfaces on the row
    // that hit it instead of silently vanishing at destruction.
    os_.flush();
    if (!os_)
        throw std::runtime_error(
            "json-lines sink: write failed (disk full or bad "
            "stream?)");
}

void
JsonLinesSink::end()
{
    os_.flush();
    if (!os_)
        throw std::runtime_error(
            "json-lines sink: final flush failed");
}

} // namespace dapsim::exp
