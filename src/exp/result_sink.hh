/**
 * @file
 * Result sinks: consumers of completed sweep jobs.
 *
 * The SweepRunner feeds JobResults to its sinks strictly in submission
 * order (buffering out-of-order completions), so sink implementations
 * never need their own ordering or locking.
 */

#ifndef DAPSIM_EXP_RESULT_SINK_HH
#define DAPSIM_EXP_RESULT_SINK_HH

#include <cstdio>
#include <ostream>
#include <string>

#include "exp/job.hh"

namespace dapsim::exp
{

/** Consumer of sweep results, fed in submission order. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Called once before any result, with the total job count. */
    virtual void begin(std::size_t total) { (void)total; }

    /** Called once per job, in submission order. */
    virtual void consume(const JobResult &r) = 0;

    /** Called once after the last result. */
    virtual void end() {}
};

/** Plain-text table on a FILE* (default stdout). */
class ConsoleTableSink : public ResultSink
{
  public:
    explicit ConsoleTableSink(std::FILE *out = stdout) : out_(out) {}

    void begin(std::size_t total) override;
    void consume(const JobResult &r) override;
    void end() override;

  private:
    std::FILE *out_;
    std::size_t failures_ = 0;
};

/**
 * JSON-lines sink: one self-contained JSON object per job.
 *
 * Schema (schema id "dapsim.sweep.v1"):
 *   {"schema":"dapsim.sweep.v1","job":N,"job_id":"<16 hex>","ok":true,
 *    "arch":...,"policy":...,"workload":...,"cores":N,"instr":N,
 *    "seed_salt":N,"knobs":{...},
 *    "metrics":{"throughput":...,"ipc":[...],"cycles":N,
 *               "ms_hit_ratio":...,"ms_read_miss_ratio":...,
 *               "mm_cas_fraction":...,"tag_cache_miss_ratio":...,
 *               "avg_l3_read_miss_latency_ticks":...,"l3_mpki":...,
 *               "read_gbps":...,
 *               "dap_decisions":{"fwb":N,"wb":N,"ifrm":N,"sfrm":N}}}
 * Failed jobs instead carry "ok":false and an "error" string; they
 * still include the identifying fields so a grid stays rectangular.
 *
 * The "job_id" field is the stable JobSpec content hash (exp::jobId),
 * so rows of the same logical job correlate across reruns even when
 * grid order — and hence the "job" index — changes.
 *
 * Write failures (disk full, revoked descriptor) are detected by
 * flushing after every row and throw std::runtime_error; the
 * SweepRunner converts that into a failed JobResult for the affected
 * job while sibling jobs continue — a row is never silently dropped.
 */
class JsonLinesSink : public ResultSink
{
  public:
    explicit JsonLinesSink(std::ostream &os) : os_(os) {}

    void consume(const JobResult &r) override;
    void end() override;

  private:
    std::ostream &os_;
};

/** Serialize one JobResult as a single JSON-lines record (no '\n'). */
std::string jobResultToJson(const JobResult &r);

/**
 * Serialize a job's fidelity report as a companion JSON-lines record
 * (schema id "dapsim.fidelity.v1"), or "" when the job failed or ran
 * at exact fidelity (exact runs carry no report, so sweep output stays
 * byte-identical to pre-fidelity builds).
 *
 * Schema:
 *   {"schema":"dapsim.fidelity.v1","job":N,"job_id":"<16 hex>",
 *    "mode":"sampled"|"analytic","windows":N,"detailed_instr":N,
 *    "fast_forward_instr":N,"detail_fraction":...,
 *    "ipc_mean":...,"ipc_ci_half":...,
 *    "ms_gbps_mean":...,"ms_gbps_ci_half":...,
 *    "mm_gbps_mean":...,"mm_gbps_ci_half":...,
 *    "remote_gbps_mean":...,"remote_gbps_ci_half":...}
 *
 * JsonLinesSink emits this as a second line directly after the job's
 * dapsim.sweep.v1 row. The expq merge path intentionally does NOT —
 * merge replays the verbatim recorded rows, and fidelity rows would
 * break its byte-identity contract with serial sweep output for
 * stores recorded before this schema existed.
 */
std::string fidelityReportToJson(const JobResult &r);

} // namespace dapsim::exp

#endif // DAPSIM_EXP_RESULT_SINK_HH
