#include "exp/thread_pool.hh"

namespace dapsim::exp
{

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back(
            [this](std::stop_token stop) { workerLoop(stop); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    // jthread joins on destruction; workers drain the queue first so
    // every submitted task still runs.
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop(std::stop_token)
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(mutex_);
            workReady_.wait(lock, [this] {
                return !queue_.empty() || stopping_;
            });
            if (queue_.empty())
                return; // stopping and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace dapsim::exp
