#include "exp/warmup_cache.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "common/fsio.hh"
#include "common/json_reader.hh"
#include "common/json_writer.hh"

namespace dapsim::exp
{

namespace
{

std::string
hostName()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown-host";
    return buf;
}

/** {"pid":N,"host":"..."} — the lock owner's identity. */
std::string
lockContent()
{
    json::JsonWriter w;
    w.beginObject();
    w.key("pid").value(static_cast<std::uint64_t>(::getpid()));
    w.key("host").value(hostName());
    w.endObject();
    return w.str();
}

} // namespace

WarmupCache::WarmupCache(std::string dir, double lock_ttl_sec)
    : dir_(std::move(dir)), lockTtlSec_(lock_ttl_sec)
{
}

std::string
WarmupCache::checkpointPath(std::uint64_t state_hash) const
{
    return dir_ + "/warmup-" + hashHex(state_hash) + ".ckpt";
}

bool
WarmupCache::lockIsStale(const std::string &path) const
{
    // Same-host dead owner: immediately stale. Foreign or unreadable
    // owners fall back to the mtime TTL.
    try {
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (in && !text.empty()) {
            const json::Value v = json::parse(text);
            if (v.at("host").asString() == hostName()) {
                const pid_t pid =
                    static_cast<pid_t>(v.at("pid").asU64());
                if (::kill(pid, 0) != 0 && errno == ESRCH)
                    return true;
            }
        }
    } catch (const std::exception &) {
        // Torn lock content (owner died mid-write): age decides.
    }
    const double age = fsio::fileAgeSeconds(path);
    return age > lockTtlSec_;
}

WarmupCache::Result
WarmupCache::prepare(const JobSpec &spec, std::uint64_t state_hash)
{
    Result out;
    // The heap checkpoint this call simulated (kept so the acquired
    // branch can publish it to disk after serving the view).
    std::shared_ptr<const ckpt::Checkpoint> simulated;
    auto simulate = [&]() {
        SystemConfig cfg = spec.cfg;
        cfg.policy = spec.policy;
        simulated = std::make_shared<const ckpt::Checkpoint>(
            ckpt::makeWarmupCheckpoint(cfg, spec.mix, spec.instr,
                                       spec.seedSalt));
        out.ckpt = ckpt::viewOf(simulated);
        out.executed = true;
    };

    if (dir_.empty()) {
        simulate();
        return out;
    }

    const std::string path = checkpointPath(state_hash);
    const std::string lock = path + ".lock";
    auto tryLoad = [&]() -> bool {
        try {
            // Serve the published checkpoint as a read-only mapping:
            // every forked job deserializes straight from the page
            // cache, no per-process heap copy of a multi-MB payload.
            ckpt::CheckpointView loaded = ckpt::readFileMapped(path);
            if (loaded.header.stateHash != state_hash)
                return false; // foreign file under our name: recreate
            out.ckpt = std::move(loaded);
            out.reused = true;
            return true;
        } catch (const std::exception &) {
            return false; // missing (or torn pre-atomic-write relic)
        }
    };

    // Bound the wait on a foreign creator: past the deadline we
    // simulate locally — a duplicate warmup, never a wrong result
    // (warmups are deterministic and publication is atomic).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(2.0 * lockTtlSec_ + 10.0));

    for (;;) {
        if (tryLoad())
            return out;

        bool acquired = false;
        try {
            acquired = fsio::createExclusive(lock, lockContent());
        } catch (const std::exception &e) {
            // Lock dir unwritable: degrade to a local warmup.
            std::fprintf(stderr, "warmup-cache: %s; running warmup "
                                 "locally\n",
                         e.what());
            simulate();
            return out;
        }

        if (acquired) {
            // Double-check: the previous holder may have published
            // between our load attempt and the lock acquisition.
            if (tryLoad()) {
                ::unlink(lock.c_str());
                return out;
            }
            try {
                simulate();
                ckpt::writeFileAtomic(path, *simulated);
            } catch (...) {
                ::unlink(lock.c_str());
                throw;
            }
            ::unlink(lock.c_str());
            return out;
        }

        if (lockIsStale(lock)) {
            // Reap via rename so exactly one reaper wins, then re-run
            // the election.
            const std::string reaped =
                lock + ".reaped." + std::to_string(::getpid());
            if (::rename(lock.c_str(), reaped.c_str()) == 0)
                ::unlink(reaped.c_str());
            continue;
        }

        if (std::chrono::steady_clock::now() > deadline) {
            std::fprintf(stderr,
                         "warmup-cache: gave up waiting on %s; "
                         "running warmup locally\n",
                         lock.c_str());
            simulate();
            return out;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

WarmupCache::Result
WarmupCache::ensure(const JobSpec &spec)
{
    const std::uint64_t key = warmupStateHash(spec);
    std::shared_ptr<Group> group;
    {
        std::lock_guard lock(mapMutex_);
        auto &slot = groups_[key];
        if (!slot)
            slot = std::make_shared<Group>();
        group = slot;
    }

    std::lock_guard glock(group->mutex);
    if (group->done) {
        Result repeat = group->result;
        repeat.executed = false; // only the preparing call reports it
        repeat.reused = false;
        return repeat;
    }
    try {
        group->result = prepare(spec, key);
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "warmup-cache: shared warmup failed (%s); group "
                     "runs unforked\n",
                     e.what());
        group->result = Result{}; // null ckpt: callers run unforked
    }
    group->done = true;
    {
        std::lock_guard lock(mapMutex_);
        executed_ += group->result.executed ? 1 : 0;
        reused_ += group->result.reused ? 1 : 0;
    }
    return group->result;
}

} // namespace dapsim::exp
