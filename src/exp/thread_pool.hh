/**
 * @file
 * Fixed-size worker pool for experiment orchestration.
 *
 * Deliberately minimal: a mutex/condvar-protected FIFO of closures
 * drained by N std::jthread workers. No work stealing, no priorities,
 * no external dependencies — simulation jobs are coarse (seconds
 * each), so a single shared queue is never the bottleneck. Jobs must
 * not touch shared mutable state; see sweep_runner.hh for the
 * determinism contract.
 */

#ifndef DAPSIM_EXP_THREAD_POOL_HH
#define DAPSIM_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dapsim::exp
{

/** Fixed-size FIFO thread pool. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(std::size_t threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runs on some worker in FIFO dispatch order. */
    void submit(Task task);

    /** Block until every submitted task has finished executing. */
    void wait();

    std::size_t threadCount() const { return workers_.size(); }

  private:
    void workerLoop(std::stop_token stop);

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<Task> queue_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
    std::vector<std::jthread> workers_;
};

} // namespace dapsim::exp

#endif // DAPSIM_EXP_THREAD_POOL_HH
