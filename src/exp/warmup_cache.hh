/**
 * @file
 * Fleet-wide warmup-checkpoint cache with create-once semantics.
 *
 * Warmup checkpoints are content-addressed by the warmup state hash
 * (arch x workload-spec x seed x warm-up length — the same group key
 * SweepRunner's warmup-fork mode uses): `warmup-<16 hex>.ckpt` in a
 * shared directory. Any number of processes — expd workers on several
 * machines sharing a filesystem, concurrent dapsim_sweep invocations,
 * fig benches with --store — can point at one directory and each
 * distinct warmup is simulated exactly once fleet-wide:
 *
 *  - in-process: one mutex/condvar gate per group; concurrent ensure()
 *    calls for one group block behind the first.
 *  - cross-process: a `.lock` file created with O_CREAT|O_EXCL elects
 *    the single creator; everyone else polls for the checkpoint to
 *    appear. Checkpoints are published by temp-file + fsync + atomic
 *    rename, so a reader never observes a torn file (this replaces the
 *    racy direct writeFile the sweep runner used to do).
 *  - crash-safety: a lock whose owner pid is dead (same host) or whose
 *    mtime exceeds the TTL is reaped and the election re-run. At worst
 *    a crashed creator costs one duplicate warmup — never a corrupt or
 *    missing checkpoint, because warmups are deterministic and
 *    publication is atomic.
 *
 * With an empty directory the cache degrades to in-process dedup only.
 */

#ifndef DAPSIM_EXP_WARMUP_CACHE_HH
#define DAPSIM_EXP_WARMUP_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exp/job.hh"

namespace dapsim::exp
{

/** Load-or-create cache of shared warmup checkpoints. */
class WarmupCache
{
  public:
    /** @p dir empty = in-process only. @p lock_ttl_sec bounds how long
     *  a dead foreign creator can stall a group. */
    explicit WarmupCache(std::string dir, double lock_ttl_sec = 300.0);

    struct Result
    {
        /** Empty when the warmup itself failed (callers fall back to
         *  running jobs unforked). On-disk checkpoints are served as
         *  memory-mapped views, so fleet-wide warmup-fork restores
         *  deserialize straight out of the page cache instead of
         *  re-reading and copying the bytes per job. */
        ckpt::CheckpointView ckpt;
        /** THIS call simulated the warmup (vs loaded/waited). */
        bool executed = false;
        /** Satisfied from an on-disk checkpoint made elsewhere. */
        bool reused = false;
    };

    /**
     * Return the group checkpoint for @p spec (which must be
     * warmupForkable()), simulating and publishing it if this caller
     * wins the create-once election. Thread-safe; concurrent calls for
     * one group yield one execution.
     */
    Result ensure(const JobSpec &spec);

    /** Warmups simulated by this cache instance. */
    std::uint64_t executed() const { return executed_; }

    /** Warmups satisfied from disk (made by another process/run). */
    std::uint64_t reused() const { return reused_; }

    /** `DIR/warmup-<16 hex>.ckpt` (for tests and tooling). */
    std::string checkpointPath(std::uint64_t state_hash) const;

  private:
    struct Group
    {
        std::mutex mutex;
        bool done = false;
        Result result;
    };

    /** The cross-process load-or-create protocol for one group. */
    Result prepare(const JobSpec &spec, std::uint64_t state_hash);

    /** True when the lock at @p path belongs to a dead owner. */
    bool lockIsStale(const std::string &path) const;

    std::string dir_;
    double lockTtlSec_;
    std::mutex mapMutex_;
    std::map<std::uint64_t, std::shared_ptr<Group>> groups_;
    std::uint64_t executed_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace dapsim::exp

#endif // DAPSIM_EXP_WARMUP_CACHE_HH
