#include "exp/job.hh"

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <stdexcept>

#include "common/log.hh"

namespace dapsim::exp
{

const char *
policyKindName(PolicyKind policy)
{
    switch (policy) {
      case PolicyKind::Baseline:
        return "baseline";
      case PolicyKind::Dap:
        return "dap";
      case PolicyKind::Sbd:
        return "sbd";
      case PolicyKind::SbdWt:
        return "sbd-wt";
      case PolicyKind::Batman:
        return "batman";
      case PolicyKind::Bear:
        return "bear";
    }
    return "unknown";
}

const char *
archName(MsArch arch)
{
    switch (arch) {
      case MsArch::Sectored:
        return "sectored";
      case MsArch::Alloy:
        return "alloy";
      case MsArch::Edram:
        return "edram";
      case MsArch::None:
        return "none";
    }
    return "unknown";
}

PolicyKind
policyKindFromName(const std::string &name)
{
    if (name == "baseline")
        return PolicyKind::Baseline;
    if (name == "dap")
        return PolicyKind::Dap;
    if (name == "sbd")
        return PolicyKind::Sbd;
    if (name == "sbd-wt")
        return PolicyKind::SbdWt;
    if (name == "batman")
        return PolicyKind::Batman;
    if (name == "bear")
        return PolicyKind::Bear;
    fatal("unknown policy: " + name);
}

std::string
JobSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    return mix.name + "/" + policyKindName(policy);
}

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

bool
warmupForkable(const JobSpec &spec)
{
    return !spec.custom && spec.instr != 0 && spec.cfg.numCores != 0 &&
           spec.mix.apps.size() == spec.cfg.numCores;
}

std::uint64_t
warmupStateHash(const JobSpec &spec)
{
    return ckpt::stateHash(spec.cfg, ckpt::describeMix(spec.mix),
                           spec.seedSalt,
                           ckpt::resolveWarmCount(spec.cfg));
}

std::string
groupKey(const JobSpec &spec)
{
    return warmupForkable(spec) ? hashHex(warmupStateHash(spec))
                                : std::string();
}

std::uint64_t
jobContentHash(const JobSpec &spec)
{
    ckpt::Serializer s;
    s.str("dapsim.job.v1");
    if (spec.custom || spec.cfg.numCores == 0) {
        // Custom closures have no canonical form; their id is only as
        // stable as their label. The experiment service refuses them.
        s.boolean(true);
        s.str(spec.displayLabel());
    } else {
        s.boolean(false);
        SystemConfig cfg = spec.cfg;
        cfg.policy = spec.policy;
        const std::uint64_t state =
            ckpt::stateHash(cfg, ckpt::describeMix(spec.mix),
                            spec.seedSalt,
                            ckpt::resolveWarmCount(cfg));
        s.u64(state);
        s.u64(ckpt::fullHash(state, cfg));
        s.u64(spec.instr);
        // Fidelity alters the result without altering the warm state,
        // so the config hashes above cannot see it. Appended only for
        // reduced-fidelity jobs: exact jobs keep their historical ids,
        // while stores never dedup or resume across fidelity levels
        // (tests/test_fidelity.cc proves both).
        const FidelityConfig &fid = spec.cfg.fidelity;
        if (fid.mode != FidelityMode::Exact) {
            s.str("fidelity");
            s.u32(static_cast<std::uint32_t>(fid.mode));
            s.u64(fid.detailInstr);
            s.u64(fid.periodInstr);
            s.u64(fid.detailWarmupInstr);
            s.u64(fid.analyticInstr);
            s.f64(fid.analyticLatencyCycles);
            s.f64(fid.analyticBwDerate);
            s.f64(fid.ewmaAlpha);
        }
    }
    s.u64(spec.knobs.size());
    for (const auto &[k, v] : spec.knobs) { // std::map: sorted order
        s.str(k);
        s.str(v);
    }
    return ckpt::fnv1a(s.buffer());
}

std::string
jobId(const JobSpec &spec)
{
    return hashHex(jobContentHash(spec));
}

JobResult
runJob(const JobSpec &spec, std::size_t index,
       const ckpt::CheckpointView *fork)
{
    JobResult out;
    out.index = index;
    out.jobId = jobId(spec);
    out.label = spec.displayLabel();
    out.archName = archName(spec.cfg.arch);
    out.policyName = policyKindName(spec.policy);
    out.mixName = spec.mix.name;
    out.numCores = spec.cfg.numCores;
    out.instr = spec.instr;
    out.seedSalt = spec.seedSalt;
    out.knobs = spec.knobs;

    try {
        if (spec.custom) {
            out.result = spec.custom();
        } else {
            // Pre-validate what runMix() would fatal() on — fatal()
            // exits the process, which would defeat the sweep's
            // per-job failure isolation.
            if (spec.mix.apps.size() != spec.cfg.numCores)
                throw std::invalid_argument(
                    "mix '" + spec.mix.name + "' is " +
                    std::to_string(spec.mix.apps.size()) +
                    "-wide but the system has " +
                    std::to_string(spec.cfg.numCores) + " cores");
            if (spec.instr == 0)
                throw std::invalid_argument(
                    "job has a zero instruction budget");
            SystemConfig cfg = spec.cfg;
            cfg.policy = spec.policy;
            if (fork != nullptr) {
                out.result = ckpt::runMixFromCheckpoint(
                    cfg, spec.mix, spec.instr, spec.seedSalt, *fork,
                    /*fork=*/true);
            } else {
                out.result = runMix(cfg, spec.mix, spec.instr,
                                    spec.seedSalt);
            }
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    return out;
}

} // namespace dapsim::exp
