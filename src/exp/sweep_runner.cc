#include "exp/sweep_runner.hh"

#include <cinttypes>
#include <fstream>

#include "exp/thread_pool.hh"
#include "obs/chrome_trace.hh"

namespace dapsim::exp
{

std::size_t
SweepRunner::add(JobSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

std::size_t
SweepRunner::addGrid(const SystemConfig &cfg,
                     const std::vector<Mix> &mixes,
                     const std::vector<PolicyKind> &policies,
                     std::uint64_t instr, std::uint64_t seed_salt)
{
    const std::size_t first = specs_.size();
    for (const auto &mix : mixes) {
        for (PolicyKind policy : policies) {
            JobSpec spec;
            spec.cfg = cfg;
            spec.mix = mix;
            spec.policy = policy;
            spec.instr = instr;
            spec.seedSalt = seed_salt;
            add(std::move(spec));
        }
    }
    return first;
}

void
SweepRunner::buildForkGroups()
{
    groups_.clear();
    jobGroup_.assign(specs_.size(), nullptr);
    if (!warmupFork_)
        return;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const JobSpec &spec = specs_[i];
        // Only standard, well-formed jobs fork; everything else keeps
        // the unforked path (and custom jobs have no warm-up to share).
        if (!warmupForkable(spec))
            continue;
        const std::uint64_t key = warmupStateHash(spec);
        ForkGroup &g = groups_[key];
        g.stateHash = key;
        jobGroup_[i] = &g;
    }
}

std::size_t
SweepRunner::workerOrdinal()
{
    std::lock_guard lock(phaseMutex_);
    const auto id = std::this_thread::get_id();
    auto it = workerIds_.find(id);
    if (it != workerIds_.end())
        return it->second;
    const std::size_t ordinal = workerIds_.size();
    workerIds_.emplace(id, ordinal);
    return ordinal;
}

double
SweepRunner::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
SweepRunner::recordSpan(const std::string &name, const std::string &cat,
                        double start_us, double end_us)
{
    if (phaseTracePath_.empty())
        return;
    const std::size_t worker = workerOrdinal();
    std::lock_guard lock(phaseMutex_);
    phaseSpans_.push_back({name, cat, start_us, end_us, worker});
}

void
SweepRunner::writePhaseTrace()
{
    if (phaseTracePath_.empty())
        return;
    std::ofstream os(phaseTracePath_);
    if (!os) {
        std::fprintf(stderr, "sweep: cannot open %s for writing\n",
                     phaseTracePath_.c_str());
        return;
    }
    obs::ChromeTraceWriter trace(os, 0);
    for (const PhaseSpan &s : phaseSpans_)
        trace.span("worker " + std::to_string(s.worker), s.name, s.cat,
                   s.startUs, s.endUs - s.startUs);
    trace.finish();
}

JobResult
SweepRunner::execute(std::size_t i)
{
    ForkGroup *g = jobGroup_[i];
    const double start = phaseTracePath_.empty() ? 0.0 : nowUs();
    JobResult r;
    if (g == nullptr) {
        r = runJob(specs_[i], i);
    } else {
        std::call_once(g->once, [this, g, i] {
            const double wstart =
                phaseTracePath_.empty() ? 0.0 : nowUs();
            const WarmupCache::Result res =
                warmupCache_->ensure(specs_[i]);
            g->ckpt = res.ckpt;
            if (res.executed)
                ++warmupsExecuted_;
            recordSpan("warmup " + hashHex(g->stateHash), "warmup",
                       wstart, nowUs());
        });
        r = runJob(specs_[i], i, g->ckpt ? &g->ckpt : nullptr);
    }
    recordSpan(specs_[i].displayLabel(), r.ok ? "job" : "failed",
               start, nowUs());
    return r;
}

void
SweepRunner::drainReady()
{
    // Caller holds mutex_ (or is single-threaded in serial mode).
    while (nextToDeliver_ < specs_.size() && done_[nextToDeliver_]) {
        JobResult &r = results_[nextToDeliver_];
        // Every sink sees the result as the job produced it; a sink
        // failure is applied afterwards so it cannot hide the row
        // from other sinks, and it fails only this job.
        std::string sink_error;
        for (ResultSink *sink : sinks_) {
            try {
                sink->consume(r);
            } catch (const std::exception &e) {
                sink_error = e.what();
            }
        }
        if (!sink_error.empty() && r.ok) {
            r.ok = false;
            r.error = "result sink failed: " + sink_error;
        }
        ++nextToDeliver_;
    }
}

std::vector<JobResult>
SweepRunner::run(std::size_t threads)
{
    const std::size_t n = specs_.size();
    results_.assign(n, JobResult{});
    done_.assign(n, false);
    nextToDeliver_ = 0;
    completed_ = 0;
    warmupsExecuted_ = 0;
    epoch_ = std::chrono::steady_clock::now();
    phaseSpans_.clear();
    workerIds_.clear();
    buildForkGroups();
    if (warmupFork_)
        warmupCache_ = std::make_unique<WarmupCache>(ckptDir_);

    for (ResultSink *sink : sinks_)
        sink->begin(n);

    auto finish = [this, n](std::size_t i, JobResult r) {
        std::lock_guard lock(mutex_);
        ++completed_;
        if (progress_) {
            std::fprintf(stderr, "[%zu/%zu] %s %s\n", completed_, n,
                         r.label.c_str(),
                         r.ok ? "done" : ("FAILED: " + r.error).c_str());
            std::fflush(stderr);
        }
        results_[i] = std::move(r);
        done_[i] = true;
        drainReady();
    };

    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            finish(i, execute(i));
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([this, i, &finish] {
                finish(i, execute(i));
            });
        pool.wait();
    }

    for (ResultSink *sink : sinks_) {
        try {
            sink->end();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "sweep: sink end() failed: %s\n",
                         e.what());
        }
    }
    writePhaseTrace();

    return std::move(results_);
}

} // namespace dapsim::exp
