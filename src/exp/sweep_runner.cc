#include "exp/sweep_runner.hh"

#include "exp/thread_pool.hh"

namespace dapsim::exp
{

std::size_t
SweepRunner::add(JobSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

std::size_t
SweepRunner::addGrid(const SystemConfig &cfg,
                     const std::vector<Mix> &mixes,
                     const std::vector<PolicyKind> &policies,
                     std::uint64_t instr, std::uint64_t seed_salt)
{
    const std::size_t first = specs_.size();
    for (const auto &mix : mixes) {
        for (PolicyKind policy : policies) {
            JobSpec spec;
            spec.cfg = cfg;
            spec.mix = mix;
            spec.policy = policy;
            spec.instr = instr;
            spec.seedSalt = seed_salt;
            add(std::move(spec));
        }
    }
    return first;
}

void
SweepRunner::drainReady()
{
    // Caller holds mutex_ (or is single-threaded in serial mode).
    while (nextToDeliver_ < specs_.size() && done_[nextToDeliver_]) {
        for (ResultSink *sink : sinks_)
            sink->consume(results_[nextToDeliver_]);
        ++nextToDeliver_;
    }
}

std::vector<JobResult>
SweepRunner::run(std::size_t threads)
{
    const std::size_t n = specs_.size();
    results_.assign(n, JobResult{});
    done_.assign(n, false);
    nextToDeliver_ = 0;
    completed_ = 0;

    for (ResultSink *sink : sinks_)
        sink->begin(n);

    auto finish = [this, n](std::size_t i, JobResult r) {
        std::lock_guard lock(mutex_);
        ++completed_;
        if (progress_) {
            std::fprintf(stderr, "[%zu/%zu] %s %s\n", completed_, n,
                         r.label.c_str(),
                         r.ok ? "done" : ("FAILED: " + r.error).c_str());
            std::fflush(stderr);
        }
        results_[i] = std::move(r);
        done_[i] = true;
        drainReady();
    };

    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            finish(i, runJob(specs_[i], i));
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([this, i, &finish] {
                finish(i, runJob(specs_[i], i));
            });
        pool.wait();
    }

    for (ResultSink *sink : sinks_)
        sink->end();

    return std::move(results_);
}

} // namespace dapsim::exp
