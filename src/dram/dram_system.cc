#include "dram/dram_system.hh"

namespace dapsim
{

DramSystem::DramSystem(EventQueue &eq, DramConfig cfg)
    : eq_(eq), cfg_(std::move(cfg))
{
    cfg_.validate();
    chDiv_ = FastDiv::of(cfg_.channels);
    rowBlkDiv_ = FastDiv::of(static_cast<std::uint64_t>(cfg_.channels) *
                             cfg_.blocksPerRow());
    colDiv_ = FastDiv::of(cfg_.blocksPerRow());
    bankDiv_ = FastDiv::of(static_cast<std::uint64_t>(
                               cfg_.ranksPerChannel) *
                           cfg_.banksPerRank);
    channels_.reserve(cfg_.channels);
    for (std::uint32_t i = 0; i < cfg_.channels; ++i)
        channels_.push_back(std::make_unique<Channel>(eq_, cfg_, i));
}

DramSystem::Decoded
DramSystem::decode(Addr addr) const
{
    // Block-interleaved channels, then column-within-row, then bank,
    // then row: streams get both channel parallelism and row hits. The
    // channel index is permuted by a hash of the global row so that
    // row-aligned structures (sector frames, metadata blocks) spread
    // over all channels instead of aliasing onto one.
    std::uint64_t b = blockNumber(addr);
    Decoded d{};
    const std::uint64_t global_row = rowBlkDiv_.div(b);
    d.channel = static_cast<std::uint32_t>(
        chDiv_.mod(b + indexHash(global_row)));
    b = chDiv_.div(b);
    // Column index within row does not affect timing state.
    b = colDiv_.div(b);
    d.bank = static_cast<std::uint32_t>(bankDiv_.mod(b));
    d.row = bankDiv_.div(b);
    return d;
}

void
DramSystem::access(Addr addr, bool is_write,
                   EventQueue::Callback on_complete,
                   std::uint32_t extra_clocks, bool low_priority)
{
    const Decoded d = decode(addr);
    ChannelRequest req;
    req.row = d.row;
    req.bank = d.bank;
    req.isWrite = is_write;
    req.extraDataClocks = extra_clocks;
    req.lowPriority = low_priority;
    req.onComplete = std::move(on_complete);
    channels_[d.channel]->enqueue(std::move(req));
}

std::uint64_t
DramSystem::casOps() const
{
    return casReads() + casWrites();
}

std::uint64_t
DramSystem::casReads() const
{
    std::uint64_t n = ffReads_;
    for (const auto &c : channels_)
        n += c->casReads.value();
    return n;
}

std::uint64_t
DramSystem::casWrites() const
{
    std::uint64_t n = ffWrites_;
    for (const auto &c : channels_)
        n += c->casWrites.value();
    return n;
}

std::uint64_t
DramSystem::rowHits() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels_)
        n += c->rowHits.value();
    return n;
}

std::uint64_t
DramSystem::rowMisses() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels_)
        n += c->rowMisses.value();
    return n;
}

double
DramSystem::meanReadLatency() const
{
    double sum = 0.0;
    std::uint64_t cnt = 0;
    for (const auto &c : channels_) {
        sum += c->readLatency.sum();
        cnt += c->readLatency.count();
    }
    return cnt ? sum / static_cast<double>(cnt) : 0.0;
}

std::size_t
DramSystem::totalReadQueue() const
{
    std::size_t n = 0;
    for (const auto &c : channels_)
        n += c->readQueueLen();
    return n;
}

std::size_t
DramSystem::totalWriteQueue() const
{
    std::size_t n = 0;
    for (const auto &c : channels_)
        n += c->writeQueueLen();
    return n;
}

double
DramSystem::busUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    Tick busy = 0;
    for (const auto &c : channels_)
        busy += c->busBusyTicks();
    return static_cast<double>(busy) /
           (static_cast<double>(elapsed) * cfg_.channels);
}

void
DramSystem::setBusTrace(BusTraceHook *hook, const std::string &source)
{
    for (auto &c : channels_)
        c->setBusTrace(hook, source);
}

void
DramSystem::save(ckpt::Serializer &s) const
{
    s.u64(channels_.size());
    for (const auto &c : channels_)
        c->save(s);
}

void
DramSystem::restore(ckpt::Deserializer &d)
{
    if (d.u64() != channels_.size())
        throw ckpt::CkptError("ckpt: DRAM channel count mismatch");
    for (auto &c : channels_)
        c->restore(d);
}

} // namespace dapsim
