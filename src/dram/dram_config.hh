/**
 * @file
 * Timing/geometry configuration for a DRAM-like bandwidth source.
 *
 * The same model backs DDR4/LPDDR4 main memory, the die-stacked HBM
 * array of the DRAM caches, and (with separate instances for reads and
 * writes) the eDRAM cache channels — matching the device parameters the
 * paper lists in Section V.
 */

#ifndef DAPSIM_DRAM_DRAM_CONFIG_HH
#define DAPSIM_DRAM_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dapsim
{

/** Geometry + timing of one DRAM subsystem (all channels identical). */
struct DramConfig
{
    std::string name = "dram";

    std::uint32_t channels = 2;
    std::uint32_t ranksPerChannel = 2;
    std::uint32_t banksPerRank = 8;
    std::uint64_t rowBufferBytes = 2 * kKiB;

    /** Command clock in MHz (data rate is double this when ddr). */
    std::uint64_t freqMHz = 1200;
    bool ddr = true;
    std::uint32_t channelWidthBits = 64;
    std::uint32_t burstLength = 8;

    /** Core timing parameters in DRAM command-clock cycles. */
    std::uint32_t tCAS = 15;
    std::uint32_t tRCD = 15;
    std::uint32_t tRP = 15;
    std::uint32_t tRAS = 39;

    /** Extra per-access board/floorplan I/O delay, in DRAM cycles. */
    std::uint32_t ioDelayCycles = 10;

    /**
     * Refresh interval and cycle time, in DRAM cycles; tREFI = 0
     * disables refresh (the paper's evaluation charges no maintenance
     * overhead to the memory-side caches, so presets default to
     * disabled — enable for refresh-sensitivity studies).
     */
    std::uint32_t tREFI = 0;
    std::uint32_t tRFC = 0;

    /** Bus penalty when the data direction flips, in DRAM cycles. */
    std::uint32_t turnaroundCycles = 4;

    /** Write-batching watermarks (per channel). */
    std::uint32_t writeQueueHigh = 48;
    std::uint32_t writeQueueLow = 12;

    /** Bounded FR-FCFS scan depth. */
    std::uint32_t schedulerScanDepth = 32;

    /** Per-channel request-queue capacity to pre-reserve (queues stay
     *  unbounded; this only sizes the rings so the steady state never
     *  reallocates). */
    std::uint32_t requestQueueReserve = 64;

    /** Command-clock period in integer picoseconds. */
    Tick periodPs() const { return periodPsFromMHz(freqMHz); }

    /** Data-bus occupancy of one default burst, in ticks. A burst of
     *  length BL takes BL/2 command clocks on a DDR bus and BL clocks
     *  on an SDR bus. Inline: called per FR-FCFS scan step. */
    Tick
    burstTicks() const
    {
        const std::uint32_t clocks = ddr ? (burstLength + 1) / 2 : burstLength;
        return static_cast<Tick>(clocks) * periodPs();
    }

    /** Bytes moved by one default burst. */
    std::uint64_t burstBytes() const;

    /** Peak bandwidth over all channels, in GB/s. */
    double peakGBps() const;

    /** Peak bandwidth in 64-byte accesses per CPU cycle (for DAP). */
    double peakAccessesPerCpuCycle() const;

    /** Blocks per row buffer. */
    std::uint64_t blocksPerRow() const { return rowBufferBytes / kBlockBytes; }

    /** Sanity-check the configuration; fatal() on nonsense. */
    void validate() const;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_DRAM_CONFIG_HH
