/**
 * @file
 * One DRAM channel: request queues, FR-FCFS-style scheduler, data bus.
 *
 * The scheduler ranks requests in a bounded scan window by the tick at
 * which their data could start moving (row hits on free banks first),
 * lets bank preparations proceed in parallel on independent banks, and
 * places data transfers into gaps of a bus-reservation timeline.
 * Writes are batched between drain watermarks to limit turnarounds;
 * low-priority reads (prefetch fetches) queue behind demand reads.
 */

#ifndef DAPSIM_DRAM_CHANNEL_HH
#define DAPSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/event_queue.hh"
#include "common/ring_deque.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/dram_config.hh"

namespace dapsim
{

/** A single 64B column access presented to a channel. */
struct ChannelRequest
{
    std::uint64_t row = 0;
    std::uint32_t bank = 0;
    bool isWrite = false;
    /** Extra data-bus command clocks (Alloy TAD uses burst-6 = +1). */
    std::uint32_t extraDataClocks = 0;
    /** Low-priority reads (footprint prefetch fetches) queue behind
     *  demand reads so fill bursts cannot crowd the critical path. */
    bool lowPriority = false;
    /** Invoked when the access's data transfer (plus I/O) completes.
     *  Move-only (inline storage, see common/inline_callback.hh), so
     *  ChannelRequest itself is move-only. */
    EventQueue::Callback onComplete;
    Tick enqueuedAt = 0;
};

/**
 * Observability hook receiving one span per data-bus occupancy (see
 * src/obs/ ChromeTraceWriter). Null hooks cost one branch per CAS.
 */
struct BusTraceHook
{
    virtual ~BusTraceHook() = default;

    /**
     * @param source  stable name of the DRAM subsystem ("mainMemory",
     *                "msArray", ...)
     * @param channel channel index within the subsystem
     * @param start   tick the data bus becomes busy
     * @param end     tick the occupancy (burst + turnaround) ends
     * @param isWrite write vs read CAS
     * @param rowHit  row-buffer hit vs miss
     */
    virtual void onBusSpan(const std::string &source,
                           std::uint32_t channel, Tick start, Tick end,
                           bool isWrite, bool rowHit) = 0;
};

/** One channel with its banks, queues and scheduler. */
class Channel
{
  public:
    Channel(EventQueue &eq, const DramConfig &cfg, std::uint32_t index);

    /** Enqueue an access; queues are unbounded (MLP is core-bounded).
     *  O(1): demand and low-priority reads live in separate FIFOs, so
     *  a demand read never scans past queued prefetch fetches. */
    void enqueue(ChannelRequest req);

    /** Attach the bus observability hook; @p source names this DRAM
     *  subsystem in emitted spans. Null detaches. */
    void
    setBusTrace(BusTraceHook *hook, std::string source)
    {
        busTrace_ = hook;
        traceSource_ = std::move(source);
    }

    std::size_t
    readQueueLen() const
    {
        return readDemandQ_.size() + readLowQ_.size();
    }
    std::size_t writeQueueLen() const { return writeQ_.size(); }

    /** Ticks the data bus has been occupied (for utilization stats). */
    Tick busBusyTicks() const { return busBusy_; }

    /**
     * Checkpoint bank/bus/scheduler state (see src/ckpt/). Requests in
     * flight hold completion closures that cannot be serialized, so
     * save() requires empty queues and no pending scheduler kick — the
     * quiescent state every channel is in before the timed run starts.
     */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    // Aggregate statistics.
    Counter kicks;
    Counter kicksEmpty;
    Counter kicksWait;
    Counter kicksIssue;
    Counter casReads;
    Counter casWrites;
    Counter rowHits;
    Counter rowMisses;
    Counter turnarounds;
    Counter refreshes;
    Average readQueueDelay;   ///< ticks from enqueue to data start (reads)
    Average readLatency;      ///< ticks from enqueue to completion (reads)

  private:
    /** Try to issue requests; reschedules itself as needed. */
    void kick();

    /** Arrange for kick() to run at tick @p when (coalesced). */
    void scheduleKick(Tick when);

    /** Pre-bound kick event body: drops stale (superseded) wakeups. */
    void kickTick();

    /** The read queue viewed as one sequence: demands, then lows —
     *  the FR-FCFS scan order (and tie-break order) of a combined
     *  priority-sorted queue. */
    const ChannelRequest &
    readAt(std::size_t i) const
    {
        return i < readDemandQ_.size()
                   ? readDemandQ_[i]
                   : readLowQ_[i - readDemandQ_.size()];
    }

    /** Pick the best candidate (earliest data) among the first
     *  @p len entries of @p at (indexable view). */
    template <class At>
    std::size_t pickAt(std::size_t len, At &&at) const;

    /**
     * Find the earliest bus slot of length @p occ starting at or after
     * @p ready. With @p reserve the slot is claimed.
     */
    Tick placeBus(Tick ready, Tick occ, bool reserve);

    /** Issue one request from @p q at position @p idx. */
    void issue(RingDeque<ChannelRequest> &q, std::size_t idx);

    /** Longest tolerated gap between now and a candidate's data start
     *  before the scheduler goes back to sleep. */
    Tick maxAhead() const;

    /** Periodic all-bank refresh (active when cfg.tREFI > 0). */
    void refreshTick();

    EventQueue &eq_;
    const DramConfig &cfg_;
    [[maybe_unused]] std::uint32_t index_;

    RingDeque<ChannelRequest> readDemandQ_;
    RingDeque<ChannelRequest> readLowQ_;
    RingDeque<ChannelRequest> writeQ_;
    std::vector<Bank> banks_;

    /** Future bus reservations [start, end), sorted by start tick. */
    std::vector<std::pair<Tick, Tick>> busResv_;

    bool lastWasWrite_ = false;
    bool draining_ = false;
    bool kickPending_ = false;
    Tick nextKickAt_ = 0;
    Tick busBusy_ = 0;

    BusTraceHook *busTrace_ = nullptr;
    std::string traceSource_;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_CHANNEL_HH
