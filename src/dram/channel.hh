/**
 * @file
 * One DRAM channel: request queues, FR-FCFS-style scheduler, data bus.
 *
 * The scheduler ranks requests in a bounded scan window by the tick at
 * which their data could start moving (row hits on free banks first),
 * lets bank preparations proceed in parallel on independent banks, and
 * places data transfers into gaps of a bus-reservation timeline.
 * Writes are batched between drain watermarks to limit turnarounds;
 * low-priority reads (prefetch fetches) queue behind demand reads.
 */

#ifndef DAPSIM_DRAM_CHANNEL_HH
#define DAPSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/event_queue.hh"
#include "common/ring_deque.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/dram_config.hh"

namespace dapsim
{

/** A single 64B column access presented to a channel. */
struct ChannelRequest
{
    std::uint64_t row = 0;
    std::uint32_t bank = 0;
    bool isWrite = false;
    /** Extra data-bus command clocks (Alloy TAD uses burst-6 = +1). */
    std::uint32_t extraDataClocks = 0;
    /** Low-priority reads (footprint prefetch fetches) queue behind
     *  demand reads so fill bursts cannot crowd the critical path. */
    bool lowPriority = false;
    /** Invoked when the access's data transfer (plus I/O) completes.
     *  Move-only (inline storage, see common/inline_callback.hh), so
     *  ChannelRequest itself is move-only. */
    EventQueue::Callback onComplete;
};

/**
 * Observability hook receiving one span per data-bus occupancy (see
 * src/obs/ ChromeTraceWriter). Null hooks cost one branch per CAS.
 */
struct BusTraceHook
{
    virtual ~BusTraceHook() = default;

    /**
     * @param source  stable name of the DRAM subsystem ("mainMemory",
     *                "msArray", ...)
     * @param channel channel index within the subsystem
     * @param start   tick the data bus becomes busy
     * @param end     tick the occupancy (burst + turnaround) ends
     * @param isWrite write vs read CAS
     * @param rowHit  row-buffer hit vs miss
     */
    virtual void onBusSpan(const std::string &source,
                           std::uint32_t channel, Tick start, Tick end,
                           bool isWrite, bool rowHit) = 0;
};

/**
 * Channel-level constants resolved from DramConfig at construction:
 * everything issue()/kick() used to re-derive per access (period
 * multiplications, the look-ahead window) lives on one read-only
 * cache line next to the BankTiming line.
 */
struct alignas(64) ChannelTiming
{
    Tick period = 0;     ///< command-clock period (ps)
    Tick turnaround = 0; ///< direction-flip bus occupancy
    Tick ioDelay = 0;    ///< post-burst board/floorplan I/O delay
    Tick maxAhead = 0;   ///< scheduler look-ahead window (see maxAhead())
    Tick refi = 0;       ///< refresh interval (0 = disabled)

    static ChannelTiming from(const DramConfig &cfg);
};

/** One channel with its banks, queues and scheduler. */
class Channel
{
  public:
    Channel(EventQueue &eq, const DramConfig &cfg, std::uint32_t index);

    /** Enqueue an access; queues are unbounded (MLP is core-bounded).
     *  O(1): demand and low-priority reads live in separate FIFOs, so
     *  a demand read never scans past queued prefetch fetches. */
    void enqueue(ChannelRequest req);

    /** Attach the bus observability hook; @p source names this DRAM
     *  subsystem in emitted spans. Null detaches. */
    void
    setBusTrace(BusTraceHook *hook, std::string source)
    {
        busTrace_ = hook;
        traceSource_ = std::move(source);
    }

    std::size_t
    readQueueLen() const
    {
        return readDemandQ_.size() + readLowQ_.size();
    }
    std::size_t writeQueueLen() const { return writeQ_.size(); }

    /** Ticks the data bus has been occupied (for utilization stats). */
    Tick busBusyTicks() const { return busBusy_; }

    /**
     * Checkpoint bank/bus/scheduler state (see src/ckpt/). Requests in
     * flight hold completion closures that cannot be serialized, so
     * save() requires empty queues and no pending scheduler kick — the
     * quiescent state every channel is in before the timed run starts.
     */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    // Aggregate statistics.
    Counter kicks;
    Counter kicksEmpty;
    Counter kicksWait;
    Counter kicksIssue;
    Counter casReads;
    Counter casWrites;
    Counter rowHits;
    Counter rowMisses;
    Counter turnarounds;
    Counter refreshes;
    Average readQueueDelay;   ///< ticks from enqueue to data start (reads)
    Average readLatency;      ///< ticks from enqueue to completion (reads)

  private:
    /**
     * Queued request with the completion callback parked elsewhere:
     * the FR-FCFS scan and positional erases stream over 32-byte
     * PODs instead of striding across (and move-constructing)
     * callback-carrying ~112-byte ChannelRequests. @c cb indexes
     * cbSlots_.
     */
    struct HotReq
    {
        std::uint64_t row;
        Tick enqueuedAt;
        std::uint32_t bank;
        std::uint32_t extraDataClocks;
        std::uint32_t cb;
    };

    /** Park @p cb in a free slot; returns its index. */
    std::uint32_t putCb(EventQueue::Callback &&cb);

    /** Move the callback out of slot @p idx and recycle the slot. */
    EventQueue::Callback takeCb(std::uint32_t idx);

    /** Try to issue requests; reschedules itself as needed. */
    void kick();

    /** Arrange for kick() to run at tick @p when (coalesced). */
    void scheduleKick(Tick when);

    /** Pre-bound kick event body: drops stale (superseded) wakeups. */
    void kickTick();

    /** Winning candidate of one FR-FCFS scan: queue position plus the
     *  bank probe result, so kick() need not re-peek the winner. */
    struct Pick
    {
        std::size_t idx = 0;
        Tick dataReadyAt = 0;
    };

    /** Pick the best candidate (earliest data) among the first
     *  @p depth entries of the concatenated @p spans (contiguous
     *  HotReq runs in scan order). Total span length must be > 0. */
    Pick pickSpans(const std::pair<const HotReq *, std::size_t> *spans,
                   std::size_t nspans, std::size_t depth) const;

    /**
     * Find the earliest bus slot of length @p occ starting at or after
     * @p ready. With @p reserve the slot is claimed.
     */
    Tick placeBus(Tick ready, Tick occ, bool reserve);

    /** Issue one request from @p q at position @p idx. */
    void issue(RingDeque<HotReq> &q, std::size_t idx, bool isWrite);

    /** Longest tolerated gap between now and a candidate's data start
     *  before the scheduler goes back to sleep: a full row-conflict
     *  preparation plus a few bursts, precomputed in timing_. */
    Tick maxAhead() const { return timing_.maxAhead; }

    /** Periodic all-bank refresh (active when cfg.tREFI > 0). */
    void refreshTick();

    EventQueue &eq_;
    const DramConfig &cfg_;
    /** Hot read-only timing constants (two dedicated cache lines). */
    BankTiming bankTiming_;
    ChannelTiming timing_;
    [[maybe_unused]] std::uint32_t index_;

    RingDeque<HotReq> readDemandQ_;
    RingDeque<HotReq> readLowQ_;
    RingDeque<HotReq> writeQ_;
    /** Parked completion callbacks + freelist (see HotReq::cb). */
    std::vector<EventQueue::Callback> cbSlots_;
    std::vector<std::uint32_t> cbFree_;
    std::vector<Bank> banks_;

    /** Future bus reservations [start, end), sorted by start tick. */
    std::vector<std::pair<Tick, Tick>> busResv_;

    bool lastWasWrite_ = false;
    bool draining_ = false;
    bool kickPending_ = false;
    Tick nextKickAt_ = 0;
    Tick busBusy_ = 0;

    BusTraceHook *busTrace_ = nullptr;
    std::string traceSource_;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_CHANNEL_HH
