#include "dram/dram_config.hh"

#include "common/log.hh"

namespace dapsim
{

std::uint64_t
DramConfig::burstBytes() const
{
    return static_cast<std::uint64_t>(channelWidthBits) / 8 * burstLength;
}

double
DramConfig::peakGBps() const
{
    const double transfersPerSec =
        static_cast<double>(freqMHz) * 1e6 * (ddr ? 2.0 : 1.0);
    const double bytesPerSec =
        transfersPerSec * (channelWidthBits / 8.0) * channels;
    return bytesPerSec / 1e9;
}

double
DramConfig::peakAccessesPerCpuCycle() const
{
    const double bytesPerSec = peakGBps() * 1e9;
    const double accPerSec = bytesPerSec / kBlockBytes;
    const double cpuHz = static_cast<double>(kPsPerSecond) / kCpuPeriodPs;
    return accPerSec / cpuHz;
}

void
DramConfig::validate() const
{
    if (channels == 0 || ranksPerChannel == 0 || banksPerRank == 0)
        fatal(name + ": zero geometry");
    if (!isPowerOfTwo(rowBufferBytes) || rowBufferBytes < kBlockBytes)
        fatal(name + ": bad row buffer size");
    if (burstBytes() != kBlockBytes)
        fatal(name + ": one burst must transfer one 64B block");
    if (writeQueueLow >= writeQueueHigh)
        fatal(name + ": write drain watermarks inverted");
}

} // namespace dapsim
