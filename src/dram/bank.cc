#include "dram/bank.hh"

#include <algorithm>
#include <type_traits>

#include "dram/dram_config.hh"

namespace dapsim
{

// Three u64 state words: ~2.6 banks per cache line in a channel's
// bank array, and memcpy-safe for checkpoints.
static_assert(std::is_trivially_copyable_v<Bank>);
static_assert(sizeof(Bank) == 3 * sizeof(std::uint64_t));

BankTiming
BankTiming::from(const DramConfig &cfg)
{
    const Tick period = cfg.periodPs();
    BankTiming t;
    t.tCas = cfg.tCAS * period;
    t.tRcd = cfg.tRCD * period;
    t.tRp = cfg.tRP * period;
    t.tRas = cfg.tRAS * period;
    t.tRfc = cfg.tRFC * period;
    t.burst = cfg.burstTicks();
    return t;
}

Bank::Access
Bank::peek(const BankTiming &t, Tick at, std::uint64_t row) const
{
    const Tick start = std::max(at, readyAt_);
    Access acc{};
    acc.rowHit = (openRow_ == row);
    acc.rowEmpty = (openRow_ == kNoRow);

    if (acc.rowHit) {
        acc.dataReadyAt = start + t.tCas;
    } else if (acc.rowEmpty) {
        acc.dataReadyAt = start + t.tRcd + t.tCas;
    } else {
        // Same arithmetic as reserve()'s conflict arm: preAt + tRP is
        // the activate tick, data follows tRCD + tCAS later.
        const Tick preAt = std::max(start, activatedAt_ + t.tRas);
        acc.dataReadyAt = preAt + t.tRp + t.tRcd + t.tCas;
    }
    return acc;
}

Bank::Probe
Bank::probe(const BankTiming &t, Tick at) const
{
    const Tick start = std::max(at, readyAt_);
    Probe p;
    p.openRow = openRow_;
    if (openRow_ == kNoRow) {
        // Page-empty: every row pays activate + column access.
        p.hitAt = p.otherAt = start + t.tRcd + t.tCas;
    } else {
        p.hitAt = start + t.tCas;
        const Tick preAt = std::max(start, activatedAt_ + t.tRas);
        p.otherAt = preAt + t.tRp + t.tRcd + t.tCas;
    }
    return p;
}

Bank::Access
Bank::reserve(const BankTiming &t, Tick at, std::uint64_t row)
{
    Tick start = std::max(at, readyAt_);
    Access acc{};
    acc.rowHit = (openRow_ == row);
    acc.rowEmpty = (openRow_ == kNoRow);

    if (acc.rowHit) {
        acc.dataReadyAt = start + t.tCas;
    } else if (acc.rowEmpty) {
        activatedAt_ = start;
        acc.dataReadyAt = start + t.tRcd + t.tCas;
    } else {
        // Row conflict: precharge (respecting tRAS), activate, read.
        const Tick preAt = std::max(start, activatedAt_ + t.tRas);
        activatedAt_ = preAt + t.tRp;
        acc.dataReadyAt = activatedAt_ + t.tRcd + t.tCas;
    }

    openRow_ = row;
    // Column commands pipeline at tCCD (one burst) on an open row: the
    // bank accepts the next CAS one burst after this one's command
    // slot, while this access's data arrives tCAS later.
    const Tick cmd_at = acc.dataReadyAt - t.tCas;
    readyAt_ = cmd_at + t.burst;
    return acc;
}

void
Bank::refresh(const BankTiming &t, Tick now)
{
    openRow_ = kNoRow;
    const Tick start = std::max(now, readyAt_);
    readyAt_ = start + t.tRfc;
}

Bank::Access
Bank::reserve(const DramConfig &cfg, Tick at, std::uint64_t row)
{
    return reserve(BankTiming::from(cfg), at, row);
}

Bank::Access
Bank::peek(const DramConfig &cfg, Tick at, std::uint64_t row) const
{
    return peek(BankTiming::from(cfg), at, row);
}

void
Bank::refresh(const DramConfig &cfg, Tick now)
{
    refresh(BankTiming::from(cfg), now);
}

} // namespace dapsim
