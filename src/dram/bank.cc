#include "dram/bank.hh"

#include <algorithm>

#include "dram/dram_config.hh"

namespace dapsim
{

Bank::Access
Bank::peek(const DramConfig &cfg, Tick at, std::uint64_t row) const
{
    Bank copy = *this;
    return copy.reserve(cfg, at, row);
}

Bank::Access
Bank::reserve(const DramConfig &cfg, Tick at, std::uint64_t row)
{
    const Tick period = cfg.periodPs();
    const Tick tCas = cfg.tCAS * period;
    const Tick tRcd = cfg.tRCD * period;
    const Tick tRp = cfg.tRP * period;
    const Tick tRas = cfg.tRAS * period;

    Tick start = std::max(at, readyAt_);
    Access acc{};
    acc.rowHit = (openRow_ == row);
    acc.rowEmpty = (openRow_ == kNoRow);

    if (acc.rowHit) {
        acc.dataReadyAt = start + tCas;
    } else if (acc.rowEmpty) {
        activatedAt_ = start;
        acc.dataReadyAt = start + tRcd + tCas;
    } else {
        // Row conflict: precharge (respecting tRAS), activate, read.
        const Tick preAt = std::max(start, activatedAt_ + tRas);
        activatedAt_ = preAt + tRp;
        acc.dataReadyAt = activatedAt_ + tRcd + tCas;
    }

    openRow_ = row;
    // Column commands pipeline at tCCD (one burst) on an open row: the
    // bank accepts the next CAS one burst after this one's command
    // slot, while this access's data arrives tCAS later.
    const Tick cmd_at = acc.dataReadyAt - tCas;
    readyAt_ = cmd_at + cfg.burstTicks();
    return acc;
}

void
Bank::refresh(const DramConfig &cfg, Tick now)
{
    openRow_ = kNoRow;
    const Tick start = std::max(now, readyAt_);
    readyAt_ = start + cfg.tRFC * cfg.periodPs();
}

} // namespace dapsim
