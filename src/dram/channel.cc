#include "dram/channel.hh"

#include <algorithm>

namespace dapsim
{

Channel::Channel(EventQueue &eq, const DramConfig &cfg, std::uint32_t index)
    : eq_(eq), cfg_(cfg), index_(index),
      banks_(cfg.ranksPerChannel * cfg.banksPerRank)
{
    readDemandQ_.reserve(cfg_.requestQueueReserve);
    readLowQ_.reserve(cfg_.requestQueueReserve);
    writeQ_.reserve(std::max<std::uint32_t>(cfg_.requestQueueReserve,
                                            cfg_.writeQueueHigh + 8));
    if (cfg_.tREFI > 0) {
        // Stagger channels so refreshes don't align system-wide.
        const Tick first = (index + 1) *
                           (cfg_.tREFI * cfg_.periodPs()) /
                           (cfg_.channels + 1);
        eq_.schedule(first, EventQueue::Callback::of<&Channel::refreshTick>(this));
    }
}

void
Channel::refreshTick()
{
    refreshes.inc();
    for (Bank &b : banks_)
        b.refresh(cfg_, eq_.now());
    eq_.scheduleAfter(cfg_.tREFI * cfg_.periodPs(),
                      EventQueue::Callback::of<&Channel::refreshTick>(this));
}

void
Channel::enqueue(ChannelRequest req)
{
    req.enqueuedAt = eq_.now();
    if (req.isWrite)
        writeQ_.push_back(std::move(req));
    else if (req.lowPriority)
        readLowQ_.push_back(std::move(req));
    else
        readDemandQ_.push_back(std::move(req));
    scheduleKick(eq_.now());
}

void
Channel::scheduleKick(Tick when)
{
    if (when < eq_.now())
        when = eq_.now();
    // Collapse redundant wakeups: only one live kick is kept pending.
    if (kickPending_ && when >= nextKickAt_)
        return;
    kickPending_ = true;
    nextKickAt_ = when;
    eq_.schedule(when, EventQueue::Callback::of<&Channel::kickTick>(this));
}

void
Channel::kickTick()
{
    // A kick superseded by an earlier one (or already consumed) is
    // stale and must die here, or the event population grows without
    // bound while a queue is backlogged. The event fires exactly at
    // its scheduled tick, so now() != nextKickAt_ identifies it.
    if (!kickPending_ || eq_.now() != nextKickAt_)
        return;
    kickPending_ = false;
    kick();
}

template <class At>
std::size_t
Channel::pickAt(std::size_t len, At &&at) const
{
    // FR-FCFS flavour: within the scan window, choose the request
    // whose data could start earliest (row hits on ready banks win;
    // requests to backed-up banks lose). Ties resolve to the oldest,
    // which bounds starvation together with the scan depth.
    const std::size_t depth =
        std::min<std::size_t>(len, cfg_.schedulerScanDepth);
    std::size_t best = 0;
    Tick best_ready = ~Tick(0);
    for (std::size_t i = 0; i < depth; ++i) {
        const ChannelRequest &r = at(i);
        const Bank::Access a =
            banks_[r.bank].peek(cfg_, eq_.now(), r.row);
        if (a.dataReadyAt < best_ready) {
            best_ready = a.dataReadyAt;
            best = i;
        }
    }
    return best;
}

Tick
Channel::placeBus(Tick ready, Tick occ, bool reserve)
{
    // Prune reservations that ended in the past.
    const Tick now = eq_.now();
    std::erase_if(busResv_,
                  [now](const auto &r) { return r.second <= now; });

    Tick start = ready;
    std::size_t pos = 0;
    for (; pos < busResv_.size(); ++pos) {
        const auto &[s, e] = busResv_[pos];
        if (start + occ <= s)
            break; // fits in the gap before this reservation
        if (start < e)
            start = e; // overlap: push past it
    }
    if (reserve) {
        busResv_.insert(busResv_.begin() +
                            static_cast<std::ptrdiff_t>(pos),
                        {start, start + occ});
    }
    return start;
}

Tick
Channel::maxAhead() const
{
    // Tolerate a full row-conflict preparation plus a few bursts so
    // bank preparations on independent banks can proceed in parallel.
    return (cfg_.tRP + cfg_.tRCD + cfg_.tCAS) * cfg_.periodPs() +
           4 * cfg_.burstTicks();
}

void
Channel::issue(RingDeque<ChannelRequest> &q, std::size_t idx)
{
    ChannelRequest req = std::move(q[idx]);
    q.erase(idx);

    Bank &bank = banks_[req.bank];
    const Bank::Access acc = bank.reserve(cfg_, eq_.now(), req.row);

    const Tick period = cfg_.periodPs();
    Tick occupancy = cfg_.burstTicks() + req.extraDataClocks * period;
    if (req.isWrite != lastWasWrite_) {
        // Direction flip: charge the turnaround as bus occupancy.
        occupancy += cfg_.turnaroundCycles * period;
        turnarounds.inc();
    }
    lastWasWrite_ = req.isWrite;

    const Tick dataStart = placeBus(acc.dataReadyAt, occupancy, true);
    const Tick dataEnd = dataStart + occupancy;
    busBusy_ += occupancy;

    if (acc.rowHit)
        rowHits.inc();
    else
        rowMisses.inc();

    if (busTrace_)
        busTrace_->onBusSpan(traceSource_, index_, dataStart, dataEnd,
                             req.isWrite, acc.rowHit);

    const Tick ioDelay = cfg_.ioDelayCycles * period;
    if (req.isWrite) {
        casWrites.inc();
    } else {
        casReads.inc();
        readQueueDelay.sample(static_cast<double>(dataStart -
                                                  req.enqueuedAt));
        readLatency.sample(static_cast<double>(dataEnd + ioDelay -
                                               req.enqueuedAt));
    }

    if (req.onComplete) {
        const Tick doneAt = req.isWrite ? dataEnd : dataEnd + ioDelay;
        eq_.schedule(doneAt, std::move(req.onComplete));
    }
}

void
Channel::kick()
{
    kicks.inc();

    // Issue eagerly while the best candidate's data transfer could
    // begin within maxAhead(); beyond that, sleep until the candidate
    // becomes imminent so newly arriving requests can still reorder.
    while (true) {
        const std::size_t readLen = readQueueLen();
        if (readLen == 0 && writeQ_.empty()) {
            kicksEmpty.inc();
            return;
        }

        // Write batching: start draining above the high watermark or
        // when reads are idle; stop at the low watermark.
        if (draining_) {
            if (writeQ_.size() <= cfg_.writeQueueLow)
                draining_ = false;
        } else if (writeQ_.size() >= cfg_.writeQueueHigh) {
            draining_ = true;
        }

        const bool fromWrites =
            (draining_ && !writeQ_.empty()) || readLen == 0;

        std::size_t idx;
        const ChannelRequest *cand;
        if (fromWrites) {
            idx = pickAt(writeQ_.size(), [this](std::size_t i)
                             -> const ChannelRequest & {
                return writeQ_[i];
            });
            cand = &writeQ_[idx];
        } else {
            idx = pickAt(readLen, [this](std::size_t i)
                             -> const ChannelRequest & {
                return readAt(i);
            });
            cand = &readAt(idx);
        }

        const Bank::Access a =
            banks_[cand->bank].peek(cfg_, eq_.now(), cand->row);
        const Tick start =
            placeBus(a.dataReadyAt, cfg_.burstTicks(), false);
        if (start > eq_.now() + maxAhead()) {
            kicksWait.inc();
            scheduleKick(start - maxAhead());
            return;
        }

        kicksIssue.inc();
        if (fromWrites)
            issue(writeQ_, idx);
        else if (idx < readDemandQ_.size())
            issue(readDemandQ_, idx);
        else
            issue(readLowQ_, idx - readDemandQ_.size());
    }
}

void
Channel::save(ckpt::Serializer &s) const
{
    if (readQueueLen() != 0 || !writeQ_.empty() || kickPending_)
        throw ckpt::CkptError(
            "ckpt: DRAM channel not quiescent (requests in flight); "
            "checkpoints must be taken before the timed run");
    s.u64(banks_.size());
    for (const Bank &b : banks_)
        b.save(s);
    s.u64(busResv_.size());
    for (const auto &[start, end] : busResv_) {
        s.u64(start);
        s.u64(end);
    }
    s.boolean(lastWasWrite_);
    s.boolean(draining_);
    s.u64(nextKickAt_);
    s.u64(busBusy_);
    s.u64(kicks.value());
    s.u64(kicksEmpty.value());
    s.u64(kicksWait.value());
    s.u64(kicksIssue.value());
    s.u64(casReads.value());
    s.u64(casWrites.value());
    s.u64(rowHits.value());
    s.u64(rowMisses.value());
    s.u64(turnarounds.value());
    s.u64(refreshes.value());
    s.f64(readQueueDelay.sum());
    s.u64(readQueueDelay.count());
    s.f64(readLatency.sum());
    s.u64(readLatency.count());
}

void
Channel::restore(ckpt::Deserializer &d)
{
    if (readQueueLen() != 0 || !writeQ_.empty() || kickPending_)
        throw ckpt::CkptError(
            "ckpt: cannot restore into a DRAM channel with requests "
            "in flight");
    if (d.u64() != banks_.size())
        throw ckpt::CkptError("ckpt: DRAM bank count mismatch");
    for (Bank &b : banks_)
        b.restore(d);
    busResv_.resize(d.u64());
    for (auto &[start, end] : busResv_) {
        start = d.u64();
        end = d.u64();
    }
    lastWasWrite_ = d.boolean();
    draining_ = d.boolean();
    nextKickAt_ = d.u64();
    busBusy_ = d.u64();
    kicks.set(d.u64());
    kicksEmpty.set(d.u64());
    kicksWait.set(d.u64());
    kicksIssue.set(d.u64());
    casReads.set(d.u64());
    casWrites.set(d.u64());
    rowHits.set(d.u64());
    rowMisses.set(d.u64());
    turnarounds.set(d.u64());
    refreshes.set(d.u64());
    const double rqd_sum = d.f64();
    readQueueDelay.restoreState(rqd_sum, d.u64());
    const double rl_sum = d.f64();
    readLatency.restoreState(rl_sum, d.u64());
}

} // namespace dapsim
