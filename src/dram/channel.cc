#include "dram/channel.hh"

#include <algorithm>

namespace dapsim
{

ChannelTiming
ChannelTiming::from(const DramConfig &cfg)
{
    ChannelTiming t;
    t.period = cfg.periodPs();
    t.turnaround = cfg.turnaroundCycles * t.period;
    t.ioDelay = cfg.ioDelayCycles * t.period;
    t.maxAhead = (cfg.tRP + cfg.tRCD + cfg.tCAS) * t.period +
                 4 * cfg.burstTicks();
    t.refi = cfg.tREFI * t.period;
    return t;
}

Channel::Channel(EventQueue &eq, const DramConfig &cfg, std::uint32_t index)
    : eq_(eq), cfg_(cfg), bankTiming_(BankTiming::from(cfg)),
      timing_(ChannelTiming::from(cfg)), index_(index),
      banks_(cfg.ranksPerChannel * cfg.banksPerRank)
{
    readDemandQ_.reserve(cfg_.requestQueueReserve);
    readLowQ_.reserve(cfg_.requestQueueReserve);
    writeQ_.reserve(std::max<std::uint32_t>(cfg_.requestQueueReserve,
                                            cfg_.writeQueueHigh + 8));
    cbSlots_.reserve(3 * cfg_.requestQueueReserve);
    cbFree_.reserve(3 * cfg_.requestQueueReserve);
    if (cfg_.tREFI > 0) {
        // Stagger channels so refreshes don't align system-wide.
        const Tick first =
            (index + 1) * timing_.refi / (cfg_.channels + 1);
        eq_.schedule(first, EventQueue::Callback::of<&Channel::refreshTick>(this));
    }
}

void
Channel::refreshTick()
{
    refreshes.inc();
    for (Bank &b : banks_)
        b.refresh(bankTiming_, eq_.now());
    eq_.scheduleAfter(timing_.refi,
                      EventQueue::Callback::of<&Channel::refreshTick>(this));
}

std::uint32_t
Channel::putCb(EventQueue::Callback &&cb)
{
    if (!cbFree_.empty()) {
        const std::uint32_t idx = cbFree_.back();
        cbFree_.pop_back();
        cbSlots_[idx] = std::move(cb);
        return idx;
    }
    cbSlots_.push_back(std::move(cb));
    return static_cast<std::uint32_t>(cbSlots_.size() - 1);
}

EventQueue::Callback
Channel::takeCb(std::uint32_t idx)
{
    EventQueue::Callback cb = std::move(cbSlots_[idx]);
    cbFree_.push_back(idx);
    return cb;
}

void
Channel::enqueue(ChannelRequest req)
{
    HotReq hot;
    hot.row = req.row;
    hot.enqueuedAt = eq_.now();
    hot.bank = req.bank;
    hot.extraDataClocks = req.extraDataClocks;
    hot.cb = putCb(std::move(req.onComplete));
    if (req.isWrite)
        writeQ_.push_back(hot);
    else if (req.lowPriority)
        readLowQ_.push_back(hot);
    else
        readDemandQ_.push_back(hot);
    scheduleKick(eq_.now());
}

void
Channel::scheduleKick(Tick when)
{
    if (when < eq_.now())
        when = eq_.now();
    // Collapse redundant wakeups: only one live kick is kept pending.
    if (kickPending_ && when >= nextKickAt_)
        return;
    kickPending_ = true;
    nextKickAt_ = when;
    eq_.schedule(when, EventQueue::Callback::of<&Channel::kickTick>(this));
}

void
Channel::kickTick()
{
    // A kick superseded by an earlier one (or already consumed) is
    // stale and must die here, or the event population grows without
    // bound while a queue is backlogged. The event fires exactly at
    // its scheduled tick, so now() != nextKickAt_ identifies it.
    if (!kickPending_ || eq_.now() != nextKickAt_)
        return;
    kickPending_ = false;
    kick();
}

Channel::Pick
Channel::pickSpans(const std::pair<const HotReq *, std::size_t> *spans,
                   std::size_t nspans, std::size_t depth) const
{
    // FR-FCFS flavour: within the scan window, choose the request
    // whose data could start earliest (row hits on ready banks win;
    // requests to backed-up banks lose). Ties resolve to the oldest,
    // which bounds starvation together with the scan depth.
    const Tick now = eq_.now();
    // No candidate can beat now + tCAS (start = max(now, readyAt) and
    // the cheapest arm is a row hit), and ties already go to the
    // earliest-scanned entry — so a candidate at the floor ends the
    // scan exactly.
    const Tick floor = now + bankTiming_.tCas;
    Pick best{0, ~Tick(0)};
    // One Bank::probe per distinct bank answers every candidate row
    // (hit vs other), so interleaved-bank queues cost one state read
    // per bank instead of one peek per entry.
    constexpr std::size_t kMaxCachedBanks = 64;
    Bank::Probe probes[kMaxCachedBanks];
    std::uint64_t have = 0; // bitmask of banks already probed
    const bool cacheable = banks_.size() <= kMaxCachedBanks;
    std::size_t base = 0; // global index of the current span's start
    for (std::size_t s = 0; s < nspans && depth != 0; ++s) {
        const HotReq *p = spans[s].first;
        const std::size_t n = std::min(spans[s].second, depth);
        depth -= n;
        for (std::size_t i = 0; i < n; ++i) {
            const HotReq &r = p[i];
            Tick ready;
            if (cacheable) {
                const std::uint64_t bit = std::uint64_t(1) << r.bank;
                if ((have & bit) == 0) {
                    probes[r.bank] =
                        banks_[r.bank].probe(bankTiming_, now);
                    have |= bit;
                }
                const Bank::Probe &pr = probes[r.bank];
                ready = r.row == pr.openRow ? pr.hitAt : pr.otherAt;
            } else {
                ready = banks_[r.bank]
                            .peek(bankTiming_, now, r.row)
                            .dataReadyAt;
            }
            if (ready < best.dataReadyAt) {
                best.dataReadyAt = ready;
                best.idx = base + i;
                if (ready <= floor)
                    return best;
            }
        }
        base += n;
    }
    return best;
}

Tick
Channel::placeBus(Tick ready, Tick occ, bool reserve)
{
    // Prune expired reservations from the front only. An expired
    // entry is transparent to placement (candidates always have
    // ready > now, so neither loop condition can trigger on it), so
    // a mid-vector straggler merely waits its turn to reach the
    // front — no per-call full-vector erase_if scan.
    const Tick now = eq_.now();
    while (!busResv_.empty() && busResv_.front().second <= now)
        busResv_.erase(busResv_.begin());

    Tick start = ready;
    std::size_t pos = 0;
    for (; pos < busResv_.size(); ++pos) {
        const auto &[s, e] = busResv_[pos];
        if (start + occ <= s)
            break; // fits in the gap before this reservation
        if (start < e)
            start = e; // overlap: push past it
    }
    if (reserve) {
        busResv_.insert(busResv_.begin() +
                            static_cast<std::ptrdiff_t>(pos),
                        {start, start + occ});
    }
    return start;
}

void
Channel::issue(RingDeque<HotReq> &q, std::size_t idx, bool isWrite)
{
    const HotReq req = q[idx];
    q.erase(idx);

    Bank &bank = banks_[req.bank];
    const Bank::Access acc = bank.reserve(bankTiming_, eq_.now(), req.row);

    Tick occupancy = bankTiming_.burst +
                     req.extraDataClocks * timing_.period;
    if (isWrite != lastWasWrite_) {
        // Direction flip: charge the turnaround as bus occupancy.
        occupancy += timing_.turnaround;
        turnarounds.inc();
    }
    lastWasWrite_ = isWrite;

    const Tick dataStart = placeBus(acc.dataReadyAt, occupancy, true);
    const Tick dataEnd = dataStart + occupancy;
    busBusy_ += occupancy;

    if (acc.rowHit)
        rowHits.inc();
    else
        rowMisses.inc();

    if (busTrace_)
        busTrace_->onBusSpan(traceSource_, index_, dataStart, dataEnd,
                             isWrite, acc.rowHit);

    const Tick ioDelay = timing_.ioDelay;
    if (isWrite) {
        casWrites.inc();
    } else {
        casReads.inc();
        readQueueDelay.sample(static_cast<double>(dataStart -
                                                  req.enqueuedAt));
        readLatency.sample(static_cast<double>(dataEnd + ioDelay -
                                               req.enqueuedAt));
    }

    EventQueue::Callback cb = takeCb(req.cb);
    if (cb) {
        const Tick doneAt = isWrite ? dataEnd : dataEnd + ioDelay;
        eq_.schedule(doneAt, std::move(cb));
    }
}

void
Channel::kick()
{
    kicks.inc();

    // Issue eagerly while the best candidate's data transfer could
    // begin within maxAhead(); beyond that, sleep until the candidate
    // becomes imminent so newly arriving requests can still reorder.
    while (true) {
        const std::size_t readLen = readQueueLen();
        if (readLen == 0 && writeQ_.empty()) {
            kicksEmpty.inc();
            return;
        }

        // Write batching: start draining above the high watermark or
        // when reads are idle; stop at the low watermark.
        if (draining_) {
            if (writeQ_.size() <= cfg_.writeQueueLow)
                draining_ = false;
        } else if (writeQ_.size() >= cfg_.writeQueueHigh) {
            draining_ = true;
        }

        const bool fromWrites =
            (draining_ && !writeQ_.empty()) || readLen == 0;

        // The scan already probed the winner's bank, so its data-ready
        // tick rides along in the Pick — no second peek here. Reads
        // scan as one sequence — demands, then lows — which is the
        // FR-FCFS scan (and tie-break) order of a combined
        // priority-sorted queue.
        std::pair<const HotReq *, std::size_t> spans[4];
        std::size_t nspans;
        if (fromWrites) {
            spans[0] = writeQ_.seg0();
            spans[1] = writeQ_.seg1();
            nspans = 2;
        } else {
            spans[0] = readDemandQ_.seg0();
            spans[1] = readDemandQ_.seg1();
            spans[2] = readLowQ_.seg0();
            spans[3] = readLowQ_.seg1();
            nspans = 4;
        }
        const Pick p = pickSpans(
            spans, nspans,
            std::min<std::size_t>(fromWrites ? writeQ_.size() : readLen,
                                  cfg_.schedulerScanDepth));

        const Tick start =
            placeBus(p.dataReadyAt, bankTiming_.burst, false);
        if (start > eq_.now() + maxAhead()) {
            kicksWait.inc();
            scheduleKick(start - maxAhead());
            return;
        }

        kicksIssue.inc();
        if (fromWrites)
            issue(writeQ_, p.idx, true);
        else if (p.idx < readDemandQ_.size())
            issue(readDemandQ_, p.idx, false);
        else
            issue(readLowQ_, p.idx - readDemandQ_.size(), false);
    }
}

void
Channel::save(ckpt::Serializer &s) const
{
    if (readQueueLen() != 0 || !writeQ_.empty() || kickPending_)
        throw ckpt::CkptError(
            "ckpt: DRAM channel not quiescent (requests in flight); "
            "checkpoints must be taken before the timed run");
    s.u64(banks_.size());
    for (const Bank &b : banks_)
        b.save(s);
    s.u64(busResv_.size());
    for (const auto &[start, end] : busResv_) {
        s.u64(start);
        s.u64(end);
    }
    s.boolean(lastWasWrite_);
    s.boolean(draining_);
    s.u64(nextKickAt_);
    s.u64(busBusy_);
    s.u64(kicks.value());
    s.u64(kicksEmpty.value());
    s.u64(kicksWait.value());
    s.u64(kicksIssue.value());
    s.u64(casReads.value());
    s.u64(casWrites.value());
    s.u64(rowHits.value());
    s.u64(rowMisses.value());
    s.u64(turnarounds.value());
    s.u64(refreshes.value());
    s.f64(readQueueDelay.sum());
    s.u64(readQueueDelay.count());
    s.f64(readLatency.sum());
    s.u64(readLatency.count());
}

void
Channel::restore(ckpt::Deserializer &d)
{
    if (readQueueLen() != 0 || !writeQ_.empty() || kickPending_)
        throw ckpt::CkptError(
            "ckpt: cannot restore into a DRAM channel with requests "
            "in flight");
    if (d.u64() != banks_.size())
        throw ckpt::CkptError("ckpt: DRAM bank count mismatch");
    for (Bank &b : banks_)
        b.restore(d);
    busResv_.resize(d.u64());
    for (auto &[start, end] : busResv_) {
        start = d.u64();
        end = d.u64();
    }
    lastWasWrite_ = d.boolean();
    draining_ = d.boolean();
    nextKickAt_ = d.u64();
    busBusy_ = d.u64();
    kicks.set(d.u64());
    kicksEmpty.set(d.u64());
    kicksWait.set(d.u64());
    kicksIssue.set(d.u64());
    casReads.set(d.u64());
    casWrites.set(d.u64());
    rowHits.set(d.u64());
    rowMisses.set(d.u64());
    turnarounds.set(d.u64());
    refreshes.set(d.u64());
    const double rqd_sum = d.f64();
    readQueueDelay.restoreState(rqd_sum, d.u64());
    const double rl_sum = d.f64();
    readLatency.restoreState(rl_sum, d.u64());
}

} // namespace dapsim
