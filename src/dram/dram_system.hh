/**
 * @file
 * Multi-channel DRAM subsystem front-end.
 *
 * Maps 64B block addresses to (channel, bank, row) and forwards accesses
 * to the per-channel schedulers. Used for the DDR/LPDDR main memory, the
 * HBM array behind the DRAM caches, and each direction of the eDRAM
 * cache's split channels.
 */

#ifndef DAPSIM_DRAM_DRAM_SYSTEM_HH
#define DAPSIM_DRAM_DRAM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/channel.hh"
#include "dram/dram_config.hh"

namespace dapsim
{

/** A complete DRAM subsystem (one bandwidth source). */
class DramSystem
{
  public:
    DramSystem(EventQueue &eq, DramConfig cfg);

    /**
     * Issue one 64B access.
     * @param addr        byte address (block-aligned internally)
     * @param is_write    write (posted) vs read
     * @param on_complete invoked when data transfer (+ I/O) finishes
     * @param extra_clocks extra data-bus clocks (Alloy TAD bloat)
     */
    void access(Addr addr, bool is_write,
                EventQueue::Callback on_complete = nullptr,
                std::uint32_t extra_clocks = 0,
                bool low_priority = false);

    const DramConfig &config() const { return cfg_; }

    /** Total column operations issued (the paper's CAS count).
     *  Includes fast-forward credits (creditFastForward). */
    std::uint64_t casOps() const;
    std::uint64_t casReads() const;
    std::uint64_t casWrites() const;

    /**
     * Fast-forward bypass accounting: add modeled CAS counts from an
     * analytically priced interval so casOps()/casReads()/casWrites()
     * (and thus bandwidth stats) cover fast-forwarded traffic. The
     * channels, queues and row-buffer state never see these accesses.
     * Never called in exact fidelity.
     */
    void
    creditFastForward(std::uint64_t reads, std::uint64_t writes)
    {
        ffReads_ += reads;
        ffWrites_ += writes;
    }
    std::uint64_t rowHits() const;
    std::uint64_t rowMisses() const;

    /** Mean read latency over all channels, in ticks. */
    double meanReadLatency() const;

    /** Aggregate queue occupancy (for SBD's expected-latency estimate). */
    std::size_t totalReadQueue() const;
    std::size_t totalWriteQueue() const;

    /** Data delivered, in bytes (64 per CAS, TAD bloat not counted). */
    std::uint64_t dataBytes() const { return casOps() * kBlockBytes; }

    /** Bus utilization in [0,1] over @p elapsed ticks. */
    double busUtilization(Tick elapsed) const;

    Channel &channel(std::uint32_t i) { return *channels_[i]; }
    std::uint32_t numChannels() const { return cfg_.channels; }

    /** Attach a bus observability hook to every channel; @p source
     *  names this subsystem in emitted spans. Null detaches. */
    void setBusTrace(BusTraceHook *hook, const std::string &source);

    /** Checkpoint every channel's state (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

  private:
    struct Decoded
    {
        std::uint32_t channel;
        std::uint32_t bank;
        std::uint64_t row;
    };

    Decoded decode(Addr addr) const;

    EventQueue &eq_;
    DramConfig cfg_;
    /** Address-decode divisors, resolved once (shifts for the
     *  power-of-two geometries every production config uses). */
    FastDiv chDiv_;      ///< by cfg_.channels
    FastDiv rowBlkDiv_;  ///< by channels * blocksPerRow
    FastDiv colDiv_;     ///< by blocksPerRow
    FastDiv bankDiv_;    ///< by ranksPerChannel * banksPerRank
    std::vector<std::unique_ptr<Channel>> channels_;
    /** Fast-forward credits (not part of any channel's state; zero in
     *  exact fidelity, so checkpoints never carry them). */
    std::uint64_t ffReads_ = 0;
    std::uint64_t ffWrites_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_DRAM_SYSTEM_HH
