/**
 * @file
 * Device presets matching the paper's Section V configurations.
 */

#ifndef DAPSIM_DRAM_PRESETS_HH
#define DAPSIM_DRAM_PRESETS_HH

#include "dram/dram_config.hh"

namespace dapsim::presets
{

/** Dual-channel DDR4-2400 15-15-15-39, 38.4 GB/s (default main memory). */
DramConfig ddr4_2400();

/** DDR4-2400 with the board/floorplan I/O delay removed (Fig 9). */
DramConfig ddr4_2400_no_io();

/** Dual-channel DDR4-3200 20-20-20-52, 51.2 GB/s (Fig 9 / 16-core MM). */
DramConfig ddr4_3200();

/** Quad-channel 32-bit LPDDR4-2400 24-24-24-53, 38.4 GB/s (Fig 9). */
DramConfig lpddr4_2400();

/** HBM DRAM cache array: 4×128-bit @800 MHz, 102.4 GB/s (default MS$). */
DramConfig hbm_102();

/** HBM at 128 GB/s: 1 GHz, 12-12-12-32 (Fig 10). */
DramConfig hbm_128();

/** HBM at 204.8 GB/s: 8 channels @800 MHz (Fig 10 / 16-core MS$). */
DramConfig hbm_205();

/** One direction of the sectored eDRAM cache: 51.2 GB/s. */
DramConfig edram_dir_51();

} // namespace dapsim::presets

#endif // DAPSIM_DRAM_PRESETS_HH
