#include "dram/presets.hh"

namespace dapsim::presets
{

DramConfig
ddr4_2400()
{
    DramConfig c;
    c.name = "ddr4-2400";
    c.channels = 2;
    c.ranksPerChannel = 2;
    c.banksPerRank = 8;
    c.rowBufferBytes = 2 * kKiB;
    c.freqMHz = 1200;
    c.ddr = true;
    c.channelWidthBits = 64;
    c.burstLength = 8;
    c.tCAS = 15;
    c.tRCD = 15;
    c.tRP = 15;
    c.tRAS = 39;
    c.ioDelayCycles = 10;
    c.turnaroundCycles = 4;
    return c;
}

DramConfig
ddr4_2400_no_io()
{
    DramConfig c = ddr4_2400();
    c.name = "ddr4-2400-noio";
    c.ioDelayCycles = 0;
    return c;
}

DramConfig
ddr4_3200()
{
    DramConfig c = ddr4_2400();
    c.name = "ddr4-3200";
    c.freqMHz = 1600;
    c.tCAS = 20;
    c.tRCD = 20;
    c.tRP = 20;
    c.tRAS = 52;
    return c;
}

DramConfig
lpddr4_2400()
{
    DramConfig c;
    c.name = "lpddr4-2400";
    c.channels = 4;
    c.ranksPerChannel = 1;
    c.banksPerRank = 8;
    c.rowBufferBytes = 2 * kKiB;
    c.freqMHz = 1200;
    c.ddr = true;
    c.channelWidthBits = 32;
    c.burstLength = 16;
    c.tCAS = 24;
    c.tRCD = 24;
    c.tRP = 24;
    c.tRAS = 53;
    c.ioDelayCycles = 10;
    c.turnaroundCycles = 4;
    return c;
}

DramConfig
hbm_102()
{
    DramConfig c;
    c.name = "hbm-102.4";
    c.channels = 4;
    c.ranksPerChannel = 1;
    c.banksPerRank = 16;
    c.rowBufferBytes = 2 * kKiB;
    c.freqMHz = 800;
    c.ddr = true;
    c.channelWidthBits = 128;
    c.burstLength = 4;
    c.tCAS = 10;
    c.tRCD = 10;
    c.tRP = 10;
    c.tRAS = 26;
    c.ioDelayCycles = 0;
    c.turnaroundCycles = 2;
    return c;
}

DramConfig
hbm_128()
{
    DramConfig c = hbm_102();
    c.name = "hbm-128";
    c.freqMHz = 1000;
    c.tCAS = 12;
    c.tRCD = 12;
    c.tRP = 12;
    c.tRAS = 32;
    return c;
}

DramConfig
hbm_205()
{
    DramConfig c = hbm_102();
    c.name = "hbm-204.8";
    c.channels = 8;
    return c;
}

DramConfig
edram_dir_51()
{
    DramConfig c;
    c.name = "edram-51.2";
    c.channels = 2;
    c.ranksPerChannel = 1;
    c.banksPerRank = 16;
    c.rowBufferBytes = 2 * kKiB;
    c.freqMHz = 800;
    c.ddr = true;
    c.channelWidthBits = 128;
    c.burstLength = 4;
    // ~2/3 of the main memory page-hit latency (paper Section VI-C).
    c.tCAS = 8;
    c.tRCD = 8;
    c.tRP = 8;
    c.tRAS = 22;
    c.ioDelayCycles = 0;
    // Separate read/write channel sets: no direction turnaround.
    c.turnaroundCycles = 0;
    return c;
}

} // namespace dapsim::presets
