/**
 * @file
 * Row-buffer state machine for one DRAM bank.
 *
 * Banks track the open row and the ticks at which the next column
 * command and the next precharge may legally issue (tRCD/tCAS/tRP/tRAS).
 *
 * Timing products (cycles x period) are resolved once per channel into
 * a BankTiming POD; the FR-FCFS scan probes banks against that single
 * cache line instead of re-deriving five multiplications from the
 * config on every candidate.
 */

#ifndef DAPSIM_DRAM_BANK_HH
#define DAPSIM_DRAM_BANK_HH

#include <cstdint>

#include "ckpt/serializer.hh"
#include "common/types.hh"

namespace dapsim
{

struct DramConfig;

/**
 * Per-access timing products in ticks, resolved once from a
 * DramConfig (see BankTiming::from). One cache line: the scheduler's
 * candidate scan reads it on every probe, so it must never share a
 * line with mutable channel state.
 */
struct alignas(64) BankTiming
{
    Tick tCas = 0;  ///< column-access latency
    Tick tRcd = 0;  ///< activate-to-column delay
    Tick tRp = 0;   ///< precharge latency
    Tick tRas = 0;  ///< activate-to-precharge minimum
    Tick tRfc = 0;  ///< refresh cycle time
    Tick burst = 0; ///< data-bus occupancy of one burst

    static BankTiming from(const DramConfig &cfg);
};

/** One DRAM bank: open-row state plus occupancy timeline. */
class Bank
{
  public:
    static constexpr std::uint64_t kNoRow = ~std::uint64_t(0);

    /** Result of reserving the bank for one column access. */
    struct Access
    {
        /** Earliest tick data may start moving on the bus. */
        Tick dataReadyAt;
        /** Whether the access hit the open row. */
        bool rowHit;
        /** Whether the bank had no open row (page-empty access). */
        bool rowEmpty;
    };

    /**
     * Reserve the bank for a column access to @p row, requested at tick
     * @p at. Updates the bank timeline and open-row state.
     */
    Access reserve(const BankTiming &t, Tick at, std::uint64_t row);

    /** Compute the access timing without changing any state (used by
     *  the scheduler to rank candidates). Pure function over the three
     *  state words — no bank copy, no writes. */
    Access peek(const BankTiming &t, Tick at, std::uint64_t row) const;

    /**
     * Both answers peek() can give at tick @p at: the row argument
     * only matters through equality with the open row, so one Probe
     * ranks every queued request to this bank. On a page-empty bank
     * the two arms coincide (any row must activate first).
     */
    struct Probe
    {
        std::uint64_t openRow; ///< kNoRow when page-empty
        Tick hitAt;            ///< dataReadyAt for row == openRow
        Tick otherAt;          ///< dataReadyAt for any other row
    };

    Probe probe(const BankTiming &t, Tick at) const;

    /** Convenience overloads resolving timing per call (tests and
     *  one-shot probes; the simulation hot path uses BankTiming). */
    Access reserve(const DramConfig &cfg, Tick at, std::uint64_t row);
    Access peek(const DramConfig &cfg, Tick at, std::uint64_t row) const;
    void refresh(const DramConfig &cfg, Tick now);

    /** Open row, or kNoRow. */
    std::uint64_t openRow() const { return openRow_; }

    /** Earliest tick the bank could begin a new column command. */
    Tick readyAt() const { return readyAt_; }

    /** Force-close the row (used by tests and refresh-like events). */
    void
    precharge()
    {
        openRow_ = kNoRow;
    }

    /** All-bank refresh: closes the row and occupies the bank for
     *  tRFC from @p now (or from its current busy point). */
    void refresh(const BankTiming &t, Tick now);

    /** Checkpoint the row-buffer state (see src/ckpt/). */
    void
    save(ckpt::Serializer &s) const
    {
        s.u64(openRow_);
        s.u64(readyAt_);
        s.u64(activatedAt_);
    }

    void
    restore(ckpt::Deserializer &d)
    {
        openRow_ = d.u64();
        readyAt_ = d.u64();
        activatedAt_ = d.u64();
    }

  private:
    std::uint64_t openRow_ = kNoRow;
    Tick readyAt_ = 0;
    /** Tick of the most recent activate (for tRAS). */
    Tick activatedAt_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_BANK_HH
