/**
 * @file
 * Row-buffer state machine for one DRAM bank.
 *
 * Banks track the open row and the ticks at which the next column
 * command and the next precharge may legally issue (tRCD/tCAS/tRP/tRAS).
 */

#ifndef DAPSIM_DRAM_BANK_HH
#define DAPSIM_DRAM_BANK_HH

#include <cstdint>

#include "ckpt/serializer.hh"
#include "common/types.hh"

namespace dapsim
{

struct DramConfig;

/** One DRAM bank: open-row state plus occupancy timeline. */
class Bank
{
  public:
    static constexpr std::uint64_t kNoRow = ~std::uint64_t(0);

    /** Result of reserving the bank for one column access. */
    struct Access
    {
        /** Earliest tick data may start moving on the bus. */
        Tick dataReadyAt;
        /** Whether the access hit the open row. */
        bool rowHit;
        /** Whether the bank had no open row (page-empty access). */
        bool rowEmpty;
    };

    /**
     * Reserve the bank for a column access to @p row, requested at tick
     * @p at. Updates the bank timeline and open-row state.
     */
    Access reserve(const DramConfig &cfg, Tick at, std::uint64_t row);

    /** Compute the access timing without changing any state (used by
     *  the scheduler to rank candidates). */
    Access peek(const DramConfig &cfg, Tick at, std::uint64_t row) const;

    /** Open row, or kNoRow. */
    std::uint64_t openRow() const { return openRow_; }

    /** Earliest tick the bank could begin a new column command. */
    Tick readyAt() const { return readyAt_; }

    /** Force-close the row (used by tests and refresh-like events). */
    void
    precharge()
    {
        openRow_ = kNoRow;
    }

    /** All-bank refresh: closes the row and occupies the bank for
     *  tRFC from @p now (or from its current busy point). */
    void refresh(const DramConfig &cfg, Tick now);

    /** Checkpoint the row-buffer state (see src/ckpt/). */
    void
    save(ckpt::Serializer &s) const
    {
        s.u64(openRow_);
        s.u64(readyAt_);
        s.u64(activatedAt_);
    }

    void
    restore(ckpt::Deserializer &d)
    {
        openRow_ = d.u64();
        readyAt_ = d.u64();
        activatedAt_ = d.u64();
    }

  private:
    std::uint64_t openRow_ = kNoRow;
    Tick readyAt_ = 0;
    /** Tick of the most recent activate (for tRAS). */
    Tick activatedAt_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_DRAM_BANK_HH
