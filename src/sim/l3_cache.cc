#include "sim/l3_cache.hh"

namespace dapsim
{

L3Cache::L3Cache(EventQueue &eq, const L3Config &cfg, MemSideCache &ms)
    : eq_(eq), cfg_(cfg), ms_(ms),
      dir_(cfg.numSets(), cfg.ways, ReplPolicy::LRU)
{
}

void
L3Cache::install(Addr addr, bool dirty)
{
    const std::uint64_t set = setOf(addr);
    auto victim = dir_.insert(set, tagOf(addr), Line{dirty});
    if (victim.valid && victim.value.dirty) {
        writebacksToMs.inc();
        const Addr vaddr = victim.tag << kBlockShift;
        ms_.handleWrite(vaddr);
    }
}

L3Cache::WarmOutcome
L3Cache::warmTouch(Addr addr, bool is_write)
{
    WarmOutcome out;
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *l = dir_.find(set, tag);
    if (l != nullptr) {
        out.l3Hit = true;
        dir_.touch(set, tag);
        if (is_write)
            l->dirty = true;
        return out;
    }
    auto victim = dir_.insert(set, tag, Line{is_write});
    if (victim.valid && victim.value.dirty) {
        const Addr vaddr = victim.tag << kBlockShift;
        ms_.warmTouch(vaddr, true);
        out.msWriteback = true;
    }
    if (!is_write) {
        out.msRead = true;
        out.msHit = ms_.warmTouch(addr, false);
    }
    return out;
}

void
L3Cache::access(Addr addr, bool is_write, Done done)
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *l = dir_.find(set, tag);
    const Tick lookup = cpuCyclesToTicks(cfg_.latencyCycles);

    if (l != nullptr) {
        hits.inc();
        dir_.touch(set, tag);
        if (is_write) {
            l->dirty = true;
        } else if (done) {
            eq_.scheduleAfter(lookup, std::move(done));
        }
        return;
    }

    misses.inc();
    if (is_write) {
        // L2 writeback missing in the L3: allocate without a fetch
        // (full-block write).
        install(addr, true);
        return;
    }

    readMisses.inc();
    install(addr, false);
    // The L3 lookup precedes the downstream access.
    const std::uint32_t slot = putCont(addr, eq_.now(), std::move(done));
    eq_.scheduleAfter(lookup, [this, slot] { lookupDone(slot); });
}

void
L3Cache::lookupDone(std::uint32_t slot)
{
    // Re-index at invoke time: contSlots_ may have grown (and moved)
    // since this event was scheduled.
    const Addr addr = contSlots_[slot].addr;
    ms_.handleRead(addr, [this, slot] {
        MissCont &c = contSlots_[slot];
        readMissLatency.sample(
            static_cast<double>(eq_.now() - c.issued));
        Done done = std::move(c.done);
        // Recycle before completing: done() may issue new accesses.
        freeCont(slot);
        if (done)
            done();
    });
}

std::uint32_t
L3Cache::putCont(Addr addr, Tick issued, Done &&done)
{
    if (!contFree_.empty()) {
        const std::uint32_t idx = contFree_.back();
        contFree_.pop_back();
        MissCont &c = contSlots_[idx];
        c.addr = addr;
        c.issued = issued;
        c.done = std::move(done);
        return idx;
    }
    contSlots_.push_back(MissCont{addr, issued, std::move(done)});
    return static_cast<std::uint32_t>(contSlots_.size() - 1);
}

void
L3Cache::freeCont(std::uint32_t idx)
{
    contFree_.push_back(idx);
}

void
L3Cache::save(ckpt::Serializer &s) const
{
    dir_.save(s, [](ckpt::Serializer &sr, const Line &l) {
        sr.boolean(l.dirty);
    });
    s.u64(hits.value());
    s.u64(misses.value());
    s.u64(readMisses.value());
    s.u64(writebacksToMs.value());
    s.f64(readMissLatency.sum());
    s.u64(readMissLatency.count());
}

void
L3Cache::restore(ckpt::Deserializer &d)
{
    dir_.restore(d, [](ckpt::Deserializer &dr, Line &l) {
        l.dirty = dr.boolean();
    });
    hits.set(d.u64());
    misses.set(d.u64());
    readMisses.set(d.u64());
    writebacksToMs.set(d.u64());
    const double rml_sum = d.f64();
    readMissLatency.restoreState(rml_sum, d.u64());
}

} // namespace dapsim
