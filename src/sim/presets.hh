/**
 * @file
 * System presets matching the paper's evaluated configurations, with
 * the ~64x capacity scaling documented in DESIGN.md. Coverage ratios
 * (tag cache entries per sector, DBC entries per Alloy set) are
 * preserved at scale.
 */

#ifndef DAPSIM_SIM_PRESETS_HH
#define DAPSIM_SIM_PRESETS_HH

#include "sim/system.hh"

namespace dapsim::presets
{

/** Instructions per core used by the bench harnesses. */
constexpr std::uint64_t kBenchInstructions = 400'000;

/** Default eight-core sectored-DRAM-cache system (Section VI-A):
 *  64 MB (for 4 GB) HBM at 102.4 GB/s, 4 KB sectors, tag cache,
 *  dual-channel DDR4-2400. */
SystemConfig sectoredSystem8();

/** The same system with the tag cache disabled (Fig 5 baseline). */
SystemConfig sectoredSystemNoTagCache8();

/** Eight-core Alloy-cache system (Section VI-B). */
SystemConfig alloySystem8();

/** Eight-core sectored eDRAM system (Section VI-C); capacity_mb is 4
 *  (for 256 MB) or 8 (for 512 MB). */
SystemConfig edramSystem8(std::uint64_t capacity_mb = 4);

/** The eight-core sectored system with a third bandwidth source: a
 *  CXL/RDMA-style remote pool at 1/4 of DDR bandwidth with a 120 ns
 *  latency adder and a 32-deep credit window. */
SystemConfig tieredSystem8();

/** Sixteen-core scaled system (Fig 13): 128 MB (for 8 GB) MS$ at
 *  204.8 GB/s, DDR4-3200, 2 MB L3. */
SystemConfig sectoredSystem16();

} // namespace dapsim::presets

#endif // DAPSIM_SIM_PRESETS_HH
