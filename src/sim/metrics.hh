/**
 * @file
 * Result aggregation and the paper's metrics: weighted speedup,
 * geometric means, CAS fractions, delivered bandwidth.
 */

#ifndef DAPSIM_SIM_METRICS_HH
#define DAPSIM_SIM_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dapsim
{

class System;

/**
 * Fidelity metadata attached to a reduced-fidelity run (the
 * `dapsim.fidelity.v1` report row). Invalid (all zero) for exact runs,
 * which keeps exact-mode outputs byte-identical to pre-fidelity
 * builds. Confidence half-widths are 95% normal intervals over the
 * detailed windows' per-window means, floored at
 * FidelityConfig::minRelCi relative (windows of one run are not IID;
 * the floor documents the achievable resolution). Analytic runs have
 * one "window" and report the floor.
 */
struct FidelityReport
{
    bool valid = false;
    std::string mode; ///< "sampled" or "analytic"

    std::uint64_t windows = 0;         ///< detailed windows measured
    std::uint64_t detailedInstr = 0;   ///< aggregate instructions, detailed
    std::uint64_t fastForwardInstr = 0;///< aggregate instructions, modeled
    double detailFraction = 0.0;       ///< detailed / total instructions

    double ipcMean = 0.0;    ///< aggregate IPC over detailed windows
    double ipcCiHalf = 0.0;  ///< 95% CI half-width on ipcMean

    // Per-source delivered bandwidth over detailed windows (GB/s).
    double msGBpsMean = 0.0, msGBpsCiHalf = 0.0;
    double mmGBpsMean = 0.0, mmGBpsCiHalf = 0.0;
    double remoteGBpsMean = 0.0, remoteGBpsCiHalf = 0.0;
};

/** Everything a bench needs from one simulation run. */
struct RunResult
{
    std::string mixName;
    std::string policyName;

    std::vector<double> ipc; ///< per-core IPC at its finish tick
    std::uint64_t cycles = 0; ///< CPU cycles until the last core finished

    double msHitRatio = 0.0;      ///< read+write hits combined
    double msReadMissRatio = 0.0;
    double mmCasFraction = 0.0;   ///< MM CAS / (MM + MS$ array CAS)
    double tagCacheMissRatio = 0.0;
    double avgL3ReadMissLatency = 0.0; ///< ticks
    double l3Mpki = 0.0;
    double readGBps = 0.0; ///< completed CPU reads x 64B / time

    // DAP decision counts (zero for other policies).
    std::uint64_t fwb = 0;
    std::uint64_t wb = 0;
    std::uint64_t ifrm = 0;
    std::uint64_t sfrm = 0;

    /** Reduced-fidelity metadata; invalid for exact runs. */
    FidelityReport fidelity{};

    /** Sum of per-core IPCs (throughput). */
    double throughput() const;

    /** Weighted speedup against per-app alone IPCs. */
    double weightedSpeedup(const std::vector<double> &alone_ipc) const;

    /** Fraction of DAP decisions by technique (Fig 7 rows). */
    double fwbFraction() const;
    double wbFraction() const;
    double ifrmFraction() const;
    double sfrmFraction() const;
};

/** Harvest a RunResult from a finished System. */
RunResult harvest(System &sys, const std::string &mix_name);

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace dapsim

#endif // DAPSIM_SIM_METRICS_HH
