#include "sim/metrics.hh"

#include <cmath>

#include "common/log.hh"
#include "memside/sectored_dram_cache.hh"
#include "sim/system.hh"

namespace dapsim
{

double
RunResult::throughput() const
{
    double s = 0.0;
    for (double v : ipc)
        s += v;
    return s;
}

double
RunResult::weightedSpeedup(const std::vector<double> &alone_ipc) const
{
    if (alone_ipc.size() != ipc.size())
        fatal("weightedSpeedup: size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < ipc.size(); ++i)
        s += ipc[i] / alone_ipc[i];
    return s;
}

double
RunResult::fwbFraction() const
{
    const auto t = fwb + wb + ifrm + sfrm;
    return t ? static_cast<double>(fwb) / static_cast<double>(t) : 0.0;
}

double
RunResult::wbFraction() const
{
    const auto t = fwb + wb + ifrm + sfrm;
    return t ? static_cast<double>(wb) / static_cast<double>(t) : 0.0;
}

double
RunResult::ifrmFraction() const
{
    const auto t = fwb + wb + ifrm + sfrm;
    return t ? static_cast<double>(ifrm) / static_cast<double>(t) : 0.0;
}

double
RunResult::sfrmFraction() const
{
    const auto t = fwb + wb + ifrm + sfrm;
    return t ? static_cast<double>(sfrm) / static_cast<double>(t) : 0.0;
}

RunResult
harvest(System &sys, const std::string &mix_name)
{
    RunResult r;
    r.mixName = mix_name;
    r.policyName = sys.policy().name();

    Tick last_finish = 0;
    std::uint64_t reads = 0;
    std::uint64_t total_instr = 0;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        RobCore &c = sys.core(i);
        r.ipc.push_back(c.finished() ? c.finishIpc()
                                     : c.ipcAt(sys.eventQueue().now()));
        last_finish = std::max(last_finish, c.finishTick());
        reads += c.readsIssued.value();
        total_instr += c.retiredInstructions();
    }
    if (last_finish == 0)
        last_finish = sys.eventQueue().now();
    r.cycles = last_finish / kCpuPeriodPs;

    MemSideCache *ms = sys.msCache();
    r.msHitRatio = ms->hitRatio();
    r.msReadMissRatio = ms->readMissRatio();
    r.mmCasFraction = ms->mainMemoryCasFraction();
    r.avgL3ReadMissLatency = sys.l3().meanReadMissLatency();
    if (total_instr > 0)
        r.l3Mpki = static_cast<double>(sys.l3().misses.value()) *
                   1000.0 / static_cast<double>(total_instr);

    if (auto *sc = dynamic_cast<SectoredDramCache *>(ms))
        r.tagCacheMissRatio = sc->tagCache().missRatio();

    const double seconds = static_cast<double>(last_finish) /
                           static_cast<double>(kPsPerSecond);
    if (seconds > 0.0)
        r.readGBps = static_cast<double>(reads) * kBlockBytes /
                     seconds / 1e9;

    if (DapPolicy *dap = sys.dapPolicy()) {
        r.fwb = dap->fwbApplied.value();
        r.wb = dap->wbApplied.value();
        r.ifrm = dap->ifrmApplied.value();
        r.sfrm = dap->sfrmApplied.value();
    }
    return r;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean: non-positive value");
        s += std::log(v);
    }
    return std::exp(s / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace dapsim
