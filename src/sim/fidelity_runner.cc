#include "sim/fidelity_runner.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "dap/analytic_engine.hh"

namespace dapsim
{

namespace
{

/** GB/s of @p acc_per_cycle 64B accesses at the CPU clock. */
double
gbpsOf(double acc_per_cycle)
{
    const double bytes_per_second =
        acc_per_cycle * static_cast<double>(kBlockBytes) *
        (static_cast<double>(kPsPerSecond) /
         static_cast<double>(kCpuPeriodPs));
    return bytes_per_second / 1e9;
}

/** Mean and 95% CI half-width over per-window samples, with the
 *  configured relative floor (windows are not IID). */
void
meanAndCi(const std::vector<double> &xs, double min_rel_ci,
          double &mean_out, double &half_out)
{
    mean_out = 0.0;
    half_out = 0.0;
    if (xs.empty())
        return;
    double s = 0.0;
    for (double x : xs)
        s += x;
    const double n = static_cast<double>(xs.size());
    const double m = s / n;
    double var = 0.0;
    for (double x : xs)
        var += (x - m) * (x - m);
    var = xs.size() > 1 ? var / (n - 1.0) : 0.0;
    const double se = std::sqrt(var / n);
    mean_out = m;
    half_out = std::max(1.96 * se, min_rel_ci * std::abs(m));
}

std::uint64_t
llroundU64(double v)
{
    return v <= 0.0 ? 0
                    : static_cast<std::uint64_t>(std::llround(v));
}

/** One modeled steady-state demand window (cfg.windowCycles long) at
 *  the engine's smoothed rates, for functional DAP-credit warm-up. */
WindowCounters
modeledWindow(const fastfwd::AnalyticEngine &eng, Cycle window_cycles)
{
    WindowCounters wc;
    const double n =
        std::max(eng.predictIpc(), 0.0) *
        static_cast<double>(window_cycles);
    wc.aMsRead = llroundU64(eng.msReadsPerInstr() * n);
    wc.aMsWrite = llroundU64(eng.msWritesPerInstr() * n);
    wc.aMs = wc.aMsRead + wc.aMsWrite;
    const double lower = eng.mmPerInstr() + eng.remotePerInstr();
    wc.aMm = llroundU64(lower * n);
    wc.aRemote = llroundU64(eng.remotePerInstr() * n);
    // Coarse decision-point estimates: lower-tier reads are the fill
    // candidates, array writes stand in for L3 dirty evictions. The
    // next detailed segment's real windows re-drive learning; this
    // only keeps credits from decaying to cold-start state.
    wc.readMisses = llroundU64(
        (eng.mmReadsPerInstr() + eng.remReadsPerInstr()) * n);
    wc.writes = wc.aMsWrite;
    wc.cleanHits = 0;
    wc.lookups = wc.aMs + wc.aMm;
    wc.hits = wc.aMs;
    return wc;
}

/** The three efficiency-derated peak bandwidths of @p sys. */
void
peaksOf(System &sys, double &b_ms, double &b_mm, double &b_rem)
{
    const SystemConfig &cfg = sys.config();
    b_ms = cfg.arch == MsArch::None ? 0.0 : msPeakAccPerCycle(cfg);
    b_mm = cfg.mainMemory.peakAccessesPerCpuCycle();
    b_rem = sys.remoteMemory()
                ? sys.remoteMemory()->peakAccessesPerCpuCycle()
                : 0.0;
}

RunResult
runSampled(System &sys, const std::string &mix_name,
           std::uint64_t instr_per_core)
{
    const SystemConfig &cfg = sys.config();
    const FidelityConfig &fid = cfg.fidelity;
    const std::uint64_t detail = std::max<std::uint64_t>(
        1, fid.detailInstr);
    const std::uint64_t period = std::max(fid.periodInstr, detail);

    double b_ms = 0.0, b_mm = 0.0, b_rem = 0.0;
    peaksOf(sys, b_ms, b_mm, b_rem);
    fastfwd::AnalyticEngine engine(b_ms, b_mm, b_rem,
                                   cfg.dap.efficiency, fid.ewmaAlpha);

    // Per-window samples feeding the error-bound report.
    std::vector<double> wIpc, wMsGBps, wMmGBps, wRemGBps;
    std::uint64_t detailedInstr = 0;

    // Detailed warm-up heads are sampling overhead, not part of the
    // estimated trajectory: their event-time cycles (pipeline re-fill
    // transient) are swapped for the same instructions priced at that
    // window's measured IPC, exactly as SMARTS excludes warming from
    // its CPI estimate.
    std::uint64_t warmCycles = 0;
    double warmModeledCycles = 0.0;

    // Fast-forward accounting (event time never covers these).
    std::uint64_t ffCycles = 0, ffInstr = 0;
    std::uint64_t ffReads = 0, ffL3Misses = 0;
    std::vector<std::uint64_t> ffInstrPerCore(cfg.numCores, 0);

    sys.startRun();
    std::uint64_t assigned = 0;       // per-core instructions covered
    std::uint64_t detailedTarget = 0; // per-core cumulative target
    while (assigned < instr_per_core) {
        const std::uint64_t chunk =
            std::min(period, instr_per_core - assigned);
        const std::uint64_t d = std::min(detail, chunk);
        const std::uint64_t skip = chunk - d;

        // Detailed warm-up head: fast-forward drained all in-flight
        // misses, so the pipeline re-fills over the first instructions
        // of every window. Simulate them in detail but keep them out
        // of the measured sample (SMARTS detailed warm-up) — the
        // transient would bias window IPC low. Clamped to half the
        // segment so the measured window can never degenerate to a
        // handful of instructions.
        const std::uint64_t warm =
            std::min(fid.detailWarmupInstr, d / 2);
        const std::uint64_t beforeRetired =
            sys.sourceSnapshot().retired;
        const Tick tickWarmStart = sys.eventQueue().now();
        if (warm > 0)
            sys.runDetailedUntilRetired(detailedTarget + warm);

        const System::SourceSnapshot before = sys.sourceSnapshot();
        const Tick tickBefore = sys.eventQueue().now();
        detailedTarget += d;
        sys.runDetailedUntilRetired(detailedTarget);
        const System::SourceSnapshot after = sys.sourceSnapshot();
        const Tick tickAfter = sys.eventQueue().now();

        fastfwd::WindowSample w;
        w.instr = after.retired - before.retired;
        w.cycles = (tickAfter - tickBefore) / kCpuPeriodPs;
        w.msReads = after.msReads - before.msReads;
        w.msWrites = after.msWrites - before.msWrites;
        w.mmReads = after.mmReads - before.mmReads;
        w.mmWrites = after.mmWrites - before.mmWrites;
        w.remReads = after.remReads - before.remReads;
        w.remWrites = after.remWrites - before.remWrites;
        engine.observe(w);
        detailedInstr += after.retired - beforeRetired;
        if (w.cycles > 0) {
            const double cyc = static_cast<double>(w.cycles);
            const double ipc = static_cast<double>(w.instr) / cyc;
            if (w.instr > 0 && ipc > 0.0) {
                warmCycles += (tickBefore - tickWarmStart) /
                              kCpuPeriodPs;
                warmModeledCycles +=
                    static_cast<double>(before.retired -
                                        beforeRetired) /
                    ipc;
            }
            wIpc.push_back(static_cast<double>(w.instr) / cyc);
            wMsGBps.push_back(gbpsOf(
                static_cast<double>(w.msReads + w.msWrites) / cyc));
            wMmGBps.push_back(gbpsOf(
                static_cast<double>(w.mmReads + w.mmWrites) / cyc));
            wRemGBps.push_back(gbpsOf(
                static_cast<double>(w.remReads + w.remWrites) / cyc));
        }
        assigned += d;

        if (skip > 0 && !engine.ready()) {
            // No observed window yet — the measured segment can
            // retire in zero event-time right after a drain, leaving
            // the engine with no rates to extrapolate. Fast-forward
            // would price the skip at the pessimistic floor and
            // poison the stitched total, so run it detailed instead
            // (unmeasured: it is priming, not a sample).
            const std::uint64_t primeBefore =
                sys.sourceSnapshot().retired;
            detailedTarget += skip;
            sys.runDetailedUntilRetired(detailedTarget);
            detailedInstr +=
                sys.sourceSnapshot().retired - primeBefore;
            assigned += skip;
        } else if (skip > 0) {
            const System::FastForwardPull pull = sys.fastForward(skip);
            const fastfwd::FastForwardChunk priced =
                engine.fastForward(pull.instr);
            sys.creditFastForward(priced);
            ffCycles += priced.cycles;
            ffInstr += pull.instr;
            ffReads += pull.reads;
            ffL3Misses += pull.l3Misses;
            for (std::uint32_t i = 0; i < cfg.numCores; ++i)
                ffInstrPerCore[i] += pull.instrPerCore[i];
            sys.warmPolicyWindow(
                modeledWindow(engine, cfg.windowCycles));
            assigned += skip;
        }
    }
    sys.finishRun();

    RunResult r = harvest(sys, mix_name);

    // Stitch fast-forwarded time and work back into the whole-run
    // metrics: event time only covers the detailed segments, and the
    // warm-up heads' transient cycles are re-priced at measured IPC.
    const std::uint64_t totalCycles =
        r.cycles - std::min(warmCycles, r.cycles) +
        llroundU64(warmModeledCycles) + ffCycles;
    r.cycles = totalCycles;
    std::uint64_t totalInstr = 0, reads = 0;
    for (std::uint32_t i = 0; i < cfg.numCores; ++i) {
        const std::uint64_t ci =
            sys.core(i).retiredInstructions() + ffInstrPerCore[i];
        totalInstr += ci;
        reads += sys.core(i).readsIssued.value();
        r.ipc[i] = totalCycles
                       ? static_cast<double>(ci) /
                             static_cast<double>(totalCycles)
                       : 0.0;
    }
    reads += ffReads;
    if (totalInstr > 0)
        r.l3Mpki = static_cast<double>(sys.l3().misses.value() +
                                       ffL3Misses) *
                   1000.0 / static_cast<double>(totalInstr);
    const double seconds =
        static_cast<double>(totalCycles) *
        static_cast<double>(kCpuPeriodPs) /
        static_cast<double>(kPsPerSecond);
    if (seconds > 0.0)
        r.readGBps = static_cast<double>(reads) * kBlockBytes /
                     seconds / 1e9;

    FidelityReport &rep = r.fidelity;
    rep.valid = true;
    rep.mode = "sampled";
    rep.windows = wIpc.size();
    rep.detailedInstr = detailedInstr;
    rep.fastForwardInstr = ffInstr;
    const std::uint64_t covered = detailedInstr + ffInstr;
    rep.detailFraction =
        covered ? static_cast<double>(detailedInstr) /
                      static_cast<double>(covered)
                : 0.0;
    meanAndCi(wIpc, fid.minRelCi, rep.ipcMean, rep.ipcCiHalf);
    meanAndCi(wMsGBps, fid.minRelCi, rep.msGBpsMean, rep.msGBpsCiHalf);
    meanAndCi(wMmGBps, fid.minRelCi, rep.mmGBpsMean, rep.mmGBpsCiHalf);
    meanAndCi(wRemGBps, fid.minRelCi, rep.remoteGBpsMean,
              rep.remoteGBpsCiHalf);
    return r;
}

RunResult
runAnalytic(System &sys, const std::string &mix_name,
            std::uint64_t instr_per_core)
{
    const SystemConfig &cfg = sys.config();
    const FidelityConfig &fid = cfg.fidelity;

    // Functional measurement pass: advance every stream through the
    // warm path to learn the post-L3 access mix. No event time.
    const System::FastForwardPull pull = sys.fastForward(
        std::max<std::uint64_t>(1, fid.analyticInstr));
    const double instr =
        static_cast<double>(std::max<std::uint64_t>(1, pull.instr));

    const double readMissPerInstr =
        static_cast<double>(pull.msReads) / instr;
    const double missReads =
        static_cast<double>(pull.msReads - pull.msHits);
    double arrayPerInstr = 0.0, lowerPerInstr = 0.0;
    if (cfg.arch == MsArch::None) {
        lowerPerInstr =
            static_cast<double>(pull.msReads + pull.msWritebacks) /
            instr;
    } else {
        // Hit reads + incoming writes + fills hit the array; misses
        // fetch from the lower tier.
        arrayPerInstr = (static_cast<double>(pull.msHits) +
                         static_cast<double>(pull.msWritebacks) +
                         missReads) /
                        instr;
        lowerPerInstr = missReads / instr;
    }

    double b_ms = 0.0, b_mm = 0.0, b_rem = 0.0;
    peaksOf(sys, b_ms, b_mm, b_rem);
    // Lower-tier split at the Eq 4 optimum (what DAP-n converges to).
    const double remShare =
        b_rem > 0.0 ? b_rem / (b_mm + b_rem) : 0.0;
    const double remPerInstr = lowerPerInstr * remShare;
    const double mmPerInstr = lowerPerInstr - remPerInstr;

    // Per-core IPC ceiling: retire width, bounded by MLP via Little's
    // law at the configured mean service latency.
    const double width = static_cast<double>(cfg.core.retireWidth);
    double ipc0 = width;
    if (readMissPerInstr > 0.0 && fid.analyticLatencyCycles > 0.0) {
        const double mlp_bound =
            static_cast<double>(cfg.core.maxOutstanding) /
            (fid.analyticLatencyCycles * readMissPerInstr);
        ipc0 = std::min(ipc0, mlp_bound);
    }

    fastfwd::AnalyticEngine engine(b_ms, b_mm, b_rem,
                                   cfg.dap.efficiency, fid.ewmaAlpha);
    const double perInstr = arrayPerInstr + mmPerInstr + remPerInstr;
    const double cores = static_cast<double>(cfg.numCores);
    const double offered = perInstr * ipc0 * cores;
    double scale = 1.0;
    if (offered > 0.0) {
        // analyticBwDerate: sustained bandwidth falls short of the
        // steady-state optimum (partition lag, bursty arrivals); see
        // FidelityConfig.
        const double delivered =
            fid.analyticBwDerate *
            engine.deliveredAccPerCycle(arrayPerInstr, mmPerInstr,
                                        remPerInstr);
        scale = std::min(1.0, delivered / offered);
    }
    const double ipcCore = std::max(ipc0 * scale, 1e-9);
    const double ipcAgg = ipcCore * cores;

    RunResult r;
    r.mixName = mix_name;
    r.policyName = sys.policy().name();
    r.ipc.assign(cfg.numCores, ipcCore);
    r.cycles = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(instr_per_core) / ipcCore));
    const double msDemandR = static_cast<double>(pull.msReads);
    const double msDemandW = static_cast<double>(pull.msWritebacks);
    const double msDemand = msDemandR + msDemandW;
    r.msHitRatio =
        msDemand > 0.0
            ? (static_cast<double>(pull.msHits) + msDemandW) / msDemand
            : 0.0;
    r.msReadMissRatio = msDemandR > 0.0 ? missReads / msDemandR : 0.0;
    r.mmCasFraction =
        lowerPerInstr + arrayPerInstr > 0.0
            ? mmPerInstr / (mmPerInstr + arrayPerInstr)
            : 0.0;
    r.l3Mpki =
        static_cast<double>(pull.l3Misses) * 1000.0 / instr;
    const double totalInstr =
        static_cast<double>(instr_per_core) * cores;
    const double seconds = static_cast<double>(r.cycles) *
                           static_cast<double>(kCpuPeriodPs) /
                           static_cast<double>(kPsPerSecond);
    if (seconds > 0.0)
        r.readGBps = static_cast<double>(pull.reads) / instr *
                     totalInstr * kBlockBytes / seconds / 1e9;

    FidelityReport &rep = r.fidelity;
    rep.valid = true;
    rep.mode = "analytic";
    rep.windows = 1;
    rep.detailedInstr = 0;
    rep.fastForwardInstr = static_cast<std::uint64_t>(totalInstr);
    rep.detailFraction = 0.0;
    rep.ipcMean = ipcAgg;
    rep.ipcCiHalf = fid.analyticRelBound * ipcAgg;
    rep.msGBpsMean = gbpsOf(arrayPerInstr * ipcAgg);
    rep.msGBpsCiHalf = fid.analyticRelBound * rep.msGBpsMean;
    rep.mmGBpsMean = gbpsOf(mmPerInstr * ipcAgg);
    rep.mmGBpsCiHalf = fid.analyticRelBound * rep.mmGBpsMean;
    rep.remoteGBpsMean = gbpsOf(remPerInstr * ipcAgg);
    rep.remoteGBpsCiHalf = fid.analyticRelBound * rep.remoteGBpsMean;
    return r;
}

} // namespace

RunResult
runFidelityOn(System &sys, const std::string &mix_name,
              std::uint64_t instr_per_core)
{
    switch (sys.config().fidelity.mode) {
      case FidelityMode::Exact:
        // The pre-fidelity sequence, verbatim: bit-identity with
        // historical results is load-bearing (tests/test_fidelity.cc).
        sys.run();
        return harvest(sys, mix_name);
      case FidelityMode::Sampled:
        return runSampled(sys, mix_name, instr_per_core);
      case FidelityMode::Analytic:
        return runAnalytic(sys, mix_name, instr_per_core);
    }
    fatal("runFidelityOn: unknown fidelity mode");
    return {};
}

} // namespace dapsim
