#include "sim/runner.hh"

#include <map>

#include "common/log.hh"
#include "sim/fidelity_runner.hh"

namespace dapsim
{

RunResult
runMix(SystemConfig cfg, const Mix &mix, std::uint64_t instr_per_core,
       std::uint64_t seed_salt)
{
    if (mix.apps.size() != cfg.numCores)
        fatal("runMix: mix width != core count");
    cfg.core.instructions = instr_per_core;

    std::vector<AccessGeneratorPtr> gens;
    gens.reserve(cfg.numCores);
    for (std::uint32_t i = 0; i < cfg.numCores; ++i)
        gens.push_back(makeGenerator(mix.apps[i], i, seed_salt));

    System sys(cfg, std::move(gens));
    std::uint64_t warm = cfg.warmupAccessesPerCore;
    if (warm == 0)
        warm = 2 * (cfg.msCapacityBytes() / kBlockBytes) /
               cfg.numCores;
    sys.warmup(warm);
    return runFidelityOn(sys, mix.name, instr_per_core);
}

double
aloneIpc(SystemConfig cfg, const WorkloadProfile &profile,
         std::uint64_t instr, std::uint64_t seed_salt)
{
    cfg.numCores = 1;
    cfg.core.instructions = instr;

    std::vector<AccessGeneratorPtr> gens;
    gens.push_back(makeGenerator(profile, 0, seed_salt));

    System sys(cfg, std::move(gens));
    std::uint64_t warm = cfg.warmupAccessesPerCore;
    if (warm == 0)
        warm = 2 * (cfg.msCapacityBytes() / kBlockBytes);
    sys.warmup(warm);
    sys.run();
    return sys.core(0).finished()
               ? sys.core(0).finishIpc()
               : sys.core(0).ipcAt(sys.eventQueue().now());
}

std::vector<double>
aloneIpcTable(const SystemConfig &cfg, const Mix &mix,
              std::uint64_t instr, std::uint64_t seed_salt)
{
    std::map<std::string, double> memo;
    std::vector<double> out;
    out.reserve(mix.apps.size());
    for (const auto &app : mix.apps) {
        auto it = memo.find(app.name);
        if (it == memo.end()) {
            it = memo.emplace(app.name,
                              aloneIpc(cfg, app, instr, seed_salt))
                     .first;
        }
        out.push_back(it->second);
    }
    return out;
}

} // namespace dapsim
