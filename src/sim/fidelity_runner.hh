/**
 * @file
 * Fidelity-dispatching run driver (`--fidelity {exact,sampled,analytic}`).
 *
 * runFidelityOn() finishes a warmed (or checkpoint-restored) System at
 * the fidelity its configuration selects; runMix and
 * ckpt::runMixFromCheckpoint both funnel through it, so every layer
 * above them (jobs, sweeps, the experiment service, the CLI) inherits
 * fidelity selection without further dispatch.
 *
 *  - exact: the historical cycle-accurate path, statement-for-
 *    statement what run()+harvest() executed before this layer existed
 *    — bit-identical by construction.
 *  - sampled: SMARTS-style interval sampling. Each period of
 *    FidelityConfig::periodInstr instructions per core opens with
 *    detailInstr simulated in detail; the remainder is fast-forwarded
 *    functionally (streams and directories advance, no event time) and
 *    priced by fastfwd::AnalyticEngine from the EWMA-smoothed window
 *    measurements. DAP credit state is re-warmed with a modeled
 *    steady-state window at each fast-forward so the next detailed
 *    segment starts converged. Per-run error bounds (mean + 95% CI of
 *    IPC and per-source bandwidth over the detailed windows) land in
 *    RunResult::fidelity.
 *  - analytic: no event loop at all. A functional measurement pass of
 *    analyticInstr instructions per core derives the access mix; IPC
 *    is the retire-width/MLP bound (Little's law with the configured
 *    service latency) scaled by the n-source delivered-bandwidth cap.
 */

#ifndef DAPSIM_SIM_FIDELITY_RUNNER_HH
#define DAPSIM_SIM_FIDELITY_RUNNER_HH

#include <cstdint>
#include <string>

#include "sim/metrics.hh"
#include "sim/system.hh"

namespace dapsim
{

/**
 * Complete a run on @p sys at cfg.fidelity. The System must be past
 * warm-up (or checkpoint restore) and not yet run. @p instr_per_core
 * must equal the cfg.core.instructions the System was built with.
 */
RunResult runFidelityOn(System &sys, const std::string &mix_name,
                        std::uint64_t instr_per_core);

} // namespace dapsim

#endif // DAPSIM_SIM_FIDELITY_RUNNER_HH
