/**
 * @file
 * High-level experiment runner: build a System for a mix, run it to
 * completion, harvest results. This is the API the benches and
 * examples drive.
 */

#ifndef DAPSIM_SIM_RUNNER_HH
#define DAPSIM_SIM_RUNNER_HH

#include <cstdint>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "trace/mixes.hh"

namespace dapsim
{

/** Run @p mix on @p cfg, each core retiring @p instr_per_core. */
RunResult runMix(SystemConfig cfg, const Mix &mix,
                 std::uint64_t instr_per_core,
                 std::uint64_t seed_salt = 0);

/** IPC of @p profile running alone (one active core) under @p cfg. */
double aloneIpc(SystemConfig cfg, const WorkloadProfile &profile,
                std::uint64_t instr, std::uint64_t seed_salt = 0);

/** Alone-IPC table for a mix (one entry per core slot). */
std::vector<double> aloneIpcTable(const SystemConfig &cfg,
                                  const Mix &mix, std::uint64_t instr,
                                  std::uint64_t seed_salt = 0);

} // namespace dapsim

#endif // DAPSIM_SIM_RUNNER_HH
