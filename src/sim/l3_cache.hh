/**
 * @file
 * Shared inclusive L3 cache (paper Section V: 8 MB, 16-way, 20-cycle
 * round trip; scaled to 1 MB by default).
 *
 * Functional set-associative directory with a fixed lookup latency.
 * Read misses go down to the memory-side cache; dirty evictions become
 * MS$ writes (the paper's "L4 cache writes"). Lines are installed at
 * miss detection (MSHR coalescing idealized), which is the standard
 * trace-driven approximation.
 */

#ifndef DAPSIM_SIM_L3_CACHE_HH
#define DAPSIM_SIM_L3_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/assoc_cache.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "memside/ms_cache.hh"

namespace dapsim
{

struct L3Config
{
    /** Scaled default: 1 MB stands in for the paper's 8 MB. */
    std::uint64_t capacityBytes = 1 * kMiB;
    std::uint32_t ways = 16;
    /** Round-trip hit latency in CPU cycles. */
    Cycle latencyCycles = 20;

    std::uint64_t
    numSets() const
    {
        return capacityBytes / kBlockBytes / ways;
    }
};

/** The shared L3. */
class L3Cache
{
  public:
    using Done = EventQueue::Callback;

    L3Cache(EventQueue &eq, const L3Config &cfg, MemSideCache &ms);

    /**
     * One access from a core: a read (L2 load miss) or a write (L2
     * dirty writeback). @p done fires when a read's data is available;
     * writes are posted.
     */
    void access(Addr addr, bool is_write, Done done);

    /** What one warmTouch() did (fast-forward measurement inputs). */
    struct WarmOutcome
    {
        bool l3Hit = false;      ///< block was present in the L3
        bool msRead = false;     ///< a read reached the MS$ warm path
        bool msHit = false;      ///< ...and found its block there
        bool msWriteback = false; ///< a dirty victim reached the MS$
    };

    /** Functional warm-up: update the directory and forward misses to
     *  the MS$'s warm path; no timing, no statistics. */
    WarmOutcome warmTouch(Addr addr, bool is_write);

    double
    missRatio() const
    {
        const auto t = hits.value() + misses.value();
        return t ? static_cast<double>(misses.value()) / t : 0.0;
    }

    /** Mean read-miss service latency in ticks. */
    double
    meanReadMissLatency() const
    {
        return readMissLatency.mean();
    }

    const L3Config &config() const { return cfg_; }

    /** Checkpoint directory contents and counters (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    Counter hits;
    Counter misses;
    Counter readMisses;
    Counter writebacksToMs; ///< dirty evictions sent to the MS$
    Average readMissLatency;

  private:
    struct Line
    {
        bool dirty = false;
    };

    std::uint64_t setOf(Addr a) const
    {
        return dir_.mapSet(indexHash(blockNumber(a)));
    }
    std::uint64_t tagOf(Addr a) const { return blockNumber(a); }

    void install(Addr addr, bool dirty);

    /**
     * In-flight read-miss continuation, parked by index: the lookup
     * and completion closures capture {this, slot} (16 bytes, inline)
     * instead of carrying the 80-byte Done through two pooled-slot
     * callbacks per miss.
     */
    struct MissCont
    {
        Addr addr;
        Tick issued;
        Done done;
    };

    std::uint32_t putCont(Addr addr, Tick issued, Done &&done);
    void freeCont(std::uint32_t idx);

    /** Body of the post-lookup event for miss continuation @p slot. */
    void lookupDone(std::uint32_t slot);

    EventQueue &eq_;
    L3Config cfg_;
    MemSideCache &ms_;
    AssocCache<Line> dir_;
    /** Parked read-miss continuations + freelist (see MissCont). */
    std::vector<MissCont> contSlots_;
    std::vector<std::uint32_t> contFree_;
};

} // namespace dapsim

#endif // DAPSIM_SIM_L3_CACHE_HH
