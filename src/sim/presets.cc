#include "sim/presets.hh"

namespace dapsim::presets
{

SystemConfig
sectoredSystem8()
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l3.capacityBytes = 1 * kMiB; // stands for 8 MB
    cfg.arch = MsArch::Sectored;

    cfg.sectored.capacityBytes = 64 * kMiB; // stands for 4 GB
    cfg.sectored.ways = 4;
    cfg.sectored.sectorBytes = 4 * kKiB;
    cfg.sectored.array = dapsim::presets::hbm_102();
    // Paper: 32K tag-cache entries over 1M sectors (~3% coverage);
    // scaled: 512 entries over 16K sectors.
    cfg.sectored.tagCache.entries = 512;
    cfg.sectored.tagCache.ways = 4;

    cfg.mainMemory = dapsim::presets::ddr4_2400();
    cfg.policy = PolicyKind::Baseline;
    return cfg;
}

SystemConfig
sectoredSystemNoTagCache8()
{
    SystemConfig cfg = sectoredSystem8();
    cfg.sectored.tagCache.enabled = false;
    return cfg;
}

SystemConfig
alloySystem8()
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l3.capacityBytes = 1 * kMiB;
    cfg.arch = MsArch::Alloy;

    cfg.alloy.capacityBytes = 64 * kMiB; // stands for 4 GB
    cfg.alloy.array = dapsim::presets::hbm_102();
    // Paper: 32K DBC entries x 64 sets cover ~3% of 64M sets; scaled:
    // 512 entries x 64 sets over 1M sets.
    cfg.alloy.dbc.entries = 512;
    cfg.alloy.dbc.ways = 4;

    cfg.mainMemory = dapsim::presets::ddr4_2400();
    cfg.policy = PolicyKind::Baseline;
    return cfg;
}

SystemConfig
edramSystem8(std::uint64_t capacity_mb)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l3.capacityBytes = 1 * kMiB;
    cfg.arch = MsArch::Edram;

    cfg.edram.capacityBytes = capacity_mb * kMiB; // 4 MB ~ 256 MB
    cfg.edram.ways = 16;
    cfg.edram.sectorBytes = 1 * kKiB;
    cfg.edram.readChannels = dapsim::presets::edram_dir_51();
    cfg.edram.writeChannels = dapsim::presets::edram_dir_51();

    cfg.mainMemory = dapsim::presets::ddr4_2400();
    cfg.policy = PolicyKind::Baseline;
    return cfg;
}

SystemConfig
tieredSystem8()
{
    SystemConfig cfg = sectoredSystem8();
    cfg.remote.enabled = true;
    cfg.remote.bwScaleFactor = 4.0;
    cfg.remote.addLatencyNs = 120.0;
    cfg.remote.maxOutstanding = 32;
    return cfg;
}

SystemConfig
sectoredSystem16()
{
    SystemConfig cfg = sectoredSystem8();
    cfg.numCores = 16;
    cfg.l3.capacityBytes = 2 * kMiB; // stands for 16 MB
    cfg.sectored.capacityBytes = 128 * kMiB; // stands for 8 GB
    cfg.sectored.array = dapsim::presets::hbm_205();
    cfg.sectored.tagCache.entries = 1024;
    cfg.mainMemory = dapsim::presets::ddr4_3200();
    return cfg;
}

} // namespace dapsim::presets
