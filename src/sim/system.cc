#include "sim/system.hh"

#include "common/log.hh"
#include "dap/bandwidth_model.hh"
#include "obs/observability.hh"

namespace dapsim
{

namespace
{

/** A pass-through "cache" used by MsArch::None. */
class NullMsCache final : public MemSideCache
{
  public:
    using MemSideCache::MemSideCache;

    void
    handleRead(Addr addr, Done done) override
    {
        readMisses.inc();
        memAccess(addr, false, std::move(done));
    }

    void
    handleWrite(Addr addr) override
    {
        writeMisses.inc();
        memAccess(addr, true);
    }

    std::uint64_t arrayCasOps() const override { return 0; }
};

} // namespace

std::uint64_t
SystemConfig::msCapacityBytes() const
{
    switch (arch) {
      case MsArch::Sectored:
        return sectored.capacityBytes;
      case MsArch::Alloy:
        return alloy.capacityBytes;
      case MsArch::Edram:
        return edram.capacityBytes;
      case MsArch::None:
        return 0;
    }
    return 0;
}

double
msPeakAccPerCycle(const SystemConfig &cfg)
{
    switch (cfg.arch) {
      case MsArch::Sectored:
        return cfg.sectored.array.peakAccessesPerCpuCycle();
      case MsArch::Alloy: {
        const auto &a = cfg.alloy;
        const double data_clocks =
            a.array.ddr ? (a.array.burstLength + 1) / 2
                        : a.array.burstLength;
        return a.array.peakAccessesPerCpuCycle() * data_clocks /
               (data_clocks + a.tadExtraClocks);
      }
      case MsArch::Edram:
        return cfg.edram.readChannels.peakAccessesPerCpuCycle();
      case MsArch::None:
        return 0.0;
    }
    return 0.0;
}

System::System(const SystemConfig &cfg,
               std::vector<AccessGeneratorPtr> gens)
    : cfg_(cfg), gens_(std::move(gens))
{
    if (gens_.size() != cfg_.numCores)
        fatal("System: need one generator per core");

    // Steady-state pending events are bounded by outstanding reads
    // (cores x MSHRs), plus per-channel kicks/refreshes and the
    // window/sampler ticks; pre-size the scheduler so the run loop
    // never grows its arrays.
    eq_.reserve(static_cast<std::size_t>(cfg_.numCores) *
                    cfg_.core.maxOutstanding +
                64);

    mm_ = std::make_unique<DramSystem>(eq_, cfg_.mainMemory);
    if (cfg_.remote.enabled)
        remote_ = std::make_unique<RemoteMemory>(
            eq_, cfg_.remote, cfg_.mainMemory.peakGBps());
    deriveDapConfig();
    buildPolicy();
    buildMsCache();
    if (remote_) {
        ms_->setRemote(remote_.get());
        // Static Eq 4 split for policies without their own remote
        // credit machinery: the remote pool's bandwidth share of the
        // combined lower tier. DapPolicy overrides the router, so the
        // fraction is inert there.
        const double b_mm = cfg_.mainMemory.peakAccessesPerCpuCycle();
        const double b_rem = remote_->peakAccessesPerCpuCycle();
        policy_->setRemoteFraction(b_rem / (b_mm + b_rem));
    }
    l3_ = std::make_unique<L3Cache>(eq_, cfg_.l3, *ms_);

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        AccessGenerator *gen = gens_[i].get();
        prefetchers_.push_back(
            std::make_unique<StridePrefetcher>(cfg_.prefetch));
        StridePrefetcher *pf = prefetchers_.back().get();
        auto fetch = [gen](TraceRequest &out) { return gen->next(out); };
        auto issue = [this, pf](Addr a, bool w,
                                EventQueue::Callback done) {
            if (!w) {
                // Demand reads train the stride prefetcher; prefetches
                // are injected into the L3 as non-blocking reads.
                pfScratch_.clear();
                pf->observe(a, pfScratch_);
                for (Addr p : pfScratch_)
                    l3_->access(p, false, nullptr);
            }
            l3_->access(a, w, std::move(done));
        };
        cores_.push_back(std::make_unique<RobCore>(
            eq_, cfg_.core, i, std::move(fetch), std::move(issue)));
    }

    setupObservability();
}

System::~System() = default;

void
System::deriveDapConfig()
{
    if (cfg_.dapExplicit)
        return;
    cfg_.dap.mmPeakAccPerCycle =
        cfg_.mainMemory.peakAccessesPerCpuCycle();
    cfg_.dap.msPeakAccPerCycle = msPeakAccPerCycle(cfg_);
    if (remote_)
        cfg_.dap.remotePeakAccPerCycle =
            remote_->peakAccessesPerCpuCycle();
    cfg_.dap.windowCycles = cfg_.windowCycles;
    switch (cfg_.arch) {
      case MsArch::Sectored:
        cfg_.dap.arch = DapConfig::Arch::Sectored;
        break;
      case MsArch::Alloy:
        cfg_.dap.arch = DapConfig::Arch::Alloy;
        break;
      case MsArch::Edram:
        cfg_.dap.arch = DapConfig::Arch::Edram;
        cfg_.dap.msWritePeakAccPerCycle =
            cfg_.edram.writeChannels.peakAccessesPerCpuCycle();
        break;
      case MsArch::None:
        break;
    }
}

void
System::buildPolicy()
{
    switch (cfg_.policy) {
      case PolicyKind::Baseline:
        policy_ = std::make_unique<BaselinePolicy>();
        break;
      case PolicyKind::Dap:
        policy_ = std::make_unique<DapPolicy>(cfg_.dap);
        break;
      case PolicyKind::Sbd:
        cfg_.sbd.writeThroughOnly = false;
        policy_ = std::make_unique<SbdPolicy>(cfg_.sbd);
        break;
      case PolicyKind::SbdWt:
        cfg_.sbd.writeThroughOnly = true;
        policy_ = std::make_unique<SbdPolicy>(cfg_.sbd);
        break;
      case PolicyKind::Batman: {
        if (!cfg_.batmanExplicit) {
            switch (cfg_.arch) {
              case MsArch::Sectored:
                cfg_.batman.numSets = cfg_.sectored.numSets();
                break;
              case MsArch::Alloy:
                cfg_.batman.numSets = cfg_.alloy.numSets();
                break;
              case MsArch::Edram:
                cfg_.batman.numSets = cfg_.edram.numSets();
                break;
              case MsArch::None:
                break;
            }
            const double bms = msPeakAccPerCycle(cfg_);
            const double bmm =
                cfg_.mainMemory.peakAccessesPerCpuCycle();
            cfg_.batman.targetHitRate =
                1.0 - bwmodel::optimalMemoryFraction(bms, bmm);
        }
        policy_ = std::make_unique<BatmanPolicy>(cfg_.batman);
        break;
      }
      case PolicyKind::Bear:
        policy_ = std::make_unique<BearPolicy>(cfg_.bear);
        break;
    }
}

void
System::buildMsCache()
{
    switch (cfg_.arch) {
      case MsArch::Sectored:
        ms_ = std::make_unique<SectoredDramCache>(eq_, *mm_, *policy_,
                                                  cfg_.sectored);
        break;
      case MsArch::Alloy:
        ms_ = std::make_unique<AlloyCache>(eq_, *mm_, *policy_,
                                           cfg_.alloy);
        break;
      case MsArch::Edram:
        ms_ = std::make_unique<EdramCache>(eq_, *mm_, *policy_,
                                           cfg_.edram);
        break;
      case MsArch::None:
        ms_ = std::make_unique<NullMsCache>(eq_, *mm_, *policy_);
        break;
    }
}

DapPolicy *
System::dapPolicy()
{
    return dynamic_cast<DapPolicy *>(policy_.get());
}

void
System::setupObservability()
{
    if (!cfg_.obs.anyEnabled())
        return;
    obs_ = std::make_unique<obs::Observability>(cfg_.obs, eq_);

    if (obs::ChromeTraceWriter *ct = obs_->chromeTrace()) {
        eq_.setDispatchHook(ct);
        mm_->setBusTrace(ct, "mainMemory");
        if (remote_)
            remote_->setBusTrace(ct, "remote");
        if (auto *sc = dynamic_cast<SectoredDramCache *>(ms_.get()))
            sc->array().setBusTrace(ct, "msArray");
        if (auto *ac = dynamic_cast<AlloyCache *>(ms_.get()))
            ac->array().setBusTrace(ct, "msArray");
        if (auto *ec = dynamic_cast<EdramCache *>(ms_.get())) {
            ec->readArray().setBusTrace(ct, "msReadArray");
            ec->writeArray().setBusTrace(ct, "msWriteArray");
        }
    }

    if (obs_->dapTrace())
        if (DapPolicy *dap = dapPolicy())
            dap->setTraceSink(obs_->dapTrace());

    // Per-tenant traffic attribution (workload MixComposer runs).
    const auto tenants = tenantViews();
    if (obs_->dapTrace()) {
        for (const auto &t : tenants) {
            const auto &members = t.second;
            obs_->dapTrace()->addProbe(t.first + ".reads", [this,
                                                            members] {
                std::uint64_t sum = 0;
                for (std::uint32_t i : members)
                    sum += cores_[i]->readsIssued.value();
                return sum;
            });
            obs_->dapTrace()->addProbe(t.first + ".writes", [this,
                                                             members] {
                std::uint64_t sum = 0;
                for (std::uint32_t i : members)
                    sum += cores_[i]->writesIssued.value();
                return sum;
            });
        }
    }

    if (!cfg_.obs.samplingEnabled())
        return;
    obs::Sampler &smp = obs_->sampler();

    StatGroup &l3g = obs_->makeGroup("l3");
    l3g.addCounter("hits", &l3_->hits);
    l3g.addCounter("misses", &l3_->misses);
    l3g.addCounter("writebacks", &l3_->writebacksToMs);

    StatGroup &msg = obs_->makeGroup("ms");
    msg.addCounter("readHits", &ms_->readHits);
    msg.addCounter("readMisses", &ms_->readMisses);
    msg.addCounter("writeHits", &ms_->writeHits);
    msg.addCounter("writeMisses", &ms_->writeMisses);
    msg.addCounter("fills", &ms_->fills);
    msg.addCounter("fillsBypassed", &ms_->fillsBypassed);
    msg.addCounter("writesBypassed", &ms_->writesBypassed);
    msg.addCounter("forcedReadMisses", &ms_->forcedReadMisses);
    msg.addCounter("speculativeReads", &ms_->speculativeReads);
    msg.addCounter("dirtyWritebacks", &ms_->dirtyWritebacks);
    smp.addGroup(&l3g);
    smp.addGroup(&msg);

    if (remote_) {
        StatGroup &rg = obs_->makeGroup("remote");
        rg.addCounter("reads", &remote_->reads);
        rg.addCounter("writes", &remote_->writes);
        smp.addGroup(&rg);
        smp.addColumn("remote.busUtilization", [this] {
            return remote_->busUtilization(eq_.now());
        });
        smp.addColumn("remote.queuePeakDepth", [this] {
            return static_cast<double>(remote_->queuePeakDepth());
        });
    }

    if (DapPolicy *dap = dapPolicy()) {
        StatGroup &dg = obs_->makeGroup("dap");
        dg.addCounter("fwbApplied", &dap->fwbApplied);
        dg.addCounter("wbApplied", &dap->wbApplied);
        dg.addCounter("ifrmApplied", &dap->ifrmApplied);
        dg.addCounter("sfrmApplied", &dap->sfrmApplied);
        dg.addCounter("wtApplied", &dap->writeThroughApplied);
        if (dap->config().remoteEnabled())
            dg.addCounter("remoteApplied", &dap->remoteApplied);
        dg.addCounter("windowsPartitioned", &dap->windowsPartitioned);
        dg.addCounter("windowsTotal", &dap->windowsTotal);
        smp.addGroup(&dg);
        smp.addColumn("dap.fwbCredits", [dap] {
            return static_cast<double>(dap->fwbCredits());
        });
        smp.addColumn("dap.wbCredits", [dap] {
            return static_cast<double>(dap->wbCredits());
        });
        smp.addColumn("dap.ifrmCredits", [dap] {
            return static_cast<double>(dap->ifrmCredits());
        });
        smp.addColumn("dap.sfrmCredits", [dap] {
            return static_cast<double>(dap->sfrmCredits());
        });
        smp.addColumn("dap.wtCredits", [dap] {
            return static_cast<double>(dap->wtCredits());
        });
        if (dap->config().remoteEnabled())
            smp.addColumn("dap.remoteCredits", [dap] {
                return static_cast<double>(dap->remoteCredits());
            });
    }

    smp.addColumn("sim.events", [this] {
        return static_cast<double>(eq_.executed());
    });
    smp.addColumn("cores.ipc", [this] {
        double sum = 0.0;
        const Tick now = eq_.now();
        for (const auto &c : cores_)
            sum += c->finished() ? c->finishIpc() : c->ipcAt(now);
        return sum;
    });
    smp.addColumn("ms.hitRatio",
                  [this] { return ms_->hitRatio(); });
    smp.addColumn("ms.mmCasFraction",
                  [this] { return ms_->mainMemoryCasFraction(); });
    smp.addColumn("mainMemory.casReads", [this] {
        return static_cast<double>(mm_->casReads());
    });
    smp.addColumn("mainMemory.casWrites", [this] {
        return static_cast<double>(mm_->casWrites());
    });
    smp.addColumn("mainMemory.rowHits", [this] {
        return static_cast<double>(mm_->rowHits());
    });
    smp.addColumn("mainMemory.rowMisses", [this] {
        return static_cast<double>(mm_->rowMisses());
    });

    for (const auto &t : tenants) {
        const auto &members = t.second;
        smp.addColumn("tenant." + t.first + ".reads", [this, members] {
            double sum = 0.0;
            for (std::uint32_t i : members)
                sum += static_cast<double>(
                    cores_[i]->readsIssued.value());
            return sum;
        });
        smp.addColumn("tenant." + t.first + ".writes", [this, members] {
            double sum = 0.0;
            for (std::uint32_t i : members)
                sum += static_cast<double>(
                    cores_[i]->writesIssued.value());
            return sum;
        });
        smp.addColumn("tenant." + t.first + ".ipc", [this, members] {
            double sum = 0.0;
            const Tick now = eq_.now();
            for (std::uint32_t i : members) {
                const RobCore &c = *cores_[i];
                sum += c.finished() ? c.finishIpc() : c.ipcAt(now);
            }
            return sum;
        });
    }
}

std::vector<std::pair<std::string, std::vector<std::uint32_t>>>
System::tenantViews() const
{
    std::vector<std::pair<std::string, std::vector<std::uint32_t>>> v;
    const auto &ct = cfg_.obs.coreTenants;
    if (ct.empty())
        return v;
    if (ct.size() != cfg_.numCores)
        fatal("obs: coreTenants has " + std::to_string(ct.size()) +
              " entries for " + std::to_string(cfg_.numCores) +
              " cores");
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        auto it = std::find_if(v.begin(), v.end(), [&](const auto &t) {
            return t.first == ct[i];
        });
        if (it == v.end())
            v.push_back({ct[i], {i}});
        else
            it->second.push_back(i);
    }
    return v;
}

bool
System::allCoresFinished() const
{
    for (const auto &c : cores_)
        if (!c->finished())
            return false;
    return true;
}

void
System::warmup(std::uint64_t accesses_per_core)
{
    TraceRequest req;
    for (std::uint64_t n = 0; n < accesses_per_core; ++n) {
        for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
            if (gens_[i]->next(req))
                l3_->warmTouch(req.addr, req.isWrite);
        }
    }
    // Warm-up must not leak into the reported predictor statistics.
    if (auto *sc = dynamic_cast<SectoredDramCache *>(ms_.get())) {
        sc->tagCache().hits.reset();
        sc->tagCache().misses.reset();
        sc->tagCache().writebacks.reset();
    }
    if (auto *ac = dynamic_cast<AlloyCache *>(ms_.get())) {
        ac->dbc().hits.reset();
        ac->dbc().misses.reset();
    }
}

namespace
{

void
dumpDram(std::ostream &os, const std::string &name, DramSystem &mem,
         Tick elapsed)
{
    os << name << ".casReads " << mem.casReads() << '\n';
    os << name << ".casWrites " << mem.casWrites() << '\n';
    os << name << ".rowHits " << mem.rowHits() << '\n';
    os << name << ".rowMisses " << mem.rowMisses() << '\n';
    os << name << ".meanReadLatencyNs "
       << mem.meanReadLatency() / 1000.0 << '\n';
    os << name << ".busUtilization " << mem.busUtilization(elapsed)
       << '\n';
    os << name << ".deliveredGBps "
       << (elapsed ? static_cast<double>(mem.dataBytes()) /
                         (static_cast<double>(elapsed) / kPsPerSecond) /
                         1e9
                   : 0.0)
       << '\n';
}

} // namespace

void
System::dumpStats(std::ostream &os)
{
    const Tick elapsed = eq_.now();
    os << "sim.ticks " << elapsed << '\n';
    os << "sim.cycles " << elapsed / kCpuPeriodPs << '\n';
    os << "sim.events " << eq_.executed() << '\n';
    os << "sim.eventsPeakPending " << eq_.peakPending() << '\n';

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        RobCore &c = *cores_[i];
        const std::string n = "core" + std::to_string(i);
        os << n << ".ipc "
           << (c.finished() ? c.finishIpc() : c.ipcAt(elapsed)) << '\n';
        os << n << ".reads " << c.readsIssued.value() << '\n';
        os << n << ".writes " << c.writesIssued.value() << '\n';
        os << n << ".meanReadLatencyNs "
           << c.readLatency.mean() / 1000.0 << '\n';
    }

    // Per-tenant aggregates (only for MixComposer-attributed runs, so
    // classic runs keep their exact historical row set).
    for (const auto &t : tenantViews()) {
        const std::string n = "tenant." + t.first;
        double ipc = 0.0;
        std::uint64_t reads = 0, writes = 0;
        for (std::uint32_t i : t.second) {
            const RobCore &c = *cores_[i];
            ipc += c.finished() ? c.finishIpc() : c.ipcAt(elapsed);
            reads += c.readsIssued.value();
            writes += c.writesIssued.value();
        }
        os << n << ".cores " << t.second.size() << '\n';
        os << n << ".ipc " << ipc << '\n';
        os << n << ".reads " << reads << '\n';
        os << n << ".writes " << writes << '\n';
    }

    os << "l3.hits " << l3_->hits.value() << '\n';
    os << "l3.misses " << l3_->misses.value() << '\n';
    os << "l3.writebacks " << l3_->writebacksToMs.value() << '\n';
    os << "l3.meanReadMissLatencyNs "
       << l3_->meanReadMissLatency() / 1000.0 << '\n';

    os << "ms.readHits " << ms_->readHits.value() << '\n';
    os << "ms.readMisses " << ms_->readMisses.value() << '\n';
    os << "ms.writeHits " << ms_->writeHits.value() << '\n';
    os << "ms.writeMisses " << ms_->writeMisses.value() << '\n';
    os << "ms.hitRatio " << ms_->hitRatio() << '\n';
    os << "ms.fills " << ms_->fills.value() << '\n';
    os << "ms.fillsBypassed " << ms_->fillsBypassed.value() << '\n';
    os << "ms.writesBypassed " << ms_->writesBypassed.value() << '\n';
    os << "ms.forcedReadMisses " << ms_->forcedReadMisses.value()
       << '\n';
    os << "ms.speculativeReads " << ms_->speculativeReads.value()
       << '\n';
    os << "ms.sectorEvictions " << ms_->sectorEvictions.value() << '\n';
    os << "ms.dirtyWritebacks " << ms_->dirtyWritebacks.value() << '\n';
    os << "ms.mmCasFraction " << ms_->mainMemoryCasFraction() << '\n';

    if (auto *sc = dynamic_cast<SectoredDramCache *>(ms_.get())) {
        os << "ms.tagCache.missRatio " << sc->tagCache().missRatio()
           << '\n';
        dumpDram(os, "msArray", sc->array(), elapsed);
    }
    if (auto *ac = dynamic_cast<AlloyCache *>(ms_.get()))
        dumpDram(os, "msArray", ac->array(), elapsed);
    if (auto *ec = dynamic_cast<EdramCache *>(ms_.get())) {
        dumpDram(os, "msReadArray", ec->readArray(), elapsed);
        dumpDram(os, "msWriteArray", ec->writeArray(), elapsed);
    }
    dumpDram(os, "mainMemory", *mm_, elapsed);

    if (remote_) {
        os << "remote.reads " << remote_->reads.value() << '\n';
        os << "remote.writes " << remote_->writes.value() << '\n';
        os << "remote.meanReadLatencyNs "
           << remote_->meanReadLatency() / 1000.0 << '\n';
        os << "remote.busUtilization "
           << remote_->busUtilization(elapsed) << '\n';
        os << "remote.deliveredGBps "
           << (elapsed ? static_cast<double>(remote_->dataBytes()) /
                             (static_cast<double>(elapsed) /
                              kPsPerSecond) /
                             1e9
                       : 0.0)
           << '\n';
        os << "remote.queuePeakDepth " << remote_->queuePeakDepth()
           << '\n';
    }

    if (DapPolicy *dap = dapPolicy()) {
        os << "dap.fwbApplied " << dap->fwbApplied.value() << '\n';
        os << "dap.wbApplied " << dap->wbApplied.value() << '\n';
        os << "dap.ifrmApplied " << dap->ifrmApplied.value() << '\n';
        os << "dap.sfrmApplied " << dap->sfrmApplied.value() << '\n';
        if (dap->config().remoteEnabled())
            os << "dap.remoteApplied " << dap->remoteApplied.value()
               << '\n';
        os << "dap.windowsPartitioned "
           << dap->windowsPartitioned.value() << '\n';
        os << "dap.windowsTotal " << dap->windowsTotal.value() << '\n';
    }
}

void
System::save(ckpt::Serializer &s) const
{
    // The only pending events at tick 0 are the construction-time ones
    // (staggered refresh, when enabled), which a freshly built
    // identical System reproduces exactly; everything else would carry
    // closures we cannot serialize.
    if (eq_.now() != 0 || eq_.executed() != 0)
        throw ckpt::CkptError(
            "ckpt: checkpoints must be taken at tick 0, before run()");

    s.beginSection("meta");
    s.u64(eq_.pending());
    // Trailing marker present only in 3-tier configurations (2-tier
    // layout unchanged): restore() probes for it to refuse a tier
    // mismatch up-front with a clear message.
    if (remote_)
        s.boolean(true);
    s.endSection();

    s.beginSection("gens");
    s.u64(gens_.size());
    for (const auto &g : gens_)
        g->save(s);
    s.endSection();

    s.beginSection("cores");
    s.u64(cores_.size());
    for (const auto &c : cores_)
        c->save(s);
    s.endSection();

    s.beginSection("prefetchers");
    s.u64(prefetchers_.size());
    for (const auto &p : prefetchers_)
        p->save(s);
    s.endSection();

    s.beginSection("l3");
    l3_->save(s);
    s.endSection();

    s.beginSection("ms");
    ms_->save(s);
    s.endSection();

    s.beginSection("mm");
    mm_->save(s);
    s.endSection();

    // Present only in 3-tier configurations so 2-tier checkpoints keep
    // their exact historical layout.
    if (remote_) {
        s.beginSection("remote");
        remote_->save(s);
        s.endSection();
    }

    // Last, so a fork-restore into a different policy can skip it.
    s.beginSection("policy");
    policy_->save(s);
    s.endSection();
}

void
System::restore(ckpt::Deserializer &d, bool skip_policy)
{
    if (eq_.now() != 0 || eq_.executed() != 0)
        throw ckpt::CkptError(
            "ckpt: restore requires a freshly constructed system");

    d.enterSection("meta");
    if (d.u64() != eq_.pending())
        throw ckpt::CkptError(
            "ckpt: pending-event count mismatch (the checkpoint was "
            "taken under a different DRAM refresh configuration)");
    const bool ckpt_has_remote =
        d.sectionRemaining() > 0 && d.boolean();
    if (remote_ && !ckpt_has_remote)
        throw ckpt::CkptError(
            "ckpt: checkpoint has no remote-tier section (it was "
            "taken with the remote tier disabled); it cannot seed a "
            "3-tier configuration");
    if (!remote_ && ckpt_has_remote)
        throw ckpt::CkptError(
            "ckpt: checkpoint carries a remote-tier section but this "
            "configuration has the remote tier disabled");
    d.leaveSection();

    d.enterSection("gens");
    if (d.u64() != gens_.size())
        throw ckpt::CkptError("ckpt: generator count mismatch");
    for (auto &g : gens_)
        g->restore(d);
    d.leaveSection();

    d.enterSection("cores");
    if (d.u64() != cores_.size())
        throw ckpt::CkptError("ckpt: core count mismatch");
    for (auto &c : cores_)
        c->restore(d);
    d.leaveSection();

    d.enterSection("prefetchers");
    if (d.u64() != prefetchers_.size())
        throw ckpt::CkptError("ckpt: prefetcher count mismatch");
    for (auto &p : prefetchers_)
        p->restore(d);
    d.leaveSection();

    d.enterSection("l3");
    l3_->restore(d);
    d.leaveSection();

    d.enterSection("ms");
    ms_->restore(d);
    d.leaveSection();

    d.enterSection("mm");
    mm_->restore(d);
    d.leaveSection();

    if (remote_) {
        try {
            d.enterSection("remote");
        } catch (const ckpt::CkptError &) {
            throw ckpt::CkptError(
                "ckpt: checkpoint has no remote-tier section (it was "
                "taken with the remote tier disabled); it cannot seed "
                "a 3-tier configuration");
        }
        remote_->restore(d);
        d.leaveSection();
    }

    if (skip_policy) {
        // Post-warmup policy state equals a fresh policy's (warmTouch
        // never consults the policy), so the fork keeps its own.
        if (d.skipSection() != "policy")
            throw ckpt::CkptError("ckpt: expected trailing policy section");
    } else {
        d.enterSection("policy");
        policy_->restore(d);
        d.leaveSection();
    }
}

void
System::startRun()
{
    // Sampling starts here rather than at construction so checkpoint
    // save/restore (tick 0, construction-time events only) still sees
    // the pending-event count a freshly built System reproduces.
    if (obs_)
        obs_->startSampling(eq_);
    ms_->startWindows(cfg_.windowCycles);
    for (auto &c : cores_)
        c->start();
}

void
System::finishRun()
{
    ms_->stopWindows();
    if (obs_)
        obs_->sampler().stop();
}

void
System::run(Tick max_ticks)
{
    startRun();
    eq_.runUntil([this] { return allCoresFinished(); }, max_ticks);
    finishRun();
}

void
System::runDetailedUntilRetired(std::uint64_t target_per_core,
                                Tick max_ticks)
{
    eq_.runUntil(
        [this, target_per_core] {
            for (const auto &c : cores_)
                if (c->retiredInstructions() < target_per_core)
                    return false;
            return true;
        },
        max_ticks);
}

System::FastForwardPull
System::fastForward(std::uint64_t instr_per_core)
{
    FastForwardPull out;
    out.instrPerCore.assign(cfg_.numCores, 0);
    TraceRequest req;
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        std::uint64_t done = 0;
        while (done < instr_per_core && gens_[i]->next(req)) {
            // Each record occupies its gap plus the memory op itself,
            // matching RobCore's fetch accounting.
            done += req.instrGap + 1;
            if (req.isWrite)
                ++out.writes;
            else
                ++out.reads;
            const L3Cache::WarmOutcome o =
                l3_->warmTouch(req.addr, req.isWrite);
            if (o.l3Hit)
                ++out.l3Hits;
            else
                ++out.l3Misses;
            if (o.msRead) {
                ++out.msReads;
                if (o.msHit)
                    ++out.msHits;
            }
            if (o.msWriteback)
                ++out.msWritebacks;
        }
        out.instrPerCore[i] = done;
        out.instr += done;
    }
    return out;
}

System::SourceSnapshot
System::sourceSnapshot() const
{
    SourceSnapshot out;
    for (const auto &c : cores_)
        out.retired += c->retiredInstructions();
    if (auto *sc = dynamic_cast<SectoredDramCache *>(ms_.get())) {
        out.msReads = sc->array().casReads();
        out.msWrites = sc->array().casWrites();
    } else if (auto *ac = dynamic_cast<AlloyCache *>(ms_.get())) {
        out.msReads = ac->array().casReads();
        out.msWrites = ac->array().casWrites();
    } else if (auto *ec = dynamic_cast<EdramCache *>(ms_.get())) {
        out.msReads = ec->readArray().casOps();
        out.msWrites = ec->writeArray().casOps();
    }
    out.mmReads = mm_->casReads();
    out.mmWrites = mm_->casWrites();
    if (remote_) {
        out.remReads = remote_->reads.value();
        out.remWrites = remote_->writes.value();
    }
    return out;
}

void
System::creditFastForward(const fastfwd::FastForwardChunk &ff)
{
    ms_->creditFastForward(ff.msReads, ff.msWrites);
    mm_->creditFastForward(ff.mmReads, ff.mmWrites);
    if (remote_)
        remote_->creditFastForward(ff.remReads, ff.remWrites);
}

void
System::warmPolicyWindow(const WindowCounters &modeled)
{
    ms_->warmPolicyWindow(modeled);
}

} // namespace dapsim
