/**
 * @file
 * Full-system assembly: cores -> shared L3 -> memory-side cache ->
 * DDR main memory, with a pluggable partitioning policy.
 */

#ifndef DAPSIM_SIM_SYSTEM_HH
#define DAPSIM_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cpu/rob_core.hh"
#include "cpu/stride_prefetcher.hh"
#include "dap/analytic_engine.hh"
#include "dap/dap_controller.hh"
#include "dram/presets.hh"
#include "memside/alloy_cache.hh"
#include "memside/edram_cache.hh"
#include "memside/remote_memory.hh"
#include "memside/sectored_dram_cache.hh"
#include "obs/obs_config.hh"
#include "policies/batman.hh"
#include "policies/bear.hh"
#include "policies/sbd.hh"
#include "sim/fidelity.hh"
#include "sim/l3_cache.hh"
#include "trace/access_gen.hh"

namespace dapsim
{

namespace obs
{
class Observability;
} // namespace obs

/** Which memory-side cache architecture the system uses. */
enum class MsArch
{
    Sectored,
    Alloy,
    Edram,
    None, ///< main memory only (tests / reference runs)
};

/** Which partitioning policy runs on top of the MS$. */
enum class PolicyKind
{
    Baseline,
    Dap,
    Sbd,
    SbdWt,
    Batman,
    Bear,
};

/** Complete system configuration. */
struct SystemConfig
{
    std::uint32_t numCores = 8;
    CoreConfig core{};
    L3Config l3{};

    MsArch arch = MsArch::Sectored;
    SectoredDramCacheConfig sectored{};
    AlloyCacheConfig alloy{};
    EdramCacheConfig edram{};

    DramConfig mainMemory = presets::ddr4_2400();

    /** Optional third bandwidth tier (CXL/RDMA-attached remote pool);
     *  disabled by default, and bit-identical to a 2-tier system when
     *  disabled. */
    RemoteConfig remote{};

    PolicyKind policy = PolicyKind::Baseline;
    /** DAP parameters; bandwidth fields are auto-filled from the
     *  architecture configs unless dapExplicit is set. */
    DapConfig dap{};
    bool dapExplicit = false;
    SbdConfig sbd{};
    BatmanConfig batman{};
    bool batmanExplicit = false;
    BearConfig bear{};

    PrefetcherConfig prefetch{};

    /** Window length fed to MemSideCache::startWindows. */
    Cycle windowCycles = 64;

    /** Functional warm-up accesses per core before the timed run;
     *  0 selects ~2x the MS$ capacity in aggregate block touches. */
    std::uint64_t warmupAccessesPerCore = 0;

    /** Simulation fidelity (exact / sampled / analytic). Exact keeps
     *  the historical cycle-accurate path bit-identical; the other
     *  modes are driven by sim/fidelity_runner.cc. Excluded from
     *  checkpoint state hashing — the warm state is fidelity-
     *  invariant. */
    FidelityConfig fidelity{};

    /** Opt-in observability (time-series sampling, DAP tracing,
     *  Chrome trace export); all outputs default to off. Excluded
     *  from checkpoint state hashing — observers never alter
     *  simulated state. */
    obs::ObsConfig obs{};

    /** MS$ capacity in bytes for the active architecture. */
    std::uint64_t msCapacityBytes() const;
};

/** A fully wired simulated system. */
class System
{
  public:
    /**
     * @param cfg  the configuration (copied)
     * @param gens one access generator per core (cfg.numCores of them)
     */
    System(const SystemConfig &cfg,
           std::vector<AccessGeneratorPtr> gens);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Functional cache warm-up: pull @p accesses_per_core records from
     * each core's generator (round-robin) through the warm path so the
     * timed run starts from steady-state directories. Warm-up
     * perturbations to predictor statistics are reset afterwards.
     */
    void warmup(std::uint64_t accesses_per_core);

    /** Run until every core has retired its instruction target (or
     *  @p max_ticks elapses). */
    void run(Tick max_ticks = ~Tick(0) >> 1);

    /**
     * The pieces of run() factored out so the sampled-fidelity runner
     * can interleave detailed segments with analytic fast-forward:
     * startRun() arms sampling/windows and starts the cores,
     * finishRun() halts them. run() is exactly startRun() +
     * runUntil(allCoresFinished) + finishRun().
     */
    void startRun();
    void finishRun();

    /**
     * Dispatch events until every core has retired at least
     * @p target_per_core instructions (cumulative since start), or
     * @p max_ticks elapses. Cores keep their own instruction targets
     * (rate mode); this is the sampled-fidelity detailed-segment loop.
     */
    void runDetailedUntilRetired(std::uint64_t target_per_core,
                                 Tick max_ticks = ~Tick(0) >> 1);

    /** What one fastForward() call pulled through the warm path. */
    struct FastForwardPull
    {
        std::uint64_t reads = 0;        ///< demand reads pulled
        std::uint64_t writes = 0;       ///< demand writes pulled
        std::uint64_t l3Hits = 0;
        std::uint64_t l3Misses = 0;
        std::uint64_t msReads = 0;      ///< demand reads reaching the MS$
        std::uint64_t msHits = 0;       ///< ...that found their block
        std::uint64_t msWritebacks = 0; ///< dirty L3 victims to the MS$
        std::uint64_t instr = 0;        ///< aggregate instructions
        std::vector<std::uint64_t> instrPerCore;
    };

    /**
     * Analytic fast-forward: advance every core's access stream by
     * @p instr_per_core instructions *functionally* — records are
     * pulled through the L3/MS$ warm path (directories, tag cache and
     * footprint history stay in sync with where the stream now is) with
     * zero event time and zero timed statistics. The caller prices the
     * skipped interval with fastfwd::AnalyticEngine and accounts it via
     * creditFastForward(). Never called in exact fidelity.
     */
    FastForwardPull fastForward(std::uint64_t instr_per_core);

    /** Cumulative per-source access counters (sampled-fidelity window
     *  measurement; reads cheap snapshots, no stats reset). */
    struct SourceSnapshot
    {
        std::uint64_t retired = 0; ///< aggregate retired instructions
        std::uint64_t msReads = 0, msWrites = 0; ///< MS$ array CAS
        std::uint64_t mmReads = 0, mmWrites = 0; ///< DDR CAS
        std::uint64_t remReads = 0, remWrites = 0;
    };
    SourceSnapshot sourceSnapshot() const;

    /** Fast-forward bypass accounting: fold a modeled chunk's access
     *  counts into the DRAM/MS$-array/remote counters so delivered-
     *  bandwidth stats cover fast-forwarded traffic. Timing state is
     *  untouched. Never called in exact fidelity. */
    void creditFastForward(const fastfwd::FastForwardChunk &ff);

    /** Functional DAP-credit warm-up at a sampled window entry: feed
     *  the policy one modeled steady-state window so its credit state
     *  re-converges before the next detailed segment. */
    void warmPolicyWindow(const WindowCounters &modeled);

    EventQueue &eventQueue() { return eq_; }
    DramSystem &mainMemory() { return *mm_; }
    /** The remote tier, or nullptr when cfg.remote is disabled. */
    RemoteMemory *remoteMemory() { return remote_.get(); }
    MemSideCache *msCache() { return ms_.get(); }
    L3Cache &l3() { return *l3_; }
    PartitionPolicy &policy() { return *policy_; }
    RobCore &core(std::uint32_t i) { return *cores_[i]; }
    std::uint32_t numCores() const { return cfg_.numCores; }
    const SystemConfig &config() const { return cfg_; }

    /** The DAP policy, or nullptr when another policy is active. */
    DapPolicy *dapPolicy();

    /** The observability bundle, or nullptr when cfg.obs selects
     *  nothing. Tracers flush when the System is destroyed; call
     *  obs()->finish() to read outputs earlier. */
    obs::Observability *observability() { return obs_.get(); }

    /**
     * Checkpoint every stateful component (see src/ckpt/). Must be
     * called at tick 0 before run() — the quiescent point where the
     * only scheduled events are the construction-time ones a freshly
     * built identical System reproduces. Throws ckpt::CkptError
     * otherwise.
     */
    void save(ckpt::Serializer &s) const;

    /**
     * Restore component state saved by save() into this freshly
     * constructed System. With @p skip_policy the checkpoint's policy
     * section is ignored (warmup-fork: warm state is policy-invariant,
     * so a checkpoint taken under one policy seeds any other).
     * Throws ckpt::CkptError on any mismatch.
     */
    void restore(ckpt::Deserializer &d, bool skip_policy = false);

    /** Dump every component's statistics as `group.name value` rows
     *  (gem5-style stats file). */
    void dumpStats(std::ostream &os);

    bool allCoresFinished() const;

  private:
    /** Fill cfg_.dap's bandwidth fields from the architecture. */
    void deriveDapConfig();
    void buildPolicy();
    void buildMsCache();
    /** Build and attach the obs bundle selected by cfg_.obs. */
    void setupObservability();

    /** Tenant name -> member core indices, from obs.coreTenants
     *  (first-seen order; empty when attribution is off). */
    std::vector<std::pair<std::string, std::vector<std::uint32_t>>>
    tenantViews() const;

    SystemConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<DramSystem> mm_;
    std::unique_ptr<RemoteMemory> remote_;
    std::unique_ptr<PartitionPolicy> policy_;
    std::unique_ptr<MemSideCache> ms_;
    std::unique_ptr<L3Cache> l3_;
    std::vector<AccessGeneratorPtr> gens_;
    std::vector<std::unique_ptr<RobCore>> cores_;
    std::vector<std::unique_ptr<StridePrefetcher>> prefetchers_;
    /** Scratch for the per-access prefetch candidate list (the issue
     *  path runs to completion before the next access, so one buffer
     *  serves all cores without a per-read vector allocation). */
    std::vector<Addr> pfScratch_;
    /** Declared last: observers hold pointers into the components
     *  above, so they must be destroyed (and flushed) first. */
    std::unique_ptr<obs::Observability> obs_;
};

/** Peak 64B accesses/CPU-cycle of the configured MS$ (DAP's B_MS$). */
double msPeakAccPerCycle(const SystemConfig &cfg);

} // namespace dapsim

#endif // DAPSIM_SIM_SYSTEM_HH
