/**
 * @file
 * Simulation fidelity selection (`--fidelity {exact,sampled,analytic}`).
 *
 * Exact is the cycle-accurate event-driven run every result so far has
 * used and stays bit-identical to it. Sampled is SMARTS-style interval
 * sampling: short detailed windows at a configurable period, with the
 * Eq 4 analytic bandwidth model fast-forwarding the instructions in
 * between and per-run error bounds reported from the window-to-window
 * variance. Analytic skips the event loop entirely and prices the run
 * with the steady-state n-source model fed by a functional measurement
 * pass over the access streams.
 *
 * This header is dependency-free so SystemConfig can embed a
 * FidelityConfig without pulling the runner layers into every
 * component.
 */

#ifndef DAPSIM_SIM_FIDELITY_HH
#define DAPSIM_SIM_FIDELITY_HH

#include <cstdint>
#include <string>

namespace dapsim
{

/** How faithfully a run is simulated. */
enum class FidelityMode : std::uint32_t
{
    Exact = 0,    ///< cycle-accurate event-driven run (the default)
    Sampled = 1,  ///< detailed windows + analytic fast-forward
    Analytic = 2, ///< closed-form steady-state bandwidth model only
};

/** Fidelity knobs; the defaults target ~20% detailed coverage. */
struct FidelityConfig
{
    FidelityMode mode = FidelityMode::Exact;

    /** Sampled: instructions per core simulated in detail at the head
     *  of every sampling period. */
    std::uint64_t detailInstr = 2'000;

    /** Sampled: sampling period in instructions per core (detail +
     *  fast-forward). Clamped up to detailInstr. */
    std::uint64_t periodInstr = 10'000;

    /** Sampled: instructions per core at the head of each detailed
     *  window simulated in detail but excluded from the measured
     *  sample. Fast-forward drains in-flight misses, so every window
     *  re-opens with a cold pipeline; measuring that transient biases
     *  window IPC low (the classic SMARTS detailed-warm-up). Clamped
     *  to half the detailed segment so the measured window never
     *  degenerates to a handful of instructions. */
    std::uint64_t detailWarmupInstr = 1'000;

    /** Analytic: instructions per core of the functional measurement
     *  pass that derives the access mix. */
    std::uint64_t analyticInstr = 20'000;

    /** Analytic: assumed mean lower-hierarchy service latency in CPU
     *  cycles, bounding per-core MLP via Little's law. A documented
     *  coarse knob — analytic mode trades this for not simulating
     *  timing at all. */
    double analyticLatencyCycles = 120.0;

    /** Sampled: EWMA smoothing factor for the fast-forward engine's
     *  measured rates (1 = last window only). */
    double ewmaAlpha = 0.5;

    /** Reported confidence intervals never shrink below this relative
     *  floor: windows of one run are not IID samples, so the t-interval
     *  alone understates the achievable resolution. */
    double minRelCi = 0.03;

    /** Analytic: the documented relative error bound reported as the
     *  mode's "confidence" half-width. Analytic mode has no
     *  window-to-window variance to measure, so this is a calibration
     *  constant (validated by the error-bound suite), not a
     *  statistical estimate. */
    double analyticRelBound = 0.25;

    /** Analytic: sustained-over-peak derate applied to the delivered-
     *  bandwidth cap. The detailed simulator never holds every source
     *  at DAP's efficiency E simultaneously — partition fractions
     *  adapt with lag and demand arrives in bursts — so the
     *  steady-state model over-predicts saturated workloads without
     *  it. Calibrated against the error-bound suite's exact runs. */
    double analyticBwDerate = 0.8;

    bool exact() const { return mode == FidelityMode::Exact; }
};

/** Stable lowercase name of a mode ("exact", "sampled", "analytic"). */
inline const char *
fidelityModeName(FidelityMode mode)
{
    switch (mode) {
      case FidelityMode::Exact:
        return "exact";
      case FidelityMode::Sampled:
        return "sampled";
      case FidelityMode::Analytic:
        return "analytic";
    }
    return "unknown";
}

/** Parse a mode name; returns false on unknown names. */
inline bool
fidelityModeFromName(const std::string &name, FidelityMode &out)
{
    if (name == "exact") {
        out = FidelityMode::Exact;
        return true;
    }
    if (name == "sampled") {
        out = FidelityMode::Sampled;
        return true;
    }
    if (name == "analytic") {
        out = FidelityMode::Analytic;
        return true;
    }
    return false;
}

} // namespace dapsim

#endif // DAPSIM_SIM_FIDELITY_HH
