#include "dap/bandwidth_model.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/log.hh"

namespace dapsim::bwmodel
{

double
deliveredBandwidth(const std::vector<double> &bandwidths,
                   const std::vector<double> &fractions)
{
    if (bandwidths.size() != fractions.size() || bandwidths.empty())
        fatal("bwmodel: size mismatch");
    double worst = 0.0; // max of f_i / B_i
    for (std::size_t i = 0; i < bandwidths.size(); ++i) {
        if (bandwidths[i] <= 0.0)
            fatal("bwmodel: non-positive bandwidth");
        if (fractions[i] < 0.0)
            fatal("bwmodel: negative fraction");
        worst = std::max(worst, fractions[i] / bandwidths[i]);
    }
    if (worst == 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / worst;
}

std::vector<double>
optimalFractions(const std::vector<double> &bandwidths)
{
    const double total =
        std::accumulate(bandwidths.begin(), bandwidths.end(), 0.0);
    if (bandwidths.empty() || total <= 0.0)
        fatal("bwmodel: total bandwidth must be positive");
    std::vector<double> f;
    f.reserve(bandwidths.size());
    for (double b : bandwidths)
        f.push_back(b / total);
    return f;
}

double
maxDeliveredBandwidth(const std::vector<double> &bandwidths)
{
    return std::accumulate(bandwidths.begin(), bandwidths.end(), 0.0);
}

double
maxDeliveredWithInflation(const std::vector<double> &bandwidths,
                          double inflation)
{
    if (inflation < 1.0)
        fatal("bwmodel: inflation factor must be >= 1");
    return maxDeliveredBandwidth(bandwidths) / inflation;
}

double
dramCacheReadKernelBW(double hit_rate, double cache_bw, double mem_bw)
{
    // Per CPU read: cache serves h hits plus (1-h) fill writes on the
    // same bus; memory serves (1-h) misses.
    const double cache_load = 1.0; // h + (1-h)
    const double mem_load = 1.0 - hit_rate;
    const double t = std::max(cache_load / cache_bw, mem_load / mem_bw);
    return 1.0 / t;
}

double
edramReadKernelBW(double hit_rate, double cache_read_bw, double mem_bw)
{
    const double cache_load = hit_rate;
    const double mem_load = 1.0 - hit_rate;
    const double t =
        std::max(cache_load / cache_read_bw, mem_load / mem_bw);
    if (t == 0.0)
        return cache_read_bw + mem_bw;
    return 1.0 / t;
}

double
optimalMemoryFraction(double cache_bw, double mem_bw)
{
    return mem_bw / (cache_bw + mem_bw);
}

} // namespace dapsim::bwmodel
