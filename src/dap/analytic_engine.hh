/**
 * @file
 * The paper's Eq 1/2/4 bandwidth model as a fast-forward engine.
 *
 * Exact simulation prices every access; this engine instead learns the
 * steady-state access mix from short detailed windows (EWMA-smoothed
 * per-instruction rates to each bandwidth source plus the detailed
 * IPC) and prices fast-forwarded instructions in closed form: cycles
 * accrue at the smoothed measured IPC (SMARTS-style extrapolation),
 * per-source access counts at the smoothed rates, while the n-source
 * delivered-bandwidth model answers the mix-shift questions (DAP
 * credit warm-up windows, the analytic fidelity mode). Fractional cycle/access
 * remainders carry across fast-forward chunks so interval boundaries
 * never lose time, and the full engine state serializes through the
 * ckpt layer so a run interrupted mid-fast-forward resumes
 * byte-identically.
 *
 * Guarantees (property-tested in tests/test_fidelity.cc):
 *  - predicted delivered bandwidth never exceeds efficiency x sum(B_i)
 *  - predicted IPC is monotone non-increasing in offered load
 *  - with the remote source off and loads at the optimal split, the
 *    prediction degenerates to the 2-source Eq 4 answer
 *  - save/restore mid-fast-forward is byte-identical to uninterrupted
 */

#ifndef DAPSIM_DAP_ANALYTIC_ENGINE_HH
#define DAPSIM_DAP_ANALYTIC_ENGINE_HH

#include <cstdint>

#include "ckpt/serializer.hh"

namespace dapsim::fastfwd
{

/** Deltas measured over one detailed window (aggregate over cores). */
struct WindowSample
{
    std::uint64_t instr = 0;  ///< instructions retired in the window
    std::uint64_t cycles = 0; ///< CPU cycles the window spanned
    std::uint64_t msReads = 0, msWrites = 0;   ///< MS$ array CAS ops
    std::uint64_t mmReads = 0, mmWrites = 0;   ///< DDR CAS ops
    std::uint64_t remReads = 0, remWrites = 0; ///< remote transfers
};

/** One fast-forward chunk priced by the engine. */
struct FastForwardChunk
{
    std::uint64_t cycles = 0; ///< modeled CPU cycles the chunk took
    std::uint64_t msReads = 0, msWrites = 0;
    std::uint64_t mmReads = 0, mmWrites = 0;
    std::uint64_t remReads = 0, remWrites = 0;
};

/** Steady-state bandwidth model driving the fast-forward. */
class AnalyticEngine
{
  public:
    /**
     * @param b_ms       MS$ peak, 64B accesses per CPU cycle
     * @param b_mm       main-memory peak, accesses per cycle
     * @param b_remote   remote-tier peak (0 = no remote source)
     * @param efficiency achievable fraction of each peak (DAP's E)
     * @param alpha      EWMA smoothing factor in (0, 1]
     */
    AnalyticEngine(double b_ms, double b_mm, double b_remote,
                   double efficiency, double alpha);

    /** Fold one detailed window into the smoothed rates. Windows with
     *  zero instructions or cycles are ignored. */
    void observe(const WindowSample &w);

    /** True once at least one window has been observed. */
    bool ready() const { return ready_; }

    /**
     * Maximum total access rate (accesses/CPU-cycle, all sources
     * combined) sustainable at the given per-source load mix — Eq 2
     * over the efficiency-derated peaks. Never exceeds
     * efficiency x sum(B_i); with zero total load the sum cap itself
     * is returned.
     */
    double deliveredAccPerCycle(double ms_load, double mm_load,
                                double remote_load) const;

    /** Steady-state aggregate IPC: the smoothed detailed IPC capped by
     *  the bandwidth-limited IPC of the smoothed access mix. */
    double predictIpc() const;

    /** Price @p instr aggregate fast-forwarded instructions,
     *  accumulating fractional remainders across calls. */
    FastForwardChunk fastForward(std::uint64_t instr);

    // Smoothed per-instruction access rates (modeling inputs for the
    // functional DAP window warm-up).
    double msReadsPerInstr() const { return msR_; }
    double msWritesPerInstr() const { return msW_; }
    double mmReadsPerInstr() const { return mmR_; }
    double mmWritesPerInstr() const { return mmW_; }
    double remReadsPerInstr() const { return remR_; }
    double remWritesPerInstr() const { return remW_; }
    double mmPerInstr() const { return mmR_ + mmW_; }
    double remotePerInstr() const { return remR_ + remW_; }
    double detailedIpc() const { return ipcDet_; }

    /** Serialize the complete engine state (dapsim.ckpt.v1 section
     *  discipline: fixed field order, doubles as bit patterns). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

  private:
    double ewma(double prev, double next) const;

    // Configuration (not serialized: reconstructed from the run config).
    double bMs_, bMm_, bRem_, eff_, alpha_;

    // Smoothed measurements.
    bool ready_ = false;
    double ipcDet_ = 0.0; ///< detailed aggregate IPC
    double msR_ = 0.0, msW_ = 0.0; ///< accesses per instruction
    double mmR_ = 0.0, mmW_ = 0.0;
    double remR_ = 0.0, remW_ = 0.0;

    // Fractional remainders carried across fastForward() chunks.
    double remCycles_ = 0.0;
    double remMsR_ = 0.0, remMsW_ = 0.0;
    double remMmR_ = 0.0, remMmW_ = 0.0;
    double remRemR_ = 0.0, remRemW_ = 0.0;
};

} // namespace dapsim::fastfwd

#endif // DAPSIM_DAP_ANALYTIC_ENGINE_HH
