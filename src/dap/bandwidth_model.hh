/**
 * @file
 * Analytical bandwidth model of Section III (Equations 1-4).
 *
 * Models a system of n distinct, non-blocking, parallel bandwidth
 * sources serving A accesses split in fractions f_i:
 *
 *   B = 1 / max(f_1/B_1, ..., f_n/B_n) = min(B_1/f_1, ..., B_n/f_n) (Eq 1-2)
 *   max B = sum(B_i), attained at f_i = B_i / sum(B_j)              (Eq 3)
 *   with maintenance inflation C: max B = sum(B_i) / C             (Sec III)
 *
 * Also provides the closed-form delivered-bandwidth curves of the
 * Figure 1 read kernel for bidirectional DRAM-cache and split-channel
 * eDRAM-cache hierarchies.
 */

#ifndef DAPSIM_DAP_BANDWIDTH_MODEL_HH
#define DAPSIM_DAP_BANDWIDTH_MODEL_HH

#include <vector>

namespace dapsim::bwmodel
{

/** Eq 2: delivered bandwidth for per-source bandwidths and fractions. */
double deliveredBandwidth(const std::vector<double> &bandwidths,
                          const std::vector<double> &fractions);

/** Eq 3/4: the optimal fractions f_i = B_i / sum(B). */
std::vector<double> optimalFractions(const std::vector<double> &bandwidths);

/** Eq 3: maximum delivered bandwidth = sum of source bandwidths. */
double maxDeliveredBandwidth(const std::vector<double> &bandwidths);

/** Generalized bound with access-volume inflation factor C >= 1. */
double maxDeliveredWithInflation(const std::vector<double> &bandwidths,
                                 double inflation);

/**
 * Figure 1 (DRAM cache): delivered read bandwidth of a read-only kernel
 * at cache hit rate @p hit_rate, where fills from read misses share the
 * cache's single bidirectional bus.
 *
 * Cache load per read = h (hit) + (1-h) (fill) = 1; memory load = 1-h.
 */
double dramCacheReadKernelBW(double hit_rate, double cache_bw,
                             double mem_bw);

/**
 * Figure 1 (eDRAM cache): fills are absorbed by the separate write
 * channels, so the read channels carry only the h hits.
 */
double edramReadKernelBW(double hit_rate, double cache_read_bw,
                         double mem_bw);

/**
 * The optimal fraction of accesses the main memory should serve
 * (the paper's 0.27 for 38.4 vs 102.4 GB/s), per Eq 4.
 */
double optimalMemoryFraction(double cache_bw, double mem_bw);

} // namespace dapsim::bwmodel

#endif // DAPSIM_DAP_BANDWIDTH_MODEL_HH
