#include "dap/analytic_engine.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "dap/bandwidth_model.hh"

namespace dapsim::fastfwd
{

namespace
{

/** Split a fractional quantity into whole units + carried remainder. */
std::uint64_t
drain(double amount, double &remainder)
{
    const double total = amount + remainder;
    const double whole = std::floor(total);
    remainder = total - whole;
    return static_cast<std::uint64_t>(whole);
}

} // namespace

AnalyticEngine::AnalyticEngine(double b_ms, double b_mm, double b_remote,
                               double efficiency, double alpha)
    : bMs_(b_ms), bMm_(b_mm), bRem_(b_remote), eff_(efficiency),
      alpha_(alpha)
{
    if (b_mm <= 0.0)
        fatal("fastfwd: main-memory bandwidth must be positive");
    if (efficiency <= 0.0 || efficiency > 1.0)
        fatal("fastfwd: efficiency must be in (0, 1]");
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("fastfwd: EWMA alpha must be in (0, 1]");
}

double
AnalyticEngine::ewma(double prev, double next) const
{
    return ready_ ? (1.0 - alpha_) * prev + alpha_ * next : next;
}

void
AnalyticEngine::observe(const WindowSample &w)
{
    if (w.instr == 0 || w.cycles == 0)
        return;
    const double instr = static_cast<double>(w.instr);
    const double cycles = static_cast<double>(w.cycles);
    ipcDet_ = ewma(ipcDet_, instr / cycles);
    msR_ = ewma(msR_, static_cast<double>(w.msReads) / instr);
    msW_ = ewma(msW_, static_cast<double>(w.msWrites) / instr);
    mmR_ = ewma(mmR_, static_cast<double>(w.mmReads) / instr);
    mmW_ = ewma(mmW_, static_cast<double>(w.mmWrites) / instr);
    remR_ = ewma(remR_, static_cast<double>(w.remReads) / instr);
    remW_ = ewma(remW_, static_cast<double>(w.remWrites) / instr);
    ready_ = true;
}

double
AnalyticEngine::deliveredAccPerCycle(double ms_load, double mm_load,
                                     double remote_load) const
{
    // Efficiency-derated peaks of the sources this system actually
    // has. An MS$-less system (B_MS$ = 0) and a 2-tier system simply
    // drop their absent sources from the vectors.
    std::vector<double> bands;
    std::vector<double> loads;
    if (bMs_ > 0.0) {
        bands.push_back(eff_ * bMs_);
        loads.push_back(ms_load);
    }
    bands.push_back(eff_ * bMm_);
    loads.push_back(mm_load);
    if (bRem_ > 0.0) {
        bands.push_back(eff_ * bRem_);
        loads.push_back(remote_load);
    }

    const double cap = bwmodel::maxDeliveredBandwidth(bands);
    double total = 0.0;
    for (double l : loads)
        total += l;
    if (total <= 0.0)
        return cap;

    std::vector<double> fractions;
    fractions.reserve(loads.size());
    for (double l : loads)
        fractions.push_back(l / total);
    // Eq 2: delivered = min_i(B_i / f_i) = 1 / max_i(f_i / B_i);
    // since max_i(f_i/B_i) >= (sum f_i)/(sum B_i) this never exceeds
    // the sum cap.
    return std::min(cap,
                    bwmodel::deliveredBandwidth(bands, fractions));
}

double
AnalyticEngine::predictIpc() const
{
    if (!ready_)
        return 0.0;
    const double ms = msR_ + msW_;
    const double mm = mmR_ + mmW_;
    const double rem = remR_ + remW_;
    const double per_instr = ms + mm + rem;
    if (per_instr <= 0.0)
        return ipcDet_; // no memory traffic: nothing bandwidth-bound
    const double ipc_bw =
        deliveredAccPerCycle(ms, mm, rem) / per_instr;
    return std::min(ipcDet_, ipc_bw);
}

FastForwardChunk
AnalyticEngine::fastForward(std::uint64_t instr)
{
    FastForwardChunk out;
    if (instr == 0)
        return out;
    const double n = static_cast<double>(instr);
    // Price skipped cycles at the measured (smoothed) detailed IPC:
    // the access mix cannot shift mid-fast-forward, so the bandwidth
    // cap in predictIpc() could only bind when the model's derated
    // peaks underestimate what the detailed windows actually achieved
    // — a calibration artifact, not a prediction. predictIpc() stays
    // the modeling answer for mix-shift questions (DAP credit warm-up,
    // monotonicity properties). Floor at a pessimistic-but-finite
    // rate: a zero IPC would stall simulated time forever.
    const double ipc = std::max(ready_ ? ipcDet_ : predictIpc(), 1e-6);
    out.cycles = drain(n / ipc, remCycles_);
    out.msReads = drain(msR_ * n, remMsR_);
    out.msWrites = drain(msW_ * n, remMsW_);
    out.mmReads = drain(mmR_ * n, remMmR_);
    out.mmWrites = drain(mmW_ * n, remMmW_);
    out.remReads = drain(remR_ * n, remRemR_);
    out.remWrites = drain(remW_ * n, remRemW_);
    return out;
}

void
AnalyticEngine::save(ckpt::Serializer &s) const
{
    s.boolean(ready_);
    s.f64(ipcDet_);
    s.f64(msR_);
    s.f64(msW_);
    s.f64(mmR_);
    s.f64(mmW_);
    s.f64(remR_);
    s.f64(remW_);
    s.f64(remCycles_);
    s.f64(remMsR_);
    s.f64(remMsW_);
    s.f64(remMmR_);
    s.f64(remMmW_);
    s.f64(remRemR_);
    s.f64(remRemW_);
}

void
AnalyticEngine::restore(ckpt::Deserializer &d)
{
    ready_ = d.boolean();
    ipcDet_ = d.f64();
    msR_ = d.f64();
    msW_ = d.f64();
    mmR_ = d.f64();
    mmW_ = d.f64();
    remR_ = d.f64();
    remW_ = d.f64();
    remCycles_ = d.f64();
    remMsR_ = d.f64();
    remMsW_ = d.f64();
    remMmR_ = d.f64();
    remMmW_ = d.f64();
    remRemR_ = d.f64();
    remRemW_ = d.f64();
}

} // namespace dapsim::fastfwd
