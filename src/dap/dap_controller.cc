#include "dap/dap_controller.hh"

#include <cmath>

#include "common/log.hh"

namespace dapsim
{

std::int64_t
DapConfig::msAccessesPerWindow() const
{
    return static_cast<std::int64_t>(
        std::floor(efficiency * msPeakAccPerCycle *
                   static_cast<double>(windowCycles)));
}

std::int64_t
DapConfig::msWriteAccessesPerWindow() const
{
    return static_cast<std::int64_t>(
        std::floor(efficiency * msWritePeakAccPerCycle *
                   static_cast<double>(windowCycles)));
}

std::int64_t
DapConfig::mmAccessesPerWindow() const
{
    return static_cast<std::int64_t>(
        std::floor(efficiency * mmPeakAccPerCycle *
                   static_cast<double>(windowCycles)));
}

std::int64_t
DapConfig::remoteAccessesPerWindow() const
{
    return static_cast<std::int64_t>(
        std::floor(efficiency * remotePeakAccPerCycle *
                   static_cast<double>(windowCycles)));
}

FixedRatio
DapConfig::ratioK() const
{
    if (msPeakAccPerCycle <= 0.0 || mmPeakAccPerCycle <= 0.0)
        fatal("DapConfig: bandwidths must be set before use");
    if (remotePeakAccPerCycle < 0.0)
        fatal("DapConfig: remote bandwidth must be non-negative");
    // DAP-n: the MS$ is partitioned against the combined lower level;
    // how that lower level splits between DDR and remote is solved
    // separately (dap::solveRemoteSplit). With no remote tier this is
    // exactly the paper's K = B_MS$ / B_MM.
    const double lower = mmPeakAccPerCycle + remotePeakAccPerCycle;
    return FixedRatio::quantize(msPeakAccPerCycle / lower, kShift);
}

DapPolicy::DapPolicy(const DapConfig &cfg) : cfg_(cfg), k_(cfg.ratioK())
{
    if (cfg_.windowCycles == 0)
        fatal("DapPolicy: window must be non-zero");
}

void
DapPolicy::beginWindow(const WindowCounters &prev)
{
    windowsTotal.inc();
    // The solvers see the combined lower level (DDR + remote, when
    // present) as "main memory"; b_lower_w degenerates to B_MM·W·E
    // without a remote tier.
    const std::int64_t b_lower_w =
        cfg_.mmAccessesPerWindow() + cfg_.remoteAccessesPerWindow();
    switch (cfg_.arch) {
      case DapConfig::Arch::Sectored: {
        dap::SectoredInput in;
        in.aMs = static_cast<std::int64_t>(prev.aMs);
        in.aMm = static_cast<std::int64_t>(prev.aMm);
        in.readMisses = static_cast<std::int64_t>(prev.readMisses);
        in.writes = static_cast<std::int64_t>(prev.writes);
        in.cleanHits = static_cast<std::int64_t>(prev.cleanHits);
        in.bMsW = cfg_.msAccessesPerWindow();
        in.bMmW = b_lower_w;
        targets_ = dap::solveSectored(in, k_, cfg_.sfrmFactor,
                                      cfg_.targetCap);
        break;
      }
      case DapConfig::Arch::Alloy: {
        dap::AlloyInput in;
        in.aMs = static_cast<std::int64_t>(prev.aMs);
        in.aMm = static_cast<std::int64_t>(prev.aMm);
        in.cleanHits = static_cast<std::int64_t>(prev.cleanHits);
        in.bMsW = cfg_.msAccessesPerWindow();
        in.bMmW = b_lower_w;
        targets_ = dap::solveAlloy(in, k_, cfg_.sfrmFactor,
                                   cfg_.targetCap);
        break;
      }
      case DapConfig::Arch::Edram: {
        dap::EdramInput in;
        in.aMsRead = static_cast<std::int64_t>(prev.aMsRead);
        in.aMsWrite = static_cast<std::int64_t>(prev.aMsWrite);
        in.aMm = static_cast<std::int64_t>(prev.aMm);
        in.readMisses = static_cast<std::int64_t>(prev.readMisses);
        in.writes = static_cast<std::int64_t>(prev.writes);
        in.cleanHits = static_cast<std::int64_t>(prev.cleanHits);
        in.bMsReadW = cfg_.msAccessesPerWindow();
        in.bMsWriteW = cfg_.msWriteAccessesPerWindow();
        in.bMmW = b_lower_w;
        targets_ = dap::solveEdram(in, k_, cfg_.targetCap);
        break;
      }
    }

    if (targets_.active)
        windowsPartitioned.inc();

    load(fwbCredits_, cfg_.enableFwb ? targets_.nFwb : 0);
    load(wbCredits_, cfg_.enableWb ? targets_.nWb : 0);
    load(ifrmCredits_, cfg_.enableIfrm ? targets_.nIfrm : 0);
    load(sfrmCredits_, cfg_.enableSfrm ? targets_.nSfrm : 0);
    load(wtCredits_, targets_.nWriteThrough);

    if (cfg_.remoteEnabled()) {
        // DAP-n: route the remote pool its Eq 4 share of last window's
        // lower-tier demand via a credit window of its own.
        targets_.nRemote = dap::solveRemoteSplit(
            static_cast<std::int64_t>(prev.aMm),
            cfg_.mmAccessesPerWindow(), cfg_.remoteAccessesPerWindow());
        load(remoteCredits_, targets_.nRemote);
    }

    if (trace_) {
        DapWindowRecord rec;
        rec.window = windowsTotal.value();
        rec.in = prev;
        rec.targets = targets_;
        rec.fwbCredits = fwbCredits_;
        rec.wbCredits = wbCredits_;
        rec.ifrmCredits = ifrmCredits_;
        rec.sfrmCredits = sfrmCredits_;
        rec.wtCredits = wtCredits_;
        rec.fwbApplied = fwbApplied.value();
        rec.wbApplied = wbApplied.value();
        rec.ifrmApplied = ifrmApplied.value();
        rec.sfrmApplied = sfrmApplied.value();
        rec.wtApplied = writeThroughApplied.value();
        if (cfg_.remoteEnabled()) {
            rec.remoteEnabled = true;
            rec.remoteCredits = remoteCredits_;
            rec.remoteApplied = remoteApplied.value();
        }
        trace_->onWindow(rec);
    }
}

bool
DapPolicy::shouldBypassFill(Addr)
{
    if (!cfg_.enableFwb || !consume(fwbCredits_))
        return false;
    fwbApplied.inc();
    return true;
}

bool
DapPolicy::shouldBypassWrite(Addr)
{
    if (!cfg_.enableWb || !consume(wbCredits_))
        return false;
    wbApplied.inc();
    return true;
}

bool
DapPolicy::shouldForceReadMiss(Addr addr)
{
    if (!cfg_.enableIfrm)
        return false;
    // Thread-aware IFRM: spare the latency-sensitive cores' hits.
    const std::uint64_t core = addr >> 40;
    if (core < 64 && (cfg_.ifrmCoreMask & (1ULL << core)) == 0)
        return false;
    if (!consume(ifrmCredits_))
        return false;
    ifrmApplied.inc();
    return true;
}

bool
DapPolicy::shouldSpeculateToMemory(Addr)
{
    if (!cfg_.enableSfrm || !consume(sfrmCredits_))
        return false;
    sfrmApplied.inc();
    return true;
}

bool
DapPolicy::shouldWriteThrough(Addr)
{
    if (!consume(wtCredits_))
        return false;
    writeThroughApplied.inc();
    return true;
}

bool
DapPolicy::shouldRouteToRemote(Addr)
{
    if (!cfg_.remoteEnabled() || !consume(remoteCredits_))
        return false;
    remoteApplied.inc();
    return true;
}

void
DapPolicy::save(ckpt::Serializer &s) const
{
    s.i64(targets_.nFwb);
    s.i64(targets_.nWb);
    s.i64(targets_.nIfrm);
    s.i64(targets_.nSfrm);
    s.i64(targets_.nWriteThrough);
    s.boolean(targets_.active);
    s.i64(fwbCredits_);
    s.i64(wbCredits_);
    s.i64(ifrmCredits_);
    s.i64(sfrmCredits_);
    s.i64(wtCredits_);
    s.u64(fwbApplied.value());
    s.u64(wbApplied.value());
    s.u64(ifrmApplied.value());
    s.u64(sfrmApplied.value());
    s.u64(writeThroughApplied.value());
    s.u64(windowsPartitioned.value());
    s.u64(windowsTotal.value());
    // Appended only in DAP-n mode so 2-tier checkpoints keep their
    // exact historical byte layout.
    if (cfg_.remoteEnabled()) {
        s.i64(targets_.nRemote);
        s.i64(remoteCredits_);
        s.u64(remoteApplied.value());
    }
}

void
DapPolicy::restore(ckpt::Deserializer &d)
{
    targets_.nFwb = d.i64();
    targets_.nWb = d.i64();
    targets_.nIfrm = d.i64();
    targets_.nSfrm = d.i64();
    targets_.nWriteThrough = d.i64();
    targets_.active = d.boolean();
    fwbCredits_ = d.i64();
    wbCredits_ = d.i64();
    ifrmCredits_ = d.i64();
    sfrmCredits_ = d.i64();
    wtCredits_ = d.i64();
    fwbApplied.set(d.u64());
    wbApplied.set(d.u64());
    ifrmApplied.set(d.u64());
    sfrmApplied.set(d.u64());
    writeThroughApplied.set(d.u64());
    windowsPartitioned.set(d.u64());
    windowsTotal.set(d.u64());
    if (cfg_.remoteEnabled()) {
        targets_.nRemote = d.i64();
        remoteCredits_ = d.i64();
        remoteApplied.set(d.u64());
    }
}

} // namespace dapsim
