#include "dap/dap_solver.hh"

#include <algorithm>

namespace dapsim::dap
{

namespace
{

std::int64_t
clampTarget(std::int64_t v, std::int64_t hi, std::int64_t cap)
{
    return std::clamp<std::int64_t>(v, 0, std::min(hi, cap));
}

} // namespace

Targets
solveSectored(const SectoredInput &in, const FixedRatio &k,
              double sfrm_factor, std::int64_t target_cap)
{
    Targets t;
    std::int64_t adj_mm = in.aMm; // A_MM adjusted for WB and IFRM

    if (in.aMs > in.bMsW) {
        t.active = true;

        // Maximum partitioning ever needed: the demand excess
        // (Section IV-A).
        const std::int64_t max_part = in.aMs - in.bMsW;

        // Fill Write Bypass, Eq 6: N_FWB = A_MS$ - K·A_MM.
        std::int64_t n_fwb = in.aMs - k.mul(in.aMm);
        if (n_fwb <= 0) {
            // Main memory is the bottleneck: exit partitioning (no
            // bypassing, and the SFRM spare below is negative too).
            t.active = false;
            return t;
        }
        n_fwb = std::min(n_fwb, max_part);
        const bool fwb_insufficient = n_fwb > in.readMisses;
        t.nFwb = clampTarget(n_fwb, in.readMisses, target_cap);

        if (fwb_insufficient) {
            // Write Bypass, Eq 7: (1+K)·N_WB = A_MS$ - K·A_MM - R_m.
            const std::int64_t scaled =
                in.aMs - k.mul(in.aMm) - in.readMisses;
            std::int64_t n_wb = k.divByKPlusOne(scaled);
            if (n_wb > 0) {
                const bool wb_insufficient = n_wb > in.writes;
                t.nWb = clampTarget(n_wb, in.writes, target_cap);
                adj_mm += t.nWb;

                if (wb_insufficient) {
                    // IFRM, Eq 8 after adjusting for all writes
                    // bypassed: (1+K)·N_IFRM =
                    //   A_MS$ - K·(A_MM + W_m) - R_m - W_m.
                    const std::int64_t s2 =
                        in.aMs - k.mul(in.aMm + in.writes) -
                        in.readMisses - in.writes;
                    const std::int64_t n_ifrm = k.divByKPlusOne(s2);
                    t.nIfrm = clampTarget(n_ifrm, in.cleanHits,
                                          target_cap);
                    adj_mm += t.nIfrm;
                }
            }
        }
    }

    // SFRM: 0.8·(B_MM·W - A_MM - N_WB - N_IFRM), floored at zero.
    // Fig 3 computes this in its own box: SFRM is applied whenever
    // spare main-memory bandwidth exists, since issuing the read in
    // parallel with the tag fetch never adds latency — it only risks
    // wasted memory bandwidth on dirty hits (hence the 0.8 headroom).
    const std::int64_t spare = in.bMmW - adj_mm;
    if (spare > 0) {
        const auto n_sfrm = static_cast<std::int64_t>(
            sfrm_factor * static_cast<double>(spare));
        t.nSfrm = std::min(n_sfrm, target_cap);
    }
    return t;
}

Targets
solveAlloy(const AlloyInput &in, const FixedRatio &k, double wt_factor,
           std::int64_t target_cap)
{
    Targets t;
    if (in.aMs > in.bMsW) {
        // IFRM only (Eq 8 with N_WB = 0): (1+K)·N_IFRM = A_MS$ - K·A_MM.
        const std::int64_t scaled = in.aMs - k.mul(in.aMm);
        if (scaled > 0) {
            t.active = true;
            const std::int64_t max_part = in.aMs - in.bMsW;
            std::int64_t n_ifrm = k.divByKPlusOne(scaled);
            n_ifrm = std::min(n_ifrm, max_part);
            t.nIfrm = clampTarget(n_ifrm, in.cleanHits, target_cap);
        }
    }
    // Opportunistic write-through funded by residual MM bandwidth
    // keeps enough clean lines for future IFRM (Section IV-B). It only
    // pays off while partitioning is being exercised — unconditional
    // write-through is pure main-memory overhead.
    const std::int64_t spare = in.bMmW - (in.aMm + t.nIfrm);
    if (t.active && spare > 0) {
        const auto n_wt = static_cast<std::int64_t>(
            wt_factor * static_cast<double>(spare));
        t.nWriteThrough = std::min(n_wt, target_cap);
    }
    return t;
}

Targets
solveEdram(const EdramInput &in, const FixedRatio &k,
           std::int64_t target_cap)
{
    Targets t;
    const bool read_short = in.aMsRead > in.bMsReadW;
    const bool write_short = in.aMsWrite > in.bMsWriteW;
    if (!read_short && !write_short)
        return t;
    t.active = true;

    if (read_short && !write_short) {
        // Case (i), Eq 9: (1+K)·N_IFRM = A_MS$-R - K·A_MM.
        const std::int64_t scaled = in.aMsRead - k.mul(in.aMm);
        if (scaled <= 0) {
            t.active = false;
            return t;
        }
        std::int64_t n_ifrm = k.divByKPlusOne(scaled);
        n_ifrm = std::min(n_ifrm, in.aMsRead - in.bMsReadW);
        t.nIfrm = clampTarget(n_ifrm, in.cleanHits, target_cap);
        return t;
    }

    if (write_short && !read_short) {
        // Case (ii), Eq 10: N_FWB = A_MS$-W - K·A_MM.
        std::int64_t n_fwb = in.aMsWrite - k.mul(in.aMm);
        if (n_fwb <= 0) {
            t.active = false;
            return t;
        }
        n_fwb = std::min(n_fwb, in.aMsWrite - in.bMsWriteW);
        const bool insufficient = n_fwb > in.readMisses;
        t.nFwb = clampTarget(n_fwb, in.readMisses, target_cap);
        if (insufficient) {
            // Eq 11: (1+K)·N_WB = A_MS$-W - N_FWB - K·A_MM.
            const std::int64_t scaled =
                in.aMsWrite - t.nFwb - k.mul(in.aMm);
            const std::int64_t n_wb = k.divByKPlusOne(scaled);
            t.nWb = clampTarget(n_wb, in.writes, target_cap);
        }
        return t;
    }

    // Case (iii): both directions short. Eq 10 first, then the
    // simultaneous closed forms of Eq 12.
    std::int64_t n_fwb = in.aMsWrite - k.mul(in.aMm);
    if (n_fwb <= 0) {
        // A negative solution means main memory is the bottleneck:
        // exit partitioning (Section IV-A applies this rule to WB and
        // IFRM as well).
        t.active = false;
        return t;
    }
    t.nFwb = clampTarget(std::min(n_fwb, in.aMsWrite - in.bMsWriteW),
                         in.readMisses, target_cap);
    const std::int64_t adj_w = in.aMsWrite - t.nFwb;
    // (2K+1)·N_WB = (K+1)(A_MS$-W - N_FWB) - K·A_MS$-R - K·A_MM
    const std::int64_t wb_scaled = k.mulPlusOne(adj_w) -
                                   k.mul(in.aMsRead) - k.mul(in.aMm);
    t.nWb = clampTarget(k.divByTwoKPlusOne(wb_scaled), in.writes,
                        target_cap);
    // (2K+1)·N_IFRM = (K+1)·A_MS$-R - K·(A_MS$-W - N_FWB) - K·A_MM
    const std::int64_t ifrm_scaled = k.mulPlusOne(in.aMsRead) -
                                     k.mul(adj_w) - k.mul(in.aMm);
    t.nIfrm = clampTarget(k.divByTwoKPlusOne(ifrm_scaled), in.cleanHits,
                          target_cap);
    return t;
}

std::int64_t
solveRemoteSplit(std::int64_t a_lower, std::int64_t b_mm_w,
                 std::int64_t b_remote_w)
{
    if (a_lower <= 0 || b_remote_w <= 0)
        return 0;
    if (b_mm_w <= 0)
        return std::min(a_lower, b_remote_w);
    // Eq 4 inside the lower tier: f_remote = B_rem / (B_MM + B_rem),
    // so N_remote = A_lower · B_rem / (B_MM + B_rem) (rounded down),
    // never more than the remote link can actually serve this window.
    const std::int64_t n = a_lower * b_remote_w / (b_mm_w + b_remote_w);
    return std::min(n, b_remote_w);
}

} // namespace dapsim::dap
