/**
 * @file
 * The DAP policy: window-based learning + saturating credit counters.
 *
 * Each window of W CPU cycles, the controller feeds the previous
 * window's demand counters to the architecture-specific solver and
 * loads the resulting targets into four saturating credit counters
 * (paper: sixteen bytes of state in total). The MS$ consumes credits at
 * its FWB/WB/IFRM/SFRM decision points during the window.
 */

#ifndef DAPSIM_DAP_DAP_CONTROLLER_HH
#define DAPSIM_DAP_DAP_CONTROLLER_HH

#include <cstdint>

#include "common/fixed_ratio.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dap/dap_solver.hh"
#include "policies/partition_policy.hh"

namespace dapsim
{

/** DAP configuration (Section IV / Table I parameters). */
struct DapConfig
{
    /** Memory-side cache architecture the solver must match. */
    enum class Arch
    {
        Sectored,
        Alloy,
        Edram,
    };

    Arch arch = Arch::Sectored;

    /** Window length W in CPU cycles (paper default 64). */
    Cycle windowCycles = 64;

    /** Assumed bandwidth efficiency E of all sources (default 0.75). */
    double efficiency = 0.75;

    /** Peak MS$ bandwidth in 64B accesses per CPU cycle. For Alloy this
     *  must already be derated by the 2/3 TAD factor; for eDRAM it is
     *  the read-channel set. */
    double msPeakAccPerCycle = 0.0;

    /** eDRAM write-channel peak (ignored by other architectures). */
    double msWritePeakAccPerCycle = 0.0;

    /** Peak main-memory bandwidth in accesses per CPU cycle. */
    double mmPeakAccPerCycle = 0.0;

    /**
     * Peak remote-tier bandwidth in accesses per CPU cycle. Zero means
     * no remote tier; a positive value switches the solver into DAP-n
     * mode, where K compares the MS$ against the combined lower level
     * (B_MM + B_remote) and a per-window remote credit window routes
     * the remote pool its Eq 4 share of lower-tier traffic.
     */
    double remotePeakAccPerCycle = 0.0;

    /** Headroom factor for SFRM / Alloy write-through (paper: 0.8). */
    double sfrmFactor = 0.8;

    /** log2 of K's denominator (paper approximates 8/3 as 11/4). */
    unsigned kShift = 2;

    /** Saturation value of the credit counters (8-bit hardware). */
    std::int64_t creditMax = 255;

    /** Per-window cap on each computed target (paper caps N_WB at 63). */
    std::int64_t targetCap = 63;

    /** Individual technique enables (for the ablation study). */
    bool enableFwb = true;
    bool enableWb = true;
    bool enableIfrm = true;
    bool enableSfrm = true;

    /**
     * Thread-aware IFRM (Section IV-A mentions this refinement): only
     * cores whose bit is set may have their clean hits forced to main
     * memory, so latency-sensitive threads keep their cache hits.
     * Cores are identified by the per-core address-space slice
     * (addr >> 40 in this simulator's layout). Default: all cores.
     */
    std::uint64_t ifrmCoreMask = ~0ULL;

    /** Serviceable MS$ accesses per window: floor(E · B_MS$ · W). */
    std::int64_t msAccessesPerWindow() const;
    std::int64_t msWriteAccessesPerWindow() const;
    std::int64_t mmAccessesPerWindow() const;

    /** Serviceable remote accesses per window (0 without a remote
     *  tier): floor(E · B_remote · W). */
    std::int64_t remoteAccessesPerWindow() const;

    bool remoteEnabled() const { return remotePeakAccPerCycle > 0.0; }

    /** The hardware rational K = B_MS$ / B_lower, where the lower
     *  level is B_MM alone (2-source) or B_MM + B_remote (DAP-n). */
    FixedRatio ratioK() const;
};

/**
 * One per-window DAP decision record (see src/obs/ DapTrace).
 *
 * Emitted at the start of window `window` (1-based): `in` is the
 * demand measured over window-1 that fed the solver, `targets` the
 * solver's grants for this window, the credits are the counter values
 * after loading those grants, and the applied counts are cumulative —
 * the consumer diffs successive records for per-window uses.
 */
struct DapWindowRecord
{
    std::uint64_t window = 0;
    WindowCounters in;
    dap::Targets targets;
    std::int64_t fwbCredits = 0;
    std::int64_t wbCredits = 0;
    std::int64_t ifrmCredits = 0;
    std::int64_t sfrmCredits = 0;
    std::int64_t wtCredits = 0;
    std::uint64_t fwbApplied = 0;
    std::uint64_t wbApplied = 0;
    std::uint64_t ifrmApplied = 0;
    std::uint64_t sfrmApplied = 0;
    std::uint64_t wtApplied = 0;
    /** DAP-n remote routing (only populated — and only emitted by the
     *  trace — when the config has a remote tier). */
    bool remoteEnabled = false;
    std::int64_t remoteCredits = 0;
    std::uint64_t remoteApplied = 0;
};

/** Consumer of per-window DAP decision records. */
struct DapTraceSink
{
    virtual ~DapTraceSink() = default;
    virtual void onWindow(const DapWindowRecord &rec) = 0;
};

/** DAP as a pluggable partitioning policy. */
class DapPolicy final : public PartitionPolicy
{
  public:
    explicit DapPolicy(const DapConfig &cfg);

    void beginWindow(const WindowCounters &prev) override;
    bool shouldBypassFill(Addr) override;
    bool shouldBypassWrite(Addr) override;
    bool shouldForceReadMiss(Addr) override;
    bool shouldSpeculateToMemory(Addr) override;
    bool shouldWriteThrough(Addr) override;
    bool shouldRouteToRemote(Addr) override;
    const char *name() const override { return "dap"; }

    const DapConfig &config() const { return cfg_; }

    /** Targets computed for the current window (for tests/telemetry). */
    const dap::Targets &currentTargets() const { return targets_; }

    std::int64_t fwbCredits() const { return fwbCredits_; }
    std::int64_t wbCredits() const { return wbCredits_; }
    std::int64_t ifrmCredits() const { return ifrmCredits_; }
    std::int64_t sfrmCredits() const { return sfrmCredits_; }
    std::int64_t wtCredits() const { return wtCredits_; }
    std::int64_t remoteCredits() const { return remoteCredits_; }

    /** Attach (or clear) the per-window decision tracer. Costs one
     *  branch per window when null. */
    void setTraceSink(DapTraceSink *sink) { trace_ = sink; }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    // Decision counts for Fig 7.
    Counter fwbApplied;
    Counter wbApplied;
    Counter ifrmApplied;
    Counter sfrmApplied;
    Counter writeThroughApplied;
    Counter remoteApplied; ///< DAP-n accesses routed to the remote tier
    Counter windowsPartitioned;
    Counter windowsTotal;

  private:
    /** Saturating credit add. */
    void
    load(std::int64_t &credit, std::int64_t target)
    {
        credit += target;
        if (credit > cfg_.creditMax)
            credit = cfg_.creditMax;
    }

    static bool
    consume(std::int64_t &credit)
    {
        if (credit <= 0)
            return false;
        --credit;
        return true;
    }

    DapConfig cfg_;
    FixedRatio k_;
    dap::Targets targets_;
    DapTraceSink *trace_ = nullptr;

    std::int64_t fwbCredits_ = 0;
    std::int64_t wbCredits_ = 0;
    std::int64_t ifrmCredits_ = 0;
    std::int64_t sfrmCredits_ = 0;
    std::int64_t wtCredits_ = 0;
    std::int64_t remoteCredits_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_DAP_DAP_CONTROLLER_HH
