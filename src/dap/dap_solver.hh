/**
 * @file
 * Pure integer solvers for DAP's per-window partitioning targets.
 *
 * These functions implement the closed forms of Section IV for the
 * three memory-side cache architectures:
 *  - sectored DRAM cache: Fig 3 flow, Equations 5-8,
 *  - Alloy cache: Equation 8 with implicit fill bypass + write-through,
 *  - sectored eDRAM cache: Equations 9-12 (three-source cases i-iii).
 *
 * All arithmetic is integer with the hardware-friendly rational K
 * (FixedRatio), mirroring the paper's division-free (K+1)N counters.
 */

#ifndef DAPSIM_DAP_DAP_SOLVER_HH
#define DAPSIM_DAP_DAP_SOLVER_HH

#include <cstdint>

#include "common/fixed_ratio.hh"

namespace dapsim::dap
{

/** Per-window partitioning targets (credits to load). */
struct Targets
{
    std::int64_t nFwb = 0;   ///< fill write bypasses
    std::int64_t nWb = 0;    ///< write bypasses
    std::int64_t nIfrm = 0;  ///< informed forced read misses
    std::int64_t nSfrm = 0;  ///< speculative forced read misses
    std::int64_t nWriteThrough = 0; ///< Alloy opportunistic write-through
    std::int64_t nRemote = 0; ///< DAP-n: lower-tier accesses to remote
    bool active = false;     ///< partitioning invoked this window
};

/** Inputs for the single-bus (DRAM cache) solver. */
struct SectoredInput
{
    std::int64_t aMs = 0;        ///< A_MS$ observed last window
    std::int64_t aMm = 0;        ///< A_MM observed last window
    std::int64_t readMisses = 0; ///< R_m (fill candidates)
    std::int64_t writes = 0;     ///< W_m (L3 dirty evictions)
    std::int64_t cleanHits = 0;  ///< IFRM candidates
    std::int64_t bMsW = 0;       ///< serviceable MS$ accesses per window
    std::int64_t bMmW = 0;       ///< serviceable MM accesses per window
};

/**
 * Fig 3 flow for sectored DRAM caches.
 * @param k hardware rational K = B_MS$ / B_MM
 * @param sfrm_factor the 0.8 emergency-headroom factor
 * @param target_cap per-window cap on each technique (paper: 63)
 */
Targets solveSectored(const SectoredInput &in, const FixedRatio &k,
                      double sfrm_factor = 0.8,
                      std::int64_t target_cap = 63);

/** Inputs for the Alloy-cache solver. */
struct AlloyInput
{
    std::int64_t aMs = 0;
    std::int64_t aMm = 0;
    std::int64_t cleanHits = 0;  ///< DBC-known-clean read hits
    std::int64_t bMsW = 0;       ///< already derated by the 2/3 TAD bloat
    std::int64_t bMmW = 0;
};

/**
 * Alloy solver (Section IV-B): only IFRM is a metered bypass (FWB/WB
 * would cost Alloy bandwidth to invalidate/probe); residual MM
 * bandwidth funds opportunistic write-through to keep lines clean.
 */
Targets solveAlloy(const AlloyInput &in, const FixedRatio &k,
                   double wt_factor = 0.8, std::int64_t target_cap = 63);

/** Inputs for the eDRAM (three-source) solver. */
struct EdramInput
{
    std::int64_t aMsRead = 0;   ///< A_MS$-R
    std::int64_t aMsWrite = 0;  ///< A_MS$-W
    std::int64_t aMm = 0;
    std::int64_t readMisses = 0;
    std::int64_t writes = 0;
    std::int64_t cleanHits = 0;
    std::int64_t bMsReadW = 0;  ///< B_MS$-R · W
    std::int64_t bMsWriteW = 0; ///< B_MS$-W · W
    std::int64_t bMmW = 0;
};

/** eDRAM solver (Section IV-C, cases i/ii/iii, Equations 9-12). */
Targets solveEdram(const EdramInput &in, const FixedRatio &k,
                   std::int64_t target_cap = 63);

/**
 * DAP-n lower-tier split (the n-source Eq 4 applied inside the lower
 * tier): of @p a_lower accesses bound for the combined DDR + remote
 * level, route the remote pool its bandwidth-proportional share
 * a_lower · B_remote / (B_MM + B_remote), capped at the remote link's
 * per-window service capacity @p b_remote_w. Pure integer arithmetic;
 * returns 0 when either operand is degenerate (no remote bandwidth, no
 * lower-tier demand).
 */
std::int64_t solveRemoteSplit(std::int64_t a_lower, std::int64_t b_mm_w,
                              std::int64_t b_remote_w);

} // namespace dapsim::dap

#endif // DAPSIM_DAP_DAP_SOLVER_HH
