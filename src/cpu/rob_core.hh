/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * Models the properties that couple bandwidth demand to performance in
 * the paper's evaluation: a 4-wide retire stage, a 224-entry ROB that
 * lets independent misses overlap (MLP), and bounded outstanding
 * misses. The core consumes a stream of memory requests separated by
 * instruction gaps; reads block retirement until their data returns,
 * writes (L2 dirty evictions) are posted.
 *
 * When the core finishes its target instruction count it records its
 * finish time and keeps running (the paper's rate-mode methodology:
 * "threads that finish early continue to run").
 */

#ifndef DAPSIM_CPU_ROB_CORE_HH
#define DAPSIM_CPU_ROB_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "ckpt/serializer.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dapsim
{

/** One entry of the core's access trace. */
struct TraceRequest
{
    Addr addr = 0;
    bool isWrite = false;
    /** Instructions executed since the previous memory request. */
    std::uint64_t instrGap = 1;
};

/** Core configuration (Skylake-class, paper Section V). */
struct CoreConfig
{
    std::uint32_t retireWidth = 4;
    std::uint32_t robEntries = 224;
    /** Maximum outstanding read misses (MSHR-style bound). */
    std::uint32_t maxOutstanding = 40;
    /** Target instruction count before finish time is recorded. */
    std::uint64_t instructions = 1'000'000;
};

/** Trace-driven ROB/MLP core. */
class RobCore
{
  public:
    /** Pulls the next trace record; returns false when the stream ends
     *  (streams are expected to be endless for rate mode). */
    using Fetcher = std::function<bool(TraceRequest &)>;

    /** Issues a memory access to the cache hierarchy; @p done must be
     *  invoked when a read completes (ignored for writes). Bound once
     *  at construction; the completion itself is an allocation-free
     *  EventQueue::Callback. */
    using Issue =
        std::function<void(Addr, bool, EventQueue::Callback)>;

    RobCore(EventQueue &eq, const CoreConfig &cfg, std::uint32_t core_id,
            Fetcher fetch, Issue issue);

    /** Begin fetching/issuing. */
    void start();

    /** True once the target instruction count has been retired. */
    bool finished() const { return finishedAt_ != 0; }
    Tick finishTick() const { return finishedAt_; }

    /** Retired instructions (fractional accounting, floored). */
    std::uint64_t
    retiredInstructions() const
    {
        return static_cast<std::uint64_t>(retired_);
    }

    /** IPC over the interval up to the finish tick (or now). */
    double ipcAt(Tick t) const;

    /** IPC at the recorded finish time. */
    double
    finishIpc() const
    {
        return ipcAt(finishedAt_);
    }

    std::uint32_t coreId() const { return coreId_; }

    /**
     * Checkpoint retirement/fetch state (see src/ckpt/). Outstanding
     * reads hold completion closures, so save() requires an empty
     * in-flight window — true before start() has been called.
     */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    Counter wakeups;
    Counter readsIssued;
    Counter writesIssued;
    Average readLatency; ///< ticks from issue to completion

  private:
    struct Inflight
    {
        std::uint64_t instrIndex; ///< position in the instruction stream
        bool completed = false;
        Tick issuedAt = 0;
    };

    /** Advance fractional retirement up to the current tick. */
    void advanceRetirement();

    /** Issue as many trace records as the ROB/MSHR bounds allow. */
    void pump();

    /** Arrange a wakeup so a drained stream still reaches its finish
     *  instruction count (used when the trace is finite). */
    void scheduleFinishWakeup();

    /** Completion of the read at in-flight slot @p idx. */
    void readDone(std::uint64_t token);

    EventQueue &eq_;
    CoreConfig cfg_;
    std::uint32_t coreId_;
    Fetcher fetch_;
    Issue issue_;

    /** Next trace record, pre-fetched. */
    TraceRequest pending_{};
    bool pendingValid_ = false;
    bool streamEnded_ = false;

    /** Instruction index the next trace record occupies. */
    std::uint64_t fetchInstr_ = 0;

    double retired_ = 0.0;
    Tick lastRetireTick_ = 0;

    std::deque<Inflight> inflight_; ///< outstanding reads, FIFO by age
    std::uint64_t tokenBase_ = 0;   ///< token of inflight_.front()

    Tick finishedAt_ = 0;
    bool wakeupPending_ = false;
};

} // namespace dapsim

#endif // DAPSIM_CPU_ROB_CORE_HH
