/**
 * @file
 * Multi-stream stride prefetcher (paper Section V: "an aggressive
 * multi-stream stride prefetcher that prefetches into the L2 and L3
 * caches").
 *
 * Watches each core's demand-read stream, detects constant-stride
 * streams at page granularity, and emits prefetch addresses that the
 * system injects into the L3 as non-blocking reads. This is the
 * mechanism that lets streaming workloads demand the full memory-side
 * cache bandwidth despite a finite ROB.
 */

#ifndef DAPSIM_CPU_STRIDE_PREFETCHER_HH
#define DAPSIM_CPU_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dapsim
{

struct PrefetcherConfig
{
    bool enabled = true;
    std::uint32_t streams = 16;  ///< tracked concurrent streams
    std::uint32_t degree = 4;    ///< prefetches issued per trigger
    std::uint32_t distance = 4;  ///< lead distance in strides
    std::uint32_t minConfidence = 2;
};

/** Per-core stride prefetcher. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &cfg);

    /**
     * Observe a demand read and append prefetch addresses (if any)
     * to @p out. Returns the number appended.
     */
    std::size_t observe(Addr addr, std::vector<Addr> &out);

    /** Checkpoint stream table + statistics (see src/ckpt/). */
    void save(ckpt::Serializer &s) const;
    void restore(ckpt::Deserializer &d);

    Counter issued;

  private:
    struct Stream
    {
        bool valid = false;
        std::uint64_t page = 0;
        Addr lastBlock = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
    };

    PrefetcherConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t useClock_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_CPU_STRIDE_PREFETCHER_HH
