#include "cpu/stride_prefetcher.hh"

namespace dapsim
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &cfg)
    : cfg_(cfg), streams_(cfg.streams)
{
}

std::size_t
StridePrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    if (!cfg_.enabled)
        return 0;
    const std::uint64_t page = addr >> 12;
    const Addr block = blockNumber(addr);
    ++useClock_;

    Stream *s = nullptr;
    Stream *lru = &streams_[0];
    for (auto &st : streams_) {
        if (st.valid && st.page == page) {
            s = &st;
            break;
        }
        if (st.lastUse < lru->lastUse)
            lru = &st;
    }
    if (s == nullptr) {
        // Allocate a fresh stream over the LRU slot.
        *lru = Stream{};
        lru->valid = true;
        lru->page = page;
        lru->lastBlock = block;
        lru->lastUse = useClock_;
        return 0;
    }

    s->lastUse = useClock_;
    const std::int64_t stride =
        static_cast<std::int64_t>(block) -
        static_cast<std::int64_t>(s->lastBlock);
    if (stride == 0)
        return 0;
    if (stride == s->stride) {
        if (s->confidence < 8)
            ++s->confidence;
    } else {
        s->stride = stride;
        s->confidence = 1;
    }
    s->lastBlock = block;

    if (s->confidence < cfg_.minConfidence)
        return 0;

    std::size_t n = 0;
    for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(block) +
            s->stride * (cfg_.distance + d);
        if (target < 0)
            continue;
        out.push_back(static_cast<Addr>(target) << kBlockShift);
        ++n;
    }
    issued.inc(n);
    return n;
}

void
StridePrefetcher::save(ckpt::Serializer &s) const
{
    s.u64(streams_.size());
    for (const Stream &st : streams_) {
        s.boolean(st.valid);
        s.u64(st.page);
        s.u64(st.lastBlock);
        s.i64(st.stride);
        s.u32(st.confidence);
        s.u64(st.lastUse);
    }
    s.u64(useClock_);
    s.u64(issued.value());
}

void
StridePrefetcher::restore(ckpt::Deserializer &d)
{
    if (d.u64() != streams_.size())
        throw ckpt::CkptError("ckpt: stride stream count mismatch");
    for (Stream &st : streams_) {
        st.valid = d.boolean();
        st.page = d.u64();
        st.lastBlock = d.u64();
        st.stride = d.i64();
        st.confidence = d.u32();
        st.lastUse = d.u64();
    }
    useClock_ = d.u64();
    issued.set(d.u64());
}

} // namespace dapsim
