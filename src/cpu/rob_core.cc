#include "cpu/rob_core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dapsim
{

RobCore::RobCore(EventQueue &eq, const CoreConfig &cfg,
                 std::uint32_t core_id, Fetcher fetch, Issue issue)
    : eq_(eq), cfg_(cfg), coreId_(core_id), fetch_(std::move(fetch)),
      issue_(std::move(issue))
{
    if (cfg_.retireWidth == 0 || cfg_.robEntries == 0 ||
        cfg_.maxOutstanding == 0)
        fatal("RobCore: zero-sized resources");
}

void
RobCore::start()
{
    lastRetireTick_ = eq_.now();
    pump();
}

double
RobCore::ipcAt(Tick t) const
{
    if (t == 0)
        return 0.0;
    const double cycles = static_cast<double>(t) / kCpuPeriodPs;
    const double instr = finished() && t >= finishedAt_
                             ? static_cast<double>(cfg_.instructions)
                             : retired_;
    return instr / cycles;
}

void
RobCore::advanceRetirement()
{
    const Tick now = eq_.now();
    if (now <= lastRetireTick_)
        return;

    // Retirement ceiling: the oldest incomplete read blocks everything
    // younger; otherwise the stream position bounds what exists.
    double limit = 0.0;
    bool blocked_by_read = false;
    for (const Inflight &f : inflight_) {
        if (!f.completed) {
            limit = static_cast<double>(f.instrIndex);
            blocked_by_read = true;
            break;
        }
    }
    if (!blocked_by_read) {
        limit = static_cast<double>(
            pendingValid_ ? fetchInstr_ + pending_.instrGap
                          : fetchInstr_);
    }

    const double budget = static_cast<double>(now - lastRetireTick_) *
                          cfg_.retireWidth / kCpuPeriodPs;
    const double target = retired_ + budget;
    const double new_retired = target < limit ? target : limit;
    lastRetireTick_ = now;

    if (finishedAt_ == 0 &&
        new_retired >= static_cast<double>(cfg_.instructions)) {
        // Interpolate the exact finish tick within this advance.
        const double excess =
            new_retired - static_cast<double>(cfg_.instructions);
        const auto back = static_cast<Tick>(
            excess * kCpuPeriodPs / cfg_.retireWidth);
        finishedAt_ = now > back ? now - back : now;
    }
    retired_ = new_retired;
}

void
RobCore::readDone(std::uint64_t token)
{
    if (token < tokenBase_)
        panic("RobCore: stale read token");
    Inflight &f = inflight_[token - tokenBase_];
    f.completed = true;
    readLatency.sample(static_cast<double>(eq_.now() - f.issuedAt));
    // Pop completed entries from the front so the oldest incomplete
    // read is always discoverable.
    while (!inflight_.empty() && inflight_.front().completed) {
        inflight_.pop_front();
        ++tokenBase_;
    }
    advanceRetirement();
    pump();
}

void
RobCore::scheduleFinishWakeup()
{
    // A finite stream (tests) can leave retirement with no event to
    // materialize it: wake up when the target would be reached.
    if (finishedAt_ != 0 || wakeupPending_)
        return;
    for (const Inflight &f : inflight_)
        if (!f.completed)
            return; // a read completion will re-pump
    // Retirement can only reach what the stream produced; a stream
    // that ended short of the target must not spin wakeups forever.
    const double reachable = std::min(
        static_cast<double>(cfg_.instructions),
        static_cast<double>(fetchInstr_));
    const double needed = reachable - retired_;
    if (needed <= 0)
        return;
    wakeupPending_ = true;
    const auto dt = static_cast<Tick>(
        needed * kCpuPeriodPs / cfg_.retireWidth) + 1;
    eq_.scheduleAfter(dt, [this] {
        wakeupPending_ = false;
        pump();
    });
}

void
RobCore::pump()
{
    advanceRetirement();

    while (true) {
        if (!pendingValid_) {
            if (streamEnded_ || !fetch_(pending_)) {
                streamEnded_ = true;
                scheduleFinishWakeup();
                return;
            }
            pendingValid_ = true;
        }

        const std::uint64_t instr_index =
            fetchInstr_ + pending_.instrGap;

        // ROB window: the request must be within robEntries of the
        // oldest unretired instruction.
        if (static_cast<double>(instr_index) >=
            retired_ + cfg_.robEntries) {
            // Blocked on ROB space. If a read is outstanding, its
            // completion re-pumps; otherwise retirement is advancing
            // freely and we can compute the unblock time.
            bool any_incomplete = false;
            for (const Inflight &f : inflight_)
                if (!f.completed) {
                    any_incomplete = true;
                    break;
                }
            if (!any_incomplete && !wakeupPending_) {
                const double needed =
                    static_cast<double>(instr_index) -
                    cfg_.robEntries + 1 - retired_;
                const auto dt = static_cast<Tick>(
                    needed * kCpuPeriodPs / cfg_.retireWidth) + 1;
                wakeupPending_ = true;
                wakeups.inc();
                eq_.scheduleAfter(dt, [this] {
                    wakeupPending_ = false;
                    pump();
                });
            }
            return;
        }

        if (!pending_.isWrite &&
            inflight_.size() >= cfg_.maxOutstanding) {
            return; // MSHR-bound; a completion will re-pump
        }

        // Issue.
        fetchInstr_ = instr_index + 1; // the memory op itself
        const TraceRequest req = pending_;
        pendingValid_ = false;

        if (req.isWrite) {
            writesIssued.inc();
            issue_(req.addr, true, nullptr);
            continue;
        }

        readsIssued.inc();
        inflight_.push_back(
            Inflight{instr_index, false, eq_.now()});
        const std::uint64_t token =
            tokenBase_ + inflight_.size() - 1;
        issue_(req.addr, false, [this, token] { readDone(token); });
    }
}

void
RobCore::save(ckpt::Serializer &s) const
{
    if (!inflight_.empty() || wakeupPending_)
        throw ckpt::CkptError(
            "ckpt: core not quiescent (reads in flight); checkpoints "
            "must be taken before the timed run");
    s.u64(pending_.addr);
    s.boolean(pending_.isWrite);
    s.u64(pending_.instrGap);
    s.boolean(pendingValid_);
    s.boolean(streamEnded_);
    s.u64(fetchInstr_);
    s.f64(retired_);
    s.u64(lastRetireTick_);
    s.u64(tokenBase_);
    s.u64(finishedAt_);
    s.u64(wakeups.value());
    s.u64(readsIssued.value());
    s.u64(writesIssued.value());
    s.f64(readLatency.sum());
    s.u64(readLatency.count());
}

void
RobCore::restore(ckpt::Deserializer &d)
{
    if (!inflight_.empty() || wakeupPending_)
        throw ckpt::CkptError(
            "ckpt: cannot restore into a core with reads in flight");
    pending_.addr = d.u64();
    pending_.isWrite = d.boolean();
    pending_.instrGap = d.u64();
    pendingValid_ = d.boolean();
    streamEnded_ = d.boolean();
    fetchInstr_ = d.u64();
    retired_ = d.f64();
    lastRetireTick_ = d.u64();
    tokenBase_ = d.u64();
    finishedAt_ = d.u64();
    wakeups.set(d.u64());
    readsIssued.set(d.u64());
    writesIssued.set(d.u64());
    const double rl_sum = d.f64();
    readLatency.restoreState(rl_sum, d.u64());
}

} // namespace dapsim
