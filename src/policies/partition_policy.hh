/**
 * @file
 * Access-partitioning policy interface.
 *
 * The memory-side cache controllers consult a PartitionPolicy at the
 * paper's decision points: on fills (FWB), incoming L3 dirty evictions
 * (WB), known-clean read hits (IFRM), read arrival before the tag state
 * is known (SFRM), plus the hooks needed by the comparison proposals
 * (set disabling for BATMAN, latency steering for SBD, fill filtering
 * for BEAR). DAP, SBD, SBD-WT, BATMAN, BEAR and the no-op baseline all
 * implement this interface, so every MS$ architecture can run under any
 * policy.
 */

#ifndef DAPSIM_POLICIES_PARTITION_POLICY_HH
#define DAPSIM_POLICIES_PARTITION_POLICY_HH

#include <cstdint>
#include <vector>

#include "ckpt/serializer.hh"
#include "common/types.hh"

namespace dapsim
{

/** Per-window demand observed by the MS$ controller (previous window). */
struct WindowCounters
{
    /** Accesses demanded of the MS$ (A_MS$): hits, fills, writes,
     *  metadata fetches/updates and dirty-eviction reads. */
    std::uint64_t aMs = 0;
    /** Read-channel demand (eDRAM split channels). */
    std::uint64_t aMsRead = 0;
    /** Write-channel demand (eDRAM split channels). */
    std::uint64_t aMsWrite = 0;
    /** Accesses to the main memory (A_MM). */
    std::uint64_t aMm = 0;
    /** Read misses observed (== fill candidates, R_m). */
    std::uint64_t readMisses = 0;
    /** Writes (L3 dirty evictions) to the MS$ (W_m). */
    std::uint64_t writes = 0;
    /** Read hits to clean lines (IFRM candidates). */
    std::uint64_t cleanHits = 0;
    /** Demand lookups and hits (BATMAN's hit-rate tracking). */
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    /** Lower-tier accesses served by the remote pool instead of DDR
     *  (subset of aMm; only meaningful with a remote tier present). */
    std::uint64_t aRemote = 0;
};

/** Queue/latency snapshot for latency-based steering (SBD). */
struct SteerInfo
{
    double expectedCacheLatency = 0.0; ///< ticks
    double expectedMemLatency = 0.0;   ///< ticks
    bool predictedHit = true;
    bool pageInDirtyList = false;
};

/** Base class: the no-op baseline keeps every default. */
class PartitionPolicy
{
  public:
    virtual ~PartitionPolicy() = default;

    /** Called every W CPU cycles with the previous window's demand. */
    virtual void beginWindow(const WindowCounters &) {}

    /** FWB: drop this incoming read-miss fill? */
    virtual bool shouldBypassFill(Addr) { return false; }

    /** WB: steer this incoming L3 dirty eviction to main memory? */
    virtual bool shouldBypassWrite(Addr) { return false; }

    /** IFRM: serve this known-clean read hit from main memory? */
    virtual bool shouldForceReadMiss(Addr) { return false; }

    /** SFRM: issue this read to main memory before tag state is known? */
    virtual bool shouldSpeculateToMemory(Addr) { return false; }

    /** Opportunistic write-through (Alloy DAP, SBD clean-page mode). */
    virtual bool shouldWriteThrough(Addr) { return false; }

    /** BATMAN: is this MS$ set disabled? */
    virtual bool isSetDisabled(std::uint64_t) { return false; }

    /** SBD: steer this access to main memory based on latency? */
    virtual bool steerToMemory(Addr, const SteerInfo &) { return false; }

    /** BEAR: bypass this fill based on reuse prediction? */
    virtual bool shouldBypassFillForReuse(Addr) { return false; }

    /** Notification: a write to page was observed (SBD dirty list). */
    virtual void noteWrite(Addr) {}

    /** Notification: read resolved as hit/miss (BEAR reuse training). */
    virtual void noteReadOutcome(Addr, bool /*hit*/) {}

    /**
     * SBD: pages that fell out of the Dirty List and must be cleaned.
     * Pulled by the MS$ once per window; the MS$ performs the cleaning
     * (reading dirty blocks out and writing them to main memory).
     */
    virtual std::vector<Addr> collectCleaningRequests() { return {}; }

    /**
     * BATMAN: sets that were just disabled and must be flushed. Pulled
     * by the MS$ once per window.
     */
    virtual std::vector<std::uint64_t> collectSetsToFlush() { return {}; }

    /**
     * Tiered lower level: serve this main-memory-bound access from the
     * remote pool instead of DDR? Consulted by the MS$ on every
     * lower-tier access when a remote tier exists. The default
     * interleaves deterministically at the configured remote fraction
     * (the static Eq 4 optimum for the lower tier); DAP overrides it
     * with per-window credits.
     */
    virtual bool
    shouldRouteToRemote(Addr)
    {
        if (remoteNum_ == 0)
            return false;
        remoteAccum_ += remoteNum_;
        if (remoteAccum_ >= kRemoteDen) {
            remoteAccum_ -= kRemoteDen;
            return true;
        }
        return false;
    }

    /**
     * Set the fraction of lower-tier accesses the default router sends
     * remotely (quantized to 1/1024ths; clamped to [0,1]). Not part of
     * the checkpoint: it is re-derived from the configuration, and the
     * interleave accumulator is always zero at the tick-0 snapshot
     * point (warm-up never consults the policy).
     */
    void
    setRemoteFraction(double fraction)
    {
        if (fraction < 0.0)
            fraction = 0.0;
        if (fraction > 1.0)
            fraction = 1.0;
        remoteNum_ =
            static_cast<std::uint64_t>(fraction * kRemoteDen + 0.5);
    }

    virtual const char *name() const { return "baseline"; }

    /**
     * Checkpoint learned state (see src/ckpt/). Stateless policies keep
     * the empty default; stateful ones serialize everything that feeds
     * future decisions so a restored run is bit-identical.
     */
    virtual void save(ckpt::Serializer &) const {}
    virtual void restore(ckpt::Deserializer &) {}

  private:
    static constexpr std::uint64_t kRemoteDen = 1024;
    std::uint64_t remoteNum_ = 0;   ///< remote share in 1024ths
    std::uint64_t remoteAccum_ = 0; ///< Bresenham-style accumulator
};

/** The optimized baseline: tag cache only, no partitioning. */
class BaselinePolicy final : public PartitionPolicy
{
  public:
    const char *name() const override { return "baseline"; }
};

} // namespace dapsim

#endif // DAPSIM_POLICIES_PARTITION_POLICY_HH
