/**
 * @file
 * Self-Balancing Dispatch (SBD), Sim et al. MICRO 2012, as described in
 * the paper's Section VI-A.4.
 *
 * SBD steers each access to the source with the lowest expected service
 * latency. To make steering safe, it tracks highly-written 4 KB pages
 * in a Dirty List (backed by a bank of counting Bloom filters); pages
 * outside the list operate in write-through mode so their memory copy
 * is always current. When a page falls out of the Dirty List it must be
 * force-cleaned (dirty blocks read out of the cache and written to
 * memory) — the behaviour responsible for SBD's losses on large caches.
 * The SBD-WT variant skips forced cleaning and relies on write-through
 * alone.
 */

#ifndef DAPSIM_POLICIES_SBD_HH
#define DAPSIM_POLICIES_SBD_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/bloom.hh"
#include "common/stats.hh"
#include "policies/partition_policy.hh"

namespace dapsim
{

struct SbdConfig
{
    std::uint64_t pageBytes = 4 * kKiB;
    std::size_t dirtyListCapacity = 512;
    std::size_t bloomBuckets = 8192;
    unsigned bloomHashes = 3;
    /** Write-frequency estimate required to enter the Dirty List. */
    std::uint8_t writeThreshold = 4;
    /** Halve the Bloom counters every this many windows. */
    std::uint64_t decayWindows = 4096;
    /** SBD-WT: no forced cleaning when a page leaves the Dirty List. */
    bool writeThroughOnly = false;
};

/** SBD / SBD-WT policy. */
class SbdPolicy final : public PartitionPolicy
{
  public:
    explicit SbdPolicy(const SbdConfig &cfg);

    void beginWindow(const WindowCounters &) override;
    bool steerToMemory(Addr addr, const SteerInfo &info) override;
    bool shouldWriteThrough(Addr addr) override;
    void noteWrite(Addr addr) override;
    std::vector<Addr> collectCleaningRequests() override;

    const char *
    name() const override
    {
        return cfg_.writeThroughOnly ? "sbd-wt" : "sbd";
    }

    bool inDirtyList(Addr addr) const;
    std::size_t dirtyListSize() const { return dirtyMap_.size(); }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    Counter steersToMemory;
    Counter pagesCleaned;

  private:
    std::uint64_t pageOf(Addr a) const { return a / cfg_.pageBytes; }

    /** Insert a page; evicts the LRU page when at capacity. */
    void insertDirtyPage(std::uint64_t page);

    SbdConfig cfg_;
    CountingBloom bloom_;

    // LRU Dirty List: list front = most recent.
    std::list<std::uint64_t> dirtyLru_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator> dirtyMap_;

    std::vector<Addr> pendingCleans_;
    std::uint64_t windowCount_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_POLICIES_SBD_HH
