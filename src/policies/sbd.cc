#include "policies/sbd.hh"

#include <iterator>

namespace dapsim
{

SbdPolicy::SbdPolicy(const SbdConfig &cfg)
    : cfg_(cfg), bloom_(cfg.bloomBuckets, cfg.bloomHashes)
{
}

bool
SbdPolicy::inDirtyList(Addr addr) const
{
    return dirtyMap_.find(pageOf(addr)) != dirtyMap_.end();
}

void
SbdPolicy::insertDirtyPage(std::uint64_t page)
{
    auto it = dirtyMap_.find(page);
    if (it != dirtyMap_.end()) {
        dirtyLru_.splice(dirtyLru_.begin(), dirtyLru_, it->second);
        return;
    }
    if (dirtyMap_.size() >= cfg_.dirtyListCapacity) {
        const std::uint64_t victim = dirtyLru_.back();
        dirtyLru_.pop_back();
        dirtyMap_.erase(victim);
        if (!cfg_.writeThroughOnly) {
            // The page is no longer guaranteed clean in memory: force
            // a cleaning pass (SBD's expensive maintenance).
            pendingCleans_.push_back(victim * cfg_.pageBytes);
            pagesCleaned.inc();
        }
    }
    dirtyLru_.push_front(page);
    dirtyMap_[page] = dirtyLru_.begin();
}

void
SbdPolicy::noteWrite(Addr addr)
{
    const std::uint64_t page = pageOf(addr);
    bloom_.insert(page);
    if (bloom_.estimate(page) >= cfg_.writeThreshold)
        insertDirtyPage(page);
}

bool
SbdPolicy::shouldWriteThrough(Addr addr)
{
    // Pages outside the Dirty List are operated write-through so their
    // main-memory copy stays current and reads can be steered freely.
    return !inDirtyList(addr);
}

bool
SbdPolicy::steerToMemory(Addr addr, const SteerInfo &info)
{
    if (inDirtyList(addr))
        return false; // dirty pages must be served by the cache
    bool steer;
    if (!info.predictedHit)
        steer = true; // expected miss: go straight to memory
    else
        steer = info.expectedMemLatency < info.expectedCacheLatency;
    if (steer)
        steersToMemory.inc();
    return steer;
}

void
SbdPolicy::beginWindow(const WindowCounters &)
{
    if (++windowCount_ % cfg_.decayWindows == 0) {
        // Cheap decay: rebuild the filter from the Dirty List so stale
        // write activity ages out.
        bloom_.clear();
        for (std::uint64_t page : dirtyLru_)
            for (std::uint8_t i = 0; i < cfg_.writeThreshold; ++i)
                bloom_.insert(page);
    }
}

std::vector<Addr>
SbdPolicy::collectCleaningRequests()
{
    std::vector<Addr> out;
    out.swap(pendingCleans_);
    return out;
}

void
SbdPolicy::save(ckpt::Serializer &s) const
{
    bloom_.save(s);
    s.u64(dirtyLru_.size());
    for (std::uint64_t page : dirtyLru_)
        s.u64(page);
    s.u64(pendingCleans_.size());
    for (Addr a : pendingCleans_)
        s.u64(a);
    s.u64(windowCount_);
    s.u64(steersToMemory.value());
    s.u64(pagesCleaned.value());
}

void
SbdPolicy::restore(ckpt::Deserializer &d)
{
    bloom_.restore(d);
    dirtyLru_.clear();
    dirtyMap_.clear();
    const std::uint64_t pages = d.u64();
    for (std::uint64_t i = 0; i < pages; ++i) {
        dirtyLru_.push_back(d.u64());
        dirtyMap_[dirtyLru_.back()] = std::prev(dirtyLru_.end());
    }
    pendingCleans_.clear();
    const std::uint64_t cleans = d.u64();
    pendingCleans_.reserve(cleans);
    for (std::uint64_t i = 0; i < cleans; ++i)
        pendingCleans_.push_back(d.u64());
    windowCount_ = d.u64();
    steersToMemory.set(d.u64());
    pagesCleaned.set(d.u64());
}

} // namespace dapsim
