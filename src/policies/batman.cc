#include "policies/batman.hh"

#include <algorithm>

namespace dapsim
{

BatmanPolicy::BatmanPolicy(const BatmanConfig &cfg) : cfg_(cfg) {}

std::uint64_t
BatmanPolicy::rankOf(std::uint64_t set) const
{
    // A multiplicative hash spreads the disabled sets across the index
    // space (the paper notes contiguous disabling would miss the
    // active region even more often).
    return (set * 0x9e3779b97f4a7c15ULL) % cfg_.numSets;
}

bool
BatmanPolicy::isSetDisabled(std::uint64_t set)
{
    return rankOf(set) < disabled_;
}

void
BatmanPolicy::beginWindow(const WindowCounters &w)
{
    epochLookups_ += w.lookups;
    epochHits_ += w.hits;
    if (++windowCount_ % cfg_.epochWindows != 0)
        return;
    if (epochLookups_ == 0)
        return;

    const double hit_rate = static_cast<double>(epochHits_) /
                            static_cast<double>(epochLookups_);
    epochLookups_ = 0;
    epochHits_ = 0;

    const auto step = static_cast<std::uint64_t>(
        std::max<double>(1.0, cfg_.stepFraction * cfg_.numSets));
    const auto max_disabled = static_cast<std::uint64_t>(
        cfg_.maxDisabledFraction * cfg_.numSets);

    if (hit_rate > cfg_.targetHitRate + cfg_.hysteresis &&
        disabled_ + step <= max_disabled) {
        // Too many hits: disable more sets (they must be flushed).
        for (std::uint64_t s = 0; s < cfg_.numSets; ++s)
            if (rankOf(s) >= disabled_ && rankOf(s) < disabled_ + step)
                pendingFlush_.push_back(s);
        disabled_ += step;
        adjustmentsUp.inc();
    } else if (hit_rate < cfg_.targetHitRate - cfg_.hysteresis &&
               disabled_ > 0) {
        disabled_ = disabled_ > step ? disabled_ - step : 0;
        adjustmentsDown.inc();
    }
}

std::vector<std::uint64_t>
BatmanPolicy::collectSetsToFlush()
{
    std::vector<std::uint64_t> out;
    out.swap(pendingFlush_);
    return out;
}

void
BatmanPolicy::save(ckpt::Serializer &s) const
{
    s.u64(disabled_);
    s.u64(epochLookups_);
    s.u64(epochHits_);
    s.u64(windowCount_);
    s.u64(pendingFlush_.size());
    for (std::uint64_t set : pendingFlush_)
        s.u64(set);
    s.u64(adjustmentsUp.value());
    s.u64(adjustmentsDown.value());
}

void
BatmanPolicy::restore(ckpt::Deserializer &d)
{
    disabled_ = d.u64();
    epochLookups_ = d.u64();
    epochHits_ = d.u64();
    windowCount_ = d.u64();
    pendingFlush_.clear();
    const std::uint64_t flushes = d.u64();
    pendingFlush_.reserve(flushes);
    for (std::uint64_t i = 0; i < flushes; ++i)
        pendingFlush_.push_back(d.u64());
    adjustmentsUp.set(d.u64());
    adjustmentsDown.set(d.u64());
}

} // namespace dapsim
