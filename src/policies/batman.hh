/**
 * @file
 * BATMAN: Bandwidth-Aware Tiered-Memory Management (Chou, Jaleel,
 * Qureshi; TR-CARET-2015-01), as described in the paper's
 * Section VI-A.4.
 *
 * BATMAN observes the MS$ hit rate and disables cache sets whenever the
 * hit rate exceeds the target dictated by the bandwidth ratio
 * (B_MS$ / (B_MS$ + B_MM)); accesses to disabled sets are served by
 * main memory. Disabling a set flushes its dirty contents. Sets are
 * re-enabled when the hit rate falls below target.
 */

#ifndef DAPSIM_POLICIES_BATMAN_HH
#define DAPSIM_POLICIES_BATMAN_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "policies/partition_policy.hh"

namespace dapsim
{

struct BatmanConfig
{
    /** Total sets of the MS$ this policy manages. */
    std::uint64_t numSets = 4096;
    /** Target hit rate = B_MS$ / (B_MS$ + B_MM) (paper: ~0.73). */
    double targetHitRate = 0.73;
    double hysteresis = 0.04;
    /** Evaluate and adjust every this many windows. */
    std::uint64_t epochWindows = 2048;
    /** Sets toggled per adjustment, as a fraction of all sets. */
    double stepFraction = 1.0 / 128.0;
    /** Maximum fraction of sets that may be disabled. */
    double maxDisabledFraction = 0.25;
};

/** BATMAN policy. */
class BatmanPolicy final : public PartitionPolicy
{
  public:
    explicit BatmanPolicy(const BatmanConfig &cfg);

    void beginWindow(const WindowCounters &w) override;
    bool isSetDisabled(std::uint64_t set) override;
    std::vector<std::uint64_t> collectSetsToFlush() override;
    const char *name() const override { return "batman"; }

    std::uint64_t disabledSets() const { return disabled_; }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    Counter adjustmentsUp;
    Counter adjustmentsDown;

  private:
    /** Hash-spread rank of a set in the disable order. */
    std::uint64_t rankOf(std::uint64_t set) const;

    BatmanConfig cfg_;
    std::uint64_t disabled_ = 0;
    std::uint64_t epochLookups_ = 0;
    std::uint64_t epochHits_ = 0;
    std::uint64_t windowCount_ = 0;
    std::vector<std::uint64_t> pendingFlush_;
};

} // namespace dapsim

#endif // DAPSIM_POLICIES_BATMAN_HH
