/**
 * @file
 * BEAR: Bandwidth-Efficient ARchitecture for DRAM caches (Chou, Jaleel,
 * Qureshi, ISCA 2015) — the Alloy-cache baseline improvement the paper
 * compares DAP against in Section VI-B.
 *
 * We model BEAR's two bandwidth-saving mechanisms that matter at this
 * abstraction level:
 *  - the DRAM-cache presence bit in the L3 that lets dirty evictions
 *    skip the TAD fetch (enabled via AlloyCacheConfig::presenceBit and
 *    also used by the paper's DAP configuration), and
 *  - Bandwidth-Aware Bypass: fills to regions whose lines historically
 *    see no reuse are probabilistically bypassed, preserving hit rate
 *    while cutting fill bandwidth.
 */

#ifndef DAPSIM_POLICIES_BEAR_HH
#define DAPSIM_POLICIES_BEAR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "policies/partition_policy.hh"

namespace dapsim
{

struct BearConfig
{
    std::size_t reuseTableEntries = 4096;
    /** Region granularity for reuse tracking (log2 bytes). */
    unsigned regionShift = 12;
    /** Bypass probability when the region shows no reuse. */
    double bypassProbability = 0.9;
    std::uint64_t rngSeed = 0xbea7;
};

/** BEAR policy (pairs with AlloyCache). */
class BearPolicy final : public PartitionPolicy
{
  public:
    explicit BearPolicy(const BearConfig &cfg);

    bool shouldBypassFillForReuse(Addr addr) override;
    void noteReadOutcome(Addr addr, bool hit) override;
    const char *name() const override { return "bear"; }

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    Counter bypasses;

  private:
    std::size_t indexOf(Addr addr) const;

    BearConfig cfg_;
    /** 2-bit reuse confidence per region; >= 2 means "fills pay off". */
    std::vector<std::uint8_t> reuse_;
    Rng rng_;
};

} // namespace dapsim

#endif // DAPSIM_POLICIES_BEAR_HH
