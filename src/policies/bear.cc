#include "policies/bear.hh"

namespace dapsim
{

BearPolicy::BearPolicy(const BearConfig &cfg)
    : cfg_(cfg), reuse_(cfg.reuseTableEntries, 2), rng_(cfg.rngSeed)
{
}

std::size_t
BearPolicy::indexOf(Addr addr) const
{
    const std::uint64_t region = addr >> cfg_.regionShift;
    return static_cast<std::size_t>(
        (region * 0x9e3779b97f4a7c15ULL) >> 32) % reuse_.size();
}

void
BearPolicy::noteReadOutcome(Addr addr, bool hit)
{
    std::uint8_t &c = reuse_[indexOf(addr)];
    if (hit) {
        if (c < 3)
            ++c;
    } else if (c > 0) {
        --c;
    }
}

bool
BearPolicy::shouldBypassFillForReuse(Addr addr)
{
    if (reuse_[indexOf(addr)] >= 2)
        return false; // region shows reuse: keep filling
    if (!rng_.chance(cfg_.bypassProbability))
        return false;
    bypasses.inc();
    return true;
}

void
BearPolicy::save(ckpt::Serializer &s) const
{
    s.bytes(reuse_.data(), reuse_.size());
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(bypasses.value());
}

void
BearPolicy::restore(ckpt::Deserializer &d)
{
    const std::vector<std::uint8_t> reuse = d.bytes();
    if (reuse.size() != reuse_.size())
        throw ckpt::CkptError("ckpt: BEAR reuse table size mismatch");
    reuse_ = reuse;
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    bypasses.set(d.u64());
}

} // namespace dapsim
