/**
 * @file
 * Trace-file access generator.
 *
 * Lets users drive the simulator from recorded traces instead of the
 * synthetic generators. The format is deliberately simple and
 * tool-friendly — one record per line:
 *
 *     <instr_gap> <r|w> <hex_address>
 *
 * Lines starting with '#' are comments. The stream loops at EOF so
 * rate-mode runs never starve (the paper's "threads that finish early
 * continue to run" methodology needs endless streams).
 */

#ifndef DAPSIM_TRACE_TRACE_FILE_HH
#define DAPSIM_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/access_gen.hh"

namespace dapsim
{

/** Replays a parsed trace, looping at the end. */
class TraceFileGenerator final : public AccessGenerator
{
  public:
    /**
     * Parse @p path; fatal() on malformed records or an empty trace.
     * @param base address offset added to every record (per-core
     *             address-space slicing)
     */
    explicit TraceFileGenerator(const std::string &path, Addr base = 0);

    /** Build from in-memory records (tests, programmatic traces). */
    TraceFileGenerator(std::vector<TraceRequest> records, Addr base = 0);

    bool next(TraceRequest &out) override;

    void
    save(ckpt::Serializer &s) const override
    {
        s.u64(pos_);
        s.u64(loops_);
    }

    void
    restore(ckpt::Deserializer &d) override
    {
        pos_ = d.u64();
        loops_ = d.u64();
        if (pos_ >= records_.size())
            throw ckpt::CkptError("ckpt: trace cursor past end of trace");
    }

    std::size_t records() const { return records_.size(); }
    std::uint64_t loops() const { return loops_; }

    /**
     * Parse one record line; returns false for comments/blank lines,
     * fatal() on malformed input (naming 1-based @p line_no when
     * nonzero). Addresses must parse fully as hex and fit a 64-bit
     * Addr; overflowing or negative values are rejected rather than
     * wrapped. Exposed for tests and tools.
     */
    static bool parseLine(const std::string &line, TraceRequest &out,
                          std::size_t line_no = 0);

  private:
    std::vector<TraceRequest> records_;
    Addr base_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

/** Write records to @p path in the trace-file format (tools, tests). */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRequest> &records);

} // namespace dapsim

#endif // DAPSIM_TRACE_TRACE_FILE_HH
