#include "trace/mixes.hh"

#include "common/rng.hh"

namespace dapsim
{

Mix
rateMix(const WorkloadProfile &w, std::uint32_t copies)
{
    Mix m;
    m.name = w.name + "-rate" + std::to_string(copies);
    m.kind = w.bandwidthSensitive ? Mix::Kind::Sensitive
                                  : Mix::Kind::Insensitive;
    for (std::uint32_t i = 0; i < copies; ++i)
        m.apps.push_back(w);
    return m;
}

std::vector<Mix>
homogeneousMixes(std::uint32_t copies)
{
    std::vector<Mix> out;
    for (const auto &w : allWorkloads())
        out.push_back(rateMix(w, copies));
    return out;
}

std::vector<Mix>
heterogeneousMixes()
{
    const auto sens = bandwidthSensitiveWorkloads();
    const auto insens = bandwidthInsensitiveWorkloads();
    Rng rng(0xda9);
    std::vector<Mix> out;

    // 13 similar-sensitivity mixes: 11 drawn from the sensitive pool,
    // 2 from the insensitive pool.
    for (int i = 0; i < 11; ++i) {
        Mix m;
        m.name = "hetS" + std::to_string(i);
        m.kind = Mix::Kind::Hetero;
        for (int c = 0; c < 8; ++c)
            m.apps.push_back(sens[rng.below(sens.size())]);
        out.push_back(std::move(m));
    }
    for (int i = 0; i < 2; ++i) {
        Mix m;
        m.name = "hetI" + std::to_string(i);
        m.kind = Mix::Kind::Hetero;
        for (int c = 0; c < 8; ++c)
            m.apps.push_back(insens[rng.below(insens.size())]);
        out.push_back(std::move(m));
    }

    // 14 dissimilar mixes: half sensitive, half insensitive apps.
    for (int i = 0; i < 14; ++i) {
        Mix m;
        m.name = "hetD" + std::to_string(i);
        m.kind = Mix::Kind::Hetero;
        for (int c = 0; c < 4; ++c)
            m.apps.push_back(sens[rng.below(sens.size())]);
        for (int c = 0; c < 4; ++c)
            m.apps.push_back(insens[rng.below(insens.size())]);
        out.push_back(std::move(m));
    }
    return out;
}

std::vector<Mix>
allMixes()
{
    std::vector<Mix> out;
    for (const auto &w : allWorkloads())
        if (w.bandwidthSensitive)
            out.push_back(rateMix(w, 8));
    for (const auto &w : allWorkloads())
        if (!w.bandwidthSensitive)
            out.push_back(rateMix(w, 8));
    for (auto &m : heterogeneousMixes())
        out.push_back(std::move(m));
    return out;
}

} // namespace dapsim
