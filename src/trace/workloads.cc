#include "trace/workloads.hh"

#include "common/log.hh"
#include "workload/spec.hh"
#include "workload/spec_names.hh"

namespace dapsim
{

namespace
{

WorkloadProfile
make(const std::string &name, std::uint64_t footprint_mb, double hot_frac,
     double hot_prob, double stream_frac, double run_len,
     double write_frac, double mpki, bool sensitive)
{
    WorkloadProfile w;
    w.name = name;
    w.bandwidthSensitive = sensitive;
    w.params.footprintBytes = footprint_mb * kMiB;
    w.params.hotFraction = hot_frac;
    w.params.hotProbability = hot_prob;
    w.params.streamFraction = stream_frac;
    w.params.runLength = run_len;
    w.params.writeFraction = write_frac;
    w.params.mpki = mpki;
    return w;
}

std::vector<WorkloadProfile>
build()
{
    std::vector<WorkloadProfile> v;
    // ---- Bandwidth-sensitive (12) -------------------------------
    // Footprints sized against the 64 MB (scaled 4 GB) MS$ shared by 8
    // cores; baseline hit rates land in the paper's 80-99% band while
    // fill/miss traffic keeps the HBM bus saturated.
    // name              MB   hotF  hotP  strm  run  wr    mpki
    v.push_back(make("mcf",
                     8, 0.30, 0.75, 0.10, 2.0, 0.25, 40.0, true));
    v.push_back(make("omnetpp",
                     4, 0.50, 0.50, 0.02, 1.2, 0.30, 28.0, true));
    v.push_back(make("libquantum",
                     8, 0.10, 0.50, 0.95, 8.0, 0.15, 30.0, true));
    v.push_back(make("soplex.ref",
                     8, 0.25, 0.70, 0.60, 6.0, 0.25, 28.0, true));
    v.push_back(make("hpcg",
                     9, 0.20, 0.60, 0.80, 8.0, 0.20, 30.0, true));
    v.push_back(make("parboil-lbm",
                     8, 0.20, 0.60, 0.90, 8.0, 0.35, 35.0, true));
    v.push_back(make("astar.BigLakes",
                     6, 0.30, 0.70, 0.05, 1.4, 0.20, 22.0, true));
    v.push_back(make("bzip2.combined",
                     7, 0.30, 0.80, 0.50, 5.0, 0.30, 20.0, true));
    v.push_back(make("gcc.expr",
                     6, 0.30, 0.80, 0.50, 4.0, 0.35, 20.0, true));
    v.push_back(make("gcc.s04",
                     8, 0.25, 0.75, 0.40, 4.0, 0.40, 24.0, true));
    v.push_back(make("gobmk.score2",
                     6, 0.30, 0.80, 0.40, 3.0, 0.30, 18.0, true));
    v.push_back(make("sjeng",
                     7, 0.30, 0.75, 0.20, 2.5, 0.25, 20.0, true));
    // ---- Bandwidth-insensitive (5) ------------------------------
    v.push_back(make("milc",
                     5, 0.40, 0.85, 0.60, 6.0, 0.25, 10.0, false));
    v.push_back(make("bwaves",
                     6, 0.40, 0.85, 0.85, 8.0, 0.20, 11.0, false));
    v.push_back(make("leslie3D",
                     5, 0.40, 0.85, 0.80, 8.0, 0.25, 10.0, false));
    v.push_back(make("cactusADM",
                     4, 0.40, 0.90, 0.70, 6.0, 0.20, 8.0, false));
    v.push_back(make("parboil-histo",
                     4, 0.40, 0.90, 0.50, 4.0, 0.30, 12.0, false));
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
allWorkloads()
{
    static const std::vector<WorkloadProfile> v = build();
    return v;
}

std::vector<WorkloadProfile>
bandwidthSensitiveWorkloads()
{
    std::vector<WorkloadProfile> out;
    for (const auto &w : allWorkloads())
        if (w.bandwidthSensitive)
            out.push_back(w);
    return out;
}

std::vector<WorkloadProfile>
bandwidthInsensitiveWorkloads()
{
    std::vector<WorkloadProfile> out;
    for (const auto &w : allWorkloads())
        if (!w.bandwidthSensitive)
            out.push_back(w);
    return out;
}

const WorkloadProfile &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    std::string profiles;
    for (const auto &w : allWorkloads())
        profiles += " " + w.name;
    std::string kinds;
    for (const char *k : workload::kSpecKinds)
        kinds += std::string(" ") + k;
    fatal("unknown workload: " + name + "\n  profiles:" + profiles +
          "\n  engine specs:" + kinds +
          "  (e.g. zipf:skew=0.99,fp=64M — see trace_gen --list)");
}

AccessGeneratorPtr
makeGenerator(const WorkloadProfile &profile, std::uint32_t core_id,
              std::uint64_t seed_salt)
{
    // Workload-engine profiles carry a spec string instead of a
    // SyntheticParams block; the engine applies the same per-core
    // slice/seed policy.
    if (!profile.spec.empty())
        return workload::makeSpecGenerator(profile.spec, core_id,
                                           seed_salt);
    SyntheticParams p = profile.params;
    // Private 1 TB address slice per core; unrelated seed per core.
    p.base = static_cast<Addr>(core_id) << 40;
    p.seed = p.seed * 0x2545f4914f6cdd1dULL + core_id * 7919 + seed_salt;
    return std::make_unique<SyntheticGenerator>(p);
}

} // namespace dapsim
