/**
 * @file
 * The 17 named workload profiles substituting the paper's SPEC CPU
 * 2006 / HPCG / Parboil snippets (Section V).
 *
 * Each profile is a SyntheticParams block calibrated to the benchmark's
 * published character: L3-filtered MPKI (Fig 4 bottom: sensitive
 * average 20.4, insensitive 11.6), footprint-to-cache ratio, streaming
 * vs pointer-chasing behaviour, write intensity, and sector
 * utilization (astar.BigLakes and omnetpp have poor utilization, which
 * drives their high tag-cache miss rates in Fig 5). Footprints are
 * scaled by the same ~64x factor as the cache capacities.
 */

#ifndef DAPSIM_TRACE_WORKLOADS_HH
#define DAPSIM_TRACE_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/generators.hh"

namespace dapsim
{

/** A named synthetic workload. */
struct WorkloadProfile
{
    std::string name;
    SyntheticParams params;
    bool bandwidthSensitive = true;

    /**
     * Non-empty for workload-engine profiles: the declarative spec
     * ("zipf:skew=0.99,...") this core runs instead of @ref params.
     * See src/workload/spec.hh; makeGenerator() dispatches on it.
     */
    std::string spec;
};

/** All 17 profiles, bandwidth-sensitive first (12), then insensitive (5). */
const std::vector<WorkloadProfile> &allWorkloads();

/** The 12 bandwidth-sensitive profiles (paper's main result set). */
std::vector<WorkloadProfile> bandwidthSensitiveWorkloads();

/** The 5 bandwidth-insensitive profiles. */
std::vector<WorkloadProfile> bandwidthInsensitiveWorkloads();

/** Look up a profile by name; fatal() if unknown. */
const WorkloadProfile &workloadByName(const std::string &name);

/**
 * Instantiate a generator for one core running @p profile.
 * Each core gets a private address-space slice and an unrelated seed.
 */
AccessGeneratorPtr makeGenerator(const WorkloadProfile &profile,
                                 std::uint32_t core_id,
                                 std::uint64_t seed_salt = 0);

} // namespace dapsim

#endif // DAPSIM_TRACE_WORKLOADS_HH
