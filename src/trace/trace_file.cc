#include "trace/trace_file.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dapsim
{

namespace
{

/** "line N: " prefix for parse diagnostics (empty when unknown). */
std::string
lineRef(std::size_t line_no)
{
    return line_no ? "line " + std::to_string(line_no) + ": " : "";
}

} // namespace

bool
TraceFileGenerator::parseLine(const std::string &line, TraceRequest &out,
                              std::size_t line_no)
{
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[i])))
        ++i;
    if (i == line.size() || line[i] == '#')
        return false;

    std::istringstream is(line);
    std::uint64_t gap = 0;
    std::string kind;
    std::string addr;
    if (!(is >> gap >> kind >> addr))
        fatal("trace: malformed record: " + lineRef(line_no) + line);
    if (kind != "r" && kind != "w")
        fatal("trace: access kind must be 'r' or 'w': " +
              lineRef(line_no) + line);
    out.instrGap = gap == 0 ? 1 : gap;
    out.isWrite = kind == "w";
    // strtoull silently wraps out-of-range and negative values; a trace
    // address that does not fit the 64-bit space is a recording bug the
    // user needs to hear about, not an aliased access.
    if (addr[0] == '-')
        fatal("trace: negative address: " + lineRef(line_no) + line);
    errno = 0;
    char *end = nullptr;
    out.addr = std::strtoull(addr.c_str(), &end, 16);
    if (end == addr.c_str() || *end != '\0')
        fatal("trace: bad hex address: " + lineRef(line_no) + line);
    if (errno == ERANGE)
        fatal("trace: address overflows the 64-bit address space: " +
              lineRef(line_no) + line);
    return true;
}

TraceFileGenerator::TraceFileGenerator(const std::string &path, Addr base)
    : base_(base)
{
    std::ifstream in(path);
    if (!in)
        fatal("trace: cannot open " + path);
    std::string line;
    TraceRequest r;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (parseLine(line, r, line_no))
            records_.push_back(r);
    }
    if (records_.empty())
        fatal("trace: no records in " + path);
}

TraceFileGenerator::TraceFileGenerator(std::vector<TraceRequest> records,
                                       Addr base)
    : records_(std::move(records)), base_(base)
{
    if (records_.empty())
        fatal("trace: no records supplied");
}

bool
TraceFileGenerator::next(TraceRequest &out)
{
    out = records_[pos_];
    out.addr += base_;
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return true;
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRequest> &records)
{
    std::ofstream out(path);
    if (!out)
        fatal("trace: cannot write " + path);
    out << "# dapsim trace: <instr_gap> <r|w> <hex_address>\n";
    for (const auto &r : records)
        out << r.instrGap << ' ' << (r.isWrite ? 'w' : 'r') << ' '
            << std::hex << "0x" << r.addr << std::dec << '\n';
}

} // namespace dapsim
