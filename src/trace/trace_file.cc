#include "trace/trace_file.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dapsim
{

bool
TraceFileGenerator::parseLine(const std::string &line, TraceRequest &out)
{
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[i])))
        ++i;
    if (i == line.size() || line[i] == '#')
        return false;

    std::istringstream is(line);
    std::uint64_t gap = 0;
    std::string kind;
    std::string addr;
    if (!(is >> gap >> kind >> addr))
        fatal("trace: malformed record: " + line);
    if (kind != "r" && kind != "w")
        fatal("trace: access kind must be 'r' or 'w': " + line);
    out.instrGap = gap == 0 ? 1 : gap;
    out.isWrite = kind == "w";
    out.addr = std::strtoull(addr.c_str(), nullptr, 16);
    return true;
}

TraceFileGenerator::TraceFileGenerator(const std::string &path, Addr base)
    : base_(base)
{
    std::ifstream in(path);
    if (!in)
        fatal("trace: cannot open " + path);
    std::string line;
    TraceRequest r;
    while (std::getline(in, line))
        if (parseLine(line, r))
            records_.push_back(r);
    if (records_.empty())
        fatal("trace: no records in " + path);
}

TraceFileGenerator::TraceFileGenerator(std::vector<TraceRequest> records,
                                       Addr base)
    : records_(std::move(records)), base_(base)
{
    if (records_.empty())
        fatal("trace: no records supplied");
}

bool
TraceFileGenerator::next(TraceRequest &out)
{
    out = records_[pos_];
    out.addr += base_;
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return true;
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRequest> &records)
{
    std::ofstream out(path);
    if (!out)
        fatal("trace: cannot write " + path);
    out << "# dapsim trace: <instr_gap> <r|w> <hex_address>\n";
    for (const auto &r : records)
        out << r.instrGap << ' ' << (r.isWrite ? 'w' : 'r') << ' '
            << std::hex << "0x" << r.addr << std::dec << '\n';
}

} // namespace dapsim
