/**
 * @file
 * Multi-programmed mix construction (paper Section V).
 *
 * 17 homogeneous rate-8 mixes (eight copies of one snippet) plus 27
 * eight-way heterogeneous mixes, built deterministically so that
 * roughly half combine snippets of similar bandwidth-sensitivity and
 * the rest combine dissimilar ones — 44 mixes in total.
 */

#ifndef DAPSIM_TRACE_MIXES_HH
#define DAPSIM_TRACE_MIXES_HH

#include <string>
#include <vector>

#include "trace/workloads.hh"

namespace dapsim
{

/** An N-way multi-programmed mix. */
struct Mix
{
    std::string name;
    std::vector<WorkloadProfile> apps; ///< one per core
    enum class Kind
    {
        Sensitive,   ///< homogeneous, bandwidth-sensitive
        Insensitive, ///< homogeneous, bandwidth-insensitive
        Hetero,
    } kind = Kind::Hetero;
};

/** Rate-N mix of one workload. */
Mix rateMix(const WorkloadProfile &w, std::uint32_t copies);

/** The 17 homogeneous rate-@p copies mixes. */
std::vector<Mix> homogeneousMixes(std::uint32_t copies = 8);

/** The 27 deterministic heterogeneous eight-way mixes. */
std::vector<Mix> heterogeneousMixes();

/** All 44 mixes: 12 sensitive + 5 insensitive + 27 heterogeneous. */
std::vector<Mix> allMixes();

} // namespace dapsim

#endif // DAPSIM_TRACE_MIXES_HH
