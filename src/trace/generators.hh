/**
 * @file
 * Concrete synthetic access-stream generators.
 *
 * SyntheticGenerator composes the behaviours the paper's workloads
 * exhibit at the L2-miss level:
 *  - sequential streaming through the footprint (libquantum/lbm-like),
 *  - random accesses into a hot region plus a cold tail
 *    (mcf/omnetpp-like pointer chasing),
 *  - configurable spatial run lengths (sector utilization),
 *  - a write (L2 dirty writeback) fraction,
 *  - geometric instruction gaps calibrated to an L2-miss MPKI.
 */

#ifndef DAPSIM_TRACE_GENERATORS_HH
#define DAPSIM_TRACE_GENERATORS_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/access_gen.hh"

namespace dapsim
{

/** Parameter block describing one synthetic workload's behaviour. */
struct SyntheticParams
{
    /** Total data footprint in bytes (per copy). */
    std::uint64_t footprintBytes = 32 * kMiB;

    /** Fraction of the footprint that forms the hot region. */
    double hotFraction = 0.1;

    /** Probability that a random access targets the hot region. */
    double hotProbability = 0.7;

    /** Fraction of accesses that are sequential streaming. */
    double streamFraction = 0.5;

    /** Mean blocks touched contiguously once a random point is
     *  chosen (spatial locality / sector utilization). */
    double runLength = 4.0;

    /** Fraction of accesses that are L2 dirty writebacks. */
    double writeFraction = 0.2;

    /** L2-miss MPKI: mean instruction gap = 1000 / mpki. */
    double mpki = 25.0;

    /** Base address (per-core offset keeps address spaces private). */
    Addr base = 0;

    std::uint64_t seed = 1;

    /** fatal() unless every dial is in range (see common/validate.hh). */
    void validate() const;
};

/** The workhorse generator. */
class SyntheticGenerator final : public AccessGenerator
{
  public:
    explicit SyntheticGenerator(const SyntheticParams &p);

    bool next(TraceRequest &out) override;

    void save(ckpt::Serializer &s) const override;
    void restore(ckpt::Deserializer &d) override;

    const SyntheticParams &params() const { return p_; }

  private:
    Addr pickRandomBlock();

    SyntheticParams p_;
    Rng rng_;

    Addr streamPtr_;   ///< current sequential pointer
    Addr runPtr_ = 0;  ///< current random-run pointer
    std::uint32_t runLeft_ = 0;
    std::uint64_t blocks_;
    std::uint64_t hotBlocks_;
    /** Per-access constants hoisted out of next(): the exact doubles
     *  the inline expressions produced, computed once. */
    double meanGap_;   ///< max(1, 1000 / mpki)
    double meanRun_;   ///< max(1, runLength)
};

/** A pure fixed-rate streaming reader (Figure 1's bandwidth kernel). */
class StreamKernelGenerator final : public AccessGenerator
{
  public:
    /**
     * @param footprint_bytes array streamed through (wraps around)
     * @param gap instruction gap between accesses (demand intensity)
     * @param base address-space offset
     */
    StreamKernelGenerator(std::uint64_t footprint_bytes,
                          std::uint64_t gap, Addr base);

    bool next(TraceRequest &out) override;

    void save(ckpt::Serializer &s) const override { s.u64(ptr_); }
    void restore(ckpt::Deserializer &d) override { ptr_ = d.u64(); }

  private:
    std::uint64_t footprint_;
    std::uint64_t gap_;
    Addr base_;
    Addr ptr_ = 0;
};

} // namespace dapsim

#endif // DAPSIM_TRACE_GENERATORS_HH
