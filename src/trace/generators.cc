#include "trace/generators.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/validate.hh"

namespace dapsim
{

void
SyntheticParams::validate() const
{
    if (footprintBytes < kBlockBytes)
        fatal("SyntheticParams: footprintBytes must be at least " +
              std::to_string(kBlockBytes) + ", got " +
              std::to_string(footprintBytes));
    checkUnitInterval("SyntheticParams: hotFraction", hotFraction);
    checkUnitInterval("SyntheticParams: hotProbability", hotProbability);
    checkUnitInterval("SyntheticParams: streamFraction", streamFraction);
    checkUnitInterval("SyntheticParams: writeFraction", writeFraction);
    checkAtLeast("SyntheticParams: runLength", runLength, 1.0);
    checkMpki("SyntheticParams: mpki", mpki);
}

SyntheticGenerator::SyntheticGenerator(const SyntheticParams &p)
    : p_(p), rng_(p.seed), streamPtr_(0)
{
    p_.validate();
    blocks_ = p_.footprintBytes / kBlockBytes;
    hotBlocks_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(blocks_) * p_.hotFraction));
    meanGap_ = std::max(1.0, 1000.0 / p_.mpki);
    meanRun_ = std::max(1.0, p_.runLength);
}

Addr
SyntheticGenerator::pickRandomBlock()
{
    if (rng_.chance(p_.hotProbability))
        return rng_.below(hotBlocks_);
    return rng_.below(blocks_);
}

bool
SyntheticGenerator::next(TraceRequest &out)
{
    Addr block;
    if (rng_.chance(p_.streamFraction)) {
        // Sequential streaming pointer, wrapping over the footprint.
        // Both pointers stay < blocks_, so the wrap is a compare
        // instead of a divide.
        block = streamPtr_;
        streamPtr_ = streamPtr_ + 1 == blocks_ ? 0 : streamPtr_ + 1;
    } else {
        // Random run: continue the current spatial run or start a new
        // one at a random (hot-biased) location.
        if (runLeft_ == 0) {
            runPtr_ = pickRandomBlock();
            runLeft_ =
                static_cast<std::uint32_t>(rng_.gap(meanRun_, 64));
        }
        block = runPtr_;
        runPtr_ = runPtr_ + 1 == blocks_ ? 0 : runPtr_ + 1;
        --runLeft_;
    }

    out.addr = p_.base + block * kBlockBytes;
    out.isWrite = rng_.chance(p_.writeFraction);
    out.instrGap = rng_.gap(meanGap_, 1'000'000);
    return true;
}

StreamKernelGenerator::StreamKernelGenerator(std::uint64_t footprint_bytes,
                                             std::uint64_t gap, Addr base)
    : footprint_(footprint_bytes / kBlockBytes), gap_(gap), base_(base)
{
    if (footprint_ == 0)
        fatal("StreamKernelGenerator: footprint too small");
}

void
SyntheticGenerator::save(ckpt::Serializer &s) const
{
    const Rng::State st = rng_.state();
    s.u64(st.s0);
    s.u64(st.s1);
    s.u64(streamPtr_);
    s.u64(runPtr_);
    s.u32(runLeft_);
}

void
SyntheticGenerator::restore(ckpt::Deserializer &d)
{
    Rng::State st;
    st.s0 = d.u64();
    st.s1 = d.u64();
    rng_.setState(st);
    streamPtr_ = d.u64();
    runPtr_ = d.u64();
    runLeft_ = d.u32();
}

bool
StreamKernelGenerator::next(TraceRequest &out)
{
    out.addr = base_ + ptr_ * kBlockBytes;
    ptr_ = (ptr_ + 1) % footprint_;
    out.isWrite = false;
    out.instrGap = gap_;
    return true;
}

} // namespace dapsim
