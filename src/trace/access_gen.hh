/**
 * @file
 * Access-stream generator interface.
 *
 * Generators stand in for the paper's SPEC CPU 2006 / HPCG / Parboil
 * snippets: they produce the L2-miss stream (reads plus L2 dirty
 * writebacks) a core feeds into the shared L3, parameterized to match
 * each benchmark's reported MPKI, footprint, read/write mix and
 * spatial locality. Streams are endless (rate mode re-runs them) and
 * fully deterministic given a seed.
 */

#ifndef DAPSIM_TRACE_ACCESS_GEN_HH
#define DAPSIM_TRACE_ACCESS_GEN_HH

#include <memory>

#include "ckpt/serializer.hh"
#include "cpu/rob_core.hh"

namespace dapsim
{

/** Abstract endless access-stream generator. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next request. Never ends (returns true). */
    virtual bool next(TraceRequest &out) = 0;

    /**
     * Checkpoint the stream cursor (see src/ckpt/) so a restored run
     * resumes the exact same request sequence. Stateless generators
     * keep the empty default.
     */
    virtual void save(ckpt::Serializer &) const {}
    virtual void restore(ckpt::Deserializer &) {}
};

using AccessGeneratorPtr = std::unique_ptr<AccessGenerator>;

} // namespace dapsim

#endif // DAPSIM_TRACE_ACCESS_GEN_HH
