#include "obs/sampler.hh"

#include <cstdio>

#include "common/json_writer.hh"
#include "common/log.hh"

namespace dapsim::obs
{

namespace
{

/** Round-trip double formatting, matching the sweep JSON emitter. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
Sampler::addGroup(const StatGroup *group)
{
    if (running_)
        fatal("Sampler: cannot add columns after start()");
    groups_.push_back(group);
}

void
Sampler::addColumn(std::string name, std::function<double()> probe)
{
    if (running_)
        fatal("Sampler: cannot add columns after start()");
    columns_.emplace_back(std::move(name), std::move(probe));
}

std::vector<std::string>
Sampler::columnNames() const
{
    std::vector<std::string> names;
    for (const StatGroup *g : groups_)
        g->appendColumnNames(names);
    for (const auto &[name, probe] : columns_)
        names.push_back(name);
    return names;
}

void
Sampler::start(EventQueue &eq, Cycle every, std::ostream &os,
               SampleFormat format)
{
    if (every == 0)
        fatal("Sampler: sample interval must be non-zero");
    eq_ = &eq;
    os_ = &os;
    every_ = every;
    format_ = format;
    running_ = true;
    samples_ = 0;

    const std::vector<std::string> names = columnNames();
    if (format_ == SampleFormat::Jsonl) {
        json::JsonWriter w;
        w.beginObject();
        w.key("schema").value(kSchema);
        w.key("sample_every_cycles")
            .value(static_cast<std::uint64_t>(every_));
        w.key("columns").beginArray();
        for (const auto &n : names)
            w.value(n);
        w.endArray();
        w.endObject();
        *os_ << w.str() << '\n';
    } else {
        *os_ << "tick";
        for (const auto &n : names)
            *os_ << ',' << n;
        *os_ << '\n';
    }

    eq_->scheduleAfter(cpuCyclesToTicks(every_),
                       EventQueue::Callback::of<&Sampler::tick>(this));
}

void
Sampler::tick()
{
    if (!running_)
        return;
    writeRow();
    ++samples_;
    eq_->scheduleAfter(cpuCyclesToTicks(every_),
                       EventQueue::Callback::of<&Sampler::tick>(this));
}

void
Sampler::writeRow()
{
    std::vector<double> values;
    for (const StatGroup *g : groups_)
        g->appendValues(values);
    for (const auto &[name, probe] : columns_)
        values.push_back(probe());

    if (format_ == SampleFormat::Jsonl) {
        json::JsonWriter w;
        w.beginObject();
        w.key("tick").value(eq_->now());
        w.key("values").beginArray();
        for (double v : values)
            w.value(v);
        w.endArray();
        w.endObject();
        *os_ << w.str() << '\n';
    } else {
        *os_ << eq_->now();
        for (double v : values)
            *os_ << ',' << fmtDouble(v);
        *os_ << '\n';
    }
}

} // namespace dapsim::obs
