#include "obs/observability.hh"

#include "common/log.hh"

namespace dapsim::obs
{

std::ofstream
Observability::openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("obs: cannot open " + path + " for writing");
    return os;
}

Observability::Observability(const ObsConfig &cfg, const EventQueue &eq)
    : cfg_(cfg)
{
    if (cfg_.samplingEnabled()) {
        if (cfg_.sampleOut.empty())
            fatal("obs: sampling enabled but no output path set");
        sampleOut_ = openOut(cfg_.sampleOut);
    }
    if (!cfg_.dapTrace.empty()) {
        dapOut_ = openOut(cfg_.dapTrace);
        dapTrace_ = std::make_unique<DapTrace>(eq, dapOut_);
    }
    if (!cfg_.chromeTrace.empty()) {
        chromeOut_ = openOut(cfg_.chromeTrace);
        chromeTrace_ = std::make_unique<ChromeTraceWriter>(chromeOut_);
    }
}

Observability::~Observability()
{
    finish();
}

void
Observability::startSampling(EventQueue &eq)
{
    if (cfg_.samplingEnabled())
        sampler_.start(eq, cfg_.sampleEvery, sampleOut_,
                       cfg_.sampleFormat);
}

StatGroup &
Observability::makeGroup(const std::string &name)
{
    groups_.emplace_back(name);
    return groups_.back();
}

void
Observability::finish()
{
    if (finished_)
        return;
    finished_ = true;
    sampler_.stop();
    if (chromeTrace_)
        chromeTrace_->finish();
    if (sampleOut_.is_open())
        sampleOut_.close();
    if (dapOut_.is_open())
        dapOut_.close();
    if (chromeOut_.is_open())
        chromeOut_.close();
}

} // namespace dapsim::obs
