/**
 * @file
 * Time-series stat sampler.
 *
 * Snapshots registered StatGroups (and ad-hoc probe columns) every N
 * simulated CPU cycles into a columnar time series, turning end-of-run
 * aggregates — hit rates, CAS fractions, DAP credit counters — into
 * curves. Output is JSONL (a header record describing the columns,
 * then one record per sample) or CSV.
 *
 * Determinism: every value is derived from simulator state, numbers
 * are printed with round-trip precision, and the sampling events only
 * read state, so two runs of the same spec produce byte-identical
 * files on any thread of any sweep.
 */

#ifndef DAPSIM_OBS_SAMPLER_HH
#define DAPSIM_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "obs/obs_config.hh"

namespace dapsim::obs
{

/** Periodic snapshotter of registered stats. */
class Sampler
{
  public:
    /** Schema identifier written into the JSONL header record. */
    static constexpr const char *kSchema = "dapsim.timeseries.v1";

    /** Register every stat of @p group as columns (`group.name`).
     *  The group must outlive the sampler. Register before start(). */
    void addGroup(const StatGroup *group);

    /** Register one derived column (ratios, credit counters, ...).
     *  The probe must only read simulator state. */
    void addColumn(std::string name, std::function<double()> probe);

    /**
     * Write the header to @p os and schedule the first sample @p every
     * CPU cycles from now on @p eq; the sampler then reschedules
     * itself until stop(). Columns must not change after start().
     */
    void start(EventQueue &eq, Cycle every, std::ostream &os,
               SampleFormat format);

    /** Halt sampling (the pending event becomes a no-op). */
    void stop() { running_ = false; }

    /** Samples written so far. */
    std::uint64_t samples() const { return samples_; }

    /** Column labels in output order (for tests). */
    std::vector<std::string> columnNames() const;

  private:
    void tick();
    void writeRow();

    std::vector<const StatGroup *> groups_;
    std::vector<std::pair<std::string, std::function<double()>>>
        columns_;

    EventQueue *eq_ = nullptr;
    std::ostream *os_ = nullptr;
    SampleFormat format_ = SampleFormat::Jsonl;
    Cycle every_ = 0;
    bool running_ = false;
    std::uint64_t samples_ = 0;
};

} // namespace dapsim::obs

#endif // DAPSIM_OBS_SAMPLER_HH
