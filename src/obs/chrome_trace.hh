/**
 * @file
 * Chrome trace_event JSON emitter.
 *
 * Streams a `{"traceEvents":[...]}` document loadable in
 * chrome://tracing or Perfetto. Three producers feed it:
 *  - DRAM channel data-bus occupancy (one complete span per CAS, on a
 *    track per channel) via the Channel BusTraceHook,
 *  - event-queue dispatch activity (down-sampled counter events of
 *    pending/dispatched) via the EventQueue DispatchHook,
 *  - arbitrary spans/counters from callers (SweepRunner job phases).
 *
 * Simulated time (picosecond ticks) maps to trace microseconds, so a
 * span of one CPU cycle is 250 ps = 0.00025 us. finish() closes the
 * JSON document and must be called before the stream is read.
 */

#ifndef DAPSIM_OBS_CHROME_TRACE_HH
#define DAPSIM_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/event_queue.hh"
#include "dram/channel.hh"

namespace dapsim::obs
{

/** Streaming trace_event writer; one instance per output file. */
class ChromeTraceWriter final : public EventQueue::DispatchHook,
                                public BusTraceHook
{
  public:
    /**
     * @param os output stream owned by the caller
     * @param eq_counter_every_ticks down-sampling interval of the
     *        event-queue counter track (0 disables the track)
     */
    explicit ChromeTraceWriter(std::ostream &os,
                               Tick eq_counter_every_ticks =
                                   kDefaultEqCounterTicks);

    /** 1000 CPU cycles between event-queue counter samples. */
    static constexpr Tick kDefaultEqCounterTicks = 1000 * kCpuPeriodPs;

    /** Emit a complete span ("ph":"X") on @p track. Times in us. */
    void span(const std::string &track, const std::string &name,
              const std::string &cat, double ts_us, double dur_us);

    /** Emit a counter sample ("ph":"C") named @p series. */
    void counter(const std::string &series, double ts_us, double value);

    /** Close the JSON document (idempotent). */
    void finish();

    /** Events emitted so far (excluding metadata). */
    std::uint64_t events() const { return events_; }

    // EventQueue::DispatchHook
    void onDispatch(Tick now, std::size_t pending) override;

    // BusTraceHook
    void onBusSpan(const std::string &source, std::uint32_t channel,
                   Tick start, Tick end, bool isWrite,
                   bool rowHit) override;

  private:
    /** tid of @p track, assigning one (and emitting its thread_name
     *  metadata record) on first use. */
    std::uint32_t trackTid(const std::string &track);

    /** Write one raw event object (handles commas). */
    void emit(const std::string &body);

    static double ticksToUs(Tick t);

    std::ostream &os_;
    Tick eqCounterEvery_;
    Tick eqNextCounterAt_ = 0;
    std::uint64_t eqDispatchedAtLast_ = 0;
    std::uint64_t eqDispatched_ = 0;

    std::map<std::string, std::uint32_t> tids_;
    std::uint64_t events_ = 0;
    bool first_ = true;
    bool finished_ = false;
};

} // namespace dapsim::obs

#endif // DAPSIM_OBS_CHROME_TRACE_HH
