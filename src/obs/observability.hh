/**
 * @file
 * Per-run observability bundle.
 *
 * Owns the output streams, the Sampler, the DapTrace and the
 * ChromeTraceWriter selected by an ObsConfig, plus the StatGroups the
 * wiring registers into the sampler (groups hold raw pointers into
 * components, so the bundle must not outlive the System it observes —
 * System owns it). The System constructor performs the wiring; see
 * System::setupObservability().
 */

#ifndef DAPSIM_OBS_OBSERVABILITY_HH
#define DAPSIM_OBS_OBSERVABILITY_HH

#include <deque>
#include <fstream>
#include <memory>
#include <string>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "obs/chrome_trace.hh"
#include "obs/dap_trace.hh"
#include "obs/obs_config.hh"
#include "obs/sampler.hh"

namespace dapsim::obs
{

/** Everything one simulated run needs to emit its observability. */
class Observability
{
  public:
    /** Opens every selected output file; fatal() if one cannot be
     *  created. @p eq supplies timestamps for the tracers. */
    Observability(const ObsConfig &cfg, const EventQueue &eq);

    /** Flushes and closes everything (finish() is called if the
     *  caller forgot). */
    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObsConfig &config() const { return cfg_; }

    /** The sampler; register groups/columns before startSampling(). */
    Sampler &sampler() { return sampler_; }

    /** Begin periodic sampling on @p eq (no-op when sampling is off).
     *  Called from System::run() so checkpoint-time event queues stay
     *  untouched. */
    void startSampling(EventQueue &eq);

    /** The DAP window tracer, or null when --dap-trace is off. */
    DapTrace *dapTrace() { return dapTrace_.get(); }

    /** The Chrome trace writer, or null when --chrome-trace is off. */
    ChromeTraceWriter *chromeTrace() { return chromeTrace_.get(); }

    /** Create a StatGroup owned by this bundle (stable address). */
    StatGroup &makeGroup(const std::string &name);

    /** Stop sampling, close the trace document, flush all files.
     *  Idempotent. */
    void finish();

  private:
    std::ofstream openOut(const std::string &path);

    ObsConfig cfg_;
    std::ofstream sampleOut_;
    std::ofstream dapOut_;
    std::ofstream chromeOut_;
    Sampler sampler_;
    std::unique_ptr<DapTrace> dapTrace_;
    std::unique_ptr<ChromeTraceWriter> chromeTrace_;
    std::deque<StatGroup> groups_;
    bool finished_ = false;
};

} // namespace dapsim::obs

#endif // DAPSIM_OBS_OBSERVABILITY_HH
