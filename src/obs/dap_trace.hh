/**
 * @file
 * Per-window DAP decision trace.
 *
 * Subscribes to DapPolicy's window boundary (DapTraceSink) and writes
 * one JSONL record per window: the measured demand that fed the
 * solver, the computed credit grants, the credit-counter values after
 * loading them, and the per-window uses of each technique (derived by
 * diffing the cumulative applied counts between windows). This is the
 * raw material for checking that Equation 4's ratio converges mid-run
 * and for plotting when FWB/WB/IFRM/SFRM actually fire.
 */

#ifndef DAPSIM_OBS_DAP_TRACE_HH
#define DAPSIM_OBS_DAP_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "dap/dap_controller.hh"

namespace dapsim::obs
{

/** JSONL writer for DapWindowRecords. */
class DapTrace final : public DapTraceSink
{
  public:
    /** Schema identifier written into the header record. */
    static constexpr const char *kSchema = "dapsim.daptrace.v1";

    /**
     * @param eq event queue supplying record timestamps
     * @param os output stream (one JSON object per line)
     *
     * The header record is written on construction.
     */
    DapTrace(const EventQueue &eq, std::ostream &os);

    void onWindow(const DapWindowRecord &rec) override;

    /**
     * Attach a named probe sampled at every window boundary. Probe
     * values land in a per-record "tenants" object — the workload
     * engine registers per-tenant read/write totals here so DAP
     * decisions can be attributed to the tenant driving them.
     */
    void
    addProbe(std::string name, std::function<std::uint64_t()> fn)
    {
        probes_.emplace_back(std::move(name), std::move(fn));
    }

    /** Window records written so far. */
    std::uint64_t windows() const { return windows_; }

  private:
    const EventQueue &eq_;
    std::ostream &os_;
    std::uint64_t windows_ = 0;
    DapWindowRecord prev_{}; ///< previous cumulative applied counts
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
        probes_;
};

} // namespace dapsim::obs

#endif // DAPSIM_OBS_DAP_TRACE_HH
