/**
 * @file
 * Configuration surface of the observability subsystem.
 *
 * All hooks are opt-in and off by default; a default-constructed
 * ObsConfig produces a System whose simulated behaviour and stat dumps
 * are bit-identical to one built before the subsystem existed (the
 * disabled hooks cost one predictable branch each at their call
 * sites — see tests/test_obs_overhead.cc).
 */

#ifndef DAPSIM_OBS_OBS_CONFIG_HH
#define DAPSIM_OBS_OBS_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dapsim::obs
{

/** Time-series sampler output encoding. */
enum class SampleFormat
{
    Jsonl, ///< header record + one JSON object per sample
    Csv,   ///< header row + one comma-separated row per sample
};

/** Per-run observability selection (held inside SystemConfig). */
struct ObsConfig
{
    /** Sample registered stats every this many CPU cycles (0 = off). */
    Cycle sampleEvery = 0;

    /** Time-series output path (required when sampleEvery > 0). */
    std::string sampleOut;

    SampleFormat sampleFormat = SampleFormat::Jsonl;

    /** Per-window DAP decision trace output path (empty = off). */
    std::string dapTrace;

    /** Chrome trace_event JSON output path (empty = off). */
    std::string chromeTrace;

    /**
     * Tenant name per core (from the workload MixComposer; empty =
     * no attribution). When set, the stats dump gains tenant.* rows,
     * the sampler gains per-tenant traffic columns, and the DAP
     * decision trace annotates each window with per-tenant read/write
     * totals. Like the rest of ObsConfig this is excluded from
     * checkpoint state hashing and never alters simulated behaviour.
     */
    std::vector<std::string> coreTenants;

    bool samplingEnabled() const { return sampleEvery > 0; }

    bool
    anyEnabled() const
    {
        return samplingEnabled() || !dapTrace.empty() ||
               !chromeTrace.empty();
    }
};

} // namespace dapsim::obs

#endif // DAPSIM_OBS_OBS_CONFIG_HH
