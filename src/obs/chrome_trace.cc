#include "obs/chrome_trace.hh"

#include "common/json_writer.hh"

namespace dapsim::obs
{

ChromeTraceWriter::ChromeTraceWriter(std::ostream &os,
                                     Tick eq_counter_every_ticks)
    : os_(os), eqCounterEvery_(eq_counter_every_ticks)
{
    os_ << "{\"traceEvents\":[";
}

double
ChromeTraceWriter::ticksToUs(Tick t)
{
    return static_cast<double>(t) / 1e6; // ps -> us
}

void
ChromeTraceWriter::emit(const std::string &body)
{
    if (finished_)
        return;
    if (!first_)
        os_ << ",\n";
    first_ = false;
    os_ << body;
}

std::uint32_t
ChromeTraceWriter::trackTid(const std::string &track)
{
    auto it = tids_.find(track);
    if (it != tids_.end())
        return it->second;
    const auto tid = static_cast<std::uint32_t>(tids_.size() + 1);
    tids_.emplace(track, tid);

    json::JsonWriter w;
    w.beginObject();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(std::uint32_t{0});
    w.key("tid").value(tid);
    w.key("args").beginObject();
    w.key("name").value(track);
    w.endObject();
    w.endObject();
    emit(w.str());
    return tid;
}

void
ChromeTraceWriter::span(const std::string &track, const std::string &name,
                        const std::string &cat, double ts_us,
                        double dur_us)
{
    const std::uint32_t tid = trackTid(track);
    json::JsonWriter w;
    w.beginObject();
    w.key("ph").value("X");
    w.key("pid").value(std::uint32_t{0});
    w.key("tid").value(tid);
    w.key("name").value(name);
    w.key("cat").value(cat);
    w.key("ts").value(ts_us);
    w.key("dur").value(dur_us);
    w.endObject();
    emit(w.str());
    ++events_;
}

void
ChromeTraceWriter::counter(const std::string &series, double ts_us,
                           double value)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("ph").value("C");
    w.key("pid").value(std::uint32_t{0});
    w.key("tid").value(std::uint32_t{0});
    w.key("name").value(series);
    w.key("ts").value(ts_us);
    w.key("args").beginObject();
    w.key("value").value(value);
    w.endObject();
    w.endObject();
    emit(w.str());
    ++events_;
}

void
ChromeTraceWriter::onDispatch(Tick now, std::size_t pending)
{
    ++eqDispatched_;
    if (eqCounterEvery_ == 0 || now < eqNextCounterAt_)
        return;
    eqNextCounterAt_ = now + eqCounterEvery_;
    counter("eventQueue.pending", ticksToUs(now),
            static_cast<double>(pending));
    counter("eventQueue.dispatchRate", ticksToUs(now),
            static_cast<double>(eqDispatched_ - eqDispatchedAtLast_));
    eqDispatchedAtLast_ = eqDispatched_;
}

void
ChromeTraceWriter::onBusSpan(const std::string &source,
                             std::uint32_t channel, Tick start, Tick end,
                             bool isWrite, bool rowHit)
{
    const std::string track =
        source + ".ch" + std::to_string(channel);
    span(track, isWrite ? "cas-write" : "cas-read",
         rowHit ? "row-hit" : "row-miss", ticksToUs(start),
         ticksToUs(end - start));
}

void
ChromeTraceWriter::finish()
{
    if (finished_)
        return;
    os_ << "],\"displayTimeUnit\":\"ms\"}\n";
    finished_ = true;
}

} // namespace dapsim::obs
