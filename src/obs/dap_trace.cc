#include "obs/dap_trace.hh"

#include "common/json_writer.hh"

namespace dapsim::obs
{

DapTrace::DapTrace(const EventQueue &eq, std::ostream &os)
    : eq_(eq), os_(os)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchema);
    w.endObject();
    os_ << w.str() << '\n';
}

void
DapTrace::onWindow(const DapWindowRecord &rec)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("window").value(rec.window);
    w.key("tick").value(eq_.now());

    w.key("in").beginObject();
    w.key("a_ms").value(rec.in.aMs);
    w.key("a_ms_read").value(rec.in.aMsRead);
    w.key("a_ms_write").value(rec.in.aMsWrite);
    w.key("a_mm").value(rec.in.aMm);
    w.key("read_misses").value(rec.in.readMisses);
    w.key("writes").value(rec.in.writes);
    w.key("clean_hits").value(rec.in.cleanHits);
    if (rec.remoteEnabled)
        w.key("a_remote").value(rec.in.aRemote);
    w.endObject();

    auto i64 = [&w](const char *key, std::int64_t v) {
        // Credits/targets are non-negative by construction; emit as
        // unsigned so the writer needs no signed overload.
        w.key(key).value(static_cast<std::uint64_t>(v < 0 ? 0 : v));
    };

    w.key("targets").beginObject();
    i64("fwb", rec.targets.nFwb);
    i64("wb", rec.targets.nWb);
    i64("ifrm", rec.targets.nIfrm);
    i64("sfrm", rec.targets.nSfrm);
    i64("wt", rec.targets.nWriteThrough);
    if (rec.remoteEnabled)
        i64("remote", rec.targets.nRemote);
    w.key("active").value(rec.targets.active);
    w.endObject();

    w.key("credits").beginObject();
    i64("fwb", rec.fwbCredits);
    i64("wb", rec.wbCredits);
    i64("ifrm", rec.ifrmCredits);
    i64("sfrm", rec.sfrmCredits);
    i64("wt", rec.wtCredits);
    if (rec.remoteEnabled)
        i64("remote", rec.remoteCredits);
    w.endObject();

    // Uses during the window that just ended.
    w.key("used").beginObject();
    w.key("fwb").value(rec.fwbApplied - prev_.fwbApplied);
    w.key("wb").value(rec.wbApplied - prev_.wbApplied);
    w.key("ifrm").value(rec.ifrmApplied - prev_.ifrmApplied);
    w.key("sfrm").value(rec.sfrmApplied - prev_.sfrmApplied);
    w.key("wt").value(rec.wtApplied - prev_.wtApplied);
    if (rec.remoteEnabled)
        w.key("remote").value(rec.remoteApplied - prev_.remoteApplied);
    w.endObject();

    if (!probes_.empty()) {
        w.key("tenants").beginObject();
        for (const auto &p : probes_)
            w.key(p.first.c_str()).value(p.second());
        w.endObject();
    }

    w.endObject();
    os_ << w.str() << '\n';

    prev_ = rec;
    ++windows_;
}

} // namespace dapsim::obs
