#include "expd/store.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fsio.hh"
#include "common/json_writer.hh"

namespace dapsim::expd
{

namespace
{

std::string
hostName()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown-host";
    return buf;
}

/** {"pid":N,"host":"..."} — a lease owner's identity. */
std::string
ownerContent()
{
    json::JsonWriter w;
    w.beginObject();
    w.key("pid").value(static_cast<std::uint64_t>(::getpid()));
    w.key("host").value(hostName());
    w.endObject();
    return w.str();
}

void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
        throw fsio::errnoError("expq: cannot create directory", path);
}

/** The event ledger files under @p dir, sorted for reproducibility. */
std::vector<std::string>
listEventFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return out;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind("events-", 0) == 0 &&
            name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0)
            out.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::size_t
Replay::countState(JobState::State s) const
{
    std::size_t n = 0;
    for (const JobState &j : jobs)
        n += j.state == s ? 1 : 0;
    return n;
}

Store
Store::create(const std::string &dir, const GridOptions &opt)
{
    Store store;
    store.dir_ = dir;
    store.options_ = opt;
    store.jobs_ = expandGrid(opt);
    if (store.jobs_.empty())
        throw StoreError("expq: grid expands to zero jobs");

    makeDir(dir);
    const std::string manifest = dir + "/grid.jsonl";
    if (fsio::fileExists(manifest))
        throw StoreError("expq: store already exists: " + manifest);
    makeDir(store.eventsDir());
    makeDir(dir + "/leases");
    makeDir(store.ckptDir());
    makeDir(dir + "/stderr");

    std::string text = gridRecord(opt, store.jobs_.size());
    for (std::size_t i = 0; i < store.jobs_.size(); ++i)
        text += jobRecord(store.jobs_[i], i);
    fsio::atomicWriteFile(manifest, text);
    return store;
}

Store
Store::open(const std::string &dir)
{
    const std::string manifest = dir + "/grid.jsonl";
    std::ifstream in(manifest, std::ios::binary);
    if (!in)
        throw StoreError("expq: no store at " + dir +
                         " (missing grid.jsonl)");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const LedgerContents manifest_records =
        readLedgerText(text, manifest);
    // The manifest is written atomically: a torn tail means the file
    // was tampered with, not crashed on.
    if (manifest_records.droppedTornTail ||
        manifest_records.records.empty())
        throw StoreError("expq: corrupt manifest: " + manifest);

    const json::Value &head = manifest_records.records.front();
    if (head.at("schema").asString() != kSchemaId ||
        head.at("type").asString() != "grid")
        throw StoreError("expq: " + manifest +
                         " is not a dapsim.expq.v1 manifest");

    Store store;
    store.dir_ = dir;
    store.options_ = decodeGridOptions(head.at("options"));
    store.jobs_ = expandGrid(store.options_);

    const std::size_t n = head.at("jobs").asU64();
    if (n != store.jobs_.size() ||
        manifest_records.records.size() != n + 1)
        throw StoreError(
            "expq: manifest job count disagrees with re-expansion "
            "(different build or profile tables?)");
    for (std::size_t i = 0; i < n; ++i) {
        const json::Value &rec = manifest_records.records[i + 1];
        if (rec.at("type").asString() != "job" ||
            rec.at("index").asU64() != i)
            throw StoreError("expq: manifest job records out of order");
        if (rec.at("id").asString() != store.jobs_[i].id)
            throw StoreError(
                "expq: job " + std::to_string(i) +
                " re-expands to id " + store.jobs_[i].id +
                " but the manifest recorded " +
                rec.at("id").asString() +
                " — refusing to run a drifted grid");
    }
    return store;
}

std::string
Store::eventsPath(const std::string &writer) const
{
    return eventsDir() + "/events-" + writer + ".jsonl";
}

std::string
Store::leasePath(std::size_t index) const
{
    return dir_ + "/leases/job-" + std::to_string(index) + ".lease";
}

std::string
Store::stderrPath(std::size_t index) const
{
    return dir_ + "/stderr/job-" + std::to_string(index) + ".txt";
}

Replay
Store::replay() const
{
    Replay out;
    out.jobs.assign(jobs_.size(), JobState{});

    for (const std::string &path : listEventFiles(eventsDir())) {
        const LedgerContents ledger = readLedgerFile(path);
        out.droppedTornTail |= ledger.droppedTornTail;
        for (const json::Value &rec : ledger.records) {
            const std::string type = rec.at("type").asString();
            if (type == "warmup") {
                if (rec.at("executed").asBool())
                    ++out.warmupsExecuted[rec.at("group").asString()];
                continue;
            }
            const std::size_t i = rec.at("index").asU64();
            if (i >= out.jobs.size())
                throw StoreError(path + ": event for job " +
                                 std::to_string(i) +
                                 " beyond the manifest");
            JobState &job = out.jobs[i];
            if (type == "start") {
                job.started = true;
            } else if (type == "done") {
                // Racing workers write identical rows (determinism
                // contract); the first replayed one wins.
                if (job.state != JobState::State::Done) {
                    job.state = JobState::State::Done;
                    job.row = rec.at("row").asString();
                    job.worker = rec.at("worker").asString();
                    job.error.clear();
                    const json::Value *t = rec.find("t");
                    job.doneAt = t ? t->asDouble() : 0.0;
                }
            } else if (type == "failed") {
                ++job.failures;
                if (job.state != JobState::State::Done) {
                    job.error = rec.at("error").asString();
                    job.worker = rec.at("worker").asString();
                    job.row = rec.at("row").asString();
                }
            } else if (type == "retry") {
                ++job.retries;
            } else {
                throw StoreError(path + ": unknown record type '" +
                                 type + "'");
            }
        }
    }

    for (JobState &job : out.jobs) {
        if (job.state == JobState::State::Done)
            continue;
        job.state = job.failures > job.retries
                        ? JobState::State::Failed
                        : JobState::State::Pending;
    }
    for (const JobState &job : out.jobs) {
        if (job.state != JobState::State::Done)
            continue;
        ++out.doneByWorker[job.worker];
        if (out.firstDoneAt == 0.0 || job.doneAt < out.firstDoneAt)
            out.firstDoneAt = job.doneAt;
        out.lastDoneAt = std::max(out.lastDoneAt, job.doneAt);
    }
    return out;
}

bool
Store::tryLease(std::size_t index, double ttl_sec) const
{
    const std::string path = leasePath(index);

    // Reap a stale lease first: same-host dead owner immediately,
    // anything else once its heartbeat mtime exceeds the TTL. The
    // rename makes exactly one racing reaper win.
    bool stale = false;
    try {
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (in && !text.empty()) {
            const json::Value v = json::parse(text);
            if (v.at("host").asString() == hostName()) {
                const pid_t pid =
                    static_cast<pid_t>(v.at("pid").asU64());
                if (::kill(pid, 0) != 0 && errno == ESRCH)
                    stale = true;
            }
        }
    } catch (const std::exception &) {
        // Unreadable/torn lease: age decides.
    }
    if (!stale) {
        const double age = fsio::fileAgeSeconds(path);
        stale = age > ttl_sec;
    }
    if (stale) {
        const std::string reaped =
            path + ".reaped." + std::to_string(::getpid());
        if (::rename(path.c_str(), reaped.c_str()) == 0)
            ::unlink(reaped.c_str());
    }

    return fsio::createExclusive(path, ownerContent());
}

void
Store::heartbeat(std::size_t index) const
{
    fsio::touchFile(leasePath(index));
}

void
Store::releaseLease(std::size_t index) const
{
    ::unlink(leasePath(index).c_str());
}

bool
Store::leased(std::size_t index) const
{
    return fsio::fileExists(leasePath(index));
}

void
Store::verifyRow(std::size_t index, const std::string &row) const
{
    json::Value v;
    try {
        v = json::parse(row);
    } catch (const std::exception &e) {
        throw StoreError("expq: job " + std::to_string(index) +
                         " result row is not valid JSON: " + e.what());
    }
    if (v.at("schema").asString() != "dapsim.sweep.v1")
        throw StoreError("expq: job " + std::to_string(index) +
                         " result row has a foreign schema");
    if (v.at("job").asU64() != index ||
        v.at("job_id").asString() != jobs_[index].id)
        throw StoreError("expq: job " + std::to_string(index) +
                         " result row names a different job");
}

std::vector<std::string>
Store::mergedRows(const Replay &replay) const
{
    std::vector<std::string> rows;
    rows.reserve(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobState &job = replay.jobs[i];
        if (job.state == JobState::State::Pending || job.row.empty())
            throw StoreError("expq: job " + std::to_string(i) +
                             " has no result yet — run more workers "
                             "or `dapsim_expd resume` first");
        verifyRow(i, job.row);
        rows.push_back(job.row);
    }
    return rows;
}

} // namespace dapsim::expd
